package cutfit_test

import (
	"context"
	"fmt"
	"strings"

	"cutfit"
)

// ExampleMetricNames shows the serving observability surface: a Session
// doing real work feeds the process-wide metric registry, whose
// families can be enumerated (MetricNames) and scraped in Prometheus
// text format (WriteMetrics). cmd/cutfitd serves the same exposition
// under GET /metrics and layers per-endpoint request and admission
// series on top.
func ExampleMetricNames() {
	se := cutfit.NewSession(cutfit.SessionOptions{
		MaxCacheBytes: 64 << 20, // the store budget the gauges track
		Parallelism:   2,
	})
	g, _ := cutfit.Datasets()[0].BuildCached()

	// One measure + one run: a store miss, then a hit on the cached
	// assignment, and a handful of engine supersteps.
	if _, err := se.Measure(g, cutfit.EdgePartition2D(), 8); err != nil {
		fmt.Println("measure:", err)
		return
	}
	if _, err := se.Run(context.Background(), g, cutfit.EdgePartition2D(), 8, "pagerank", 3); err != nil {
		fmt.Println("run:", err)
		return
	}

	// The registry now holds live series for every layer the request
	// crossed. The catalog in docs/OPERATIONS.md is tested against this
	// exact list.
	for _, name := range cutfit.MetricNames() {
		if strings.HasPrefix(name, "cutfit_store_") && strings.HasSuffix(name, "_total") {
			fmt.Println(name)
		}
	}

	// WriteMetrics renders all of them; the store section always
	// reports at least the miss that built the assignment.
	var buf strings.Builder
	if err := cutfit.WriteMetrics(&buf); err != nil {
		fmt.Println("write:", err)
		return
	}
	fmt.Println(strings.Contains(buf.String(), "# TYPE cutfit_store_misses_total counter"))

	// Output:
	// cutfit_store_delta_derived_total
	// cutfit_store_disk_hits_total
	// cutfit_store_evictions_total
	// cutfit_store_hits_total
	// cutfit_store_misses_total
	// cutfit_store_singleflight_waits_total
	// true
}
