package cutfit_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cutfit"
)

// sessionTestGraph builds a deterministic medium graph for the concurrency
// tests: a ring with chords so PageRank/CC have non-trivial structure.
func sessionTestGraph(t testing.TB) *cutfit.Graph {
	t.Helper()
	var sb strings.Builder
	const n = 400
	for i := 0; i < n; i++ {
		writeEdge(&sb, i, (i+1)%n)
		writeEdge(&sb, i, (i+7)%n)
		if i%3 == 0 {
			writeEdge(&sb, i, (i*13+5)%n)
		}
	}
	g, err := cutfit.LoadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func writeEdge(sb *strings.Builder, a, b int) {
	sb.WriteString(itoa(a))
	sb.WriteByte(' ')
	sb.WriteString(itoa(b))
	sb.WriteByte('\n')
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// countingSessionStrategy counts Partition invocations through the public
// API — the oracle for the Session single-flight guarantee.
type countingSessionStrategy struct {
	inner cutfit.Strategy
	calls atomic.Int64
}

func (c *countingSessionStrategy) Name() string { return "counting-" + c.inner.Name() }
func (c *countingSessionStrategy) Key() string  { return c.Name() }
func (c *countingSessionStrategy) Partition(g *cutfit.Graph, numParts int) ([]cutfit.PID, error) {
	c.calls.Add(1)
	return c.inner.Partition(g, numParts)
}

// TestSessionSingleFlight: K concurrent identical requests through one
// Session — mixed Measure, Partition and Run, all needing the same
// assignment — perform exactly one partitioning pass and one topology
// build.
func TestSessionSingleFlight(t *testing.T) {
	g := sessionTestGraph(t)
	cs := &countingSessionStrategy{inner: cutfit.EdgePartition2D()}
	se := cutfit.NewSession(cutfit.SessionOptions{})
	ctx := context.Background()

	const k = 12
	var wg sync.WaitGroup
	errs := make([]error, k)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			var err error
			switch i % 3 {
			case 0:
				_, err = se.Measure(g, cs, 8)
			case 1:
				_, err = se.Partition(g, cs, 8)
			default:
				_, err = se.Run(ctx, g, cs, 8, "pagerank", 5)
			}
			errs[i] = err
		}(i)
	}
	start.Done()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := cs.calls.Load(); got != 1 {
		t.Fatalf("%d concurrent requests ran Partition %d times, want exactly 1", k, got)
	}
	// The build is also deduplicated: every Partition call must return the
	// same shared topology.
	pg1, err := se.Partition(g, cs, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := se.Partition(g, cs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pg1 != pg2 {
		t.Fatal("repeated Partition returned distinct topologies")
	}
}

// TestSessionConcurrentMixedWorkload drives one Session from many
// goroutines with a mixed Select/Measure/Run workload over two program
// types and asserts every result is bit-identical to the serial answers
// computed up front. Run with -race this is the end-to-end serving-core
// guarantee.
func TestSessionConcurrentMixedWorkload(t *testing.T) {
	g := sessionTestGraph(t)
	se := cutfit.NewSession(cutfit.SessionOptions{})
	ctx := context.Background()
	const parts = 8

	// Serial ground truth, computed one-shot (no session, no cache).
	wantSel, err := cutfit.Select(g, cutfit.Strategies(), parts, cutfit.ProfilePageRank)
	if err != nil {
		t.Fatal(err)
	}
	pgSerial, err := cutfit.Partition(g, cutfit.EdgePartition2D(), parts)
	if err != nil {
		t.Fatal(err)
	}
	wantRanks, _, err := cutfit.RunPageRank(ctx, pgSerial, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels, _, err := cutfit.RunConnectedComponents(ctx, pgSerial, 0)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	const rounds = 3
	var wg sync.WaitGroup
	errs := make([]error, workers)
	mismatch := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				switch w % 4 {
				case 0: // empirical selection
					sel, err := se.Select(g, cutfit.Strategies(), parts, cutfit.ProfilePageRank)
					if err != nil {
						errs[w] = err
						return
					}
					if sel.Strategy.Name() != wantSel.Strategy.Name() {
						mismatch[w] = "selection winner diverged"
						return
					}
					for name, m := range wantSel.Results {
						if got := sel.Results[name]; got == nil || got.CommCost != m.CommCost || got.Balance != m.Balance {
							mismatch[w] = "selection metrics diverged for " + name
							return
						}
					}
				case 1: // pagerank on the shared cached topology
					pg, err := se.Partition(g, cutfit.EdgePartition2D(), parts)
					if err != nil {
						errs[w] = err
						return
					}
					ranks, _, err := cutfit.RunPageRank(ctx, pg, 5)
					if err != nil {
						errs[w] = err
						return
					}
					if !reflect.DeepEqual(ranks, wantRanks) {
						mismatch[w] = "pagerank ranks diverged from serial run"
						return
					}
				case 2: // cc: a second program type drawing from its own scratch pool
					pg, err := se.Partition(g, cutfit.EdgePartition2D(), parts)
					if err != nil {
						errs[w] = err
						return
					}
					labels, _, err := cutfit.RunConnectedComponents(ctx, pg, 0)
					if err != nil {
						errs[w] = err
						return
					}
					if !reflect.DeepEqual(labels, wantLabels) {
						mismatch[w] = "cc labels diverged from serial run"
						return
					}
				default: // the report-producing Run path
					rep, err := se.Run(ctx, g, cutfit.EdgePartition2D(), parts, "pagerank", 5)
					if err != nil {
						errs[w] = err
						return
					}
					if rep.Supersteps != 5 || len(rep.TopRanks) != 5 {
						mismatch[w] = "run report malformed"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if mismatch[w] != "" {
			t.Fatalf("worker %d: %s", w, mismatch[w])
		}
	}

	stats := se.CacheStats()
	if stats.Hits == 0 {
		t.Fatalf("concurrent workload produced no cache hits: %+v", stats)
	}
	// 9 strategy keys at most (6 paper strategies × {assignment, metrics}
	// + 2D's build): everything else must have been deduplicated or hit.
	if maxMisses := int64(len(cutfit.Strategies())*2 + 1); stats.Misses > maxMisses {
		t.Fatalf("misses = %d, want ≤ %d (identical requests recomputed)", stats.Misses, maxMisses)
	}
}

// TestSelectKeepsHybridVariantsDistinct: two parameterized variants of one
// strategy name must produce two ranking rows, with exactly the winning
// variant flagged (the partition.Keyer contract through Selection).
func TestSelectKeepsHybridVariantsDistinct(t *testing.T) {
	g := sessionTestGraph(t)
	se := cutfit.NewSession(cutfit.SessionOptions{})
	cands := []cutfit.Strategy{cutfit.HybridCut(2), cutfit.HybridCut(100)}
	sel, err := se.Select(g, cands, 8, cutfit.ProfilePageRank)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Results) != 2 {
		t.Fatalf("Selection.Results has %d entries for 2 Hybrid variants, want 2", len(sel.Results))
	}
	rows, err := cutfit.RankFromSelection(sel, "CommCost")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("ranking has %d rows, want 2", len(rows))
	}
	selected := 0
	for _, r := range rows {
		if r.Selected {
			selected++
		}
	}
	if selected != 1 {
		t.Fatalf("%d rows flagged selected, want exactly 1 (rows: %+v)", selected, rows)
	}
}

// TestOneShotWrappersStayOneShot: the package-level functions must not
// retain artifacts across calls (batch semantics).
func TestOneShotWrappersStayOneShot(t *testing.T) {
	g := sessionTestGraph(t)
	cs := &countingSessionStrategy{inner: cutfit.EdgePartition2D()}
	if _, err := cutfit.Measure(g, cs, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := cutfit.Measure(g, cs, 4); err != nil {
		t.Fatal(err)
	}
	if got := cs.calls.Load(); got != 2 {
		t.Fatalf("one-shot Measure called Partition %d times across two calls, want 2", got)
	}
}
