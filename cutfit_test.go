package cutfit_test

import (
	"context"
	"strings"
	"testing"

	"cutfit"
)

// TestPublicAPIEndToEnd drives the whole public surface: load a graph,
// partition it with every strategy, measure, run all four algorithms, and
// simulate cluster time.
func TestPublicAPIEndToEnd(t *testing.T) {
	in := strings.NewReader("0 1\n1 2\n2 0\n2 3\n3 4\n4 2\n")
	g, err := cutfit.LoadEdgeList(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}

	ctx := context.Background()
	for _, s := range cutfit.Strategies() {
		m, err := cutfit.Measure(g, s, 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if m.NonCut+m.Cut != int64(g.NumVertices()) {
			t.Fatalf("%s: metric identity violated", s.Name())
		}
		pg, err := cutfit.Partition(g, s, 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		ranks, stats, err := cutfit.RunPageRank(ctx, pg, 5)
		if err != nil {
			t.Fatalf("%s pagerank: %v", s.Name(), err)
		}
		if len(ranks) != g.NumVertices() {
			t.Fatalf("%s: ranks = %d", s.Name(), len(ranks))
		}
		b, err := cutfit.ConfigI().Simulate(stats, cutfit.EstimateGraphBytes(g.NumEdges()))
		if err != nil {
			t.Fatal(err)
		}
		if b.TotalSecs() <= 0 {
			t.Fatalf("%s: non-positive simulated time", s.Name())
		}

		labels, _, err := cutfit.RunConnectedComponents(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range labels {
			if l != 0 {
				t.Fatalf("%s: connected graph should collapse to label 0, got %d", s.Name(), l)
			}
		}

		tris, _, err := cutfit.RunTriangleCount(ctx, pg)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, c := range tris {
			total += c
		}
		if total/3 != 2 { // triangles {0,1,2} and {2,3,4}
			t.Fatalf("%s: triangles = %d, want 2", s.Name(), total/3)
		}

		dists, _, err := cutfit.RunShortestPaths(ctx, pg, []cutfit.VertexID{0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		i4, _ := g.Index(4)
		if d := dists[i4][0]; d != 2 { // 4 -> 2 -> 0
			t.Fatalf("%s: dist(4,0) = %d, want 2", s.Name(), d)
		}
	}
}

func TestStrategyByName(t *testing.T) {
	s, err := cutfit.StrategyByName("2D")
	if err != nil || s.Name() != "2D" {
		t.Fatalf("StrategyByName: %v", err)
	}
	if _, err := cutfit.StrategyByName("3D"); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if n := len(cutfit.ExtendedStrategies()); n != 8 {
		t.Fatalf("extended strategies = %d, want 8", n)
	}
}

func TestAdvisorSurface(t *testing.T) {
	p, err := cutfit.ProfileFor("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	rec := cutfit.Advise(p, cutfit.GraphFacts{Edges: 10_000_000}, 256)
	if rec.Strategy.Name() != "2D" {
		t.Fatalf("advice = %s", rec.Strategy.Name())
	}
	g := cutfit.FromEdges([]cutfit.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	best, results, err := cutfit.SelectEmpirically(g, cutfit.Strategies(), 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || len(results) != 6 {
		t.Fatalf("empirical selection: %v, %d results", best, len(results))
	}
	if f := cutfit.Facts(g); f.Vertices != 3 {
		t.Fatalf("facts = %+v", f)
	}
}

func TestDatasetsSurface(t *testing.T) {
	specs := cutfit.Datasets()
	if len(specs) != 9 {
		t.Fatalf("datasets = %d, want 9", len(specs))
	}
	spec, err := cutfit.DatasetByName("youtube")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.BuildCached()
	if err != nil {
		t.Fatal(err)
	}
	if g.SymmetryPct() != 100 {
		t.Fatal("youtube analog should be undirected")
	}
}

func TestClusterConfigsSurface(t *testing.T) {
	if cutfit.ConfigI().NumPartitions != 128 || cutfit.ConfigII().NumPartitions != 256 {
		t.Fatal("paper configs wrong")
	}
	if cutfit.ConfigIII().NetworkGbps != 40 {
		t.Fatal("config iii should be 40 Gb/s")
	}
	if cutfit.ConfigIV().StorageMBps <= cutfit.ConfigIII().StorageMBps {
		t.Fatal("config iv should have faster storage")
	}
}

func TestExtendedAlgorithmsSurface(t *testing.T) {
	ctx := context.Background()
	// Two triangles sharing vertex 2 — a connected, clustered shape.
	g := cutfit.FromEdges([]cutfit.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 0}, {Src: 0, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
		{Src: 4, Dst: 2}, {Src: 2, Dst: 4},
	})
	pg, err := cutfit.Partition(g, cutfit.HybridCut(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	ranks, stats, err := cutfit.RunDynamicPageRank(ctx, pg, 1e-6, 0)
	if err != nil || !stats.Converged {
		t.Fatalf("dynamic PR: %v converged=%v", err, stats != nil && stats.Converged)
	}
	if len(ranks) != 5 {
		t.Fatalf("ranks = %d", len(ranks))
	}
	labels, _, err := cutfit.RunLabelPropagation(ctx, pg, 3)
	if err != nil || len(labels) != 5 {
		t.Fatalf("label propagation: %v, %d labels", err, len(labels))
	}
	member, _, err := cutfit.RunKCoreMembership(ctx, pg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range member {
		if !ok {
			t.Fatalf("vertex %d should be in the 2-core", i)
		}
	}
	cores := cutfit.KCoreNumbers(g)
	for i, c := range cores {
		if c != 2 {
			t.Fatalf("core(%d) = %d, want 2", i, c)
		}
	}
}

func TestPredictorSurface(t *testing.T) {
	g := cutfit.FromEdges([]cutfit.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	})
	times := map[string]float64{}
	for _, s := range cutfit.Strategies() {
		m, err := cutfit.Measure(g, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		times[s.Name()] = 1 + 0.001*float64(m.CommCost)
	}
	pred, results, err := cutfit.TrainPredictor(g, cutfit.Strategies(), 3, cutfit.ProfilePageRank, times)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := pred.RankByPrediction(results)
	if err != nil || len(ranked) != 6 {
		t.Fatalf("rank: %v, %v", ranked, err)
	}
}

func TestGranularityAdviceSurface(t *testing.T) {
	a := cutfit.AdviseGranularity(cutfit.ProfileConnectedComponents, cutfit.GraphFacts{Edges: 5_000_000}, 128, 256)
	if a.NumPartitions != 256 || a.Reason == "" {
		t.Fatalf("advice = %+v", a)
	}
	b := cutfit.AdviseGranularity(cutfit.ProfilePageRank, cutfit.GraphFacts{Edges: 5_000_000}, 128, 256)
	if b.NumPartitions != 128 {
		t.Fatalf("PR advice = %+v", b)
	}
}

func TestRangeCutSurface(t *testing.T) {
	g := cutfit.FromEdges([]cutfit.Edge{{Src: 0, Dst: 1}, {Src: 9, Dst: 8}})
	m, err := cutfit.Measure(g, cutfit.RangeCut(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cut != 0 {
		t.Fatalf("range on two distant pairs should cut nothing, Cut=%d", m.Cut)
	}
}
