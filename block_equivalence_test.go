package cutfit_test

import (
	"context"
	"reflect"
	"testing"

	"cutfit"
	"cutfit/internal/graph"
	"cutfit/internal/testutil"
)

// equivEdges generates a deterministic skewed edge stream with a weighted
// minority, sized to span many 256-edge blocks.
func equivEdges(n int, seed uint64) ([]cutfit.Edge, []float64) {
	edges := make([]cutfit.Edge, n)
	weights := make([]float64, n)
	x := seed | 1
	for i := range edges {
		x = x*6364136223846793005 + 1442695040888963407
		src := (x >> 33) % 1500
		x = x*6364136223846793005 + 1442695040888963407
		dst := (x >> 33) % 1500
		if i%3 == 0 { // skew: a third of edges hit a small hub set
			dst %= 40
		}
		edges[i] = cutfit.Edge{Src: cutfit.VertexID(src), Dst: cutfit.VertexID(dst)}
		weights[i] = 1
		if i%11 == 0 {
			weights[i] = 0.25 + float64(i%7)
		}
	}
	return edges, weights
}

// blockGraphOf rebuilds g's exact edge content (weights included) into a
// fresh block-backed graph with small blocks, so every scan crosses many
// block boundaries.
func blockGraphOf(t *testing.T, edges []cutfit.Edge, weights []float64) *cutfit.Graph {
	t.Helper()
	bb := graph.NewBlockBuilder(256)
	bb.Append(edges, weights)
	return graph.FromBlocks(bb.Finish())
}

// generations derives base → grown → shrunk → slid pairs of a dense and a
// block-backed graph through identical mutation sequences. Every block
// generation must keep its block tier — otherwise the suite would silently
// compare dense against dense.
func generations(t *testing.T) map[string][2]*cutfit.Graph {
	t.Helper()
	const n = 8192
	edges, weights := equivEdges(n, 42)

	dense, err := cutfit.FromWeightedEdges(append([]cutfit.Edge(nil), edges...), append([]float64(nil), weights...))
	if err != nil {
		t.Fatal(err)
	}
	block := blockGraphOf(t, edges, weights)

	suffix, sufW := equivEdges(1024, 99)
	dGrown, _, err := dense.GrowWeighted(suffix, sufW)
	if err != nil {
		t.Fatal(err)
	}
	bGrown, _, err := block.GrowWeighted(suffix, sufW)
	if err != nil {
		t.Fatal(err)
	}

	retract := []cutfit.Edge{edges[10], edges[777], edges[5000], suffix[3]}
	dShrunk, _, err := dGrown.Shrink(retract)
	if err != nil {
		t.Fatal(err)
	}
	bShrunk, _, err := bGrown.Shrink(retract)
	if err != nil {
		t.Fatal(err)
	}

	more, moreW := equivEdges(512, 7)
	dSlid, _, err := dShrunk.SlideWindow(more, moreW, 300)
	if err != nil {
		t.Fatal(err)
	}
	bSlid, _, err := bShrunk.SlideWindow(more, moreW, 300)
	if err != nil {
		t.Fatal(err)
	}

	gens := map[string][2]*cutfit.Graph{
		"base":   {dense, block},
		"grown":  {dGrown, bGrown},
		"shrunk": {dShrunk, bShrunk},
		"slid":   {dSlid, bSlid},
	}
	for name, pair := range gens {
		if pair[0].BlockBacked() {
			t.Fatalf("%s: dense twin is block-backed", name)
		}
		if !pair[1].BlockBacked() {
			t.Fatalf("%s: block twin lost its block tier", name)
		}
	}
	return gens
}

// TestBlockDenseEquivalence: a block-backed graph is bit-identical to its
// dense twin through the whole pipeline — fingerprint, assignment PIDs,
// the full metric set, PageRank and connected components — across
// base/grown/shrunk/slid generations and hash, streaming and hybrid
// strategies. Runs under `make race`, so it also exercises the parallel
// block scatter pass and concurrent block decode for data races.
func TestBlockDenseEquivalence(t *testing.T) {
	strategies := map[string]cutfit.Strategy{}
	for _, name := range []string{"2D", "Greedy", "HDRF", "Hybrid"} {
		s, err := cutfit.StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		strategies[name] = s
	}
	const numParts = 16
	ctx := context.Background()

	for gen, pair := range generations(t) {
		dense, block := pair[0], pair[1]
		t.Run(gen, func(t *testing.T) {
			if df, bf := dense.Fingerprint(), block.Fingerprint(); df != bf {
				t.Fatalf("fingerprint: dense %016x, block %016x", df, bf)
			}
			for name, s := range strategies {
				t.Run(name, func(t *testing.T) {
					da, err := cutfit.PartitionAssignment(dense, s, numParts)
					if err != nil {
						t.Fatal(err)
					}
					ba, err := cutfit.PartitionAssignment(block, s, numParts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(da.PIDs, ba.PIDs) {
						t.Fatal("assignment PIDs differ")
					}

					dm, err := cutfit.MeasureAssignment(da)
					if err != nil {
						t.Fatal(err)
					}
					bm, err := cutfit.MeasureAssignment(ba)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(dm, bm) {
						t.Fatalf("metrics differ:\ndense %+v\nblock %+v", dm, bm)
					}

					dpg, err := cutfit.PartitionFromAssignment(da, cutfit.PartitionOptions{})
					if err != nil {
						t.Fatal(err)
					}
					bpg, err := cutfit.PartitionFromAssignment(ba, cutfit.PartitionOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if err := testutil.CheckPartitionInvariants(block, ba.PIDs, numParts, bpg); err != nil {
						t.Fatal(err)
					}

					dRanks, _, err := cutfit.RunPageRank(ctx, dpg, 5)
					if err != nil {
						t.Fatal(err)
					}
					bRanks, _, err := cutfit.RunPageRank(ctx, bpg, 5)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(dRanks, bRanks) {
						t.Fatal("PageRank ranks differ")
					}

					dCC, _, err := cutfit.RunConnectedComponents(ctx, dpg, 0)
					if err != nil {
						t.Fatal(err)
					}
					bCC, _, err := cutfit.RunConnectedComponents(ctx, bpg, 0)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(dCC, bCC) {
						t.Fatal("connected-components labels differ")
					}
				})
			}
		})
	}
}

// TestBlockAssignAllocsOBlocks: one-pass streamed assignment over a block
// store allocates O(blocks), never O(E) — the per-block decode goes
// through pooled scratch and the only O(E) allocation is the PID slice
// itself. The stateless 2D hash strategy is used so the measurement
// isolates block-tier decode overhead from any per-vertex strategy state.
func TestBlockAssignAllocsOBlocks(t *testing.T) {
	const n = 1 << 15 // 128 blocks of 256
	edges, _ := equivEdges(n, 5)
	bb := graph.NewBlockBuilder(256)
	bb.Append(edges, nil)
	g := graph.FromBlocks(bb.Finish())
	s, err := cutfit.StrategyByName("2D")
	if err != nil {
		t.Fatal(err)
	}
	// Warm lazily-built views (vertex index, degrees) out of the measured
	// region; they are one-time costs, not per-assignment ones.
	if _, err := cutfit.PartitionAssignment(g, s, 16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := cutfit.PartitionAssignment(g, s, 16); err != nil {
			t.Fatal(err)
		}
	})
	// O(blocks) budget: a handful of allocations per 256-edge block would
	// pass; one allocation per edge (O(E) ≈ 32768) must fail loudly.
	if limit := float64(g.Blocks().NumBlocks() * 8); allocs > limit {
		t.Fatalf("streamed assignment made %.0f allocations for %d blocks (limit %.0f)", allocs, g.Blocks().NumBlocks(), limit)
	}
}
