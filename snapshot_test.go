// Round-trip property suite for the persistence subsystem: a snapshotted
// session, restored in a "new process", must serve bit-identical artifacts
// and algorithm results for every strategy family and graph family —
// including a grown (post-AppendEdges) generation — without a single
// recomputation.
package cutfit_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"cutfit"
)

// snapshotStrategies covers every strategy family the library ships: the
// 2D grid hash, the locality-preserving modulo, both streaming partitioners
// (whose restored assignments must not depend on retained stream state) and
// the parameterized hybrid cut (whose cache key is not its table name).
func snapshotStrategies(t *testing.T) []cutfit.Strategy {
	t.Helper()
	var out []cutfit.Strategy
	for _, name := range []string{"2D", "SC", "Greedy", "HDRF"} {
		s, err := cutfit.StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return append(out, cutfit.HybridCut(4))
}

// TestSnapshotRestoreRoundTrip: snapshot → restore over every strategy ×
// graph family yields bit-identical assignments, metrics and PageRank/CC
// results, with the restored session never re-partitioning (cache counters
// asserted). A grown generation rides along in the same snapshot.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const parts = 16
	ctx := context.Background()
	strategies := snapshotStrategies(t)

	for name, g := range pipelineGraphs(t) {
		t.Run(name, func(t *testing.T) {
			se := cutfit.NewSession(cutfit.SessionOptions{})

			type want struct {
				pids    []cutfit.PID
				metrics *cutfit.Metrics
				pr, cc  *cutfit.RunReport
			}
			wants := make(map[string]want, len(strategies))
			for _, s := range strategies {
				a, err := se.Assignment(g, s, parts)
				if err != nil {
					t.Fatal(err)
				}
				m, err := se.Measure(g, s, parts)
				if err != nil {
					t.Fatal(err)
				}
				pr, err := se.Run(ctx, g, s, parts, "pagerank", 5)
				if err != nil {
					t.Fatal(err)
				}
				cc, err := se.Run(ctx, g, s, parts, "cc", 0)
				if err != nil {
					t.Fatal(err)
				}
				wants[s.Name()] = want{pids: append([]cutfit.PID(nil), a.PIDs...), metrics: m, pr: pr, cc: cc}
			}

			// A grown generation: append a batch (including a brand-new
			// vertex) and warm it under 2D.
			verts := g.Vertices()
			next := verts[len(verts)-1] + 1
			batch := []cutfit.Edge{
				{Src: verts[0], Dst: next}, {Src: next, Dst: verts[1]}, {Src: verts[2], Dst: verts[0]},
			}
			ng, err := se.AppendEdges(g, batch)
			if err != nil {
				t.Fatal(err)
			}
			grownStrategy := strategies[0] // 2D
			ga, err := se.Assignment(ng, grownStrategy, parts)
			if err != nil {
				t.Fatal(err)
			}
			grownPIDs := append([]cutfit.PID(nil), ga.PIDs...)
			grownPR, err := se.Run(ctx, ng, grownStrategy, parts, "pagerank", 5)
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			sum, err := se.SnapshotNamed(&buf, map[string]*cutfit.Graph{"base": g, "grown": ng})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Graphs != 2 {
				t.Fatalf("snapshot recorded %d graphs, want 2", sum.Graphs)
			}

			se2, named, err := cutfit.RestoreSession(bytes.NewReader(buf.Bytes()), cutfit.SessionOptions{})
			if err != nil {
				t.Fatal(err)
			}
			g2, ng2 := named["base"], named["grown"]
			if g2 == nil || ng2 == nil {
				t.Fatalf("restored names %v, want base and grown", named)
			}
			if g2.NumEdges() != g.NumEdges() || ng2.NumEdges() != ng.NumEdges() {
				t.Fatal("restored graphs have different edge counts")
			}

			for _, s := range strategies {
				w := wants[s.Name()]
				a2, err := se2.Assignment(g2, s, parts)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if !reflect.DeepEqual(a2.PIDs, w.pids) {
					t.Fatalf("%s: restored assignment differs", s.Name())
				}
				m2, err := se2.Measure(g2, s, parts)
				if err != nil {
					t.Fatal(err)
				}
				if d := metricsDiff(m2, w.metrics); d != "" {
					t.Fatalf("%s: restored metrics differ: %s", s.Name(), d)
				}
				pr2, err := se2.Run(ctx, g2, s, parts, "pagerank", 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(pr2, w.pr) {
					t.Fatalf("%s: restored PageRank run differs:\n got %+v\nwant %+v", s.Name(), pr2, w.pr)
				}
				cc2, err := se2.Run(ctx, g2, s, parts, "cc", 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cc2, w.cc) {
					t.Fatalf("%s: restored CC run differs", s.Name())
				}
			}

			ga2, err := se2.Assignment(ng2, grownStrategy, parts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ga2.PIDs, grownPIDs) {
				t.Fatal("restored grown-generation assignment differs")
			}
			gpr2, err := se2.Run(ctx, ng2, grownStrategy, parts, "pagerank", 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gpr2, grownPR) {
				t.Fatal("restored grown-generation PageRank run differs")
			}

			stats := se2.CacheStats()
			if stats.Misses != 0 {
				t.Fatalf("restored session recomputed %d artifacts (stats %+v) — restore must make every request a hit", stats.Misses, stats)
			}
			if stats.Hits == 0 {
				t.Fatalf("restored session served no hits: %+v", stats)
			}
		})
	}
}

// TestSnapshotDiskTierWarmStart: with only the disk tier (no snapshot
// stream), a second session over the same directory — and a fresh graph
// object with identical content — restores artifacts from disk instead of
// re-partitioning, through the public Session surface.
func TestSnapshotDiskTierWarmStart(t *testing.T) {
	dir := t.TempDir()
	graphs := pipelineGraphs(t)
	g := graphs["rmat"]
	s, err := cutfit.StrategyByName("2D")
	if err != nil {
		t.Fatal(err)
	}
	const parts = 16

	se1 := cutfit.NewSession(cutfit.SessionOptions{DiskDir: dir})
	want, err := se1.Measure(g, s, parts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se1.Partition(g, s, parts); err != nil {
		t.Fatal(err)
	}
	if n, err := se1.Flush(); err != nil || n == 0 {
		t.Fatalf("Flush wrote %d entries, err %v", n, err)
	}

	// "Restart": same content, new object, new session.
	g2 := cutfit.FromEdges(append([]cutfit.Edge(nil), g.Edges()...))
	se2 := cutfit.NewSession(cutfit.SessionOptions{DiskDir: dir})
	got, err := se2.Measure(g2, s, parts)
	if err != nil {
		t.Fatal(err)
	}
	if d := metricsDiff(got, want); d != "" {
		t.Fatalf("disk-restored metrics differ: %s", d)
	}
	if _, err := se2.Partition(g2, s, parts); err != nil {
		t.Fatal(err)
	}
	stats := se2.CacheStats()
	if stats.DiskHits < 2 {
		t.Fatalf("expected ≥2 disk hits (metrics + topology), got %+v", stats)
	}
}

// TestRestoreSessionRejectsCorruption: RestoreSession must fail loudly on
// a tampered snapshot rather than serve a wrong-but-plausible cache.
func TestRestoreSessionRejectsCorruption(t *testing.T) {
	g := pipelineGraphs(t)["random"]
	s, _ := cutfit.StrategyByName("2D")
	se := cutfit.NewSession(cutfit.SessionOptions{})
	if _, err := se.Measure(g, s, 8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := se.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data); i += 997 {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0xFF
		if _, _, err := cutfit.RestoreSession(bytes.NewReader(mutated), cutfit.SessionOptions{}); err == nil {
			t.Fatalf("flip at byte %d restored successfully", i)
		}
	}
	if _, _, err := cutfit.RestoreSession(bytes.NewReader(data[:len(data)/2]), cutfit.SessionOptions{}); err == nil {
		t.Fatal("truncated snapshot restored successfully")
	}
}

// TestOneShotSessionSnapshotErrors: the zero-value one-shot session has no
// cache and must refuse to snapshot rather than write an empty container.
func TestOneShotSessionSnapshotErrors(t *testing.T) {
	var se cutfit.Session
	if err := se.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("one-shot session snapshot must error")
	}
	if n, err := se.Flush(); n != 0 || err != nil {
		t.Fatalf("one-shot Flush = (%d, %v), want (0, nil)", n, err)
	}
}
