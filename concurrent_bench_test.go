// Concurrent-serving benchmarks: the throughput effect of the engine's
// per-program-type scratch pools under simultaneous runs, and the cost gap
// between Session cache hits and misses. Before/after numbers are recorded
// in CHANGES.md; `make bench-smoke` runs both briefly.
package cutfit_test

import (
	"context"
	"testing"

	"cutfit"
)

// BenchmarkConcurrentRuns executes PageRank from ≥4 goroutines at once on
// one shared topology, fresh-allocating engine scratch per run versus
// drawing it from the ReuseBuffers pools. The pooled variant is the
// serving configuration; allocs/op is the headline number.
func BenchmarkConcurrentRuns(b *testing.B) {
	g := benchGraph(b, "youtube")
	const numParts = 128
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		reuse bool
	}{
		{"fresh", false},
		{"pooled", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pg, err := cutfit.PartitionWithOptions(g, cutfit.EdgePartition2D(), numParts,
				cutfit.PartitionOptions{ReuseBuffers: tc.reuse})
			if err != nil {
				b.Fatal(err)
			}
			// Warm once so the pooled variant starts with a parked scratch.
			if _, _, err := cutfit.RunPageRank(ctx, pg, 5); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(4) // ≥4 concurrent runs even on one core
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := cutfit.RunPageRank(ctx, pg, 5); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSessionCache measures one full Measure+Partition request
// against a cold session (miss: every iteration partitions and builds)
// and a warm one (hit: every iteration is two cache lookups).
func BenchmarkSessionCache(b *testing.B) {
	g := benchGraph(b, "youtube")
	const numParts = 128
	s := cutfit.EdgePartition2D()
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			se := cutfit.NewSession(cutfit.SessionOptions{})
			if _, err := se.Measure(g, s, numParts); err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(g, s, numParts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		se := cutfit.NewSession(cutfit.SessionOptions{})
		if _, err := se.Measure(g, s, numParts); err != nil {
			b.Fatal(err)
		}
		if _, err := se.Partition(g, s, numParts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := se.Measure(g, s, numParts); err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(g, s, numParts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
