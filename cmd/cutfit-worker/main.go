// Command cutfit-worker is the per-node process of a distributed cutfit
// cluster: it holds the shard containers a coordinator (cutfitd started
// with -workers) ships to it, runs the per-partition compute phase of
// each superstep against them, and answers reduce frames of
// combiner-pre-aggregated messages. One worker serves many runs and
// many graph generations concurrently; shards are content-addressed, so
// a re-run on an unchanged graph ships nothing and a run after an
// append ships only a delta.
//
// Usage:
//
//	cutfit-worker [-addr :9090]
//
// Endpoints (see docs/DISTRIBUTED.md for the wire protocol):
//
//	GET  /dist/v1/healthz                 liveness + resident shard count
//	POST /dist/v1/shards                  install a full shard container
//	POST /dist/v1/shards/delta            patch a shard from a resident base
//	POST /dist/v1/runs                    bind a run to a resident shard
//	POST /dist/v1/runs/{id}/step          one superstep: broadcast frame in,
//	                                      reduce frame out
//	POST /dist/v1/runs/{id}/finish        release the run's state
//	GET  /metrics                         worker-side dist metric series in
//	                                      the Prometheus text format
//
// The worker is stateless across restarts by design: a coordinator that
// finds its shard evicted (404 on run start) re-ships it and retries, so
// killing and restarting workers is always safe.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cutfit/internal/dist"
	"cutfit/internal/obsv"
)

// shutdownGrace bounds how long in-flight supersteps may run after a
// termination signal.
const shutdownGrace = 10 * time.Second

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	worker := dist.NewWorker()
	mux := http.NewServeMux()
	mux.Handle("/dist/v1/", worker.Handler())
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obsv.Default.WritePrometheus(w)
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("cutfit-worker listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cutfit-worker:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	}
}
