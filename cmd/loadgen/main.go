// Command loadgen drives a mixed workload against a running cutfitd and
// reports a per-operation latency quantile table — the closing link of
// the serving-hardening loop: push open-loop traffic at a target rate,
// watch the daemon's /metrics series move, and read the latency
// distribution the clients actually saw.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-rps 50] [-duration 30s]
//	        [-mix run=4,metrics=3,advise=1,append=1,slide=1,register=1]
//	        [-parts 8] [-iters 3] [-out report.txt] [-metrics-out metrics.prom]
//
// Arrivals are open-loop: one request is dispatched per 1/rps tick
// regardless of how many are still in flight, so a slow daemon builds
// queueing (and 429s under admission control) exactly as real traffic
// would, instead of the closed-loop coordinated omission artifact.
//
// The op mix is weighted: each arrival picks an operation with
// probability proportional to its weight. Operations target two graphs
// the generator registers at startup — a stable one ("lg-main") serving
// metrics/advise/run so the daemon's cache does its job, and a mutable
// one ("lg-app") absorbing append/slide generation steps.
//
// Exit status is non-zero if any request got a 5xx or a transport
// error, making the nightly loadgen-smoke job a pass/fail gate; 4xx
// responses (including admission 429s) are reported but do not fail
// the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type config struct {
	addr     string
	rps      float64
	duration time.Duration
	mix      []opSpec
	parts    int
	iters    int
	seed     int64
	timeout  time.Duration
}

// opSpec is one operation with its mix weight.
type opSpec struct {
	name   string
	weight int
}

var knownOps = map[string]bool{
	"register": true, "metrics": true, "advise": true,
	"run": true, "append": true, "slide": true,
}

// parseMix parses "run=4,metrics=3,..." into weighted ops.
func parseMix(s string) ([]opSpec, error) {
	var out []opSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix element %q: want op=weight", part)
		}
		if !knownOps[name] {
			return nil, fmt.Errorf("mix element %q: unknown op (want register/metrics/advise/run/append/slide)", part)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix element %q: weight must be a non-negative integer", part)
		}
		if w > 0 {
			out = append(out, opSpec{name, w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix selects no operations")
	}
	return out, nil
}

// pick returns the op for one arrival: weighted choice by r in [0,1).
func pick(mix []opSpec, r float64) string {
	total := 0
	for _, op := range mix {
		total += op.weight
	}
	n := int(r * float64(total))
	for _, op := range mix {
		if n < op.weight {
			return op.name
		}
		n -= op.weight
	}
	return mix[len(mix)-1].name
}

// sample is one completed request.
type sample struct {
	op      string
	status  int // 0 = transport error
	elapsed time.Duration
}

// opStats aggregates one operation's samples.
type opStats struct {
	count, err4xx, err5xx, failed int
	durations                     []time.Duration
}

// quantile returns the q-th (0..1) latency of a sorted sample set.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// report is the final accounting of a load run.
type report struct {
	byOp      map[string]*opStats
	total     int
	wallClock time.Duration
}

func (r *report) err5xx() int {
	n := 0
	for _, st := range r.byOp {
		n += st.err5xx + st.failed
	}
	return n
}

// table renders the per-op quantile table.
func (r *report) table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %7s %7s %7s %9s %9s %9s %9s\n",
		"op", "count", "4xx", "5xx", "fail", "p50", "p90", "p99", "max")
	names := make([]string, 0, len(r.byOp))
	for name := range r.byOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := r.byOp[name]
		sort.Slice(st.durations, func(i, j int) bool { return st.durations[i] < st.durations[j] })
		var max time.Duration
		if n := len(st.durations); n > 0 {
			max = st.durations[n-1]
		}
		fmt.Fprintf(&b, "%-10s %8d %7d %7d %7d %9s %9s %9s %9s\n",
			name, st.count, st.err4xx, st.err5xx, st.failed,
			fmtDur(quantile(st.durations, 0.50)), fmtDur(quantile(st.durations, 0.90)),
			fmtDur(quantile(st.durations, 0.99)), fmtDur(max))
	}
	achieved := float64(r.total) / r.wallClock.Seconds()
	fmt.Fprintf(&b, "total %d requests in %s (%.1f req/s achieved)\n",
		r.total, r.wallClock.Round(time.Millisecond), achieved)
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// client issues the operations against the daemon.
type client struct {
	base string
	http *http.Client
}

func (c *client) post(path string, body any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// mainEdges is the stable serving graph: three joined triangles plus a
// hub, enough structure for every strategy and algorithm to exercise
// real code paths while staying millisecond-cheap.
const mainEdges = "0 1\n1 2\n2 0\n2 3\n3 4\n4 5\n5 3\n5 6\n6 7\n7 8\n8 6\n0 6\n1 7\n"

// randomBatch generates a small random edge batch for append/slide.
func randomBatch(rng *rand.Rand) string {
	var b strings.Builder
	n := 4 + rng.Intn(8)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d %d\n", rng.Intn(64), rng.Intn(64))
	}
	return b.String()
}

// dispatch issues one operation and returns its sample.
func dispatch(c *client, op string, cfg config, rng *rand.Rand) sample {
	start := time.Now()
	var status int
	var err error
	switch op {
	case "register":
		// Rotate over a few ephemeral names: re-registering the same name
		// with new data exercises the invalidation path without wiping the
		// stable graph's cache.
		name := fmt.Sprintf("lg-reg-%d", rng.Intn(4))
		status, err = c.post("/v1/graphs", map[string]any{"name": name, "edges": randomBatch(rng)})
	case "metrics":
		status, err = c.post("/v1/metrics", map[string]any{"graph": "lg-main", "strategy": "2D", "parts": cfg.parts})
	case "advise":
		status, err = c.post("/v1/advise", map[string]any{"graph": "lg-main", "alg": "pagerank", "parts": cfg.parts})
	case "run":
		status, err = c.post("/v1/run", map[string]any{
			"graph": "lg-main", "alg": "pagerank", "strategy": "2D",
			"parts": cfg.parts, "iters": cfg.iters,
		})
	case "append":
		status, err = c.post("/v1/graphs/lg-app/edges", map[string]any{"edges": randomBatch(rng)})
	case "slide":
		batch := randomBatch(rng)
		status, err = c.post("/v1/graphs/lg-app/edges", map[string]any{
			"edges": batch, "expire_before": 1 + rng.Intn(4),
		})
	}
	if err != nil {
		return sample{op: op, status: 0, elapsed: time.Since(start)}
	}
	return sample{op: op, status: status, elapsed: time.Since(start)}
}

// setup registers the generator's graphs and waits for the daemon.
func setup(c *client) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c.http.Get(c.base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy within 10s", c.base)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for name, edges := range map[string]string{"lg-main": mainEdges, "lg-app": mainEdges} {
		if status, err := c.post("/v1/graphs", map[string]any{"name": name, "edges": edges}); err != nil {
			return fmt.Errorf("registering %s: %w", name, err)
		} else if status != http.StatusOK {
			return fmt.Errorf("registering %s: status %d", name, status)
		}
	}
	return nil
}

// runLoad drives the open-loop arrival process and aggregates samples.
func runLoad(cfg config) (*report, error) {
	c := &client{base: strings.TrimRight(cfg.addr, "/"), http: &http.Client{Timeout: cfg.timeout}}
	if err := setup(c); err != nil {
		return nil, err
	}

	interval := time.Duration(float64(time.Second) / cfg.rps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	samples := make(chan sample, 4096)
	var wg sync.WaitGroup
	var mixMu sync.Mutex
	rng := rand.New(rand.NewSource(cfg.seed))

	start := time.Now()
	ticker := time.NewTicker(interval)
	stop := time.After(cfg.duration)
dispatchLoop:
	for {
		select {
		case <-stop:
			break dispatchLoop
		case <-ticker.C:
			mixMu.Lock()
			op := pick(cfg.mix, rng.Float64())
			seed := rng.Int63()
			mixMu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				samples <- dispatch(c, op, cfg, rand.New(rand.NewSource(seed)))
			}()
		}
	}
	ticker.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	rep := &report{byOp: make(map[string]*opStats)}
collectLoop:
	for {
		select {
		case s := <-samples:
			rep.record(s)
		case <-done:
			for {
				select {
				case s := <-samples:
					rep.record(s)
				default:
					break collectLoop
				}
			}
		}
	}
	rep.wallClock = time.Since(start)
	return rep, nil
}

func (r *report) record(s sample) {
	st := r.byOp[s.op]
	if st == nil {
		st = &opStats{}
		r.byOp[s.op] = st
	}
	st.count++
	r.total++
	switch {
	case s.status == 0:
		st.failed++
	case s.status >= 500:
		st.err5xx++
	case s.status >= 400:
		st.err4xx++
	}
	st.durations = append(st.durations, s.elapsed)
}

// scrapeMetrics saves the daemon's /metrics exposition to path.
func scrapeMetrics(c *client, path string) error {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "cutfitd base URL")
	rps := flag.Float64("rps", 50, "target arrival rate, requests per second (open loop)")
	duration := flag.Duration("duration", 30*time.Second, "how long to generate load")
	mixFlag := flag.String("mix", "run=4,metrics=3,advise=1,append=1,slide=1,register=1", "weighted operation mix")
	parts := flag.Int("parts", 8, "partition count used by metrics/advise/run requests")
	iters := flag.Int("iters", 3, "iterations per run request")
	seed := flag.Int64("seed", 1, "RNG seed for the op sequence and edge batches")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	out := flag.String("out", "", "also write the quantile table to this file")
	metricsOut := flag.String("metrics-out", "", "scrape /metrics after the run into this file")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	cfg := config{
		addr: *addr, rps: *rps, duration: *duration, mix: mix,
		parts: *parts, iters: *iters, seed: *seed, timeout: *timeout,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	table := rep.table()
	fmt.Print(table)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(table), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: writing report:", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		c := &client{base: strings.TrimRight(cfg.addr, "/"), http: &http.Client{Timeout: cfg.timeout}}
		if err := scrapeMetrics(c, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: scraping metrics:", err)
			os.Exit(1)
		}
	}
	if n := rep.err5xx(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests got a 5xx or transport error\n", n)
		os.Exit(1)
	}
}
