package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("run=4, metrics=3,advise=0,slide=1")
	if err != nil {
		t.Fatal(err)
	}
	// advise=0 is dropped; the rest keep their weights in order.
	want := []opSpec{{"run", 4}, {"metrics", 3}, {"slide", 1}}
	if len(mix) != len(want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("mix[%d] = %v, want %v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "run", "run=-1", "run=x", "teleport=1", "run=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) should fail", bad)
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	mix := []opSpec{{"a", 1}, {"b", 3}}
	if got := pick(mix, 0.0); got != "a" {
		t.Errorf("pick(0.0) = %q, want a", got)
	}
	if got := pick(mix, 0.99); got != "b" {
		t.Errorf("pick(0.99) = %q, want b", got)
	}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[pick(mix, float64(i)/1000)]++
	}
	if counts["a"] == 0 || counts["b"] < counts["a"] {
		t.Errorf("weighted pick distribution off: %v", counts)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.50); q != 5 {
		t.Errorf("p50 = %d, want 5", q)
	}
	if q := quantile(sorted, 0.99); q != 9 {
		t.Errorf("p99 of 10 samples = %d, want 9", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

// stubDaemon mimics just enough of cutfitd for an end-to-end loadgen
// run: health, graph registration and the op endpoints, counting what
// arrives.
func stubDaemon(fail5xx bool) (*httptest.Server, *atomic.Int64) {
	var requests atomic.Int64
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if fail5xx {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": true})
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/graphs", ok)
	mux.HandleFunc("POST /v1/graphs/{name}/edges", ok)
	mux.HandleFunc("POST /v1/metrics", ok)
	mux.HandleFunc("POST /v1/advise", ok)
	mux.HandleFunc("POST /v1/run", ok)
	return httptest.NewServer(mux), &requests
}

func TestRunLoadAgainstStub(t *testing.T) {
	ts, requests := stubDaemon(false)
	defer ts.Close()
	mix, err := parseMix("run=2,metrics=2,append=1,slide=1,register=1,advise=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(config{
		addr: ts.URL, rps: 200, duration: 300 * time.Millisecond,
		mix: mix, parts: 4, iters: 2, seed: 7, timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.total == 0 {
		t.Fatal("no requests dispatched")
	}
	if got := rep.err5xx(); got != 0 {
		t.Fatalf("err5xx = %d, want 0", got)
	}
	if requests.Load() == 0 {
		t.Fatal("stub saw no traffic")
	}
	table := rep.table()
	for _, want := range []string{"op", "p50", "p99", "req/s achieved"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunLoadCounts5xx(t *testing.T) {
	ts, _ := stubDaemon(true)
	defer ts.Close()
	mix, _ := parseMix("metrics=1")
	rep, err := runLoad(config{
		addr: ts.URL, rps: 100, duration: 200 * time.Millisecond,
		mix: mix, parts: 4, iters: 1, seed: 1, timeout: 5 * time.Second,
	})
	if err == nil {
		// Setup registers graphs against the failing stub, which already
		// returns 500 — runLoad is expected to fail during setup.
		if rep.err5xx() == 0 {
			t.Fatal("5xx responses not counted")
		}
	}
}
