// Command distsmoke is the end-to-end gate for distributed serving: it
// boots a real cluster — two cutfit-worker processes, a coordinator
// cutfitd (-workers) and a plain local cutfitd — then proves the
// distributed daemon is indistinguishable from the local one except for
// where the supersteps ran:
//
//  1. the loadgen mix runs against the coordinator with zero 5xx
//     (loadgen's exit contract);
//  2. /v1/run responses for pagerank, dynamicpr and cc are byte-equal
//     between the two daemons — before AND after the same edge batch is
//     appended to both (the delta-shipping path);
//  3. the coordinator's metrics prove runs actually fanned out
//     (cutfit_dist_runs_total{mode="distributed"} > 0) and none fell
//     back to local (mode="fallback" stays 0) — a silently degraded
//     cluster fails the smoke even though results would still be right.
//
// The coordinator's final /metrics scrape is saved to -metrics-out; the
// nightly workflow archives it. Binaries are expected prebuilt in
// -bin-dir (make dist-smoke does this).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

func main() {
	binDir := flag.String("bin-dir", "./bin", "directory holding the prebuilt cutfitd, cutfit-worker and loadgen binaries")
	coordAddr := flag.String("coord-addr", "127.0.0.1:18081", "coordinator cutfitd listen address")
	localAddr := flag.String("local-addr", "127.0.0.1:18082", "plain local cutfitd listen address")
	workerAddrs := flag.String("worker-addrs", "127.0.0.1:19090,127.0.0.1:19091", "comma-separated cutfit-worker listen addresses")
	rps := flag.Float64("rps", 30, "loadgen arrival rate against the coordinator")
	duration := flag.Duration("duration", 10*time.Second, "loadgen duration")
	out := flag.String("out", "", "write the loadgen quantile table to this file")
	metricsOut := flag.String("metrics-out", "", "save the coordinator's final /metrics scrape to this file")
	flag.Parse()

	if err := run(*binDir, *coordAddr, *localAddr, strings.Split(*workerAddrs, ","), *rps, *duration, *out, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "distsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("distsmoke: distributed serving is byte-equal to local and shed zero 5xx")
}

// proc is one child process that is killed when the smoke exits.
type proc struct{ cmd *exec.Cmd }

func start(name string, args ...string) (*proc, error) {
	cmd := exec.Command(name, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	return &proc{cmd: cmd}, nil
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

func run(binDir, coordAddr, localAddr string, workerAddrs []string, rps float64, duration time.Duration, out, metricsOut string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	var procs []*proc
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	workerURLs := make([]string, len(workerAddrs))
	for i, addr := range workerAddrs {
		addr = strings.TrimSpace(addr)
		workerURLs[i] = "http://" + addr
		p, err := start(filepath.Join(binDir, "cutfit-worker"), "-addr", addr)
		if err != nil {
			return err
		}
		procs = append(procs, p)
	}
	coord, err := start(filepath.Join(binDir, "cutfitd"), "-addr", coordAddr, "-workers", strings.Join(workerURLs, ","))
	if err != nil {
		return err
	}
	procs = append(procs, coord)
	local, err := start(filepath.Join(binDir, "cutfitd"), "-addr", localAddr)
	if err != nil {
		return err
	}
	procs = append(procs, local)

	coordURL := "http://" + coordAddr
	localURL := "http://" + localAddr
	for _, u := range workerURLs {
		if err := waitReady(client, u+"/dist/v1/healthz"); err != nil {
			return err
		}
	}
	for _, u := range []string{coordURL, localURL} {
		if err := waitReady(client, u+"/healthz"); err != nil {
			return err
		}
	}

	// The coordinator must see every worker healthy before anything runs.
	cluster, err := get(client, coordURL+"/v1/cluster")
	if err != nil {
		return err
	}
	if !strings.Contains(string(cluster), `"mode":"distributed"`) || strings.Contains(string(cluster), `"healthy":false`) {
		return fmt.Errorf("cluster not fully healthy: %s", cluster)
	}

	// Register the identical deterministic graph on both daemons.
	edges := smokeEdges(0)
	reg := `{"name":"smoke","edges":` + strconv.Quote(edges) + `}`
	for _, u := range []string{coordURL, localURL} {
		if _, err := post(client, u+"/v1/graphs", reg); err != nil {
			return err
		}
	}

	// Phase 1: the loadgen mix at the coordinator; its exit code enforces
	// zero 5xx.
	lgArgs := []string{
		"-addr", coordURL, "-rps", fmt.Sprint(rps), "-duration", duration.String(),
		"-mix", "run=6,metrics=2,advise=1,append=1", "-parts", "6", "-iters", "4",
	}
	if out != "" {
		lgArgs = append(lgArgs, "-out", out)
	}
	lg := exec.Command(filepath.Join(binDir, "loadgen"), lgArgs...)
	lg.Stdout = os.Stdout
	lg.Stderr = os.Stderr
	if err := lg.Run(); err != nil {
		return fmt.Errorf("loadgen against the coordinator failed (5xx or transport error): %w", err)
	}

	// Phase 2: distributed run bodies must equal local ones byte for byte.
	if err := compareRuns(client, coordURL, localURL, "base generation"); err != nil {
		return err
	}

	// Phase 3: append the same batch to both, then compare again — this
	// run crosses a generation boundary, so the coordinator ships deltas.
	appendBody := `{"edges":` + strconv.Quote(smokeEdges(1)) + `}`
	var appendReplies [2][]byte
	for i, u := range []string{coordURL, localURL} {
		reply, err := post(client, u+"/v1/graphs/smoke/edges", appendBody)
		if err != nil {
			return err
		}
		appendReplies[i] = reply
	}
	if !bytes.Equal(appendReplies[0], appendReplies[1]) {
		return fmt.Errorf("append replies diverge:\ncoord: %s\nlocal: %s", appendReplies[0], appendReplies[1])
	}
	if err := compareRuns(client, coordURL, localURL, "grown generation"); err != nil {
		return err
	}

	// Phase 4: the metrics must prove distribution actually happened.
	scrape, err := get(client, coordURL+"/metrics")
	if err != nil {
		return err
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, scrape, 0o644); err != nil {
			return err
		}
	}
	distributed := counterValue(scrape, `cutfit_dist_runs_total\{mode="distributed"\}`)
	fallback := counterValue(scrape, `cutfit_dist_runs_total\{mode="fallback"\}`)
	if distributed < 6 {
		return fmt.Errorf("only %g runs dispatched distributed, want >= 6 (did the pool attach?)", distributed)
	}
	if fallback > 0 {
		return fmt.Errorf("%g runs fell back to local execution; the cluster is silently degraded", fallback)
	}
	fmt.Printf("distsmoke: %g distributed runs, 0 fallbacks\n", distributed)
	return nil
}

// compareRuns posts identical /v1/run requests to both daemons for every
// distributed algorithm and requires byte-equal response bodies.
func compareRuns(client *http.Client, coordURL, localURL, phase string) error {
	for _, alg := range []string{"pagerank", "dynamicpr", "cc"} {
		body := `{"graph":"smoke","alg":"` + alg + `","strategy":"2D","parts":6,"iters":8}`
		coordRep, err := post(client, coordURL+"/v1/run", body)
		if err != nil {
			return fmt.Errorf("%s: coordinator %s: %w", phase, alg, err)
		}
		localRep, err := post(client, localURL+"/v1/run", body)
		if err != nil {
			return fmt.Errorf("%s: local %s: %w", phase, alg, err)
		}
		if !bytes.Equal(coordRep, localRep) {
			return fmt.Errorf("%s: %s run bodies diverge\ncoord: %s\nlocal: %s", phase, alg, coordRep, localRep)
		}
	}
	return nil
}

// smokeEdges builds the deterministic comparison graph: a ring with
// chords (round 0), or the appended batch extending it (round 1).
func smokeEdges(round int) string {
	var sb strings.Builder
	const n = 120
	if round == 0 {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%n)
			fmt.Fprintf(&sb, "%d %d\n", i, (i*7+3)%n)
		}
	} else {
		for i := 0; i < 30; i++ {
			fmt.Fprintf(&sb, "%d %d\n", (i*11)%n, n+i)
			fmt.Fprintf(&sb, "%d %d\n", n+i, (i*5+1)%n)
		}
	}
	return sb.String()
}

func waitReady(client *http.Client, url string) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s did not become ready within 15s", url)
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

func post(client *http.Client, url, body string) ([]byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(reply))
	}
	return reply, nil
}

// counterValue extracts one counter series' value from a Prometheus text
// scrape; absent series read as 0.
func counterValue(scrape []byte, seriesRe string) float64 {
	re := regexp.MustCompile(`(?m)^` + seriesRe + ` ([0-9.e+-]+)$`)
	m := re.FindSubmatch(scrape)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		return 0
	}
	return v
}
