// Command cutfit is the umbrella CLI for the Cut-to-Fit library. It works
// on edge-list files (SNAP text format) or on the built-in dataset analogs.
//
// Subcommands:
//
//	cutfit generate -dataset orkut -out orkut.txt
//	    Write an analog dataset as a text edge list.
//
//	cutfit metrics -in graph.txt -strategy 2D -parts 128 [-json]
//	    Partition a graph (one assignment pass) and print the §3.1
//	    metrics. Strategies include the extension partitioners Range and
//	    Hybrid[:<threshold>]. -json emits the exact MetricsReport encoding
//	    the cutfitd server responds with, so CLI output and server
//	    responses are interchangeable (the advise subcommand's -json does
//	    the same with AdviseReport).
//
//	cutfit run -in graph.txt -alg pagerank -strategy 2D -parts 128
//	    Execute an algorithm on the partitioned graph and print the
//	    simulated cluster time breakdown. -strategy auto empirically
//	    selects the best strategy for -alg and runs the winner from its
//	    already-computed assignment.
//
//	cutfit advise -in graph.txt -alg pagerank -parts 128 [-measure]
//	    Recommend a partitioning strategy for the computation; with
//	    -measure, empirically rank all strategies by the predictive metric.
//
//	cutfit snapshot -in graph.txt -strategies 2D,SC -parts 128 -out warm.snap
//	    Partition the graph under each strategy (assignment, metrics and
//	    engine topology) and persist the warmed artifact cache as one
//	    versioned, CRC-checked snapshot — the same format cutfitd's
//	    -data-dir warm start consumes.
//
//	cutfit restore -in warm.snap
//	    Decode and fully validate a snapshot, then report its graphs and
//	    restored cache contents. A non-zero exit means the snapshot is
//	    corrupt or from an incompatible format version.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"cutfit"
	"cutfit/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "restore":
		err = cmdRestore(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cutfit: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cutfit:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cutfit <generate|metrics|run|advise|snapshot|restore> [flags]
  generate -dataset <name> -out <file>
  metrics  -in <file>|-dataset <name> -strategy <name> -parts <n> [-json]
  run      -in <file>|-dataset <name> -alg <name> -strategy <name> -parts <n>
  advise   -in <file>|-dataset <name> -alg <name> -parts <n> [-measure] [-json]
  snapshot -in <file>|-dataset <name> -strategies <csv> -parts <n> -out <file.snap> [-name <label>]
  restore  -in <file.snap>`)
}

// loadGraph reads a graph from -in or builds a named analog dataset.
func loadGraph(in, dataset string) (*cutfit.Graph, error) {
	switch {
	case in != "" && dataset != "":
		return nil, fmt.Errorf("use either -in or -dataset, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return cutfit.LoadEdgeList(f)
	case dataset != "":
		spec, err := cutfit.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		return spec.BuildCached()
	default:
		return nil, fmt.Errorf("one of -in or -dataset is required")
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	dataset := fs.String("dataset", "", "analog dataset name")
	out := fs.String("out", "", "output edge-list file")
	fs.Parse(args)
	if *dataset == "" || *out == "" {
		return fmt.Errorf("generate requires -dataset and -out")
	}
	spec, err := cutfit.DatasetByName(*dataset)
	if err != nil {
		return err
	}
	g, err := spec.BuildCached()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteEdgeList(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.NumVertices(), g.NumEdges())
	return nil
}

// strategyFlagHelp documents every name StrategyByName resolves, shared by
// the -strategy flags of the metrics and run subcommands.
const strategyFlagHelp = "partitioning strategy: RVC, 1D, 2D, CRVC, SC, DC, Greedy, HDRF, Range, Hybrid or Hybrid:<in-degree threshold>"

// graphLabel names the graph in JSON reports: the dataset name or the
// input path.
func graphLabel(in, dataset string) string {
	if dataset != "" {
		return dataset
	}
	return in
}

// writeJSON emits a report in the exact encoding cutfitd serves, so CLI
// output and server responses are interchangeable for downstream tooling.
func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file")
	dataset := fs.String("dataset", "", "analog dataset name")
	strategy := fs.String("strategy", "2D", strategyFlagHelp)
	parts := fs.Int("parts", 128, "number of partitions")
	asJSON := fs.Bool("json", false, "emit the cutfitd MetricsReport JSON encoding instead of text")
	fs.Parse(args)
	g, err := loadGraph(*in, *dataset)
	if err != nil {
		return err
	}
	s, err := cutfit.StrategyByName(*strategy)
	if err != nil {
		return err
	}
	m, err := cutfit.Measure(g, s, *parts)
	if err != nil {
		return err
	}
	if *asJSON {
		rep := cutfit.NewMetricsReport(s.Name(), *parts, m)
		rep.Graph = graphLabel(*in, *dataset)
		return writeJSON(rep)
	}
	fmt.Printf("strategy=%s parts=%d\n", s.Name(), *parts)
	fmt.Printf("  Balance    %.4f\n", m.Balance)
	fmt.Printf("  NonCut     %d\n", m.NonCut)
	fmt.Printf("  Cut        %d\n", m.Cut)
	fmt.Printf("  CommCost   %d\n", m.CommCost)
	fmt.Printf("  PartStDev  %.2f\n", m.PartStDev)
	fmt.Printf("  Replication factor %.3f\n", m.ReplicationFactor)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file")
	dataset := fs.String("dataset", "", "analog dataset name")
	alg := fs.String("alg", "pagerank", "algorithm: pagerank, cc, triangles, sssp")
	strategy := fs.String("strategy", "2D", strategyFlagHelp+", or \"auto\" to select empirically for -alg")
	parts := fs.Int("parts", 128, "number of partitions")
	iters := fs.Int("iters", 10, "iterations for pagerank/cc")
	fs.Parse(args)
	g, err := loadGraph(*in, *dataset)
	if err != nil {
		return err
	}
	// One assignment pass feeds everything downstream: with an explicit
	// strategy the graph is assigned once and built from that assignment;
	// with "auto" every candidate is assigned once, ranked by the
	// algorithm's predictive metric, and the winner's retained assignment
	// is built directly — no re-partitioning either way.
	var a *cutfit.Assignment
	if *strategy == "auto" {
		profile, err := cutfit.ProfileFor(*alg)
		if err != nil {
			return err
		}
		sel, err := cutfit.Select(g, cutfit.Strategies(), *parts, profile)
		if err != nil {
			return err
		}
		fmt.Printf("auto-selected strategy %s (minimizes %s)\n", sel.Strategy.Name(), profile.Metric)
		a = sel.Assignment
	} else {
		s, err := cutfit.StrategyByName(*strategy)
		if err != nil {
			return err
		}
		if a, err = cutfit.PartitionAssignment(g, s, *parts); err != nil {
			return err
		}
	}
	pg, err := cutfit.PartitionFromAssignment(a, cutfit.PartitionOptions{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	var stats *cutfit.RunStats
	switch *alg {
	case "pagerank":
		ranks, st, err := cutfit.RunPageRank(ctx, pg, *iters)
		if err != nil {
			return err
		}
		stats = st
		printTopRanks(g, ranks, 5)
	case "cc":
		labels, st, err := cutfit.RunConnectedComponents(ctx, pg, *iters)
		if err != nil {
			return err
		}
		stats = st
		set := map[cutfit.VertexID]bool{}
		for _, l := range labels {
			set[l] = true
		}
		fmt.Printf("components: %d (converged=%v)\n", len(set), st.Converged)
	case "triangles":
		counts, st, err := cutfit.RunTriangleCount(ctx, pg)
		if err != nil {
			return err
		}
		stats = st
		var total int64
		for _, c := range counts {
			total += c
		}
		fmt.Printf("triangles: %d\n", total/3)
	case "sssp":
		verts := g.Vertices()
		landmark := verts[0]
		dists, st, err := cutfit.RunShortestPaths(ctx, pg, []cutfit.VertexID{landmark}, 0)
		if err != nil {
			return err
		}
		stats = st
		reached := 0
		for _, d := range dists {
			if len(d) > 0 {
				reached++
			}
		}
		fmt.Printf("sssp: landmark %d reached from %d/%d vertices\n", landmark, reached, len(dists))
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	cfg := cutfit.ConfigI()
	cfg.NumPartitions = *parts
	b, err := cfg.Simulate(stats, cutfit.EstimateGraphBytes(g.NumEdges()))
	if err != nil {
		return err
	}
	fmt.Printf("supersteps=%d broadcastMsgs=%d reduceMsgs=%d\n",
		stats.NumSupersteps(), stats.TotalBroadcastMsgs(), stats.TotalReduceMsgs())
	fmt.Println("simulated cluster time:", b)
	return nil
}

func printTopRanks(g *cutfit.Graph, ranks []float64, k int) {
	type vr struct {
		v cutfit.VertexID
		r float64
	}
	verts := g.Vertices()
	top := make([]vr, len(ranks))
	for i, r := range ranks {
		top[i] = vr{verts[i], r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	if k > len(top) {
		k = len(top)
	}
	fmt.Print("top ranks:")
	for _, t := range top[:k] {
		fmt.Printf(" %d=%.3f", t.v, t.r)
	}
	fmt.Println()
}

// cmdSnapshot warms a session — one assignment pass, one metric set and
// one built topology per strategy — and persists the whole cache.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file")
	dataset := fs.String("dataset", "", "analog dataset name")
	strategies := fs.String("strategies", "2D", "comma-separated strategies to warm (any names StrategyByName accepts)")
	parts := fs.Int("parts", 128, "number of partitions")
	out := fs.String("out", "", "output snapshot file")
	name := fs.String("name", "", "graph label recorded in the snapshot (default: dataset name or input path)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("snapshot requires -out")
	}
	g, err := loadGraph(*in, *dataset)
	if err != nil {
		return err
	}
	strats, err := cutfit.StrategiesByNames(*strategies)
	if err != nil {
		return err
	}
	se := cutfit.NewSession(cutfit.SessionOptions{})
	for _, s := range strats {
		if _, err := se.Measure(g, s, *parts); err != nil {
			return err
		}
		if _, err := se.Partition(g, s, *parts); err != nil {
			return err
		}
	}
	label := *name
	if label == "" {
		label = graphLabel(*in, *dataset)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := se.SnapshotNamed(f, map[string]*cutfit.Graph{label: g})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d graphs, %d artifacts, %d bytes\n", *out, sum.Graphs, sum.Artifacts, sum.Bytes)
	return nil
}

// cmdRestore decodes and validates a snapshot, reporting its contents.
func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	in := fs.String("in", "", "input snapshot file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("restore requires -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	se, named, err := cutfit.RestoreSession(f, cutfit.SessionOptions{})
	if err != nil {
		return err
	}
	stats := se.CacheStats()
	fmt.Printf("%s: %d named graphs, %d cached artifacts (%d bytes)\n", *in, len(named), stats.Entries, stats.Bytes)
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := named[name]
		fmt.Printf("  %-20s %d vertices, %d edges\n", name, g.NumVertices(), g.NumEdges())
	}
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	in := fs.String("in", "", "input edge-list file")
	dataset := fs.String("dataset", "", "analog dataset name")
	alg := fs.String("alg", "pagerank", "algorithm: pagerank, cc, triangles, sssp")
	parts := fs.Int("parts", 128, "number of partitions")
	measure := fs.Bool("measure", false, "empirically measure and rank all strategies")
	asJSON := fs.Bool("json", false, "emit the cutfitd AdviseReport JSON encoding instead of text")
	fs.Parse(args)
	g, err := loadGraph(*in, *dataset)
	if err != nil {
		return err
	}
	profile, err := cutfit.ProfileFor(*alg)
	if err != nil {
		return err
	}
	facts := cutfit.Facts(g)
	facts.IDLocality = core.DetectIDLocality(g, 256, 0.5)
	rec := cutfit.Advise(profile, facts, *parts)
	rep := cutfit.NewAdviseReport(*alg, *parts, rec)
	rep.Graph = graphLabel(*in, *dataset)
	if *measure {
		sel, err := cutfit.Select(g, cutfit.Strategies(), *parts, profile)
		if err != nil {
			return err
		}
		if rep.Ranking, err = cutfit.RankFromSelection(sel, profile.Metric); err != nil {
			return err
		}
	}
	if *asJSON {
		return writeJSON(rep)
	}
	fmt.Printf("recommended strategy: %s (optimize %s)\n", rep.Strategy, rep.Metric)
	fmt.Printf("reason: %s\n", rep.Reason)
	if rep.Ranking == nil {
		return nil
	}
	fmt.Printf("\nempirical ranking by %s at %d partitions:\n", profile.Metric, *parts)
	for _, r := range rep.Ranking {
		marker := " "
		if r.Selected {
			marker = "*"
		}
		fmt.Printf("  %s %-6s %s = %.0f\n", marker, r.Strategy, profile.Metric, r.Value)
	}
	return nil
}
