// Command characterize regenerates the dataset characterization artifacts
// of the paper: Table 1 (structural statistics of all nine datasets),
// Figure 1 (in/out degree distributions) and Figure 2 (the CDF of the
// out-degree/in-degree ratio).
//
// Usage:
//
//	characterize [-table1] [-fig1] [-fig2] [-dataset name]
//
// With no flags all three artifacts are printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"cutfit/internal/bench"
	"cutfit/internal/datasets"
	"cutfit/internal/report"
	"cutfit/internal/stats"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 (dataset characterization)")
	fig1 := flag.Bool("fig1", false, "print Figure 1 (degree distributions)")
	fig2 := flag.Bool("fig2", false, "print Figure 2 (out/in degree ratio CDF)")
	dataset := flag.String("dataset", "", "restrict to one dataset by name")
	flag.Parse()

	if !*table1 && !*fig1 && !*fig2 {
		*table1, *fig1, *fig2 = true, true, true
	}
	specs := datasets.Suite()
	if *dataset != "" {
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		specs = []datasets.Spec{spec}
	}

	if *table1 {
		fmt.Println("=== Table 1: dataset characterization (measured on analogs) ===")
		rows, err := bench.Characterize(specs)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteCharacterization(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println("Paper originals for comparison:")
		for _, spec := range specs {
			p := spec.Paper
			diam := fmt.Sprintf("%d", p.Diameter)
			if p.DiameterInfinite {
				diam = "inf"
			}
			fmt.Printf("  %-16s V=%-10d E=%-11d symm=%.2f%% zeroIn=%.2f%% zeroOut=%.2f%% triangles=%d comps=%d diam=%s\n",
				spec.Name, p.Vertices, p.Edges, p.SymmetryPct, p.ZeroInPct, p.ZeroOutPct,
				p.Triangles, p.Components, diam)
		}
		fmt.Println()
	}

	if *fig1 {
		fmt.Println("=== Figure 1: in/out degree distributions (log-binned) ===")
		dists, err := bench.Figure1Degrees(specs)
		if err != nil {
			fatal(err)
		}
		for _, d := range dists {
			fmt.Printf("%s in-degree:\n", d.Dataset)
			printHist(d.In)
			fmt.Printf("%s out-degree:\n", d.Dataset)
			printHist(d.Out)
		}
		fmt.Println()
	}

	if *fig2 {
		fmt.Println("=== Figure 2: CDF of out-degree / in-degree ratio ===")
		cdfs, err := bench.Figure2RatioCDF(specs)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteRatioCDF(os.Stdout, cdfs); err != nil {
			fatal(err)
		}
	}
}

func printHist(bins []stats.HistBin) {
	var labels []string
	var counts []int64
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		labels = append(labels, fmt.Sprintf("[%d..%d]", b.Lo, b.Hi))
		counts = append(counts, b.Count)
	}
	if err := report.Histogram(os.Stdout, labels, counts, 50); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
