// Command characterize regenerates the dataset characterization artifacts
// of the paper: Table 1 (structural statistics of all nine datasets),
// Figure 1 (in/out degree distributions), Figure 2 (the CDF of the
// out-degree/in-degree ratio) and — through the shared Assignment
// pipeline — the partitioning characterization of any strategy set on the
// same datasets.
//
// Usage:
//
//	characterize [-table1] [-fig1] [-fig2] [-dataset name]
//	             [-partition] [-strategies 2D,DC,Hybrid:50] [-parts 128]
//
// With no flags the three structural artifacts are printed. -partition
// adds the §3.1 metric set per dataset × strategy: names are resolved by
// the library-wide ByName resolver (so the extension partitioners Range
// and Hybrid:<threshold> work here exactly as in cutfit/partmetrics), and
// every metric set is produced by one partition.Assign pass per strategy —
// the same artifact the engine builds from.
package main

import (
	"flag"
	"fmt"
	"os"

	"cutfit/internal/bench"
	"cutfit/internal/datasets"
	"cutfit/internal/partition"
	"cutfit/internal/report"
	"cutfit/internal/stats"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 (dataset characterization)")
	fig1 := flag.Bool("fig1", false, "print Figure 1 (degree distributions)")
	fig2 := flag.Bool("fig2", false, "print Figure 2 (out/in degree ratio CDF)")
	partFlag := flag.Bool("partition", false, "print the §3.1 partitioning metrics per dataset × strategy")
	strategies := flag.String("strategies", "", "comma-separated strategy names for -partition (any ByName-resolvable name; default: the paper's six)")
	parts := flag.Int("parts", 128, "partition count for -partition")
	dataset := flag.String("dataset", "", "restrict to one dataset by name")
	flag.Parse()

	if !*table1 && !*fig1 && !*fig2 && !*partFlag {
		*table1, *fig1, *fig2 = true, true, true
	}
	specs := datasets.Suite()
	if *dataset != "" {
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		specs = []datasets.Spec{spec}
	}

	if *table1 {
		fmt.Println("=== Table 1: dataset characterization (measured on analogs) ===")
		rows, err := bench.Characterize(specs)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteCharacterization(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println("Paper originals for comparison:")
		for _, spec := range specs {
			p := spec.Paper
			diam := fmt.Sprintf("%d", p.Diameter)
			if p.DiameterInfinite {
				diam = "inf"
			}
			fmt.Printf("  %-16s V=%-10d E=%-11d symm=%.2f%% zeroIn=%.2f%% zeroOut=%.2f%% triangles=%d comps=%d diam=%s\n",
				spec.Name, p.Vertices, p.Edges, p.SymmetryPct, p.ZeroInPct, p.ZeroOutPct,
				p.Triangles, p.Components, diam)
		}
		fmt.Println()
	}

	if *fig1 {
		fmt.Println("=== Figure 1: in/out degree distributions (log-binned) ===")
		dists, err := bench.Figure1Degrees(specs)
		if err != nil {
			fatal(err)
		}
		for _, d := range dists {
			fmt.Printf("%s in-degree:\n", d.Dataset)
			printHist(d.In)
			fmt.Printf("%s out-degree:\n", d.Dataset)
			printHist(d.Out)
		}
		fmt.Println()
	}

	if *fig2 {
		fmt.Println("=== Figure 2: CDF of out-degree / in-degree ratio ===")
		cdfs, err := bench.Figure2RatioCDF(specs)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteRatioCDF(os.Stdout, cdfs); err != nil {
			fatal(err)
		}
	}

	if *partFlag {
		strats, err := resolveStrategies(*strategies)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Partitioning characterization (one Assign pass per strategy) ===")
		rows, err := bench.MetricsTable(specs, strats, *parts)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteMetricsTable(os.Stdout, rows, *parts); err != nil {
			fatal(err)
		}
	}
}

// resolveStrategies turns a comma-separated name list into strategies via
// the shared ByNames resolver; empty means the paper's six.
func resolveStrategies(names string) ([]partition.Strategy, error) {
	if names == "" {
		return partition.All(), nil
	}
	return partition.ByNames(names)
}

func printHist(bins []stats.HistBin) {
	var labels []string
	var counts []int64
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		labels = append(labels, fmt.Sprintf("[%d..%d]", b.Lo, b.Hi))
		counts = append(counts, b.Count)
	}
	if err := report.Histogram(os.Stdout, labels, counts, 50); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
