package main

import (
	"context"
	"reflect"
	"testing"

	"cutfit/internal/graph"
)

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		spec string
		max  int
		want []int
	}{
		{"1,2,4,8,max", 8, []int{1, 2, 4, 8}},
		{"1,2,4,8,max", 6, []int{1, 2, 4, 6}},
		{"1, max", 16, []int{1, 16}},
		{"1,2,4,8,max", 1, []int{1}}, // single-CPU box: everything clamps to 1
		{"max,1", 4, []int{1, 4}},
	}
	for _, tc := range cases {
		got, err := parseWorkers(tc.spec, tc.max)
		if err != nil {
			t.Fatalf("parseWorkers(%q, %d): %v", tc.spec, tc.max, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("parseWorkers(%q, %d) = %v, want %v", tc.spec, tc.max, got, tc.want)
		}
	}
}

func TestParseWorkersErrors(t *testing.T) {
	for _, spec := range []string{"", "2,4", "0,1", "one", "1,-2"} {
		if _, err := parseWorkers(spec, 8); err == nil {
			t.Fatalf("parseWorkers(%q) accepted", spec)
		}
	}
}

// TestSweepCoversMatrix runs the full harness over a toy dataset and checks
// every (dataset, component, workers) cell lands in the report with a
// positive timing and a computed baseline efficiency.
func TestSweepCoversMatrix(t *testing.T) {
	edges := make([]graph.Edge, 0, 300)
	for i := 0; i < 300; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i % 40), Dst: graph.VertexID((i * 7) % 40)})
	}
	datasets := []dataset{{name: "toy", g: graph.FromEdges(edges)}}
	report, err := sweep(context.Background(), datasets, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Reps != 2 {
		t.Fatalf("reps = %d, want 2", report.Reps)
	}
	type key struct {
		component string
		workers   int
	}
	got := make(map[key]bool)
	for _, m := range report.Results {
		if m.Dataset != "toy" {
			t.Fatalf("unexpected dataset %q", m.Dataset)
		}
		if m.NsOp <= 0 {
			t.Fatalf("%s@w%d: non-positive timing %v", m.Component, m.Workers, m.NsOp)
		}
		if m.Workers == 1 && m.Efficiency != 1 {
			t.Fatalf("%s@w1: baseline efficiency %v, want 1", m.Component, m.Efficiency)
		}
		got[key{m.Component, m.Workers}] = true
	}
	for _, c := range []string{"assign", "build", "pagerank", "cc", "dynamicpr"} {
		for _, w := range []int{1, 2} {
			if !got[key{c, w}] {
				t.Fatalf("missing cell %s@w%d", c, w)
			}
		}
	}
}
