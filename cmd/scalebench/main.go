// Command scalebench runs the multi-core scaling sweep: every engine-side
// component — topology build, strategy assignment and three algorithm
// profiles — timed across a worker ladder (1/2/4/8/GOMAXPROCS by default)
// over three dataset analogs (uniform random, skewed RMAT, fragmented
// road grid). It writes the internal/scale JSON report for the benchgate
// efficiency gate and a markdown scaling table for humans; the nightly
// workflow archives both.
//
// Usage:
//
//	scalebench [-json report.json] [-md report.md] [-workers 1,2,4,8,max]
//	           [-reps 5] [-scale 1.0]
//
// Topology build and the engine phases take the worker count through
// their Parallelism option; the hash assignment pass has no such knob (it
// shards over GOMAXPROCS by design), so the sweep pins GOMAXPROCS around
// it and restores the previous value after each run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"cutfit/internal/algorithms"
	"cutfit/internal/gen"
	"cutfit/internal/graph"
	"cutfit/internal/par"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
	"cutfit/internal/scale"
)

// dataset is one graph analog of the sweep, built once and shared by every
// (component, workers) cell.
type dataset struct {
	name string
	g    *graph.Graph
}

// buildDatasets materializes the three analogs, sized by the -scale factor
// (1.0 ≈ a few hundred thousand edges total, minutes of sweep).
func buildDatasets(factor float64) ([]dataset, error) {
	n := func(base int) int {
		v := int(float64(base) * factor)
		if v < 16 {
			v = 16
		}
		return v
	}
	random, err := gen.ErdosRenyi(n(20000), n(160000), 11)
	if err != nil {
		return nil, fmt.Errorf("random analog: %w", err)
	}
	// RMAT sizes exponentially in its scale parameter; shift it by
	// log2(factor) so -scale moves all three analogs together.
	rmatScale := 14
	for f := factor; f < 1 && rmatScale > 8; f *= 2 {
		rmatScale--
	}
	for f := factor; f >= 2 && rmatScale < 20; f /= 2 {
		rmatScale++
	}
	rmat, err := gen.RMAT(gen.DefaultRMAT(rmatScale, 8, 42))
	if err != nil {
		return nil, fmt.Errorf("rmat analog: %w", err)
	}
	rows := n(120)
	road, err := gen.Road(gen.RoadConfig{Rows: rows, Cols: rows, EdgeProb: 0.95, DiagProb: 0.1, Fragments: 4, Seed: 7})
	if err != nil {
		return nil, fmt.Errorf("road analog: %w", err)
	}
	return []dataset{
		{"random", random},
		{"rmat", rmat},
		{"road", road},
	}, nil
}

// component is one timed stage of the sweep at a given worker count. Each
// run must perform the full operation; the harness medians wall time over
// the sweep's repetitions.
type component struct {
	name string
	run  func(ctx context.Context, d dataset, workers int) error
}

// withGOMAXPROCS pins the process worker limit around fn — the only
// parallelism knob the hash assignment pass has.
func withGOMAXPROCS(workers int, fn func() error) error {
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	return fn()
}

const numParts = 16

// components returns the sweep's timed stages. The build and algorithm
// components reuse cached inputs (one assignment per dataset, one topology
// per dataset×workers) populated by the untimed warm-up run, so each cell
// times only its own stage.
func components(assign func(d dataset) (*partition.Assignment, error), topo func(d dataset, workers int) (*pregel.PartitionedGraph, error)) []component {
	return []component{
		{"assign", func(_ context.Context, d dataset, workers int) error {
			return withGOMAXPROCS(workers, func() error {
				_, err := partition.Assign(d.g, partition.EdgePartition2D(), numParts)
				return err
			})
		}},
		{"build", func(_ context.Context, d dataset, workers int) error {
			a, err := assign(d)
			if err != nil {
				return err
			}
			_, err = pregel.NewPartitionedGraphFromAssignment(a, pregel.BuildOptions{Parallelism: workers})
			return err
		}},
		{"pagerank", func(ctx context.Context, d dataset, workers int) error {
			pg, err := topo(d, workers)
			if err != nil {
				return err
			}
			_, _, err = algorithms.PageRank(ctx, pg, 10, 0.15)
			return err
		}},
		{"cc", func(ctx context.Context, d dataset, workers int) error {
			pg, err := topo(d, workers)
			if err != nil {
				return err
			}
			_, _, err = algorithms.ConnectedComponents(ctx, pg, 50)
			return err
		}},
		{"dynamicpr", func(ctx context.Context, d dataset, workers int) error {
			pg, err := topo(d, workers)
			if err != nil {
				return err
			}
			_, _, err = algorithms.DynamicPageRank(ctx, pg, 1e-3, 0.15, 30)
			return err
		}},
	}
}

// parseWorkers expands the -workers flag ("1,2,4,8,max") into a sorted,
// deduplicated ladder clamped to GOMAXPROCS.
func parseWorkers(spec string, maxWorkers int) ([]int, error) {
	seen := make(map[int]bool)
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		w := maxWorkers
		if tok != "max" {
			var err error
			w, err = strconv.Atoi(tok)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("scalebench: bad worker count %q", tok)
			}
		}
		if w > maxWorkers {
			w = maxWorkers
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scalebench: empty -workers")
	}
	sort.Ints(out)
	if out[0] != 1 {
		return nil, fmt.Errorf("scalebench: -workers must include 1 (the efficiency baseline)")
	}
	return out, nil
}

func sweep(ctx context.Context, datasets []dataset, ladder []int, reps int) (*scale.Report, error) {
	report := &scale.Report{MaxWorkers: par.DefaultParallelism(), Reps: reps}

	// Cached inputs: one assignment per dataset (the build component's
	// input), one topology per (dataset, workers) (the algorithm
	// components' input). Algorithm cells therefore time their runs, not
	// the build — the build has its own component.
	assignCache := make(map[string]*partition.Assignment)
	assign := func(d dataset) (*partition.Assignment, error) {
		if a, ok := assignCache[d.name]; ok {
			return a, nil
		}
		a, err := partition.Assign(d.g, partition.EdgePartition2D(), numParts)
		if err != nil {
			return nil, err
		}
		assignCache[d.name] = a
		return a, nil
	}
	type topoKey struct {
		name    string
		workers int
	}
	topoCache := make(map[topoKey]*pregel.PartitionedGraph)
	topo := func(d dataset, workers int) (*pregel.PartitionedGraph, error) {
		k := topoKey{d.name, workers}
		if pg, ok := topoCache[k]; ok {
			return pg, nil
		}
		a, err := assign(d)
		if err != nil {
			return nil, err
		}
		pg, err := pregel.NewPartitionedGraphFromAssignment(a, pregel.BuildOptions{Parallelism: workers, ReuseBuffers: true})
		if err != nil {
			return nil, err
		}
		topoCache[k] = pg
		return pg, nil
	}

	for _, d := range datasets {
		for _, c := range components(assign, topo) {
			for _, w := range ladder {
				// Warm once (builds the cached topology, faults pages) so
				// the timed repetitions measure steady state.
				if err := c.run(ctx, d, w); err != nil {
					return nil, fmt.Errorf("scalebench: %s/%s@w%d: %w", d.name, c.name, w, err)
				}
				samples := make([]float64, 0, reps)
				for rep := 0; rep < reps; rep++ {
					start := time.Now()
					if err := c.run(ctx, d, w); err != nil {
						return nil, fmt.Errorf("scalebench: %s/%s@w%d: %w", d.name, c.name, w, err)
					}
					samples = append(samples, float64(time.Since(start).Nanoseconds()))
				}
				report.Results = append(report.Results, scale.Measurement{
					Dataset: d.name, Component: c.name, Workers: w,
					NsOp: scale.Median(samples),
				})
			}
		}
	}
	scale.Finalize(report)
	return report, nil
}

func main() {
	jsonPath := flag.String("json", "", "write the scale JSON report here (benchgate -scale-base/-scale-head input)")
	mdPath := flag.String("md", "", "write the markdown scaling table here (default stdout)")
	workersSpec := flag.String("workers", "1,2,4,8,max", "comma-separated worker ladder; 'max' = GOMAXPROCS; must include 1")
	reps := flag.Int("reps", 5, "repetitions per cell (median reported)")
	factor := flag.Float64("scale", 1.0, "dataset size factor")
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "scalebench: -reps must be >= 1")
		os.Exit(2)
	}

	ladder, err := parseWorkers(*workersSpec, par.DefaultParallelism())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	datasets, err := buildDatasets(*factor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalebench:", err)
		os.Exit(1)
	}

	report, err := sweep(context.Background(), datasets, ladder, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalebench:", err)
			os.Exit(1)
		}
		if err := scale.WriteJSON(f, report); err != nil {
			fmt.Fprintln(os.Stderr, "scalebench:", err)
			os.Exit(1)
		}
		f.Close()
	}
	out := os.Stdout
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	scale.WriteMarkdown(out, report)
}
