// Command partmetrics regenerates Tables 2 and 3 of the paper: the full
// partitioning-metric characterization (Balance, NonCut, Cut, CommCost,
// PartStDev) for every dataset × strategy at a given partition count.
//
// Usage:
//
//	partmetrics [-parts 128] [-dataset name] [-extended] [-strategy name]
//
// -parts 128 reproduces Table 2; -parts 256 reproduces Table 3.
// -extended adds the streaming Greedy/HDRF partitioners (ablation A1).
// -strategy restricts to one partitioner by name — any name the library
// resolves, including the extension strategies "Range", "Hybrid" and
// "Hybrid:<in-degree threshold>".
package main

import (
	"flag"
	"fmt"
	"os"

	"cutfit/internal/bench"
	"cutfit/internal/datasets"
	"cutfit/internal/partition"
)

func main() {
	parts := flag.Int("parts", 128, "number of partitions (128 = Table 2, 256 = Table 3)")
	dataset := flag.String("dataset", "", "restrict to one dataset by name")
	extended := flag.Bool("extended", false, "include streaming Greedy/HDRF strategies")
	strategy := flag.String("strategy", "", "restrict to one strategy: RVC, 1D, 2D, CRVC, SC, DC, Greedy, HDRF, Range, Hybrid or Hybrid:<threshold>")
	flag.Parse()

	specs := datasets.Suite()
	if *dataset != "" {
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		specs = []datasets.Spec{spec}
	}
	strategies := partition.All()
	if *extended {
		strategies = partition.Extended()
	}
	if *strategy != "" {
		s, err := partition.ByName(*strategy)
		if err != nil {
			fatal(err)
		}
		strategies = []partition.Strategy{s}
	}

	rows, err := bench.MetricsTable(specs, strategies, *parts)
	if err != nil {
		fatal(err)
	}
	if err := bench.WriteMetricsTable(os.Stdout, rows, *parts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partmetrics:", err)
	os.Exit(1)
}
