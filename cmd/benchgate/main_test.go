package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cutfit/internal/scale"
)

const baseBench = `goos: linux
BenchmarkAppendEdges/delta-8     720   1600000 ns/op   3718640 B/op
BenchmarkAppendEdges/delta-8     700   1700000 ns/op   3718640 B/op
BenchmarkAppendEdges/delta-8     710   1500000 ns/op   3718640 B/op
BenchmarkSelect-8                100  20000000 ns/op
BenchmarkGone-8                  100   1000000 ns/op
PASS
`

const headBench = `BenchmarkAppendEdges/delta-8     720   1650000 ns/op   3718640 B/op
BenchmarkAppendEdges/delta-8     700   1600000 ns/op
BenchmarkSelect-8                100  30000000 ns/op
BenchmarkNew-8                   500    100000 ns/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchMedian(t *testing.T) {
	m, err := parseBench(strings.NewReader(baseBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m["BenchmarkAppendEdges/delta-8"]["ns/op"]); got != 3 {
		t.Fatalf("ns/op samples = %d, want 3", got)
	}
	if got := median(m["BenchmarkAppendEdges/delta-8"]["ns/op"]); got != 1600000 {
		t.Fatalf("median = %v, want 1600000", got)
	}
	if got := median(m["BenchmarkAppendEdges/delta-8"]["B/op"]); got != 3718640 {
		t.Fatalf("B/op median = %v, want 3718640", got)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	code, err := run(base, head, "", 0.25, 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Select regressed +50%: gate must fail and name it; the new and gone
	// benchmarks must be reported but not fail.
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkSelect-8") || !strings.Contains(s, "FAIL") {
		t.Fatalf("regression not reported:\n%s", s)
	}
	if !strings.Contains(s, "new") || !strings.Contains(s, "gone") {
		t.Fatalf("new/gone benchmarks not reported:\n%s", s)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	// Guard only the delta benchmark (+3% change): passes.
	code, err := run(base, head, "AppendEdges", 0.25, 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out.String())
	}
}

func TestGateLooseThresholdPasses(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	// +50% is tolerated at threshold 0.6.
	code, err := run(base, head, "", 0.6, 0.6, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out.String())
	}
}

// TestGateFailsOnMemoryRegression: flat ns/op with B/op and peak-heap-MB
// blown past -mem-threshold must fail the gate even when the time
// threshold is loose — memory regressions gate independently.
func TestGateFailsOnMemoryRegression(t *testing.T) {
	base := writeTemp(t, "old.txt", `BenchmarkScale/10M/block-8   1   20000000 ns/op   337.0 peak-heap-MB   100000000 B/op
`)
	head := writeTemp(t, "new.txt", `BenchmarkScale/10M/block-8   1   20100000 ns/op   520.0 peak-heap-MB   160000000 B/op
`)
	var out strings.Builder
	code, err := run(base, head, "", 10 /* time gate wide open */, 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "peak-heap-MB FAIL") && !strings.Contains(s, "peak-heap-MB") || !strings.Contains(s, "FAIL") {
		t.Fatalf("memory regression not reported:\n%s", s)
	}
	if !strings.Contains(s, "BenchmarkScale/10M/block-8 B/op") || !strings.Contains(s, "BenchmarkScale/10M/block-8 peak-heap-MB") {
		t.Fatalf("failed units not named:\n%s", s)
	}
	// The same diff passes when the memory gate is loosened.
	out.Reset()
	if code, err = run(base, head, "", 10, 0.6, &out); err != nil || code != 0 {
		t.Fatalf("loose mem gate: code=%d err=%v\n%s", code, err, out.String())
	}
}

func TestGateNoMatches(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	code, err := run(base, head, "NoSuchBenchmark", 0.25, 0.25, &out)
	if code != 2 || err == nil {
		t.Fatalf("code=%d err=%v, want 2 with error", code, err)
	}
}

// scaleReport renders a minimal scalebench JSON report: one cc sweep on
// rmat whose 4-worker time is t4 against a 800ns single-worker baseline.
func scaleReport(t *testing.T, name string, t4 float64) string {
	t.Helper()
	r := &scale.Report{MaxWorkers: 4, Reps: 5, Results: []scale.Measurement{
		{Dataset: "rmat", Component: "cc", Workers: 1, NsOp: 800},
		{Dataset: "rmat", Component: "cc", Workers: 4, NsOp: t4},
	}}
	scale.Finalize(r)
	var buf strings.Builder
	if err := scale.WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, name, buf.String())
}

// TestScaleGateFailsOnEfficiencyRegression: a synthetic sweep whose
// 4-worker efficiency drops 0.8 → 0.4 must fail the gate and name the
// cell, even though its single-worker ns/op is identical.
func TestScaleGateFailsOnEfficiencyRegression(t *testing.T) {
	base := scaleReport(t, "old.json", 250) // speedup 3.2, efficiency 0.8
	head := scaleReport(t, "new.json", 500) // speedup 1.6, efficiency 0.4
	var out strings.Builder
	code, err := runScale(base, head, 0.2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out.String())
	}
	if s := out.String(); !strings.Contains(s, "EFFICIENCY REGRESSION") || !strings.Contains(s, "rmat/cc@w4") {
		t.Fatalf("regression not named:\n%s", s)
	}
}

func TestScaleGatePassesWithinThreshold(t *testing.T) {
	base := scaleReport(t, "old.json", 250) // efficiency 0.8
	head := scaleReport(t, "new.json", 280) // efficiency ~0.71: -11%, under the 20% gate
	var out strings.Builder
	code, err := runScale(base, head, 0.2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out.String())
	}
	if s := out.String(); !strings.Contains(s, "OK:") || !strings.Contains(s, "| cc | 4 |") {
		t.Fatalf("missing table or verdict:\n%s", s)
	}
}

func TestScaleGateBadFile(t *testing.T) {
	good := scaleReport(t, "good.json", 250)
	bad := writeTemp(t, "bad.json", "not json")
	var out strings.Builder
	if code, err := runScale(bad, good, 0.2, &out); code != 2 || err == nil {
		t.Fatalf("code=%d err=%v, want 2 with error", code, err)
	}
	if code, err := runScale(good, filepath.Join(t.TempDir(), "missing.json"), 0.2, &out); code != 2 || err == nil {
		t.Fatalf("code=%d err=%v, want 2 with error", code, err)
	}
}
