package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseBench = `goos: linux
BenchmarkAppendEdges/delta-8     720   1600000 ns/op   3718640 B/op
BenchmarkAppendEdges/delta-8     700   1700000 ns/op   3718640 B/op
BenchmarkAppendEdges/delta-8     710   1500000 ns/op   3718640 B/op
BenchmarkSelect-8                100  20000000 ns/op
BenchmarkGone-8                  100   1000000 ns/op
PASS
`

const headBench = `BenchmarkAppendEdges/delta-8     720   1650000 ns/op   3718640 B/op
BenchmarkAppendEdges/delta-8     700   1600000 ns/op
BenchmarkSelect-8                100  30000000 ns/op
BenchmarkNew-8                   500    100000 ns/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchMedian(t *testing.T) {
	m, err := parseBench(strings.NewReader(baseBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m["BenchmarkAppendEdges/delta-8"]); got != 3 {
		t.Fatalf("samples = %d, want 3", got)
	}
	if got := median(m["BenchmarkAppendEdges/delta-8"]); got != 1600000 {
		t.Fatalf("median = %v, want 1600000", got)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	code, err := run(base, head, "", 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Select regressed +50%: gate must fail and name it; the new and gone
	// benchmarks must be reported but not fail.
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkSelect-8") || !strings.Contains(s, "FAIL") {
		t.Fatalf("regression not reported:\n%s", s)
	}
	if !strings.Contains(s, "new") || !strings.Contains(s, "gone") {
		t.Fatalf("new/gone benchmarks not reported:\n%s", s)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	// Guard only the delta benchmark (+3% change): passes.
	code, err := run(base, head, "AppendEdges", 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out.String())
	}
}

func TestGateLooseThresholdPasses(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	// +50% is tolerated at threshold 0.6.
	code, err := run(base, head, "", 0.6, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out.String())
	}
}

func TestGateNoMatches(t *testing.T) {
	base := writeTemp(t, "old.txt", baseBench)
	head := writeTemp(t, "new.txt", headBench)
	var out strings.Builder
	code, err := run(base, head, "NoSuchBenchmark", 0.25, &out)
	if code != 2 || err == nil {
		t.Fatalf("code=%d err=%v, want 2 with error", code, err)
	}
}
