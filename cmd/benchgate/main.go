// Command benchgate compares two `go test -bench` output files and fails
// (exit 1) when any guarded benchmark regressed beyond a threshold. It is
// the self-contained CI gate behind the pull-request benchmark job:
// benchstat renders the human-readable diff that gets archived as a
// workflow artifact, benchgate decides pass/fail so the gate needs no
// external tooling.
//
// Usage:
//
//	benchgate -base old.txt -head new.txt [-threshold 0.25] [-mem-threshold 0.25] [-filter regex]
//	benchgate -scale-base old.json -scale-head new.json [-scale-threshold 0.2]
//
// Both files should contain repeated samples (go test -count=N); the gate
// compares per-benchmark medians, which tolerates the odd noisy sample the
// way benchstat does. Three metrics are guarded: ns/op against -threshold,
// and the two memory metrics — B/op and the peak-heap-MB metric reported
// by the out-of-core scale benchmarks — against -mem-threshold, so a
// change that keeps wall clock flat but reintroduces an O(E) allocation
// still fails the PR. Benchmarks present in only one file are reported but
// never fail the gate (new benchmarks must not break the PR that
// introduces them).
//
// The second form compares two cmd/scalebench JSON reports instead: every
// multi-worker (dataset, component, workers) cell present in both must
// keep its parallel efficiency within -scale-threshold (relative), so a
// change that serializes a hot loop fails the PR even when single-threaded
// ns/op is unchanged.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"cutfit/internal/scale"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkAppendEdges/delta-8   720   1628496 ns/op   3718640 B/op   689 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// gatedUnits are the metrics the gate guards, in display order. Every
// other unit on a bench line (allocs/op, MB/s, custom metrics) is parsed
// and ignored.
var gatedUnits = []string{"ns/op", "B/op", "peak-heap-MB"}

// parseBench collects per-benchmark, per-unit samples from one bench
// output stream. Bench lines carry (value, unit) pairs after the
// iteration count; all pairs are collected so memory metrics gate
// alongside ns/op.
func parseBench(r io.Reader) (map[string]map[string][]float64, error) {
	out := make(map[string]map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			continue // not a (value, unit)* tail: some other Benchmark-prefixed line
		}
		samples := make(map[string]float64, len(fields)/2)
		ok := true
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			samples[fields[i+1]] = v
		}
		if !ok || len(samples) == 0 {
			continue
		}
		units := out[m[1]]
		if units == nil {
			units = make(map[string][]float64)
			out[m[1]] = units
		}
		for unit, v := range samples {
			units[unit] = append(units[unit], v)
		}
	}
	return out, sc.Err()
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// result is one (benchmark, unit) comparison row.
type result struct {
	name       string
	unit       string
	base, head float64 // medians; NaN when missing on that side
	ratio      float64
}

// compare joins base and head samples into sorted comparison rows — one
// per (benchmark, gated unit) present on either side — restricted to
// names matching filter (nil = all).
func compare(base, head map[string]map[string][]float64, filter *regexp.Regexp) []result {
	names := make(map[string]bool)
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	var rows []result
	for n := range names {
		if filter != nil && !filter.MatchString(n) {
			continue
		}
		for _, unit := range gatedUnits {
			bs, hs := base[n][unit], head[n][unit]
			if len(bs) == 0 && len(hs) == 0 {
				continue
			}
			r := result{name: n, unit: unit, base: math.NaN(), head: math.NaN()}
			if len(bs) > 0 {
				r.base = median(bs)
			}
			if len(hs) > 0 {
				r.head = median(hs)
			}
			if !math.IsNaN(r.base) && !math.IsNaN(r.head) {
				if r.base == 0 {
					if r.head == 0 {
						r.ratio = 1
					} else {
						r.ratio = math.Inf(1) // 0 → nonzero is an unambiguous regression
					}
				} else {
					r.ratio = r.head / r.base
				}
			}
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return unitOrder(rows[i].unit) < unitOrder(rows[j].unit)
	})
	return rows
}

func unitOrder(unit string) int {
	for i, u := range gatedUnits {
		if u == unit {
			return i
		}
	}
	return len(gatedUnits)
}

// gate renders the comparison and returns the "name unit" labels of rows
// whose median regressed beyond that unit's threshold: ns/op is judged
// against threshold, the memory units (B/op, peak-heap-MB) against
// memThreshold.
func gate(w io.Writer, rows []result, threshold, memThreshold float64) []string {
	var failed []string
	fmt.Fprintf(w, "%-60s %-14s %14s %14s %8s\n", "benchmark", "unit", "base", "head", "delta")
	for _, r := range rows {
		limit := threshold
		if r.unit != "ns/op" {
			limit = memThreshold
		}
		switch {
		case math.IsNaN(r.base):
			fmt.Fprintf(w, "%-60s %-14s %14s %14.0f %8s\n", r.name, r.unit, "-", r.head, "new")
		case math.IsNaN(r.head):
			fmt.Fprintf(w, "%-60s %-14s %14.0f %14s %8s\n", r.name, r.unit, r.base, "-", "gone")
		default:
			verdict := fmt.Sprintf("%+.1f%%", (r.ratio-1)*100)
			if r.ratio > 1+limit {
				verdict += " FAIL"
				failed = append(failed, r.name+" "+r.unit)
			}
			fmt.Fprintf(w, "%-60s %-14s %14.0f %14.0f %8s\n", r.name, r.unit, r.base, r.head, verdict)
		}
	}
	return failed
}

func run(basePath, headPath, filterExpr string, threshold, memThreshold float64, w io.Writer) (int, error) {
	var filter *regexp.Regexp
	if filterExpr != "" {
		var err error
		if filter, err = regexp.Compile(filterExpr); err != nil {
			return 2, fmt.Errorf("benchgate: bad -filter: %w", err)
		}
	}
	parseFile := func(path string) (map[string]map[string][]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	base, err := parseFile(basePath)
	if err != nil {
		return 2, err
	}
	head, err := parseFile(headPath)
	if err != nil {
		return 2, err
	}
	rows := compare(base, head, filter)
	if len(rows) == 0 {
		return 2, fmt.Errorf("benchgate: no benchmarks matched")
	}
	if failed := gate(w, rows, threshold, memThreshold); len(failed) > 0 {
		fmt.Fprintf(w, "\nREGRESSION above thresholds (+%.0f%% time, +%.0f%% memory): %s\n",
			threshold*100, memThreshold*100, strings.Join(failed, ", "))
		return 1, nil
	}
	fmt.Fprintf(w, "\nOK: no benchmark regressed beyond +%.0f%% time / +%.0f%% memory\n", threshold*100, memThreshold*100)
	return 0, nil
}

// runScale compares two scalebench JSON reports and fails (exit 1) when
// any shared multi-worker cell lost more than threshold of its parallel
// efficiency. Reports swept on different machines (different MaxWorkers)
// are compared over whatever cells they share — the worker ladder is part
// of the cell key, so a missing rung simply isn't gated.
func runScale(basePath, headPath string, threshold float64, w io.Writer) (int, error) {
	base, err := scale.ReadJSONFile(basePath)
	if err != nil {
		return 2, fmt.Errorf("benchgate: %w", err)
	}
	head, err := scale.ReadJSONFile(headPath)
	if err != nil {
		return 2, fmt.Errorf("benchgate: %w", err)
	}
	if base.MaxWorkers != head.MaxWorkers {
		fmt.Fprintf(w, "note: sweeps ran at different widths (base GOMAXPROCS=%d, head %d); comparing shared cells only\n",
			base.MaxWorkers, head.MaxWorkers)
	}
	scale.WriteMarkdown(w, head)
	failed := scale.Compare(base, head, threshold)
	if len(failed) > 0 {
		fmt.Fprintf(w, "\nEFFICIENCY REGRESSION beyond -%.0f%%:\n", threshold*100)
		for _, r := range failed {
			fmt.Fprintf(w, "  %s\n", r)
		}
		return 1, nil
	}
	fmt.Fprintf(w, "\nOK: no scaling cell lost more than %.0f%% parallel efficiency\n", threshold*100)
	return 0, nil
}

func main() {
	basePath := flag.String("base", "", "bench output of the base commit")
	headPath := flag.String("head", "", "bench output of the head commit")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression (0.25 = +25%)")
	memThreshold := flag.Float64("mem-threshold", 0.25, "maximum tolerated B/op or peak-heap-MB regression (0.25 = +25%)")
	filter := flag.String("filter", "", "regexp restricting which benchmarks are guarded (default: all)")
	scaleBase := flag.String("scale-base", "", "scalebench JSON report of the base commit")
	scaleHead := flag.String("scale-head", "", "scalebench JSON report of the head commit")
	scaleThreshold := flag.Float64("scale-threshold", 0.2, "maximum tolerated parallel-efficiency drop (0.2 = -20%)")
	flag.Parse()
	if (*scaleBase != "") != (*scaleHead != "") {
		fmt.Fprintln(os.Stderr, "usage: benchgate -scale-base old.json -scale-head new.json [-scale-threshold 0.2]")
		os.Exit(2)
	}
	if *scaleBase != "" {
		code, err := runScale(*scaleBase, *scaleHead, *scaleThreshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(code)
	}
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -base old.txt -head new.txt [-threshold 0.25] [-filter regex]")
		os.Exit(2)
	}
	code, err := run(*basePath, *headPath, *filter, *threshold, *memThreshold, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(code)
}
