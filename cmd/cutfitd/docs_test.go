package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"cutfit"
)

// TestAPIDocCoversRoutes keeps docs/API.md in sync with the daemon's
// routing table: every route the mux registers must appear in the doc
// as "METHOD /path". Adding an endpoint without documenting it fails
// here.
func TestAPIDocCoversRoutes(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	doc := string(raw)
	for _, rt := range apiRoutes {
		if want := rt.method + " " + rt.path; !strings.Contains(doc, want) {
			t.Errorf("docs/API.md does not document the route %q", want)
		}
	}
}

// TestOperationsDocCoversMetrics keeps the docs/OPERATIONS.md metrics
// catalog in sync with the live registry, in both directions: every
// registered series must appear backticked in the doc, and every
// backticked cutfit_… series the doc names must exist in the registry.
// The test binary links the whole stack (store, engine, block tier, the
// daemon's HTTP series), so cutfit.MetricNames() here is the full set a
// running daemon exports.
func TestOperationsDocCoversMetrics(t *testing.T) {
	raw, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading docs/OPERATIONS.md: %v", err)
	}
	doc := string(raw)

	registered := make(map[string]bool)
	for _, name := range cutfit.MetricNames() {
		registered[name] = true
		if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, "`"+name+"{") {
			t.Errorf("docs/OPERATIONS.md catalog is missing the registered series %q", name)
		}
	}
	if len(registered) < 15 {
		t.Fatalf("registry exports %d families, want ≥ 15 — did a layer's series not register?", len(registered))
	}

	// Backward direction: any `cutfit_…` token the doc claims (with or
	// without a {label} suffix inside the backticks) must be real.
	re := regexp.MustCompile("`(cutfit_[a-z0-9_]+)")
	for _, m := range re.FindAllStringSubmatch(doc, -1) {
		if !registered[m[1]] {
			t.Errorf("docs/OPERATIONS.md names %q, which is not in the registry", m[1])
		}
	}
}
