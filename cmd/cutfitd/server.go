package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cutfit"
	"cutfit/internal/obsv"
)

// serverOptions configures the daemon's Session and serving policy.
// The zero value is fully usable: default cache budget, GOMAXPROCS
// parallelism, default admission limits, discarded logs.
type serverOptions struct {
	cacheBytes  int64
	parallelism int
	// dataDir enables durability: the artifact cache spills evicted entries
	// to <dataDir>/cache/, and <dataDir>/cutfitd.snap — written by
	// POST /v1/snapshot and on graceful shutdown — warm-starts the whole
	// session (graph registry included) on the next boot.
	dataDir string

	// Admission control. maxConcurrent bounds requests in flight across
	// the daemon (0: default 64; <0: unlimited); graphConcurrent bounds
	// them per target graph (0: default 32; <0: unlimited). Over-limit
	// requests wait in a bounded queue (maxQueue; 0: defaults) up to
	// queueTimeout (0: 2s), then get 429 + Retry-After. /healthz and
	// /metrics are exempt, so a saturated daemon stays observable.
	maxConcurrent   int
	graphConcurrent int
	maxQueue        int
	queueTimeout    time.Duration

	// logger receives one structured line per request; nil discards.
	logger *slog.Logger

	// workers lists cutfit-worker base URLs (-workers). Non-empty attaches
	// a cutfit.WorkerPool to the Session, so /v1/run dispatches pagerank,
	// dynamicpr and cc across the cluster — bit-identical to local runs,
	// with automatic local fallback if any worker fails mid-run.
	workers []string
}

// snapshotFile is the session snapshot inside -data-dir.
const snapshotFile = "cutfitd.snap"

// graphEntry is one registered graph with its summary.
type graphEntry struct {
	g        *cutfit.Graph
	vertices int
	edges    int
}

// server is the HTTP facade over one concurrent cutfit.Session plus a
// named-graph registry. All handler state is either the Session (safe for
// concurrent use by construction) or the registry map under its RWMutex,
// so the stock net/http one-goroutine-per-request model needs no further
// coordination.
type server struct {
	session *cutfit.Session
	mux     *http.ServeMux
	dataDir string
	logger  *slog.Logger

	// limiter is the global admission bound; graphLims holds one lazily
	// created limiter per registered graph name, each sized by
	// graphLimit. See middleware.go for the admission protocol.
	limiter    *obsv.Limiter
	graphLimit obsv.LimiterConfig
	limMu      sync.Mutex
	graphLims  map[string]*obsv.Limiter

	mu     sync.RWMutex
	graphs map[string]*graphEntry
	// blockFiles are the handles behind graphs registered from on-disk
	// block-graph files (-block-graph); they stay open for the life of the
	// process so blocks keep decoding straight from disk.
	blockFiles []io.Closer

	// persistMu serializes snapshot writes (concurrent POST /v1/snapshot
	// calls, or one racing the shutdown persist).
	persistMu sync.Mutex
}

// apiRoute is one row of the daemon's routing table — the single source
// of truth that mux registration, the 405 Allow headers and the
// docs/API.md drift guard all read.
type apiRoute struct {
	method  string
	path    string
	handler func(*server) http.HandlerFunc
}

var apiRoutes = []apiRoute{
	{"POST", "/v1/graphs", func(s *server) http.HandlerFunc { return s.handleRegisterGraph }},
	{"GET", "/v1/graphs", func(s *server) http.HandlerFunc { return s.handleListGraphs }},
	{"POST", "/v1/graphs/{name}/edges", func(s *server) http.HandlerFunc { return s.handleAppendEdges }},
	{"POST", "/v1/metrics", func(s *server) http.HandlerFunc { return s.handleMetrics }},
	{"POST", "/v1/advise", func(s *server) http.HandlerFunc { return s.handleAdvise }},
	{"POST", "/v1/run", func(s *server) http.HandlerFunc { return s.handleRun }},
	{"POST", "/v1/snapshot", func(s *server) http.HandlerFunc { return s.handleSnapshot }},
	{"GET", "/v1/stats", func(s *server) http.HandlerFunc { return s.handleStats }},
	{"GET", "/v1/cluster", func(s *server) http.HandlerFunc { return s.handleCluster }},
	{"GET", "/metrics", func(s *server) http.HandlerFunc { return s.handleMetricsScrape }},
	{"GET", "/healthz", func(s *server) http.HandlerFunc { return s.handleHealthz }},
}

// newServer builds the daemon. With opts.dataDir set it warm-starts from
// <dataDir>/cutfitd.snap when one exists — the graph registry and every
// cached artifact come back from one read, so the first /v1/run after a
// restart never re-partitions — and wires the session's disk tier under
// <dataDir>/cache/. A corrupt snapshot fails loudly (delete the file to
// boot cold) rather than silently paying a full re-partition.
func newServer(opts serverOptions) (*server, error) {
	sopts := cutfit.SessionOptions{
		MaxCacheBytes: opts.cacheBytes,
		Parallelism:   opts.parallelism,
	}
	var (
		session  *cutfit.Session
		restored map[string]*cutfit.Graph
	)
	if opts.dataDir != "" {
		if err := os.MkdirAll(opts.dataDir, 0o755); err != nil {
			return nil, fmt.Errorf("cutfitd: creating data dir: %w", err)
		}
		sopts.DiskDir = filepath.Join(opts.dataDir, "cache")
		path := filepath.Join(opts.dataDir, snapshotFile)
		f, err := os.Open(path)
		switch {
		case err == nil:
			session, restored, err = cutfit.RestoreSession(f, sopts)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("cutfitd: warm start from %s: %w", path, err)
			}
		case !errors.Is(err, os.ErrNotExist):
			return nil, fmt.Errorf("cutfitd: opening snapshot: %w", err)
		}
	}
	if session == nil {
		session = cutfit.NewSession(sopts)
	}
	if len(opts.workers) > 0 {
		session.AttachWorkers(cutfit.NewWorkerPool(opts.workers))
	}
	logger := opts.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	graphConcurrent := opts.graphConcurrent
	if graphConcurrent == 0 {
		graphConcurrent = 32
	}
	s := &server{
		session: session,
		dataDir: opts.dataDir,
		logger:  logger,
		limiter: obsv.NewLimiter(obsv.LimiterConfig{
			MaxConcurrent: opts.maxConcurrent,
			MaxQueue:      opts.maxQueue,
			QueueTimeout:  opts.queueTimeout,
		}),
		graphLimit: obsv.LimiterConfig{
			MaxConcurrent: graphConcurrent,
			MaxQueue:      opts.maxQueue,
			QueueTimeout:  opts.queueTimeout,
		},
		graphLims: make(map[string]*obsv.Limiter),
		graphs:    make(map[string]*graphEntry, len(restored)),
		mux:       http.NewServeMux(),
	}
	for name, g := range restored {
		s.graphs[name] = &graphEntry{g: g, vertices: g.NumVertices(), edges: g.NumLiveEdges()}
	}
	// Register the method-qualified routes, then a path-only fallback per
	// path: the Go 1.22 mux prefers the more specific method patterns, so
	// the fallback fires exactly for known-path/wrong-method requests and
	// answers 405 with an Allow header instead of the mux's plain-text
	// default.
	byPath := make(map[string][]string)
	for _, rt := range apiRoutes {
		s.mux.HandleFunc(rt.method+" "+rt.path, rt.handler(s))
		byPath[rt.path] = append(byPath[rt.path], rt.method)
	}
	for path, methods := range byPath {
		s.mux.HandleFunc(path, methodNotAllowed(methods))
	}
	return s, nil
}

// methodNotAllowed answers a known path with an unregistered method:
// 405, an Allow header listing what the path supports, and the uniform
// JSON error body.
func methodNotAllowed(allow []string) http.HandlerFunc {
	sort.Strings(allow)
	allowHeader := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allowHeader)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed for %s (allow: %s)", r.Method, r.URL.Path, allowHeader))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetricsScrape serves the live metric registry in the Prometheus
// text exposition format: every store/engine/block-tier series plus the
// HTTP and admission series the daemon itself maintains.
func (s *server) handleMetricsScrape(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = cutfit.WriteMetrics(w)
}

// persist atomically writes the session snapshot (graph registry included)
// to <dataDir>/cutfitd.snap via a temp file + rename, so a crash mid-write
// can never clobber the previous good snapshot.
func (s *server) persist() (cutfit.SnapshotSummary, error) {
	if s.dataDir == "" {
		return cutfit.SnapshotSummary{}, fmt.Errorf("snapshots need the daemon started with -data-dir")
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.mu.RLock()
	names := make(map[string]*cutfit.Graph, len(s.graphs))
	for name, e := range s.graphs {
		names[name] = e.g
	}
	s.mu.RUnlock()
	path := filepath.Join(s.dataDir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return cutfit.SnapshotSummary{}, err
	}
	sum, err := s.session.SnapshotNamed(f, names)
	if err == nil {
		// fsync before the rename: without it a system crash shortly after
		// the rename could surface an empty file at the final path, and a
		// corrupt snapshot deliberately fails the next boot.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return cutfit.SnapshotSummary{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return cutfit.SnapshotSummary{}, err
	}
	return sum, nil
}

// snapshotReply reports a persisted snapshot.
type snapshotReply struct {
	Path      string `json:"path"`
	Graphs    int    `json:"graphs"`
	Artifacts int    `json:"artifacts"`
	Bytes     int64  `json:"bytes"`
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sum, err := s.persist()
	if err != nil {
		status := http.StatusInternalServerError
		if s.dataDir == "" {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotReply{
		Path:      filepath.Join(s.dataDir, snapshotFile),
		Graphs:    sum.Graphs,
		Artifacts: sum.Artifacts,
		Bytes:     sum.Bytes,
	})
}

// errorReply is the uniform error body. Code is the stable
// error-taxonomy slug (see codeForStatus in middleware.go); Error is
// the human-readable detail.
type errorReply struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorReply{Error: err.Error(), Code: codeForStatus(status)})
}

// maxRequestBytes caps request bodies: generous for inline edge lists
// (a ~64 MiB list is a few million edges) while keeping one
// unauthenticated POST from exhausting the daemon's memory.
const maxRequestBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		// A body over the cap is the client sending too much, not sending
		// malformed JSON — it gets 413, and MaxBytesReader has already set
		// Connection: close so the half-read body is not misread as the
		// next request.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// lookup resolves a registered graph by name.
func (s *server) lookup(name string) (*graphEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q (register it via POST /v1/graphs)", name)
	}
	return e, nil
}

// register installs a graph under name. Cached artifacts of a replaced
// graph are forgotten only once no registered name references it anymore:
// re-registering the same memoized dataset graph (old.g == g) or replacing
// one of several names sharing a graph must not wipe the live cache.
func (s *server) register(name string, g *cutfit.Graph) *graphEntry {
	e := &graphEntry{g: g, vertices: g.NumVertices(), edges: g.NumLiveEdges()}
	s.mu.Lock()
	old := s.graphs[name]
	s.graphs[name] = e
	var forget *cutfit.Graph
	if old != nil && old.g != g {
		forget = old.g
		for _, other := range s.graphs {
			if other.g == forget {
				forget = nil
				break
			}
		}
	}
	s.mu.Unlock()
	if forget != nil {
		s.session.Forget(forget)
	}
	return e
}

// registerDataset builds a named analog dataset and registers it.
func (s *server) registerDataset(name, dataset string) (*graphEntry, error) {
	spec, err := cutfit.DatasetByName(dataset)
	if err != nil {
		return nil, err
	}
	g, err := spec.BuildCached()
	if err != nil {
		return nil, err
	}
	return s.register(name, g), nil
}

// registerBlockGraph opens an on-disk block graph (a cutfit.SaveBlockGraph
// file) and registers it under name. Blocks are served straight from the
// file — only the index and vertex list are heap-resident — so a daemon can
// serve graphs far larger than its cache budget. The file handle is held
// for the life of the process (appends densify the graph first, after which
// the file is no longer read, but the original generation may still be
// serving in-flight requests).
func (s *server) registerBlockGraph(name, path string) (*graphEntry, error) {
	g, closer, err := cutfit.OpenBlockGraph(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.blockFiles = append(s.blockFiles, closer)
	s.mu.Unlock()
	return s.register(name, g), nil
}

type registerRequest struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset,omitempty"`
	Edges   string `json:"edges,omitempty"`
}

type graphReply struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

func (s *server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("graph name is required"))
		return
	}
	var (
		e   *graphEntry
		err error
	)
	switch {
	case req.Dataset != "" && req.Edges != "":
		err = fmt.Errorf("use either dataset or edges, not both")
	case req.Dataset != "":
		e, err = s.registerDataset(req.Name, req.Dataset)
	case req.Edges != "":
		var g *cutfit.Graph
		if g, err = cutfit.LoadEdgeList(strings.NewReader(req.Edges)); err == nil {
			e = s.register(req.Name, g)
		}
	default:
		err = fmt.Errorf("one of dataset or edges is required")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, graphReply{Name: req.Name, Vertices: e.vertices, Edges: e.edges})
}

// appendRequest carries an edge batch in the same SNAP-style edge-list
// encoding the register endpoint accepts (an optional third column weights
// each edge), plus the sliding-window expiry bound. ExpireBefore > 0
// additionally retires every live edge older than the graph's
// expire_before-th append — append and expiry land in ONE generation step.
// Edges may be empty when expire_before is set (pure expiry).
type appendRequest struct {
	Edges        string `json:"edges,omitempty"`
	ExpireBefore int    `json:"expire_before,omitempty"`
}

// appendReply reports the advanced graph plus how many edges the batch
// added and the window step expired. Edges counts live (unexpired) edges.
type appendReply struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Added    int    `json:"added"`
	Expired  int    `json:"expired,omitempty"`
}

// handleAppendEdges streams an edge batch into a registered graph:
// POST /v1/graphs/{name}/edges. The registry entry is replaced by the next
// graph generation (Session.AppendEdges, or Session.SlideWindow when the
// request carries expire_before); the previous generation is deliberately
// NOT forgotten — its cached artifacts are what the session's delta chain
// extends/patches, so a run after an append or expiry costs O(batch)
// instead of a cold re-partition. Requests already running against the old
// generation are unaffected.
//
// The O(|E|) generation step runs outside the registry lock — the lock is
// held only for the lookup and the swap, so appends never stall handlers
// for other graphs. Racing appends to one name are resolved
// compare-and-swap style: a loser re-derives from the winner's generation,
// so no batch is lost (TestServerConcurrentAppendsAndRuns).
func (s *server) handleAppendEdges(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Edges == "" && req.ExpireBefore <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("edges or expire_before is required"))
		return
	}
	if req.ExpireBefore < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("expire_before must be non-negative"))
		return
	}
	var batch []cutfit.Edge
	var weights []float64
	if req.Edges != "" {
		parsed, err := cutfit.LoadEdgeList(strings.NewReader(req.Edges))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		batch, weights = parsed.Edges(), parsed.Weights()
	}
	name := r.PathValue("name")
	releaseGraph, ok := s.admitGraph(w, r, name)
	if !ok {
		return
	}
	defer releaseGraph()
	for {
		e, err := s.lookup(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		oldLive := e.g.NumLiveEdges()
		var ng *cutfit.Graph
		if req.ExpireBefore > 0 {
			ng, err = s.session.SlideWindow(e.g, batch, weights, req.ExpireBefore)
		} else {
			ng, err = s.session.AppendWeightedEdges(e.g, batch, weights)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ne := &graphEntry{g: ng, vertices: ng.NumVertices(), edges: ng.NumLiveEdges()}
		s.mu.Lock()
		if s.graphs[name] == e {
			s.graphs[name] = ne
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, appendReply{
				Name:     name,
				Vertices: ne.vertices,
				Edges:    ne.edges,
				Added:    len(batch),
				Expired:  oldLive + len(batch) - ng.NumLiveEdges(),
			})
			return
		}
		// Another append (or re-register) won the swap; drop the loser's
		// generation from the session (its delta record would otherwise
		// pin the discarded edge-list copy) and retry against the current
		// one.
		s.mu.Unlock()
		if ng != e.g {
			s.session.Forget(ng)
		}
	}
}

func (s *server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]graphReply, 0, len(s.graphs))
	for name, e := range s.graphs {
		out = append(out, graphReply{Name: name, Vertices: e.vertices, Edges: e.edges})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

type metricsRequest struct {
	Graph    string `json:"graph"`
	Strategy string `json:"strategy"`
	Parts    int    `json:"parts"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var req metricsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	e, err := s.lookup(req.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	releaseGraph, ok := s.admitGraph(w, r, req.Graph)
	if !ok {
		return
	}
	defer releaseGraph()
	strat, err := cutfit.StrategyByName(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.session.Measure(e.g, strat, req.Parts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep := cutfit.NewMetricsReport(strat.Name(), req.Parts, m)
	rep.Graph = req.Graph
	writeJSON(w, http.StatusOK, rep)
}

type adviseRequest struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"alg"`
	Parts     int    `json:"parts"`
	Measure   bool   `json:"measure,omitempty"`
}

func (s *server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req adviseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	e, err := s.lookup(req.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	releaseGraph, ok := s.admitGraph(w, r, req.Graph)
	if !ok {
		return
	}
	defer releaseGraph()
	profile, err := cutfit.ProfileFor(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rec := s.session.Advise(e.g, profile, req.Parts)
	rep := cutfit.NewAdviseReport(req.Algorithm, req.Parts, rec)
	rep.Graph = req.Graph
	if req.Measure {
		sel, err := s.session.Select(e.g, cutfit.Strategies(), req.Parts, profile)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if rep.Ranking, err = cutfit.RankFromSelection(sel, profile.Metric); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, rep)
}

type runRequest struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"alg"`
	Strategy  string `json:"strategy"`
	Parts     int    `json:"parts"`
	// Iters is a pointer so an explicit 0 (cc: run to convergence) is
	// distinguishable from an absent field (default 10).
	Iters *int `json:"iters,omitempty"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !decodeBody(w, r, &req) {
		return
	}
	e, err := s.lookup(req.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	releaseGraph, ok := s.admitGraph(w, r, req.Graph)
	if !ok {
		return
	}
	defer releaseGraph()
	iters := 10
	if req.Iters != nil {
		iters = *req.Iters
	}
	var strat cutfit.Strategy
	if req.Strategy == "auto" {
		profile, err := cutfit.ProfileFor(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sel, err := s.session.Select(e.g, cutfit.Strategies(), req.Parts, profile)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		strat = sel.Strategy
	} else {
		if strat, err = cutfit.StrategyByName(req.Strategy); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	rep, err := s.session.Run(r.Context(), e.g, strat, req.Parts, req.Algorithm, iters)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep.Graph = req.Graph
	writeJSON(w, http.StatusOK, rep)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.session.CacheStats())
}

// clusterReply reports the daemon's execution mode and, when distributed,
// each attached worker's live health.
type clusterReply struct {
	Mode    string                `json:"mode"`
	Workers []cutfit.WorkerStatus `json:"workers,omitempty"`
}

// handleCluster reports whether runs dispatch locally or across an
// attached worker pool: GET /v1/cluster. With workers attached it polls
// every worker's health endpoint, so operators see a dead worker here
// before a run pays the fallback.
func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	pool := s.session.Workers()
	if pool == nil {
		writeJSON(w, http.StatusOK, clusterReply{Mode: "local"})
		return
	}
	writeJSON(w, http.StatusOK, clusterReply{
		Mode:    "distributed",
		Workers: pool.Status(r.Context()),
	})
}
