package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cutfit/internal/obsv"
)

// HTTP-layer metric series, registered at package init alongside the
// store/engine/block-tier series so GET /metrics names every family
// from the first scrape.
var (
	mHTTPRequests = obsv.Default.CounterVec("cutfit_http_requests_total",
		"Requests served, by route pattern and status code.", "endpoint", "code")
	hHTTPLatency = obsv.Default.HistogramVec("cutfit_http_request_seconds",
		"End-to-end request latency, by route pattern.", obsv.DefBuckets, "endpoint")
	gHTTPInFlight = obsv.Default.Gauge("cutfit_http_in_flight_requests",
		"Requests currently being served (admission-exempt endpoints included).")
	mHTTPErrors = obsv.Default.CounterVec("cutfit_http_errors_total",
		"Error responses, by route pattern and error-taxonomy code (see docs/API.md).", "endpoint", "error")
	mAdmissionRejected = obsv.Default.CounterVec("cutfit_admission_rejected_total",
		"Requests rejected with 429, by limiter scope (global or graph) and reason (queue_full or timeout).", "scope", "reason")
	gAdmissionQueue = obsv.Default.Gauge("cutfit_admission_queue_depth",
		"Requests currently parked in an admission wait queue (all scopes).")
	hAdmissionWait = obsv.Default.Histogram("cutfit_admission_queue_wait_seconds",
		"Time admitted-after-queueing requests spent waiting for a slot.", obsv.DefBuckets)
)

func init() {
	obsv.Default.GaugeFunc("cutfit_go_goroutines",
		"Goroutines currently live in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// Error taxonomy: every error response carries one of these stable codes
// in its JSON body and its cutfit_http_errors_total label, so clients
// and dashboards switch on the code rather than parsing messages.
const (
	codeBadRequest       = "bad_request"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codePayloadTooLarge  = "payload_too_large"
	codeOverCapacity     = "over_capacity"
	codeInternal         = "internal"
)

// codeForStatus maps an HTTP status onto the error taxonomy; non-error
// statuses map to "".
func codeForStatus(status int) string {
	switch {
	case status == http.StatusNotFound:
		return codeNotFound
	case status == http.StatusMethodNotAllowed:
		return codeMethodNotAllowed
	case status == http.StatusRequestEntityTooLarge:
		return codePayloadTooLarge
	case status == http.StatusTooManyRequests:
		return codeOverCapacity
	case status >= 500:
		return codeInternal
	case status >= 400:
		return codeBadRequest
	}
	return ""
}

// reqIDPrefix makes request IDs unique across daemon restarts; the
// atomic counter makes them unique within one.
var (
	reqIDPrefix  = func() string { var b [4]byte; _, _ = rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	reqIDCounter atomic.Int64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDCounter.Add(1))
}

// statusWriter captures the status code and body size a handler wrote,
// for the request log line and the per-code request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// exemptFromAdmission marks the endpoints that must answer even when
// the daemon is saturated: health probes and the metrics scrape (an
// operator debugging an overload needs exactly those two).
func exemptFromAdmission(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// ServeHTTP is the daemon's middleware stack: request ID, in-flight
// gauge, global admission control, then the mux, then the request
// counter/latency/error series and one structured log line.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = nextRequestID()
	}
	w.Header().Set("X-Request-ID", rid)
	endpoint := s.endpointLabel(r)

	gHTTPInFlight.Add(1)
	defer gHTTPInFlight.Add(-1)

	sw := &statusWriter{ResponseWriter: w}
	if release, ok := s.admit(sw, r, "global", s.limiter); ok {
		s.mux.ServeHTTP(sw, r)
		release()
	}
	if sw.status == 0 {
		sw.status = http.StatusOK
	}

	elapsed := time.Since(start)
	mHTTPRequests.With(endpoint, strconv.Itoa(sw.status)).Inc()
	hHTTPLatency.With(endpoint).Observe(elapsed.Seconds())
	level := slog.LevelInfo
	if code := codeForStatus(sw.status); code != "" {
		mHTTPErrors.With(endpoint, code).Inc()
		if sw.status >= 500 {
			level = slog.LevelError
		} else {
			level = slog.LevelWarn
		}
	}
	s.logger.Log(r.Context(), level, "request",
		"id", rid,
		"method", r.Method,
		"path", r.URL.Path,
		"endpoint", endpoint,
		"status", sw.status,
		"bytes", sw.bytes,
		"duration", elapsed,
		"remote", r.RemoteAddr,
	)
}

// endpointLabel resolves the mux pattern the request will route to, so
// metric labels stay low-cardinality ("/v1/graphs/{name}/edges", never
// one label value per graph name). Unroutable paths share one label.
func (s *server) endpointLabel(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		// Strip the method qualifier ("POST /v1/run" -> "/v1/run") so one
		// path is one label value across methods.
		if i := strings.IndexByte(pattern, ' '); i >= 0 {
			return pattern[i+1:]
		}
		return pattern
	}
	return "unrouted"
}

// admit runs one limiter's admission protocol for the request: fast
// acquire, else a bounded queued wait (tracked by the queue-depth gauge
// and wait histogram), else 429 with Retry-After. ok=false means the
// rejection response has been written; on ok=true the caller must call
// release after the work.
func (s *server) admit(w http.ResponseWriter, r *http.Request, scope string, lim *obsv.Limiter) (release func(), ok bool) {
	if lim == nil || exemptFromAdmission(r.URL.Path) {
		return func() {}, true
	}
	if release = lim.TryAcquire(); release != nil {
		return release, true
	}
	gAdmissionQueue.Add(1)
	release, waited, err := lim.Acquire(r.Context())
	gAdmissionQueue.Add(-1)
	if err != nil {
		reason := "timeout"
		if err == obsv.ErrOverCapacity {
			reason = "queue_full"
		}
		mAdmissionRejected.With(scope, reason).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(lim.RetryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("%s admission limit reached (%s); retry later", scope, reason))
		return nil, false
	}
	hAdmissionWait.Observe(waited.Seconds())
	return release, true
}

// admitGraph applies the per-graph concurrency limit once a handler has
// resolved which graph the request targets. Same contract as admit.
func (s *server) admitGraph(w http.ResponseWriter, r *http.Request, name string) (release func(), ok bool) {
	if s.graphLimit.MaxConcurrent < 0 {
		return func() {}, true
	}
	s.limMu.Lock()
	lim, found := s.graphLims[name]
	if !found {
		lim = obsv.NewLimiter(s.graphLimit)
		s.graphLims[name] = lim
	}
	s.limMu.Unlock()
	return s.admit(w, r, "graph", lim)
}
