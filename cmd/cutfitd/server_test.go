package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cutfit"
)

// edge list shared by the handler tests: two triangles joined by a bridge.
const testEdges = "0 1\n1 2\n2 0\n2 3\n3 4\n4 5\n5 3\n"

// mustServer builds a server or fails the test.
func mustServer(t *testing.T, opts serverOptions) *server {
	t.Helper()
	s, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(mustServer(t, serverOptions{}))
	t.Cleanup(ts.Close)
	post(t, ts, "/v1/graphs", map[string]any{"name": "tri", "edges": testEdges}, nil)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func get(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestServerMetricsMatchesLibrary: the served MetricsReport equals a direct
// library computation, and a repeated request is answered from the cache.
func TestServerMetricsMatchesLibrary(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"graph": "tri", "strategy": "2D", "parts": 4}
	var rep1, rep2 cutfit.MetricsReport
	post(t, ts, "/v1/metrics", req, &rep1)
	post(t, ts, "/v1/metrics", req, &rep2)
	if rep1 != rep2 {
		t.Fatalf("repeated request differs: %+v vs %+v", rep1, rep2)
	}

	g, err := cutfit.LoadEdgeList(bytes.NewReader([]byte(testEdges)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := cutfit.Measure(g, cutfit.EdgePartition2D(), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := cutfit.NewMetricsReport("2D", 4, m)
	want.Graph = "tri"
	if rep1 != want {
		t.Fatalf("served %+v, library computed %+v", rep1, want)
	}

	var stats cutfit.CacheStats
	get(t, ts, "/v1/stats", &stats)
	if stats.Hits == 0 {
		t.Fatalf("no cache hit after repeated request: %+v", stats)
	}
}

// TestServerAdviseAndRun covers the advise (+measure ranking) and run
// endpoints, including auto strategy selection, and checks the run reuses
// the selection's cached artifacts.
func TestServerAdviseAndRun(t *testing.T) {
	ts := newTestServer(t)

	var adv cutfit.AdviseReport
	post(t, ts, "/v1/advise", map[string]any{"graph": "tri", "alg": "pagerank", "parts": 4, "measure": true}, &adv)
	if adv.Strategy == "" || adv.Metric != "CommCost" {
		t.Fatalf("bad advise report: %+v", adv)
	}
	if len(adv.Ranking) != len(cutfit.Strategies()) {
		t.Fatalf("ranking has %d rows, want %d", len(adv.Ranking), len(cutfit.Strategies()))
	}
	selected := 0
	for _, row := range adv.Ranking {
		if row.Selected {
			selected++
		}
	}
	if selected != 1 {
		t.Fatalf("%d rows marked selected, want 1", selected)
	}

	var run cutfit.RunReport
	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "cc", "strategy": "auto", "parts": 4}, &run)
	if run.Components != 1 {
		t.Fatalf("cc found %d components, want 1", run.Components)
	}
	if !run.Converged || run.SimSecs <= 0 {
		t.Fatalf("bad run report: %+v", run)
	}
}

// TestServerConcurrentRequests hammers one graph from many goroutines —
// mixed metrics and runs — and asserts every response is identical to the
// first (the serving core must be deterministic under concurrency).
func TestServerConcurrentRequests(t *testing.T) {
	ts := newTestServer(t)
	mreq := map[string]any{"graph": "tri", "strategy": "2D", "parts": 4}
	rreq := map[string]any{"graph": "tri", "alg": "pagerank", "strategy": "2D", "parts": 4, "iters": 5}
	var wantM cutfit.MetricsReport
	post(t, ts, "/v1/metrics", mreq, &wantM)
	var wantR cutfit.RunReport
	post(t, ts, "/v1/run", rreq, &wantR)

	const workers = 8
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				var m cutfit.MetricsReport
				post(t, ts, "/v1/metrics", mreq, &m)
				if m != wantM {
					fail <- "metrics response diverged"
				}
			} else {
				var r cutfit.RunReport
				post(t, ts, "/v1/run", rreq, &r)
				if r.Supersteps != wantR.Supersteps || len(r.TopRanks) != len(wantR.TopRanks) {
					fail <- "run response diverged"
					return
				}
				for i := range r.TopRanks {
					if r.TopRanks[i] != wantR.TopRanks[i] {
						fail <- "run ranks diverged"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}

// TestServerRunExplicitZeroIters: iters:0 must reach the engine as "run to
// convergence" (cc on a path graph needs more than the default-10 rounds),
// not be coerced to the absent-field default.
func TestServerRunExplicitZeroIters(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, serverOptions{}))
	defer ts.Close()
	var sb bytes.Buffer
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	post(t, ts, "/v1/graphs", map[string]any{"name": "path", "edges": sb.String()}, nil)
	var run cutfit.RunReport
	post(t, ts, "/v1/run", map[string]any{"graph": "path", "alg": "cc", "strategy": "2D", "parts": 4, "iters": 0}, &run)
	if !run.Converged || run.Components != 1 {
		t.Fatalf("iters:0 did not run cc to convergence: %+v", run)
	}
	if run.Supersteps <= 10 {
		t.Fatalf("cc on a 41-vertex path converged in %d supersteps — iters:0 was coerced to a cap", run.Supersteps)
	}
}

// TestServerReregisterKeepsSharedCache: re-registering the same graph data
// (and replacing one of two names sharing a graph) must not wipe the live
// artifact cache of a graph that is still registered.
func TestServerReregisterKeepsSharedCache(t *testing.T) {
	ts := newTestServer(t)
	req := map[string]any{"graph": "tri", "strategy": "2D", "parts": 4}
	var rep cutfit.MetricsReport
	post(t, ts, "/v1/metrics", req, &rep)

	var before cutfit.CacheStats
	get(t, ts, "/v1/stats", &before)

	// newTestServer registers "tri" from inline edges; registering a second
	// name over the same bytes creates a distinct graph, so only the
	// same-entry re-register path can be exercised via a dataset graph
	// (BuildCached memoizes). Register it twice under one name.
	post(t, ts, "/v1/graphs", map[string]any{"name": "yt", "dataset": "youtube"}, nil)
	ytReq := map[string]any{"graph": "yt", "strategy": "2D", "parts": 8}
	post(t, ts, "/v1/metrics", ytReq, &rep)
	post(t, ts, "/v1/graphs", map[string]any{"name": "yt", "dataset": "youtube"}, nil) // idempotent re-register
	post(t, ts, "/v1/graphs", map[string]any{"name": "yt2", "dataset": "youtube"}, nil)
	post(t, ts, "/v1/graphs", map[string]any{"name": "yt2", "edges": testEdges}, nil) // replace one alias

	var after cutfit.CacheStats
	misses := after.Misses
	get(t, ts, "/v1/stats", &after)
	post(t, ts, "/v1/metrics", ytReq, &rep) // must still be a cache hit
	var final cutfit.CacheStats
	get(t, ts, "/v1/stats", &final)
	if final.Misses != after.Misses {
		t.Fatalf("re-register wiped the shared graph's cache (misses %d -> %d)", misses, final.Misses)
	}
}

// TestServerErrors: unknown graphs and bad strategies produce JSON errors
// with the right status.
func TestServerErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		path   string
		body   map[string]any
		status int
	}{
		{"/v1/metrics", map[string]any{"graph": "nope", "strategy": "2D", "parts": 4}, http.StatusNotFound},
		{"/v1/metrics", map[string]any{"graph": "tri", "strategy": "bogus", "parts": 4}, http.StatusBadRequest},
		{"/v1/run", map[string]any{"graph": "tri", "alg": "bogus", "strategy": "2D", "parts": 4}, http.StatusBadRequest},
		{"/v1/graphs", map[string]any{"name": ""}, http.StatusBadRequest},
	} {
		b, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var e errorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("POST %s %v: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.status)
		}
		if e.Error == "" {
			t.Fatalf("POST %s: empty error body", tc.path)
		}
	}
}

// TestServerAppendEdges streams a batch into a registered graph and checks
// that runs see the grown generation, the old generation's cache seeds the
// new one (DeltaDerived > 0), and results match a cold server registered
// with the full edge list.
func TestServerAppendEdges(t *testing.T) {
	ts := newTestServer(t)
	// Warm the chain on the base generation.
	var base cutfit.RunReport
	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "pagerank", "strategy": "2D", "parts": 4}, &base)

	const batch = "5 6\n6 0\n0 6\n"
	var rep appendReply
	post(t, ts, "/v1/graphs/tri/edges", map[string]any{"edges": batch}, &rep)
	if rep.Added != 3 || rep.Edges != 10 || rep.Vertices != 7 {
		t.Fatalf("append reply %+v, want 3 added / 10 edges / 7 vertices", rep)
	}

	var run cutfit.RunReport
	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "dynamicpr", "strategy": "2D", "parts": 4, "iters": 0}, &run)

	var stats cutfit.CacheStats
	get(t, ts, "/v1/stats", &stats)
	if stats.DeltaDerived == 0 {
		t.Fatalf("append did not exercise the delta chain: %+v", stats)
	}

	// A cold server over the concatenated edge list must agree exactly.
	ts2 := httptest.NewServer(mustServer(t, serverOptions{}))
	defer ts2.Close()
	post(t, ts2, "/v1/graphs", map[string]any{"name": "tri", "edges": testEdges + batch}, nil)
	var want cutfit.RunReport
	post(t, ts2, "/v1/run", map[string]any{"graph": "tri", "alg": "dynamicpr", "strategy": "2D", "parts": 4, "iters": 0}, &want)
	want.Graph, run.Graph = "", ""
	if fmt.Sprint(run) != fmt.Sprint(want) {
		t.Fatalf("post-append run differs from cold full-graph run:\n got %+v\nwant %+v", run, want)
	}
}

// TestServerAppendErrors: unknown graph and empty batch are rejected.
func TestServerAppendErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		path   string
		body   map[string]any
		status int
	}{
		{"/v1/graphs/nope/edges", map[string]any{"edges": "0 1\n"}, http.StatusNotFound},
		{"/v1/graphs/tri/edges", map[string]any{"edges": ""}, http.StatusBadRequest},
	} {
		b, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var e errorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("POST %s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
	}
}

// TestServerSlideWindow drives the sliding-window mode of the append
// endpoint: one request appends a batch AND expires the oldest edges in a
// single generation step, later artifacts still derive through the delta
// chain, and a pure-expiry request (no edges) works too — including one
// that pushes tombstones over the compaction threshold.
func TestServerSlideWindow(t *testing.T) {
	ts := newTestServer(t)
	// Warm the chain on the base generation.
	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "pagerank", "strategy": "2D", "parts": 4}, nil)

	const batch = "5 6\n6 0\n0 6\n"
	var rep appendReply
	post(t, ts, "/v1/graphs/tri/edges", map[string]any{"edges": batch, "expire_before": 2}, &rep)
	if rep.Added != 3 || rep.Expired != 2 || rep.Edges != 8 || rep.Vertices != 7 {
		t.Fatalf("slide reply %+v, want 3 added / 2 expired / 8 live edges / 7 vertices", rep)
	}

	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "dynamicpr", "strategy": "2D", "parts": 4, "iters": 0}, nil)
	var stats cutfit.CacheStats
	get(t, ts, "/v1/stats", &stats)
	if stats.DeltaDerived == 0 {
		t.Fatalf("sliding window did not exercise the delta chain: %+v", stats)
	}

	// Pure expiry: no edges, just retire the next two oldest. This pushes
	// tombstone density past the compaction threshold — the endpoint must
	// stay transparent to that (the next run pays a cold pass, not an
	// error).
	var rep2 appendReply
	post(t, ts, "/v1/graphs/tri/edges", map[string]any{"expire_before": 4}, &rep2)
	if rep2.Added != 0 || rep2.Expired != 2 || rep2.Edges != 6 {
		t.Fatalf("pure-expiry reply %+v, want 0 added / 2 expired / 6 live edges", rep2)
	}
	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "pagerank", "strategy": "2D", "parts": 4}, nil)

	var graphs []graphReply
	get(t, ts, "/v1/graphs", &graphs)
	if len(graphs) != 1 || graphs[0].Edges != 6 {
		t.Fatalf("registry lists %+v, want one graph with 6 live edges", graphs)
	}
}

// TestServerOversizedBodyReturns413: a request body over the 64 MiB cap is
// "too large", not "malformed" — the handler must answer 413, not 400.
func TestServerOversizedBodyReturns413(t *testing.T) {
	ts := newTestServer(t)
	payload := append([]byte(`{"edges":"`), bytes.Repeat([]byte(" "), maxRequestBytes)...)
	payload = append(payload, '"', '}')
	resp, err := http.Post(ts.URL+"/v1/graphs/tri/edges", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorReply
	_ = json.NewDecoder(resp.Body).Decode(&e)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%s), want %d", resp.StatusCode, e.Error, http.StatusRequestEntityTooLarge)
	}
	if e.Error == "" {
		t.Fatal("oversized body: empty error body")
	}
}

// TestServerSnapshotWarmStart is the kill-and-restart proof: a daemon
// serves runs, persists via POST /v1/snapshot, "dies", and a new daemon
// over the same data dir answers the identical /v1/run without a single
// re-partition — its registry and artifact cache come back from the
// snapshot, asserted via the cache counters (zero misses).
func TestServerSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	ts1 := httptest.NewServer(mustServer(t, serverOptions{dataDir: dir}))
	post(t, ts1, "/v1/graphs", map[string]any{"name": "tri", "edges": testEdges}, nil)
	runReq := map[string]any{"graph": "tri", "alg": "pagerank", "strategy": "2D", "parts": 4, "iters": 5}
	var want cutfit.RunReport
	post(t, ts1, "/v1/run", runReq, &want)
	var mwant cutfit.MetricsReport
	post(t, ts1, "/v1/metrics", map[string]any{"graph": "tri", "strategy": "2D", "parts": 4}, &mwant)

	var snap snapshotReply
	post(t, ts1, "/v1/snapshot", map[string]any{}, &snap)
	if snap.Graphs != 1 || snap.Artifacts < 3 || snap.Bytes <= 0 {
		t.Fatalf("snapshot reply %+v, want 1 graph and ≥3 artifacts", snap)
	}
	ts1.Close() // the "kill"

	ts2 := httptest.NewServer(mustServer(t, serverOptions{dataDir: dir}))
	defer ts2.Close()

	// The registry survived the restart.
	var graphs []graphReply
	get(t, ts2, "/v1/graphs", &graphs)
	if len(graphs) != 1 || graphs[0].Name != "tri" || graphs[0].Edges != 7 {
		t.Fatalf("warm-started registry %+v, want tri with 7 edges", graphs)
	}

	// Identical requests produce identical responses...
	var got cutfit.RunReport
	post(t, ts2, "/v1/run", runReq, &got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-restart run differs:\n got %+v\nwant %+v", got, want)
	}
	var mgot cutfit.MetricsReport
	post(t, ts2, "/v1/metrics", map[string]any{"graph": "tri", "strategy": "2D", "parts": 4}, &mgot)
	if mgot != mwant {
		t.Fatalf("post-restart metrics differ: %+v vs %+v", mgot, mwant)
	}

	// ...and nothing was re-partitioned: every request hit the restored
	// cache.
	var stats cutfit.CacheStats
	get(t, ts2, "/v1/stats", &stats)
	if stats.Misses != 0 {
		t.Fatalf("warm-started daemon recomputed %d artifacts: %+v", stats.Misses, stats)
	}
	if stats.Hits < 2 {
		t.Fatalf("warm-started daemon served %d hits, want ≥2: %+v", stats.Hits, stats)
	}
}

// TestServerSnapshotRequiresDataDir: POST /v1/snapshot on a memory-only
// daemon is a client error, not a crash.
func TestServerSnapshotRequiresDataDir(t *testing.T) {
	ts := newTestServer(t)
	b, _ := json.Marshal(map[string]any{})
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("snapshot without -data-dir: status %d, want %d", resp.StatusCode, http.StatusBadRequest)
	}
}

// TestServerRejectsCorruptSnapshot: a tampered snapshot must fail the boot
// loudly instead of silently starting cold (the operator deletes the file
// to accept a cold start).
func TestServerRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ts1 := httptest.NewServer(mustServer(t, serverOptions{dataDir: dir}))
	post(t, ts1, "/v1/graphs", map[string]any{"name": "tri", "edges": testEdges}, nil)
	post(t, ts1, "/v1/snapshot", map[string]any{}, nil)
	ts1.Close()

	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(serverOptions{dataDir: dir}); err == nil {
		t.Fatal("boot over a corrupt snapshot must fail")
	}
}

// tryPost is the goroutine-safe flavor of post: it returns an error
// instead of calling t.Fatal, which must not run off the test goroutine.
func tryPost(ts *httptest.Server, path string, body any, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// TestServerConcurrentAppendsAndRuns: appends race runs and other appends;
// every append must land (lost updates forbidden) and no run may error.
func TestServerConcurrentAppendsAndRuns(t *testing.T) {
	ts := newTestServer(t)
	const appenders, runners, batches = 4, 4, 5
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				v := 100 + a*batches + i
				if err := tryPost(ts, "/v1/graphs/tri/edges", map[string]any{"edges": fmt.Sprintf("%d %d\n", v, v+1)}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				var rep cutfit.RunReport
				if err := tryPost(ts, "/v1/run", map[string]any{"graph": "tri", "alg": "cc", "strategy": "2D", "parts": 4}, &rep); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var graphs []graphReply
	get(t, ts, "/v1/graphs", &graphs)
	if len(graphs) != 1 || graphs[0].Edges != 7+appenders*batches {
		t.Fatalf("after concurrent appends: %+v, want %d edges", graphs, 7+appenders*batches)
	}
}

// TestServerBlockGraphRegistration: a graph registered from an on-disk
// block file (-block-graph) serves metrics identical to the same graph
// registered inline — the block tier is invisible to the pipeline.
func TestServerBlockGraphRegistration(t *testing.T) {
	gb, err := cutfit.LoadEdgeListBlocks(bytes.NewReader([]byte(testEdges)), 64)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tri.cfb")
	if err := cutfit.SaveBlockGraph(path, gb); err != nil {
		t.Fatal(err)
	}

	srv := mustServer(t, serverOptions{})
	if _, err := srv.registerBlockGraph("disk", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	post(t, ts, "/v1/graphs", map[string]any{"name": "mem", "edges": testEdges}, nil)

	req := func(name string) cutfit.MetricsReport {
		var rep cutfit.MetricsReport
		post(t, ts, "/v1/metrics", map[string]any{"graph": name, "strategy": "2D", "parts": 4}, &rep)
		return rep
	}
	disk, mem := req("disk"), req("mem")
	disk.Graph, mem.Graph = "", ""
	if disk != mem {
		t.Fatalf("block-file graph serves different metrics: %+v vs %+v", disk, mem)
	}

	if _, err := srv.registerBlockGraph("bad", filepath.Join(t.TempDir(), "absent.cfb")); err == nil {
		t.Fatal("registered a missing block-graph file")
	}
}
