package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMethodNotAllowed: a known path with an unregistered method gets
// 405, an Allow header listing the path's methods, and the uniform JSON
// error body with the taxonomy code.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		method, path string
		wantAllow    string
	}{
		{http.MethodDelete, "/v1/run", "POST"},
		{http.MethodGet, "/v1/run", "POST"},
		{http.MethodPut, "/v1/graphs", "GET, POST"},
		{http.MethodDelete, "/v1/graphs/tri/edges", "POST"},
		{http.MethodPost, "/v1/stats", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodDelete, "/healthz", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
		if e.Code != codeMethodNotAllowed {
			t.Errorf("%s %s: code = %q, want %q", tc.method, tc.path, e.Code, codeMethodNotAllowed)
		}
	}
}

// TestErrorTaxonomyCodes: representative error responses carry the
// documented taxonomy code in the body.
func TestErrorTaxonomyCodes(t *testing.T) {
	ts := newTestServer(t)
	check := func(path string, body string, wantStatus int, wantCode string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != wantStatus || e.Code != wantCode {
			t.Errorf("POST %s: got (%d, %q), want (%d, %q): %s",
				path, resp.StatusCode, e.Code, wantStatus, wantCode, e.Error)
		}
	}
	check("/v1/metrics", `{"graph":"absent","strategy":"2D","parts":4}`, http.StatusNotFound, codeNotFound)
	check("/v1/metrics", `{"graph":"tri","strategy":"nope","parts":4}`, http.StatusBadRequest, codeBadRequest)
	check("/v1/run", `not json`, http.StatusBadRequest, codeBadRequest)
}

// TestRequestIDHeader: every response carries X-Request-ID; a
// caller-provided ID is echoed back.
func TestRequestIDHeader(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing generated X-Request-ID")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-42" {
		t.Errorf("X-Request-ID = %q, want caller-provided ID echoed", got)
	}
}

// TestGlobalAdmission429 deterministically exercises the 429 path: the
// test holds every global slot directly, so the request must queue,
// time out, and come back 429 with Retry-After — no timing races.
func TestGlobalAdmission429(t *testing.T) {
	s := mustServer(t, serverOptions{
		maxConcurrent: 2,
		maxQueue:      1,
		queueTimeout:  20 * time.Millisecond,
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	post(t, ts, "/v1/graphs", map[string]any{"name": "tri", "edges": testEdges}, nil)

	r1 := s.limiter.TryAcquire()
	r2 := s.limiter.TryAcquire()
	if r1 == nil || r2 == nil {
		t.Fatal("could not saturate the global limiter")
	}
	defer r1()
	defer r2()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var e errorReply
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if e.Code != codeOverCapacity {
		t.Errorf("code = %q, want %q", e.Code, codeOverCapacity)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}

	// Health and metrics stay reachable while the daemon is saturated.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s during saturation: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestPerGraphAdmission429: saturating one graph's limiter rejects
// requests for that graph but leaves other graphs servable.
func TestPerGraphAdmission429(t *testing.T) {
	s := mustServer(t, serverOptions{
		graphConcurrent: 1,
		maxQueue:        -1, // no queue: reject instantly, keeps the test deterministic
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	post(t, ts, "/v1/graphs", map[string]any{"name": "a", "edges": testEdges}, nil)
	post(t, ts, "/v1/graphs", map[string]any{"name": "b", "edges": testEdges}, nil)

	// Prime graph a's limiter (created lazily on first admission) and
	// hold its only slot.
	post(t, ts, "/v1/metrics", map[string]any{"graph": "a", "strategy": "2D", "parts": 2}, nil)
	s.limMu.Lock()
	lim := s.graphLims["a"]
	s.limMu.Unlock()
	if lim == nil {
		t.Fatal("graph limiter for a was not created")
	}
	release := lim.TryAcquire()
	if release == nil {
		t.Fatal("could not saturate graph a's limiter")
	}
	defer release()

	body := `{"graph":"a","strategy":"2D","parts":2}`
	resp, err := http.Post(ts.URL+"/v1/metrics", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e errorReply
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || e.Code != codeOverCapacity {
		t.Fatalf("graph a request: got (%d, %q), want (429, %q)", resp.StatusCode, e.Code, codeOverCapacity)
	}

	// Graph b is governed by its own limiter and still serves.
	post(t, ts, "/v1/metrics", map[string]any{"graph": "b", "strategy": "2D", "parts": 2}, nil)
}

// TestMetricsEndpointSpansLayers: GET /metrics parses as Prometheus
// text exposition and, after one mixed workload, exposes at least 15
// distinct series spanning the store, engine and HTTP layers.
func TestMetricsEndpointSpansLayers(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, "/v1/metrics", map[string]any{"graph": "tri", "strategy": "2D", "parts": 4}, nil)
	post(t, ts, "/v1/run", map[string]any{"graph": "tri", "alg": "pagerank", "strategy": "2D", "parts": 4, "iters": 3}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}

	families := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		families[name] = true
	}
	if len(families) < 15 {
		t.Errorf("exposition holds %d families, want ≥ 15:\n%s", len(families), body)
	}
	layers := map[string]string{
		"store":  "cutfit_store_",
		"engine": "cutfit_pregel_",
		"http":   "cutfit_http_",
	}
	for layer, prefix := range layers {
		found := false
		for name := range families {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s-layer series (prefix %s) in exposition", layer, prefix)
		}
	}

	// The workload above must be visible: the run's store traffic and the
	// HTTP requests that carried it.
	for _, want := range []string{"cutfit_store_misses_total", "cutfit_http_requests_total{"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsUnderConcurrentLoad is the HTTP-level race suite for
// /metrics: mixed traffic mutates every layer's series while scrapers
// read the exposition; every scrape must parse and the request counter
// must be monotone across scrapes.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	ts := newTestServer(t)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(map[string]any{"graph": "tri", "strategy": "2D", "parts": 2 + w})
				resp, err := http.Post(ts.URL+"/v1/metrics", "application/json", bytes.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	var lastTotal int64 = -1
	for i := 0; i < 25; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			idx := strings.LastIndexByte(line, ' ')
			if idx < 0 {
				t.Fatalf("scrape %d: unparseable line %q", i, line)
			}
			if _, err := strconv.ParseFloat(line[idx+1:], 64); err != nil {
				t.Fatalf("scrape %d: bad value in %q: %v", i, line, err)
			}
			if strings.HasPrefix(line, "cutfit_http_requests_total{") {
				v, _ := strconv.ParseInt(line[idx+1:], 10, 64)
				total += v
			}
		}
		if total < lastTotal {
			t.Fatalf("scrape %d: request counter went backwards (%d -> %d)", i, lastTotal, total)
		}
		lastTotal = total
	}
	close(stop)
	writers.Wait()
}
