// Command cutfitd is the long-running serving daemon of the Cut-to-Fit
// library: it holds a cutfit.Session — the keyed artifact cache with
// single-flight builds plus the engine's pooled scratch buffers — and
// serves partitioning measurement, strategy advice and algorithm execution
// over HTTP/JSON. Concurrent identical requests cost one partitioning pass
// total; repeated requests are cache hits; concurrent runs on one cached
// topology reuse pooled engine buffers.
//
// Usage:
//
//	cutfitd [-addr :8080] [-cache-mb 512] [-parallelism N] [-preload youtube,roadnet-ca]
//
// Endpoints (request and response bodies are JSON; the response structs
// are the same cutfit.MetricsReport / AdviseReport / RunReport encodings
// the cutfit CLI prints with -json):
//
//	POST /v1/graphs   {"name": "g", "dataset": "youtube"}   register an analog dataset
//	POST /v1/graphs   {"name": "g", "edges": "0 1\n1 2"}    register an inline edge list
//	GET  /v1/graphs                                         list registered graphs
//	POST /v1/graphs/{name}/edges  {"edges": "2 3\n3 4"}     append an edge batch: the
//	                  graph advances to a new generation whose artifacts are
//	                  derived from the previous one's (suffix-only assignment,
//	                  patched topology) — a run after an append costs O(batch),
//	                  not a cold re-partition; in-flight requests keep reading
//	                  the old generation
//	POST /v1/metrics  {"graph", "strategy", "parts"}        §3.1 metric set
//	POST /v1/advise   {"graph", "alg", "parts", "measure"}  recommendation (+ measured ranking)
//	POST /v1/run      {"graph", "alg", "strategy", "parts", "iters"}
//	                  execute an algorithm (pagerank, dynamicpr, cc,
//	                  triangles, sssp); "strategy": "auto" selects empirically
//	GET  /v1/stats                                          cache hit/miss/eviction counters
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 0, "artifact cache budget in MiB (0 = default 512, negative = unbounded)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per build/run (<1 = GOMAXPROCS)")
	preload := flag.String("preload", "", "comma-separated analog dataset names to register at boot under their own names")
	flag.Parse()

	srv := newServer(serverOptions{
		cacheBytes:  *cacheMB * (1 << 20),
		parallelism: *parallelism,
	})
	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			n, err := srv.registerDataset(name, name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cutfitd: preload:", err)
				os.Exit(1)
			}
			log.Printf("preloaded %s: %d vertices, %d edges", name, n.vertices, n.edges)
		}
	}
	log.Printf("cutfitd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "cutfitd:", err)
		os.Exit(1)
	}
}
