// Command cutfitd is the long-running serving daemon of the Cut-to-Fit
// library: it holds a cutfit.Session — the keyed artifact cache with
// single-flight builds plus the engine's pooled scratch buffers — and
// serves partitioning measurement, strategy advice and algorithm execution
// over HTTP/JSON. Concurrent identical requests cost one partitioning pass
// total; repeated requests are cache hits; concurrent runs on one cached
// topology reuse pooled engine buffers.
//
// Usage:
//
//	cutfitd [-addr :8080] [-cache-mb 512] [-parallelism N] [-preload youtube,roadnet-ca] [-block-graph social=/data/social.cfb] [-data-dir /var/lib/cutfitd]
//
// With -data-dir the daemon is durable: evicted cache entries spill to
// <dir>/cache/ (and satisfy later misses from disk), POST /v1/snapshot and
// graceful shutdown (SIGINT/SIGTERM) write <dir>/cutfitd.snap — a
// versioned, CRC-checked snapshot of the graph registry and every cached
// assignment, metric set and built topology — and the next boot
// warm-starts from it, so a restarted daemon serves /v1/run without
// re-partitioning anything.
//
// -block-graph registers graphs from on-disk block-graph files (written by
// cutfit.SaveBlockGraph): name=path pairs, comma-separated, repeatable.
// The graph's edge blocks are served straight from the file for the life
// of the process — only the block index and vertex list are heap-resident
// — so the daemon can serve graphs far larger than memory.
//
// Endpoints (request and response bodies are JSON; the response structs
// are the same cutfit.MetricsReport / AdviseReport / RunReport encodings
// the cutfit CLI prints with -json):
//
//	POST /v1/graphs   {"name": "g", "dataset": "youtube"}   register an analog dataset
//	POST /v1/graphs   {"name": "g", "edges": "0 1\n1 2"}    register an inline edge list
//	GET  /v1/graphs                                         list registered graphs
//	POST /v1/graphs/{name}/edges  {"edges": "2 3\n3 4"}     append an edge batch: the
//	                  graph advances to a new generation whose artifacts are
//	                  derived from the previous one's (suffix-only assignment,
//	                  patched topology) — a run after an append costs O(batch),
//	                  not a cold re-partition; in-flight requests keep reading
//	                  the old generation. Edge lines may carry a third column
//	                  (a float weight); weighted metrics are reported alongside
//	                  the edge-count metrics. An "expire_before": N field
//	                  tombstones every edge position below N while appending —
//	                  sliding-window serving in one generation step; the reply's
//	                  "expired" counts retired edges and "edges" is the live
//	                  count. "edges" may be omitted for a pure expiry.
//	POST /v1/metrics  {"graph", "strategy", "parts"}        §3.1 metric set
//	POST /v1/advise   {"graph", "alg", "parts", "measure"}  recommendation (+ measured ranking)
//	POST /v1/run      {"graph", "alg", "strategy", "parts", "iters"}
//	                  execute an algorithm (pagerank, dynamicpr, cc,
//	                  triangles, sssp); "strategy": "auto" selects empirically
//	POST /v1/snapshot                                       persist registry + cache to
//	                  <data-dir>/cutfitd.snap (requires -data-dir); replies with
//	                  the graph/artifact counts and encoded bytes
//	GET  /v1/stats                                          cache hit/miss/eviction counters,
//	                  including the disk tier's diskHits/diskBytes
//	GET  /v1/cluster                                        execution mode ("local" or
//	                  "distributed") plus each attached worker's live health
//	GET  /metrics                                           live metric series in the Prometheus
//	                  text format: store/engine/block-tier counters and histograms
//	                  plus per-endpoint request, latency and admission series
//	GET  /healthz
//
// The full HTTP reference (request/response schemas, the error-code
// taxonomy, curl examples) is docs/API.md; the operator runbook and the
// metrics catalog are docs/OPERATIONS.md.
//
// # Serving hardening
//
// Every request gets an X-Request-ID (caller-provided IDs are echoed)
// and one structured log line (log/slog, text format on stderr).
// Admission control bounds concurrent work: -max-concurrent requests
// daemon-wide and -graph-concurrent per target graph may run at once;
// over-limit requests wait in a bounded queue (-admission-queue) up to
// -admission-timeout, then receive 429 with a Retry-After header.
// /healthz and /metrics are exempt so a saturated daemon stays
// observable. cmd/loadgen drives a mixed workload against the daemon
// and reports the resulting latency quantiles.
//
// # Distributed runs
//
// With -workers http://host:9090,http://host:9091 the daemon dispatches
// pagerank, dynamicpr and cc supersteps across cutfit-worker processes
// (see cmd/cutfit-worker and docs/DISTRIBUTED.md). Distributed results
// are bit-identical to local ones; if any worker fails mid-run the
// daemon logs an ERROR and transparently re-runs locally, so a worker
// loss degrades throughput but never correctness or availability.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// shutdownGrace bounds how long in-flight requests may run after a
// termination signal before the final snapshot is taken.
const shutdownGrace = 10 * time.Second

// stringList is a repeatable comma-separated flag value.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*l = append(*l, s)
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 0, "artifact cache budget in MiB (0 = default 512, negative = unbounded)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per build/run (<1 = GOMAXPROCS)")
	preload := flag.String("preload", "", "comma-separated analog dataset names to register at boot under their own names")
	dataDir := flag.String("data-dir", "", "durability directory: disk cache tier under <dir>/cache, warm-start snapshot at <dir>/cutfitd.snap (empty = in-memory only)")
	maxConcurrent := flag.Int("max-concurrent", 0, "daemon-wide concurrent request bound (0 = default 64, negative = unlimited)")
	graphConcurrent := flag.Int("graph-concurrent", 0, "per-graph concurrent request bound (0 = default 32, negative = unlimited)")
	admissionQueue := flag.Int("admission-queue", 0, "bounded wait-queue size for over-limit requests (0 = default 256, negative = no queue)")
	admissionTimeout := flag.Duration("admission-timeout", 0, "how long a queued request waits for a slot before 429 (0 = default 2s)")
	var blockGraphs stringList
	flag.Var(&blockGraphs, "block-graph", "name=path of an on-disk block-graph file to register at boot, served straight from the file (comma-separated, repeatable)")
	var workers stringList
	flag.Var(&workers, "workers", "cutfit-worker base URLs (comma-separated, repeatable); non-empty enables distributed runs for pagerank, dynamicpr and cc with local fallback")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := newServer(serverOptions{
		cacheBytes:      *cacheMB * (1 << 20),
		parallelism:     *parallelism,
		dataDir:         *dataDir,
		maxConcurrent:   *maxConcurrent,
		graphConcurrent: *graphConcurrent,
		maxQueue:        *admissionQueue,
		queueTimeout:    *admissionTimeout,
		logger:          logger,
		workers:         workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cutfitd:", err)
		os.Exit(1)
	}
	if n := len(srv.graphs); n > 0 {
		log.Printf("warm start: restored %d graphs from %s", n, *dataDir)
	}
	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			n, err := srv.registerDataset(name, name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cutfitd: preload:", err)
				os.Exit(1)
			}
			log.Printf("preloaded %s: %d vertices, %d edges", name, n.vertices, n.edges)
		}
	}
	for _, spec := range blockGraphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(os.Stderr, "cutfitd: -block-graph %q: want name=path\n", spec)
			os.Exit(1)
		}
		n, err := srv.registerBlockGraph(name, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cutfitd: block graph:", err)
			os.Exit(1)
		}
		log.Printf("opened block graph %s from %s: %d vertices, %d edges", name, path, n.vertices, n.edges)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("cutfitd listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cutfitd:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		cancel()
		if *dataDir != "" {
			sum, err := srv.persist()
			if err != nil {
				log.Printf("final snapshot failed: %v", err)
				os.Exit(1)
			}
			log.Printf("persisted %d graphs, %d artifacts (%d bytes) to %s", sum.Graphs, sum.Artifacts, sum.Bytes, *dataDir)
		}
	}
}
