// Command runexp regenerates the execution-time experiments of the paper's
// evaluation: Figures 3–6 (correlation between partitioning metrics and
// execution time for PageRank, Connected Components, Triangle Count and
// SSSP), the best-strategy winners analysis, the granularity comparison,
// and the infrastructure-upgrade experiment (configurations iii and iv).
//
// Usage:
//
//	runexp -alg pagerank|cc|triangles|sssp [-metric CommCost|Cut] [-winners]
//	runexp -infra
//	runexp -all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"cutfit/internal/bench"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
	"cutfit/internal/report"
)

// buildOpts is the partition-build/engine tuning shared by all experiment
// invocations, set from the -parallelism and -reuse-buffers flags.
var buildOpts pregel.BuildOptions

// stratOverride, when non-empty, replaces the paper's six strategies in
// every figure experiment (the -strategies flag).
var stratOverride []partition.Strategy

// newExperiment builds the default experiment for alg with the shared
// build options and any strategy override applied.
func newExperiment(alg bench.Algorithm) bench.Experiment {
	e := bench.DefaultExperiment(alg)
	e.Build = buildOpts
	if len(stratOverride) > 0 {
		e.Strategies = stratOverride
	}
	return e
}

func main() {
	alg := flag.String("alg", "", "algorithm: pagerank, cc, triangles, sssp")
	metric := flag.String("metric", "", "partitioning metric to correlate (default: paper's choice per algorithm)")
	winners := flag.Bool("winners", false, "also print the best-strategy table")
	plot := flag.Bool("plot", false, "render ASCII scatter plots of the figures")
	csvOut := flag.String("csv", "", "write figure points as CSV to this file")
	infra := flag.Bool("infra", false, "run the infrastructure experiment (configs ii/iii/iv)")
	all := flag.Bool("all", false, "run everything: all four figures, winners, infra")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for partition build and engine phases (0 = GOMAXPROCS)")
	reuse := flag.Bool("reuse-buffers", true, "reuse engine scratch buffers across runs of the same partitioned graph")
	strategies := flag.String("strategies", "", "comma-separated strategy names overriding the paper's six (e.g. 2D,DC,Range,Hybrid:250)")
	flag.Parse()

	buildOpts = pregel.BuildOptions{Parallelism: *parallelism, ReuseBuffers: *reuse}
	if *strategies != "" {
		var err error
		if stratOverride, err = partition.ByNames(*strategies); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	switch {
	case *all:
		for _, a := range bench.Algorithms() {
			if err := runFigure(ctx, a, "", true); err != nil {
				fatal(err)
			}
		}
		if err := runInfra(ctx); err != nil {
			fatal(err)
		}
	case *infra:
		if err := runInfra(ctx); err != nil {
			fatal(err)
		}
	case *alg != "":
		if err := runFigure(ctx, bench.Algorithm(*alg), *metric, *winners); err != nil {
			fatal(err)
		}
		if *plot || *csvOut != "" {
			if err := renderFigure(ctx, bench.Algorithm(*alg), *metric, *plot, *csvOut); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// paperMetric returns the metric the paper's figure uses for an algorithm.
func paperMetric(alg bench.Algorithm) string {
	if alg == bench.Triangles {
		return "Cut"
	}
	return "CommCost"
}

// figureName maps algorithms to the paper's figure numbers.
func figureName(alg bench.Algorithm) string {
	switch alg {
	case bench.PageRank:
		return "Figure 3 (PageRank)"
	case bench.ConnectedComponents:
		return "Figure 4 (Connected Components)"
	case bench.Triangles:
		return "Figure 5 (Triangle Count)"
	case bench.SSSP:
		return "Figure 6 (SSSP)"
	}
	return string(alg)
}

func runFigure(ctx context.Context, alg bench.Algorithm, metric string, winners bool) error {
	if metric == "" {
		metric = paperMetric(alg)
	}
	fmt.Printf("=== %s: execution time vs %s ===\n", figureName(alg), metric)
	e := newExperiment(alg)
	res, err := e.Run(ctx)
	if err != nil {
		return err
	}
	for _, cfg := range []string{"config-i", "config-ii"} {
		s, err := res.Correlate(metric, cfg)
		if err != nil {
			return err
		}
		if err := bench.WriteCorrelation(os.Stdout, s); err != nil {
			return err
		}
		per, err := res.PerDatasetCorrelation(metric, cfg)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(per))
		for ds := range per {
			names = append(names, ds)
		}
		sort.Strings(names)
		fmt.Printf("Within-dataset correlation (%s):", cfg)
		for _, ds := range names {
			fmt.Printf(" %s=%.2f", ds, per[ds])
		}
		fmt.Println()
		fmt.Println()
	}
	sp := res.GranularitySpeedup("config-i", "config-ii")
	names := make([]string, 0, len(sp))
	for ds := range sp {
		names = append(names, ds)
	}
	sort.Strings(names)
	fmt.Print("Granularity: best(config-i) / best(config-ii) per dataset:")
	for _, ds := range names {
		fmt.Printf(" %s=%.2f", ds, sp[ds])
	}
	fmt.Println()
	if winners {
		fmt.Println()
		fmt.Println("Best strategy per (config, dataset):")
		if err := bench.WriteWinners(os.Stdout, res.Winners()); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

// renderFigure plots the figure's scatter (simulated time vs metric, both
// axes log-scaled like the paper's figures) and/or writes it as CSV.
func renderFigure(ctx context.Context, alg bench.Algorithm, metric string, plot bool, csvPath string) error {
	if metric == "" {
		metric = paperMetric(alg)
	}
	e := newExperiment(alg)
	res, err := e.Run(ctx)
	if err != nil {
		return err
	}
	for _, cfg := range []string{"config-i", "config-ii"} {
		s, err := res.Correlate(metric, cfg)
		if err != nil {
			return err
		}
		points := make([]report.Point, 0, len(s.Points))
		for _, p := range s.Points {
			points = append(points, report.Point{X: p.Metric, Y: p.SimSecs, Series: p.Dataset})
		}
		if plot {
			title := fmt.Sprintf("%s: simulated time vs %s (%s, r=%.3f)", figureName(alg), metric, cfg, s.Pearson)
			err := report.Scatter(os.Stdout, points, report.ScatterConfig{
				Title: title, XLabel: metric, YLabel: "secs", LogX: true, LogY: true,
			})
			if err != nil {
				return err
			}
			fmt.Println()
		}
		if csvPath != "" {
			f, err := os.Create(fmt.Sprintf("%s.%s.csv", csvPath, cfg))
			if err != nil {
				return err
			}
			if err := report.WriteCSV(f, points, metric, "simsecs"); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func runInfra(ctx context.Context) error {
	fmt.Println("=== Infrastructure experiment (§4): PageRank on follow-dec ===")
	r, err := bench.InfraExperiment(ctx, 10, buildOpts)
	if err != nil {
		return err
	}
	if err := bench.WriteInfra(os.Stdout, r); err != nil {
		return err
	}
	fmt.Println("Paper: config(iii) ≈ -15%, config(iv) ≈ -20% vs config(ii).")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runexp:", err)
	os.Exit(1)
}
