package cutfit_test

import (
	"os"
	"path/filepath"
	"testing"

	"cutfit"
	"cutfit/internal/datasets"
)

// BenchmarkRestoreVsRebuild measures what durability buys: serving the
// youtube analog's engine-ready partitioning (128 partitions, 2D) from a
// fresh session that either
//
//   - restore: reads the cached artifact pair — the built topology with
//     its embedded per-edge assignment (AssignOrder) — from the disk tier:
//     one read, decode and full invariant validation, zero strategy passes,
//     zero sorts; or
//   - rebuild: re-partitions and re-builds from scratch — the cost every
//     deploy or crash paid before the disk tier existed.
//
// Both sides are exactly one Session.Partition call against the same
// registered in-memory graph; sessions are constructed outside the timer
// (an empty session is not restoration work). The acceptance bar is
// restore ≥ 10× faster than rebuild.
//
// The restart pair below widens the scope to a full process restart from a
// snapshot file: the graph itself, the standalone assignment artifact
// (histogram + strategy identity) and the topology all come back from one
// read, versus a cold graph re-deriving its views and re-running the whole
// pipeline.
func BenchmarkRestoreVsRebuild(b *testing.B) {
	spec, err := datasets.ByName("youtube")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.BuildCached()
	if err != nil {
		b.Fatal(err)
	}
	s := cutfit.EdgePartition2D()
	const parts = 128

	// One warm session produces both durable forms: the spilled disk-tier
	// entries and the snapshot file.
	dir := b.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	warm := cutfit.NewSession(cutfit.SessionOptions{DiskDir: cacheDir})
	if _, err := warm.Assignment(g, s, parts); err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Partition(g, s, parts); err != nil {
		b.Fatal(err)
	}
	if n, err := warm.Flush(); err != nil || n < 2 {
		b.Fatalf("Flush wrote %d entries, err %v", n, err)
	}
	snapPath := filepath.Join(dir, "bench.snap")
	f, err := os.Create(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.SnapshotNamed(f, map[string]*cutfit.Graph{"youtube": g}); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			se := cutfit.NewSession(cutfit.SessionOptions{DiskDir: cacheDir})
			b.StartTimer()
			if _, err := se.Partition(g, s, parts); err != nil {
				b.Fatal(err)
			}
			if stats := se.CacheStats(); stats.DiskHits != 1 {
				b.Fatalf("disk tier did not serve the topology: %+v", stats)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			se := cutfit.NewSession(cutfit.SessionOptions{})
			b.StartTimer()
			if _, err := se.Partition(g, s, parts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("restart", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(snapPath)
			if err != nil {
				b.Fatal(err)
			}
			se, named, err := cutfit.RestoreSession(f, cutfit.SessionOptions{})
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			rg := named["youtube"]
			if _, err := se.Assignment(rg, s, parts); err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(rg, s, parts); err != nil {
				b.Fatal(err)
			}
			if stats := se.CacheStats(); stats.Misses != 0 {
				b.Fatalf("restart recomputed %d artifacts: %+v", stats.Misses, stats)
			}
		}
	})

	b.Run("restart-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A restart without durability: the graph object is cold (no
			// derived views) and the whole pipeline recomputes.
			cold := cutfit.FromEdges(append([]cutfit.Edge(nil), g.Edges()...))
			se := cutfit.NewSession(cutfit.SessionOptions{})
			if _, err := se.Assignment(cold, s, parts); err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(cold, s, parts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
