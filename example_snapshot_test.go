package cutfit_test

import (
	"bytes"
	"fmt"

	"cutfit"
)

// ExampleSession_Snapshot persists a warmed session — measured metrics and
// a built engine topology — and restores it into a "new process": the
// restored session answers the same requests as pure cache hits, so a
// restart costs one read instead of a re-partition.
func ExampleSession_Snapshot() {
	g := cutfit.FromEdges([]cutfit.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 2},
	})
	strat := cutfit.EdgePartition2D()
	const parts = 4

	se := cutfit.NewSession(cutfit.SessionOptions{})
	m, err := se.Measure(g, strat, parts)
	if err != nil {
		panic(err)
	}
	if _, err := se.Partition(g, strat, parts); err != nil {
		panic(err)
	}

	// Persist the whole cache (graph included, labeled for the registry).
	var buf bytes.Buffer
	if _, err := se.SnapshotNamed(&buf, map[string]*cutfit.Graph{"demo": g}); err != nil {
		panic(err)
	}

	// "Restart": restore into a fresh session and re-ask.
	se2, named, err := cutfit.RestoreSession(&buf, cutfit.SessionOptions{})
	if err != nil {
		panic(err)
	}
	m2, err := se2.Measure(named["demo"], strat, parts)
	if err != nil {
		panic(err)
	}
	if _, err := se2.Partition(named["demo"], strat, parts); err != nil {
		panic(err)
	}

	stats := se2.CacheStats()
	fmt.Println("comm cost preserved:", m2.CommCost == m.CommCost)
	fmt.Println("recomputed artifacts:", stats.Misses)
	fmt.Println("served from restored cache:", stats.Hits)
	// Output:
	// comm cost preserved: true
	// recomputed artifacts: 0
	// served from restored cache: 2
}
