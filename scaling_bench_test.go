// Multi-core scaling benchmarks guarded by bench-compare: a compact
// worker sweep over the topology build and a frontier algorithm, so a
// change that serializes either hot path shows up as a w-max ns/op
// regression even without running the full cmd/scalebench rig.
package cutfit_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"cutfit"
)

// BenchmarkScalingSweep times the engine-side components whose hot loops
// the per-partition workers parallelize — topology build and connected
// components — at one worker and at GOMAXPROCS. On multi-core machines the
// w1/wmax ratio is the inline scaling signal; cmd/scalebench produces the
// full dataset × component × ladder table nightly.
func BenchmarkScalingSweep(b *testing.B) {
	g := benchGraph(b, "youtube")
	const numParts = 64
	ctx := context.Background()
	workers := []int{1, runtime.GOMAXPROCS(0)}
	if workers[1] == 1 {
		workers = workers[:1]
	}

	a, err := cutfit.PartitionAssignment(g, cutfit.EdgePartition2D(), numParts)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workers {
		b.Run(benchWorkerName("build", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cutfit.PartitionFromAssignment(a, cutfit.PartitionOptions{Parallelism: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, w := range workers {
		b.Run(benchWorkerName("cc", w), func(b *testing.B) {
			pg, err := cutfit.PartitionFromAssignment(a, cutfit.PartitionOptions{Parallelism: w, ReuseBuffers: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := cutfit.RunConnectedComponents(ctx, pg, 50); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cutfit.RunConnectedComponents(ctx, pg, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWorkerName names a sweep cell w1/w2/... so bench-compare matches
// cells across machines with the same core count.
func benchWorkerName(component string, workers int) string {
	return fmt.Sprintf("%s-w%d", component, workers)
}
