package cutfit_test

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cutfit"
	"cutfit/internal/gen"
	"cutfit/internal/graph"
)

// peakHeapMB runs f while a background sampler tracks live heap, and
// returns the peak heap growth over the post-GC baseline in MiB. The
// sampler's ReadMemStats stop-the-world pauses are microseconds against
// pipeline stages that run for seconds, so the wall-clock numbers the
// benchmark reports alongside stay honest.
func peakHeapMB(f func()) float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	peak := base
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak {
					peak = s.HeapAlloc
				}
			}
		}
	}()
	f()
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	return float64(peak-base) / (1 << 20)
}

// runScalePipeline is one end-to-end out-of-core serving pass: load the
// R-MAT edge stream into the chosen tier, stream a one-pass greedy
// assignment over it, build the partitioned topology, and run five
// PageRank supersteps. The dense tier is the in-memory []Edge baseline;
// the block tier is the out-of-core configuration the tentpole ships —
// the generator streams into compressed blocks which are spilled to disk
// and served back from the file, so edge payloads never stay heap-resident
// past the load. Peak heap over the whole pass is reported as peak-heap-MB
// next to ns/op, which is what `benchgate -mem-threshold` and the
// dense-vs-block acceptance ratio key off.
func runScalePipeline(b *testing.B, cfg gen.RMATConfig, block bool) {
	s, err := cutfit.StrategyByName("Greedy")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	path := filepath.Join(b.TempDir(), "scale.cfb")
	var peak float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		peak = peakHeapMB(func() {
			var g *graph.Graph
			var err error
			if block {
				g, err = gen.RMATBlocks(cfg, 0)
				if err == nil {
					err = cutfit.SaveBlockGraph(path, g)
				}
				if err != nil {
					b.Fatal(err)
				}
				var closer io.Closer
				g, closer, err = cutfit.OpenBlockGraph(path)
				if err != nil {
					b.Fatal(err)
				}
				defer closer.Close()
			} else {
				g, err = gen.RMAT(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			a, err := cutfit.PartitionAssignment(g, s, 16)
			if err != nil {
				b.Fatal(err)
			}
			pg, err := cutfit.PartitionFromAssignment(a, cutfit.PartitionOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := cutfit.RunPageRank(ctx, pg, 5); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ReportMetric(peak, "peak-heap-MB")
}

// BenchmarkScale is the out-of-core bench family: each size runs the full
// pipeline twice, once per edge tier, so one bench invocation yields the
// dense-vs-block peak-heap and wall-clock ratios directly. The 1M cells
// are part of the PR bench gate's guarded set; 10M runs nightly via
// `make bench-scale`. Sub-bench names are chosen so the gate's
// "BenchmarkScale/1M" filter cannot accidentally match the 10M cells.
func BenchmarkScale(b *testing.B) {
	cells := []struct {
		name string
		cfg  gen.RMATConfig
	}{
		{"1M", gen.DefaultRMAT(16, 16, 42)},  // 2^16 vertices × 16 = 1,048,576 edges
		{"10M", gen.DefaultRMAT(19, 20, 42)}, // 2^19 vertices × 20 = 10,485,760 edges
	}
	for _, c := range cells {
		b.Run(c.name+"/dense", func(b *testing.B) { runScalePipeline(b, c.cfg, false) })
		b.Run(c.name+"/block", func(b *testing.B) { runScalePipeline(b, c.cfg, true) })
	}
}

// BenchmarkScaleXL is the opt-in 100M-edge cell (block tier only — the
// dense twin would need multiple GiB of headroom). It never runs in PR
// CI: `make bench-scale-xl` sets CUTFIT_SCALE_XL, everything else skips.
func BenchmarkScaleXL(b *testing.B) {
	if os.Getenv("CUTFIT_SCALE_XL") == "" {
		b.Skip("set CUTFIT_SCALE_XL=1 (make bench-scale-xl) to run the 100M-edge cell")
	}
	cfg := gen.DefaultRMAT(22, 24, 42) // 2^22 vertices × 24 = 100,663,296 edges
	b.Run("100M/block", func(b *testing.B) { runScalePipeline(b, cfg, true) })
}
