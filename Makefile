# Tier-1 verification and benchmark targets. `make check` is the one
# command a PR must keep green: build, tests, vet, the race determinism
# suite and a short fuzz smoke in one run.

GO ?= go

# bench-compare knobs: the benchmark filter, sample count and output file.
# Typical use, before and after a change:
#   make bench-compare BENCH_OUT=old.txt
#   ...apply change...
#   make bench-compare BENCH_OUT=new.txt
#   benchstat old.txt new.txt
# The default filter is the guarded set the CI benchmark gate enforces.
BENCH ?= BenchmarkSelectEmpirically|BenchmarkMeasureThenRun|BenchmarkPartitionBuild|BenchmarkAppendEdges
BENCH_COUNT ?= 10
BENCH_OUT ?= bench.txt

.PHONY: all build test vet lint race bench bench-smoke bench-compare fuzz fuzz-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting + vet (+ staticcheck when installed) — the CI lint job.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Race determinism regression for the parallel partition build, the
# parallel hash assignment, the scratch-pool engine, the serving layer
# (store single-flight, Session mixed workload, cutfitd handlers) and the
# delta-append path (root equivalence suite, graph generations, store
# chain, topology patching).
race:
	$(GO) test -race . ./cmd/cutfitd/... ./internal/graph/... ./internal/pregel/... ./internal/testutil/... ./internal/partition/... ./internal/store/...

# Hot-path benchmarks: partition construction (old vs new, and across
# dataset analogs × strategies), per-superstep allocation footprint, and
# the single-pass selection pipeline.
bench:
	$(GO) test -run='^$$' -bench=BenchmarkPartitionBuild -benchmem ./internal/pregel/
	$(GO) test -run='^$$' -bench='BenchmarkPartitionBuild|BenchmarkSuperstepAllocs|BenchmarkSelectEmpirically|BenchmarkMeasureThenRun' -benchmem .

# One-iteration pass over the concurrent-serving benchmarks: fast enough
# for CI, still executes the pooled/fresh and hit/miss paths end to end.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkConcurrentRuns|BenchmarkSessionCache' -benchtime=1x -benchmem .

# benchstat-friendly sampling: repeat the $(BENCH) benchmarks
# $(BENCH_COUNT) times into $(BENCH_OUT) so two runs can be compared with
# `benchstat old.txt new.txt`.
bench-compare:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem -count=$(BENCH_COUNT) . | tee $(BENCH_OUT)

# Longer fuzz session: the edge-list ingest path and the incremental
# topology patcher (delta append vs full rebuild cross-check). FUZZTIME is
# per target; the nightly workflow raises it.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzApplyDelta -fuzztime=$(FUZZTIME) ./internal/pregel/

# Seconds-long fuzz smoke for make check: long enough to catch parser and
# delta-patch regressions on the seed corpus, short enough for every PR.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=5s ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzApplyDelta -fuzztime=5s ./internal/pregel/

check: build test vet race fuzz-smoke
