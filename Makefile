# Tier-1 verification and benchmark targets. `make check` is the one
# command a PR must keep green.

GO ?= go

.PHONY: all build test race bench fuzz check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race determinism regression for the parallel partition build and the
# scratch-reuse engine.
race:
	$(GO) test -race ./internal/pregel/... ./internal/testutil/...

# Hot-path benchmarks: partition construction (old vs new, and across
# dataset analogs × strategies) and per-superstep allocation footprint.
bench:
	$(GO) test -run='^$$' -bench=BenchmarkPartitionBuild -benchmem ./internal/pregel/
	$(GO) test -run='^$$' -bench='BenchmarkPartitionBuild|BenchmarkSuperstepAllocs' -benchmem .

# Short fuzz session on the edge-list ingest path.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=30s ./internal/graph/

check: build test race
