# Tier-1 verification and benchmark targets. `make check` is the one
# command a PR must keep green: build, tests, vet, the race determinism
# suite and a short fuzz smoke in one run.

GO ?= go

# bench-compare knobs: the benchmark filter, sample count and output file.
# Typical use, before and after a change:
#   make bench-compare BENCH_OUT=old.txt
#   ...apply change...
#   make bench-compare BENCH_OUT=new.txt
#   benchstat old.txt new.txt
# The default filter is the guarded set the CI benchmark gate enforces.
BENCH ?= BenchmarkSelectEmpirically|BenchmarkMeasureThenRun|BenchmarkPartitionBuild|BenchmarkAppendEdges|BenchmarkRemoveEdges|BenchmarkRestoreVsRebuild|BenchmarkSparseFrontier|BenchmarkScalingSweep|BenchmarkScale/1M
BENCH_COUNT ?= 10
BENCH_OUT ?= bench.txt

.PHONY: all build test vet lint race bench bench-smoke bench-compare bench-scale bench-scale-xl scalebench loadgen-smoke dist-smoke fuzz fuzz-smoke compat check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting + vet (+ staticcheck when installed) — the CI lint job.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Race determinism regression for the parallel partition build, the
# parallel hash assignment, the scratch-pool engine, the serving layer
# (store single-flight, Session mixed workload, cutfitd handlers), the
# delta-append path (root equivalence suite, graph generations, store
# chain, topology patching), the persistence layer (snap codecs, disk
# tier spill/restore, warm-start handlers) and the distributed runtime
# (coordinator/worker exchange over loopback sockets, equivalence and
# failure suites).
race:
	$(GO) test -race . ./cmd/cutfitd/... ./internal/graph/... ./internal/pregel/... ./internal/testutil/... ./internal/partition/... ./internal/store/... ./internal/snap/... ./internal/obsv/... ./internal/dist/...

# Hot-path benchmarks: partition construction (old vs new, and across
# dataset analogs × strategies), the sparse-frontier scan payoff,
# per-superstep allocation footprint, the single-pass selection pipeline
# and the compact worker sweep.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkPartitionBuild|BenchmarkSparseFrontier' -benchmem ./internal/pregel/
	$(GO) test -run='^$$' -bench='BenchmarkPartitionBuild|BenchmarkSuperstepAllocs|BenchmarkSelectEmpirically|BenchmarkMeasureThenRun|BenchmarkScalingSweep' -benchmem .

# Full multi-core scaling sweep: worker ladder × components × dataset
# analogs, JSON for the benchgate efficiency gate plus a markdown table.
# The nightly workflow archives both artifacts.
SCALE_JSON ?= scalebench.json
SCALE_MD ?= scalebench.md
scalebench:
	$(GO) run ./cmd/scalebench -reps 5 -json $(SCALE_JSON) -md $(SCALE_MD)
	@cat $(SCALE_MD)

# Out-of-core scale family: the 1M and 10M R-MAT cells, dense vs block
# tier, one iteration each — the dense-vs-block peak-heap-MB and wall
# ratios the paper reproduction claims. Nightly runs this and archives
# the output; the 1M cells are also in the $(BENCH) guarded set above.
bench-scale:
	$(GO) test -run='^$$' -bench='BenchmarkScale/' -benchtime=1x -benchmem -timeout=30m .

# Opt-in 100M-edge cell (block tier only; needs ~2 GiB free and tens of
# minutes). Guarded by CUTFIT_SCALE_XL so it never runs in PR CI.
bench-scale-xl:
	CUTFIT_SCALE_XL=1 $(GO) test -run='^$$' -bench='BenchmarkScaleXL' -benchtime=1x -benchmem -timeout=120m .

# End-to-end load smoke: boot a real cutfitd, drive the default mixed
# workload at $(LOADGEN_RPS) req/s for $(LOADGEN_DURATION), then fail on
# any 5xx or transport error (loadgen's exit contract). The quantile
# table and a post-run /metrics scrape land in $(LOADGEN_OUT) /
# $(LOADGEN_METRICS); the nightly loadgen-smoke job archives both.
LOADGEN_ADDR ?= 127.0.0.1:18080
LOADGEN_RPS ?= 50
LOADGEN_DURATION ?= 30s
LOADGEN_OUT ?= loadgen-table.txt
LOADGEN_METRICS ?= loadgen-metrics.txt
loadgen-smoke:
	$(GO) build -o ./bin/cutfitd ./cmd/cutfitd
	$(GO) build -o ./bin/loadgen ./cmd/loadgen
	@set -e; \
	./bin/cutfitd -addr $(LOADGEN_ADDR) & daemon=$$!; \
	trap "kill $$daemon 2>/dev/null || true" EXIT; \
	./bin/loadgen -addr http://$(LOADGEN_ADDR) -rps $(LOADGEN_RPS) \
		-duration $(LOADGEN_DURATION) -out $(LOADGEN_OUT) -metrics-out $(LOADGEN_METRICS); \
	echo "loadgen-smoke: zero 5xx at $(LOADGEN_RPS) req/s for $(LOADGEN_DURATION)"

# Distributed-serving smoke: boot 2 cutfit-workers + a coordinator
# cutfitd (-workers) + a plain local daemon, run the loadgen mix at the
# coordinator (zero 5xx), assert /v1/run bodies are byte-equal between
# the two daemons before and after an edge append, and require every run
# to have dispatched distributed (zero fallbacks). The coordinator's
# final /metrics scrape lands in $(DIST_METRICS); nightly archives it.
DIST_RPS ?= 30
DIST_DURATION ?= 10s
DIST_OUT ?= dist-loadgen-table.txt
DIST_METRICS ?= dist-metrics.txt
dist-smoke:
	$(GO) build -o ./bin/cutfitd ./cmd/cutfitd
	$(GO) build -o ./bin/cutfit-worker ./cmd/cutfit-worker
	$(GO) build -o ./bin/loadgen ./cmd/loadgen
	$(GO) run ./cmd/distsmoke -bin-dir ./bin -rps $(DIST_RPS) \
		-duration $(DIST_DURATION) -out $(DIST_OUT) -metrics-out $(DIST_METRICS)

# One-iteration pass over the concurrent-serving benchmarks: fast enough
# for CI, still executes the pooled/fresh and hit/miss paths end to end.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkConcurrentRuns|BenchmarkSessionCache' -benchtime=1x -benchmem .

# benchstat-friendly sampling: repeat the $(BENCH) benchmarks
# $(BENCH_COUNT) times into $(BENCH_OUT) so two runs can be compared with
# `benchstat old.txt new.txt`.
bench-compare:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem -count=$(BENCH_COUNT) . ./internal/pregel/ | tee $(BENCH_OUT)

# Longer fuzz session: the edge-list ingest path, the incremental topology
# patchers (delta append and shrink/slide-window, each cross-checked
# against a full rebuild), the dense/sparse/auto engine scan equivalence
# (including density-threshold crossovers mid-run), and the snapshot
# decoders (container parsing + the assignment codec, seeded from the
# golden corpus). FUZZTIME is per target; the nightly workflow raises it.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzApplyDelta -fuzztime=$(FUZZTIME) ./internal/pregel/
	$(GO) test -run='^$$' -fuzz=FuzzApplyShrink -fuzztime=$(FUZZTIME) ./internal/pregel/
	$(GO) test -run='^$$' -fuzz=FuzzFrontierScanEquivalence -fuzztime=$(FUZZTIME) ./internal/pregel/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/snap/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeAssignment -fuzztime=$(FUZZTIME) ./internal/snap/

# Seconds-long fuzz smoke for make check: long enough to catch parser,
# delta-patch and snapshot-decoder regressions on the seed corpus, short
# enough for every PR.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=5s ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzApplyDelta -fuzztime=5s ./internal/pregel/
	$(GO) test -run='^$$' -fuzz=FuzzApplyShrink -fuzztime=5s ./internal/pregel/
	$(GO) test -run='^$$' -fuzz=FuzzFrontierScanEquivalence -fuzztime=5s ./internal/pregel/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=5s ./internal/snap/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeAssignment -fuzztime=5s ./internal/snap/

# Golden-corpus compatibility gate: the committed format-v1 snapshots must
# re-encode byte-identically and decode to bit-identical artifacts. Run by
# the CI test job as its own step so a format break is named in the UI.
compat:
	$(GO) test -run='TestGolden' -count=1 ./internal/snap/

check: build test vet race fuzz-smoke
