package cutfit

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"

	"cutfit/internal/algorithms"
	"cutfit/internal/core"
	"cutfit/internal/dist"
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
	"cutfit/internal/store"
)

// SessionOptions tunes a Session.
type SessionOptions struct {
	// MaxCacheBytes bounds the artifact cache (assignments, built
	// topologies, metric sets) by their approximate retained bytes;
	// 0 means the default (512 MiB), negative means unbounded.
	MaxCacheBytes int64
	// Parallelism is the session-wide worker-count default: it is carried
	// into every topology the session builds (cache hits included — the
	// option is part of the build) and governs the partition build and all
	// four engine phases of every run on those topologies. Values < 1
	// default to the process's GOMAXPROCS. cmd/cutfitd surfaces it as the
	// -parallelism flag.
	Parallelism int
	// Cluster is the simulated cluster configuration Run reports use for
	// SimSecs; nil means ConfigI with NumPartitions overridden per run.
	Cluster *ClusterConfig
	// DiskDir, when non-empty, enables the durable disk tier under the
	// artifact cache: artifacts evicted from memory spill to versioned
	// snapshot files in this directory, cache misses check disk before
	// recomputing, and spilled entries survive process restarts (files are
	// keyed by graph content, so a re-registered identical graph warms
	// straight from disk). The directory is created if needed; if it cannot
	// be, the session runs memory-only.
	DiskDir string
	// MaxDiskBytes bounds the disk tier; 0 means the default (4× the
	// default memory budget), negative means unbounded.
	MaxDiskBytes int64
}

// SnapshotSummary reports what one Snapshot call wrote.
type SnapshotSummary = store.PersistSummary

// CacheStats is a snapshot of a Session's artifact cache counters.
type CacheStats = store.Stats

// Session is the concurrent serving core of the library: a keyed artifact
// cache over the Assignment pipeline plus the engine's scratch pools. Any
// number of goroutines may call a Session's methods simultaneously —
// identical requests are deduplicated to one computation (single-flight),
// repeated requests hit the cache, and concurrent Runs on one cached
// topology check buffer sets out of per-program-type pools.
//
// The zero-value &Session{} is a valid one-shot session: every call
// computes from scratch with nothing cached. The package-level Measure,
// Partition and Select functions are thin wrappers over exactly that, so
// batch callers keep batch semantics. NewSession returns the caching kind.
//
// Graphs handed to a Session are treated as immutable shared inputs:
// mutate a graph only before serving it (a mutation is detected and never
// served stale, but it forfeits all cached artifacts of that graph).
type Session struct {
	st      *store.Store
	cluster *ClusterConfig
	pool    *dist.Pool
}

// WorkerPool is a fixed set of distributed worker processes a Session can
// dispatch runs to; see internal/dist and docs/DISTRIBUTED.md.
type WorkerPool = dist.Pool

// NewWorkerPool builds a worker pool over the given base URLs (e.g.
// "http://127.0.0.1:9090").
func NewWorkerPool(urls []string) *WorkerPool { return dist.NewPool(urls) }

// WorkerStatus is one worker's health snapshot (see WorkerPool.Status).
type WorkerStatus = dist.WorkerStatus

// AttachWorkers attaches a distributed worker pool: subsequent Run calls
// for pagerank, dynamicpr and cc dispatch supersteps across the pool's
// workers, falling back to an in-process run (with identical results) if
// any worker fails mid-run. Attach before serving; a nil pool detaches.
func (se *Session) AttachWorkers(p *WorkerPool) { se.pool = p }

// Workers returns the attached worker pool, or nil when runs are local.
func (se *Session) Workers() *WorkerPool { return se.pool }

// NewSession returns a Session with a caching artifact store. Topologies
// it builds run with buffer reuse on, so repeated and concurrent runs over
// cached graphs draw engine scratch from pools instead of allocating.
func NewSession(opts SessionOptions) *Session {
	return &Session{
		st: store.New(store.Config{
			MaxBytes: opts.MaxCacheBytes,
			Build: pregel.BuildOptions{
				Parallelism:  opts.Parallelism,
				ReuseBuffers: true,
			},
			DiskDir:      opts.DiskDir,
			DiskMaxBytes: opts.MaxDiskBytes,
		}),
		cluster: opts.Cluster,
	}
}

// oneShot backs the package-level one-shot functions: no store, no cache —
// each call stands alone.
var oneShot = &Session{}

// Assignment returns the (cached) validated edge assignment of
// (g, s, numParts) — at most one strategy pass per session, no matter how
// many callers race.
func (se *Session) Assignment(g *Graph, s Strategy, numParts int) (*Assignment, error) {
	if se.st != nil {
		return se.st.Assignment(g, s, numParts)
	}
	return partition.Assign(g, s, numParts)
}

// Measure returns the (cached) §3.1 metric set of (g, s, numParts),
// derived from the session's cached assignment. The result is shared;
// treat it as immutable.
func (se *Session) Measure(g *Graph, s Strategy, numParts int) (*Metrics, error) {
	if se.st != nil {
		return se.st.Metrics(g, s, numParts)
	}
	a, err := partition.Assign(g, s, numParts)
	if err != nil {
		return nil, err
	}
	return metrics.FromAssignment(a)
}

// Partition returns the (cached) engine-ready topology of
// (g, s, numParts), built from the session's cached assignment. The
// returned PartitionedGraph is shared and safe for concurrent runs; do not
// mutate it.
func (se *Session) Partition(g *Graph, s Strategy, numParts int) (*PartitionedGraph, error) {
	if se.st != nil {
		return se.st.Built(g, s, numParts)
	}
	a, err := partition.Assign(g, s, numParts)
	if err != nil {
		return nil, err
	}
	return pregel.NewPartitionedGraphFromAssignment(a, pregel.BuildOptions{})
}

// Select measures every candidate strategy on g through the session's
// cache — repeated selection over one graph re-assigns nothing — and
// returns the Selection minimizing the profile's predictive metric.
func (se *Session) Select(g *Graph, candidates []Strategy, numParts int, p Profile) (*Selection, error) {
	return core.SelectEmpiricallyIn(se.st, g, candidates, numParts, p)
}

// Advise recommends a strategy for the algorithm profile on g, deriving
// the dataset facts (including ID-locality detection) from the graph.
func (se *Session) Advise(g *Graph, p Profile, numParts int) Recommendation {
	facts := core.Facts(g)
	facts.IDLocality = core.DetectIDLocality(g, 256, 0.5)
	return core.Advise(p, facts, numParts, core.DefaultAdvisorConfig())
}

// TrainPredictor fits a metric→time predictor from measured run times,
// measuring each candidate through the session's cache.
func (se *Session) TrainPredictor(g *Graph, candidates []Strategy, numParts int, p Profile, timesByStrategy map[string]float64) (*Predictor, map[string]*Metrics, error) {
	return core.TrainPredictorIn(se.st, g, candidates, numParts, p, timesByStrategy)
}

// CacheStats returns the session's artifact-cache counters (zero value for
// a one-shot session).
func (se *Session) CacheStats() CacheStats {
	if se.st == nil {
		return CacheStats{}
	}
	return se.st.Stats()
}

// Forget drops every cached artifact of g — used when replacing a served
// graph's data under the same handle.
func (se *Session) Forget(g *Graph) {
	if se.st != nil {
		se.st.InvalidateGraph(g)
	}
}

// AppendEdges returns the next generation of g: a new Graph holding g's
// edges followed by edges, derived incrementally (graph.Grow) without
// mutating g — in-flight requests against g keep running untouched, which
// is what makes streaming updates race-free in a serving session.
//
// The session records the generation delta, so artifacts of the new graph
// are derived from g's cached ones instead of recomputed: assignments
// extend over just the suffix, built topologies are patched in place of a
// full sort/scatter rebuild, and metrics fall out of the patched topology.
// A client can therefore stream edge batches and re-run algorithms (e.g.
// dynamic PageRank) between batches without ever paying a cold rebuild:
//
//	g, _ = se.AppendEdges(g, batch)
//	rep, _ = se.Run(ctx, g, strat, parts, "dynamicpr", 0)
//
// Edges with negative vertex IDs are rejected (the engine reserves them).
// An empty batch returns g unchanged.
func (se *Session) AppendEdges(g *Graph, edges []Edge) (*Graph, error) {
	for i, e := range edges {
		if e.Src < 0 || e.Dst < 0 {
			return nil, fmt.Errorf("cutfit: appended edge %d (%d -> %d) has negative vertex ID", i, e.Src, e.Dst)
		}
	}
	if len(edges) == 0 {
		return g, nil
	}
	ng, d := g.Grow(edges)
	if se.st != nil {
		se.st.RecordDelta(d)
	}
	return ng, nil
}

// AppendWeightedEdges is AppendEdges with per-edge weights for the batch
// (weights[i] belongs to edges[i]; nil means weight 1 each). Appending a
// weighted batch to an unweighted graph promotes the new generation to
// weighted — the existing edges keep weight 1.
func (se *Session) AppendWeightedEdges(g *Graph, edges []Edge, weights []float64) (*Graph, error) {
	if weights == nil {
		return se.AppendEdges(g, edges)
	}
	for i, e := range edges {
		if e.Src < 0 || e.Dst < 0 {
			return nil, fmt.Errorf("cutfit: appended edge %d (%d -> %d) has negative vertex ID", i, e.Src, e.Dst)
		}
	}
	if len(edges) == 0 {
		return g, nil
	}
	ng, d, err := g.GrowWeighted(edges, weights)
	if err != nil {
		return nil, err
	}
	if se.st != nil {
		se.st.RecordDelta(d)
	}
	return ng, nil
}

// RemoveEdges returns the next generation of g with the given edges
// retracted (graph.Shrink): each element removes the oldest live occurrence
// of that edge value, positions are tombstoned rather than spliced, and g
// itself is never mutated — in-flight requests against g keep running, the
// same race-free contract AppendEdges has. Retracting a value not in the
// graph is an error; surplus retractions of an already-removed value are
// skipped, so replayed batches are idempotent. A batch netting zero
// retractions returns g unchanged, minting no generation.
//
// The session records the generation delta, so artifacts of the shrunk
// graph are patched from g's cached ones (assignments subtract the
// retracted edges, topologies drop them in place) instead of recomputed.
// Once tombstones pass the compaction threshold the generation rewrites its
// dense list; that severs the delta chain, so the next request pays one
// full partition pass — never a wrong answer, just a cold one.
func (se *Session) RemoveEdges(g *Graph, edges []Edge) (*Graph, error) {
	if len(edges) == 0 {
		return g, nil
	}
	ng, d, err := g.Shrink(edges)
	if err != nil {
		return nil, err
	}
	if se.st != nil && ng != g {
		se.st.RecordDelta(d)
	}
	return ng, nil
}

// SlideWindow advances g one sliding-window step: append edges (with
// optional per-edge weights, as in AppendWeightedEdges) and expire every
// live edge older than the expireBefore-th append, in ONE generation (one
// new version, one recorded delta) — the serving shape for time-windowed
// graphs, where each batch both adds fresh interactions and retires the
// oldest ones. expireBefore counts dense positions of g (append order); it
// is clamped to g's edge count and never expires the suffix appended by the
// same step. A step netting zero change returns g unchanged.
func (se *Session) SlideWindow(g *Graph, edges []Edge, weights []float64, expireBefore int) (*Graph, error) {
	for i, e := range edges {
		if e.Src < 0 || e.Dst < 0 {
			return nil, fmt.Errorf("cutfit: appended edge %d (%d -> %d) has negative vertex ID", i, e.Src, e.Dst)
		}
	}
	ng, d, err := g.SlideWindow(edges, weights, expireBefore)
	if err != nil {
		return nil, err
	}
	if se.st != nil && ng != g {
		se.st.RecordDelta(d)
	}
	return ng, nil
}

// Snapshot writes the session's whole artifact cache to w as one
// versioned, CRC-checked snapshot: every cached graph and every cached
// assignment, metric set and built topology. cutfit.RestoreSession reads
// it back into a fresh session whose first requests are cache hits — a
// restart costs one read instead of re-partitioning everything. See
// SnapshotNamed to label graphs for a name registry.
func (se *Session) Snapshot(w io.Writer) error {
	_, err := se.SnapshotNamed(w, nil)
	return err
}

// SnapshotNamed is Snapshot with graph labels: names maps registry names
// to the graphs they serve (several names may share a graph), and
// RestoreSession returns the same mapping over the restored graph objects
// so a server can rebuild its registry on warm start. Graphs referenced
// only by names (no cached artifacts yet) are snapshotted too.
func (se *Session) SnapshotNamed(w io.Writer, names map[string]*Graph) (SnapshotSummary, error) {
	if se.st == nil {
		return SnapshotSummary{}, fmt.Errorf("cutfit: one-shot session holds no cache to snapshot")
	}
	return se.st.Persist(w, names)
}

// Flush writes every cached artifact through to the session's disk tier,
// returning how many entries were written — a no-op (0, nil) without
// SessionOptions.DiskDir. Use it before shutdown when the disk tier alone
// (rather than a Snapshot file) should carry the cache across restarts.
func (se *Session) Flush() (int, error) {
	if se.st == nil {
		return 0, nil
	}
	return se.st.FlushDisk()
}

// RestoreSession reads a Session.Snapshot/SnapshotNamed stream into a new
// Session configured by opts, and returns the label → graph mapping
// recorded at snapshot time (over the freshly restored graph objects).
// Every artifact is re-validated by the snapshot codec before it enters
// the cache — a corrupt or tampered snapshot fails loudly rather than
// serving a wrong-but-plausible artifact. Requests against the returned
// graphs hit the restored cache immediately: restoring a partitioned
// topology is one read + validation, never a re-partition.
func RestoreSession(r io.Reader, opts SessionOptions) (*Session, map[string]*Graph, error) {
	se := NewSession(opts)
	named, err := se.st.Restore(r)
	if err != nil {
		return nil, nil, err
	}
	return se, named, nil
}

// topRankCount is how many top-ranked vertices a pagerank RunReport
// carries.
const topRankCount = 5

// dynamicPRTol is the per-vertex convergence tolerance Run uses for the
// "dynamicpr" algorithm (GraphX's runUntilConvergence flavor).
const dynamicPRTol = 1e-3

// Run executes the named algorithm ("pagerank", "dynamicpr", "cc",
// "triangles", "sssp") on the session's cached topology of (g, s,
// numParts) and returns the shared run encoding: superstep/traffic counts,
// a simulated cluster time, and the algorithm's headline result. iters
// caps pagerank, dynamicpr and cc rounds (dynamicpr and cc accept 0 = run
// to convergence); triangles and sssp ignore it. Safe for any number of
// concurrent callers.
func (se *Session) Run(ctx context.Context, g *Graph, s Strategy, numParts int, alg string, iters int) (*RunReport, error) {
	pg, err := se.Partition(g, s, numParts)
	if err != nil {
		return nil, err
	}
	rep := &RunReport{
		Algorithm: alg,
		Strategy:  s.Name(),
		Parts:     numParts,
	}
	var stats *RunStats
	switch alg {
	case "pagerank":
		ranks, st, err := se.runPageRank(ctx, pg, iters)
		if err != nil {
			return nil, err
		}
		stats = st
		rep.TopRanks = topRanks(g, ranks, topRankCount)
	case "dynamicpr":
		ranks, st, err := se.runDynamicPR(ctx, pg, iters)
		if err != nil {
			return nil, err
		}
		stats = st
		rep.TopRanks = topRanks(g, ranks, topRankCount)
	case "cc":
		labels, st, err := se.runCC(ctx, pg, iters)
		if err != nil {
			return nil, err
		}
		stats = st
		seen := make(map[VertexID]struct{}, 16)
		for _, l := range labels {
			seen[l] = struct{}{}
		}
		rep.Components = len(seen)
	case "triangles":
		counts, st, err := algorithms.TriangleCount(ctx, pg)
		if err != nil {
			return nil, err
		}
		stats = st
		var total int64
		for _, c := range counts {
			total += c
		}
		rep.Triangles = total / 3
	case "sssp":
		verts := g.Vertices()
		if len(verts) == 0 {
			return nil, fmt.Errorf("cutfit: sssp needs a non-empty graph")
		}
		landmark := verts[0]
		dists, st, err := algorithms.ShortestPaths(ctx, pg, []VertexID{landmark}, 0)
		if err != nil {
			return nil, err
		}
		stats = st
		for _, d := range dists {
			if len(d) > 0 {
				rep.Reached++
			}
		}
		rep.Landmark = &landmark
	default:
		return nil, fmt.Errorf("cutfit: unknown algorithm %q (want pagerank, dynamicpr, cc, triangles or sssp)", alg)
	}
	rep.Supersteps = stats.NumSupersteps()
	rep.Converged = stats.Converged
	rep.Halted = stats.Halted
	rep.BroadcastMsgs = stats.TotalBroadcastMsgs()
	rep.ReduceMsgs = stats.TotalReduceMsgs()
	rep.ActiveEdges = stats.TotalActiveEdges()
	rep.Frontier = frontierTrace(stats)

	var cfg ClusterConfig
	if se.cluster != nil {
		cfg = *se.cluster
	} else {
		cfg = ConfigI()
	}
	cfg.NumPartitions = numParts
	b, err := cfg.Simulate(stats, EstimateGraphBytes(g.NumEdges()))
	if err != nil {
		return nil, err
	}
	rep.SimSecs = b.TotalSecs()
	return rep, nil
}

// distFallback decides whether a failed distributed run should fall back
// to local execution (yes, unless the caller's context is the reason it
// failed) and logs the degradation. A fallback is safe by construction:
// the local engine produces bit-identical results on the same topology.
func distFallback(ctx context.Context, alg string, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	dist.NoteFallback()
	slog.Error("cutfit: distributed "+alg+" failed; falling back to local run", "err", err)
	return true
}

func (se *Session) runPageRank(ctx context.Context, pg *pregel.PartitionedGraph, iters int) ([]float64, *RunStats, error) {
	if se.pool != nil {
		ranks, st, err := dist.PageRank(ctx, se.pool, pg, iters, algorithms.DefaultResetProb)
		if err == nil {
			return ranks, st, nil
		}
		if !distFallback(ctx, "pagerank", err) {
			return nil, nil, err
		}
	}
	return algorithms.PageRank(ctx, pg, iters, algorithms.DefaultResetProb)
}

func (se *Session) runDynamicPR(ctx context.Context, pg *pregel.PartitionedGraph, iters int) ([]float64, *RunStats, error) {
	if se.pool != nil {
		ranks, st, err := dist.DynamicPageRank(ctx, se.pool, pg, dynamicPRTol, algorithms.DefaultResetProb, iters)
		if err == nil {
			return ranks, st, nil
		}
		if !distFallback(ctx, "dynamicpr", err) {
			return nil, nil, err
		}
	}
	return algorithms.DynamicPageRank(ctx, pg, dynamicPRTol, algorithms.DefaultResetProb, iters)
}

func (se *Session) runCC(ctx context.Context, pg *pregel.PartitionedGraph, iters int) ([]VertexID, *RunStats, error) {
	if se.pool != nil {
		labels, st, err := dist.ConnectedComponents(ctx, se.pool, pg, iters)
		if err == nil {
			return labels, st, nil
		}
		if !distFallback(ctx, "cc", err) {
			return nil, nil, err
		}
	}
	return algorithms.ConnectedComponents(ctx, pg, iters)
}

// topRanks extracts the k highest-ranked vertices, ties broken by vertex
// ID for determinism.
func topRanks(g *Graph, ranks []float64, k int) []VertexRank {
	verts := g.Vertices()
	all := make([]VertexRank, len(ranks))
	for i, r := range ranks {
		all[i] = VertexRank{Vertex: verts[i], Rank: r}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Rank != all[j].Rank {
			return all[i].Rank > all[j].Rank
		}
		return all[i].Vertex < all[j].Vertex
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k:k]
}

// The report types below are the one JSON encoding shared by the cutfit
// CLI (-json) and the cutfitd HTTP server: one struct per response shape,
// so clients never see two spellings of the same result.

// MetricsReport is the JSON encoding of a §3.1 metric set for one
// (graph, strategy, numParts) request.
type MetricsReport struct {
	Graph             string  `json:"graph,omitempty"`
	Strategy          string  `json:"strategy"`
	Parts             int     `json:"parts"`
	Balance           float64 `json:"balance"`
	NonCut            int64   `json:"nonCut"`
	Cut               int64   `json:"cut"`
	CommCost          int64   `json:"commCost"`
	PartStDev         float64 `json:"partStDev"`
	ReplicationFactor float64 `json:"replicationFactor"`
}

// NewMetricsReport builds the shared metrics encoding.
func NewMetricsReport(strategy string, parts int, m *Metrics) MetricsReport {
	return MetricsReport{
		Strategy:          strategy,
		Parts:             parts,
		Balance:           m.Balance,
		NonCut:            m.NonCut,
		Cut:               m.Cut,
		CommCost:          m.CommCost,
		PartStDev:         m.PartStDev,
		ReplicationFactor: m.ReplicationFactor,
	}
}

// StrategyRank is one row of an empirical ranking: a strategy's value of
// the profile's predictive metric, with the winner flagged.
type StrategyRank struct {
	Strategy string  `json:"strategy"`
	Value    float64 `json:"value"`
	Selected bool    `json:"selected,omitempty"`
}

// AdviseReport is the JSON encoding of a strategy recommendation,
// optionally with the measured ranking of every candidate.
type AdviseReport struct {
	Graph     string         `json:"graph,omitempty"`
	Algorithm string         `json:"algorithm"`
	Parts     int            `json:"parts"`
	Strategy  string         `json:"strategy"`
	Metric    string         `json:"metric"`
	Reason    string         `json:"reason"`
	Ranking   []StrategyRank `json:"ranking,omitempty"`
}

// NewAdviseReport builds the shared advise encoding from a recommendation.
func NewAdviseReport(alg string, parts int, rec Recommendation) AdviseReport {
	return AdviseReport{
		Algorithm: alg,
		Parts:     parts,
		Strategy:  rec.Strategy.Name(),
		Metric:    rec.Metric,
		Reason:    rec.Reason,
	}
}

// RankFromSelection converts an empirical Selection into the shared
// ranking rows, sorted ascending by metric value (best first). Rows carry
// the strategy's cache key (name, or Hybrid:<t> for parameterized
// variants), matching the Results map.
func RankFromSelection(sel *Selection, metricName string) ([]StrategyRank, error) {
	winner := partition.KeyOf(sel.Strategy)
	rows := make([]StrategyRank, 0, len(sel.Results))
	for name, m := range sel.Results {
		v, err := m.MetricByName(metricName)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StrategyRank{Strategy: name, Value: v, Selected: name == winner})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Strategy < rows[j].Strategy
	})
	return rows, nil
}

// VertexRank pairs a vertex with its PageRank score.
type VertexRank struct {
	Vertex VertexID `json:"vertex"`
	Rank   float64  `json:"rank"`
}

// FrontierStep is one superstep's frontier accounting in a RunReport: how
// many vertices were active, how many edges the compute phase actually
// examined (all partition edges on a dense scan, only frontier-incident
// candidates on a sparse scan), and how many messages the scan emitted.
// The activeEdges column shrinking while the graph stays fixed is the
// sparse path's win made observable per superstep.
type FrontierStep struct {
	Superstep      int   `json:"superstep"`
	ActiveVertices int64 `json:"activeVertices"`
	ActiveEdges    int64 `json:"activeEdges"`
	MsgsEmitted    int64 `json:"msgsEmitted"`
}

// frontierTrace flattens per-superstep frontier stats for the run report.
func frontierTrace(stats *RunStats) []FrontierStep {
	if len(stats.Supersteps) == 0 {
		return nil
	}
	trace := make([]FrontierStep, len(stats.Supersteps))
	for i := range stats.Supersteps {
		ss := &stats.Supersteps[i]
		trace[i] = FrontierStep{
			Superstep:      ss.Superstep,
			ActiveVertices: ss.ActiveVertices,
			ActiveEdges:    ss.ActiveEdges,
			MsgsEmitted:    ss.MsgsEmitted,
		}
	}
	return trace
}

// RunReport is the JSON encoding of one algorithm execution: engine
// accounting, the simulated cluster time, and the algorithm's headline
// result (only the matching result field is populated).
type RunReport struct {
	Graph         string `json:"graph,omitempty"`
	Algorithm     string `json:"algorithm"`
	Strategy      string `json:"strategy"`
	Parts         int    `json:"parts"`
	Supersteps    int    `json:"supersteps"`
	Converged     bool   `json:"converged"`
	Halted        bool   `json:"halted,omitempty"`
	BroadcastMsgs int64  `json:"broadcastMsgs"`
	ReduceMsgs    int64  `json:"reduceMsgs"`
	// ActiveEdges totals the edges the compute phase examined over the run;
	// Frontier breaks it down per superstep.
	ActiveEdges int64          `json:"activeEdges"`
	Frontier    []FrontierStep `json:"frontier,omitempty"`
	SimSecs     float64        `json:"simSecs"`

	TopRanks   []VertexRank `json:"topRanks,omitempty"`
	Components int          `json:"components,omitempty"`
	Triangles  int64        `json:"triangles,omitempty"`
	// Landmark is a pointer: the sssp source is usually vertex 0, which
	// omitempty on a plain VertexID would silently drop.
	Landmark *VertexID `json:"landmark,omitempty"`
	Reached  int       `json:"reached,omitempty"`
}
