package cutfit_test

import (
	"bytes"
	"context"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"cutfit"
	"cutfit/internal/dist"
)

// TestSessionDistributedRun drives Session.Run through an attached worker
// pool on loopback sockets and requires the report to be deep-equal to the
// same Session running locally — values, stats, simulated time, all of it.
func TestSessionDistributedRun(t *testing.T) {
	g := sessionTestGraph(t)
	ctx := context.Background()

	local := cutfit.NewSession(cutfit.SessionOptions{})
	distSe := cutfit.NewSession(cutfit.SessionOptions{})
	urls := make([]string, 2)
	for i := range urls {
		srv := httptest.NewServer(dist.NewWorker().Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	distSe.AttachWorkers(cutfit.NewWorkerPool(urls))

	for _, alg := range []string{"pagerank", "dynamicpr", "cc"} {
		want, err := local.Run(ctx, g, cutfit.EdgePartition2D(), 6, alg, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := distSe.Run(ctx, g, cutfit.EdgePartition2D(), 6, alg, 8)
		if err != nil {
			t.Fatalf("distributed %s: %v", alg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: distributed report diverges from local\n got: %+v\nwant: %+v", alg, got, want)
		}
	}
}

// TestSessionDistributedFallback attaches a pool of dead workers: Run must
// log an ERROR, fall back to the local engine, and return the exact report
// a local session produces — a worker loss degrades throughput, never
// correctness or availability.
func TestSessionDistributedFallback(t *testing.T) {
	g := sessionTestGraph(t)
	ctx := context.Background()

	var logBuf bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&logBuf, nil)))
	defer slog.SetDefault(prev)

	local := cutfit.NewSession(cutfit.SessionOptions{})
	broken := cutfit.NewSession(cutfit.SessionOptions{})
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	broken.AttachWorkers(cutfit.NewWorkerPool([]string{deadURL}))

	want, err := local.Run(ctx, g, cutfit.EdgePartition2D(), 4, "pagerank", 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := broken.Run(ctx, g, cutfit.EdgePartition2D(), 4, "pagerank", 5)
	if err != nil {
		t.Fatalf("fallback run failed instead of degrading: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback report diverges from local\n got: %+v\nwant: %+v", got, want)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "level=ERROR") || !strings.Contains(logged, "falling back to local run") {
		t.Fatalf("fallback did not log an ERROR line; log:\n%s", logged)
	}
}

// TestSessionDistributedAfterAppend ships generations as deltas: run, grow
// the graph through the session's append path, run again — both runs must
// match local bit-for-bit.
func TestSessionDistributedAfterAppend(t *testing.T) {
	g := sessionTestGraph(t)
	ctx := context.Background()

	local := cutfit.NewSession(cutfit.SessionOptions{})
	distSe := cutfit.NewSession(cutfit.SessionOptions{})
	urls := make([]string, 2)
	for i := range urls {
		srv := httptest.NewServer(dist.NewWorker().Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	distSe.AttachWorkers(cutfit.NewWorkerPool(urls))

	strat := cutfit.CanonicalRandomVertexCut()
	compare := func(label string, lg, dg *cutfit.Graph) {
		t.Helper()
		want, err := local.Run(ctx, lg, strat, 5, "pagerank", 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := distSe.Run(ctx, dg, strat, 5, "pagerank", 6)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: distributed report diverges from local", label)
		}
	}
	compare("base", g, g)

	batch := []cutfit.Edge{{Src: 0, Dst: 997}, {Src: 997, Dst: 998}, {Src: 998, Dst: 3}}
	lg2, err := local.AppendEdges(g, batch)
	if err != nil {
		t.Fatal(err)
	}
	dg2, err := distSe.AppendEdges(g, batch)
	if err != nil {
		t.Fatal(err)
	}
	compare("grown", lg2, dg2)
}
