package cutfit_test

import (
	"testing"

	"cutfit"
	"cutfit/internal/datasets"
)

// BenchmarkAppendEdges compares the two ways a serving system can absorb
// an appended edge batch (1% of the youtube analog, 128 partitions, 2D):
//
//   - delta: the session derives the new generation's artifacts from the
//     warm parent — suffix-only assignment, patched topology;
//   - rebuild: the historical path — the version bump makes every cached
//     artifact unreachable, so the grown graph pays the full pipeline
//     (vertex index, endpoint views, strategy pass, sort/scatter build).
//
// The acceptance bar for the delta path is ≥ 5× over rebuild.
func BenchmarkAppendEdges(b *testing.B) {
	spec, err := datasets.ByName("youtube")
	if err != nil {
		b.Fatal(err)
	}
	full, err := spec.BuildCached()
	if err != nil {
		b.Fatal(err)
	}
	edges := full.Edges()
	cut := len(edges) - len(edges)/100
	base, delta := edges[:cut], edges[cut:]
	s := cutfit.EdgePartition2D()
	const parts = 128

	b.Run("delta", func(b *testing.B) {
		se := cutfit.NewSession(cutfit.SessionOptions{})
		g := cutfit.FromEdges(append([]cutfit.Edge(nil), base...))
		if _, err := se.Partition(g, s, parts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ng, err := se.AppendEdges(g, delta)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(ng, s, parts); err != nil {
				b.Fatal(err)
			}
			// Drop the derived generation (the base stays warm): each
			// iteration measures one append absorbed by a bounded cache.
			se.Forget(ng)
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// A warm server whose graph is then mutated in place: views are
			// built, the append invalidates everything.
			se := cutfit.NewSession(cutfit.SessionOptions{})
			g := cutfit.FromEdges(append([]cutfit.Edge(nil), base...))
			if _, err := se.Partition(g, s, parts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			g.AddEdges(delta...)
			if _, err := se.Partition(g, s, parts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
