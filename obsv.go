package cutfit

import (
	"io"

	"cutfit/internal/obsv"
)

// WriteMetrics renders every live metric series of the process — the
// store, engine and block-tier instrumentation plus anything cutfitd
// adds — in the Prometheus text exposition format. The snapshot is
// consistent per series and counters are monotone across calls, so the
// output can be scraped directly; cmd/cutfitd serves exactly this under
// GET /metrics.
func WriteMetrics(w io.Writer) error {
	return obsv.Default.WritePrometheus(w)
}

// MetricNames returns the names of every registered metric family,
// sorted. The docs/OPERATIONS.md metrics catalog is tested against this
// list, so it is also the authoritative inventory for dashboards.
func MetricNames() []string {
	return obsv.Default.Names()
}
