package cutfit_test

import (
	"context"
	"fmt"

	"cutfit"
)

// ExampleSession_AppendEdges streams a growing graph through a Session:
// each batch becomes a new graph generation whose partitioning artifacts
// are derived from the previous generation's — a suffix-only assignment
// pass and a patched topology — instead of a cold re-partition, and
// algorithms re-run between batches.
func ExampleSession_AppendEdges() {
	se := cutfit.NewSession(cutfit.SessionOptions{})
	strat := cutfit.EdgePartition2D()
	const parts = 4

	// First batch: a small ring.
	g := cutfit.FromEdges([]cutfit.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	})
	ctx := context.Background()
	if _, err := se.Run(ctx, g, strat, parts, "pagerank", 5); err != nil {
		panic(err)
	}

	// Stream two more batches, re-running dynamic PageRank between them.
	batches := [][]cutfit.Edge{
		{{Src: 3, Dst: 4}, {Src: 4, Dst: 0}},
		{{Src: 4, Dst: 5}, {Src: 5, Dst: 2}, {Src: 0, Dst: 5}},
	}
	for _, batch := range batches {
		ng, err := se.AppendEdges(g, batch)
		if err != nil {
			panic(err)
		}
		g = ng
		if _, err := se.Run(ctx, g, strat, parts, "dynamicpr", 0); err != nil {
			panic(err)
		}
	}

	stats := se.CacheStats()
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("vertices:", g.NumVertices())
	fmt.Println("delta-derived artifacts:", stats.DeltaDerived > 0)
	// Output:
	// edges: 9
	// vertices: 6
	// delta-derived artifacts: true
}
