package cutfit_test

import (
	"testing"

	"cutfit"
	"cutfit/internal/datasets"
)

// BenchmarkRemoveEdges compares the two ways a serving system can absorb
// a retraction batch (1% of the youtube analog, 128 partitions, 2D):
//
//   - delta: the session tombstones the batch and patches the parent's
//     artifacts — retracted slots masked out of the assignment, orphaned
//     mirrors dropped from the topology;
//   - rebuild: the historical path — the shrunk generation shares nothing
//     with the cache, so it pays the full pipeline (vertex index, endpoint
//     views, strategy pass, sort/scatter build) from scratch.
//
// The acceptance bar for the delta path is ≥ 5× over rebuild.
func BenchmarkRemoveEdges(b *testing.B) {
	spec, err := datasets.ByName("youtube")
	if err != nil {
		b.Fatal(err)
	}
	full, err := spec.BuildCached()
	if err != nil {
		b.Fatal(err)
	}
	edges := full.Edges()
	batch := append([]cutfit.Edge(nil), edges[len(edges)-len(edges)/100:]...)
	s := cutfit.EdgePartition2D()
	const parts = 128

	b.Run("delta", func(b *testing.B) {
		se := cutfit.NewSession(cutfit.SessionOptions{})
		g := cutfit.FromEdges(append([]cutfit.Edge(nil), edges...))
		if _, err := se.Partition(g, s, parts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ng, err := se.RemoveEdges(g, batch)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(ng, s, parts); err != nil {
				b.Fatal(err)
			}
			// Drop the derived generation (the base stays warm): each
			// iteration measures one retraction absorbed by a bounded cache.
			se.Forget(ng)
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// A warm server that shrinks outside the session: no delta is
			// recorded, so the shrunk generation computes everything cold.
			se := cutfit.NewSession(cutfit.SessionOptions{})
			g := cutfit.FromEdges(append([]cutfit.Edge(nil), edges...))
			if _, err := se.Partition(g, s, parts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			ng, _, err := g.Shrink(batch)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := se.Partition(ng, s, parts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
