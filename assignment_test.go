// Tests for the assignment-centric pipeline: the Assignment artifact, the
// equivalence of every metrics producer (MeasureAssignment, raw
// metrics.Compute, PartitionedGraph.Metrics), and the single-pass guarantee
// of empirical selection.
package cutfit_test

import (
	"fmt"
	"testing"

	"cutfit"
	"cutfit/internal/gen"
	"cutfit/internal/graph"
	"cutfit/internal/metrics"
)

// pipelineGraphs returns the three structurally distinct graph families the
// pipeline tests sweep: a uniform random graph, a skewed power-law R-MAT
// graph, and an ID-local road grid.
func pipelineGraphs(t testing.TB) map[string]*cutfit.Graph {
	t.Helper()
	random, err := gen.ErdosRenyi(500, 2500, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := gen.RMAT(gen.DefaultRMAT(9, 8, 0xB0B))
	if err != nil {
		t.Fatal(err)
	}
	road, err := gen.Road(gen.RoadConfig{Rows: 22, Cols: 23, EdgeProb: 0.6, Seed: 0xCAFE})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*cutfit.Graph{"random": random, "rmat": rmat, "road": road}
}

// pipelineStrategies is every strategy the library ships: the paper's six,
// the streaming extensions, and the hybrid/range extension partitioners.
func pipelineStrategies() []cutfit.Strategy {
	return append(cutfit.ExtendedStrategies(), cutfit.HybridCut(4), cutfit.RangeCut())
}

// metricsDiff compares two metric sets bit-for-bit (floats included — both
// sides must run the identical derivation) and describes the first
// difference, or returns "".
func metricsDiff(a, b *cutfit.Metrics) string {
	switch {
	case a.NumParts != b.NumParts:
		return fmt.Sprintf("NumParts %d != %d", a.NumParts, b.NumParts)
	case a.Balance != b.Balance:
		return fmt.Sprintf("Balance %v != %v", a.Balance, b.Balance)
	case a.NonCut != b.NonCut:
		return fmt.Sprintf("NonCut %d != %d", a.NonCut, b.NonCut)
	case a.Cut != b.Cut:
		return fmt.Sprintf("Cut %d != %d", a.Cut, b.Cut)
	case a.CommCost != b.CommCost:
		return fmt.Sprintf("CommCost %d != %d", a.CommCost, b.CommCost)
	case a.PartStDev != b.PartStDev:
		return fmt.Sprintf("PartStDev %v != %v", a.PartStDev, b.PartStDev)
	case a.ReplicationFactor != b.ReplicationFactor:
		return fmt.Sprintf("ReplicationFactor %v != %v", a.ReplicationFactor, b.ReplicationFactor)
	case a.MaxEdges != b.MaxEdges:
		return fmt.Sprintf("MaxEdges %d != %d", a.MaxEdges, b.MaxEdges)
	case a.MaxVertices != b.MaxVertices:
		return fmt.Sprintf("MaxVertices %d != %d", a.MaxVertices, b.MaxVertices)
	}
	for p := 0; p < a.NumParts; p++ {
		if a.EdgesPerPart[p] != b.EdgesPerPart[p] {
			return fmt.Sprintf("EdgesPerPart[%d] %d != %d", p, a.EdgesPerPart[p], b.EdgesPerPart[p])
		}
		if a.VerticesPerPart[p] != b.VerticesPerPart[p] {
			return fmt.Sprintf("VerticesPerPart[%d] %d != %d", p, a.VerticesPerPart[p], b.VerticesPerPart[p])
		}
	}
	return ""
}

// TestMetricsProducersEquivalent asserts that the three ways of obtaining
// the §3.1 metric set — MeasureAssignment on the one-pass artifact, raw
// metrics.Compute on the PID slice, and PartitionedGraph.Metrics derived
// from the built engine topology — agree bit-for-bit for every shipped
// strategy across the three graph families, at partition counts on both
// sides of the 64-partition bitset-word boundary.
func TestMetricsProducersEquivalent(t *testing.T) {
	graphs := pipelineGraphs(t)
	for gName, g := range graphs {
		for _, s := range pipelineStrategies() {
			for _, parts := range []int{5, 128} {
				name := fmt.Sprintf("%s/%s/%d", gName, s.Name(), parts)
				t.Run(name, func(t *testing.T) {
					a, err := cutfit.PartitionAssignment(g, s, parts)
					if err != nil {
						t.Fatal(err)
					}
					var total int64
					for _, c := range a.EdgesPerPart {
						total += c
					}
					if int(total) != g.NumEdges() || a.NumEdges() != g.NumEdges() {
						t.Fatalf("assignment histogram sums to %d, graph has %d edges", total, g.NumEdges())
					}
					mAssign, err := cutfit.MeasureAssignment(a)
					if err != nil {
						t.Fatal(err)
					}
					mRaw, err := metrics.Compute(g, a.PIDs, parts)
					if err != nil {
						t.Fatal(err)
					}
					pg, err := cutfit.PartitionFromAssignment(a, cutfit.PartitionOptions{})
					if err != nil {
						t.Fatal(err)
					}
					mTopo := pg.Metrics()
					if d := metricsDiff(mAssign, mRaw); d != "" {
						t.Fatalf("MeasureAssignment vs metrics.Compute: %s", d)
					}
					if d := metricsDiff(mRaw, mTopo); d != "" {
						t.Fatalf("metrics.Compute vs PartitionedGraph.Metrics: %s", d)
					}
				})
			}
		}
	}
}

// countingStrategy wraps a Strategy and counts Partition invocations — the
// proof that the selection pipeline performs exactly one edge-assignment
// pass per candidate.
type countingStrategy struct {
	inner cutfit.Strategy
	calls int
}

func (c *countingStrategy) Name() string { return c.inner.Name() }

func (c *countingStrategy) Partition(g *graph.Graph, numParts int) ([]cutfit.PID, error) {
	c.calls++
	return c.inner.Partition(g, numParts)
}

// TestSelectAssignsExactlyOncePerCandidate proves the single-pass contract
// of empirical selection: Select invokes each candidate's Partition exactly
// once, and building the winning topology from the retained Assignment
// adds zero further passes.
func TestSelectAssignsExactlyOncePerCandidate(t *testing.T) {
	g := pipelineGraphs(t)["rmat"]
	counters := make([]*countingStrategy, 0, 6)
	candidates := make([]cutfit.Strategy, 0, 6)
	for _, s := range cutfit.Strategies() {
		c := &countingStrategy{inner: s}
		counters = append(counters, c)
		candidates = append(candidates, c)
	}
	sel, err := cutfit.Select(g, candidates, 16, cutfit.ProfilePageRank)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range counters {
		if c.calls != 1 {
			t.Fatalf("strategy %s partitioned %d times during selection, want exactly 1", c.Name(), c.calls)
		}
	}
	pg, err := cutfit.PartitionFromAssignment(sel.Assignment, cutfit.PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range counters {
		if c.calls != 1 {
			t.Fatalf("strategy %s re-partitioned while building the winner (calls=%d)", c.Name(), c.calls)
		}
	}
	// The built winner reports the same metric set the selection measured.
	if d := metricsDiff(pg.Metrics(), sel.Results[sel.Strategy.Name()]); d != "" {
		t.Fatalf("winner topology metrics diverge from measured selection: %s", d)
	}
	if sel.Assignment.Strategy != sel.Strategy.Name() {
		t.Fatalf("assignment labeled %q, winner is %q", sel.Assignment.Strategy, sel.Strategy.Name())
	}
}

// TestTrainPredictorAssignsExactlyOncePerCandidate extends the single-pass
// contract to predictor training.
func TestTrainPredictorAssignsExactlyOncePerCandidate(t *testing.T) {
	g := pipelineGraphs(t)["random"]
	times := map[string]float64{}
	for i, s := range cutfit.Strategies() {
		times[s.Name()] = 1 + float64(i)
	}
	counters := make([]*countingStrategy, 0, 6)
	candidates := make([]cutfit.Strategy, 0, 6)
	for _, s := range cutfit.Strategies() {
		c := &countingStrategy{inner: s}
		counters = append(counters, c)
		candidates = append(candidates, c)
	}
	if _, _, err := cutfit.TrainPredictor(g, candidates, 8, cutfit.ProfilePageRank, times); err != nil {
		t.Fatal(err)
	}
	for _, c := range counters {
		if c.calls != 1 {
			t.Fatalf("TrainPredictor partitioned %s %d times, want exactly 1", c.Name(), c.calls)
		}
	}
}

// TestStrategyByNameExtensions covers the Hybrid/Range resolver additions.
func TestStrategyByNameExtensions(t *testing.T) {
	for _, name := range []string{"Range", "Hybrid", "Hybrid:250"} {
		s, err := cutfit.StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		g := pipelineGraphs(t)["road"]
		if _, err := cutfit.Measure(g, s, 4); err != nil {
			t.Fatalf("measuring %q: %v", name, err)
		}
	}
	for _, bad := range []string{"Hybrid:", "Hybrid:-3", "Hybrid:x", "Blocked"} {
		if _, err := cutfit.StrategyByName(bad); err == nil {
			t.Fatalf("StrategyByName(%q) should error", bad)
		}
	}
}
