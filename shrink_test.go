package cutfit_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"cutfit"
	"cutfit/internal/datasets"
)

// retractBatch picks up to n distinct live edge positions of g at random
// and returns their edge values — a retraction batch for RemoveEdges.
// Positions holding the same edge value contribute multiplicity, so the
// batch always nets exactly min(n, live) retractions.
func retractBatch(r *rand.Rand, g *cutfit.Graph, n int) []cutfit.Edge {
	live := make([]int, 0, g.NumLiveEdges())
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAlive(i) {
			live = append(live, i)
		}
	}
	r.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if n > len(live) {
		n = len(live)
	}
	edges := g.Edges()
	out := make([]cutfit.Edge, n)
	for i := 0; i < n; i++ {
		out[i] = edges[live[i]]
	}
	return out
}

// TestSessionRemoveEquivalence is the retraction half of the delta
// equivalence suite: shrinking a served graph in K random batches — running
// algorithms between batches — must leave the session serving artifacts
// bit-identical to a cold session computing the same final generation from
// scratch: same assignment PIDs, same metric set, same PageRank and CC
// results. Runs under -race via make race.
func TestSessionRemoveEquivalence(t *testing.T) {
	const parts = 16
	ctx := context.Background()
	mustStrategy := func(name string) cutfit.Strategy {
		s, err := cutfit.StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	strategies := []cutfit.Strategy{
		cutfit.EdgePartition2D(),
		cutfit.SourceCut(),
		mustStrategy("Greedy"),
		mustStrategy("HDRF"),
		mustStrategy("Hybrid:8"),
	}
	for _, s := range strategies {
		se := cutfit.NewSession(cutfit.SessionOptions{})
		g := cutfit.FromEdges(appendTestEdges(5, 300, 3000))
		if _, err := se.Run(ctx, g, s, parts, "pagerank", 5); err != nil {
			t.Fatalf("%s: warm run: %v", s.Name(), err)
		}
		r := rand.New(rand.NewSource(99))
		for step := 0; step < 4; step++ {
			// 4 × 120 = 480 tombstones, safely under the compaction
			// threshold (a quarter of 3000) so every step patches.
			batch := retractBatch(r, g, 120)
			ng, err := se.RemoveEdges(g, batch)
			if err != nil {
				t.Fatalf("%s step %d: %v", s.Name(), step, err)
			}
			if ng == g {
				t.Fatalf("%s step %d: batch netted zero retractions", s.Name(), step)
			}
			g = ng
			if _, err := se.Run(ctx, g, s, parts, "dynamicpr", 0); err != nil {
				t.Fatalf("%s step %d: run between batches: %v", s.Name(), step, err)
			}
		}
		if g.NumDeadEdges() != 480 {
			t.Fatalf("%s: %d tombstones after 4 batches, want 480", s.Name(), g.NumDeadEdges())
		}
		if se.CacheStats().DeltaDerived == 0 {
			t.Fatalf("%s: shrinking session never exercised the delta chain", s.Name())
		}

		// Cold reference session over the same final generation.
		ref := cutfit.NewSession(cutfit.SessionOptions{})
		a, err := se.Assignment(g, s, parts)
		if err != nil {
			t.Fatal(err)
		}
		wantA, err := ref.Assignment(g, s, parts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.PIDs, wantA.PIDs) {
			t.Fatalf("%s: shrunk assignment differs from cold computation", s.Name())
		}
		m, err := se.Measure(g, s, parts)
		if err != nil {
			t.Fatal(err)
		}
		wantM, err := ref.Measure(g, s, parts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, wantM) {
			t.Fatalf("%s: shrunk metrics differ:\n got %+v\nwant %+v", s.Name(), m, wantM)
		}
		pg, err := se.Partition(g, s, parts)
		if err != nil {
			t.Fatal(err)
		}
		wantPG, err := ref.Partition(g, s, parts)
		if err != nil {
			t.Fatal(err)
		}
		ranks, _, err := cutfit.RunPageRank(ctx, pg, 8)
		if err != nil {
			t.Fatal(err)
		}
		wantRanks, _, err := cutfit.RunPageRank(ctx, wantPG, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ranks, wantRanks) {
			t.Fatalf("%s: PageRank over patched shrunk topology differs", s.Name())
		}
		cc, _, err := cutfit.RunConnectedComponents(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantCC, _, err := cutfit.RunConnectedComponents(ctx, wantPG, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cc, wantCC) {
			t.Fatalf("%s: CC over patched shrunk topology differs", s.Name())
		}
	}
}

// TestSessionRemoveCompactionServesFresh: pushing tombstones past the
// compaction threshold severs the delta chain by design — the session must
// transparently compute the compacted generation's artifacts from scratch
// (correct, just cold), never error or serve stale positions.
func TestSessionRemoveCompactionServesFresh(t *testing.T) {
	const parts = 8
	ctx := context.Background()
	s := cutfit.EdgePartition2D()
	se := cutfit.NewSession(cutfit.SessionOptions{})
	g := cutfit.FromEdges(appendTestEdges(6, 100, 1000))
	if _, err := se.Run(ctx, g, s, parts, "pagerank", 3); err != nil {
		t.Fatal(err)
	}
	// Retract 30% in one batch: over the quarter threshold, so the step
	// compacts.
	r := rand.New(rand.NewSource(4))
	ng, err := se.RemoveEdges(g, retractBatch(r, g, 300))
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumDeadEdges() != 0 || ng.NumEdges() != 700 {
		t.Fatalf("expected a compacted generation (0 tombstones, 700 edges), got %d/%d", ng.NumDeadEdges(), ng.NumEdges())
	}
	if _, err := se.Run(ctx, ng, s, parts, "pagerank", 3); err != nil {
		t.Fatalf("run on compacted generation: %v", err)
	}
	ref := cutfit.NewSession(cutfit.SessionOptions{})
	m, err := se.Measure(ng, s, parts)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := ref.Measure(ng, s, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, wantM) {
		t.Fatal("metrics of compacted generation differ from cold computation")
	}
}

// TestWeightedMetricsEquivalence: a graph whose weights are all 1 must be
// indistinguishable from its unweighted twin on the base pipeline — same
// PIDs, bit-identical base metric set — while additionally reporting the
// weighted counterparts, with WeightPerPart exactly mirroring EdgesPerPart.
// Across strategies × datasets; runs under -race via make race.
func TestWeightedMetricsEquivalence(t *testing.T) {
	const parts = 32
	strategies := append(cutfit.ExtendedStrategies(), cutfit.HybridCut(8), cutfit.RangeCut())
	for _, spec := range datasets.TinySuite() {
		g, err := spec.BuildCached()
		if err != nil {
			t.Fatal(err)
		}
		edges := append([]cutfit.Edge(nil), g.Edges()...)
		w := make([]float64, len(edges))
		for i := range w {
			w[i] = 1
		}
		gw, err := cutfit.FromWeightedEdges(edges, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies {
			a, err := cutfit.PartitionAssignment(g, s, parts)
			if err != nil {
				t.Fatal(err)
			}
			aw, err := cutfit.PartitionAssignment(gw, s, parts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.PIDs, aw.PIDs) {
				t.Fatalf("%s/%s: weighted(1) assignment differs from unweighted", spec.Name, s.Name())
			}
			m, err := cutfit.MeasureAssignment(a)
			if err != nil {
				t.Fatal(err)
			}
			mw, err := cutfit.MeasureAssignment(aw)
			if err != nil {
				t.Fatal(err)
			}
			if mw.WeightPerPart == nil {
				t.Fatalf("%s/%s: weighted graph yielded no weighted metrics", spec.Name, s.Name())
			}
			for p, wt := range mw.WeightPerPart {
				if wt != float64(mw.EdgesPerPart[p]) {
					t.Fatalf("%s/%s: WeightPerPart[%d] = %v, EdgesPerPart[%d] = %d", spec.Name, s.Name(), p, wt, p, mw.EdgesPerPart[p])
				}
			}
			if mw.WeightedBalance != mw.Balance || mw.MaxWeight != float64(mw.MaxEdges) {
				t.Fatalf("%s/%s: weighted derived fields diverge from base with unit weights", spec.Name, s.Name())
			}
			// Strip the weighted extras: the base fields must be
			// bit-identical to the unweighted run.
			base := *mw
			base.WeightPerPart = nil
			base.WeightedBalance = 0
			base.MaxWeight = 0
			base.WeightedCommCost = 0
			if !reflect.DeepEqual(&base, m) {
				t.Fatalf("%s/%s: base metrics differ under unit weights:\n got %+v\nwant %+v", spec.Name, s.Name(), &base, m)
			}
		}
	}
}

// TestEmptyBatchMintsNoGeneration pins the no-op contract for every
// generation-step method: an empty (or all-surplus) batch returns the
// parent graph itself, minting no version — so serving the "new" graph
// afterwards is all cache hits, zero new misses.
func TestEmptyBatchMintsNoGeneration(t *testing.T) {
	s := cutfit.EdgePartition2D()
	se := cutfit.NewSession(cutfit.SessionOptions{})
	g := cutfit.FromEdges(appendTestEdges(7, 50, 400))
	if _, err := se.Measure(g, s, 8); err != nil {
		t.Fatal(err)
	}
	before := se.CacheStats()

	if ng, err := se.AppendEdges(g, nil); err != nil || ng != g {
		t.Fatalf("AppendEdges(nil) = (%p, %v), want the parent back", ng, err)
	}
	if ng, err := se.RemoveEdges(g, nil); err != nil || ng != g {
		t.Fatalf("RemoveEdges(nil) = (%p, %v), want the parent back", ng, err)
	}
	if ng, err := se.SlideWindow(g, nil, nil, 0); err != nil || ng != g {
		t.Fatalf("SlideWindow(nil, 0) = (%p, %v), want the parent back", ng, err)
	}
	if ng, d := g.Grow(nil); ng != g || d.NewVersion != d.OldVersion {
		t.Fatal("Grow(nil) minted a generation")
	}

	// All-surplus retraction: removing an already-removed value nets zero.
	victim := g.Edges()[0]
	sg, err := se.RemoveEdges(g, []cutfit.Edge{victim})
	if err != nil {
		t.Fatal(err)
	}
	// appendTestEdges draws from a tiny early ID span, so the first edge
	// value may repeat; retract surplus copies until none are live.
	for {
		ng, err := se.RemoveEdges(sg, []cutfit.Edge{victim})
		if err != nil {
			t.Fatal(err)
		}
		if ng == sg {
			break
		}
		sg = ng
	}

	if _, err := se.Measure(g, s, 8); err != nil {
		t.Fatal(err)
	}
	after := se.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("no-op generation steps caused %d new cache misses", after.Misses-before.Misses)
	}
	if after.Hits == before.Hits {
		t.Fatal("serving the parent after no-op steps should hit the cache")
	}
}
