// Package cutfit is the public API of the Cut-to-Fit graph partitioning
// library, a from-scratch Go reproduction of "Cut to Fit: Tailoring the
// Partitioning to the Computation" (Kolokasis & Pratikakis).
//
// Everything is organized around one artifact: the Assignment, the
// validated edge→partition mapping a strategy produces in a single pass
// (PartitionAssignment). The same Assignment feeds the §3.1 quality
// metrics (MeasureAssignment), the engine topology
// (PartitionFromAssignment), and empirical strategy selection (Select,
// which retains the winner's Assignment so running the chosen strategy
// never re-partitions). A built PartitionedGraph can also report its own
// metric set directly (PartitionedGraph.Metrics) without any extra scan.
//
// The library provides:
//
//   - an in-memory directed graph with exact structural statistics
//     (Graph, LoadEdgeList, Stats);
//   - the six vertex-cut partitioning strategies of the paper — RVC, 1D,
//     2D, CRVC, SC, DC — plus streaming Greedy/HDRF extensions
//     (Strategies, StrategyByName);
//   - the single-pass partitioning pipeline (PartitionAssignment,
//     MeasureAssignment, PartitionFromAssignment) with Measure and
//     Partition kept as thin one-call wrappers;
//   - a GraphX-style vertex-cut Pregel engine that executes computations
//     in parallel while counting all cross-partition traffic (Partition,
//     RunPageRank, RunConnectedComponents, RunTriangleCount,
//     RunShortestPaths);
//   - a cluster cost model that converts engine statistics into simulated
//     execution time for the paper's four cluster configurations
//     (ConfigI…ConfigIV, Simulate);
//   - the paper's contribution as a library: an advisor that tailors the
//     partitioning strategy and granularity to the computation and the
//     dataset (Advise, AdviseGranularity, Select, SelectEmpirically),
//     plus a fitted metric→time predictor (TrainPredictor) that ranks
//     partitionings without running them;
//   - extension algorithms (RunDynamicPageRank, RunLabelPropagation,
//     RunKCoreMembership) and extension partitioners (HybridCut,
//     RangeCut, ExtendedStrategies);
//   - the generic engine itself (Program, RunProgram) for writing custom
//     vertex programs, with panic-safe execution and an OnSuperstep
//     monitoring/halting hook;
//   - deterministic synthetic analogs of the paper's nine datasets
//     (Datasets) and generators for custom workloads (the internal/gen
//     package, surfaced through the datasets specs).
//
// Quick start — one assignment pass from strategy to metrics to engine:
//
//	g, _ := cutfit.Datasets()[1].BuildCached() // the "youtube" analog
//	a, _ := cutfit.PartitionAssignment(g, cutfit.EdgePartition2D(), 128)
//	pg, _ := cutfit.PartitionFromAssignment(a, cutfit.PartitionOptions{})
//	fmt.Println(pg.Metrics().CommCost) // §3.1 metrics, no extra scan
//	ranks, stats, _ := cutfit.RunPageRank(context.Background(), pg, 10)
//	breakdown, _ := cutfit.ConfigI().Simulate(stats, 0)
//	fmt.Println(len(ranks), breakdown.TotalSecs())
//
// Or let the advisor choose the strategy empirically — each candidate is
// assigned exactly once and the winner is built from its retained
// assignment:
//
//	sel, _ := cutfit.Select(g, cutfit.Strategies(), 128, cutfit.ProfilePageRank)
//	pg, _ := cutfit.PartitionFromAssignment(sel.Assignment, cutfit.PartitionOptions{})
//
// # Serving
//
// For repeated or concurrent requests — the serving workload rather than
// the batch one — wrap the pipeline in a Session. A Session memoizes every
// pipeline artifact in a size-bounded, single-flight cache and runs the
// engine with pooled scratch buffers, so identical requests cost one
// partitioning pass total and N goroutines running algorithms on one
// cached topology allocate almost nothing:
//
//	se := cutfit.NewSession(cutfit.SessionOptions{})
//	m, _ := se.Measure(g, cutfit.EdgePartition2D(), 128)   // partitions once
//	pg, _ := se.Partition(g, cutfit.EdgePartition2D(), 128) // reuses that pass
//	rep, _ := se.Run(ctx, g, cutfit.EdgePartition2D(), 128, "pagerank", 10)
//	fmt.Println(m.CommCost, pg.NumParts, rep.SimSecs, se.CacheStats())
//
// All Session methods are safe for concurrent use. The cmd/cutfitd command
// serves exactly this Session surface over HTTP/JSON.
//
// SessionOptions.Parallelism is the session-wide worker-count default: it
// flows through the artifact store into every topology the session builds
// and from there into every engine phase of every run on those topologies
// (cutfitd exposes it as -parallelism). Values < 1 fall back to the
// process's GOMAXPROCS — one shared definition, internal/par — so capping
// GOMAXPROCS also caps the strategies' own assignment shards, which have no
// per-call knob.
//
// # Dynamic updates
//
// A Session also serves evolving graphs. AppendEdges advances a graph to a
// new generation — the original is never mutated, so concurrent requests
// against it are unaffected — and records the delta, after which the new
// generation's artifacts are derived from the old one's instead of
// recomputed: assignments extend over just the appended suffix (streaming
// strategies resume their retained state bit-for-bit), built topologies
// are patched rather than re-sorted, and metrics are read off the patched
// topology. Streaming edge batches and re-running convergence-style
// algorithms between batches therefore costs O(batch) per update, never a
// cold rebuild:
//
//	g, _ = se.AppendEdges(g, batch)                               // next generation
//	rep, _ := se.Run(ctx, g, cutfit.EdgePartition2D(), 128, "dynamicpr", 0)
//
// Graphs are fully mutable, not append-only: RemoveEdges retracts edges by
// tombstoning their dense positions (unfollows, expired interactions), and
// SlideWindow appends a batch and expires the oldest live edges in one
// generation step — the serving shape for time-windowed graphs. Retractions
// ride the same delta machinery as appends: cached assignments subtract the
// retracted edges and built topologies are patched in place, bit-identical
// to a rebuild from scratch. Once tombstones accumulate past a quarter of
// the edge list the generation compacts its dense storage; compaction
// severs the delta chain, so the next request pays one full partition pass
// (never a wrong answer, just a cold one).
//
// Graphs may also carry optional per-edge weights (FromWeightedEdges, or a
// third column in LoadEdgeList input). Weighted graphs flow through the
// same pipeline and additionally report the weighted metric counterparts
// (Metrics.WeightedBalance, WeightPerPart, WeightedCommCost); a graph whose
// weights are all 1 produces bit-identical base metrics to its unweighted
// twin.
//
// See ExampleSession_AppendEdges and ExampleSession_RemoveEdges for the
// full loops.
//
// # Observability
//
// The serving layers publish live metric series — store hit/miss/
// eviction counters and tier sizes, per-superstep engine latency and
// active-edge histograms, scratch-pool effectiveness, block-tier cache
// traffic — through a process-wide registry. WriteMetrics renders all
// of them in the Prometheus text exposition format and MetricNames
// lists the registered families:
//
//	var buf bytes.Buffer
//	_ = cutfit.WriteMetrics(&buf) // Prometheus text format 0.0.4
//
// Counters are monotone across calls and each series is rendered from a
// consistent snapshot, so the output is directly scrapeable. The
// cmd/cutfitd daemon serves it under GET /metrics, adds per-endpoint
// request/latency/error series on top, and applies admission control —
// a global and per-graph concurrency limiter with a bounded wait queue
// whose depth and wait time are themselves exported series (429 +
// Retry-After past the deadline). See ExampleMetricNames and
// docs/OPERATIONS.md for the full catalog.
//
// # Persistence
//
// A Session's amortized measurement cost survives restarts. Snapshot
// persists the whole artifact cache — graphs, assignments, metric sets and
// built engine topologies — as one versioned, CRC-checked container, and
// RestoreSession reads it back so the first requests of the new process
// are cache hits (restoring a built topology is one read + validation,
// never a re-partition):
//
//	_ = se.SnapshotNamed(w, map[string]*cutfit.Graph{"social": g})
//	se2, named, _ := cutfit.RestoreSession(r, cutfit.SessionOptions{})
//	pg, _ := se2.Partition(named["social"], cutfit.EdgePartition2D(), 128) // hit
//
// SessionOptions.DiskDir additionally gives the cache a durable disk tier:
// evicted artifacts spill to content-addressed snapshot files, misses check
// disk before recomputing, and the files outlive the process. The cmd/cutfitd
// daemon composes both via -data-dir (warm start on boot, POST /v1/snapshot,
// persist on graceful shutdown); see ExampleSession_Snapshot.
//
// # Out-of-core scale
//
// For graphs whose dense edge list (16 bytes per edge, plus derived
// views) does not fit comfortably in memory, the block-compressed edge
// tier stores edges in fixed-size blocks encoded with the snapshot
// delta-varint codec and decodes them on demand: full scans stream
// through pooled scratch, random access goes through a small LRU of hot
// blocks. LoadEdgeListBlocks parses an edge list straight into block
// form (peak heap is one block of pending edges plus the compressed
// payloads), StreamEdgeList feeds batches to a callback without building
// a graph at all, and SaveBlockGraph/OpenBlockGraph persist the tier to a
// single file whose blocks are then served directly from disk. A
// block-backed Graph flows through the entire pipeline — strategies,
// metrics, the engine build, dynamic updates — bit-identically to its
// dense twin, without ever materializing the dense edge list; mutating
// one (AddEdge) densifies it first.
//
//	g, _ := cutfit.LoadEdgeListBlocks(f, 0) // 0 = DefaultBlockEdges
//	_ = cutfit.SaveBlockGraph("social.cfb", g)
//	g2, closer, _ := cutfit.OpenBlockGraph("social.cfb") // served from the file
//	defer closer.Close()
package cutfit

import (
	"context"
	"fmt"
	"io"

	"cutfit/internal/algorithms"
	"cutfit/internal/cluster"
	"cutfit/internal/core"
	"cutfit/internal/datasets"
	"cutfit/internal/graph"
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
	"cutfit/internal/snap"
)

// Core graph types.
type (
	// Graph is a directed multigraph stored as an edge list with lazily
	// built adjacency views.
	Graph = graph.Graph
	// VertexID identifies a vertex (64-bit, GraphX-style).
	VertexID = graph.VertexID
	// Edge is a directed edge.
	Edge = graph.Edge
	// GraphStats is the Table 1 structural characterization.
	GraphStats = graph.Stats
)

// Partitioning types.
type (
	// Strategy assigns every edge of a graph to a partition.
	Strategy = partition.Strategy
	// PID identifies a partition.
	PID = partition.PID
	// Metrics is the §3.1 partitioning metric set.
	Metrics = metrics.Result
	// Assignment is the validated one-pass edge→partition artifact that
	// flows through the whole pipeline: produce it once with
	// PartitionAssignment, then measure (MeasureAssignment) and build the
	// engine topology (PartitionFromAssignment) from the same pass.
	Assignment = partition.Assignment
	// Selection is the outcome of empirical strategy selection: the winner,
	// its retained Assignment, and every candidate's metric set.
	Selection = core.Selection
)

// Engine and simulation types.
type (
	// PartitionedGraph is the vertex-cut partitioned topology the engine
	// executes on.
	PartitionedGraph = pregel.PartitionedGraph
	// RunStats is the per-superstep work and traffic accounting.
	RunStats = pregel.RunStats
	// ClusterConfig describes a simulated cluster.
	ClusterConfig = cluster.Config
	// Breakdown is a simulated execution time split by phase.
	Breakdown = cluster.Breakdown
	// DistMap is the ShortestPaths result per vertex: landmark → distance.
	DistMap = algorithms.DistMap
)

// Advisor types.
type (
	// Profile classifies an algorithm's communication structure.
	Profile = core.Profile
	// GraphFacts are dataset properties consulted by the advisor.
	GraphFacts = core.GraphFacts
	// Recommendation is the advisor's output.
	Recommendation = core.Recommendation
	// DatasetSpec describes one of the paper's analog datasets.
	DatasetSpec = datasets.Spec
)

// NewGraph returns an empty graph with capacity for hintEdges edges.
func NewGraph(hintEdges int) *Graph { return graph.New(hintEdges) }

// FromEdges builds a graph that takes ownership of the slice.
func FromEdges(edges []Edge) *Graph { return graph.FromEdges(edges) }

// FromWeightedEdges builds a weighted graph that takes ownership of both
// slices; weights[i] is the weight of edges[i] and must be finite and
// positive. Weighted graphs report the weighted metric counterparts
// (WeightPerPart, WeightedBalance, WeightedCommCost) alongside the base
// set.
func FromWeightedEdges(edges []Edge, weights []float64) (*Graph, error) {
	return graph.FromWeightedEdges(edges, weights)
}

// LoadEdgeList parses a SNAP-style whitespace-separated edge list.
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// DefaultBlockEdges is the block granularity LoadEdgeListBlocks uses when
// given 0: 64K edges per block.
const DefaultBlockEdges = graph.DefaultBlockEdges

// LoadEdgeListBlocks parses a SNAP-style edge list straight into the
// block-compressed edge tier: edges land in fixed-size delta-varint
// blocks (blockEdges per block, 0 selects DefaultBlockEdges) that decode
// on demand, so peak heap during the load is one block of pending edges
// plus the compressed payloads — never the dense 16-byte-per-edge list.
// The resulting graph flows through the whole pipeline bit-identically to
// its dense twin.
func LoadEdgeListBlocks(r io.Reader, blockEdges int) (*Graph, error) {
	return graph.ReadEdgeListBlocks(r, blockEdges)
}

// StreamEdgeList parses a SNAP-style edge list in batches, invoking fn
// for each: weights is nil until a weighted (three-column) line is seen
// and aligned with edges afterwards. The slices are reused between
// batches — fn must copy anything it retains. Nothing is materialized, so
// arbitrarily large inputs stream in constant memory.
func StreamEdgeList(r io.Reader, fn func(edges []Edge, weights []float64) error) error {
	return graph.StreamEdgeList(r, fn)
}

// SaveBlockGraph persists a block-backed graph's compressed edge tier to
// path atomically as a single CRC-checked file, without a dense
// round-trip: for a heap-backed tier the encoded blocks are written
// as-is.
func SaveBlockGraph(path string, g *Graph) error { return snap.SaveBlockGraph(path, g) }

// OpenBlockGraph opens a file written by SaveBlockGraph and returns a
// graph that serves its blocks straight from the file — only the index
// and vertex list are heap-resident. The returned closer owns the file
// handle; close it only when the graph is no longer in use.
func OpenBlockGraph(path string) (*Graph, io.Closer, error) { return snap.OpenBlockGraph(path) }

// The six partitioning strategies evaluated in the paper.
var (
	RandomVertexCut          = partition.RandomVertexCut
	EdgePartition1D          = partition.EdgePartition1D
	EdgePartition2D          = partition.EdgePartition2D
	CanonicalRandomVertexCut = partition.CanonicalRandomVertexCut
	SourceCut                = partition.SourceCut
	DestinationCut           = partition.DestinationCut
)

// Strategies returns the paper's six strategies in table order.
func Strategies() []Strategy { return partition.All() }

// ExtendedStrategies adds the streaming Greedy and HDRF partitioners.
func ExtendedStrategies() []Strategy { return partition.Extended() }

// HybridCut returns a PowerLyra-style hybrid-cut strategy: low-in-degree
// destinations keep their edges together, high-degree hubs are spread by
// source hash. threshold is the in-degree cutoff.
func HybridCut(threshold int) Strategy { return partition.Hybrid(threshold) }

// RangeCut returns the contiguous source-ID block partitioner — the
// blocking counterpart to SC's modulo striping for ID-ordered graphs.
func RangeCut() Strategy { return partition.Range() }

// StrategyByName resolves "RVC", "1D", "2D", "CRVC", "SC", "DC", "Greedy",
// "HDRF", "Range", "Hybrid" or "Hybrid:<in-degree threshold>".
func StrategyByName(name string) (Strategy, error) { return partition.ByName(name) }

// StrategiesByNames resolves a comma-separated list of strategy names (any
// names StrategyByName accepts; empty elements are skipped).
func StrategiesByNames(csv string) ([]Strategy, error) { return partition.ByNames(csv) }

// PartitionAssignment runs strategy s over g exactly once and returns the
// validated Assignment artifact — the head of the strategy → metrics →
// engine pipeline. Hash strategies assign in parallel shards.
func PartitionAssignment(g *Graph, s Strategy, numParts int) (*Assignment, error) {
	return partition.Assign(g, s, numParts)
}

// MeasureAssignment computes the full §3.1 metric set from an Assignment,
// reusing its per-partition edge histogram.
func MeasureAssignment(a *Assignment) (*Metrics, error) {
	return metrics.FromAssignment(a)
}

// Measure partitions g with s into numParts partitions and computes the
// full §3.1 metric set — a thin one-shot-session wrapper (nothing is
// cached across calls; use a Session to serve repeated requests).
func Measure(g *Graph, s Strategy, numParts int) (*Metrics, error) {
	return oneShot.Measure(g, s, numParts)
}

// PartitionOptions tunes how the engine-ready partitioned representation
// is built and executed. The zero value matches Partition's defaults.
type PartitionOptions struct {
	// Parallelism is the number of worker goroutines used for the build
	// and for every engine phase; values < 1 default to GOMAXPROCS. The
	// strategy's own assignment pass is not governed by this knob: hash
	// strategies shard over GOMAXPROCS (constrain it to constrain them).
	Parallelism int
	// ReuseBuffers keeps the engine's run scratch (mirror tables, combine
	// accumulators, phase counters) parked on the PartitionedGraph between
	// runs, making repeated runs over the same topology — benchmark loops,
	// empirical strategy selection — nearly allocation-free. Result slices
	// are copied out, so returned values stay valid across runs.
	ReuseBuffers bool
}

// PartitionFromAssignment builds the engine-ready partitioned
// representation straight from an Assignment — the engine end of the
// pipeline, with zero additional partitioning passes. The same Assignment
// can feed MeasureAssignment and PartitionFromAssignment, so measuring and
// then running a strategy costs one edge-assignment pass in total.
func PartitionFromAssignment(a *Assignment, opts PartitionOptions) (*PartitionedGraph, error) {
	return pregel.NewPartitionedGraphFromAssignment(a, pregel.BuildOptions{
		Parallelism:  opts.Parallelism,
		ReuseBuffers: opts.ReuseBuffers,
	})
}

// Partition builds the engine-ready partitioned representation of g under
// strategy s with default options — a thin one-shot-session wrapper.
func Partition(g *Graph, s Strategy, numParts int) (*PartitionedGraph, error) {
	pg, err := oneShot.Partition(g, s, numParts)
	if err != nil {
		return nil, fmt.Errorf("cutfit: %w", err)
	}
	return pg, nil
}

// PartitionWithOptions builds the engine-ready partitioned representation
// of g under strategy s using the sort/scatter parallel builder — a thin
// wrapper over PartitionAssignment + PartitionFromAssignment.
func PartitionWithOptions(g *Graph, s Strategy, numParts int, opts PartitionOptions) (*PartitionedGraph, error) {
	a, err := PartitionAssignment(g, s, numParts)
	if err != nil {
		return nil, fmt.Errorf("cutfit: %w", err)
	}
	return PartitionFromAssignment(a, opts)
}

// RunPageRank executes static PageRank for numIter rounds (GraphX
// semantics, reset probability 0.15). Ranks are aligned with
// pg.G.Vertices().
func RunPageRank(ctx context.Context, pg *PartitionedGraph, numIter int) ([]float64, *RunStats, error) {
	return algorithms.PageRank(ctx, pg, numIter, algorithms.DefaultResetProb)
}

// RunConnectedComponents executes label-propagation connected components;
// maxIter of 0 runs to convergence.
func RunConnectedComponents(ctx context.Context, pg *PartitionedGraph, maxIter int) ([]VertexID, *RunStats, error) {
	return algorithms.ConnectedComponents(ctx, pg, maxIter)
}

// RunTriangleCount counts triangles through every vertex.
func RunTriangleCount(ctx context.Context, pg *PartitionedGraph) ([]int64, *RunStats, error) {
	return algorithms.TriangleCount(ctx, pg)
}

// RunShortestPaths computes hop distances to the landmark vertices;
// maxIter of 0 runs to convergence.
func RunShortestPaths(ctx context.Context, pg *PartitionedGraph, landmarks []VertexID, maxIter int) ([]DistMap, *RunStats, error) {
	return algorithms.ShortestPaths(ctx, pg, landmarks, maxIter)
}

// RunDynamicPageRank runs PageRank to convergence with per-vertex delta
// gating (GraphX's runUntilConvergence); the active edge set shrinks as
// vertices converge. maxIter of 0 means no cap.
func RunDynamicPageRank(ctx context.Context, pg *PartitionedGraph, tol float64, maxIter int) ([]float64, *RunStats, error) {
	return algorithms.DynamicPageRank(ctx, pg, tol, algorithms.DefaultResetProb, maxIter)
}

// RunLabelPropagation runs community detection by synchronous label
// propagation for numIter rounds.
func RunLabelPropagation(ctx context.Context, pg *PartitionedGraph, numIter int) ([]VertexID, *RunStats, error) {
	return algorithms.LabelPropagation(ctx, pg, numIter)
}

// RunKCoreMembership reports which vertices survive in the k-core.
func RunKCoreMembership(ctx context.Context, pg *PartitionedGraph, k int32) ([]bool, *RunStats, error) {
	return algorithms.KCoreMembership(ctx, pg, k)
}

// KCoreNumbers computes the exact core number of every vertex (sequential
// peeling; aligned with g.Vertices()).
func KCoreNumbers(g *Graph) []int32 { return algorithms.KCore(g) }

// The paper's four cluster configurations (§4).
var (
	ConfigI   = cluster.ConfigI
	ConfigII  = cluster.ConfigII
	ConfigIII = cluster.ConfigIII
	ConfigIV  = cluster.ConfigIV
)

// EstimateGraphBytes approximates the on-disk size of an edge list.
func EstimateGraphBytes(numEdges int) int64 { return cluster.EstimateGraphBytes(numEdges) }

// Built-in algorithm profiles for the advisor.
var (
	ProfilePageRank            = core.ProfilePageRank
	ProfileConnectedComponents = core.ProfileCC
	ProfileTriangleCount       = core.ProfileTR
	ProfileShortestPaths       = core.ProfileSSSP
)

// ProfileFor resolves "pagerank", "cc", "triangles" or "sssp".
func ProfileFor(alg string) (Profile, error) { return core.ProfileFor(alg) }

// Facts extracts advisor-relevant facts from a graph.
func Facts(g *Graph) GraphFacts { return core.Facts(g) }

// Advise recommends a strategy for the algorithm profile, dataset facts
// and partition count, following the paper's §4 heuristics.
func Advise(p Profile, f GraphFacts, numParts int) Recommendation {
	return core.Advise(p, f, numParts, core.DefaultAdvisorConfig())
}

// Select measures every candidate strategy on g — one edge-assignment pass
// per candidate — and returns the Selection minimizing the profile's
// predictive metric. The winner's Assignment is retained on the Selection,
// so building it with PartitionFromAssignment re-partitions nothing. A
// thin one-shot-session wrapper; Session.Select additionally caches every
// candidate's assignment for later requests.
func Select(g *Graph, candidates []Strategy, numParts int, p Profile) (*Selection, error) {
	return oneShot.Select(g, candidates, numParts, p)
}

// SelectEmpirically measures every candidate strategy on g and returns the
// one minimizing the profile's predictive metric, with all measurements —
// a thin wrapper over Select for callers that only need the ranking.
func SelectEmpirically(g *Graph, candidates []Strategy, numParts int, p Profile) (Strategy, map[string]*Metrics, error) {
	sel, err := Select(g, candidates, numParts, p)
	if err != nil {
		return nil, nil, err
	}
	return sel.Strategy, sel.Results, nil
}

// Predictor is a fitted linear model from a partitioning metric to
// execution time (the paper's correlation made executable).
type Predictor = core.Predictor

// GranularityAdvice recommends a partition count.
type GranularityAdvice = core.GranularityAdvice

// FitPredictor fits time ≈ a + b·metric by least squares.
func FitPredictor(metricName string, metricValues, timesSecs []float64) (*Predictor, error) {
	return core.FitPredictor(metricName, metricValues, timesSecs)
}

// TrainPredictor measures candidate strategies on g and fits a predictor
// from the provided measured times (strategy name → seconds).
func TrainPredictor(g *Graph, candidates []Strategy, numParts int, p Profile, timesByStrategy map[string]float64) (*Predictor, map[string]*Metrics, error) {
	return core.TrainPredictor(g, candidates, numParts, p, timesByStrategy)
}

// AdviseGranularity recommends a partition count (coarse vs fine) per the
// paper's §4 granularity findings.
func AdviseGranularity(p Profile, f GraphFacts, coarse, fine int) GranularityAdvice {
	return core.AdviseGranularity(p, f, coarse, fine, core.DefaultAdvisorConfig())
}

// Datasets returns the nine analog datasets of the paper's evaluation in
// Table 1 order.
func Datasets() []DatasetSpec { return datasets.Suite() }

// DatasetByName resolves an analog dataset by name (e.g. "orkut").
func DatasetByName(name string) (DatasetSpec, error) { return datasets.ByName(name) }

// The generic Pregel engine is exported so downstream users can write
// their own vertex programs against the same partitioned substrate the
// built-in algorithms use.
type (
	// Program defines a custom Pregel computation over vertex values V
	// and messages M.
	Program[V, M any] = pregel.Program[V, M]
	// Triplet presents an edge with its endpoint values to SendMsg.
	Triplet[V any] = pregel.Triplet[V]
	// MessageEmitter delivers messages to a triplet's endpoints.
	MessageEmitter[M any] = pregel.Emitter[M]
	// EdgeDirection selects which triplets the compute phase scans.
	EdgeDirection = pregel.EdgeDirection
	// ScanPolicy selects dense vs. frontier-index triplet scanning
	// (Program.ScanPolicy); results are identical under every policy.
	ScanPolicy = pregel.ScanPolicy
	// SuperstepStats is the per-superstep work/traffic accounting.
	SuperstepStats = pregel.SuperstepStats
)

// Triplet scan directions (GraphX activeDirection).
const (
	DirectionOut    = pregel.Out
	DirectionIn     = pregel.In
	DirectionEither = pregel.Either
	DirectionBoth   = pregel.Both
	DirectionAll    = pregel.AllEdges
)

// Compute-phase scan policies. ScanAuto (the default) switches each
// partition to the sparse frontier-index path when under 12.5% of its local
// vertices are active, and scans densely otherwise; ScanDense and
// ScanSparse pin one path (for benchmarks and tests — the result never
// depends on the choice).
const (
	ScanAuto   = pregel.ScanAuto
	ScanDense  = pregel.ScanDense
	ScanSparse = pregel.ScanSparse
)

// ErrHalt, returned from Program.OnSuperstep, stops a run gracefully.
var ErrHalt = pregel.ErrHalt

// RunProgram executes a custom Pregel program on a partitioned graph. The
// returned values are aligned with pg.G.Vertices().
func RunProgram[V, M any](ctx context.Context, pg *PartitionedGraph, prog Program[V, M]) ([]V, *RunStats, error) {
	return pregel.Run(ctx, pg, prog)
}
