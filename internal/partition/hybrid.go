package partition

import (
	"fmt"

	"cutfit/internal/graph"
)

// hybridStrategy implements a PowerLyra-style hybrid cut (Chen et al.,
// EuroSys'15, cited in the paper's related work via Verma et al.): edges
// whose destination has low in-degree are grouped by destination (good
// locality for the many low-degree vertices of a power-law graph), while
// edges pointing at high-degree "hub" destinations are hashed by source,
// spreading the hub's huge in-edge set across partitions.
//
// The in-degree consulted is the one observed in the stream so far, not
// the final in-degree: a hub's first `threshold` in-edges stay grouped and
// the rest spread. This makes the assignment of every edge a function of
// the edge-list prefix only, so a hybrid assignment can be resumed over an
// appended suffix (Assignment.Extend) bit-for-bit.
type hybridStrategy struct {
	threshold int32
}

// DefaultHybridThreshold is the in-degree cutoff used when a hybrid cut is
// requested without an explicit threshold (ByName "Hybrid") — PowerLyra's
// default ballpark for social graphs.
const DefaultHybridThreshold = 100

// Hybrid returns a hybrid-cut strategy with the given in-degree threshold
// (100 is PowerLyra's default ballpark for social graphs).
func Hybrid(threshold int) Strategy {
	return &hybridStrategy{threshold: int32(threshold)}
}

func (h *hybridStrategy) Name() string { return "Hybrid" }

// Key distinguishes hybrid variants in caches: the threshold changes the
// assignment, so "Hybrid:25" and "Hybrid:100" must never share entries.
func (h *hybridStrategy) Key() string { return fmt.Sprintf("Hybrid:%d", h.threshold) }

// NewStream returns resumable hybrid-cut state (streaming in-degree
// counters per destination).
func (h *hybridStrategy) NewStream(numParts int) (*StreamState, error) {
	if h.threshold <= 0 {
		return nil, fmt.Errorf("partition: hybrid threshold must be positive, got %d", h.threshold)
	}
	st, err := newStreamState(streamHybrid, numParts)
	if err != nil {
		return nil, err
	}
	st.threshold = int64(h.threshold)
	return st, nil
}

func (h *hybridStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	return streamPartition(h, g, numParts)
}

// rangeStrategy assigns contiguous source-ID blocks to partitions. Where
// the paper's SC/DC strategies stripe IDs with a modulo — which preserves
// *assignment* locality but scatters consecutive IDs across partitions —
// range partitioning keeps whole ID blocks together, the classic way to
// exploit ID-order locality (e.g. the geographic ordering of road-network
// IDs). Used by ablation A3 to separate the two effects.
type rangeStrategy struct{}

// Range returns the contiguous-block source-ID partitioner.
func Range() Strategy { return rangeStrategy{} }

func (rangeStrategy) Name() string { return "Range" }

func (rangeStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	verts := g.Vertices()
	out := make([]PID, g.NumEdges())
	if len(verts) == 0 {
		return out, nil
	}
	lo := int64(verts[0])
	hi := int64(verts[len(verts)-1])
	span := hi - lo + 1
	if err := g.ForEachEdgeBlock(func(start int, edges []graph.Edge, _ []float64) error {
		for i, e := range edges {
			out[start+i] = PID((int64(e.Src) - lo) * int64(numParts) / span)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
