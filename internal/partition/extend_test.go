package partition

import (
	"math/rand"
	"sort"
	"testing"

	"cutfit/internal/graph"
)

// extendStrategies is every strategy exercised by the Extend equivalence
// tests: the full hash family, the three resumable streaming strategies,
// and Range (the full-reassign fallback).
func extendStrategies() []Strategy {
	return append(Extended(), Hybrid(8), Range())
}

// genEdges produces exactly ne random edges over nv vertices.
func genEdges(seed int64, nv, ne int) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(r.Intn(nv)), Dst: graph.VertexID(r.Intn(nv))}
	}
	return edges
}

// assertSamePIDs fails unless a and b are bit-identical assignments.
func assertSamePIDs(t *testing.T, s Strategy, a, b *Assignment) {
	t.Helper()
	if len(a.PIDs) != len(b.PIDs) {
		t.Fatalf("%s: %d vs %d PIDs", s.Name(), len(a.PIDs), len(b.PIDs))
	}
	for i := range a.PIDs {
		if a.PIDs[i] != b.PIDs[i] {
			t.Fatalf("%s: PIDs differ at edge %d: %d vs %d", s.Name(), i, a.PIDs[i], b.PIDs[i])
		}
	}
	for p := range a.EdgesPerPart {
		if a.EdgesPerPart[p] != b.EdgesPerPart[p] {
			t.Fatalf("%s: histogram differs at partition %d", s.Name(), p)
		}
	}
}

// TestExtendMatchesOneShot proves that assigning a graph in K random
// batches through Extend produces exactly the assignment a single pass
// over the full edge list would, for every strategy.
func TestExtendMatchesOneShot(t *testing.T) {
	const parts = 8
	all := genEdges(42, 150, 2500)
	for _, s := range extendStrategies() {
		for trial := 0; trial < 3; trial++ {
			r := rand.New(rand.NewSource(int64(100 + trial)))
			// Random split into 1 + up to 4 batches.
			cuts := []int{0}
			for len(cuts) < 4 {
				cuts = append(cuts, 1+r.Intn(len(all)-1))
			}
			cuts = append(cuts, len(all))
			sort.Ints(cuts)

			g := graph.FromEdges(append([]graph.Edge(nil), all[:cuts[1]]...))
			a, err := Assign(g, s, parts)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for i := 2; i < len(cuts); i++ {
				ng, _ := g.Grow(all[cuts[i-1]:cuts[i]])
				a, err = a.Extend(ng, s)
				if err != nil {
					t.Fatalf("%s: extend batch %d: %v", s.Name(), i, err)
				}
				g = ng
			}
			full := graph.FromEdges(append([]graph.Edge(nil), all...))
			want, err := Assign(full, s, parts)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePIDs(t, s, a, want)
		}
	}
}

// TestExtendInPlaceGrowth covers the AddEdges-on-the-same-graph flavor.
func TestExtendInPlaceGrowth(t *testing.T) {
	all := genEdges(7, 60, 800)
	for _, s := range extendStrategies() {
		g := graph.FromEdges(append([]graph.Edge(nil), all[:500]...))
		a, err := Assign(g, s, 6)
		if err != nil {
			t.Fatal(err)
		}
		g.AddEdges(all[500:]...)
		a, err = a.Extend(g, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		want, err := Assign(graph.FromEdges(append([]graph.Edge(nil), all...)), s, 6)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePIDs(t, s, a, want)
	}
}

// TestExtendReplayFallback: a second Extend from the same base assignment
// finds its stream state already taken and must replay — still
// bit-identical.
func TestExtendReplayFallback(t *testing.T) {
	all := genEdges(8, 50, 600)
	for _, s := range []Strategy{Greedy(), HDRF(1.0), Hybrid(8)} {
		g := graph.FromEdges(append([]graph.Edge(nil), all[:400]...))
		base, err := Assign(g, s, 5)
		if err != nil {
			t.Fatal(err)
		}
		ng, _ := g.Grow(all[400:])
		first, err := base.Extend(ng, s)
		if err != nil {
			t.Fatal(err)
		}
		second, err := base.Extend(ng, s) // state gone: replay path
		if err != nil {
			t.Fatal(err)
		}
		assertSamePIDs(t, s, first, second)
	}
}

func TestExtendErrors(t *testing.T) {
	g := randomGraph(9, 30, 200)
	a, err := Assign(g, EdgePartition2D(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Strategy key mismatch.
	if _, err := a.Extend(g, SourceCut()); err == nil {
		t.Fatal("extending a 2D assignment with SC should error")
	}
	// Shrunk graph.
	small := graph.FromEdges(g.Edges()[:10])
	if _, err := a.Extend(small, EdgePartition2D()); err == nil {
		t.Fatal("extending onto a smaller graph should error")
	}
	// Unrelated graph of equal-or-larger size with a different prefix.
	other := randomGraph(10, 30, 300)
	if _, err := a.Extend(other, EdgePartition2D()); err == nil {
		t.Fatal("extending onto an unrelated edge list should error")
	}
}
