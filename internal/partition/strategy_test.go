package partition

import (
	"testing"
	"testing/quick"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

func randomGraph(seed uint64, maxV, maxE int) *graph.Graph {
	r := rng.New(seed)
	nv := 2 + r.Intn(maxV)
	ne := 1 + r.Intn(maxE)
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(r.Intn(nv)),
			Dst: graph.VertexID(r.Intn(nv)),
		}
	}
	return graph.FromEdges(edges)
}

func TestAllStrategiesInRangeAndDeterministic(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%64
		g := randomGraph(seed, 64, 256)
		for _, s := range Extended() {
			a, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			b, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			if len(a) != g.NumEdges() {
				return false
			}
			for i := range a {
				if a[i] < 0 || int(a[i]) >= numParts || a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRejectsBadCounts(t *testing.T) {
	g := randomGraph(1, 10, 10)
	for _, s := range Extended() {
		if _, err := s.Partition(g, 0); err == nil {
			t.Errorf("%s: numParts=0 should error", s.Name())
		}
		if _, err := s.Partition(g, -3); err == nil {
			t.Errorf("%s: negative numParts should error", s.Name())
		}
		if _, err := s.Partition(g, 1<<21); err == nil {
			t.Errorf("%s: huge numParts should error", s.Name())
		}
	}
}

func Test1DCollocatesSameSource(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: 7, Dst: 1}, {Src: 7, Dst: 2}, {Src: 7, Dst: 3}, {Src: 8, Dst: 1},
	})
	a, err := EdgePartition1D().Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != a[1] || a[1] != a[2] {
		t.Fatalf("1D split edges of the same source: %v", a)
	}
}

func TestSCDCareExactModulo(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 13, Dst: 29}})
	sc, _ := SourceCut().Partition(g, 8)
	dc, _ := DestinationCut().Partition(g, 8)
	if sc[0] != PID(13%8) {
		t.Fatalf("SC = %d, want %d", sc[0], 13%8)
	}
	if dc[0] != PID(29%8) {
		t.Fatalf("DC = %d, want %d", dc[0], 29%8)
	}
}

func TestCRVCCollocatesBothDirections(t *testing.T) {
	check := func(a, b uint16, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%128
		g := graph.FromEdges([]graph.Edge{
			{Src: graph.VertexID(a), Dst: graph.VertexID(b)},
			{Src: graph.VertexID(b), Dst: graph.VertexID(a)},
		})
		p, err := CanonicalRandomVertexCut().Partition(g, numParts)
		return err == nil && p[0] == p[1]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRVCCollocatesSameDirection(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: 3, Dst: 9}, {Src: 3, Dst: 9},
	})
	p, _ := RandomVertexCut().Partition(g, 64)
	if p[0] != p[1] {
		t.Fatal("RVC split identical edges")
	}
}

// replicasOf returns the number of distinct partitions each vertex's edges
// touch.
func replicasOf(g *graph.Graph, assign []PID) map[graph.VertexID]map[PID]bool {
	out := map[graph.VertexID]map[PID]bool{}
	add := func(v graph.VertexID, p PID) {
		if out[v] == nil {
			out[v] = map[PID]bool{}
		}
		out[v][p] = true
	}
	for i, e := range g.Edges() {
		add(e.Src, assign[i])
		add(e.Dst, assign[i])
	}
	return out
}

func Test2DReplicationBound(t *testing.T) {
	// 2D guarantees <= 2*ceil(sqrt(N)) replicas per vertex (paper §3).
	for _, numParts := range []int{4, 9, 16, 17, 64, 100, 128} {
		g := randomGraph(uint64(numParts), 200, 4000)
		assign, err := EdgePartition2D().Partition(g, numParts)
		if err != nil {
			t.Fatal(err)
		}
		side := 1
		for side*side < numParts {
			side++
		}
		bound := 2 * side
		for v, parts := range replicasOf(g, assign) {
			if len(parts) > bound {
				t.Fatalf("numParts=%d: vertex %d has %d replicas, bound %d",
					numParts, v, len(parts), bound)
			}
		}
	}
}

func Test1DReplicationSourceBound(t *testing.T) {
	// Under 1D all out-edges of a vertex are in one partition, so a
	// vertex's replicas are bounded by 1 + (#partitions holding its
	// in-edges); in particular a pure source has exactly 1 replica... per
	// the weaker invariant: every source vertex's out-edges land together.
	g := randomGraph(5, 50, 500)
	assign, _ := EdgePartition1D().Partition(g, 32)
	bySource := map[graph.VertexID]PID{}
	for i, e := range g.Edges() {
		if p, ok := bySource[e.Src]; ok && p != assign[i] {
			t.Fatalf("vertex %d out-edges in partitions %d and %d", e.Src, p, assign[i])
		}
		bySource[e.Src] = assign[i]
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"RVC", "1D", "2D", "CRVC", "SC", "DC", "Greedy", "HDRF"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	for _, name := range []string{"Range", "Hybrid", "Hybrid:250"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		wantName := "Range"
		if name != "Range" {
			wantName = "Hybrid"
		}
		if s.Name() != wantName {
			t.Fatalf("ByName(%q).Name() = %q, want %q", name, s.Name(), wantName)
		}
	}
	for _, bad := range []string{"nope", "Hybrid:", "Hybrid:0", "Hybrid:abc"} {
		if _, err := ByName(bad); err == nil {
			t.Fatalf("ByName(%q) should error", bad)
		}
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{"RVC", "1D", "2D", "CRVC", "SC", "DC"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestHashStrategyRejectsOutOfRangePID(t *testing.T) {
	s := NewHashStrategy("bad", func(src, dst graph.VertexID, n int) PID {
		return PID(n) // always out of range
	})
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	if _, err := s.Partition(g, 4); err == nil {
		t.Fatal("out-of-range PID should error")
	}
}

func TestSingletonPartition(t *testing.T) {
	g := randomGraph(9, 20, 50)
	for _, s := range Extended() {
		assign, err := s.Partition(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, p := range assign {
			if p != 0 {
				t.Fatalf("%s: partition %d with numParts=1", s.Name(), p)
			}
		}
	}
}
