package partition

import (
	"errors"
	"fmt"
	"math/bits"

	"cutfit/internal/graph"
)

// errStopReplay ends a prefix-replay block scan once the replay reaches the
// assigned prefix length; it never escapes Extend.
var errStopReplay = errors.New("partition: stop prefix replay")

// Extend returns the Assignment of grown — a graph that contains exactly
// this assignment's edges as a prefix, as produced by Graph.Grow, Shrink
// or SlideWindow (a new generation) or by AddEdges on a.G itself
// (in-place growth) — under the same strategy and partition count.
// Retraction needs no strategy work at all: tombstoned slots keep their
// assignment (the dense alignment is the whole point of tombstones), so a
// shrink step reuses every PID and only subtracts the newly-dead edges
// from the histogram. The result is bit-for-bit identical to
// Assign(grown, s, a.NumParts); only the cost differs:
//
//   - stateless hash strategies (SuffixAssigner) assign just the suffix;
//   - Resumable streaming strategies continue this assignment's retained
//     StreamState over the suffix — or, if the state was already taken by
//     an earlier Extend, replay the prefix deterministically first;
//   - any other strategy (Range, whose block boundaries move as the ID
//     span grows) falls back to a full assignment pass. Its prefix PIDs
//     may then differ from this assignment's — downstream topology
//     patching detects that and rebuilds.
//
// The prefix PID entries and the histogram are reused, never recounted.
func (a *Assignment) Extend(grown *graph.Graph, s Strategy) (*Assignment, error) {
	if key := KeyOf(s); a.strategyKey != "" && key != a.strategyKey {
		return nil, fmt.Errorf("partition: cannot extend %s assignment with strategy %s", a.strategyKey, key)
	}
	oldLen := len(a.PIDs)
	ne := grown.NumEdges()
	if ne < oldLen {
		return nil, fmt.Errorf("partition: grown graph has %d edges, assignment covers %d", ne, oldLen)
	}
	// Cheap prefix sanity check: the grown edge list must start with the
	// assigned one. Spot-check the boundary edges; full equality is the
	// caller's contract (Graph.Grow guarantees it). EdgeAt keeps this O(1)
	// decodes on a block-backed graph.
	if oldLen > 0 {
		if a.G.NumEdges() < oldLen || a.G.EdgeAt(0) != grown.EdgeAt(0) || a.G.EdgeAt(oldLen-1) != grown.EdgeAt(oldLen-1) {
			return nil, fmt.Errorf("partition: grown graph does not extend the assigned edge list")
		}
	}

	// The appended suffix is tiny relative to the graph in steady-state
	// serving; EdgeRange materializes just it (a copy on a block-backed
	// graph, a subslice on a dense one).
	suffix, wSuffix := grown.EdgeRange(oldLen, ne)
	var pids []PID
	inherit := func() []PID {
		out := make([]PID, ne)
		copy(out, a.PIDs)
		return out
	}
	var retained *StreamState
	prefixStable := true
	switch t := s.(type) {
	case SuffixAssigner:
		pids = inherit()
		if err := t.AssignSuffix(suffix, pids[oldLen:], a.NumParts); err != nil {
			return nil, err
		}
	case Resumable:
		pids = inherit()
		st := a.takeStream()
		if st == nil {
			// State already taken (or the assignment was hand-built):
			// replay the prefix, block at a time. Streaming strategies are
			// deterministic, so the replayed prefix equals the retained one.
			fresh, err := t.NewStream(a.NumParts)
			if err != nil {
				return nil, err
			}
			if err := grown.ForEachEdgeBlock(func(start int, edges []graph.Edge, weights []float64) error {
				if start >= oldLen {
					return errStopReplay
				}
				if start+len(edges) > oldLen {
					edges = edges[:oldLen-start]
					if weights != nil {
						weights = weights[:oldLen-start]
					}
				}
				fresh.AssignWeightedEdges(edges, weights, pids[start:start+len(edges)])
				return nil
			}); err != nil && err != errStopReplay {
				return nil, err
			}
			st = fresh
		}
		st.AssignWeightedEdges(suffix, wSuffix, pids[oldLen:])
		retained = st
	default:
		full, err := s.Partition(grown, a.NumParts)
		if err != nil {
			return nil, err
		}
		pids = full
		prefixStable = false
	}

	var na *Assignment
	if prefixStable {
		counts := make([]int64, a.NumParts)
		copy(counts, a.EdgesPerPart)
		for i := oldLen; i < ne; i++ {
			p := pids[i]
			if p < 0 || int(p) >= a.NumParts {
				return nil, fmt.Errorf("partition: edge %d assigned to out-of-range partition %d (strategy %s)", i, p, s.Name())
			}
			counts[p]++
		}
		subtractRetractions(counts, pids, a.G, grown, oldLen)
		na = &Assignment{G: grown, Strategy: s.Name(), strategyKey: KeyOf(s), NumParts: a.NumParts, PIDs: pids, EdgesPerPart: counts, extendedFrom: oldLen}
	} else {
		var err error
		na, err = NewAssignment(grown, s.Name(), pids, a.NumParts)
		if err != nil {
			return nil, fmt.Errorf("%w (strategy %s)", err, s.Name())
		}
		na.strategyKey = KeyOf(s)
	}
	na.stream = retained
	return na, nil
}

// subtractRetractions walks the tombstone diff between old and grown over
// the inherited prefix and removes each newly-dead edge from the copied
// live histogram (its PID slot stays assigned — only the count changes).
func subtractRetractions(counts []int64, pids []PID, old, grown *graph.Graph, oldLen int) {
	newDead := grown.Tombstones()
	if len(newDead) == 0 {
		return
	}
	oldDead := old.Tombstones()
	words := (oldLen + 63) / 64
	if words > len(newDead) {
		words = len(newDead)
	}
	for w := 0; w < words; w++ {
		var ow uint64
		if w < len(oldDead) {
			ow = oldDead[w]
		}
		diff := newDead[w] &^ ow
		for diff != 0 {
			i := w*64 + bits.TrailingZeros64(diff)
			if i < oldLen {
				counts[pids[i]]--
			}
			diff &= diff - 1
		}
	}
}
