package partition

import (
	"fmt"
	"sync"

	"cutfit/internal/graph"
	"cutfit/internal/par"
)

// Assignment is the first-class artifact of one partitioning pass: the
// per-edge partition assignment of a graph, validated on construction,
// together with the per-partition edge histogram that every downstream
// consumer (metrics, the partitioned-graph builder, the empirical
// selector) would otherwise recount.
//
// An Assignment is produced exactly once per strategy invocation by Assign
// and then flows through the whole pipeline: metrics.FromAssignment derives
// the §3.1 metric set from it, pregel builds the engine topology from it,
// and the advisor's empirical selection keeps the winning Assignment so the
// chosen strategy never re-partitions. Treat it as immutable once built.
type Assignment struct {
	// G is the graph the assignment was computed for.
	G *graph.Graph
	// Strategy is the name of the producing strategy ("" if hand-built).
	Strategy string
	// NumParts is the partition count the assignment targets.
	NumParts int
	// PIDs holds one partition ID per dense edge slot, aligned with
	// G.Edges() — tombstoned slots keep their (validated) assignment so the
	// alignment survives retraction. Every entry is in [0, NumParts).
	PIDs []PID
	// EdgesPerPart is the per-partition LIVE edge histogram, counted once
	// during validation; tombstoned edges do not count.
	EdgesPerPart []int64

	// strategyKey is the producing strategy's cache identity
	// (partition.KeyOf); Extend refuses to continue under a different key.
	strategyKey string

	// extendedFrom is the prefix length inherited verbatim by the last
	// Extend (-1 when the assignment was built one-shot or fully
	// recomputed). Consumers patching topologies use it to skip the
	// defensive prefix comparison.
	extendedFrom int

	// stream is the retained resumable state of a streaming strategy
	// (nil for stateless strategies). Extend takes it — under streamMu, so
	// racing Extends cannot share state — and hands it to the extended
	// assignment; an assignment whose state was already taken falls back
	// to a deterministic replay.
	streamMu sync.Mutex
	stream   *StreamState
}

// NumEdges returns the number of assigned edges.
func (a *Assignment) NumEdges() int { return len(a.PIDs) }

// MemoryFootprint approximates the bytes retained by the assignment (the
// PID slice, the histogram and any retained streaming state), used as its
// eviction cost by cache layers.
func (a *Assignment) MemoryFootprint() int64 {
	b := int64(len(a.PIDs))*4 + int64(len(a.EdgesPerPart))*8
	a.streamMu.Lock()
	if a.stream != nil {
		b += a.stream.MemoryFootprint()
	}
	a.streamMu.Unlock()
	return b
}

// takeStream removes and returns the retained streaming state (nil if
// none, or if a previous Extend already took it).
func (a *Assignment) takeStream() *StreamState {
	a.streamMu.Lock()
	defer a.streamMu.Unlock()
	st := a.stream
	a.stream = nil
	return st
}

// NewAssignment validates a raw per-edge assignment against g (length and
// PID range over the full dense list) and wraps it, counting the
// per-partition live edge histogram in the same pass (tombstoned slots are
// validated but not counted). The PIDs slice is retained, not copied.
func NewAssignment(g *graph.Graph, strategy string, pids []PID, numParts int) (*Assignment, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	if ne := g.NumEdges(); len(pids) != ne {
		return nil, fmt.Errorf("partition: assignment has %d entries for %d edges", len(pids), ne)
	}
	numDead := g.NumDeadEdges()
	counts := make([]int64, numParts)
	for i, p := range pids {
		if p < 0 || int(p) >= numParts {
			return nil, fmt.Errorf("partition: edge %d assigned to out-of-range partition %d", i, p)
		}
		if numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		counts[p]++
	}
	return &Assignment{G: g, Strategy: strategy, strategyKey: strategy, NumParts: numParts, PIDs: pids, EdgesPerPart: counts, extendedFrom: -1}, nil
}

// StrategyKey returns the producing strategy's cache identity
// (partition.KeyOf at production time): the strategy name, or the
// parameterized form (e.g. "Hybrid:8") for Keyer strategies. Persistence
// layers store it so a restored assignment lands under the same cache key
// it was computed for.
func (a *Assignment) StrategyKey() string { return a.strategyKey }

// RestoreAssignmentCounted rebuilds a validated Assignment from its
// persisted parts on the warm-start path. The caller — a snapshot decoder
// that already range-validated every PID and counted the histogram in its
// decode pass — hands both in, and only the cross-checks that cost
// O(parts) run here (lengths, count bounds, histogram total). Callers MUST
// have validated every pids entry against numParts; nothing here re-scans
// the slice. The restored assignment carries the recorded strategy cache
// key and retains no streaming state — a later Extend falls back to the
// deterministic prefix replay.
func RestoreAssignmentCounted(g *graph.Graph, strategy, strategyKey string, pids []PID, counts []int64, numParts int) (*Assignment, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	if ne := g.NumEdges(); len(pids) != ne {
		return nil, fmt.Errorf("partition: assignment has %d entries for %d edges", len(pids), ne)
	}
	if len(counts) != numParts {
		return nil, fmt.Errorf("partition: histogram has %d partitions, want %d", len(counts), numParts)
	}
	var total int64
	for p, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("partition: negative histogram count at partition %d", p)
		}
		total += c
	}
	if total != int64(g.NumLiveEdges()) {
		return nil, fmt.Errorf("partition: histogram sums to %d for %d live edges", total, g.NumLiveEdges())
	}
	return &Assignment{G: g, Strategy: strategy, strategyKey: strategyKey, NumParts: numParts, PIDs: pids, EdgesPerPart: counts, extendedFrom: -1}, nil
}

// ExtendedFrom reports the prefix length this assignment inherited
// verbatim from its parent in the producing Extend call; ok is false for
// one-shot or fully recomputed assignments.
func (a *Assignment) ExtendedFrom() (prefixLen int, ok bool) {
	if a.extendedFrom < 0 {
		return 0, false
	}
	return a.extendedFrom, true
}

// Assign runs strategy s over g exactly once and returns the validated
// Assignment artifact. This is the single entry point of the
// strategy → metrics → engine pipeline; callers that need both the metric
// set and the engine topology share one Assign call instead of
// re-partitioning per consumer.
//
// Hash strategies shard the assignment pass over GOMAXPROCS — the process
// CPU limit, not any per-call Parallelism option (a Strategy has no
// options to thread them through).
//
// For Resumable streaming strategies the produced Assignment retains the
// run's StreamState, so a later Extend over an appended edge suffix
// continues where this pass stopped instead of replaying the prefix. The
// retained state costs roughly a map entry plus replica list per distinct
// vertex; it is included in MemoryFootprint (so cache layers budget for
// it), and holders that will never Extend can let the whole Assignment go
// — the state is reachable only through it.
func Assign(g *graph.Graph, s Strategy, numParts int) (*Assignment, error) {
	var retained *StreamState
	var pids []PID
	if r, ok := s.(Resumable); ok {
		st, err := r.NewStream(numParts)
		if err != nil {
			return nil, err
		}
		// One streamed pass, block at a time: chunked assignment is exactly
		// equivalent to a single call over the full edge list (see
		// AssignEdges), and a block-backed graph never materializes its
		// dense []Edge here.
		pids = make([]PID, g.NumEdges())
		if err := g.ForEachEdgeBlock(func(start int, edges []graph.Edge, weights []float64) error {
			st.AssignWeightedEdges(edges, weights, pids[start:start+len(edges)])
			return nil
		}); err != nil {
			return nil, err
		}
		retained = st
	} else {
		var err error
		pids, err = s.Partition(g, numParts)
		if err != nil {
			// Strategy errors already carry the package prefix and, for the
			// built-in strategies, the strategy name.
			return nil, err
		}
	}
	a, err := NewAssignment(g, s.Name(), pids, numParts)
	if err != nil {
		return nil, fmt.Errorf("%w (strategy %s)", err, s.Name())
	}
	a.strategyKey = KeyOf(s)
	a.stream = retained
	return a, nil
}

// parallelAssignThreshold is the edge count below which sharded hash
// assignment falls back to a single-goroutine loop; goroutine fan-out on
// tiny graphs costs more than it saves.
const parallelAssignThreshold = 1 << 14

// assignHashParallel evaluates a stateless per-edge hash over contiguous
// edge shards, one per GOMAXPROCS slot, writing into out. The output is
// index-addressed, so the result is identical to the sequential loop
// regardless of scheduling.
func assignHashParallel(edges []graph.Edge, out []PID, fn EdgeHashFunc, numParts int) error {
	shards := par.DefaultParallelism()
	if len(edges) < parallelAssignThreshold || shards < 2 {
		return assignHashRange(edges, out, fn, numParts, 0, len(edges))
	}
	if shards > len(edges) {
		shards = len(edges)
	}
	chunk := (len(edges) + shards - 1) / shards
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			errs[s] = assignHashRange(edges, out, fn, numParts, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// assignHashRange evaluates fn over edges[lo:hi), writing into out and
// validating the produced PIDs. Errors carry no package prefix; the
// calling Strategy wraps them with its name.
func assignHashRange(edges []graph.Edge, out []PID, fn EdgeHashFunc, numParts, lo, hi int) error {
	for i := lo; i < hi; i++ {
		e := edges[i]
		p := fn(e.Src, e.Dst, numParts)
		// One unsigned compare covers both negative and too-large PIDs: a
		// negative PID wraps past every valid numParts. Keeps the validation
		// branch-free of a second test in this per-edge hot loop.
		if uint32(p) >= uint32(numParts) {
			return fmt.Errorf("hash produced out-of-range partition %d for edge %d", p, i)
		}
		out[i] = p
	}
	return nil
}
