package partition

import (
	"testing"

	"cutfit/internal/graph"
)

// replicationFactor computes mean replicas per vertex for an assignment.
func replicationFactor(g *graph.Graph, assign []PID) float64 {
	reps := replicasOf(g, assign)
	total := 0
	for _, parts := range reps {
		total += len(parts)
	}
	return float64(total) / float64(len(reps))
}

func TestGreedyBeatsRandomOnReplication(t *testing.T) {
	g := randomGraph(77, 300, 3000)
	const parts = 16
	greedy, err := Greedy().Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomVertexCut().Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	if rfG, rfR := replicationFactor(g, greedy), replicationFactor(g, random); rfG >= rfR {
		t.Fatalf("greedy replication %.3f not better than random %.3f", rfG, rfR)
	}
}

func TestHDRFBeatsRandomOnReplication(t *testing.T) {
	g := randomGraph(78, 300, 3000)
	const parts = 16
	hdrf, err := HDRF(1.0).Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomVertexCut().Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	if rfH, rfR := replicationFactor(g, hdrf), replicationFactor(g, random); rfH >= rfR {
		t.Fatalf("HDRF replication %.3f not better than random %.3f", rfH, rfR)
	}
}

func TestStreamingLoadRoughlyBalanced(t *testing.T) {
	g := randomGraph(79, 200, 4000)
	const parts = 8
	for _, s := range []Strategy{Greedy(), HDRF(1.0)} {
		assign, err := s.Partition(g, parts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var counts [parts]int
		for _, p := range assign {
			counts[p]++
		}
		mean := g.NumEdges() / parts
		for p, c := range counts {
			if c > 3*mean {
				t.Errorf("%s: partition %d holds %d edges (mean %d)", s.Name(), p, c, mean)
			}
		}
	}
}

func TestStreamingDeterministic(t *testing.T) {
	g := randomGraph(80, 100, 1000)
	for _, s := range []Strategy{Greedy(), HDRF(1.0)} {
		a, err := s.Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: assignment differs at edge %d", s.Name(), i)
			}
		}
	}
}
