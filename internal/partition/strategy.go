// Package partition implements the vertex-cut edge partitioning strategies
// evaluated in the paper: GraphX's four built-in partitioners (RandomVertexCut,
// EdgePartition1D, EdgePartition2D, CanonicalRandomVertexCut) and the two
// strategies the paper proposes (SourceCut, DestinationCut), plus streaming
// greedy partitioners (Greedy, HDRF) used by the ablation benchmarks.
//
// A vertex-cut partitioner assigns *edges* to partitions; vertices are then
// replicated into every partition that holds at least one of their edges.
// The metrics package quantifies the quality of the resulting cut.
package partition

import (
	"fmt"
	"strconv"
	"strings"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// PID identifies a partition, in [0, NumParts).
type PID int32

// Strategy assigns every edge of a graph to one of numParts partitions.
// Implementations must be deterministic: the same graph and part count must
// always produce the same assignment.
type Strategy interface {
	// Name returns the short identifier used in tables (e.g. "2D").
	Name() string
	// Partition returns one PID per edge, aligned with g.Edges().
	Partition(g *graph.Graph, numParts int) ([]PID, error)
}

// Keyer is an optional Strategy extension for parameterized strategies
// whose Name alone does not identify the assignment they produce (e.g. the
// hybrid cut, where the in-degree threshold changes the result but the
// table name stays "Hybrid"). Cache layers key artifacts by KeyOf, never by
// Name, so two variants of one strategy can never alias each other's
// cached assignments.
type Keyer interface {
	// Key returns an identifier unique to this strategy's exact assignment
	// behavior.
	Key() string
}

// KeyOf returns the cache identity of a strategy: its Key when it
// implements Keyer, else its Name.
func KeyOf(s Strategy) string {
	if k, ok := s.(Keyer); ok {
		return k.Key()
	}
	return s.Name()
}

// EdgeHashFunc is a stateless per-edge assignment function, the shape of
// all GraphX partitioners.
type EdgeHashFunc func(src, dst graph.VertexID, numParts int) PID

// hashStrategy adapts an EdgeHashFunc into a Strategy. Because the function
// is stateless, assignment is embarrassingly parallel: Partition shards the
// edge list over all cores and each shard writes its index range of the
// output, so the result is identical to the sequential loop.
type hashStrategy struct {
	name string
	fn   EdgeHashFunc
	// prep, when set, specializes the hash function once per Partition call
	// for a fixed partition count — hoisting any per-numParts setup (2D's
	// grid side) out of the per-edge path.
	prep func(numParts int) EdgeHashFunc
}

// NewHashStrategy wraps a stateless per-edge hash function as a Strategy.
func NewHashStrategy(name string, fn EdgeHashFunc) Strategy {
	return &hashStrategy{name: name, fn: fn}
}

// newPreparedHashStrategy wraps a factory that builds the per-edge hash for
// a fixed partition count, invoked once per Partition call.
func newPreparedHashStrategy(name string, prep func(numParts int) EdgeHashFunc) Strategy {
	return &hashStrategy{name: name, prep: prep}
}

func (s *hashStrategy) Name() string { return s.name }

func (s *hashStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	fn := s.fn
	if s.prep != nil {
		fn = s.prep(numParts)
	}
	// Block at a time: a block-backed graph never materializes its dense
	// edge list here, and each block is still sharded over all cores.
	out := make([]PID, g.NumEdges())
	if err := g.ForEachEdgeBlock(func(start int, edges []graph.Edge, _ []float64) error {
		return assignHashParallel(edges, out[start:start+len(edges)], fn, numParts)
	}); err != nil {
		return nil, fmt.Errorf("partition: strategy %s: %w", s.name, err)
	}
	return out, nil
}

// AssignSuffix evaluates the stateless per-edge hash over an arbitrary
// edge slice, writing into out — the SuffixAssigner hook that lets
// Assignment.Extend assign only a graph's appended edge suffix.
func (s *hashStrategy) AssignSuffix(edges []graph.Edge, out []PID, numParts int) error {
	if err := checkParts(numParts); err != nil {
		return err
	}
	if len(out) != len(edges) {
		return fmt.Errorf("partition: strategy %s: output has %d slots for %d edges", s.name, len(out), len(edges))
	}
	fn := s.fn
	if s.prep != nil {
		fn = s.prep(numParts)
	}
	if err := assignHashParallel(edges, out, fn, numParts); err != nil {
		return fmt.Errorf("partition: strategy %s: %w", s.name, err)
	}
	return nil
}

func checkParts(numParts int) error {
	if numParts <= 0 {
		return fmt.Errorf("partition: number of partitions must be positive, got %d", numParts)
	}
	if numParts > 1<<20 {
		return fmt.Errorf("partition: number of partitions %d exceeds sanity limit", numParts)
	}
	return nil
}

// RandomVertexCut (RVC) hashes the source and destination IDs together,
// collocating all same-direction edges between two vertices.
func RandomVertexCut() Strategy {
	return NewHashStrategy("RVC", func(src, dst graph.VertexID, n int) PID {
		h := rng.Combine2(uint64(src), uint64(dst))
		return PID(h % uint64(n))
	})
}

// CanonicalRandomVertexCut (CRVC) hashes the endpoint IDs in canonical
// order, collocating all edges between two vertices regardless of
// direction: (u,v) and (v,u) land in the same partition.
func CanonicalRandomVertexCut() Strategy {
	return NewHashStrategy("CRVC", func(src, dst graph.VertexID, n int) PID {
		a, b := uint64(src), uint64(dst)
		if a > b {
			a, b = b, a
		}
		h := rng.Combine2(a, b)
		return PID(h % uint64(n))
	})
}

// EdgePartition1D (1D) hashes the source vertex ID, collocating every
// out-edge of a vertex.
func EdgePartition1D() Strategy {
	return NewHashStrategy("1D", func(src, dst graph.VertexID, n int) PID {
		return PID(rng.Mix64(uint64(src)) % uint64(n))
	})
}

// EdgePartition2D (2D) arranges partitions in a ceil(sqrt(N)) square grid
// and picks the column from the source hash and the row from the
// destination hash. Every source vertex touches at most one column (√N
// partitions) and every destination at most one row, guaranteeing a 2√N
// bound on vertex replication. When N is not a perfect square the grid is
// folded back with a final modulo, which — as the paper observes — can
// produce imbalanced partitions.
//
// The grid side depends only on the partition count, so it is computed
// once per Partition call, not per edge.
func EdgePartition2D() Strategy {
	return newPreparedHashStrategy("2D", func(n int) EdgeHashFunc {
		side := uint64(ceilSqrt(n))
		return func(src, dst graph.VertexID, n int) PID {
			col := rng.Mix64(uint64(src)) % side
			row := rng.Mix64(uint64(dst)) % side
			return PID((col*side + row) % uint64(n))
		}
	})
}

// SourceCut (SC) assigns edges by simple modulo of the source vertex ID —
// the paper's first proposed strategy. Unlike 1D it does not hash, so any
// locality captured by consecutive vertex IDs (as in road networks, where
// IDs follow geography) is preserved, at the cost of balance.
func SourceCut() Strategy {
	return NewHashStrategy("SC", func(src, dst graph.VertexID, n int) PID {
		return PID(uint64(src) % uint64(n))
	})
}

// DestinationCut (DC) assigns edges by simple modulo of the destination
// vertex ID — the paper's second proposed strategy.
func DestinationCut() Strategy {
	return NewHashStrategy("DC", func(src, dst graph.VertexID, n int) PID {
		return PID(uint64(dst) % uint64(n))
	})
}

// ceilSqrt returns the smallest s with s*s >= n.
func ceilSqrt(n int) int {
	if n <= 1 {
		return 1
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// All returns the six strategies evaluated in the paper, in table order.
func All() []Strategy {
	return []Strategy{
		RandomVertexCut(),
		EdgePartition1D(),
		EdgePartition2D(),
		CanonicalRandomVertexCut(),
		SourceCut(),
		DestinationCut(),
	}
}

// Extended returns the paper's six strategies plus the streaming greedy
// partitioners used by the ablation experiments.
func Extended() []Strategy {
	return append(All(), Greedy(), HDRF(1.0))
}

// ByName returns the strategy with the given table name (case sensitive:
// "RVC", "1D", "2D", "CRVC", "SC", "DC", "Greedy", "HDRF"). The extension
// strategies resolve as "Range" and "Hybrid" (default in-degree threshold)
// or "Hybrid:<threshold>" for an explicit cutoff, e.g. "Hybrid:250".
func ByName(name string) (Strategy, error) {
	for _, s := range Extended() {
		if s.Name() == name {
			return s, nil
		}
	}
	switch {
	case name == "Range":
		return Range(), nil
	case name == "Hybrid":
		return Hybrid(DefaultHybridThreshold), nil
	case strings.HasPrefix(name, "Hybrid:"):
		t, err := strconv.Atoi(name[len("Hybrid:"):])
		if err != nil || t <= 0 {
			return nil, fmt.Errorf("partition: bad hybrid threshold in %q (want Hybrid:<positive int>)", name)
		}
		return Hybrid(t), nil
	}
	return nil, fmt.Errorf("partition: unknown strategy %q", name)
}

// ByNames resolves a comma-separated strategy list (each element any name
// ByName accepts; empty elements are skipped) — the shared parser behind
// every -strategies CLI flag. At least one strategy must resolve.
func ByNames(csv string) ([]Strategy, error) {
	var out []Strategy
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("partition: no strategies in %q", csv)
	}
	return out, nil
}

// Names returns the names of the paper's six strategies in table order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name()
	}
	return out
}
