package partition

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// The streaming partitioners below are not part of the paper's evaluated
// set; they implement the related-work algorithms (§5: PowerGraph-style
// greedy streaming partitioning, HDRF) and are used by the ablation
// benchmarks to show how the paper's hash-based design space compares
// against stateful streaming assignment.
//
// All three stateful strategies (Greedy, HDRF, Hybrid) are *prefix
// streaming*: the assignment of edge i depends only on edges[0..i]. HDRF
// uses the partial degrees observed in the stream so far (as in Petroni et
// al.) and Hybrid thresholds on the in-degree observed so far, so none of
// them peeks at future edges. That property is what makes them resumable —
// continuing a retained StreamState over an appended edge suffix produces
// exactly the assignment a one-shot pass over the full edge list would,
// bit for bit.

// Resumable is implemented by strategies whose assignment can be continued
// over an appended edge suffix. Stateful streaming strategies expose their
// per-run state; stateless hash strategies implement SuffixAssigner
// instead (no state to carry).
type Resumable interface {
	Strategy
	// NewStream returns empty resumable state targeting numParts
	// partitions.
	NewStream(numParts int) (*StreamState, error)
}

// SuffixAssigner is implemented by strategies whose per-edge assignment
// depends only on the edge itself (the stateless hash family), so any edge
// suffix can be assigned in isolation.
type SuffixAssigner interface {
	Strategy
	// AssignSuffix assigns edges, writing one PID per edge into out
	// (len(out) == len(edges)).
	AssignSuffix(edges []graph.Edge, out []PID, numParts int) error
}

// streamKind selects the per-edge rule a StreamState applies.
type streamKind uint8

const (
	streamGreedy streamKind = iota
	streamHDRF
	streamHybrid
)

// streamVertex is one vertex's retained streaming state: the partitions it
// has been replicated to and the partial degrees observed so far. Degrees
// and loads are float64 so weighted edges stream through the same tables;
// unweighted edges contribute exactly 1.0, and float64 addition over
// integers below 2^53 is exact, so the unweighted path stays bit-identical
// to the historical integer tables.
type streamVertex struct {
	replicas []PID
	deg      float64 // total partial (weighted) degree (HDRF's θ)
	inDeg    int64   // partial in-degree edge count (Hybrid's threshold)
}

// StreamState is the retained state of a streaming partitioner run: which
// partitions each vertex has been replicated to, per-partition load, and
// the partial degrees observed so far. State is keyed by vertex ID — never
// by dense vertex index — so it stays valid as the graph grows; a
// StreamState may therefore be resumed over an appended edge suffix
// (Assignment.Extend) and produces exactly the assignment a one-shot pass
// over the full edge list would.
//
// A StreamState is not safe for concurrent use; Assignment serializes
// access to its retained state.
type StreamState struct {
	kind      streamKind
	numParts  int
	lambda    float64 // HDRF balance weight
	threshold int64   // Hybrid in-degree cutoff

	load         []float64
	maxLoad      float64
	verts        map[graph.VertexID]*streamVertex
	replicaSlots int64 // Σ len(replicas), for footprint accounting
}

func newStreamState(kind streamKind, numParts int) (*StreamState, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	return &StreamState{
		kind:     kind,
		numParts: numParts,
		load:     make([]float64, numParts),
		verts:    make(map[graph.VertexID]*streamVertex),
	}, nil
}

// NumParts returns the partition count the state targets.
func (st *StreamState) NumParts() int { return st.numParts }

// AssignEdges streams unweighted edges through the state in order, writing
// one PID per edge into out (len(out) == len(edges)). Calling it
// repeatedly over consecutive chunks of one edge list is equivalent to a
// single call over the whole list.
func (st *StreamState) AssignEdges(edges []graph.Edge, out []PID) {
	st.AssignWeightedEdges(edges, nil, out)
}

// AssignWeightedEdges streams edges with per-edge weights (weights[i]
// belongs to edges[i]; nil means weight 1 each) through the degree and
// load tables. An all-ones weighting is bit-identical to AssignEdges.
func (st *StreamState) AssignWeightedEdges(edges []graph.Edge, weights []float64, out []PID) {
	w := 1.0
	switch st.kind {
	case streamGreedy:
		for i, e := range edges {
			if weights != nil {
				w = weights[i]
			}
			out[i] = st.assignGreedy(e, w)
		}
	case streamHDRF:
		for i, e := range edges {
			if weights != nil {
				w = weights[i]
			}
			out[i] = st.assignHDRF(e, w)
		}
	case streamHybrid:
		for i, e := range edges {
			out[i] = st.assignHybrid(e)
		}
	}
}

// MemoryFootprint approximates the bytes retained by the state (used by
// cache layers when an Assignment carrying it is the eviction candidate).
func (st *StreamState) MemoryFootprint() int64 {
	const perVertex = 8 + 8 + 48 // map slot + pointer + streamVertex
	return int64(len(st.load))*8 + int64(len(st.verts))*perVertex + st.replicaSlots*4
}

// vert returns (creating if needed) the state of vertex v.
func (st *StreamState) vert(v graph.VertexID) *streamVertex {
	sv, ok := st.verts[v]
	if !ok {
		sv = &streamVertex{}
		st.verts[v] = sv
	}
	return sv
}

func (sv *streamVertex) has(p PID) bool {
	for _, q := range sv.replicas {
		if q == p {
			return true
		}
	}
	return false
}

func (st *StreamState) place(sv *streamVertex, p PID) {
	if !sv.has(p) {
		sv.replicas = append(sv.replicas, p)
		st.replicaSlots++
	}
}

func (st *StreamState) commit(s, d *streamVertex, p PID, w float64) PID {
	st.place(s, p)
	st.place(d, p)
	st.load[p] += w
	if st.load[p] > st.maxLoad {
		st.maxLoad = st.load[p]
	}
	return p
}

func (st *StreamState) leastLoaded(candidates []PID) PID {
	best := candidates[0]
	for _, p := range candidates[1:] {
		if st.load[p] < st.load[best] {
			best = p
		}
	}
	return best
}

func (st *StreamState) leastLoadedAll(tiebreak uint64) PID {
	best := PID(0)
	for p := 1; p < st.numParts; p++ {
		if st.load[p] < st.load[best] {
			best = PID(p)
		}
	}
	// Deterministic tiebreak among equally loaded partitions so the result
	// does not depend on iteration quirks. Counting pass + indexed rescan
	// instead of materializing the tie list: this runs on every fresh-fresh
	// edge, so it must not allocate.
	ties := 0
	for p := 0; p < st.numParts; p++ {
		if st.load[p] == st.load[best] {
			ties++
		}
	}
	if ties > 1 {
		k := int(tiebreak % uint64(ties))
		for p := 0; p < st.numParts; p++ {
			if st.load[p] == st.load[best] {
				if k == 0 {
					return PID(p)
				}
				k--
			}
		}
	}
	return best
}

func (st *StreamState) assignGreedy(e graph.Edge, w float64) PID {
	sv, dv := st.vert(e.Src), st.vert(e.Dst)
	rs, rd := sv.replicas, dv.replicas
	// Intersection: least-loaded partition holding both endpoints. The scan
	// walks rs in order with a strict < comparison, which reproduces the
	// historical materialize-then-leastLoaded result (first qualifying
	// partition wins ties) without the per-edge intersection slice — on a
	// warm stream almost every edge takes this path, so it must not
	// allocate.
	both := PID(-1)
	for _, p := range rs {
		if dv.has(p) && (both < 0 || st.load[p] < st.load[both]) {
			both = p
		}
	}
	if both >= 0 {
		return st.commit(sv, dv, both, w)
	}
	if len(rs) > 0 && len(rd) > 0 {
		// Cut the vertex whose replicas live on more-loaded partitions:
		// choose least loaded among the union, scanning rs then rd exactly
		// as the historical concatenated slice did.
		best := rs[0]
		for _, p := range rs[1:] {
			if st.load[p] < st.load[best] {
				best = p
			}
		}
		for _, p := range rd {
			if st.load[p] < st.load[best] {
				best = p
			}
		}
		return st.commit(sv, dv, best, w)
	}
	if len(rs) > 0 {
		return st.commit(sv, dv, st.leastLoaded(rs), w)
	}
	if len(rd) > 0 {
		return st.commit(sv, dv, st.leastLoaded(rd), w)
	}
	return st.commit(sv, dv, st.leastLoadedAll(rng.Combine2(uint64(e.Src), uint64(e.Dst))), w)
}

func (st *StreamState) assignHDRF(e graph.Edge, w float64) PID {
	sv, dv := st.vert(e.Src), st.vert(e.Dst)
	// Partial degrees: count the current edge first, so a first-seen
	// endpoint has degree w and θ is always well defined.
	sv.deg += w
	dv.deg += w
	degS, degD := sv.deg, dv.deg
	// Normalized "partial degrees" θ: the lower-degree endpoint should be
	// kept whole; the higher-degree one is cheap to replicate.
	thetaS := degS / (degS + degD)
	thetaD := 1 - thetaS

	var bestP PID
	bestScore := -1.0
	spread := st.maxLoad - st.minLoadVal()
	if spread == 0 {
		spread = 1
	}
	for p := 0; p < st.numParts; p++ {
		pid := PID(p)
		score := 0.0
		if sv.has(pid) {
			score += 1 + thetaD // g(s): replica present, weighted by other side's θ
		}
		if dv.has(pid) {
			score += 1 + thetaS
		}
		score += st.lambda * (st.maxLoad - st.load[p]) / spread
		if score > bestScore {
			bestScore = score
			bestP = pid
		}
	}
	return st.commit(sv, dv, bestP, w)
}

// assignHybrid applies the PowerLyra rule on the in-degree observed so
// far: while a destination looks low-degree its in-edges are grouped by
// destination; once its observed in-degree crosses the threshold, further
// in-edges are spread by source hash.
func (st *StreamState) assignHybrid(e graph.Edge) PID {
	dv := st.vert(e.Dst)
	dv.inDeg++
	if dv.inDeg > st.threshold {
		return PID(rng.Mix64(uint64(e.Src)) % uint64(st.numParts))
	}
	return PID(rng.Mix64(uint64(e.Dst)) % uint64(st.numParts))
}

func (st *StreamState) minLoadVal() float64 {
	m := st.load[0]
	for _, l := range st.load[1:] {
		if l < m {
			m = l
		}
	}
	return m
}

// streamPartition is the shared one-shot Partition of the streaming
// strategies: fresh state, one pass, block at a time — a block-backed
// graph streams through its compressed tier without ever materializing
// the dense edge list (chunked assignment is exactly equivalent to a
// single pass; see AssignEdges).
func streamPartition(r Resumable, g *graph.Graph, numParts int) ([]PID, error) {
	st, err := r.NewStream(numParts)
	if err != nil {
		return nil, err
	}
	out := make([]PID, g.NumEdges())
	if err := g.ForEachEdgeBlock(func(start int, edges []graph.Edge, weights []float64) error {
		st.AssignWeightedEdges(edges, weights, out[start:start+len(edges)])
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// greedyStrategy implements PowerGraph's greedy vertex-cut heuristic:
// prefer a partition that already holds both endpoints, then one that holds
// either endpoint (breaking ties by load), then the least-loaded partition.
type greedyStrategy struct{}

// Greedy returns the PowerGraph-style greedy streaming strategy.
func Greedy() Strategy { return greedyStrategy{} }

func (greedyStrategy) Name() string { return "Greedy" }

func (greedyStrategy) NewStream(numParts int) (*StreamState, error) {
	return newStreamState(streamGreedy, numParts)
}

func (s greedyStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	return streamPartition(s, g, numParts)
}

// hdrfStrategy implements High-Degree Replicated First (Petroni et al.):
// like greedy, but when scoring partitions it prefers to cut the endpoint
// with the higher partial degree observed in the stream, plus an explicit
// load-balance term weighted by lambda.
type hdrfStrategy struct {
	lambda float64
}

// HDRF returns the High-Degree-Replicated-First streaming strategy with
// balance weight lambda (1.0 is the authors' default).
func HDRF(lambda float64) Strategy { return hdrfStrategy{lambda: lambda} }

func (hdrfStrategy) Name() string { return "HDRF" }

// Key distinguishes lambda variants in caches: the balance weight changes
// the assignment, so two HDRF instances must not share cached artifacts.
func (h hdrfStrategy) Key() string { return fmt.Sprintf("HDRF:%g", h.lambda) }

func (h hdrfStrategy) NewStream(numParts int) (*StreamState, error) {
	st, err := newStreamState(streamHDRF, numParts)
	if err != nil {
		return nil, err
	}
	st.lambda = h.lambda
	return st, nil
}

func (h hdrfStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	return streamPartition(h, g, numParts)
}
