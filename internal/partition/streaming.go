package partition

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// The streaming partitioners below are not part of the paper's evaluated
// set; they implement the related-work algorithms (§5: Fennel-style greedy
// streaming partitioning, HDRF) and are used by the ablation benchmarks to
// show how the paper's hash-based design space compares against stateful
// streaming assignment.

// greedyStrategy implements PowerGraph's greedy vertex-cut heuristic:
// prefer a partition that already holds both endpoints, then one that holds
// either endpoint (breaking ties by load), then the least-loaded partition.
type greedyStrategy struct{}

// Greedy returns the PowerGraph-style greedy streaming strategy.
func Greedy() Strategy { return greedyStrategy{} }

func (greedyStrategy) Name() string { return "Greedy" }

func (greedyStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	st := newStreamState(g, numParts)
	edges := g.Edges()
	out := make([]PID, len(edges))
	for i, e := range edges {
		out[i] = st.assignGreedy(e)
	}
	return out, nil
}

// hdrfStrategy implements High-Degree Replicated First (Petroni et al.):
// like greedy, but when only one endpoint is already placed it prefers to
// cut the higher-degree vertex, plus an explicit load-balance term weighted
// by lambda.
type hdrfStrategy struct {
	lambda float64
}

// HDRF returns the High-Degree-Replicated-First streaming strategy with
// balance weight lambda (1.0 is the authors' default).
func HDRF(lambda float64) Strategy { return hdrfStrategy{lambda: lambda} }

func (hdrfStrategy) Name() string { return "HDRF" }

// Key distinguishes lambda variants in caches: the balance weight changes
// the assignment, so two HDRF instances must not share cached artifacts.
func (h hdrfStrategy) Key() string { return fmt.Sprintf("HDRF:%g", h.lambda) }

func (h hdrfStrategy) Partition(g *graph.Graph, numParts int) ([]PID, error) {
	if err := checkParts(numParts); err != nil {
		return nil, err
	}
	st := newStreamState(g, numParts)
	edges := g.Edges()
	out := make([]PID, len(edges))
	for i, e := range edges {
		out[i] = st.assignHDRF(e, h.lambda)
	}
	return out, nil
}

// streamState tracks, while streaming edges, which partitions each vertex
// has been replicated to and the current per-partition load.
type streamState struct {
	numParts int
	load     []int64
	// replicas[denseIdx] is a bitset of partitions (small part counts) or a
	// map fallback; we use a map[int32]map[PID] only when parts > 64 would
	// not fit; for simplicity and because experiments use ≤ 1024 parts, we
	// store a per-vertex slice of PIDs (replica lists are short in
	// practice: the whole point of vertex cuts is bounding them).
	replicas [][]PID
	g        *graph.Graph
	maxLoad  int64
	minLoad  int64
}

func newStreamState(g *graph.Graph, numParts int) *streamState {
	g.Vertices() // force index build
	return &streamState{
		numParts: numParts,
		load:     make([]int64, numParts),
		replicas: make([][]PID, g.NumVertices()),
		g:        g,
	}
}

func (st *streamState) has(v int32, p PID) bool {
	for _, q := range st.replicas[v] {
		if q == p {
			return true
		}
	}
	return false
}

func (st *streamState) place(v int32, p PID) {
	if !st.has(v, p) {
		st.replicas[v] = append(st.replicas[v], p)
	}
}

func (st *streamState) commit(s, d int32, p PID) PID {
	st.place(s, p)
	st.place(d, p)
	st.load[p]++
	if st.load[p] > st.maxLoad {
		st.maxLoad = st.load[p]
	}
	return p
}

func (st *streamState) leastLoaded(candidates []PID) PID {
	best := candidates[0]
	for _, p := range candidates[1:] {
		if st.load[p] < st.load[best] {
			best = p
		}
	}
	return best
}

func (st *streamState) leastLoadedAll(tiebreak uint64) PID {
	best := PID(0)
	for p := 1; p < st.numParts; p++ {
		if st.load[p] < st.load[best] {
			best = PID(p)
		}
	}
	// Deterministic tiebreak among equally loaded partitions so the result
	// does not depend on iteration quirks.
	var ties []PID
	for p := 0; p < st.numParts; p++ {
		if st.load[p] == st.load[best] {
			ties = append(ties, PID(p))
		}
	}
	if len(ties) > 1 {
		return ties[tiebreak%uint64(len(ties))]
	}
	return best
}

func intersect(a, b []PID) []PID {
	var out []PID
	for _, p := range a {
		for _, q := range b {
			if p == q {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func (st *streamState) assignGreedy(e graph.Edge) PID {
	si, _ := st.g.Index(e.Src)
	di, _ := st.g.Index(e.Dst)
	rs, rd := st.replicas[si], st.replicas[di]
	if both := intersect(rs, rd); len(both) > 0 {
		return st.commit(si, di, st.leastLoaded(both))
	}
	if len(rs) > 0 && len(rd) > 0 {
		// Cut the vertex whose replicas live on more-loaded partitions:
		// choose least loaded among the union.
		union := append(append([]PID(nil), rs...), rd...)
		return st.commit(si, di, st.leastLoaded(union))
	}
	if len(rs) > 0 {
		return st.commit(si, di, st.leastLoaded(rs))
	}
	if len(rd) > 0 {
		return st.commit(si, di, st.leastLoaded(rd))
	}
	return st.commit(si, di, st.leastLoadedAll(rng.Combine2(uint64(e.Src), uint64(e.Dst))))
}

func (st *streamState) assignHDRF(e graph.Edge, lambda float64) PID {
	si, _ := st.g.Index(e.Src)
	di, _ := st.g.Index(e.Dst)
	degS := float64(st.g.OutDegree(e.Src) + st.g.InDegree(e.Src))
	degD := float64(st.g.OutDegree(e.Dst) + st.g.InDegree(e.Dst))
	// Normalized "partial degrees" θ: the lower-degree endpoint should be
	// kept whole; the higher-degree one is cheap to replicate.
	thetaS := degS / (degS + degD)
	thetaD := 1 - thetaS

	var bestP PID
	bestScore := -1.0
	spread := float64(st.maxLoad - st.minLoadVal())
	if spread == 0 {
		spread = 1
	}
	for p := 0; p < st.numParts; p++ {
		pid := PID(p)
		score := 0.0
		if st.has(si, pid) {
			score += 1 + thetaD // g(s): replica present, weighted by other side's θ
		}
		if st.has(di, pid) {
			score += 1 + thetaS
		}
		score += lambda * float64(st.maxLoad-st.load[p]) / spread
		if score > bestScore {
			bestScore = score
			bestP = pid
		}
	}
	return st.commit(si, di, bestP)
}

func (st *streamState) minLoadVal() int64 {
	m := st.load[0]
	for _, l := range st.load[1:] {
		if l < m {
			m = l
		}
	}
	return m
}
