package partition

import (
	"testing"

	"cutfit/internal/graph"
)

func TestHybridSplitsHubsGroupsLeaves(t *testing.T) {
	// A hub vertex 100 with many in-edges and a low-degree vertex 200.
	var edges []graph.Edge
	for i := int64(0); i < 50; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 100})
	}
	edges = append(edges,
		graph.Edge{Src: 1, Dst: 200},
		graph.Edge{Src: 2, Dst: 200},
		graph.Edge{Src: 3, Dst: 200},
	)
	g := graph.FromEdges(edges)
	assign, err := Hybrid(10).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The hub's in-edges must land on more than one partition.
	hubParts := map[PID]bool{}
	for i := 0; i < 50; i++ {
		hubParts[assign[i]] = true
	}
	if len(hubParts) < 2 {
		t.Fatalf("hub in-edges on %d partitions, want spread", len(hubParts))
	}
	// The low-degree vertex's in-edges must be collocated.
	if assign[50] != assign[51] || assign[51] != assign[52] {
		t.Fatalf("low-degree in-edges split: %v", assign[50:53])
	}
}

func TestHybridThresholdValidation(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Hybrid(0).Partition(g, 4); err == nil {
		t.Fatal("threshold 0 should error")
	}
}

func TestHybridLowersReplicationOnSkew(t *testing.T) {
	// On a skewed graph hybrid should beat plain DC on replication factor.
	var edges []graph.Edge
	for i := int64(1); i <= 400; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0}) // hub
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i%20 + 500)})
	}
	g := graph.FromEdges(edges)
	hy, err := Hybrid(50).Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := DestinationCut().Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid spreads the hub while keeping small vertices whole; its
	// balance must be far better than DC's (DC puts all hub edges in one
	// partition).
	counts := func(assign []PID) (max int) {
		var c [16]int
		for _, p := range assign {
			c[p]++
		}
		for _, n := range c {
			if n > max {
				max = n
			}
		}
		return max
	}
	if counts(hy) >= counts(dc) {
		t.Fatalf("hybrid max partition %d not below DC %d", counts(hy), counts(dc))
	}
}

func TestRangeContiguousBlocks(t *testing.T) {
	// Edges from consecutive IDs: range must produce non-decreasing PIDs
	// as the source ID grows.
	var edges []graph.Edge
	for i := int64(0); i < 100; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	g := graph.FromEdges(edges)
	assign, err := Range().Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(assign); i++ {
		if assign[i] < assign[i-1] {
			t.Fatalf("range PIDs not monotone at edge %d: %d then %d", i, assign[i-1], assign[i])
		}
	}
	// All four partitions used.
	used := map[PID]bool{}
	for _, p := range assign {
		used[p] = true
	}
	if len(used) != 4 {
		t.Fatalf("partitions used = %d, want 4", len(used))
	}
}

func TestRangeBeatsSCOnGridLocality(t *testing.T) {
	// On a path graph (the extreme of ID locality) range partitioning cuts
	// only the block boundary vertices; SC's modulo striping cuts nearly
	// everything.
	var edges []graph.Edge
	for i := int64(0); i < 1000; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)},
			graph.Edge{Src: graph.VertexID(i + 1), Dst: graph.VertexID(i)})
	}
	g := graph.FromEdges(edges)
	cutOf := func(s Strategy) int {
		assign, err := s.Partition(g, 16)
		if err != nil {
			t.Fatal(err)
		}
		cut := 0
		for _, parts := range replicasOf(g, assign) {
			if len(parts) > 1 {
				cut++
			}
		}
		return cut
	}
	rangeCut := cutOf(Range())
	scCut := cutOf(SourceCut())
	if rangeCut*10 > scCut {
		t.Fatalf("range cut %d not an order below SC cut %d", rangeCut, scCut)
	}
}

func TestRangeEmptyGraph(t *testing.T) {
	assign, err := Range().Partition(graph.New(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 0 {
		t.Fatal("empty graph should give empty assignment")
	}
}

func TestExtraStrategiesInRange(t *testing.T) {
	g := randomGraph(5, 100, 500)
	for _, s := range []Strategy{Hybrid(10), Range()} {
		for _, parts := range []int{1, 3, 16} {
			assign, err := s.Partition(g, parts)
			if err != nil {
				t.Fatalf("%s/%d: %v", s.Name(), parts, err)
			}
			for i, p := range assign {
				if p < 0 || int(p) >= parts {
					t.Fatalf("%s/%d: edge %d -> %d", s.Name(), parts, i, p)
				}
			}
		}
	}
}
