package gen

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// PreferentialAttachment generates an undirected Barabási–Albert graph with
// n vertices, each new vertex attaching to m distinct existing vertices
// chosen with probability proportional to their degree. The result is
// returned as a directed graph storing both orientations of every edge, so
// its SymmetryPct is exactly 100 — matching how the paper's undirected
// datasets (YouTube, Orkut) appear under GraphX's directed edge model.
func PreferentialAttachment(n, m int, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: preferential attachment needs n > 0, got %d", n)
	}
	if m <= 0 || m >= n {
		return nil, fmt.Errorf("gen: preferential attachment needs 0 < m < n, got m=%d n=%d", m, n)
	}
	r := rng.New(seed)
	// repeated holds one entry per edge endpoint; sampling uniformly from
	// it is exactly degree-proportional sampling.
	repeated := make([]int64, 0, 2*m*n)
	type pair struct{ a, b int64 }
	seen := make(map[pair]struct{}, m*n)
	edges := make([]graph.Edge, 0, 2*m*n)

	addEdge := func(u, v int64) {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)},
			graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(u)},
		)
		repeated = append(repeated, u, v)
		if u < v {
			seen[pair{u, v}] = struct{}{}
		} else {
			seen[pair{v, u}] = struct{}{}
		}
	}
	has := func(u, v int64) bool {
		if u > v {
			u, v = v, u
		}
		_, ok := seen[pair{u, v}]
		return ok
	}

	// Seed clique over the first m+1 vertices so every early vertex has
	// positive degree.
	for u := int64(0); u <= int64(m); u++ {
		for v := u + 1; v <= int64(m); v++ {
			addEdge(u, v)
		}
	}
	for v := int64(m) + 1; v < int64(n); v++ {
		attached := 0
		for attached < m {
			t := repeated[r.Intn(len(repeated))]
			if t == v || has(v, t) {
				continue
			}
			addEdge(v, t)
			attached++
		}
	}
	return graph.FromEdges(edges), nil
}
