package gen

import (
	"testing"
	"testing/quick"

	"cutfit/internal/graph"
)

func TestRMATValidate(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 40, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 5, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 5, EdgeFactor: 1, A: 0.5, B: 0.5, C: 0.25, D: 0.25}, // sum > 1
		{Scale: 5, EdgeFactor: 1, A: 0.5, B: 0.5, C: 0, D: 0},       // zero quadrant
		{Scale: 5, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Noise: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
	}
	if err := DefaultRMAT(10, 8, 1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRMATDeterministicAndSized(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 42)
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("RMAT not deterministic in edge count")
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	if a.NumEdges() != 8*1024 {
		t.Fatalf("edges = %d, want %d", a.NumEdges(), 8*1024)
	}
	// All vertex IDs fit in the 2^scale space.
	for _, e := range a.Edges() {
		if e.Src < 0 || e.Src >= 1024 || e.Dst < 0 || e.Dst >= 1024 {
			t.Fatalf("edge %v out of ID space", e)
		}
	}
}

func TestRMATSkewProducesHubs(t *testing.T) {
	g, err := RMAT(DefaultRMAT(12, 16, 7))
	if err != nil {
		t.Fatal(err)
	}
	var maxDeg int32
	for _, d := range g.OutDegrees() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(maxDeg) < 5*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", maxDeg, mean)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("V = %d, want 500", g.NumVertices())
	}
	if pct := g.SymmetryPct(); pct != 100 {
		t.Fatalf("symmetry = %g, want 100", pct)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
	// m edges per new vertex, both directions stored.
	wantMin := 2 * 3 * (500 - 4)
	if g.NumEdges() < wantMin {
		t.Fatalf("edges = %d, want >= %d", g.NumEdges(), wantMin)
	}
}

func TestPreferentialAttachmentErrors(t *testing.T) {
	if _, err := PreferentialAttachment(0, 1, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := PreferentialAttachment(10, 0, 1); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := PreferentialAttachment(5, 5, 1); err == nil {
		t.Error("m>=n should error")
	}
}

func TestRoadGenerator(t *testing.T) {
	cfg := RoadConfig{Rows: 20, Cols: 25, EdgeProb: 0.4, DiagProb: 0.05, Fragments: 7, Seed: 3}
	g, err := Road(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pct := g.SymmetryPct(); pct != 100 {
		t.Fatalf("symmetry = %g, want 100", pct)
	}
	_, count := g.ConnectedComponents()
	if count != 8 {
		t.Fatalf("components = %d, want 8 (grid + 7 fragments)", count)
	}
	// Mean degree should be road-like (well under 8).
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if mean < 1.5 || mean > 6 {
		t.Fatalf("mean directed degree %.2f not road-like", mean)
	}
}

func TestRoadValidate(t *testing.T) {
	bad := []RoadConfig{
		{Rows: 1, Cols: 5, EdgeProb: 0.5},
		{Rows: 5, Cols: 5, EdgeProb: -0.1},
		{Rows: 5, Cols: 5, EdgeProb: 0.5, DiagProb: 2},
		{Rows: 5, Cols: 5, EdgeProb: 0.5, Fragments: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestRoadMainGridConnected(t *testing.T) {
	// Even at low edge probability the backbone keeps the grid connected.
	g, err := Road(RoadConfig{Rows: 12, Cols: 12, EdgeProb: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
}

func TestDedup(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	d := Dedup(g)
	if d.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", d.NumEdges())
	}
}

func TestDropSelfLoops(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}})
	d := DropSelfLoops(g)
	if d.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", d.NumEdges())
	}
}

func TestSymmetrizeReachesTarget(t *testing.T) {
	for _, target := range []float64{30, 54.34, 75, 100} {
		g, err := RMAT(DefaultRMAT(10, 8, 5))
		if err != nil {
			t.Fatal(err)
		}
		g = DropSelfLoops(Dedup(g))
		sym, err := Symmetrize(g, target, 6)
		if err != nil {
			t.Fatal(err)
		}
		got := sym.SymmetryPct()
		if got < target-1 {
			t.Errorf("target %g%%: got %g%%", target, got)
		}
	}
}

func TestSymmetrizeRejectsBadTarget(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Symmetrize(g, -1, 0); err == nil {
		t.Error("negative target should error")
	}
	if _, err := Symmetrize(g, 101, 0); err == nil {
		t.Error("target > 100 should error")
	}
}

func TestInjectLeaves(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	out, err := InjectLeaves(g, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVertices() != 7 {
		t.Fatalf("V = %d, want 7", out.NumVertices())
	}
	zi, zo := out.ZeroDegreePct()
	if zi != 3.0/7*100 {
		t.Fatalf("zeroIn = %g", zi)
	}
	if zo != 2.0/7*100 {
		t.Fatalf("zeroOut = %g", zo)
	}
}

func TestInjectLeavesTarget(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	g = DropSelfLoops(Dedup(g))
	out, err := InjectLeavesTarget(g, 40, 15, 12)
	if err != nil {
		t.Fatal(err)
	}
	zi, zo := out.ZeroDegreePct()
	if zi < 35 || zi > 45 {
		t.Fatalf("zeroIn = %g, want ≈40", zi)
	}
	// zeroOut may already exceed the target naturally; it must be >= the
	// natural floor but the injector must not overshoot much beyond it.
	if zo > 30 {
		t.Fatalf("zeroOut = %g, unexpectedly high", zo)
	}
}

func TestInjectLeavesTargetErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	if _, err := InjectLeavesTarget(g, 60, 50, 1); err == nil {
		t.Error("targets summing over 100 should error")
	}
	if _, err := InjectLeavesTarget(g, -5, 0, 1); err == nil {
		t.Error("negative target should error")
	}
}

func TestConnectSingleComponent(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 5, Dst: 6}, {Src: 10, Dst: 11},
	})
	c := Connect(g)
	if _, count := c.ConnectedComponents(); count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
	// Already-connected graphs are returned unchanged.
	c2 := Connect(c)
	if c2.NumEdges() != c.NumEdges() {
		t.Fatal("Connect on connected graph should be a no-op")
	}
}

func TestCloseTrianglesAddsTriangles(t *testing.T) {
	// A star has no triangles but plenty of wedges.
	var edges []graph.Edge
	for i := int64(1); i <= 20; i++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: graph.VertexID(i)},
			graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	g := graph.FromEdges(edges)
	if g.TotalTriangles() != 0 {
		t.Fatal("setup: star should have no triangles")
	}
	out, err := CloseTriangles(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalTriangles() < 5 {
		t.Fatalf("triangles = %d, want >= 5", out.TotalTriangles())
	}
	if pct := out.SymmetryPct(); pct != 100 {
		t.Fatalf("closure broke symmetry: %g", pct)
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g, err := RMAT(DefaultRMAT(8, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	r := Relabel(g, 99)
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatal("relabel changed size")
	}
	if r.TotalTriangles() != g.TotalTriangles() {
		t.Fatal("relabel changed triangle count")
	}
	if _, c1 := g.ConnectedComponents(); true {
		if _, c2 := r.ConnectedComponents(); c1 != c2 {
			t.Fatal("relabel changed component count")
		}
	}
}

func TestPairSubsetPreservesSymmetry(t *testing.T) {
	g, err := PreferentialAttachment(300, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := PairSubset(g, 0.6, 22)
	if err != nil {
		t.Fatal(err)
	}
	if pct := sub.SymmetryPct(); pct != 100 {
		t.Fatalf("pair subset broke symmetry: %g%%", pct)
	}
	frac := float64(sub.NumEdges()) / float64(g.NumEdges())
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("kept fraction %.2f, want ≈0.6", frac)
	}
}

func TestPairSubsetIsSubset(t *testing.T) {
	check := func(seed uint64) bool {
		g, err := RMAT(DefaultRMAT(8, 6, seed))
		if err != nil {
			return false
		}
		sub, err := PairSubset(g, 0.5, seed+1)
		if err != nil {
			return false
		}
		have := map[graph.Edge]int{}
		for _, e := range g.Edges() {
			have[e]++
		}
		for _, e := range sub.Edges() {
			have[e]--
			if have[e] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSubsetBounds(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	if _, err := EdgeSubset(g, 0, 1); err == nil {
		t.Error("fraction 0 should error")
	}
	if _, err := EdgeSubset(g, 1.5, 1); err == nil {
		t.Error("fraction > 1 should error")
	}
	sub, err := EdgeSubset(g, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() < 1 || sub.NumEdges() > 2 {
		t.Fatalf("subset edges = %d", sub.NumEdges())
	}
}

func TestAddFragments(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	out, err := AddFragments(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, count := out.ConnectedComponents(); count != 6 {
		t.Fatalf("components = %d, want 6", count)
	}
	if pct := out.SymmetryPct(); pct < 50 {
		t.Fatalf("fragments should be bidirected, symmetry %g", pct)
	}
}

func TestRMATStreamMatchesRMAT(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 99)
	want, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []graph.Edge
	batches := 0
	if err := RMATStream(cfg, 1000, func(batch []graph.Edge) error {
		streamed = append(streamed, batch...)
		batches++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	we := want.Edges()
	if len(streamed) != len(we) {
		t.Fatalf("streamed %d edges, want %d", len(streamed), len(we))
	}
	for i := range we {
		if streamed[i] != we[i] {
			t.Fatalf("edge %d: streamed %v, want %v", i, streamed[i], we[i])
		}
	}
	if wantBatches := (len(we) + 999) / 1000; batches != wantBatches {
		t.Fatalf("delivered %d batches, want %d", batches, wantBatches)
	}

	bg, err := RMATBlocks(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bg.BlockBacked() {
		t.Fatal("RMATBlocks graph not block-backed")
	}
	if bg.Fingerprint() != want.Fingerprint() {
		t.Fatalf("block graph fingerprint %016x differs from dense %016x", bg.Fingerprint(), want.Fingerprint())
	}
}
