package gen

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// ErdosRenyi generates a directed G(n, m) random graph: m directed edges
// drawn uniformly without self loops (duplicates possible, as in a
// multigraph edge stream). It is the degree-homogeneous null model against
// which the skew-sensitive behavior of partitioners is compared in tests
// and ablations.
func ErdosRenyi(n, m int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Erdos-Renyi needs n >= 2, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: Erdos-Renyi needs m >= 0, got %d", m)
	}
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := int64(r.Intn(n))
		v := int64(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return graph.FromEdges(edges), nil
}

// WattsStrogatzConfig parameterizes the small-world generator.
type WattsStrogatzConfig struct {
	N int // vertices
	K int // each vertex connects to its K nearest ring neighbors (even)
	// Beta is the rewiring probability: 0 keeps the ring lattice (high
	// clustering, high diameter), 1 approaches a random graph.
	Beta float64
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c WattsStrogatzConfig) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("gen: Watts-Strogatz needs N >= 4, got %d", c.N)
	}
	if c.K < 2 || c.K%2 != 0 || c.K >= c.N {
		return fmt.Errorf("gen: Watts-Strogatz needs even 2 <= K < N, got K=%d N=%d", c.K, c.N)
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("gen: Watts-Strogatz beta %g out of [0,1]", c.Beta)
	}
	return nil
}

// WattsStrogatz generates an undirected small-world graph (stored with
// both edge orientations): a ring lattice where each vertex connects to
// its K nearest neighbors, with each edge rewired to a random endpoint
// with probability Beta. Ring order means vertex IDs encode locality, so
// this family sits between road networks (pure locality) and social
// graphs (none) — useful for partitioner locality ablations.
func WattsStrogatz(cfg WattsStrogatzConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	type pair struct{ a, b int64 }
	canon := func(a, b int64) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	have := make(map[pair]struct{}, cfg.N*cfg.K/2)
	var order []pair
	addEdge := func(u, v int64) bool {
		if u == v {
			return false
		}
		k := canon(u, v)
		if _, ok := have[k]; ok {
			return false
		}
		have[k] = struct{}{}
		order = append(order, k)
		return true
	}
	n := int64(cfg.N)
	for u := int64(0); u < n; u++ {
		for j := 1; j <= cfg.K/2; j++ {
			addEdge(u, (u+int64(j))%n)
		}
	}
	// Rewire: with probability Beta replace the far endpoint.
	for i, e := range order {
		if r.Float64() >= cfg.Beta {
			continue
		}
		delete(have, e)
		for tries := 0; tries < 100; tries++ {
			w := int64(r.Intn(cfg.N))
			k := canon(e.a, w)
			if e.a == w {
				continue
			}
			if _, dup := have[k]; dup {
				continue
			}
			have[k] = struct{}{}
			order[i] = k
			break
		}
		if _, ok := have[canon(order[i].a, order[i].b)]; !ok {
			// Rewiring failed after all tries; restore the original edge.
			have[e] = struct{}{}
			order[i] = e
		}
	}
	edges := make([]graph.Edge, 0, 2*len(order))
	for _, e := range order {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(e.a), Dst: graph.VertexID(e.b)},
			graph.Edge{Src: graph.VertexID(e.b), Dst: graph.VertexID(e.a)},
		)
	}
	return graph.FromEdges(edges), nil
}
