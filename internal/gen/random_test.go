package gen

import (
	"testing"
	"testing/quick"
)

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 500 {
		t.Fatalf("edges = %d, want 500", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Src == e.Dst {
			t.Fatal("self loop in Erdos-Renyi output")
		}
		if e.Src < 0 || e.Src >= 100 || e.Dst < 0 || e.Dst >= 100 {
			t.Fatalf("edge %v out of vertex space", e)
		}
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(1, 5, 1); err == nil {
		t.Error("n < 2 should error")
	}
	if _, err := ErdosRenyi(5, -1, 1); err == nil {
		t.Error("negative m should error")
	}
}

func TestErdosRenyiDegreeHomogeneous(t *testing.T) {
	g, err := ErdosRenyi(200, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	var maxDeg int32
	for _, d := range g.OutDegrees() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(maxDeg) > 3*mean {
		t.Fatalf("max out-degree %d too skewed for ER (mean %.1f)", maxDeg, mean)
	}
}

func TestWattsStrogatzValidate(t *testing.T) {
	bad := []WattsStrogatzConfig{
		{N: 3, K: 2},
		{N: 10, K: 3}, // odd K
		{N: 10, K: 0},
		{N: 10, K: 10}, // K >= N
		{N: 10, K: 4, Beta: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestWattsStrogatzRingLattice(t *testing.T) {
	// Beta = 0: pure ring lattice with exactly N*K/2 undirected edges,
	// connected, every vertex degree K.
	g, err := WattsStrogatz(WattsStrogatzConfig{N: 30, K: 4, Beta: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2*30*4/2 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 2*30*4/2)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("components = %d", count)
	}
	for _, d := range g.OutDegrees() {
		if d != 4 {
			t.Fatalf("lattice degree %d, want 4", d)
		}
	}
	if pct := g.SymmetryPct(); pct != 100 {
		t.Fatalf("symmetry = %g", pct)
	}
	// Ring lattice with K=4 has triangles.
	if g.TotalTriangles() == 0 {
		t.Fatal("ring lattice should have triangles")
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	lattice, err := WattsStrogatz(WattsStrogatzConfig{N: 200, K: 4, Beta: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := WattsStrogatz(WattsStrogatzConfig{N: 200, K: 4, Beta: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dl := lattice.ApproxDiameter(4, 1)
	dr := rewired.ApproxDiameter(4, 1)
	if dr >= dl {
		t.Fatalf("rewiring did not shrink diameter: %d -> %d", dl, dr)
	}
}

func TestWattsStrogatzEdgeCountStable(t *testing.T) {
	check := func(seed uint64) bool {
		g, err := WattsStrogatz(WattsStrogatzConfig{N: 40, K: 4, Beta: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		// Rewiring preserves the number of undirected edges.
		return g.NumEdges() == 2*40*4/2 && g.SymmetryPct() == 100
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
