package gen

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// RoadConfig parameterizes the road-network generator: a planar grid whose
// main component is a random spanning tree plus probabilistic extra grid
// edges, and a population of small detached fragments. The output matches
// the structural profile of the SNAP road networks used in the paper:
// symmetric edges, mean degree ≈ 2.8, very few triangles, thousands of
// connected components, and effectively unbounded diameter.
type RoadConfig struct {
	Rows, Cols int // dimensions of the main grid component
	// EdgeProb is the probability of each grid edge beyond the spanning
	// backbone. The backbone contributes mean undirected degree ≈ 2, each
	// unit of EdgeProb ≈ 1 more; 0.4 matches real road networks (≈ 2.8).
	EdgeProb float64
	// DiagProb adds the diagonal of a grid cell with this probability,
	// creating the occasional triangle found in real road networks.
	DiagProb float64
	// Fragments is the number of additional small detached components
	// (paths of 2–6 vertices), so the total component count is Fragments+1.
	Fragments int
	Seed      uint64
}

// Validate reports whether the configuration is usable.
func (c RoadConfig) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("gen: road grid must be at least 2x2, got %dx%d", c.Rows, c.Cols)
	}
	if c.EdgeProb < 0 || c.EdgeProb > 1 {
		return fmt.Errorf("gen: road edge probability %g out of [0,1]", c.EdgeProb)
	}
	if c.DiagProb < 0 || c.DiagProb > 1 {
		return fmt.Errorf("gen: road diagonal probability %g out of [0,1]", c.DiagProb)
	}
	if c.Fragments < 0 {
		return fmt.Errorf("gen: road fragments %d must be non-negative", c.Fragments)
	}
	return nil
}

// Road generates a road-network-like graph. Vertex IDs are assigned in
// row-major grid order, so consecutive IDs are geographically adjacent —
// the locality the paper's SC/DC partitioners are designed to exploit.
// Both orientations of every edge are stored (SymmetryPct = 100), and the
// main grid is guaranteed connected by a random spanning tree.
func Road(cfg RoadConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	// horiz[row][col] is the edge (row,col)-(row,col+1); vert[row][col] is
	// (row,col)-(row+1,col).
	horiz := make([][]bool, cfg.Rows)
	vert := make([][]bool, cfg.Rows)
	for row := 0; row < cfg.Rows; row++ {
		horiz[row] = make([]bool, cfg.Cols)
		vert[row] = make([]bool, cfg.Cols)
	}
	// Spanning tree: every vertex except the origin attaches to its left
	// or upper neighbor, chosen at random where both exist.
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			switch {
			case row == 0 && col == 0:
			case row == 0:
				horiz[row][col-1] = true
			case col == 0:
				vert[row-1][col] = true
			default:
				if r.Float64() < 0.5 {
					horiz[row][col-1] = true
				} else {
					vert[row-1][col] = true
				}
			}
		}
	}
	// Extra probabilistic grid edges on top of the tree.
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			if col+1 < cfg.Cols && !horiz[row][col] && r.Float64() < cfg.EdgeProb {
				horiz[row][col] = true
			}
			if row+1 < cfg.Rows && !vert[row][col] && r.Float64() < cfg.EdgeProb {
				vert[row][col] = true
			}
		}
	}

	id := func(row, col int) int64 { return int64(row*cfg.Cols + col) }
	est := cfg.Rows * cfg.Cols * 3
	edges := make([]graph.Edge, 0, est)
	add := func(u, v int64) {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)},
			graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(u)},
		)
	}
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			if horiz[row][col] {
				add(id(row, col), id(row, col+1))
			}
			if vert[row][col] {
				add(id(row, col), id(row+1, col))
			}
			if row+1 < cfg.Rows && col+1 < cfg.Cols && r.Float64() < cfg.DiagProb {
				add(id(row, col), id(row+1, col+1))
			}
		}
	}
	// Detached fragments: short paths with fresh IDs beyond the grid.
	next := int64(cfg.Rows * cfg.Cols)
	for f := 0; f < cfg.Fragments; f++ {
		length := 2 + r.Intn(5)
		for i := 0; i < length-1; i++ {
			add(next+int64(i), next+int64(i)+1)
		}
		next += int64(length)
	}
	return graph.FromEdges(edges), nil
}
