// Package gen synthesizes graphs with controlled structural properties:
// R-MAT power-law graphs, preferential-attachment graphs, and perturbed
// planar grids that stand in for the road networks of the paper's dataset
// collection. All generators are deterministic functions of their seed.
//
// The paper evaluates on nine real datasets (SNAP graphs and Twitter
// crawls). Those are unavailable here, so internal/datasets composes these
// generators into analogs matched on the structural axes the paper analyzes:
// degree skew, edge symmetry, zero-degree fractions, triangle density,
// component count and diameter class.
package gen

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// RMATConfig parameterizes the recursive-matrix (R-MAT / Kronecker) graph
// generator of Chakrabarti, Zhan and Faloutsos. The four quadrant
// probabilities A, B, C, D must be positive and sum to 1; A >> D produces
// the heavy-tailed degree distributions typical of social graphs.
type RMATConfig struct {
	Scale      int     // number of vertices is 2^Scale
	EdgeFactor float64 // edges ≈ EdgeFactor * 2^Scale
	A, B, C, D float64 // quadrant probabilities
	// Noise perturbs the quadrant probabilities at every recursion level,
	// which smooths the degree distribution and avoids the artificial
	// staircase pattern of pure R-MAT. 0 disables, 0.1 is typical.
	Noise float64
	Seed  uint64
}

// DefaultRMAT returns the Graph500-style parameterization (0.57, 0.19,
// 0.19, 0.05) at the given scale and edge factor.
func DefaultRMAT(scale int, edgeFactor float64, seed uint64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Noise: 0.1, Seed: seed,
	}
}

// Validate reports whether the configuration is usable.
func (c RMATConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 30 {
		return fmt.Errorf("gen: RMAT scale %d out of range [1,30]", c.Scale)
	}
	if c.EdgeFactor <= 0 {
		return fmt.Errorf("gen: RMAT edge factor %g must be positive", c.EdgeFactor)
	}
	sum := c.A + c.B + c.C + c.D
	if c.A <= 0 || c.B <= 0 || c.C <= 0 || c.D <= 0 {
		return fmt.Errorf("gen: RMAT quadrant probabilities must be positive")
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gen: RMAT quadrant probabilities sum to %g, want 1", sum)
	}
	if c.Noise < 0 || c.Noise >= 1 {
		return fmt.Errorf("gen: RMAT noise %g out of range [0,1)", c.Noise)
	}
	return nil
}

// RMAT generates a directed multigraph with 2^Scale vertex ID space and
// approximately EdgeFactor*2^Scale edges. Duplicate edges and self loops
// may occur, as in real crawled graphs; use Dedup/DropSelfLoops to clean.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := 1 << cfg.Scale
	m := int(cfg.EdgeFactor * float64(n))
	edges := make([]graph.Edge, 0, m)
	if err := RMATStream(cfg, 0, func(batch []graph.Edge) error {
		edges = append(edges, batch...)
		return nil
	}); err != nil {
		return nil, err
	}
	return graph.FromEdges(edges), nil
}

// RMATStream generates the exact edge sequence of RMAT (same seed, same
// rng consumption, same edges in the same order) but delivers it to fn in
// reused batches of batchEdges instead of materializing the dense []Edge —
// the out-of-core generation path for graphs whose dense edge list would
// not fit comfortably in memory. batchEdges <= 0 selects 8192. The batch
// slice is reused between calls; fn must not retain it. A non-nil error
// from fn stops generation and is returned.
func RMATStream(cfg RMATConfig, batchEdges int, fn func(batch []graph.Edge) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if batchEdges <= 0 {
		batchEdges = 8192
	}
	r := rng.New(cfg.Seed)
	n := 1 << cfg.Scale
	m := int(cfg.EdgeFactor * float64(n))
	batch := make([]graph.Edge, 0, batchEdges)
	for i := 0; i < m; i++ {
		src, dst := rmatEdge(r, cfg)
		batch = append(batch, graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)})
		if len(batch) == batchEdges {
			if err := fn(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		return fn(batch)
	}
	return nil
}

// RMATBlocks generates an R-MAT graph directly into the block-compressed
// edge tier: batches stream from the generator into a graph.BlockBuilder,
// so peak heap during generation is one block of pending edges plus the
// compressed payloads, never the dense edge list. blockEdges 0 selects
// graph.DefaultBlockEdges. The result is edge-for-edge identical to
// RMAT(cfg) (same fingerprint), just block-backed.
func RMATBlocks(cfg RMATConfig, blockEdges int) (*graph.Graph, error) {
	bb := graph.NewBlockBuilder(blockEdges)
	if err := RMATStream(cfg, 0, func(batch []graph.Edge) error {
		bb.Append(batch, nil)
		return nil
	}); err != nil {
		return nil, err
	}
	return graph.FromBlocks(bb.Finish()), nil
}

// rmatEdge draws one edge by recursive quadrant descent.
func rmatEdge(r *rng.Rand, cfg RMATConfig) (src, dst int64) {
	a, b, c, d := cfg.A, cfg.B, cfg.C, cfg.D
	for level := 0; level < cfg.Scale; level++ {
		aa, bb, cc, dd := a, b, c, d
		if cfg.Noise > 0 {
			// Multiplicative noise, renormalized.
			aa *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			bb *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			cc *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			dd *= 1 - cfg.Noise + 2*cfg.Noise*r.Float64()
			norm := aa + bb + cc + dd
			aa, bb, cc, dd = aa/norm, bb/norm, cc/norm, dd/norm
		}
		u := r.Float64()
		src <<= 1
		dst <<= 1
		switch {
		case u < aa:
			// top-left quadrant: both bits 0
		case u < aa+bb:
			dst |= 1
		case u < aa+bb+cc:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return src, dst
}
