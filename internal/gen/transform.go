package gen

import (
	"fmt"
	"sort"

	"cutfit/internal/graph"
	"cutfit/internal/rng"
)

// Dedup returns a new graph with duplicate directed edges removed,
// preserving first-occurrence order.
func Dedup(g *graph.Graph) *graph.Graph {
	type pair struct{ a, b graph.VertexID }
	seen := make(map[pair]struct{}, g.NumEdges())
	out := make([]graph.Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		k := pair{e.Src, e.Dst}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, e)
	}
	return graph.FromEdges(out)
}

// DropSelfLoops returns a new graph without self loops.
func DropSelfLoops(g *graph.Graph) *graph.Graph {
	out := make([]graph.Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		if e.Src != e.Dst {
			out = append(out, e)
		}
	}
	return graph.FromEdges(out)
}

// Symmetrize adds reverse edges to randomly chosen unreciprocated edges
// until at least targetPct percent of edges are reciprocated (as measured
// by graph.SymmetryPct). targetPct of 100 reciprocates everything.
// The input graph should be deduplicated first.
func Symmetrize(g *graph.Graph, targetPct float64, seed uint64) (*graph.Graph, error) {
	if targetPct < 0 || targetPct > 100 {
		return nil, fmt.Errorf("gen: symmetrize target %g%% out of [0,100]", targetPct)
	}
	type pair struct{ a, b graph.VertexID }
	set := make(map[pair]struct{}, g.NumEdges())
	edges := make([]graph.Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		k := pair{e.Src, e.Dst}
		if _, ok := set[k]; ok {
			continue
		}
		set[k] = struct{}{}
		edges = append(edges, e)
	}
	recip := 0
	var unrecip []graph.Edge
	for _, e := range edges {
		if e.Src == e.Dst {
			recip++
			continue
		}
		if _, ok := set[pair{e.Dst, e.Src}]; ok {
			recip++
		} else {
			unrecip = append(unrecip, e)
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(unrecip), func(i, j int) { unrecip[i], unrecip[j] = unrecip[j], unrecip[i] })
	total := len(edges)
	// Adding the reverse of an unreciprocated edge converts one
	// unreciprocated edge into two reciprocated ones and grows the total
	// by one.
	for i := 0; i < len(unrecip); i++ {
		if float64(recip) >= targetPct/100*float64(total) {
			break
		}
		e := unrecip[i]
		rev := pair{e.Dst, e.Src}
		if _, ok := set[rev]; ok {
			continue // became reciprocated via an earlier addition
		}
		set[rev] = struct{}{}
		edges = append(edges, graph.Edge{Src: e.Dst, Dst: e.Src})
		recip += 2
		total++
	}
	if float64(recip) < targetPct/100*float64(total)-1e-9 && targetPct > 0 {
		// All edges reciprocated but target still unmet can only happen
		// with an empty graph; treat as satisfied.
		if len(edges) > 0 && float64(recip) < targetPct/100*float64(total)-1 {
			return nil, fmt.Errorf("gen: symmetrize could not reach %g%% (got %g%%)",
				targetPct, 100*float64(recip)/float64(total))
		}
	}
	return graph.FromEdges(edges), nil
}

// InjectLeaves appends fresh vertices with exactly one edge each: zeroIn
// vertices that only point at existing vertices (so they have no incoming
// edges) and zeroOut vertices that are only pointed at (no outgoing edges).
// This reproduces the "leaf" vertices that forest-fire crawling leaves in
// sampled social graphs (§2 of the paper).
func InjectLeaves(g *graph.Graph, zeroIn, zeroOut int, seed uint64) (*graph.Graph, error) {
	if zeroIn < 0 || zeroOut < 0 {
		return nil, fmt.Errorf("gen: negative leaf counts (%d, %d)", zeroIn, zeroOut)
	}
	verts := g.Vertices()
	if len(verts) == 0 && zeroIn+zeroOut > 0 {
		return nil, fmt.Errorf("gen: cannot inject leaves into an empty graph")
	}
	r := rng.New(seed)
	next := int64(0)
	if len(verts) > 0 {
		next = int64(verts[len(verts)-1]) + 1
	}
	edges := make([]graph.Edge, 0, g.NumEdges()+zeroIn+zeroOut)
	edges = append(edges, g.Edges()...)
	for i := 0; i < zeroIn; i++ {
		target := verts[r.Intn(len(verts))]
		edges = append(edges, graph.Edge{Src: graph.VertexID(next), Dst: target})
		next++
	}
	for i := 0; i < zeroOut; i++ {
		source := verts[r.Intn(len(verts))]
		edges = append(edges, graph.Edge{Src: source, Dst: graph.VertexID(next)})
		next++
	}
	return graph.FromEdges(edges), nil
}

// Relabel applies a random permutation to the vertex IDs, destroying any
// locality encoded in consecutive identifiers. Used by ablations that
// separate a partitioner's hashing behavior from ID-locality effects.
func Relabel(g *graph.Graph, seed uint64) *graph.Graph {
	verts := g.Vertices()
	r := rng.New(seed)
	perm := r.Perm(len(verts))
	remap := make(map[graph.VertexID]graph.VertexID, len(verts))
	for i, v := range verts {
		remap[v] = verts[perm[i]]
	}
	out := make([]graph.Edge, len(g.Edges()))
	for i, e := range g.Edges() {
		out[i] = graph.Edge{Src: remap[e.Src], Dst: remap[e.Dst]}
	}
	return graph.FromEdges(out)
}

// Connect links every non-giant weakly connected component to the giant
// component by adding a reciprocated edge pair from the component's
// lowest-ID vertex to the giant's lowest-ID vertex, producing a single
// connected graph (used for analogs of single-component datasets such as
// Pocek and Orkut).
func Connect(g *graph.Graph) *graph.Graph {
	labels, count := g.ConnectedComponents()
	if count <= 1 {
		return g
	}
	// Component sizes keyed by label.
	size := map[graph.VertexID]int{}
	for _, l := range labels {
		size[l]++
	}
	var giant graph.VertexID
	best := -1
	for l, n := range size {
		if n > best || (n == best && l < giant) {
			giant = l
			best = n
		}
	}
	edges := append([]graph.Edge(nil), g.Edges()...)
	for l := range size {
		if l == giant {
			continue
		}
		// The label is the minimum vertex ID of the component.
		edges = append(edges,
			graph.Edge{Src: l, Dst: giant},
			graph.Edge{Src: giant, Dst: l},
		)
	}
	return graph.FromEdges(edges)
}

// CloseTriangles adds up to count wedge-closing edge pairs: it repeatedly
// picks a random vertex and two of its (undirected) neighbors and connects
// them with a reciprocated edge if absent. This raises the triangle count
// of sparse generated graphs to social-network levels without disturbing
// other structure.
func CloseTriangles(g *graph.Graph, count int, seed uint64) (*graph.Graph, error) {
	if count < 0 {
		return nil, fmt.Errorf("gen: negative triangle-closure count %d", count)
	}
	if count == 0 || g.NumVertices() == 0 {
		return g, nil
	}
	r := rng.New(seed)
	nv := g.NumVertices()
	verts := g.Vertices()
	type pair struct{ a, b graph.VertexID }
	have := make(map[pair]struct{}, g.NumEdges())
	for _, e := range g.Edges() {
		a, b := e.Src, e.Dst
		if a > b {
			a, b = b, a
		}
		have[pair{a, b}] = struct{}{}
	}
	edges := append([]graph.Edge(nil), g.Edges()...)
	added := 0
	// Bounded attempts so pathological graphs (stars, cliques) terminate.
	for attempts := 0; added < count && attempts < 20*count; attempts++ {
		v := int32(r.Intn(nv))
		nb := g.UndirectedNeighbors(v)
		if len(nb) < 2 {
			continue
		}
		x := verts[nb[r.Intn(len(nb))]]
		y := verts[nb[r.Intn(len(nb))]]
		if x == y {
			continue
		}
		a, b := x, y
		if a > b {
			a, b = b, a
		}
		if _, ok := have[pair{a, b}]; ok {
			continue
		}
		have[pair{a, b}] = struct{}{}
		edges = append(edges, graph.Edge{Src: x, Dst: y}, graph.Edge{Src: y, Dst: x})
		added++
	}
	return graph.FromEdges(edges), nil
}

// InjectLeavesTarget adds zero-in and zero-out leaf vertices until the
// graph's zero-in-degree and zero-out-degree vertex fractions reach
// approximately the given percentages (existing zero-degree vertices are
// counted; targets already exceeded are left as is). Leaf edges attach
// only to vertices that already have the corresponding degree, so existing
// zero-degree counts are not disturbed.
func InjectLeavesTarget(g *graph.Graph, zeroInPct, zeroOutPct float64, seed uint64) (*graph.Graph, error) {
	if zeroInPct < 0 || zeroInPct >= 100 || zeroOutPct < 0 || zeroOutPct >= 100 {
		return nil, fmt.Errorf("gen: leaf targets (%g%%, %g%%) out of [0,100)", zeroInPct, zeroOutPct)
	}
	if zeroInPct+zeroOutPct >= 100 {
		return nil, fmt.Errorf("gen: leaf targets sum to %g%%, must be < 100", zeroInPct+zeroOutPct)
	}
	verts := g.Vertices()
	v0 := float64(len(verts))
	if v0 == 0 {
		return g, nil
	}
	inDeg := g.InDegrees()
	outDeg := g.OutDegrees()
	var a0, b0 float64 // current zero-in / zero-out counts
	var withIn, withOut []graph.VertexID
	for i, v := range verts {
		if inDeg[i] == 0 {
			a0++
		} else {
			withIn = append(withIn, v)
		}
		if outDeg[i] == 0 {
			b0++
		} else {
			withOut = append(withOut, v)
		}
	}
	ta, tb := zeroInPct/100, zeroOutPct/100
	// Final vertex count V satisfies (a0+zi)/V = ta and (b0+zo)/V = tb with
	// V = v0+zi+zo; take the max of the three implied lower bounds so no
	// target is overshot by construction.
	v := (v0 - a0 - b0) / (1 - ta - tb)
	if ta > 0 && a0/ta > v {
		v = a0 / ta
	}
	if tb > 0 && b0/tb > v {
		v = b0 / tb
	}
	if v < v0 {
		v = v0
	}
	zi := int(ta*v - a0)
	zo := int(tb*v - b0)
	if zi < 0 {
		zi = 0
	}
	if zo < 0 {
		zo = 0
	}
	if zi == 0 && zo == 0 {
		return g, nil
	}
	if len(withIn) == 0 || len(withOut) == 0 {
		return nil, fmt.Errorf("gen: cannot target leaf fractions on a graph with no connected vertices")
	}
	r := rng.New(seed)
	next := int64(verts[len(verts)-1]) + 1
	edges := append([]graph.Edge(nil), g.Edges()...)
	for i := 0; i < zi; i++ {
		// A zero-in leaf points at a vertex that already has in-edges.
		target := withIn[r.Intn(len(withIn))]
		edges = append(edges, graph.Edge{Src: graph.VertexID(next), Dst: target})
		next++
	}
	for i := 0; i < zo; i++ {
		// A zero-out leaf is pointed at by a vertex with out-edges.
		source := withOut[r.Intn(len(withOut))]
		edges = append(edges, graph.Edge{Src: source, Dst: graph.VertexID(next)})
		next++
	}
	return graph.FromEdges(edges), nil
}

// PairSubset samples a fraction of the graph's unordered endpoint pairs
// and keeps every edge whose pair was chosen, preserving reciprocation
// (unlike EdgeSubset, which samples directed edges independently and
// destroys symmetry). Used to derive follow-jul from follow-dec.
func PairSubset(g *graph.Graph, fraction float64, seed uint64) (*graph.Graph, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("gen: pair subset fraction %g out of (0,1]", fraction)
	}
	type pair struct{ a, b graph.VertexID }
	canon := func(e graph.Edge) pair {
		if e.Src <= e.Dst {
			return pair{e.Src, e.Dst}
		}
		return pair{e.Dst, e.Src}
	}
	seen := map[pair]struct{}{}
	var order []pair
	for _, e := range g.Edges() {
		k := canon(e)
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			order = append(order, k)
		}
	}
	r := rng.New(seed)
	keep := make(map[pair]bool, len(order))
	for _, k := range order {
		keep[k] = r.Float64() < fraction
	}
	out := make([]graph.Edge, 0, int(fraction*float64(g.NumEdges())))
	for _, e := range g.Edges() {
		if keep[canon(e)] {
			out = append(out, e)
		}
	}
	return graph.FromEdges(out), nil
}

// AddFragments appends count small detached components (paths of 2–6
// vertices with both edge orientations), reproducing the many small
// components of sampled social graphs such as socLiveJournal.
func AddFragments(g *graph.Graph, count int, seed uint64) (*graph.Graph, error) {
	if count < 0 {
		return nil, fmt.Errorf("gen: negative fragment count %d", count)
	}
	r := rng.New(seed)
	verts := g.Vertices()
	next := int64(0)
	if len(verts) > 0 {
		next = int64(verts[len(verts)-1]) + 1
	}
	edges := append([]graph.Edge(nil), g.Edges()...)
	for f := 0; f < count; f++ {
		length := 2 + r.Intn(5)
		for i := 0; i < length-1; i++ {
			u := graph.VertexID(next + int64(i))
			v := graph.VertexID(next + int64(i) + 1)
			edges = append(edges, graph.Edge{Src: u, Dst: v}, graph.Edge{Src: v, Dst: u})
		}
		next += int64(length)
	}
	return graph.FromEdges(edges), nil
}

// EdgeSubset returns a new graph with a uniformly sampled fraction of the
// edges (used to derive the follow-jul analog as a subset of follow-dec,
// mirroring the paper's crawl relationship). fraction must be in (0, 1].
func EdgeSubset(g *graph.Graph, fraction float64, seed uint64) (*graph.Graph, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("gen: edge subset fraction %g out of (0,1]", fraction)
	}
	r := rng.New(seed)
	src := g.Edges()
	idx := r.Perm(len(src))
	k := int(fraction * float64(len(src)))
	if k == 0 && len(src) > 0 {
		k = 1
	}
	chosen := idx[:k]
	sort.Ints(chosen)
	out := make([]graph.Edge, 0, k)
	for _, i := range chosen {
		out = append(out, src[i])
	}
	return graph.FromEdges(out), nil
}
