package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	points := []Point{
		{X: 1, Y: 1, Series: "a"},
		{X: 2, Y: 4, Series: "a"},
		{X: 3, Y: 9, Series: "b"},
	}
	var buf bytes.Buffer
	err := Scatter(&buf, points, ScatterConfig{
		Width: 30, Height: 10, Title: "squares", XLabel: "x", YLabel: "y",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "squares") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing series glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Fatal("missing legend")
	}
	// Axis ticks for min and max y.
	if !strings.Contains(out, "9.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("missing y ticks:\n%s", out)
	}
}

func TestScatterLogAxes(t *testing.T) {
	points := []Point{
		{X: 10, Y: 100, Series: "s"},
		{X: 1000, Y: 1e6, Series: "s"},
		{X: -5, Y: 3, Series: "s"}, // dropped under LogX
	}
	var buf bytes.Buffer
	err := Scatter(&buf, points, ScatterConfig{LogX: true, LogY: true, XLabel: "m", YLabel: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log10(m)") || !strings.Contains(buf.String(), "log10(t)") {
		t.Fatal("missing log axis labels")
	}
}

func TestScatterNoPoints(t *testing.T) {
	var buf bytes.Buffer
	if err := Scatter(&buf, nil, ScatterConfig{}); err == nil {
		t.Fatal("empty input should error")
	}
	// All points dropped by log transform.
	if err := Scatter(&buf, []Point{{X: -1, Y: 1}}, ScatterConfig{LogX: true}); err == nil {
		t.Fatal("all-dropped input should error")
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	// Identical points must not divide by zero.
	points := []Point{{X: 5, Y: 5}, {X: 5, Y: 5}}
	var buf bytes.Buffer
	if err := Scatter(&buf, points, ScatterConfig{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	points := []Point{
		{X: 1.5, Y: 2.5, Series: "alpha"},
		{X: 3, Y: 4, Series: "beta,comma"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points, "metric", "secs"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "series,metric,secs" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"beta,comma"`) {
		t.Fatalf("comma in series not quoted: %q", lines[2])
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	err := Histogram(&buf, []string{"[0..0]", "[1..1]", "[2..3]"}, []int64{10, 5, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("rows = %d", strings.Count(out, "\n"))
	}
}

func TestHistogramErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, []string{"a"}, []int64{1, 2}, 10); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestHistogramAllZero(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, []string{"a"}, []int64{0}, 10); err != nil {
		t.Fatal(err)
	}
}
