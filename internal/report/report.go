// Package report renders experiment results for humans and downstream
// tools: ASCII scatter plots of the paper's correlation figures (readable
// in a terminal, like the paper's Figures 3–6), log-log degree plots
// (Figure 1), and CSV export for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Point is one (x, y) sample with an optional series label.
type Point struct {
	X, Y   float64
	Series string
}

// ScatterConfig controls ASCII scatter rendering.
type ScatterConfig struct {
	Width, Height int // plot area in characters; defaults 64×20
	Title         string
	XLabel        string
	YLabel        string
	// LogX / LogY plot the decimal logarithm of the axis (values must be
	// positive; non-positive values are dropped).
	LogX, LogY bool
}

// seriesGlyphs assigns stable glyphs to series in first-appearance order.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

// Scatter renders an ASCII scatter plot of the points to w.
func Scatter(w io.Writer, points []Point, cfg ScatterConfig) error {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	tx := func(v float64) (float64, bool) { return v, true }
	if cfg.LogX {
		tx = logTransform
	}
	ty := func(v float64) (float64, bool) { return v, true }
	if cfg.LogY {
		ty = logTransform
	}

	type xyg struct {
		x, y float64
		g    byte
	}
	glyphOf := map[string]byte{}
	var data []xyg
	for _, p := range points {
		x, okx := tx(p.X)
		y, oky := ty(p.Y)
		if !okx || !oky {
			continue
		}
		gl, ok := glyphOf[p.Series]
		if !ok {
			gl = seriesGlyphs[len(glyphOf)%len(seriesGlyphs)]
			glyphOf[p.Series] = gl
		}
		data = append(data, xyg{x, y, gl})
	}
	if len(data) == 0 {
		return fmt.Errorf("report: no plottable points")
	}
	minX, maxX := data[0].x, data[0].x
	minY, maxY := data[0].y, data[0].y
	for _, d := range data[1:] {
		minX = math.Min(minX, d.x)
		maxX = math.Max(maxX, d.x)
		minY = math.Min(minY, d.y)
		maxY = math.Max(maxY, d.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, d := range data {
		col := int((d.x - minX) / (maxX - minX) * float64(width-1))
		row := int((d.y - minY) / (maxY - minY) * float64(height-1))
		r := height - 1 - row // y grows upward
		if grid[r][col] != ' ' && grid[r][col] != d.g {
			grid[r][col] = '?' // collision of different series
		} else {
			grid[r][col] = d.g
		}
	}

	if cfg.Title != "" {
		if _, err := fmt.Fprintln(w, cfg.Title); err != nil {
			return err
		}
	}
	yl := cfg.YLabel
	if cfg.LogY {
		yl = "log10(" + yl + ")"
	}
	if yl != "" {
		if _, err := fmt.Fprintf(w, "%s\n", yl); err != nil {
			return err
		}
	}
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = formatTick(maxY)
		case height - 1:
			label = formatTick(minY)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	xl := cfg.XLabel
	if cfg.LogX {
		xl = "log10(" + xl + ")"
	}
	if _, err := fmt.Fprintf(w, "%10s  %-*s%s\n", formatTick(minX), width-len(formatTick(maxX)), xl, formatTick(maxX)); err != nil {
		return err
	}
	// Legend in first-appearance order.
	if len(glyphOf) > 1 || (len(glyphOf) == 1 && firstKey(glyphOf) != "") {
		var legend []string
		seen := map[string]bool{}
		for _, p := range points {
			if seen[p.Series] {
				continue
			}
			seen[p.Series] = true
			legend = append(legend, fmt.Sprintf("%c=%s", glyphOf[p.Series], p.Series))
		}
		if _, err := fmt.Fprintln(w, "legend:", strings.Join(legend, "  ")); err != nil {
			return err
		}
	}
	return nil
}

func logTransform(v float64) (float64, bool) {
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av != 0 && (av < 0.01 || av >= 1e6):
		return strconv.FormatFloat(v, 'e', 1, 64)
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

func firstKey(m map[string]byte) string {
	for k := range m {
		return k
	}
	return ""
}

// WriteCSV writes points as "series,x,y" rows with a header.
func WriteCSV(w io.Writer, points []Point, xName, yName string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", xName, yName}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Series,
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Histogram renders a horizontal ASCII bar chart of (label, count) pairs,
// scaled to barWidth characters.
func Histogram(w io.Writer, labels []string, counts []int64, barWidth int) error {
	if len(labels) != len(counts) {
		return fmt.Errorf("report: %d labels for %d counts", len(labels), len(counts))
	}
	if barWidth <= 0 {
		barWidth = 50
	}
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, l := range labels {
		n := int(float64(counts[i]) / float64(max) * float64(barWidth))
		if counts[i] > 0 && n == 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s %d\n", labelWidth, l, strings.Repeat("#", n), counts[i]); err != nil {
			return err
		}
	}
	return nil
}
