package algorithms

import (
	"context"
	"fmt"
	"sync"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// labelVotes counts neighbor label occurrences for label propagation.
type labelVotes map[graph.VertexID]int64

// LabelPropagation runs the static community-detection algorithm of
// GraphX's lib.LabelPropagation: every vertex starts in its own community
// and, each round, adopts the most frequent label among its neighbors
// (treating edges as undirected). Ties break toward the smaller label so
// the computation is deterministic. The algorithm is not guaranteed to
// converge (bipartite structures oscillate), so numIter is required.
func LabelPropagation(ctx context.Context, pg *pregel.PartitionedGraph, numIter int) ([]graph.VertexID, *pregel.RunStats, error) {
	if numIter <= 0 {
		return nil, nil, fmt.Errorf("algorithms: LabelPropagation needs numIter > 0, got %d", numIter)
	}
	prog := pregel.Program[graph.VertexID, labelVotes]{
		Init: func(id graph.VertexID) graph.VertexID { return id },
		VProg: func(id graph.VertexID, val graph.VertexID, msg labelVotes) graph.VertexID {
			if msg == nil { // superstep 0
				return val
			}
			best := val
			var bestCount int64 = -1
			for label, count := range msg {
				if count > bestCount || (count == bestCount && label < best) {
					best = label
					bestCount = count
				}
			}
			return best
		},
		SendMsg: func(t *pregel.Triplet[graph.VertexID], emit pregel.Emitter[labelVotes]) {
			emit.ToDst(labelVotes{t.SrcVal: 1})
			emit.ToSrc(labelVotes{t.DstVal: 1})
		},
		MergeMsg: func(a, b labelVotes) labelVotes {
			out := make(labelVotes, len(a)+len(b))
			for l, c := range a {
				out[l] += c
			}
			for l, c := range b {
				out[l] += c
			}
			return out
		},
		InitialMsg:      nil,
		MaxIterations:   numIter,
		ActiveDirection: pregel.AllEdges,
		MsgBytes:        func(m labelVotes) int { return 16 + 12*len(m) },
	}
	return pregel.Run(ctx, pg, prog)
}

// LabelPropagationSeq is the sequential oracle with identical semantics:
// synchronous updates, most-frequent-neighbor label, ties to the smaller
// label, fixed iteration count.
func LabelPropagationSeq(g *graph.Graph, numIter int) []graph.VertexID {
	verts := g.Vertices()
	nv := len(verts)
	labels := make([]graph.VertexID, nv)
	for i, v := range verts {
		labels[i] = v
	}
	next := make([]graph.VertexID, nv)
	for iter := 0; iter < numIter; iter++ {
		votes := make([]map[graph.VertexID]int64, nv)
		for _, e := range g.Edges() {
			si, _ := g.Index(e.Src)
			di, _ := g.Index(e.Dst)
			if votes[di] == nil {
				votes[di] = map[graph.VertexID]int64{}
			}
			votes[di][labels[si]]++
			if votes[si] == nil {
				votes[si] = map[graph.VertexID]int64{}
			}
			votes[si][labels[di]]++
		}
		for i := range labels {
			if votes[i] == nil {
				next[i] = labels[i]
				continue
			}
			best := labels[i]
			var bestCount int64 = -1
			for l, c := range votes[i] {
				if c > bestCount || (c == bestCount && l < best) {
					best = l
					bestCount = c
				}
			}
			next[i] = best
		}
		labels, next = next, labels
	}
	return labels
}

// KCore computes the k-core decomposition: the core number of a vertex is
// the largest k such that the vertex belongs to a subgraph where every
// vertex has (undirected) degree >= k. Implemented with the standard
// sequential peeling algorithm; used as both a library feature and the
// oracle for KCoreMembership.
func KCore(g *graph.Graph) []int32 {
	nv := g.NumVertices()
	deg := make([]int32, nv)
	var maxDeg int32
	for i := int32(0); i < int32(nv); i++ {
		deg[i] = int32(len(g.UndirectedNeighbors(i)))
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	// Bucket sort by degree (O(V+E) peeling).
	buckets := make([][]int32, maxDeg+1)
	for v := int32(0); v < int32(nv); v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	core := make([]int32, nv)
	removed := make([]bool, nv)
	cur := make([]int32, nv)
	copy(cur, deg)
	for d := int32(0); d <= maxDeg; d++ {
		for len(buckets[d]) > 0 {
			v := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if removed[v] || cur[v] > d {
				continue
			}
			removed[v] = true
			core[v] = d
			for _, w := range g.UndirectedNeighbors(v) {
				if removed[w] || cur[w] <= d {
					continue
				}
				cur[w]--
				b := cur[w]
				if b < d {
					b = d
				}
				buckets[b] = append(buckets[b], w)
			}
		}
	}
	return core
}

// KCoreMembership computes, on the partitioned graph, which vertices
// belong to the k-core: vertices with fewer than k live (undirected,
// deduplicated) neighbors are iteratively removed until a fixpoint. It
// returns a boolean per dense vertex index.
//
// Like GraphX's iterated-aggregateMessages jobs, the driver coordinates
// peeling rounds: each round is one engine superstep that counts every
// live vertex's live neighbors, then the driver kills vertices below k.
// The per-round statistics are concatenated so the cluster model charges
// every peeling round.
func KCoreMembership(ctx context.Context, pg *pregel.PartitionedGraph, k int32) ([]bool, *pregel.RunStats, error) {
	if k < 0 {
		return nil, nil, fmt.Errorf("algorithms: KCoreMembership needs k >= 0, got %d", k)
	}
	g := pg.G
	nv := g.NumVertices()
	alive := make([]bool, nv)
	for i := range alive {
		alive[i] = true
	}
	aliveOf := func(id graph.VertexID) bool {
		i, _ := g.Index(id)
		return alive[i]
	}
	// Deduplicate undirected pairs so parallel and reciprocal edges count
	// a neighbor once, matching the simple-graph degree of KCore.
	type pair struct{ a, b graph.VertexID }
	counted := make(map[pair]struct{}, g.NumEdges())
	canon := func(a, b graph.VertexID) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}

	merged := &pregel.RunStats{Converged: true}
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("algorithms: k-core round %d: %w", round, err)
		}
		for key := range counted {
			delete(counted, key)
		}
		var mu sync.Mutex
		prog := pregel.Program[bool, int32]{
			Init:  func(id graph.VertexID) bool { return aliveOf(id) },
			VProg: func(id graph.VertexID, val bool, msg int32) bool { return val },
			SendMsg: func(t *pregel.Triplet[bool], emit pregel.Emitter[int32]) {
				if t.SrcID == t.DstID || !t.SrcVal || !t.DstVal {
					return
				}
				key := canon(t.SrcID, t.DstID)
				mu.Lock()
				if _, dup := counted[key]; dup {
					mu.Unlock()
					return
				}
				counted[key] = struct{}{}
				mu.Unlock()
				emit.ToSrc(1)
				emit.ToDst(1)
			},
			MergeMsg:        func(a, b int32) int32 { return a + b },
			InitialMsg:      0,
			MaxIterations:   1,
			ActiveDirection: pregel.AllEdges,
		}
		// liveDeg arrives as the per-vertex message sum; recover it by
		// running one superstep and reading the reduce side indirectly:
		// messages are folded into vertex values via a counting program.
		counts, stats, err := runNeighborCount(ctx, pg, prog)
		if err != nil {
			return nil, nil, err
		}
		merged.Supersteps = append(merged.Supersteps, stats.Supersteps...)
		deaths := 0
		for v := 0; v < nv; v++ {
			if alive[v] && counts[v] < k {
				alive[v] = false
				deaths++
			}
		}
		if deaths == 0 {
			break
		}
	}
	return alive, merged, nil
}

// runNeighborCount executes one superstep of the given liveness program
// and returns the per-vertex merged message counts.
func runNeighborCount(ctx context.Context, pg *pregel.PartitionedGraph, base pregel.Program[bool, int32]) ([]int32, *pregel.RunStats, error) {
	nv := pg.G.NumVertices()
	counts := make([]int32, nv)
	prog := pregel.Program[bool, int32]{
		Init: base.Init,
		VProg: func(id graph.VertexID, val bool, msg int32) bool {
			// The apply phase shards vertices disjointly, so writing
			// counts[i] from VProg is race-free.
			if msg > 0 {
				i, _ := pg.G.Index(id)
				counts[i] = msg
			}
			return val
		},
		SendMsg:         base.SendMsg,
		MergeMsg:        base.MergeMsg,
		InitialMsg:      0,
		MaxIterations:   1,
		ActiveDirection: pregel.AllEdges,
	}
	_, stats, err := pregel.Run(ctx, pg, prog)
	if err != nil {
		return nil, nil, err
	}
	return counts, stats, nil
}
