// Package algorithms implements the four analytics computations of the
// paper's evaluation — PageRank, Connected Components, Triangle Count and
// Single-Source Shortest Paths — on the Pregel engine, mirroring their
// GraphX implementations, together with sequential reference
// implementations used as correctness oracles in tests.
package algorithms

import (
	"context"
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// DefaultResetProb is the PageRank damping complement used by GraphX.
const DefaultResetProb = 0.15

// prInitSentinel marks the superstep-0 initial message, which must leave
// the initial rank untouched (GraphX seeds ranks at 1.0 before iterating).
const prInitSentinel = -1.0

// PageRank runs static PageRank for numIter message rounds on the
// partitioned graph, exactly like GraphX's staticPageRank: ranks start at
// 1.0 and each round every vertex with incoming edges updates to
// resetProb + (1-resetProb) · Σ_{u→v} rank(u)/outDeg(u).
// It returns the rank per dense vertex index (aligned with pg.G.Vertices())
// and the engine statistics.
func PageRank(ctx context.Context, pg *pregel.PartitionedGraph, numIter int, resetProb float64) ([]float64, *pregel.RunStats, error) {
	if numIter <= 0 {
		return nil, nil, fmt.Errorf("algorithms: PageRank needs numIter > 0, got %d", numIter)
	}
	if resetProb < 0 || resetProb >= 1 {
		return nil, nil, fmt.Errorf("algorithms: PageRank resetProb %g out of [0,1)", resetProb)
	}
	return pregel.Run(ctx, pg, PageRankProgram(numIter, resetProb, GraphDegreeFunc(pg.G)))
}

// GraphDegreeFunc returns the out-degree lookup the PageRank programs use,
// backed by the graph's dense index. The distributed worker builds the same
// closure from its shard's shipped degree table instead — both must agree
// for the source-side rank division to stay bit-identical.
func GraphDegreeFunc(g *graph.Graph) func(graph.VertexID) float64 {
	outDeg := g.OutDegrees()
	return func(id graph.VertexID) float64 {
		i, _ := g.Index(id)
		return float64(outDeg[i])
	}
}

// PageRankProgram is the static-PageRank Pregel program, exported so the
// distributed worker can instantiate exactly the engine's program from the
// run spec (same constants, same float operation order).
func PageRankProgram(numIter int, resetProb float64, degOf func(graph.VertexID) float64) pregel.Program[float64, float64] {
	return pregel.Program[float64, float64]{
		Init: func(id graph.VertexID) float64 { return 1.0 },
		VProg: func(id graph.VertexID, val, msg float64) float64 {
			if msg == prInitSentinel {
				return val
			}
			return resetProb + (1-resetProb)*msg
		},
		SendMsg: func(t *pregel.Triplet[float64], emit pregel.Emitter[float64]) {
			d := degOf(t.SrcID)
			if d > 0 {
				emit.ToDst(t.SrcVal / d)
			}
		},
		MergeMsg:        func(a, b float64) float64 { return a + b },
		InitialMsg:      prInitSentinel,
		MaxIterations:   numIter,
		ActiveDirection: pregel.AllEdges, // static PR scans all edges every round
	}
}

// PageRankSeq is the sequential oracle with identical semantics to
// PageRank (only vertices with at least one incoming edge update).
func PageRankSeq(g *graph.Graph, numIter int, resetProb float64) []float64 {
	verts := g.Vertices()
	nv := len(verts)
	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	ranks := make([]float64, nv)
	for i := range ranks {
		ranks[i] = 1.0
	}
	next := make([]float64, nv)
	for it := 0; it < numIter; it++ {
		for i := range next {
			next[i] = 0
		}
		for _, e := range g.Edges() {
			si, _ := g.Index(e.Src)
			di, _ := g.Index(e.Dst)
			if outDeg[si] > 0 {
				next[di] += ranks[si] / float64(outDeg[si])
			}
		}
		for i := range ranks {
			if inDeg[i] > 0 {
				ranks[i] = resetProb + (1-resetProb)*next[i]
			}
		}
	}
	return ranks
}
