package algorithms

import (
	"context"
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// cutVertexReductionUnits is the abstract compute cost of merging the
// replicated per-vertex neighbour-set state of one cut vertex at its
// master (hash-set allocation, union and deduplication), in the same units
// as one edge-scan operation. Calibrated so that, as in the paper's
// measurements, the per-cut-vertex reduction overhead dominates Triangle
// Count's partitioning sensitivity.
const cutVertexReductionUnits = 200

// hashSetOpUnits is the abstract cost of one hash-set operation relative
// to one sequential edge-scan unit. GraphX's TriangleCount intersects
// boxed JVM hash sets, an order of magnitude costlier per element than the
// cache-friendly sequential scans of PageRank-style triplet passes; this
// factor keeps the simulated cost model faithful to that ratio and makes
// Triangle Count compute-bound, as the paper observes ("much more
// computation per node … and much less communication", §4).
const hashSetOpUnits = 16

// TriangleCount counts triangles per vertex on the partitioned graph,
// mirroring GraphX's implementation: every vertex's full (undirected,
// deduplicated) neighbor set is shipped to each of its mirrors, each
// partition intersects the endpoint sets of its canonical edges, and the
// per-vertex partial counts are reduced back to the masters.
//
// The per-vertex state is the neighbor set itself, so — unlike
// PageRank/CC/SSSP whose state is a handful of bytes — the broadcast
// volume and the reduction work scale with the number of replicated
// vertices. This is exactly why the paper finds Triangle Count correlated
// with the Cut metric rather than CommCost (§4, Figure 5).
//
// It returns the triangle count through each dense vertex index (each
// triangle contributes 1 to each corner) and single-superstep run stats.
func TriangleCount(ctx context.Context, pg *pregel.PartitionedGraph) ([]int64, *pregel.RunStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("algorithms: TriangleCount: %w", err)
	}
	g := pg.G
	verts := g.Vertices()
	nv := len(verts)
	numParts := pg.NumParts

	// Neighbor sets (sorted dense indices) for every vertex.
	nbr := make([][]int32, nv)
	for v := 0; v < nv; v++ {
		nbr[v] = g.UndirectedNeighbors(int32(v))
	}

	// canonical[i] marks the single directed edge that represents each
	// undirected pair: the first occurrence of (u,v) with u<v, or of (v,u)
	// when the (u,v) orientation never appears. Self loops never count.
	edges := g.Edges()
	canonical := make([]bool, len(edges))
	type pair struct{ a, b graph.VertexID }
	chosen := make(map[pair]struct{}, len(edges))
	has := make(map[pair]struct{}, len(edges))
	for _, e := range edges {
		has[pair{e.Src, e.Dst}] = struct{}{}
	}
	for i, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		u, v := e.Src, e.Dst
		if u > v {
			u, v = v, u
		}
		key := pair{u, v}
		if _, done := chosen[key]; done {
			continue
		}
		if e.Src < e.Dst {
			canonical[i] = true
			chosen[key] = struct{}{}
			continue
		}
		// Reverse orientation: only canonical if (u,v) never appears.
		if _, fwd := has[pair{u, v}]; !fwd {
			canonical[i] = true
			chosen[key] = struct{}{}
		}
	}
	// canonicalLocal[p][j] mirrors canonical[] for partition p's j-th edge.
	canonicalLocal := make([][]bool, numParts)
	{
		cursor := make([]int, numParts)
		for p := 0; p < numParts; p++ {
			canonicalLocal[p] = make([]bool, pg.Parts[p].NumEdges())
		}
		// Edges were appended to partitions in graph order, so a second
		// pass in the same order aligns global and local indices.
		asn := pg.AssignOrder()
		for i, p := range asn {
			canonicalLocal[p][cursor[p]] = canonical[i]
			cursor[p]++
		}
	}

	ss := pregel.SuperstepStats{
		Superstep:      1,
		ActiveVertices: int64(nv),
		ComputePerPart: make([]float64, numParts),
		ApplyPerShard:  make([]float64, 1),
	}

	// Broadcast phase accounting: each mirror receives its vertex's full
	// neighbor set (16 bytes header + 4 bytes per neighbor).
	for v := int32(0); v < int32(nv); v++ {
		m := int64(pg.Mirrors(v))
		ss.BroadcastMsgs += m
		ss.BroadcastBytes += m * (16 + 4*int64(len(nbr[v])))
	}

	// Compute phase: per-partition canonical-edge intersections.
	// ForEachPartition runs concurrently; each closure writes only its own
	// partition's slots.
	partCounts := make([][]int64, numParts)
	scannedPerPart := make([]int64, numParts)
	if err := pg.ForEachPartition(func(p int) {
		part := pg.Parts[p]
		counts := make([]int64, part.NumLocalVertices())
		var cost float64
		for j := 0; j < part.NumEdges(); j++ {
			if !canonicalLocal[p][j] {
				continue
			}
			sL, dL := part.EdgeAt(j)
			sG := part.LocalVerts[sL]
			dG := part.LocalVerts[dL]
			a, b := nbr[sG], nbr[dG]
			common := int64(intersectSortedCount(a, b))
			counts[sL] += common
			counts[dL] += common
			cost += hashSetOpUnits * float64(len(a)+len(b))
			scannedPerPart[p]++
		}
		partCounts[p] = counts
		ss.ComputePerPart[p] = cost
	}); err != nil {
		return nil, nil, err
	}
	for _, s := range scannedPerPart {
		ss.EdgesScanned += s
	}

	// Reduce phase: one partial count per (partition, vertex with nonzero
	// count) back to the master, then a per-vertex reduction.
	total := make([]int64, nv)
	for p := 0; p < numParts; p++ {
		part := pg.Parts[p]
		for l, c := range partCounts[p] {
			if c == 0 {
				continue
			}
			gidx := part.LocalVerts[l]
			total[gidx] += c
			ss.ReduceMsgs++
			ss.ReduceBytes += 12
		}
	}
	// Per-vertex reduction/apply work at the master. Every vertex that is
	// replicated across more than one partition requires an additional
	// reduction to merge its partial per-vertex state — the overhead the
	// paper identifies as the dominant per-vertex cost of Triangle Count
	// in GraphX and all Pregel-like systems (§4, Figure 5). Each such
	// merge allocates and deduplicates set-sized state, which costs far
	// more than the fixed-size aggregation of PageRank-like algorithms;
	// cutVertexReductionUnits captures that fixed overhead per cut vertex.
	var applyUnits float64
	for v := int32(0); v < int32(nv); v++ {
		m := pg.Mirrors(v)
		applyUnits += float64(m)
		if m > 1 {
			applyUnits += cutVertexReductionUnits
		}
	}
	ss.ApplyPerShard[0] = applyUnits
	ss.MsgsEmitted = ss.ReduceMsgs

	// Each triangle corner was credited once per incident canonical edge
	// inside the triangle (two of the three edges touch each corner).
	for v := range total {
		total[v] /= 2
	}

	stats := &pregel.RunStats{Supersteps: []pregel.SuperstepStats{ss}, Converged: true}
	return total, stats, nil
}

// intersectSortedCount returns |a ∩ b| for sorted slices.
func intersectSortedCount(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// TriangleCountSeq is the sequential oracle, returning per-vertex triangle
// counts aligned with g.Vertices().
func TriangleCountSeq(g *graph.Graph) []int64 {
	return g.TrianglesPerVertex()
}

// TotalTriangles sums per-vertex counts into the whole-graph triangle
// count (each triangle is counted at three corners).
func TotalTriangles(perVertex []int64) int64 {
	var s int64
	for _, c := range perVertex {
		s += c
	}
	return s / 3
}
