package algorithms

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

func TestDynamicPageRankConvergesToStatic(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%8
		g := randomGraph(seed, 30, 120)
		const tol = 1e-4
		want := DynamicPageRankSeq(g, tol/10, DefaultResetProb)
		pg := mustPartition(t, g, partition.RandomVertexCut(), numParts)
		got, stats, err := DynamicPageRank(context.Background(), pg, tol, DefaultResetProb, 0)
		if err != nil || !stats.Converged {
			return false
		}
		for i := range want {
			// The delta-gated propagation leaves residual error bounded by
			// a small multiple of tol.
			if math.Abs(got[i]-want[i]) > 100*tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicPageRankActiveSetShrinks(t *testing.T) {
	g := randomGraph(31, 200, 1500)
	pg := mustPartition(t, g, partition.EdgePartition2D(), 8)
	_, stats, err := DynamicPageRank(context.Background(), pg, 1e-3, DefaultResetProb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := stats.NumSupersteps(); n < 3 {
		t.Skipf("converged too fast (%d supersteps) to observe shrinkage", n)
	}
	first := stats.Supersteps[0].ActiveVertices
	last := stats.Supersteps[len(stats.Supersteps)-1].ActiveVertices
	if last >= first {
		t.Fatalf("active set did not shrink: %d -> %d", first, last)
	}
}

func TestDynamicPageRankErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 1)
	if _, _, err := DynamicPageRank(context.Background(), pg, 0, 0.15, 0); err == nil {
		t.Error("tol=0 should error")
	}
	if _, _, err := DynamicPageRank(context.Background(), pg, 1e-3, 1.0, 0); err == nil {
		t.Error("resetProb=1 should error")
	}
}

func TestLabelPropagationMatchesOracle(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%8
		g := randomGraph(seed, 30, 100)
		want := LabelPropagationSeq(g, 4)
		for _, s := range []partition.Strategy{partition.RandomVertexCut(), partition.DestinationCut()} {
			assign, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			pg, err := newPartitioned(g, assign, numParts)
			if err != nil {
				return false
			}
			got, _, err := LabelPropagation(context.Background(), pg, 4)
			if err != nil {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two 4-cliques joined by a single bridge edge: labels should settle
	// within each clique to that clique's minimum vertex ID.
	var edges []graph.Edge
	cliq := func(base graph.VertexID) {
		for i := graph.VertexID(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				edges = append(edges,
					graph.Edge{Src: base + i, Dst: base + j},
					graph.Edge{Src: base + j, Dst: base + i})
			}
		}
	}
	cliq(0)
	cliq(10)
	edges = append(edges, graph.Edge{Src: 0, Dst: 10})
	g := graph.FromEdges(edges)
	pg := mustPartition(t, g, partition.CanonicalRandomVertexCut(), 4)
	labels, _, err := LabelPropagation(context.Background(), pg, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Vertices() {
		want := graph.VertexID(0)
		if v >= 10 {
			want = 10
		}
		// Allow the bridge endpoints to flip; interior clique members must
		// hold their community.
		if v != 0 && v != 10 && labels[i] != want {
			t.Fatalf("vertex %d labeled %d, want %d", v, labels[i], want)
		}
	}
}

func TestLabelPropagationErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 1)
	if _, _, err := LabelPropagation(context.Background(), pg, 0); err == nil {
		t.Error("numIter=0 should error")
	}
}

func TestKCoreKnownShapes(t *testing.T) {
	// Triangle with a pendant: triangle vertices have core 2, pendant 1.
	g := graph.FromEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	})
	core := KCore(g)
	want := map[graph.VertexID]int32{0: 2, 1: 2, 2: 2, 3: 1}
	for v, w := range want {
		i, _ := g.Index(v)
		if core[i] != w {
			t.Fatalf("core(%d) = %d, want %d", v, core[i], w)
		}
	}
}

func TestKCoreK4(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	for i, c := range KCore(g) {
		if c != 3 {
			t.Fatalf("K4 vertex %d core = %d, want 3", i, c)
		}
	}
}

func TestKCoreMembershipMatchesPeeling(t *testing.T) {
	check := func(seed uint64, kRaw uint8) bool {
		k := int32(kRaw % 5)
		g := randomGraph(seed, 30, 150)
		core := KCore(g)
		assign, err := partition.RandomVertexCut().Partition(g, 4)
		if err != nil {
			return false
		}
		pg, err := newPartitioned(g, assign, 4)
		if err != nil {
			return false
		}
		member, _, err := KCoreMembership(context.Background(), pg, k)
		if err != nil {
			return false
		}
		for i := range member {
			if member[i] != (core[i] >= k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreMembershipErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 1)
	if _, _, err := KCoreMembership(context.Background(), pg, -1); err == nil {
		t.Error("negative k should error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := KCoreMembership(ctx, pg, 2); err == nil {
		t.Error("cancelled context should abort")
	}
}
