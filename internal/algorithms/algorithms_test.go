package algorithms

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
	"cutfit/internal/rng"
)

func randomGraph(seed uint64, maxV, maxE int) *graph.Graph {
	r := rng.New(seed)
	nv := 2 + r.Intn(maxV)
	ne := 1 + r.Intn(maxE)
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(r.Intn(nv)),
			Dst: graph.VertexID(r.Intn(nv)),
		}
	}
	return graph.FromEdges(edges)
}

func mustPartition(t *testing.T, g *graph.Graph, s partition.Strategy, parts int) *pregel.PartitionedGraph {
	t.Helper()
	assign, err := s.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.NewPartitionedGraph(g, assign, parts)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

var testStrategies = []partition.Strategy{
	partition.RandomVertexCut(),
	partition.EdgePartition1D(),
	partition.EdgePartition2D(),
	partition.CanonicalRandomVertexCut(),
	partition.SourceCut(),
	partition.DestinationCut(),
}

func TestPageRankMatchesOracle(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%12
		g := randomGraph(seed, 40, 200)
		want := PageRankSeq(g, 5, DefaultResetProb)
		for _, s := range testStrategies {
			assign, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			pg, err := pregel.NewPartitionedGraph(g, assign, numParts)
			if err != nil {
				return false
			}
			got, _, err := PageRank(context.Background(), pg, 5, DefaultResetProb)
			if err != nil {
				return false
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankKnownChain(t *testing.T) {
	// 0 -> 1: after 1 iteration rank(1) = 0.15 + 0.85*1.0; rank(0) stays 1
	// (no in-edges under GraphX static PR semantics).
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	ranks, _, err := PageRank(context.Background(), pg, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != 1.0 {
		t.Fatalf("rank(0) = %g, want 1.0", ranks[0])
	}
	if want := 0.15 + 0.85*1.0; math.Abs(ranks[1]-want) > 1e-12 {
		t.Fatalf("rank(1) = %g, want %g", ranks[1], want)
	}
}

func TestPageRankArgErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 1)
	if _, _, err := PageRank(context.Background(), pg, 0, 0.15); err == nil {
		t.Error("numIter=0 should error")
	}
	if _, _, err := PageRank(context.Background(), pg, 3, 1.5); err == nil {
		t.Error("resetProb out of range should error")
	}
}

func TestConnectedComponentsMatchesOracle(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%12
		g := randomGraph(seed, 50, 120)
		want := ConnectedComponentsSeq(g)
		for _, s := range testStrategies {
			assign, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			pg, err := pregel.NewPartitionedGraph(g, assign, numParts)
			if err != nil {
				return false
			}
			got, stats, err := ConnectedComponents(context.Background(), pg, 0)
			if err != nil || !stats.Converged {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponentsIterationCap(t *testing.T) {
	// A long chain needs many rounds; capping at 2 must not converge to
	// the global minimum at the far end.
	n := 50
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	g := graph.FromEdges(edges)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 4)
	labels, stats, err := ConnectedComponents(context.Background(), pg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Converged {
		t.Fatal("2 iterations should not converge a 50-chain")
	}
	li, _ := g.Index(graph.VertexID(n - 1))
	if labels[li] == 0 {
		t.Fatal("far end of chain should not have the global min label yet")
	}
}

func TestCountComponents(t *testing.T) {
	labels := []graph.VertexID{0, 0, 5, 5, 9}
	if n := CountComponents(labels); n != 3 {
		t.Fatalf("CountComponents = %d, want 3", n)
	}
}

func TestTriangleCountMatchesOracle(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%12
		g := randomGraph(seed, 30, 150)
		want := TriangleCountSeq(g)
		for _, s := range testStrategies {
			assign, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			pg, err := pregel.NewPartitionedGraph(g, assign, numParts)
			if err != nil {
				return false
			}
			got, _, err := TriangleCount(context.Background(), pg)
			if err != nil {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleCountK4(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	pg := mustPartition(t, g, partition.EdgePartition2D(), 3)
	counts, stats, err := TriangleCount(context.Background(), pg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 3 {
			t.Fatalf("vertex %d: %d triangles, want 3", i, c)
		}
	}
	if TotalTriangles(counts) != 4 {
		t.Fatalf("total = %d, want 4", TotalTriangles(counts))
	}
	if len(stats.Supersteps) != 1 {
		t.Fatalf("TR should be a single superstep, got %d", len(stats.Supersteps))
	}
}

func TestTriangleCountCancelled(t *testing.T) {
	g := randomGraph(3, 20, 50)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := TriangleCount(ctx, pg); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestShortestPathsMatchesOracle(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%12
		g := randomGraph(seed, 40, 150)
		verts := g.Vertices()
		landmarks := []graph.VertexID{verts[0]}
		if len(verts) > 3 {
			landmarks = append(landmarks, verts[len(verts)/2])
		}
		want := ShortestPathsSeq(g, landmarks)
		for _, s := range testStrategies {
			assign, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			pg, err := pregel.NewPartitionedGraph(g, assign, numParts)
			if err != nil {
				return false
			}
			got, stats, err := ShortestPaths(context.Background(), pg, landmarks, 0)
			if err != nil || !stats.Converged {
				return false
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					return false
				}
				for l, d := range want[i] {
					if got[i][l] != d {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathsKnownChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, landmark 3: dist(v) = 3 - v.
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	dists, _, err := ShortestPaths(context.Background(), pg, []graph.VertexID{3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		idx, _ := g.Index(graph.VertexID(i))
		if d, ok := dists[idx][3]; !ok || d != int32(3-i) {
			t.Fatalf("dist(%d -> 3) = %d,%v want %d", i, d, ok, 3-i)
		}
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	// 1 -> 0: vertex 0 cannot reach landmark 1 (edges are directed).
	g := graph.FromEdges([]graph.Edge{{Src: 1, Dst: 0}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	dists, _, err := ShortestPaths(context.Background(), pg, []graph.VertexID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := g.Index(0)
	if _, ok := dists[i0][1]; ok {
		t.Fatal("vertex 0 should not reach landmark 1")
	}
	i1, _ := g.Index(1)
	if d := dists[i1][1]; d != 0 {
		t.Fatalf("landmark self distance = %d", d)
	}
}

func TestShortestPathsNeedsLandmarks(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 1)
	if _, _, err := ShortestPaths(context.Background(), pg, nil, 0); err == nil {
		t.Fatal("no landmarks should error")
	}
}

// TestTriangleStatsCutSensitivity: the TR cost model's apply term must grow
// with the number of cut vertices, all else equal.
func TestTriangleStatsCutSensitivity(t *testing.T) {
	g := randomGraph(99, 60, 600)
	one := mustPartition(t, g, partition.RandomVertexCut(), 1)
	many := mustPartition(t, g, partition.RandomVertexCut(), 16)
	_, s1, err := TriangleCount(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	_, s16, err := TriangleCount(context.Background(), many)
	if err != nil {
		t.Fatal(err)
	}
	a1 := s1.Supersteps[0].ApplyPerShard[0]
	a16 := s16.Supersteps[0].ApplyPerShard[0]
	if a16 <= a1 {
		t.Fatalf("apply units with 16 parts (%.0f) not above 1 part (%.0f)", a16, a1)
	}
}

// newPartitioned is a non-fataling helper for quick.Check closures.
func newPartitioned(g *graph.Graph, assign []partition.PID, parts int) (*pregel.PartitionedGraph, error) {
	return pregel.NewPartitionedGraph(g, assign, parts)
}
