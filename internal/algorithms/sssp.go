package algorithms

import (
	"context"
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// DistMap maps a landmark vertex to the shortest known hop distance.
type DistMap map[graph.VertexID]int32

// clone returns a copy of m.
func (m DistMap) clone() DistMap {
	out := make(DistMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeMin returns the element-wise minimum union of a and b, reusing a
// when possible is avoided to keep messages immutable.
func mergeMin(a, b DistMap) DistMap {
	out := make(DistMap, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, ok := out[k]; !ok || v < cur {
			out[k] = v
		}
	}
	return out
}

// improves reports whether merging m into base would lower any entry.
func improves(base, m DistMap) bool {
	for k, v := range m {
		if cur, ok := base[k]; !ok || v < cur {
			return true
		}
	}
	return false
}

// ShortestPaths computes, for every vertex, the hop distance to each of the
// given landmark vertices along outgoing edges, exactly like GraphX's
// ShortestPaths: distance maps propagate backwards (from edge destination
// to source), and each vertex value is a map landmark→distance containing
// only reachable landmarks. maxIter of 0 runs to convergence.
func ShortestPaths(ctx context.Context, pg *pregel.PartitionedGraph, landmarks []graph.VertexID, maxIter int) ([]DistMap, *pregel.RunStats, error) {
	if len(landmarks) == 0 {
		return nil, nil, fmt.Errorf("algorithms: ShortestPaths needs at least one landmark")
	}
	isLandmark := make(map[graph.VertexID]bool, len(landmarks))
	for _, l := range landmarks {
		isLandmark[l] = true
	}
	mapBytes := func(m DistMap) int { return 16 + 12*len(m) }
	prog := pregel.Program[DistMap, DistMap]{
		Init: func(id graph.VertexID) DistMap {
			if isLandmark[id] {
				return DistMap{id: 0}
			}
			return DistMap{}
		},
		VProg: func(id graph.VertexID, val, msg DistMap) DistMap {
			if msg == nil { // superstep-0 initial message
				return val
			}
			return mergeMin(val, msg)
		},
		SendMsg: func(t *pregel.Triplet[DistMap], emit pregel.Emitter[DistMap]) {
			// Distances travel against edge direction: src reaches every
			// landmark dst reaches, one hop further.
			if len(t.DstVal) == 0 {
				return
			}
			cand := make(DistMap, len(t.DstVal))
			for k, v := range t.DstVal {
				cand[k] = v + 1
			}
			if improves(t.SrcVal, cand) {
				emit.ToSrc(cand)
			}
		},
		MergeMsg:        mergeMin,
		InitialMsg:      nil,
		MaxIterations:   maxIter,
		ActiveDirection: pregel.In, // scan edges whose destination updated
		StateBytes:      mapBytes,
		MsgBytes:        mapBytes,
		EdgeCost: func(t *pregel.Triplet[DistMap]) float64 {
			return 1 + float64(len(t.DstVal))
		},
	}
	return pregel.Run(ctx, pg, prog)
}

// ShortestPathsSeq is the sequential oracle: BFS from each landmark over
// the reversed graph yields, for every vertex, the forward hop distance to
// that landmark. The result is aligned with g.Vertices().
func ShortestPathsSeq(g *graph.Graph, landmarks []graph.VertexID) []DistMap {
	verts := g.Vertices()
	nv := len(verts)
	out := make([]DistMap, nv)
	for i := range out {
		out[i] = DistMap{}
	}
	for _, l := range landmarks {
		li, ok := g.Index(l)
		if !ok {
			continue
		}
		dist := make([]int32, nv)
		for i := range dist {
			dist[i] = -1
		}
		dist[li] = 0
		queue := []int32{li}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// Predecessors of v (in-neighbors) are one hop further away.
			for _, u := range g.InNeighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for i := 0; i < nv; i++ {
			if dist[i] >= 0 {
				out[i][l] = dist[i]
			}
		}
	}
	return out
}
