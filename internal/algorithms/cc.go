package algorithms

import (
	"context"
	"math"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// ccInitSentinel is the superstep-0 initial message; it is larger than any
// vertex ID so the min-merge leaves the initial label untouched.
const ccInitSentinel = graph.VertexID(math.MaxInt64)

// ConnectedComponents runs GraphX-style label propagation: every vertex
// starts labeled with its own ID and repeatedly adopts the minimum label of
// its neighbors, treating edges as undirected. maxIter caps the number of
// message rounds (0 = run to convergence; the paper's experiments use 10).
// It returns the component label per dense vertex index and the run stats.
func ConnectedComponents(ctx context.Context, pg *pregel.PartitionedGraph, maxIter int) ([]graph.VertexID, *pregel.RunStats, error) {
	return pregel.Run(ctx, pg, ConnectedComponentsProgram(maxIter))
}

// ConnectedComponentsProgram is the label-propagation Pregel program,
// exported so the distributed worker runs exactly the engine's program.
func ConnectedComponentsProgram(maxIter int) pregel.Program[graph.VertexID, graph.VertexID] {
	return pregel.Program[graph.VertexID, graph.VertexID]{
		Init: func(id graph.VertexID) graph.VertexID { return id },
		VProg: func(id graph.VertexID, val, msg graph.VertexID) graph.VertexID {
			if msg < val {
				return msg
			}
			return val
		},
		SendMsg: func(t *pregel.Triplet[graph.VertexID], emit pregel.Emitter[graph.VertexID]) {
			if t.SrcVal < t.DstVal {
				emit.ToDst(t.SrcVal)
			} else if t.DstVal < t.SrcVal {
				emit.ToSrc(t.DstVal)
			}
		},
		MergeMsg: func(a, b graph.VertexID) graph.VertexID {
			if a < b {
				return a
			}
			return b
		},
		InitialMsg:      ccInitSentinel,
		MaxIterations:   maxIter,
		ActiveDirection: pregel.Either,
	}
}

// ConnectedComponentsSeq is the union-find oracle; it returns the minimum
// vertex ID of each vertex's component, aligned with g.Vertices().
func ConnectedComponentsSeq(g *graph.Graph) []graph.VertexID {
	labels, _ := g.ConnectedComponents()
	return labels
}

// CountComponents returns the number of distinct labels.
func CountComponents(labels []graph.VertexID) int {
	set := make(map[graph.VertexID]struct{}, 64)
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}
