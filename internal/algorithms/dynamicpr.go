package algorithms

import (
	"context"
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// PRState is the vertex value of dynamic PageRank: the current rank and
// the last change (delta), which gates further propagation. Exported so
// the distributed worker can decode the 16-byte state off the wire.
type PRState struct {
	Rank  float64
	Delta float64
}

// DynamicPageRank runs PageRank until convergence, mirroring GraphX's
// runUntilConvergence: a vertex stops sending once its rank changed by
// less than tol in the last round, so the active edge set shrinks over
// time (the behavior that makes fine-grained partitioning win for
// convergent algorithms, §4). It returns the converged ranks.
//
// maxIter of 0 means no cap.
func DynamicPageRank(ctx context.Context, pg *pregel.PartitionedGraph, tol, resetProb float64, maxIter int) ([]float64, *pregel.RunStats, error) {
	if tol <= 0 {
		return nil, nil, fmt.Errorf("algorithms: DynamicPageRank needs tol > 0, got %g", tol)
	}
	if resetProb < 0 || resetProb >= 1 {
		return nil, nil, fmt.Errorf("algorithms: DynamicPageRank resetProb %g out of [0,1)", resetProb)
	}
	prog := DynamicPageRankProgram(tol, resetProb, maxIter, GraphDegreeFunc(pg.G))
	vals, stats, err := pregel.Run(ctx, pg, prog)
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float64, len(vals))
	for i, v := range vals {
		ranks[i] = v.Rank
	}
	return ranks, stats, nil
}

// DynamicPageRankProgram is the until-convergence PageRank Pregel program,
// exported so the distributed worker runs exactly the engine's program.
func DynamicPageRankProgram(tol, resetProb float64, maxIter int, degOf func(graph.VertexID) float64) pregel.Program[PRState, float64] {
	return pregel.Program[PRState, float64]{
		Init: func(id graph.VertexID) PRState { return PRState{} },
		VProg: func(id graph.VertexID, val PRState, msg float64) PRState {
			newRank := val.Rank + (1-resetProb)*msg
			return PRState{Rank: newRank, Delta: newRank - val.Rank}
		},
		SendMsg: func(t *pregel.Triplet[PRState], emit pregel.Emitter[float64]) {
			// Only still-moving sources propagate their delta.
			if t.SrcVal.Delta > tol {
				d := degOf(t.SrcID)
				if d > 0 {
					emit.ToDst(t.SrcVal.Delta / d)
				}
			}
		},
		MergeMsg: func(a, b float64) float64 { return a + b },
		// GraphX's initial message: after superstep 0 every rank is
		// resetProb and every delta is resetProb (> tol), so the first
		// real round is fully active.
		InitialMsg:      resetProb / (1 - resetProb),
		MaxIterations:   maxIter,
		ActiveDirection: pregel.Out,
	}
}

// DynamicPageRankSeq is the sequential oracle: Jacobi iteration of the
// same update until every per-vertex change is at most tol.
func DynamicPageRankSeq(g *graph.Graph, tol, resetProb float64) []float64 {
	verts := g.Vertices()
	nv := len(verts)
	outDeg := g.OutDegrees()
	ranks := make([]float64, nv)
	for i := range ranks {
		ranks[i] = resetProb
	}
	contrib := make([]float64, nv)
	for iter := 0; iter < 10_000; iter++ {
		for i := range contrib {
			contrib[i] = 0
		}
		for _, e := range g.Edges() {
			si, _ := g.Index(e.Src)
			di, _ := g.Index(e.Dst)
			if outDeg[si] > 0 {
				contrib[di] += ranks[si] / float64(outDeg[si])
			}
		}
		maxDelta := 0.0
		for i := range ranks {
			next := resetProb + (1-resetProb)*contrib[i]
			d := next - ranks[i]
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
			ranks[i] = next
		}
		if maxDelta <= tol {
			break
		}
	}
	return ranks
}
