package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary frame layouts (all integers little-endian, values fixed-width per
// the run's Codec):
//
//	BroadcastFrame ("CFDB"): u32 magic, u32 superstep, u32 partCount,
//	  then per partition: u32 part, u32 n, n × (u32 local, V bytes).
//	  Only partitions with at least one changed mirror appear.
//
//	ReduceFrame ("CFDR"): u32 magic, u32 superstep, u32 partCount,
//	  then per owned partition, ascending by index: u32 part, u32 n,
//	  i64 scanned, i64 visited, i64 emitted, f64 cost,
//	  n × (u32 local, M bytes). Every owned partition appears, message
//	  count zero or not, so compute stats always arrive.
//
// Within a partition the (local, value) pairs are ascending by local index;
// across partitions the reduce frame is ascending by partition index. The
// coordinator merges partitions in ascending order per destination vertex,
// reproducing the local reduce phase's merge order exactly.
const (
	magicBroadcast uint32 = 'C' | 'F'<<8 | 'D'<<16 | 'B'<<24
	magicReduce    uint32 = 'C' | 'F'<<8 | 'D'<<16 | 'R'<<24
)

// framePart is one partition's slab inside a broadcast or reduce frame.
type framePart struct {
	part  int
	n     int
	pairs []byte // n × (u32 local, value bytes)

	// Reduce-frame compute stats; zero in broadcast frames.
	scanned, visited, emitted int64
	cost                      float64
}

// frameReader is a bounds-checked cursor with a sticky error.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.err = fmt.Errorf("dist: frame truncated: need %d bytes, have %d", n, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *frameReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *frameReader) i64() int64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p))
}

func (r *frameReader) f64() float64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func (r *frameReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("dist: %d trailing bytes in frame", len(r.b)-r.off)
	}
	return nil
}

// encodeBroadcastFrame assembles one worker's broadcast frame from the
// per-partition pair slabs the exchanger batched.
func encodeBroadcastFrame(step int, parts []framePart) []byte {
	size := 12
	for i := range parts {
		size += 8 + len(parts[i].pairs)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, magicBroadcast)
	out = binary.LittleEndian.AppendUint32(out, uint32(step))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	for i := range parts {
		out = binary.LittleEndian.AppendUint32(out, uint32(parts[i].part))
		out = binary.LittleEndian.AppendUint32(out, uint32(parts[i].n))
		out = append(out, parts[i].pairs...)
	}
	return out
}

// parseFrame validates a frame against the expected magic and the run's
// value width and returns the superstep plus the partition slabs.
func parseFrame(frame []byte, wantMagic uint32, valSize int, withStats bool) (int, []framePart, error) {
	r := &frameReader{b: frame}
	if m := r.u32(); r.err == nil && m != wantMagic {
		return 0, nil, fmt.Errorf("dist: frame magic %08x, want %08x", m, wantMagic)
	}
	step := int(r.u32())
	count := int(r.u32())
	if r.err != nil {
		return 0, nil, r.err
	}
	if count < 0 || count > (len(frame)+7)/8 {
		return 0, nil, fmt.Errorf("dist: frame part count %d exceeds frame size", count)
	}
	parts := make([]framePart, 0, count)
	pair := 4 + valSize
	for i := 0; i < count && r.err == nil; i++ {
		fp := framePart{
			part: int(r.u32()),
			n:    int(r.u32()),
		}
		if withStats {
			fp.scanned = r.i64()
			fp.visited = r.i64()
			fp.emitted = r.i64()
			fp.cost = r.f64()
		}
		if r.err == nil && (fp.n < 0 || fp.n > (len(frame)-r.off)/pair) {
			return 0, nil, fmt.Errorf("dist: frame partition %d claims %d pairs, frame too small", fp.part, fp.n)
		}
		fp.pairs = r.take(fp.n * pair)
		parts = append(parts, fp)
	}
	if err := r.finish(); err != nil {
		return 0, nil, err
	}
	return step, parts, nil
}

// reduceFrameBuilder assembles a worker's reduce frame incrementally: one
// beginPart/endPart bracket per owned partition, message pairs appended in
// between.
type reduceFrameBuilder struct {
	buf     []byte
	nOff    int // offset of the open partition's pair-count field
	nPairs  int
	nParts  int
	cntOff  int // offset of the frame's partition-count field
	valSize int
}

func newReduceFrameBuilder(step, valSize int) *reduceFrameBuilder {
	b := &reduceFrameBuilder{valSize: valSize}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, magicReduce)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(step))
	b.cntOff = len(b.buf)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, 0) // partCount, backfilled
	return b
}

func (b *reduceFrameBuilder) beginPart(part int, scanned, visited, emitted int64, cost float64) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(part))
	b.nOff = len(b.buf)
	b.nPairs = 0
	b.buf = binary.LittleEndian.AppendUint32(b.buf, 0) // n, backfilled
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(scanned))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(visited))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(emitted))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(cost))
}

// pairPrefix appends the local index of the next pair; the caller appends
// the value bytes through its Codec immediately after.
func (b *reduceFrameBuilder) pairPrefix(local int32) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(local))
	b.nPairs++
}

func (b *reduceFrameBuilder) endPart() {
	binary.LittleEndian.PutUint32(b.buf[b.nOff:], uint32(b.nPairs))
	b.nParts++
}

func (b *reduceFrameBuilder) bytes() []byte {
	binary.LittleEndian.PutUint32(b.buf[b.cntOff:], uint32(b.nParts))
	return b.buf
}
