package dist

import (
	"encoding/binary"
	"math"

	"cutfit/internal/algorithms"
	"cutfit/internal/graph"
)

// Codec fixes the wire form of one vertex-state or message type: a fixed
// byte width, an appender and a decoder. Values are little-endian and
// bit-exact (float64 travels as its IEEE-754 bits), so a value decoded on
// the far side is the identical bit pattern — the precondition for
// bit-identical distributed runs.
type Codec[T any] interface {
	Size() int
	Append(dst []byte, v T) []byte
	Decode(p []byte) T
}

// f64Codec carries float64 ranks and messages.
type f64Codec struct{}

func (f64Codec) Size() int { return 8 }
func (f64Codec) Append(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
func (f64Codec) Decode(p []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

// vidCodec carries graph.VertexID component labels.
type vidCodec struct{}

func (vidCodec) Size() int { return 8 }
func (vidCodec) Append(dst []byte, v graph.VertexID) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}
func (vidCodec) Decode(p []byte) graph.VertexID {
	return graph.VertexID(binary.LittleEndian.Uint64(p))
}

// prStateCodec carries dynamic PageRank's (rank, delta) vertex state.
type prStateCodec struct{}

func (prStateCodec) Size() int { return 16 }
func (prStateCodec) Append(dst []byte, v algorithms.PRState) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Rank))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Delta))
}
func (prStateCodec) Decode(p []byte) algorithms.PRState {
	return algorithms.PRState{
		Rank:  math.Float64frombits(binary.LittleEndian.Uint64(p)),
		Delta: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
	}
}
