package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"cutfit/internal/algorithms"
	"cutfit/internal/partition"
)

// TestDeadWorkerFailsRun: a pool pointing at a worker that never answers
// must fail the run with an error — never return partial or wrong values.
func TestDeadWorkerFailsRun(t *testing.T) {
	live := httptest.NewServer(NewWorker().Handler())
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from the first RPC

	pool := NewPool([]string{live.URL, deadURL})
	pg := mustPartition(t, hubAndChain(6, 8), partition.RandomVertexCut(), 4)
	vals, stats, err := PageRank(context.Background(), pool, pg, 3, algorithms.DefaultResetProb)
	if err == nil {
		t.Fatal("run against a dead worker succeeded")
	}
	if vals != nil || stats != nil {
		t.Fatal("failed run returned values or stats")
	}
}

// TestWorkerLossMidRun kills a worker after it has answered its first
// superstep. The coordinator must surface an error for the whole run —
// graceful degradation is the caller's job (Session re-runs locally) and
// must never be a silently wrong distributed answer.
func TestWorkerLossMidRun(t *testing.T) {
	w0 := httptest.NewServer(NewWorker().Handler())
	defer w0.Close()

	// w1 proxies its worker until the second step request, then answers 500
	// for everything — the moral equivalent of the process dying mid-run.
	inner := NewWorker().Handler()
	var steps atomic.Int64
	w1 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		isStep := r.Method == http.MethodPost && len(r.URL.Path) > 5 && r.URL.Path[len(r.URL.Path)-5:] == "/step"
		if isStep && steps.Add(1) >= 2 {
			http.Error(rw, "worker lost", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	defer w1.Close()

	pool := NewPool([]string{w0.URL, w1.URL})
	pg := mustPartition(t, hubAndChain(6, 8), partition.RandomVertexCut(), 4)
	vals, stats, err := PageRank(context.Background(), pool, pg, 5, algorithms.DefaultResetProb)
	if err == nil {
		t.Fatal("run across a mid-run worker loss succeeded")
	}
	if vals != nil || stats != nil {
		t.Fatal("failed run returned values or stats")
	}
	if steps.Load() < 2 {
		t.Fatalf("worker was killed before the failure point (%d step requests)", steps.Load())
	}
}

// TestOutOfSequenceStepRejected replays a superstep frame; the worker must
// answer 409, not double-apply the mirror updates.
func TestOutOfSequenceStepRejected(t *testing.T) {
	worker := NewWorker()
	srv := httptest.NewServer(worker.Handler())
	defer srv.Close()
	pool := NewPool([]string{srv.URL})
	pg := mustPartition(t, hubAndChain(6, 8), partition.RandomVertexCut(), 3)

	// Install the shard and bind a run by hand.
	sum := topoSum(pg)
	key := shardKey(pg.G, sum, pg.NumParts, 0, 1)
	ctx := context.Background()
	if err := pool.prepareWorker(ctx, 0, key, pg); err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Run: "replay-test", Shard: key, Algorithm: "pagerank", Iters: 3, ResetProb: algorithms.DefaultResetProb}
	if err := pool.tr.StartRun(ctx, srv.URL, spec); err != nil {
		t.Fatal(err)
	}
	frame := encodeBroadcastFrame(1, nil)
	if _, err := pool.tr.Step(ctx, srv.URL, "replay-test", frame); err != nil {
		t.Fatalf("first step: %v", err)
	}
	if _, err := pool.tr.Step(ctx, srv.URL, "replay-test", frame); err == nil {
		t.Fatal("replayed superstep frame was accepted")
	}
}
