package dist

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func readDistributedDoc(t *testing.T) string {
	t.Helper()
	body, err := os.ReadFile("../../docs/DISTRIBUTED.md")
	if err != nil {
		t.Fatalf("reading docs/DISTRIBUTED.md: %v", err)
	}
	return string(body)
}

// TestDistributedDocCoversProtocol is the bidirectional drift guard
// between the ProtocolMessages table — the single source of truth the
// worker mux is built from — and docs/DISTRIBUTED.md:
//
//  1. every protocol entry (rpc, frame, artifact) must be named in the
//     doc, rpc entries with their exact route;
//  2. every /dist/v1 route the doc mentions must exist in the table.
//
// Together with Worker.Handler panicking on a table entry without a
// handler, an endpoint can neither exist undocumented nor be documented
// without existing.
func TestDistributedDocCoversProtocol(t *testing.T) {
	doc := readDistributedDoc(t)

	for _, pm := range ProtocolMessages {
		if !strings.Contains(doc, "`"+pm.Name+"`") {
			t.Errorf("protocol %s %q is not named in docs/DISTRIBUTED.md", pm.Kind, pm.Name)
		}
		if pm.Kind == "rpc" && !strings.Contains(doc, pm.Route) {
			t.Errorf("rpc %q: route %q missing from docs/DISTRIBUTED.md", pm.Name, pm.Route)
		}
	}

	routes := make(map[string]bool)
	for _, pm := range ProtocolMessages {
		if pm.Kind == "rpc" {
			_, path, _ := strings.Cut(pm.Route, " ")
			routes[path] = true
		}
	}
	// Match concrete /dist/v1 paths in the doc; {id} segments are part of
	// the route pattern, a trailing "/" alone is the mount prefix.
	re := regexp.MustCompile(`/dist/v1/[a-z{}/_id]*[a-z}]`)
	for _, m := range re.FindAllString(doc, -1) {
		if !routes[m] {
			t.Errorf("docs/DISTRIBUTED.md mentions %q, which is not a ProtocolMessages route", m)
		}
	}
}

// TestDistributedDocCoversHeaders keeps the shard-transfer header names
// in the doc in sync with the constants the wire actually uses.
func TestDistributedDocCoversHeaders(t *testing.T) {
	doc := readDistributedDoc(t)
	for _, h := range []string{HeaderShardKey, HeaderShardBase} {
		if !strings.Contains(doc, h) {
			t.Errorf("header %q is not documented in docs/DISTRIBUTED.md", h)
		}
	}
}
