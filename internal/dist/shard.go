package dist

import (
	"fmt"
	"hash/fnv"
	"slices"

	"cutfit/internal/graph"
	"cutfit/internal/pregel"
	"cutfit/internal/snap"
)

// ownedParts returns the partitions worker wIdx of W owns under the fixed
// modulo placement. Placement is a pure function of (partition, W) so the
// coordinator and tests never disagree about who owns what.
func ownedParts(numParts, wIdx, W int) []int {
	var owned []int
	for p := wIdx; p < numParts; p += W {
		owned = append(owned, p)
	}
	return owned
}

// workerOf returns the worker index that owns partition p.
func workerOf(p, W int) int { return p % W }

// topoSum content-addresses the partitioned topology: an FNV-1a fold over
// every partition's local vertex table and edge list. Combined with the
// graph fingerprint it names a shard generation, so a worker holding a
// stale shard (e.g. after a coordinator restart rebuilt partitions
// differently) can never silently serve the wrong topology.
func topoSum(pg *pregel.PartitionedGraph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(pg.NumParts))
	for p, part := range pg.Parts {
		put(uint64(p))
		put(uint64(len(part.LocalVerts)))
		for _, g := range part.LocalVerts {
			put(uint64(uint32(g)))
		}
		ne := part.NumEdges()
		put(uint64(ne))
		for j := 0; j < ne; j++ {
			s, d := part.EdgeAt(j)
			put(uint64(uint32(s))<<32 | uint64(uint32(d)))
		}
	}
	return h.Sum64()
}

// shardKey is the content-addressed identity of one worker's shard of one
// topology generation.
func shardKey(g *graph.Graph, sum uint64, numParts, wIdx, W int) string {
	return fmt.Sprintf("%016x-%016x-p%d-w%d.%d", g.Fingerprint(), sum, numParts, wIdx, W)
}

// keyFP folds a shard key string to the u64 the delta payload embeds as
// BaseFP, binding a delta to its base across the wire.
func keyFP(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// partTables flattens one partition into wire tables.
func partTables(part *pregel.Partition) (lv, src, dst []int32) {
	lv = part.LocalVerts
	ne := part.NumEdges()
	src = make([]int32, ne)
	dst = make([]int32, ne)
	for j := 0; j < ne; j++ {
		src[j], dst[j] = part.EdgeAt(j)
	}
	return lv, src, dst
}

// extractShard builds worker wIdx's full shard payload.
func extractShard(pg *pregel.PartitionedGraph, wIdx, W int) *snap.ShardPayload {
	g := pg.G
	sp := &snap.ShardPayload{
		GraphFP:  g.Fingerprint(),
		NumParts: pg.NumParts,
		NumVerts: g.NumVertices(),
		Verts:    g.Vertices(),
		OutDeg:   g.OutDegrees(),
	}
	for _, p := range ownedParts(pg.NumParts, wIdx, W) {
		lv, src, dst := partTables(pg.Parts[p])
		sp.Parts = append(sp.Parts, snap.ShardPart{
			Index:      p,
			Mode:       snap.ShardPartReplace,
			LocalVerts: lv,
			EdgeSrc:    src,
			EdgeDst:    dst,
		})
	}
	return sp
}

// partEqual reports whether two partitions hold identical tables.
func partEqual(a, b *pregel.Partition) bool {
	if !slices.Equal(a.LocalVerts, b.LocalVerts) || a.NumEdges() != b.NumEdges() {
		return false
	}
	for j := 0; j < a.NumEdges(); j++ {
		as, ad := a.EdgeAt(j)
		bs, bd := b.EdgeAt(j)
		if as != bs || ad != bd {
			return false
		}
	}
	return true
}

// partPrefix reports whether old is a strict table prefix of new — a Grow
// generation that only appended vertices and edges to the partition.
func partPrefix(old, new *pregel.Partition) bool {
	if len(old.LocalVerts) > len(new.LocalVerts) || old.NumEdges() > new.NumEdges() {
		return false
	}
	if !slices.Equal(old.LocalVerts, new.LocalVerts[:len(old.LocalVerts)]) {
		return false
	}
	for j := 0; j < old.NumEdges(); j++ {
		os, od := old.EdgeAt(j)
		ns, nd := new.EdgeAt(j)
		if os != ns || od != nd {
			return false
		}
	}
	return true
}

// diffShard builds a delta payload turning worker wIdx's shard of oldPG
// into its shard of newPG, or reports ok=false when a delta is not
// worthwhile (partition counts differ, or the dense vertex table is not an
// in-place extension — then the caller ships a full shard).
func diffShard(oldPG, newPG *pregel.PartitionedGraph, baseKey string, wIdx, W int) (*snap.ShardPayload, bool) {
	if oldPG.NumParts != newPG.NumParts {
		return nil, false
	}
	oldVerts := oldPG.G.Vertices()
	newVerts := newPG.G.Vertices()
	if len(oldVerts) > len(newVerts) || !slices.Equal(oldVerts, newVerts[:len(oldVerts)]) {
		return nil, false
	}
	sp := &snap.ShardPayload{
		GraphFP:     newPG.G.Fingerprint(),
		BaseFP:      keyFP(baseKey),
		NumParts:    newPG.NumParts,
		NumVerts:    len(newVerts),
		OldNumVerts: len(oldVerts),
		Verts:       newVerts[len(oldVerts):],
		// Out-degrees change wholesale on any topology edit (a Grow touches
		// existing sources), so the table always ships full.
		OutDeg: newPG.G.OutDegrees(),
	}
	for _, p := range ownedParts(newPG.NumParts, wIdx, W) {
		oldPart, newPart := oldPG.Parts[p], newPG.Parts[p]
		switch {
		case partEqual(oldPart, newPart):
			sp.Parts = append(sp.Parts, snap.ShardPart{Index: p, Mode: snap.ShardPartUnchanged})
		case partPrefix(oldPart, newPart):
			lv, src, dst := partTables(newPart)
			sp.Parts = append(sp.Parts, snap.ShardPart{
				Index:      p,
				Mode:       snap.ShardPartAppend,
				LocalVerts: lv[len(oldPart.LocalVerts):],
				EdgeSrc:    src[oldPart.NumEdges():],
				EdgeDst:    dst[oldPart.NumEdges():],
			})
		default:
			lv, src, dst := partTables(newPart)
			sp.Parts = append(sp.Parts, snap.ShardPart{
				Index:      p,
				Mode:       snap.ShardPartReplace,
				LocalVerts: lv,
				EdgeSrc:    src,
				EdgeDst:    dst,
			})
		}
	}
	return sp, true
}
