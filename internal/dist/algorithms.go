package dist

import (
	"context"
	"fmt"

	"cutfit/internal/algorithms"
	"cutfit/internal/graph"
	"cutfit/internal/pregel"
)

// The typed entry points mirror internal/algorithms' signatures exactly, so
// Session can swap a local call for a distributed one per run. Programs are
// built with the same constructors the local path uses; only the Exchanger
// differs.

// PageRank runs static PageRank on the pool, bit-identical to
// algorithms.PageRank on the same partitioned graph.
func PageRank(ctx context.Context, pool *Pool, pg *pregel.PartitionedGraph, numIter int, resetProb float64) ([]float64, *pregel.RunStats, error) {
	if numIter <= 0 {
		return nil, nil, fmt.Errorf("dist: PageRank needs numIter > 0, got %d", numIter)
	}
	if resetProb < 0 || resetProb >= 1 {
		return nil, nil, fmt.Errorf("dist: PageRank resetProb %g out of [0,1)", resetProb)
	}
	prog := algorithms.PageRankProgram(numIter, resetProb, algorithms.GraphDegreeFunc(pg.G))
	spec := RunSpec{Algorithm: "pagerank", Iters: numIter, ResetProb: resetProb}
	return runDist(ctx, pool, pg, prog, spec, f64Codec{}, f64Codec{})
}

// ConnectedComponents runs label propagation on the pool, bit-identical to
// algorithms.ConnectedComponents.
func ConnectedComponents(ctx context.Context, pool *Pool, pg *pregel.PartitionedGraph, maxIter int) ([]graph.VertexID, *pregel.RunStats, error) {
	prog := algorithms.ConnectedComponentsProgram(maxIter)
	spec := RunSpec{Algorithm: "cc", Iters: maxIter}
	return runDist(ctx, pool, pg, prog, spec, vidCodec{}, vidCodec{})
}

// DynamicPageRank runs until-convergence PageRank on the pool,
// bit-identical to algorithms.DynamicPageRank.
func DynamicPageRank(ctx context.Context, pool *Pool, pg *pregel.PartitionedGraph, tol, resetProb float64, maxIter int) ([]float64, *pregel.RunStats, error) {
	if tol <= 0 {
		return nil, nil, fmt.Errorf("dist: DynamicPageRank needs tol > 0, got %g", tol)
	}
	if resetProb < 0 || resetProb >= 1 {
		return nil, nil, fmt.Errorf("dist: DynamicPageRank resetProb %g out of [0,1)", resetProb)
	}
	prog := algorithms.DynamicPageRankProgram(tol, resetProb, maxIter, algorithms.GraphDegreeFunc(pg.G))
	spec := RunSpec{Algorithm: "dynamicpr", Iters: maxIter, Tol: tol, ResetProb: resetProb}
	vals, stats, err := runDist(ctx, pool, pg, prog, spec, prStateCodec{}, f64Codec{})
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float64, len(vals))
	for i, v := range vals {
		ranks[i] = v.Rank
	}
	return ranks, stats, nil
}
