package dist

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"

	"cutfit/internal/algorithms"
	"cutfit/internal/graph"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
	"cutfit/internal/rng"
)

// startCluster boots n workers on real 127.0.0.1 sockets and returns a
// pool over them. Each worker is a full HTTP stack — frames cross the
// loopback wire exactly as they would a network.
func startCluster(t *testing.T, n int) (*Pool, []*Worker) {
	t.Helper()
	workers := make([]*Worker, n)
	urls := make([]string, n)
	for i := range workers {
		workers[i] = NewWorker()
		srv := httptest.NewServer(workers[i].Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return NewPool(urls), workers
}

func randomGraph(seed uint64, maxV, maxE int) *graph.Graph {
	r := rng.New(seed)
	nv := 2 + r.Intn(maxV)
	ne := 1 + r.Intn(maxE)
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(r.Intn(nv)),
			Dst: graph.VertexID(r.Intn(nv)),
		}
	}
	return graph.FromEdges(edges)
}

// hubAndChain is the structured family: a star whose hub feeds a long
// chain, giving both a high-degree vertex and a deep propagation path.
func hubAndChain(spokes, chain int) *graph.Graph {
	var edges []graph.Edge
	for i := 1; i <= spokes; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.VertexID(i)})
	}
	prev := graph.VertexID(1)
	for i := 0; i < chain; i++ {
		next := graph.VertexID(spokes + 1 + i)
		edges = append(edges, graph.Edge{Src: prev, Dst: next})
		prev = next
	}
	return graph.FromEdges(edges)
}

func mustPartition(t *testing.T, g *graph.Graph, s partition.Strategy, parts int) *pregel.PartitionedGraph {
	t.Helper()
	assign, err := s.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.NewPartitionedGraph(g, assign, parts)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// assertBitEqualF64 requires exact float64 bit equality — the distributed
// contract is bit-identical, not approximately-equal.
func assertBitEqualF64(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: vertex %d: got %x (%g), want %x (%g)",
				label, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func assertStatsEqual(t *testing.T, label string, got, want *pregel.RunStats) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: distributed stats diverge from local\n got: %+v\nwant: %+v", label, got, want)
	}
}

// TestDistributedEquivalence is the core contract: every supported
// algorithm, over both graph families and several partition counts,
// produces bit-identical values AND identical engine statistics whether
// the supersteps run in-process or across workers on loopback sockets.
func TestDistributedEquivalence(t *testing.T) {
	ctx := context.Background()
	graphs := map[string]*graph.Graph{
		"random":   randomGraph(42, 60, 300),
		"hubchain": hubAndChain(12, 20),
	}
	strat := partition.RandomVertexCut()
	for _, W := range []int{1, 2, 3} {
		pool, _ := startCluster(t, W)
		for gname, g := range graphs {
			for _, parts := range []int{1, 4, 7} {
				pg := mustPartition(t, g, strat, parts)

				// pagerank
				wantPR, wantStats, err := algorithms.PageRank(ctx, pg, 5, algorithms.DefaultResetProb)
				if err != nil {
					t.Fatal(err)
				}
				gotPR, gotStats, err := PageRank(ctx, pool, pg, 5, algorithms.DefaultResetProb)
				if err != nil {
					t.Fatalf("dist pagerank (%s, W=%d, parts=%d): %v", gname, W, parts, err)
				}
				assertBitEqualF64(t, "pagerank/"+gname, gotPR, wantPR)
				assertStatsEqual(t, "pagerank/"+gname, gotStats, wantStats)

				// cc
				wantCC, wantStats2, err := algorithms.ConnectedComponents(ctx, pg, 0)
				if err != nil {
					t.Fatal(err)
				}
				gotCC, gotStats2, err := ConnectedComponents(ctx, pool, pg, 0)
				if err != nil {
					t.Fatalf("dist cc (%s, W=%d, parts=%d): %v", gname, W, parts, err)
				}
				if !reflect.DeepEqual(gotCC, wantCC) {
					t.Fatalf("cc/%s: labels diverge", gname)
				}
				assertStatsEqual(t, "cc/"+gname, gotStats2, wantStats2)

				// dynamicpr
				wantDPR, wantStats3, err := algorithms.DynamicPageRank(ctx, pg, 1e-3, algorithms.DefaultResetProb, 20)
				if err != nil {
					t.Fatal(err)
				}
				gotDPR, gotStats3, err := DynamicPageRank(ctx, pool, pg, 1e-3, algorithms.DefaultResetProb, 20)
				if err != nil {
					t.Fatalf("dist dynamicpr (%s, W=%d, parts=%d): %v", gname, W, parts, err)
				}
				assertBitEqualF64(t, "dynamicpr/"+gname, gotDPR, wantDPR)
				assertStatsEqual(t, "dynamicpr/"+gname, gotStats3, wantStats3)
			}
		}
	}
}

// TestDistributedGenerations grows and then shrinks a graph, running
// distributed after every generation step; the second and third runs must
// ship deltas, not full shards, and every run must stay bit-identical to
// the local engine.
func TestDistributedGenerations(t *testing.T) {
	ctx := context.Background()
	pool, _ := startCluster(t, 2)
	strat := partition.RandomVertexCut()
	const parts = 5

	check := func(label string, pg *pregel.PartitionedGraph) {
		t.Helper()
		want, wantStats, err := algorithms.PageRank(ctx, pg, 6, algorithms.DefaultResetProb)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := PageRank(ctx, pool, pg, 6, algorithms.DefaultResetProb)
		if err != nil {
			t.Fatalf("%s: dist pagerank: %v", label, err)
		}
		assertBitEqualF64(t, label, got, want)
		assertStatsEqual(t, label, gotStats, wantStats)

		wantCC, _, err := algorithms.ConnectedComponents(ctx, pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		gotCC, _, err := ConnectedComponents(ctx, pool, pg, 0)
		if err != nil {
			t.Fatalf("%s: dist cc: %v", label, err)
		}
		if !reflect.DeepEqual(gotCC, wantCC) {
			t.Fatalf("%s: cc labels diverge", label)
		}
	}

	g1 := randomGraph(7, 50, 250)
	pg1 := mustPartition(t, g1, strat, parts)
	check("base", pg1)

	// Grow: append a batch touching both existing and brand-new vertices.
	nv := int32(g1.NumVertices())
	batch := []graph.Edge{
		{Src: 0, Dst: graph.VertexID(nv + 1)},
		{Src: graph.VertexID(nv + 1), Dst: graph.VertexID(nv + 2)},
		{Src: graph.VertexID(nv + 2), Dst: 0},
		{Src: 1, Dst: graph.VertexID(nv + 3)},
	}
	g2, _ := g1.Grow(batch)
	pg2 := mustPartition(t, g2, strat, parts)

	deltasBefore := cShards.With("delta").Value()
	check("grown", pg2)
	if got := cShards.With("delta").Value(); got <= deltasBefore {
		t.Fatalf("grown generation shipped no delta shards (counter %d -> %d)", deltasBefore, got)
	}

	// Shrink: retire the oldest quarter of the edge window.
	g3, _ := g2.ShrinkBefore(g2.NumEdges() / 4)
	pg3 := mustPartition(t, g3, strat, parts)
	deltasBefore = cShards.With("delta").Value()
	check("shrunk", pg3)
	if got := cShards.With("delta").Value(); got <= deltasBefore {
		t.Logf("note: shrunk generation shipped full shards (counter %d -> %d)", deltasBefore, got)
	}
}

// TestShardReuse verifies that re-running on an unchanged topology ships
// nothing: the second run reuses the worker-resident shard.
func TestShardReuse(t *testing.T) {
	ctx := context.Background()
	pool, _ := startCluster(t, 2)
	pg := mustPartition(t, hubAndChain(8, 10), partition.RandomVertexCut(), 4)

	if _, _, err := PageRank(ctx, pool, pg, 3, algorithms.DefaultResetProb); err != nil {
		t.Fatal(err)
	}
	reusedBefore := cShards.With("reused").Value()
	fullBefore := cShards.With("full").Value()
	if _, _, err := PageRank(ctx, pool, pg, 3, algorithms.DefaultResetProb); err != nil {
		t.Fatal(err)
	}
	if got := cShards.With("reused").Value(); got != reusedBefore+2 {
		t.Fatalf("second run reused %d shards, want 2", got-reusedBefore)
	}
	if got := cShards.With("full").Value(); got != fullBefore {
		t.Fatalf("second run shipped %d full shards, want 0", got-fullBefore)
	}
}

// TestWorkerEvictionRecovery kills a worker's shard cache between runs
// (simulating a worker restart); RunStart's 404 must trigger a full
// re-ship and the run must still succeed.
func TestWorkerEvictionRecovery(t *testing.T) {
	ctx := context.Background()
	pool, workers := startCluster(t, 2)
	pg := mustPartition(t, randomGraph(11, 40, 160), partition.RandomVertexCut(), 4)

	want, _, err := algorithms.PageRank(ctx, pg, 4, algorithms.DefaultResetProb)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := PageRank(ctx, pool, pg, 4, algorithms.DefaultResetProb)
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqualF64(t, "before restart", got, want)

	// Wipe worker 0's state behind the coordinator's back.
	workers[0].mu.Lock()
	workers[0].shards = make(map[string]*workerShard)
	workers[0].order = nil
	workers[0].mu.Unlock()

	got, _, err = PageRank(ctx, pool, pg, 4, algorithms.DefaultResetProb)
	if err != nil {
		t.Fatalf("run after worker wipe: %v", err)
	}
	assertBitEqualF64(t, "after restart", got, want)
}
