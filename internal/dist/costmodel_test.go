package dist

import (
	"context"
	"testing"
	"time"

	"cutfit/internal/algorithms"
	"cutfit/internal/cluster"
	"cutfit/internal/partition"
)

// TestClusterModelVsMeasured runs a real distributed PageRank over
// loopback workers and compares the wall-clock against what the
// internal/cluster cost model predicts for the same run statistics. The
// model simulates the paper's multi-node clusters, not two processes on
// one machine, so the test asserts only sanity (both times are positive
// and finite, the model accepted the distributed stats verbatim) and logs
// the predicted-vs-measured ratio — the nightly workflow archives that
// line as the calibration artifact.
func TestClusterModelVsMeasured(t *testing.T) {
	ctx := context.Background()
	pool, _ := startCluster(t, 2)
	g := randomGraph(99, 400, 4000)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 8)

	start := time.Now()
	_, stats, err := PageRank(ctx, pool, pg, 10, algorithms.DefaultResetProb)
	if err != nil {
		t.Fatal(err)
	}
	measured := time.Since(start).Seconds()

	cfg := cluster.ConfigI()
	cfg.NumPartitions = pg.NumParts
	b, err := cfg.Simulate(stats, cluster.EstimateGraphBytes(g.NumEdges()))
	if err != nil {
		t.Fatalf("cost model rejected distributed run stats: %v", err)
	}
	predicted := b.TotalSecs()
	if predicted <= 0 {
		t.Fatalf("model predicted non-positive time %g", predicted)
	}
	if measured <= 0 {
		t.Fatalf("measured non-positive wall-clock %g", measured)
	}
	t.Logf("cost-model calibration: predicted=%.4fs measured=%.4fs ratio=%.3f (%s)",
		predicted, measured, predicted/measured, b)
}
