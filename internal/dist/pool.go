package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cutfit/internal/pregel"
)

// Sentinel errors the transport maps well-known worker status codes to, so
// the coordinator can re-ship shards instead of failing the run.
var (
	// ErrShardMissing is RunStart's 404: the worker evicted or never had
	// the shard; the coordinator re-ships a full container and retries.
	ErrShardMissing = errors.New("dist: shard not installed on worker")
	// ErrBaseMissing is ShardDelta's 409: the delta's base generation is
	// gone; the coordinator falls back to a full container.
	ErrBaseMissing = errors.New("dist: delta base shard not installed on worker")
)

// Transport is the wire behind the coordinator: one method per protocol
// RPC. The default is HTTP/1.1 (httpTransport); a gRPC implementation can
// replace it without touching coordinator or worker logic.
type Transport interface {
	Healthz(ctx context.Context, url string) (shards int, err error)
	InstallShard(ctx context.Context, url, key string, payload []byte) error
	InstallDelta(ctx context.Context, url, key, baseKey string, payload []byte) error
	StartRun(ctx context.Context, url string, spec RunSpec) error
	Step(ctx context.Context, url, runID string, frame []byte) ([]byte, error)
	FinishRun(ctx context.Context, url, runID string) error
}

// workerCache remembers what a worker most recently received so the next
// run for a grown/shrunk generation can ship a delta instead of the world.
type workerCache struct {
	lastKey string
	lastPG  *pregel.PartitionedGraph
}

// Pool is a fixed set of workers plus the per-worker shard caches. It is
// safe for concurrent use; the shard-prepare phase is serialized so two
// concurrent runs cannot interleave delta chains on the same worker.
type Pool struct {
	urls []string
	tr   Transport

	mu    sync.Mutex
	cache map[string]*workerCache

	runPrefix string
	runSeq    atomic.Uint64
}

// NewPool builds a pool over the given worker base URLs (e.g.
// "http://127.0.0.1:9090") with the HTTP transport.
func NewPool(urls []string) *Pool {
	var prefix [6]byte
	rand.Read(prefix[:])
	p := &Pool{
		urls:      append([]string(nil), urls...),
		tr:        newHTTPTransport(),
		cache:     make(map[string]*workerCache),
		runPrefix: hex.EncodeToString(prefix[:]),
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.urls) }

// URLs returns the configured worker base URLs.
func (p *Pool) URLs() []string { return append([]string(nil), p.urls...) }

func (p *Pool) nextRunID() string {
	return fmt.Sprintf("%s-%d", p.runPrefix, p.runSeq.Add(1))
}

// WorkerStatus is one worker's health snapshot, served by cutfitd's
// /v1/cluster endpoint.
type WorkerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Shards  int    `json:"shards"`
	Error   string `json:"error,omitempty"`
}

// Status polls every worker's health endpoint concurrently.
func (p *Pool) Status(ctx context.Context) []WorkerStatus {
	out := make([]WorkerStatus, len(p.urls))
	var wg sync.WaitGroup
	for i, url := range p.urls {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i].URL = url
			shards, err := p.tr.Healthz(ctx, url)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			out[i].Healthy = true
			out[i].Shards = shards
		}()
	}
	wg.Wait()
	return out
}

// httpTransport is the v1 wire: HTTP/1.1 with binary frames and JSON specs.
type httpTransport struct {
	client *http.Client
}

func newHTTPTransport() *httpTransport {
	return &httpTransport{client: &http.Client{Timeout: 5 * time.Minute}}
}

// do runs one instrumented RPC and returns the response body for 2xx.
// wantErr maps one non-2xx status to a sentinel error.
func (t *httpTransport) do(ctx context.Context, rpc, method, url string, headers map[string]string, body []byte, errStatus int, errSentinel error) ([]byte, error) {
	start := time.Now()
	resp, err := t.roundTrip(ctx, method, url, headers, body)
	hRPCSeconds.With(rpc).Observe(time.Since(start).Seconds())
	if err != nil {
		cRPCErrors.With(rpc).Inc()
		return nil, fmt.Errorf("dist: %s %s: %w", rpc, url, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		cRPCErrors.With(rpc).Inc()
		return nil, fmt.Errorf("dist: %s %s: reading response: %w", rpc, url, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return respBody, nil
	}
	if errSentinel != nil && resp.StatusCode == errStatus {
		return nil, fmt.Errorf("%w (%s)", errSentinel, url)
	}
	cRPCErrors.With(rpc).Inc()
	return nil, fmt.Errorf("dist: %s %s: status %d: %s", rpc, url, resp.StatusCode, bytes.TrimSpace(respBody))
}

func (t *httpTransport) roundTrip(ctx context.Context, method, url string, headers map[string]string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	return t.client.Do(req)
}

func (t *httpTransport) Healthz(ctx context.Context, url string) (int, error) {
	body, err := t.do(ctx, "Health", http.MethodGet, url+"/dist/v1/healthz", nil, nil, 0, nil)
	if err != nil {
		return 0, err
	}
	var h struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return 0, fmt.Errorf("dist: decoding health: %w", err)
	}
	return h.Shards, nil
}

func (t *httpTransport) InstallShard(ctx context.Context, url, key string, payload []byte) error {
	_, err := t.do(ctx, "ShardInstall", http.MethodPost, url+"/dist/v1/shards",
		map[string]string{HeaderShardKey: key}, payload, 0, nil)
	return err
}

func (t *httpTransport) InstallDelta(ctx context.Context, url, key, baseKey string, payload []byte) error {
	_, err := t.do(ctx, "ShardDelta", http.MethodPost, url+"/dist/v1/shards/delta",
		map[string]string{HeaderShardKey: key, HeaderShardBase: baseKey}, payload,
		http.StatusConflict, ErrBaseMissing)
	return err
}

func (t *httpTransport) StartRun(ctx context.Context, url string, spec RunSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	_, err = t.do(ctx, "RunStart", http.MethodPost, url+"/dist/v1/runs",
		map[string]string{"Content-Type": "application/json"}, body,
		http.StatusNotFound, ErrShardMissing)
	return err
}

func (t *httpTransport) Step(ctx context.Context, url, runID string, frame []byte) ([]byte, error) {
	cBytes.With("broadcast").Add(int64(len(frame)))
	resp, err := t.do(ctx, "SuperstepExchange", http.MethodPost, url+"/dist/v1/runs/"+runID+"/step",
		map[string]string{"Content-Type": "application/octet-stream"}, frame, 0, nil)
	if err != nil {
		return nil, err
	}
	cBytes.With("reduce").Add(int64(len(resp)))
	return resp, nil
}

func (t *httpTransport) FinishRun(ctx context.Context, url, runID string) error {
	_, err := t.do(ctx, "RunFinish", http.MethodPost, url+"/dist/v1/runs/"+runID+"/finish", nil, nil, 0, nil)
	return err
}
