package dist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"cutfit/internal/pregel"
	"cutfit/internal/snap"
)

// prepareWorker ensures worker wIdx holds the shard for (pg, key): nothing
// if the cache says it is already installed (a stale cache is healed by
// RunStart's 404 → full re-ship), a delta patch when the previous
// generation is a compatible base, else a full container. Caller holds
// pool.mu.
func (p *Pool) prepareWorker(ctx context.Context, wIdx int, key string, pg *pregel.PartitionedGraph) error {
	url := p.urls[wIdx]
	wc := p.cache[url]
	if wc == nil {
		wc = &workerCache{}
		p.cache[url] = wc
	}
	if wc.lastKey == key {
		cShards.With("reused").Inc()
		return nil
	}
	if wc.lastPG != nil && wc.lastKey != "" {
		if sp, ok := diffShard(wc.lastPG, pg, wc.lastKey, wIdx, len(p.urls)); ok {
			err := p.tr.InstallDelta(ctx, url, key, wc.lastKey, snap.EncodeShard(sp))
			if err == nil {
				cShards.With("delta").Inc()
				wc.lastKey, wc.lastPG = key, pg
				return nil
			}
			if !errors.Is(err, ErrBaseMissing) {
				return err
			}
			// Base evicted on the worker: fall through to a full ship.
		}
	}
	full := snap.EncodeShard(extractShard(pg, wIdx, len(p.urls)))
	if err := p.tr.InstallShard(ctx, url, key, full); err != nil {
		return err
	}
	cShards.With("full").Inc()
	wc.lastKey, wc.lastPG = key, pg
	return nil
}

// exchanger ships the engine's mirror phases over the pool: broadcast
// frames out to every worker, one barrier wait, reduce frames merged back
// in ascending partition order.
type exchanger[V, M any] struct {
	pool       *Pool
	pg         *pregel.PartitionedGraph
	runID      string
	vc         Codec[V]
	mc         Codec[M]
	stateBytes func(V) int

	// bufs accumulates each partition's (local, value) broadcast pairs;
	// reused across supersteps.
	bufs []framePart
}

func newExchanger[V, M any](pool *Pool, pg *pregel.PartitionedGraph, runID string, prog *pregel.Program[V, M], vc Codec[V], mc Codec[M]) *exchanger[V, M] {
	sb := prog.StateBytes
	if sb == nil {
		sb = func(V) int { return 8 }
	}
	return &exchanger[V, M]{
		pool:       pool,
		pg:         pg,
		runID:      runID,
		vc:         vc,
		mc:         mc,
		stateBytes: sb,
		bufs:       make([]framePart, pg.NumParts),
	}
}

func (ex *exchanger[V, M]) Exchange(ctx context.Context, step int, changed []uint64, masterVals []V, deliver func(gidx int32, m M), ss *pregel.SuperstepStats) error {
	numParts := ex.pg.NumParts
	W := ex.pool.Size()
	for p := range ex.bufs {
		ex.bufs[p].part = p
		ex.bufs[p].n = 0
		ex.bufs[p].pairs = ex.bufs[p].pairs[:0]
	}

	// Batch broadcast pairs per partition, walking the changed bitset
	// ascending; mirror slots of one vertex are visited in routing-CSR
	// order, so each partition's pair list ends up ascending by local index
	// (LocalVerts is sorted by global index).
	for wi, w := range changed {
		base := int32(wi << 6)
		for w != 0 {
			v := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			val := masterVals[v]
			ex.pg.ForEachMirror(v, func(part, local int32) {
				buf := &ex.bufs[part]
				buf.pairs = binary.LittleEndian.AppendUint32(buf.pairs, uint32(local))
				buf.pairs = ex.vc.Append(buf.pairs, val)
				buf.n++
				ss.BroadcastMsgs++
				ss.BroadcastBytes += int64(ex.stateBytes(val))
			})
		}
	}

	// One frame per worker (only its owned partitions with changed
	// mirrors), posted concurrently; waiting for the slowest worker is the
	// superstep barrier.
	frames := make([][]byte, W)
	errs := make([]error, W)
	barrierStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		var wparts []framePart
		for p := w; p < numParts; p += W {
			if ex.bufs[p].n > 0 {
				wparts = append(wparts, ex.bufs[p])
			}
		}
		frame := encodeBroadcastFrame(step, wparts)
		wg.Add(1)
		go func() {
			defer wg.Done()
			frames[w], errs[w] = ex.pool.tr.Step(ctx, ex.pool.urls[w], ex.runID, frame)
		}()
	}
	wg.Wait()
	hBarrierSeconds.Observe(time.Since(barrierStart).Seconds())
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Decode reduce frames and index partitions; every partition must
	// report exactly once.
	entries := make([]*framePart, numParts)
	for w := 0; w < W; w++ {
		gotStep, parts, err := parseFrame(frames[w], magicReduce, ex.mc.Size(), true)
		if err != nil {
			return fmt.Errorf("dist: worker %s reduce frame: %w", ex.pool.urls[w], err)
		}
		if gotStep != step {
			return fmt.Errorf("dist: worker %s answered superstep %d, want %d", ex.pool.urls[w], gotStep, step)
		}
		for i := range parts {
			fp := &parts[i]
			if fp.part < 0 || fp.part >= numParts || workerOf(fp.part, W) != w {
				return fmt.Errorf("dist: worker %s reported partition %d it does not own", ex.pool.urls[w], fp.part)
			}
			if entries[fp.part] != nil {
				return fmt.Errorf("dist: partition %d reported twice", fp.part)
			}
			entries[fp.part] = fp
		}
	}

	// Merge in ascending partition order — per destination vertex that is
	// exactly the local reduce phase's ascending-partition merge order, so
	// float64 combines associate identically.
	ss.ComputePerPart = make([]float64, numParts)
	pairSize := 4 + ex.mc.Size()
	var nPost int64
	for p := 0; p < numParts; p++ {
		e := entries[p]
		if e == nil {
			return fmt.Errorf("dist: partition %d missing from reduce frames", p)
		}
		ss.EdgesScanned += e.scanned
		ss.ActiveEdges += e.visited
		ss.MsgsEmitted += e.emitted
		ss.ComputePerPart[p] = e.cost
		lv := ex.pg.Parts[p].LocalVerts
		for off := 0; off < len(e.pairs); off += pairSize {
			local := binary.LittleEndian.Uint32(e.pairs[off:])
			if int(local) >= len(lv) {
				return fmt.Errorf("dist: partition %d reduce pair local %d out of range [0,%d)", p, local, len(lv))
			}
			deliver(lv[local], ex.mc.Decode(e.pairs[off+4:]))
			nPost++
		}
	}
	cMsgsPre.Add(ss.MsgsEmitted)
	cMsgsPost.Add(nPost)
	return nil
}

// runDist executes one algorithm distributed: prepare shards on every
// worker, bind a run, then let the engine drive supersteps through the
// exchanger. Any worker failure fails the whole run — the caller
// (Session) falls back to a local run, which is bit-identical anyway.
func runDist[V, M any](ctx context.Context, pool *Pool, pg *pregel.PartitionedGraph, prog pregel.Program[V, M], spec RunSpec, vc Codec[V], mc Codec[M]) ([]V, *pregel.RunStats, error) {
	W := pool.Size()
	if W == 0 {
		return nil, nil, errors.New("dist: pool has no workers")
	}
	sum := topoSum(pg)
	keys := make([]string, W)

	pool.mu.Lock()
	for w := 0; w < W; w++ {
		keys[w] = shardKey(pg.G, sum, pg.NumParts, w, W)
		if err := pool.prepareWorker(ctx, w, keys[w], pg); err != nil {
			pool.mu.Unlock()
			return nil, nil, err
		}
	}
	pool.mu.Unlock()

	runID := pool.nextRunID()
	for w := 0; w < W; w++ {
		s := spec
		s.Run = runID
		s.Shard = keys[w]
		err := pool.tr.StartRun(ctx, pool.urls[w], s)
		if errors.Is(err, ErrShardMissing) {
			// The worker evicted the shard (or restarted) since the cache
			// last shipped it: re-ship a full container and retry once.
			full := snap.EncodeShard(extractShard(pg, w, W))
			if err = pool.tr.InstallShard(ctx, pool.urls[w], keys[w], full); err == nil {
				cShards.With("full").Inc()
				err = pool.tr.StartRun(ctx, pool.urls[w], s)
			}
		}
		if err != nil {
			return nil, nil, err
		}
	}

	ex := newExchanger(pool, pg, runID, &prog, vc, mc)
	vals, stats, err := pregel.RunExchanged(ctx, pg, prog, ex)

	// Best-effort release of worker state, even after failure; a worker
	// that is gone simply errors and is ignored.
	finishCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
	defer cancel()
	for w := 0; w < W; w++ {
		_ = pool.tr.FinishRun(finishCtx, pool.urls[w], runID)
	}

	if err != nil {
		return nil, nil, err
	}
	cRuns.With("distributed").Inc()
	return vals, stats, nil
}

// NoteFallback records a run that was dispatched distributed but fell back
// to local execution; Session calls it when a cluster run fails.
func NoteFallback() { cRuns.With("fallback").Inc() }
