package dist

import "cutfit/internal/obsv"

// Live metric series for the distributed runtime, registered on the default
// registry at package init. The coordinator side instruments every RPC and
// the barrier; the worker side counts requests by endpoint and status so a
// scrape of either process tells the whole story. All families appear in
// the docs/OPERATIONS.md catalog (enforced by TestOperationsDocCoversMetrics).
var (
	hRPCSeconds = obsv.Default.HistogramVec("cutfit_dist_rpc_seconds",
		"Coordinator-observed wall time of one worker RPC, by rpc name.",
		obsv.DefBuckets, "rpc")
	cRPCErrors = obsv.Default.CounterVec("cutfit_dist_rpc_errors_total",
		"Worker RPCs that failed (transport error or non-2xx), by rpc name.",
		"rpc")
	hBarrierSeconds = obsv.Default.Histogram("cutfit_dist_barrier_seconds",
		"Wall time of one superstep barrier: slowest worker's exchange round trip.",
		obsv.DefBuckets)
	cBytes = obsv.Default.CounterVec("cutfit_dist_bytes_total",
		"Frame payload bytes shipped over the wire, by direction (broadcast|reduce).",
		"direction")
	cMsgsPre = obsv.Default.Counter("cutfit_dist_msgs_precombine_total",
		"Messages emitted by distributed compute scans before worker-local combining.")
	cMsgsPost = obsv.Default.Counter("cutfit_dist_msgs_postcombine_total",
		"Combined messages that actually crossed the wire in reduce frames.")
	cRuns = obsv.Default.CounterVec("cutfit_dist_runs_total",
		"Runs dispatched to the cluster, by outcome mode (distributed|fallback).",
		"mode")
	cShards = obsv.Default.CounterVec("cutfit_dist_shards_shipped_total",
		"Shard transfers by kind: full container, delta patch, or reused (already installed).",
		"kind")
	cWorkerRequests = obsv.Default.CounterVec("cutfit_dist_worker_requests_total",
		"Worker-side HTTP requests, by endpoint name and status code.",
		"endpoint", "code")
)
