package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"cutfit/internal/algorithms"
	"cutfit/internal/graph"
	"cutfit/internal/pregel"
	"cutfit/internal/snap"
)

// maxShards bounds the worker's shard cache; least-recently-installed
// generations are evicted first. Deep enough for a base plus several
// Grow/Shrink generations of a handful of graphs.
const maxShards = 8

// maxBodyBytes caps request bodies (shard containers dominate).
const maxBodyBytes = 1 << 30

// rawPart keeps one owned partition's wire tables so a later delta can
// append to or compare against them without re-deriving anything from the
// built engine structures.
type rawPart struct {
	lv, src, dst []int32
}

// workerShard is one installed shard generation: raw tables (for delta
// application), built engine partitions, and the vertex/degree tables the
// algorithm programs need.
type workerShard struct {
	key      string
	numParts int
	verts    []graph.VertexID
	outDeg   []int32
	raw      map[int]*rawPart
	parts    map[int]*pregel.Partition
	idx      map[graph.VertexID]int32
	owned    []int // sorted partition indices
}

// buildWorkerShard materializes a shard payload, either standalone or as a
// delta over base. Raw tables are never mutated after build, so unchanged
// delta entries share the base's slices.
func buildWorkerShard(key string, sp *snap.ShardPayload, base *workerShard) (*workerShard, error) {
	ws := &workerShard{
		key:      key,
		numParts: sp.NumParts,
		outDeg:   sp.OutDeg,
		raw:      make(map[int]*rawPart),
		parts:    make(map[int]*pregel.Partition),
	}
	if sp.IsDelta() {
		if base == nil {
			return nil, fmt.Errorf("dist: delta shard %s has no base", key)
		}
		if len(base.verts) != sp.OldNumVerts {
			return nil, fmt.Errorf("dist: delta base holds %d vertices, payload expects %d", len(base.verts), sp.OldNumVerts)
		}
		ws.verts = make([]graph.VertexID, 0, sp.NumVerts)
		ws.verts = append(append(ws.verts, base.verts...), sp.Verts...)
	} else {
		ws.verts = sp.Verts
	}
	if len(ws.verts) != sp.NumVerts {
		return nil, fmt.Errorf("dist: shard %s holds %d vertices, meta says %d", key, len(ws.verts), sp.NumVerts)
	}
	if len(sp.OutDeg) != sp.NumVerts {
		return nil, fmt.Errorf("dist: shard %s out-degree table holds %d entries, want %d", key, len(sp.OutDeg), sp.NumVerts)
	}

	for i := range sp.Parts {
		p := &sp.Parts[i]
		var rp *rawPart
		switch p.Mode {
		case snap.ShardPartReplace:
			rp = &rawPart{lv: p.LocalVerts, src: p.EdgeSrc, dst: p.EdgeDst}
		case snap.ShardPartUnchanged:
			if base == nil || base.raw[p.Index] == nil {
				return nil, fmt.Errorf("dist: shard %s marks partition %d unchanged without a base copy", key, p.Index)
			}
			rp = base.raw[p.Index]
		case snap.ShardPartAppend:
			old := (*rawPart)(nil)
			if base != nil {
				old = base.raw[p.Index]
			}
			if old == nil {
				return nil, fmt.Errorf("dist: shard %s appends to partition %d without a base copy", key, p.Index)
			}
			rp = &rawPart{
				lv:  append(append(make([]int32, 0, len(old.lv)+len(p.LocalVerts)), old.lv...), p.LocalVerts...),
				src: append(append(make([]int32, 0, len(old.src)+len(p.EdgeSrc)), old.src...), p.EdgeSrc...),
				dst: append(append(make([]int32, 0, len(old.dst)+len(p.EdgeDst)), old.dst...), p.EdgeDst...),
			}
		}
		ws.raw[p.Index] = rp
		part, err := pregel.NewPartition(sp.NumVerts, rp.lv, rp.src, rp.dst)
		if err != nil {
			return nil, fmt.Errorf("dist: shard %s partition %d: %w", key, p.Index, err)
		}
		ws.parts[p.Index] = part
		ws.owned = append(ws.owned, p.Index)
	}
	sort.Ints(ws.owned)
	ws.idx = make(map[graph.VertexID]int32, len(ws.verts))
	for i, v := range ws.verts {
		ws.idx[v] = int32(i)
	}
	return ws, nil
}

// degOf is the out-degree closure the PageRank programs divide by; it must
// agree bit-for-bit with the coordinator's GraphDegreeFunc, which it does
// because the degree table ships verbatim in the shard.
func (ws *workerShard) degOf(id graph.VertexID) float64 {
	i, ok := ws.idx[id]
	if !ok {
		return 0
	}
	return float64(ws.outDeg[i])
}

// shardRun erases the program's type parameters so the worker can hold runs
// of different algorithms in one table; shardRunT carries the real types.
type shardRun interface {
	begin()
	setMirror(p int, local int32, raw []byte) error
	compute(p int) (pregel.ComputeStats, error)
	appendMessages(p int, b *reduceFrameBuilder)
	valSize() int
	msgSize() int
}

type shardRunT[V, M any] struct {
	sc *pregel.ShardCompute[V, M]
	vc Codec[V]
	mc Codec[M]
}

func (r *shardRunT[V, M]) begin() { r.sc.BeginSuperstep() }

func (r *shardRunT[V, M]) setMirror(p int, local int32, raw []byte) error {
	return r.sc.SetMirror(p, local, r.vc.Decode(raw))
}

func (r *shardRunT[V, M]) compute(p int) (pregel.ComputeStats, error) {
	return r.sc.Compute(p)
}

func (r *shardRunT[V, M]) appendMessages(p int, b *reduceFrameBuilder) {
	r.sc.Messages(p, func(local int32, m M) {
		b.pairPrefix(local)
		b.buf = r.mc.Append(b.buf, m)
	})
}

func (r *shardRunT[V, M]) valSize() int { return r.vc.Size() }
func (r *shardRunT[V, M]) msgSize() int { return r.mc.Size() }

func newShardRunT[V, M any](prog pregel.Program[V, M], ws *workerShard, vc Codec[V], mc Codec[M]) (shardRun, error) {
	sc, err := pregel.NewShardCompute(prog, ws.verts, ws.parts)
	if err != nil {
		return nil, err
	}
	return &shardRunT[V, M]{sc: sc, vc: vc, mc: mc}, nil
}

// newShardRun instantiates the worker-side program named by the run spec —
// the same constructors the local path uses, fed by the shard's shipped
// degree table, so SendMsg/MergeMsg/VProg are the identical float
// operations in the identical order.
func newShardRun(spec RunSpec, ws *workerShard) (shardRun, error) {
	switch spec.Algorithm {
	case "pagerank":
		prog := algorithms.PageRankProgram(spec.Iters, spec.ResetProb, ws.degOf)
		return newShardRunT(prog, ws, f64Codec{}, f64Codec{})
	case "cc":
		prog := algorithms.ConnectedComponentsProgram(spec.Iters)
		return newShardRunT(prog, ws, vidCodec{}, vidCodec{})
	case "dynamicpr":
		prog := algorithms.DynamicPageRankProgram(spec.Tol, spec.ResetProb, spec.Iters, ws.degOf)
		return newShardRunT(prog, ws, prStateCodec{}, f64Codec{})
	}
	return nil, fmt.Errorf("dist: unknown algorithm %q", spec.Algorithm)
}

// workerRun is one live run's compute state plus its superstep sequencer.
type workerRun struct {
	mu       sync.Mutex
	shard    *workerShard
	run      shardRun
	lastStep int
}

// Worker owns a process's shard cache and live runs and serves the
// /dist/v1 protocol.
type Worker struct {
	mu     sync.Mutex
	shards map[string]*workerShard
	order  []string // install order, oldest first, for eviction
	runs   map[string]*workerRun
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{
		shards: make(map[string]*workerShard),
		runs:   make(map[string]*workerRun),
	}
}

// installShard stores a built shard, evicting the oldest generation beyond
// the cache bound.
func (w *Worker) installShard(ws *workerShard) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.shards[ws.key]; !ok {
		w.order = append(w.order, ws.key)
	}
	w.shards[ws.key] = ws
	for len(w.order) > maxShards {
		oldest := w.order[0]
		w.order = w.order[1:]
		delete(w.shards, oldest)
	}
}

func (w *Worker) shard(key string) (*workerShard, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ws, ok := w.shards[key]
	return ws, ok
}

// NumShards reports the cached shard count (for healthz and tests).
func (w *Worker) NumShards() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.shards)
}

// Handler builds the worker's HTTP mux from the ProtocolMessages table —
// every rpc entry must resolve to a handler (handlerFor panics otherwise),
// so the protocol table and the served surface cannot drift apart.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, pm := range ProtocolMessages {
		if pm.Kind != "rpc" {
			continue
		}
		mux.Handle(pm.Route, w.instrument(pm.Name, w.handlerFor(pm.Name)))
	}
	return mux
}

// handlerFor maps a protocol rpc name to its implementation.
func (w *Worker) handlerFor(name string) http.HandlerFunc {
	switch name {
	case "Health":
		return w.handleHealth
	case "ShardInstall":
		return w.handleShardInstall
	case "ShardDelta":
		return w.handleShardDelta
	case "RunStart":
		return w.handleRunStart
	case "SuperstepExchange":
		return w.handleStep
	case "RunFinish":
		return w.handleRunFinish
	}
	panic(fmt.Sprintf("dist: protocol rpc %q has no handler", name))
}

// statusRecorder captures the status code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (w *Worker) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: rw, code: http.StatusOK}
		h(sr, r)
		cWorkerRequests.With(endpoint, strconv.Itoa(sr.code)).Inc()
	})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]any{"status": "ok", "shards": w.NumShards()})
}

func readBody(rw http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(rw, "reading body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

func (w *Worker) handleShardInstall(rw http.ResponseWriter, r *http.Request) {
	key := r.Header.Get(HeaderShardKey)
	if key == "" {
		http.Error(rw, "missing "+HeaderShardKey, http.StatusBadRequest)
		return
	}
	body, ok := readBody(rw, r)
	if !ok {
		return
	}
	sp, err := snap.DecodeShard(body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if sp.IsDelta() {
		http.Error(rw, "delta payload on the full-install endpoint", http.StatusBadRequest)
		return
	}
	ws, err := buildWorkerShard(key, sp, nil)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.installShard(ws)
	rw.WriteHeader(http.StatusNoContent)
}

func (w *Worker) handleShardDelta(rw http.ResponseWriter, r *http.Request) {
	key := r.Header.Get(HeaderShardKey)
	baseKey := r.Header.Get(HeaderShardBase)
	if key == "" || baseKey == "" {
		http.Error(rw, "missing shard key headers", http.StatusBadRequest)
		return
	}
	base, ok := w.shard(baseKey)
	if !ok {
		http.Error(rw, "base shard not installed: "+baseKey, http.StatusConflict)
		return
	}
	body, ok := readBody(rw, r)
	if !ok {
		return
	}
	sp, err := snap.DecodeShard(body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if !sp.IsDelta() {
		http.Error(rw, "full payload on the delta endpoint", http.StatusBadRequest)
		return
	}
	if sp.BaseFP != keyFP(baseKey) {
		http.Error(rw, "delta base fingerprint does not match "+baseKey, http.StatusBadRequest)
		return
	}
	ws, err := buildWorkerShard(key, sp, base)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.installShard(ws)
	rw.WriteHeader(http.StatusNoContent)
}

func (w *Worker) handleRunStart(rw http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&spec); err != nil {
		http.Error(rw, "decoding run spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if spec.Run == "" {
		http.Error(rw, "run spec missing run id", http.StatusBadRequest)
		return
	}
	ws, ok := w.shard(spec.Shard)
	if !ok {
		http.Error(rw, "shard not installed: "+spec.Shard, http.StatusNotFound)
		return
	}
	run, err := newShardRun(spec, ws)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	w.runs[spec.Run] = &workerRun{shard: ws, run: run}
	w.mu.Unlock()
	rw.WriteHeader(http.StatusNoContent)
}

func (w *Worker) handleStep(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	wr, ok := w.runs[id]
	w.mu.Unlock()
	if !ok {
		http.Error(rw, "unknown run: "+id, http.StatusNotFound)
		return
	}
	body, ok := readBody(rw, r)
	if !ok {
		return
	}

	wr.mu.Lock()
	defer wr.mu.Unlock()
	step, parts, err := parseFrame(body, magicBroadcast, wr.run.valSize(), false)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	// Supersteps are strictly sequenced: a retried or reordered frame would
	// double-apply mirror updates, so anything but lastStep+1 is rejected
	// and the coordinator fails the run (and falls back to local).
	if step != wr.lastStep+1 {
		http.Error(rw, fmt.Sprintf("superstep %d out of sequence, expected %d", step, wr.lastStep+1), http.StatusConflict)
		return
	}

	wr.run.begin()
	pairSize := 4 + wr.run.valSize()
	for i := range parts {
		fp := &parts[i]
		if wr.shard.parts[fp.part] == nil {
			http.Error(rw, fmt.Sprintf("partition %d not owned here", fp.part), http.StatusBadRequest)
			return
		}
		for off := 0; off < len(fp.pairs); off += pairSize {
			local := int32(uint32(fp.pairs[off]) | uint32(fp.pairs[off+1])<<8 | uint32(fp.pairs[off+2])<<16 | uint32(fp.pairs[off+3])<<24)
			if err := wr.run.setMirror(fp.part, local, fp.pairs[off+4:off+pairSize]); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
		}
	}

	// Compute every owned partition, ascending — AllEdges programs scan
	// regardless of frontier, and the reduce frame must report stats even
	// for partitions that produced no messages.
	b := newReduceFrameBuilder(step, wr.run.msgSize())
	for _, p := range wr.shard.owned {
		cs, err := wr.run.compute(p)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		b.beginPart(p, cs.Scanned, cs.Visited, cs.Emitted, cs.Cost)
		wr.run.appendMessages(p, b)
		b.endPart()
	}
	wr.lastStep = step

	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(b.bytes())
}

func (w *Worker) handleRunFinish(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	delete(w.runs, id)
	w.mu.Unlock()
	rw.WriteHeader(http.StatusNoContent)
}
