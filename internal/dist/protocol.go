package dist

// ProtocolMessage names one element of the coordinator↔worker protocol: an
// RPC endpoint, a binary frame format, or a shipped artifact. The table
// below is the protocol's single source of truth — the worker mux is built
// from it (see Worker.Handler) and docs/DISTRIBUTED.md must name every
// entry (enforced by the doc drift guard), so an endpoint cannot exist
// without being documented, nor be documented without existing.
type ProtocolMessage struct {
	Name  string // stable identifier, named in docs/DISTRIBUTED.md
	Kind  string // "rpc", "frame" or "artifact"
	Route string // "METHOD /path" for rpc entries, empty otherwise
	Doc   string // one-line summary
}

// ProtocolMessages is the v1 protocol. Routes use Go 1.22 method patterns;
// {id} is the coordinator-chosen run identifier.
var ProtocolMessages = []ProtocolMessage{
	{
		Name:  "Health",
		Kind:  "rpc",
		Route: "GET /dist/v1/healthz",
		Doc:   "liveness + shard count, polled by the coordinator's Status",
	},
	{
		Name:  "ShardInstall",
		Kind:  "rpc",
		Route: "POST /dist/v1/shards",
		Doc:   "install a full shard container under its content-addressed key",
	},
	{
		Name:  "ShardDelta",
		Kind:  "rpc",
		Route: "POST /dist/v1/shards/delta",
		Doc:   "patch a base shard into a new generation (409 if the base is gone)",
	},
	{
		Name:  "RunStart",
		Kind:  "rpc",
		Route: "POST /dist/v1/runs",
		Doc:   "bind a run id to a shard + algorithm spec (404 if the shard is missing)",
	},
	{
		Name:  "SuperstepExchange",
		Kind:  "rpc",
		Route: "POST /dist/v1/runs/{id}/step",
		Doc:   "one barrier round trip: broadcast frame in, reduce frame out",
	},
	{
		Name:  "RunFinish",
		Kind:  "rpc",
		Route: "POST /dist/v1/runs/{id}/finish",
		Doc:   "release the run's compute state (best-effort)",
	},
	{
		Name: "RunSpec",
		Kind: "frame",
		Doc:  "JSON body of RunStart: run, shard, algorithm, iters, tol, resetProb",
	},
	{
		Name: "BroadcastFrame",
		Kind: "frame",
		Doc:  "binary master→mirror value batches, one section per partition with changed mirrors",
	},
	{
		Name: "ReduceFrame",
		Kind: "frame",
		Doc:  "binary mirror→master combined messages plus compute stats, every owned partition",
	},
	{
		Name: "ShardContainer",
		Kind: "artifact",
		Doc:  "internal/snap KindShard container: vertex table, out-degrees, owned partition tables",
	},
}

// RunSpec is the JSON body of RunStart: everything a worker needs to
// instantiate exactly the coordinator's Pregel program over an installed
// shard.
type RunSpec struct {
	Run       string  `json:"run"`
	Shard     string  `json:"shard"`
	Algorithm string  `json:"algorithm"`
	Iters     int     `json:"iters"`
	Tol       float64 `json:"tol"`
	ResetProb float64 `json:"resetProb"`
}

// Shard transfer headers: the content-addressed key the payload installs,
// and (for deltas) the base key it patches.
const (
	HeaderShardKey  = "X-Cutfit-Shard-Key"
	HeaderShardBase = "X-Cutfit-Shard-Base"
)
