// Package dist runs Pregel supersteps across processes: a coordinator that
// owns graph registration, partition→worker placement and the superstep
// barrier, plus N workers that each own a subset of partitions and execute
// the compute scans.
//
// The split follows the engine's Exchanger seam (pregel.RunExchanged):
// superstep 0, message application and loop control stay in the
// coordinator's engine — literally the same code the local path runs —
// while broadcast, compute and reduce travel over the wire. Workers run the
// scan through pregel.ShardCompute, which shares the engine's computePart,
// so candidate edges are visited in the identical ascending order and
// float64 message combines happen in the identical sequence: a distributed
// run is bit-identical to pregel.Run on the same assignment.
//
// Shards ship as internal/snap containers (KindShard), content-addressed by
// graph fingerprint plus a topology checksum, with unchanged/append/replace
// per-partition deltas across Grow/Shrink generations. The wire codec is a
// plain HTTP/1.1+JSON/binary-frame transport behind the Transport
// interface, so a gRPC transport can slot in without touching the
// coordinator or worker logic. docs/DISTRIBUTED.md documents the protocol;
// the ProtocolMessages table in protocol.go is its single source of truth.
package dist
