// Package stats provides the statistical utilities used by the experiment
// harness: Pearson and Spearman correlation (the paper reports Pearson
// correlation between partitioning metrics and execution time), empirical
// CDFs (Figure 2), log-binned degree histograms (Figure 1) and summary
// statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples. It errors on mismatched lengths or fewer than two points, and
// returns 0 when either variable is constant (the correlation is
// undefined; 0 is the conventional harness-friendly answer).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient: Pearson
// correlation of the rank-transformed samples (ties receive their mean
// rank).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Spearman length mismatch: %d vs %d", len(xs), len(ys))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (1-based; ties get mean rank).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mean
		}
		i = j + 1
	}
	return ranks
}

// CDFPoint is one step of an empirical cumulative distribution function.
type CDFPoint struct {
	Value    float64
	Fraction float64 // P(X <= Value)
}

// CDF returns the empirical CDF of xs as sorted step points, one per
// distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(j+1) / n})
		i = j + 1
	}
	return out
}

// CDFAt evaluates an empirical CDF at value x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid].Value <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return cdf[lo-1].Fraction
}

// HistBin is one bin of a histogram over non-negative integer values.
type HistBin struct {
	Lo, Hi int64 // inclusive bounds
	Count  int64
}

// LogHistogram builds a base-2 logarithmically binned histogram of the
// given non-negative values: bins [0,0], [1,1], [2,3], [4,7], … — the
// standard presentation for degree distributions (Figure 1).
func LogHistogram(values []int64) []HistBin {
	var maxV int64
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	bins := []HistBin{{Lo: 0, Hi: 0}}
	for lo := int64(1); lo <= maxV; lo *= 2 {
		hi := lo*2 - 1
		bins = append(bins, HistBin{Lo: lo, Hi: hi})
	}
	for _, v := range values {
		if v < 0 {
			continue
		}
		var b int
		if v > 0 {
			b = 1 + int(math.Log2(float64(v)))
			// Guard against floating point edge cases at powers of two.
			for bins[b].Lo > v {
				b--
			}
			for bins[b].Hi < v {
				b++
			}
		}
		bins[b].Count++
	}
	return bins
}

// Summary holds the five-number-style summary used in reports.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, StdDev float64
	Median       float64
	P90, P99     float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0..1) of an already sorted slice using
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Normalize returns xs scaled by the mean of xs (each value divided by the
// mean). The harness uses it to make execution times comparable across
// datasets of very different scales before correlating. A zero-mean input
// is returned unchanged.
func Normalize(xs []float64) []float64 {
	m := Mean(xs)
	out := make([]float64, len(xs))
	if m == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}
