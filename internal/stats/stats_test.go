package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cutfit/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slice should give zeros")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if !almost(StdDev(xs), 2) {
		t.Fatalf("StdDev = %g", StdDev(xs))
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Fatalf("r = %g, err = %v", r, err)
	}
	neg := []float64{40, 30, 20, 10}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1) {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant x: r=%g err=%v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
}

func TestPearsonBounded(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
			ys[i] = r.Float64() * 100
		}
		p, err := Pearson(xs, ys)
		return err == nil && p >= -1.0000001 && p <= 1.0000001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives rho = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil || !almost(rho, 1) {
		t.Fatalf("rho = %g, err = %v", rho, err)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(r[i], want[i]) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestCDF(t *testing.T) {
	c := CDF([]float64{1, 1, 2, 5})
	if len(c) != 3 {
		t.Fatalf("CDF points = %d, want 3", len(c))
	}
	if !almost(CDFAt(c, 0), 0) {
		t.Fatalf("CDFAt(0) = %g", CDFAt(c, 0))
	}
	if !almost(CDFAt(c, 1), 0.5) {
		t.Fatalf("CDFAt(1) = %g", CDFAt(c, 1))
	}
	if !almost(CDFAt(c, 3), 0.75) {
		t.Fatalf("CDFAt(3) = %g", CDFAt(c, 3))
	}
	if !almost(CDFAt(c, 99), 1) {
		t.Fatalf("CDFAt(99) = %g", CDFAt(c, 99))
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(r.Float64() * 20)
		}
		c := CDF(xs)
		prev := 0.0
		for _, p := range c {
			if p.Fraction < prev {
				return false
			}
			prev = p.Fraction
		}
		return almost(c[len(c)-1].Fraction, 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogram(t *testing.T) {
	bins := LogHistogram([]int64{0, 1, 1, 2, 3, 4, 7, 8, 100})
	// Bins: [0,0]=1, [1,1]=2, [2,3]=2, [4,7]=2, [8,15]=1, ..., [64,127]=1.
	if bins[0].Count != 1 || bins[1].Count != 2 || bins[2].Count != 2 || bins[3].Count != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	var total int64
	for _, b := range bins {
		total += b.Count
		if b.Lo > b.Hi {
			t.Fatalf("bin %+v inverted", b)
		}
	}
	if total != 9 {
		t.Fatalf("histogram total = %d, want 9", total)
	}
}

func TestLogHistogramCoversAllValues(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(1 << 16))
		}
		bins := LogHistogram(vals)
		var total int64
		for _, b := range bins {
			total += b.Count
		}
		if total != int64(n) {
			return false
		}
		// Every value falls in the bin that contains it.
		for _, v := range vals {
			found := false
			for _, b := range bins {
				if v >= b.Lo && v <= b.Hi {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if !almost(Quantile(sorted, 0), 1) || !almost(Quantile(sorted, 1), 5) {
		t.Fatal("extremes wrong")
	}
	if !almost(Quantile(sorted, 0.5), 3) {
		t.Fatalf("median = %g", Quantile(sorted, 0.5))
	}
	if !almost(Quantile(sorted, 0.25), 2) {
		t.Fatalf("q25 = %g", Quantile(sorted, 0.25))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Median, 3) {
		t.Fatalf("summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary N != 0")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2, 3})
	if !almost(Mean(out), 1) {
		t.Fatalf("normalized mean = %g", Mean(out))
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero-mean input should pass through")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if !sort.Float64sAreSorted(xs) && xs[0] == 3 {
		return // unchanged, fine
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}
