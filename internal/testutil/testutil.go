// Package testutil provides the cross-strategy partition invariant checker:
// a single oracle that any (graph, strategy, partition count) combination
// can be verified against, independent of how the partitioned
// representation was constructed. Engine refactors (the sort/scatter
// builder replacing the hash-map builder) and new partitioning strategies
// are both validated by the same checks, so neither can silently break
// partition semantics.
//
// The invariants checked are the contracts the rest of the repository
// depends on:
//
//   - the assignment covers every edge exactly once with an in-range PID,
//     and each partition holds exactly its assigned live edges, in global
//     edge order (the AssignOrder alignment contract); tombstoned slots
//     keep a valid PID but appear in no partition;
//   - local vertex tables are strictly sorted, deduplicated, in-range, and
//     contain exactly the vertices touched by the partition's edges — no
//     phantom mirrors;
//   - the mirror routing table agrees with an independent recount, and
//     TotalMirrors == CommCost + NonCut as computed by the metrics package
//     from the raw assignment.
package testutil

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
)

// CheckPartitionInvariants verifies every partition-semantics invariant of
// pg against the raw assignment it was built from. It returns an error
// describing the first violation found, or nil.
func CheckPartitionInvariants(g *graph.Graph, assign []partition.PID, numParts int, pg *pregel.PartitionedGraph) error {
	ne := g.NumEdges()
	nv := g.NumVertices()
	if len(assign) != ne {
		return fmt.Errorf("assignment has %d entries for %d edges", len(assign), ne)
	}
	if pg.NumParts != numParts || len(pg.Parts) != numParts {
		return fmt.Errorf("partition count mismatch: NumParts=%d len(Parts)=%d want %d",
			pg.NumParts, len(pg.Parts), numParts)
	}

	// PIDs in range; per-partition edge histograms. The assignment stays
	// dense-aligned on tombstoned graphs — every slot carries a valid PID —
	// but partitions hold live edges only, so dead slots are excluded from
	// the histogram.
	numDead := g.NumDeadEdges()
	wantEdges := make([]int, numParts)
	for i, p := range assign {
		if p < 0 || int(p) >= numParts {
			return fmt.Errorf("edge %d assigned to out-of-range partition %d", i, p)
		}
		if numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		wantEdges[p]++
	}
	total := 0
	for p, part := range pg.Parts {
		if part.NumEdges() != wantEdges[p] {
			return fmt.Errorf("partition %d holds %d edges, assignment gives it %d",
				p, part.NumEdges(), wantEdges[p])
		}
		total += part.NumEdges()
	}
	if total != ne-numDead {
		return fmt.Errorf("partitions hold %d edges in total, graph has %d live", total, ne-numDead)
	}

	// Local vertex tables: strictly sorted, in range.
	for p, part := range pg.Parts {
		lv := part.LocalVerts
		for l, gidx := range lv {
			if gidx < 0 || int(gidx) >= nv {
				return fmt.Errorf("partition %d local vertex %d maps to out-of-range global index %d", p, l, gidx)
			}
			if l > 0 && lv[l-1] >= gidx {
				return fmt.Errorf("partition %d LocalVerts not strictly sorted at %d (%d >= %d)",
					p, l, lv[l-1], gidx)
			}
		}
	}

	// Every edge assigned exactly once with exact endpoints: walking the
	// assignment must reproduce each partition's edges in local order.
	verts := g.Vertices()
	edges := g.Edges()
	cursor := make([]int, numParts)
	touched := make([][]bool, numParts)
	for p, part := range pg.Parts {
		touched[p] = make([]bool, part.NumLocalVertices())
	}
	for i, p := range pg.AssignOrder() {
		if assign[i] != p {
			return fmt.Errorf("AssignOrder[%d] = %d, assignment says %d", i, p, assign[i])
		}
		if numDead != 0 && !g.EdgeAlive(i) {
			continue // dead slot: keeps its PID for alignment, scattered nowhere
		}
		part := pg.Parts[p]
		j := cursor[p]
		if j >= part.NumEdges() {
			return fmt.Errorf("partition %d exhausted at global edge %d", p, i)
		}
		sL, dL := part.EdgeAt(j)
		cursor[p]++
		if sL < 0 || int(sL) >= part.NumLocalVertices() || dL < 0 || int(dL) >= part.NumLocalVertices() {
			return fmt.Errorf("partition %d edge %d has out-of-range local endpoints (%d, %d)", p, j, sL, dL)
		}
		touched[p][sL] = true
		touched[p][dL] = true
		src := verts[part.LocalVerts[sL]]
		dst := verts[part.LocalVerts[dL]]
		if src != edges[i].Src || dst != edges[i].Dst {
			return fmt.Errorf("edge %d: partition %d local edge %d decodes to (%d,%d), want (%d,%d)",
				i, p, j, src, dst, edges[i].Src, edges[i].Dst)
		}
	}
	for p, t := range touched {
		for l, ok := range t {
			if !ok {
				return fmt.Errorf("partition %d local vertex %d (global index %d) has no incident edge — phantom mirror",
					p, l, pg.Parts[p].LocalVerts[l])
			}
		}
	}

	// Mirror routing table vs an independent recount, and vs the metrics
	// package computed from the raw assignment.
	mirrorCount := make([]int, nv)
	for _, part := range pg.Parts {
		for _, gidx := range part.LocalVerts {
			mirrorCount[gidx]++
		}
	}
	var totalMirrors int64
	for v := 0; v < nv; v++ {
		if got := pg.Mirrors(int32(v)); got != mirrorCount[v] {
			return fmt.Errorf("Mirrors(%d) = %d, recount gives %d", v, got, mirrorCount[v])
		}
		totalMirrors += int64(mirrorCount[v])
	}
	if pg.TotalMirrors() != totalMirrors {
		return fmt.Errorf("TotalMirrors() = %d, recount gives %d", pg.TotalMirrors(), totalMirrors)
	}
	m, err := metrics.Compute(g, assign, numParts)
	if err != nil {
		return fmt.Errorf("metrics recomputation: %w", err)
	}
	if pg.TotalMirrors() != m.CommCost+m.NonCut {
		return fmt.Errorf("TotalMirrors() = %d, metrics CommCost+NonCut = %d",
			pg.TotalMirrors(), m.CommCost+m.NonCut)
	}
	return nil
}

// CheckStrategy partitions g with s and verifies both the strategy output
// and the partitioned representation built from it.
func CheckStrategy(g *graph.Graph, s partition.Strategy, numParts int) error {
	assign, err := s.Partition(g, numParts)
	if err != nil {
		return fmt.Errorf("partitioning with %s: %w", s.Name(), err)
	}
	pg, err := pregel.NewPartitionedGraph(g, assign, numParts)
	if err != nil {
		return fmt.Errorf("building partitioned graph for %s: %w", s.Name(), err)
	}
	if err := CheckPartitionInvariants(g, assign, numParts, pg); err != nil {
		return fmt.Errorf("strategy %s with %d parts: %w", s.Name(), numParts, err)
	}
	return nil
}
