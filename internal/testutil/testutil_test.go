package testutil

import (
	"fmt"
	"testing"

	"cutfit/internal/gen"
	"cutfit/internal/graph"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
)

// testGraphs builds the three structural families the paper's datasets
// span: a uniform random graph, a skewed power-law (RMAT) graph, and a
// high-diameter road network whose IDs encode geography.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	random, err := gen.ErdosRenyi(400, 2400, 0xA11CE)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := gen.RMAT(gen.DefaultRMAT(9, 8, 0xBEEF))
	if err != nil {
		t.Fatal(err)
	}
	road, err := gen.Road(gen.RoadConfig{Rows: 20, Cols: 20, EdgeProb: 0.4, DiagProb: 0.05, Fragments: 6, Seed: 0xCAFE})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"random": random, "rmat": rmat, "road": road}
}

// TestInvariantsAllStrategies is the cross-strategy harness: every
// strategy (the paper's six plus the streaming and hybrid extensions) on
// every graph family at several granularities must satisfy the full
// partition invariant set.
func TestInvariantsAllStrategies(t *testing.T) {
	graphs := testGraphs(t)
	strategies := partition.Extended()
	strategies = append(strategies, partition.Hybrid(10), partition.Range())
	for name, g := range graphs {
		for _, s := range strategies {
			for _, parts := range []int{1, 7, 128} {
				t.Run(fmt.Sprintf("%s/%s/%d", name, s.Name(), parts), func(t *testing.T) {
					if err := CheckStrategy(g, s, parts); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestInvariantsParallelismIndependent verifies the build produces the
// same structure regardless of worker count.
func TestInvariantsParallelismIndependent(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 0xD00D))
	if err != nil {
		t.Fatal(err)
	}
	const parts = 32
	assign, err := partition.EdgePartition2D().Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 5, 64} {
		pg, err := pregel.NewPartitionedGraphOpts(g, assign, parts, pregel.BuildOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPartitionInvariants(g, assign, parts, pg); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
	}
}

// TestInvariantCheckerCatchesViolations makes sure the oracle is not
// vacuous: a corrupted assignment alignment must be reported.
func TestInvariantCheckerCatchesViolations(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 200, 0x5EED)
	if err != nil {
		t.Fatal(err)
	}
	const parts = 4
	assign, err := partition.RandomVertexCut().Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.NewPartitionedGraph(g, assign, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with a copy of the assignment: the partitioned graph no
	// longer matches it, and the checker must notice.
	bad := append([]partition.PID(nil), assign...)
	bad[0] = (bad[0] + 1) % parts
	if err := CheckPartitionInvariants(g, bad, parts, pg); err == nil {
		t.Fatal("checker accepted a tampered assignment")
	}
	if err := CheckPartitionInvariants(g, assign, parts+1, pg); err == nil {
		t.Fatal("checker accepted a wrong partition count")
	}
}
