package pregel

// SuperstepStats records the work and traffic of one BSP superstep. The
// cluster cost model consumes these to produce simulated execution times.
type SuperstepStats struct {
	Superstep int
	// ActiveVertices is the number of vertices whose program ran this
	// superstep (received a message, or all vertices on superstep 0).
	ActiveVertices int64
	// BroadcastMsgs counts master→mirror vertex state shipments; for a
	// fully active superstep this equals Σ_v mirrors(v), whose cut-vertex
	// portion is exactly the paper's CommCost metric.
	BroadcastMsgs int64
	// BroadcastBytes is the byte volume of those shipments.
	BroadcastBytes int64
	// ReduceMsgs counts mirror→master partial aggregates (one per
	// (partition, destination-vertex) pair with at least one message).
	ReduceMsgs int64
	// ReduceBytes is the byte volume of the reduce phase.
	ReduceBytes int64
	// EdgesScanned is the number of triplets whose SendMsg ran (triplets
	// satisfying the program's ActiveDirection predicate).
	EdgesScanned int64
	// ActiveEdges is the number of edges the compute phase actually
	// examined: every partition edge on a dense scan, only the frontier
	// index's candidate edges on a sparse scan. ActiveEdges ≥ EdgesScanned;
	// the ratio ActiveEdges / Σ partition edges is the per-superstep work
	// saved by the sparse path.
	ActiveEdges int64
	// MsgsEmitted is the number of sendMsg emissions before local combine.
	MsgsEmitted int64
	// ComputePerPart is the abstract compute cost (cost-model units)
	// accumulated by each partition during the compute phase.
	ComputePerPart []float64
	// ApplyPerShard is the abstract compute cost of the master apply phase
	// per master shard.
	ApplyPerShard []float64
}

// TotalNetworkMsgs returns broadcast plus reduce messages.
func (s *SuperstepStats) TotalNetworkMsgs() int64 { return s.BroadcastMsgs + s.ReduceMsgs }

// TotalNetworkBytes returns broadcast plus reduce bytes.
func (s *SuperstepStats) TotalNetworkBytes() int64 { return s.BroadcastBytes + s.ReduceBytes }

// MaxCompute returns the largest per-partition compute cost this superstep
// — the BSP straggler bound.
func (s *SuperstepStats) MaxCompute() float64 {
	var m float64
	for _, c := range s.ComputePerPart {
		if c > m {
			m = c
		}
	}
	return m
}

// SumCompute returns the total compute cost across partitions.
func (s *SuperstepStats) SumCompute() float64 {
	var t float64
	for _, c := range s.ComputePerPart {
		t += c
	}
	return t
}

// RunStats aggregates the statistics of a whole job run.
type RunStats struct {
	Supersteps []SuperstepStats
	// Converged is true if the job halted because no messages remained
	// (rather than hitting the iteration cap).
	Converged bool
	// Halted is true if the job was stopped early by an OnSuperstep hook
	// returning ErrHalt.
	Halted bool
}

// NumSupersteps returns the number of supersteps executed.
func (r *RunStats) NumSupersteps() int { return len(r.Supersteps) }

// TotalBroadcastMsgs sums master→mirror shipments over the run.
func (r *RunStats) TotalBroadcastMsgs() int64 {
	var t int64
	for i := range r.Supersteps {
		t += r.Supersteps[i].BroadcastMsgs
	}
	return t
}

// TotalReduceMsgs sums mirror→master partial aggregates over the run.
func (r *RunStats) TotalReduceMsgs() int64 {
	var t int64
	for i := range r.Supersteps {
		t += r.Supersteps[i].ReduceMsgs
	}
	return t
}

// TotalNetworkBytes sums all bytes shipped over the run.
func (r *RunStats) TotalNetworkBytes() int64 {
	var t int64
	for i := range r.Supersteps {
		t += r.Supersteps[i].TotalNetworkBytes()
	}
	return t
}

// TotalEdgesScanned sums triplets examined over the run.
func (r *RunStats) TotalEdgesScanned() int64 {
	var t int64
	for i := range r.Supersteps {
		t += r.Supersteps[i].EdgesScanned
	}
	return t
}

// TotalActiveEdges sums the edges the compute phase actually examined over
// the run (see SuperstepStats.ActiveEdges).
func (r *RunStats) TotalActiveEdges() int64 {
	var t int64
	for i := range r.Supersteps {
		t += r.Supersteps[i].ActiveEdges
	}
	return t
}
