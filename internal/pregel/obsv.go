package pregel

import "cutfit/internal/obsv"

// Live metric series for the BSP engine, registered on the default
// registry at package init. Per-run aggregates stay in RunStats (the
// structured return value); these series are the process-wide streaming
// view: superstep latency and active-edge distributions across every
// run in the process, plus scratch-pool effectiveness.
var (
	hSuperstepSeconds = obsv.Default.Histogram("cutfit_pregel_superstep_seconds",
		"Wall time of one full BSP superstep (broadcast, compute, reduce, apply).",
		obsv.DefBuckets)
	hActiveEdges = obsv.Default.Histogram("cutfit_pregel_superstep_active_edges",
		"Edges examined per superstep after frontier filtering (dense scans count every edge).",
		obsv.CountBuckets)
	mScratchReused = obsv.Default.Counter("cutfit_pregel_scratch_reused_total",
		"Engine runs that checked their buffer set out of the scratch pool instead of allocating.")
	mScratchAllocated = obsv.Default.Counter("cutfit_pregel_scratch_allocated_total",
		"Engine runs that allocated a fresh buffer set (pool empty, reuse disabled, or first run).")
)
