package pregel

import (
	"context"
	"math/bits"
	"reflect"
	"testing"

	"cutfit/internal/partition"
)

// loopExchanger implements the Exchanger contract entirely in-process via
// ShardCompute — a wire-free replica of what internal/dist does over HTTP.
// Comparing RunExchanged(loopExchanger) against Run proves the exchanger
// contract itself preserves bit-identical results and stats, independent of
// any transport: if the distributed path ever diverges, this narrows the
// fault to the wire layer.
type loopExchanger[V, M any] struct {
	pg         *PartitionedGraph
	sc         *ShardCompute[V, M]
	stateBytes func(V) int
}

func newLoopExchanger[V, M any](t *testing.T, pg *PartitionedGraph, prog Program[V, M]) *loopExchanger[V, M] {
	t.Helper()
	parts := make(map[int]*Partition, pg.NumParts)
	for p, part := range pg.Parts {
		parts[p] = part
	}
	sc, err := NewShardCompute(prog, pg.G.Vertices(), parts)
	if err != nil {
		t.Fatal(err)
	}
	sb := prog.StateBytes
	if sb == nil {
		sb = func(V) int { return 8 }
	}
	return &loopExchanger[V, M]{pg: pg, sc: sc, stateBytes: sb}
}

func (ex *loopExchanger[V, M]) Exchange(_ context.Context, _ int, changed []uint64, masterVals []V, deliver func(gidx int32, m M), ss *SuperstepStats) error {
	ex.sc.BeginSuperstep()
	// Broadcast: walk the changed bitset ascending and ship each changed
	// master to all its mirrors, counting exactly as the engine's phase 1.
	for wi, w := range changed {
		base := int32(wi << 6)
		for w != 0 {
			v := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			val := masterVals[v]
			var err error
			ex.pg.ForEachMirror(v, func(part, local int32) {
				if e := ex.sc.SetMirror(int(part), local, val); e != nil && err == nil {
					err = e
				}
				ss.BroadcastMsgs++
				ss.BroadcastBytes += int64(ex.stateBytes(val))
			})
			if err != nil {
				return err
			}
		}
	}
	// Compute every partition; ascending order is not required here (each
	// partition's accumulator is independent) but matches the dist worker.
	ss.ComputePerPart = make([]float64, ex.pg.NumParts)
	for p := 0; p < ex.pg.NumParts; p++ {
		cs, err := ex.sc.Compute(p)
		if err != nil {
			return err
		}
		ss.EdgesScanned += cs.Scanned
		ss.ActiveEdges += cs.Visited
		ss.MsgsEmitted += cs.Emitted
		ss.ComputePerPart[p] = cs.Cost
	}
	// Reduce: partitions ascending, locals ascending within each — per
	// destination vertex that is ascending-partition merge order, matching
	// the engine's reduce phase.
	for p := 0; p < ex.pg.NumParts; p++ {
		lv := ex.pg.Parts[p].LocalVerts
		ex.sc.Messages(p, func(local int32, m M) {
			deliver(lv[local], m)
		})
	}
	return nil
}

// runBoth runs the program through the plain engine and through the
// loopback exchanger and requires bit-identical values and deeply equal
// stats.
func runBoth[V comparable, M any](t *testing.T, pg *PartitionedGraph, prog Program[V, M]) {
	t.Helper()
	want, wantStats, err := Run(context.Background(), pg, prog)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := RunExchanged(context.Background(), pg, prog, newLoopExchanger(t, pg, prog))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("value count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: exchanged %v != local %v", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("stats diverge:\nexchanged %+v\nlocal     %+v", gotStats, wantStats)
	}
}

// TestExchangerEquivalence proves the Exchanger seam is lossless: an
// in-process exchanger built from the exported ShardCompute/ForEachMirror
// surface reproduces Run bit-for-bit (values and stats) for a dense
// AllEdges program (PageRank-shaped, float64 merge-order-sensitive) and a
// sparse frontier program (CC-shaped), across partition counts and both
// scan policies.
func TestExchangerEquivalence(t *testing.T) {
	for _, seed := range []uint64{7, 21} {
		g := randomGraph(seed, 120, 900)
		for _, numParts := range []int{1, 3, 8} {
			pg := mustPartition(t, g, partition.RandomVertexCut(), numParts)
			runBoth(t, pg, pagerankProgram(pg))
			runBoth(t, pg, minLabelProgram())

			sparse := minLabelProgram()
			sparse.ScanPolicy = ScanSparse
			runBoth(t, pg, sparse)

			dense := minLabelProgram()
			dense.ScanPolicy = ScanDense
			runBoth(t, pg, dense)
		}
	}
}

// TestRunExchangedNilExchanger pins the guard.
func TestRunExchangedNilExchanger(t *testing.T) {
	g := randomGraph(5, 10, 30)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	if _, _, err := RunExchanged[float64, float64](context.Background(), pg, pagerankProgram(pg), nil); err == nil {
		t.Fatal("want error for nil exchanger")
	}
}
