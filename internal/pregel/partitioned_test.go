package pregel

import (
	"testing"
	"testing/quick"

	"cutfit/internal/graph"
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
	"cutfit/internal/rng"
)

func randomGraph(seed uint64, maxV, maxE int) *graph.Graph {
	r := rng.New(seed)
	nv := 2 + r.Intn(maxV)
	ne := 1 + r.Intn(maxE)
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(r.Intn(nv)),
			Dst: graph.VertexID(r.Intn(nv)),
		}
	}
	return graph.FromEdges(edges)
}

func mustPartition(t *testing.T, g *graph.Graph, s partition.Strategy, parts int) *PartitionedGraph {
	t.Helper()
	assign, err := s.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraph(g, assign, parts)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestNewPartitionedGraphErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	if _, err := NewPartitionedGraph(g, []partition.PID{0}, 0); err == nil {
		t.Error("numParts=0 should error")
	}
	if _, err := NewPartitionedGraph(g, nil, 2); err == nil {
		t.Error("assignment length mismatch should error")
	}
	if _, err := NewPartitionedGraph(g, []partition.PID{7}, 2); err == nil {
		t.Error("out-of-range PID should error")
	}
}

func TestPartitionedGraphStructure(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}})
	assign := []partition.PID{0, 0, 1, 1}
	pg, err := NewPartitionedGraph(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Parts[0].NumEdges() != 2 || pg.Parts[1].NumEdges() != 2 {
		t.Fatalf("edge counts: %d, %d", pg.Parts[0].NumEdges(), pg.Parts[1].NumEdges())
	}
	if pg.Parts[0].NumLocalVertices() != 3 || pg.Parts[1].NumLocalVertices() != 3 {
		t.Fatalf("local vertices: %d, %d", pg.Parts[0].NumLocalVertices(), pg.Parts[1].NumLocalVertices())
	}
	// Vertices 0 and 2 are replicated twice; 1 and 3 once.
	wantMirrors := map[int32]int{0: 2, 1: 1, 2: 2, 3: 1}
	for v, want := range wantMirrors {
		if got := pg.Mirrors(v); got != want {
			t.Errorf("Mirrors(%d) = %d, want %d", v, got, want)
		}
	}
	if pg.TotalMirrors() != 6 {
		t.Fatalf("TotalMirrors = %d, want 6", pg.TotalMirrors())
	}
}

func TestLocalVertsSorted(t *testing.T) {
	g := randomGraph(7, 50, 300)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 8)
	for p, part := range pg.Parts {
		lv := part.LocalVerts
		for i := 1; i < len(lv); i++ {
			if lv[i-1] >= lv[i] {
				t.Fatalf("partition %d LocalVerts not strictly sorted", p)
			}
		}
	}
}

// TestMirrorsMatchMetrics cross-checks the engine's routing table against
// the independent metrics computation: Σ mirrors must equal CommCost+NonCut
// and the per-vertex mirror counts must match the bitset-based replicas.
func TestMirrorsMatchMetrics(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%24
		g := randomGraph(seed, 50, 250)
		for _, s := range []partition.Strategy{partition.RandomVertexCut(), partition.EdgePartition2D()} {
			assign, err := s.Partition(g, numParts)
			if err != nil {
				return false
			}
			pg, err := NewPartitionedGraph(g, assign, numParts)
			if err != nil {
				return false
			}
			m, err := metrics.Compute(g, assign, numParts)
			if err != nil {
				return false
			}
			if pg.TotalMirrors() != m.CommCost+m.NonCut {
				return false
			}
			var cut, noncut int64
			for v := 0; v < g.NumVertices(); v++ {
				if pg.Mirrors(int32(v)) > 1 {
					cut++
				} else if pg.Mirrors(int32(v)) == 1 {
					noncut++
				}
			}
			if cut != m.Cut || noncut != m.NonCut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignOrderAlignment(t *testing.T) {
	g := randomGraph(11, 40, 200)
	const parts = 6
	assign, err := partition.EdgePartition1D().Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraph(g, assign, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Walking AssignOrder must reproduce every partition's edges in local
	// order with matching endpoints.
	cursor := make([]int, parts)
	verts := g.Vertices()
	for i, p := range pg.AssignOrder() {
		part := pg.Parts[p]
		sL, dL := part.EdgeAt(cursor[p])
		cursor[p]++
		src := verts[part.LocalVerts[sL]]
		dst := verts[part.LocalVerts[dL]]
		if src != g.Edges()[i].Src || dst != g.Edges()[i].Dst {
			t.Fatalf("edge %d: local (%d,%d) != global %v", i, src, dst, g.Edges()[i])
		}
	}
}

func TestForEachPartitionCoversAll(t *testing.T) {
	g := randomGraph(13, 30, 100)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 12)
	visited := make([]int32, 12)
	pg.ForEachPartition(func(p int) { visited[p]++ })
	for p, c := range visited {
		if c != 1 {
			t.Fatalf("partition %d visited %d times", p, c)
		}
	}
}

func TestEdgeConservation(t *testing.T) {
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%16
		g := randomGraph(seed, 40, 200)
		assign, err := partition.CanonicalRandomVertexCut().Partition(g, numParts)
		if err != nil {
			return false
		}
		pg, err := NewPartitionedGraph(g, assign, numParts)
		if err != nil {
			return false
		}
		total := 0
		for _, part := range pg.Parts {
			total += part.NumEdges()
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
