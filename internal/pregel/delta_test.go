package pregel

import (
	"math/rand"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

func deltaEdges(seed int64, nv, ne int) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(r.Intn(nv)), Dst: graph.VertexID(r.Intn(nv))}
	}
	return edges
}

// buildDelta assigns base, grows it by suffix, extends the assignment and
// patches the topology; it returns the patched and the from-scratch
// topologies of the grown graph for comparison.
func buildDelta(t testing.TB, s partition.Strategy, base, suffix []graph.Edge, numParts, par int) (patched, rebuilt *PartitionedGraph) {
	t.Helper()
	g := graph.FromEdges(append([]graph.Edge(nil), base...))
	a, err := partition.Assign(g, s, numParts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	ng, d := g.Grow(suffix)
	na, err := a.Extend(ng, s)
	if err != nil {
		t.Fatal(err)
	}
	remap, err := graph.RemapVertices(d.OldVerts, ng)
	if err != nil {
		t.Fatal(err)
	}
	patched, err = pg.ApplyDelta(na, remap)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err = NewPartitionedGraphFromAssignment(na, BuildOptions{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return patched, rebuilt
}

// TestApplyDeltaMatchesFullBuild proves the patched topology is
// structurally identical — partitions, local vertex tables, edge order,
// routing — to a from-scratch build of the grown graph.
func TestApplyDeltaMatchesFullBuild(t *testing.T) {
	strategies := append(partition.Extended(), partition.Hybrid(8))
	cases := []struct {
		name         string
		base, suffix []graph.Edge
	}{
		{"existing-verts", deltaEdges(1, 60, 800), deltaEdges(2, 60, 40)},
		{"new-high-ids", deltaEdges(3, 60, 800), []graph.Edge{{Src: 70, Dst: 71}, {Src: 71, Dst: 9}, {Src: 9, Dst: 70}}},
		{"interleaved-new-ids", deltaEdges(4, 40, 400), []graph.Edge{{Src: 200, Dst: 5}, {Src: 7, Dst: 300}, {Src: 300, Dst: 200}}},
		{"large-suffix", deltaEdges(5, 50, 300), deltaEdges(6, 90, 300)},
		{"empty-suffix", deltaEdges(7, 40, 300), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, s := range strategies {
				for _, numParts := range []int{1, 7, 32} {
					for _, par := range []int{1, 4} {
						patched, rebuilt := buildDelta(t, s, tc.base, tc.suffix, numParts, par)
						if err := checkEquivalent(rebuilt, patched); err != nil {
							t.Fatalf("%s parts=%d par=%d: %v", s.Name(), numParts, par, err)
						}
					}
				}
			}
		})
	}
}

// TestApplyDeltaLeavesOldTopologyIntact: patching must not disturb the old
// topology — in-flight runs keep reading it.
func TestApplyDeltaLeavesOldTopologyIntact(t *testing.T) {
	base, suffix := deltaEdges(8, 50, 500), deltaEdges(9, 80, 60)
	g := graph.FromEdges(append([]graph.Edge(nil), base...))
	s := partition.EdgePartition2D()
	a, err := partition.Assign(g, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := NewPartitionedGraphFromAssignment(a, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ng, d := g.Grow(suffix)
	na, err := a.Extend(ng, s)
	if err != nil {
		t.Fatal(err)
	}
	remap, err := graph.RemapVertices(d.OldVerts, ng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.ApplyDelta(na, remap); err != nil {
		t.Fatal(err)
	}
	if err := checkEquivalent(before, pg); err != nil {
		t.Fatalf("old topology mutated by ApplyDelta: %v", err)
	}
}

// TestApplyDeltaRejectsUnstablePrefix: a strategy whose prefix assignment
// moved under growth (Range re-blocks when the ID span grows) must be
// detected, not silently patched.
func TestApplyDeltaRejectsUnstablePrefix(t *testing.T) {
	s := partition.Range()
	base := deltaEdges(10, 40, 400)
	g := graph.FromEdges(append([]graph.Edge(nil), base...))
	a, err := partition.Assign(g, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the ID span moves every block boundary.
	ng, d := g.Grow([]graph.Edge{{Src: 4000, Dst: 0}})
	na, err := a.Extend(ng, s)
	if err != nil {
		t.Fatal(err)
	}
	remap, err := graph.RemapVertices(d.OldVerts, ng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.ApplyDelta(na, remap); err == nil {
		t.Fatal("ApplyDelta accepted a shifted assignment prefix")
	}
}

// FuzzApplyDelta drives random (base, suffix, strategy, parts) tuples
// through the delta path and cross-checks against the full rebuild. Run
// long via `make fuzz`; the seed corpus runs on every `go test`.
func FuzzApplyDelta(f *testing.F) {
	f.Add(int64(1), uint16(300), uint16(40), uint8(8), uint8(0))
	f.Add(int64(2), uint16(1), uint16(1), uint8(1), uint8(1))
	f.Add(int64(3), uint16(900), uint16(200), uint8(33), uint8(2))
	f.Add(int64(4), uint16(50), uint16(500), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, baseN, sufN uint16, parts, strat uint8) {
		numParts := 1 + int(parts)%64
		strategies := append(partition.Extended(), partition.Hybrid(4))
		s := strategies[int(strat)%len(strategies)]
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(120)
		base := deltaEdges(seed+1, nv, 1+int(baseN)%1000)
		// Suffix may reuse base vertices or introduce arbitrary new IDs.
		suffix := make([]graph.Edge, int(sufN)%300)
		for i := range suffix {
			suffix[i] = graph.Edge{
				Src: graph.VertexID(r.Intn(3 * nv)),
				Dst: graph.VertexID(r.Intn(3 * nv)),
			}
		}
		patched, rebuilt := buildDelta(t, s, base, suffix, numParts, 1+r.Intn(4))
		if err := checkEquivalent(rebuilt, patched); err != nil {
			t.Fatalf("%s parts=%d: %v", s.Name(), numParts, err)
		}
	})
}
