package pregel

import (
	"context"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// runTrivial executes a one-superstep program with the given value type to
// exercise the scratch cache with distinct [V, M] instantiations.
func runTrivial[V int64 | float64](t *testing.T, pg *PartitionedGraph) {
	t.Helper()
	_, _, err := Run(context.Background(), pg, Program[V, V]{
		Init:          func(id graph.VertexID) V { return 0 },
		VProg:         func(id graph.VertexID, val, msg V) V { return val + msg },
		SendMsg:       func(tr *Triplet[V], emit Emitter[V]) {},
		MergeMsg:      func(a, b V) V { return a + b },
		MaxIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScratchCacheKeepsDistinctProgramTypes guards the ReuseBuffers
// contract under algorithm alternation: scratches of different program
// types must coexist in the cache, and a matching run must revive its own
// prior scratch rather than discarding a mismatched one.
func TestScratchCacheKeepsDistinctProgramTypes(t *testing.T) {
	g := randomGraph(21, 40, 200)
	assign, err := partition.RandomVertexCut().Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphOpts(g, assign, 4, BuildOptions{ReuseBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	runTrivial[float64](t, pg)
	runTrivial[int64](t, pg)
	if got := len(pg.scratchCache); got != 2 {
		t.Fatalf("cache holds %d scratches after two program types, want 2", got)
	}
	var f64Scratch any
	for _, s := range pg.scratchCache {
		if _, ok := s.(*engineScratch[float64, float64]); ok {
			f64Scratch = s
		}
	}
	if f64Scratch == nil {
		t.Fatal("no float64 scratch parked")
	}
	// A third run of the float64 program must revive that exact scratch
	// and park it again, leaving the int64 one untouched.
	runTrivial[float64](t, pg)
	if got := len(pg.scratchCache); got != 2 {
		t.Fatalf("cache holds %d scratches after revival, want 2", got)
	}
	found := false
	for _, s := range pg.scratchCache {
		if s == f64Scratch {
			found = true
		}
	}
	if !found {
		t.Fatal("float64 run allocated a new scratch instead of reviving the parked one")
	}
}
