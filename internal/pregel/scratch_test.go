package pregel

import (
	"context"
	"sync"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// runTrivial executes a one-superstep program with the given value type to
// exercise the scratch pools with distinct [V, M] instantiations.
func runTrivial[V int64 | float64](t *testing.T, pg *PartitionedGraph) {
	t.Helper()
	_, _, err := Run(context.Background(), pg, Program[V, V]{
		Init:          func(id graph.VertexID) V { return 0 },
		VProg:         func(id graph.VertexID, val, msg V) V { return val + msg },
		SendMsg:       func(tr *Triplet[V], emit Emitter[V]) {},
		MergeMsg:      func(a, b V) V { return a + b },
		MaxIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScratchPoolsKeepDistinctProgramTypes guards the ReuseBuffers contract
// under algorithm alternation: scratches of different program types park in
// separate pools, and a matching run must revive its own prior scratch
// rather than discarding a mismatched one.
func TestScratchPoolsKeepDistinctProgramTypes(t *testing.T) {
	g := randomGraph(21, 40, 200)
	assign, err := partition.RandomVertexCut().Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphOpts(g, assign, 4, BuildOptions{ReuseBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	f64Key := scratchKey[float64, float64]()
	i64Key := scratchKey[int64, int64]()
	if f64Key == i64Key {
		t.Fatalf("distinct program types share scratch key %q", f64Key)
	}
	runTrivial[float64](t, pg)
	runTrivial[int64](t, pg)
	if got := pg.parkedScratches(f64Key); got != 1 {
		t.Fatalf("float64 pool holds %d scratches, want 1", got)
	}
	if got := pg.parkedScratches(i64Key); got != 1 {
		t.Fatalf("int64 pool holds %d scratches, want 1", got)
	}
	f64Scratch := pg.takeScratch(f64Key)
	if f64Scratch == nil {
		t.Fatal("no float64 scratch parked")
	}
	pg.putScratch(f64Key, f64Scratch)
	// A third run of the float64 program must revive that exact scratch
	// and park it again, leaving the int64 one untouched.
	runTrivial[float64](t, pg)
	if got := pg.parkedScratches(f64Key); got != 1 {
		t.Fatalf("float64 pool holds %d scratches after revival, want 1", got)
	}
	if s := pg.takeScratch(f64Key); s != f64Scratch {
		t.Fatal("float64 run allocated a new scratch instead of reviving the parked one")
	}
}

// TestScratchPoolBounds checks the per-type depth bound and the distinct
// program type bound: pools never exceed scratchDepth() entries, and types
// beyond maxScratchTypes are not parked at all.
func TestScratchPoolBounds(t *testing.T) {
	g := randomGraph(21, 40, 200)
	assign, err := partition.RandomVertexCut().Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphOpts(g, assign, 4, BuildOptions{ReuseBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	key := scratchKey[float64, float64]()
	depth := pg.scratchDepth()
	for i := 0; i < depth+3; i++ {
		pg.putScratch(key, newEngineScratch[float64, float64](pg, 1))
	}
	if got := pg.parkedScratches(key); got != depth {
		t.Fatalf("pool depth %d, want bound %d", got, depth)
	}
	for i := 0; i < maxScratchTypes+4; i++ {
		pg.putScratch(string(rune('a'+i)), newEngineScratch[int64, int64](pg, 1))
	}
	pg.scratchMu.Lock()
	types := len(pg.scratchPools)
	pg.scratchMu.Unlock()
	if types > maxScratchTypes {
		t.Fatalf("%d distinct scratch types parked, want ≤ %d", types, maxScratchTypes)
	}
}

// TestConcurrentRunsShareGraph runs many simultaneous programs — same and
// different program types — on one ReuseBuffers PartitionedGraph and
// asserts every concurrent result is bit-identical to a serial run. Under
// -race this is the engine half of the serving-core guarantee: a built
// topology is a shared read-only structure, and all mutable run state lives
// in pooled per-run scratches.
func TestConcurrentRunsShareGraph(t *testing.T) {
	g := randomGraph(240, 900, 7)
	assign, err := partition.EdgePartition2D().Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphOpts(g, assign, 8, BuildOptions{ReuseBuffers: true})
	if err != nil {
		t.Fatal(err)
	}

	prF := func() ([]float64, error) {
		vals, _, err := Run(context.Background(), pg, pagerankProgram(pg))
		return vals, err
	}
	ccF := func() ([]int64, error) {
		vals, _, err := Run(context.Background(), pg, minLabelProgram())
		return vals, err
	}
	wantPR, err := prF()
	if err != nil {
		t.Fatal(err)
	}
	wantCC, err := ccF()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				if w%2 == 0 {
					got, err := prF()
					if err != nil {
						errs[w] = err
						return
					}
					for i := range got {
						if got[i] != wantPR[i] {
							errs[w] = errMismatch
							return
						}
					}
				} else {
					got, err := ccF()
					if err != nil {
						errs[w] = err
						return
					}
					for i := range got {
						if got[i] != wantCC[i] {
							errs[w] = errMismatch
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := pg.parkedScratches(scratchKey[float64, float64]()); got == 0 {
		t.Fatal("no float64 scratches parked after concurrent runs")
	}
}

var errMismatch = errInterface("concurrent result differs from serial run")

type errInterface string

func (e errInterface) Error() string { return string(e) }

// pagerankProgram is a small fixed-iteration PageRank used by the
// concurrency tests (the real one lives in internal/algorithms, which
// depends on this package).
func pagerankProgram(pg *PartitionedGraph) Program[float64, float64] {
	outDeg := pg.G.OutDegrees()
	idx := make(map[graph.VertexID]int32, pg.G.NumVertices())
	for i, v := range pg.G.Vertices() {
		idx[v] = int32(i)
	}
	return Program[float64, float64]{
		Init:  func(id graph.VertexID) float64 { return 1.0 },
		VProg: func(id graph.VertexID, val, msg float64) float64 { return 0.15 + 0.85*msg },
		SendMsg: func(tr *Triplet[float64], emit Emitter[float64]) {
			if d := outDeg[idx[tr.SrcID]]; d > 0 {
				emit.ToDst(tr.SrcVal / float64(d))
			}
		},
		MergeMsg:        func(a, b float64) float64 { return a + b },
		InitialMsg:      0,
		MaxIterations:   5,
		ActiveDirection: AllEdges,
	}
}

// minLabelProgram propagates the minimum initial label — a CC-shaped
// program with int64 state.
func minLabelProgram() Program[int64, int64] {
	return Program[int64, int64]{
		Init:  func(id graph.VertexID) int64 { return int64(id) },
		VProg: func(id graph.VertexID, val, msg int64) int64 { return min(val, msg) },
		SendMsg: func(tr *Triplet[int64], emit Emitter[int64]) {
			if tr.SrcVal < tr.DstVal {
				emit.ToDst(tr.SrcVal)
			} else if tr.DstVal < tr.SrcVal {
				emit.ToSrc(tr.DstVal)
			}
		},
		MergeMsg:        func(a, b int64) int64 { return min(a, b) },
		InitialMsg:      int64(1) << 62,
		MaxIterations:   6,
		ActiveDirection: Either,
	}
}
