package pregel

import (
	"testing"

	"cutfit/internal/datasets"
	"cutfit/internal/partition"
)

// BenchmarkPartitionBuild compares the retained hash-map construction
// (the pre-refactor baseline) against the sort/scatter construction on the
// youtube analog at the paper's coarse granularity of 128 partitions.
// Run with -benchmem: the headline is both ns/op and allocs/op.
func BenchmarkPartitionBuild(b *testing.B) {
	spec, err := datasets.ByName("youtube")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.BuildCached()
	if err != nil {
		b.Fatal(err)
	}
	const numParts = 128
	assign, err := partition.EdgePartition2D().Partition(g, numParts)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the graph's cached views so both variants measure construction,
	// not first-touch index building.
	g.EdgeEndpointIndices()

	b.Run("maps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := newPartitionedGraphMaps(g, assign, numParts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sortscatter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewPartitionedGraphOpts(g, assign, numParts, BuildOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sortscatter-1worker", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewPartitionedGraphOpts(g, assign, numParts, BuildOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
