package pregel

import (
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

func TestBuildEmptyGraph(t *testing.T) {
	g := graph.FromEdges(nil)
	pg, err := NewPartitionedGraphOpts(g, []partition.PID{}, 4, BuildOptions{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pg.TotalMirrors() != 0 {
		t.Fatal("expected no mirrors")
	}
}
