package pregel

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// sumProgram is a trivial one-round program: every vertex sends 1 along
// each out-edge, then stops (messages of value 0 are not re-sent).
func degreeProgram() Program[int64, int64] {
	return Program[int64, int64]{
		Init: func(id graph.VertexID) int64 { return 0 },
		VProg: func(id graph.VertexID, val, msg int64) int64 {
			return val + msg
		},
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			emit.ToDst(1)
		},
		MergeMsg:        func(a, b int64) int64 { return a + b },
		InitialMsg:      0,
		MaxIterations:   1,
		ActiveDirection: AllEdges,
	}
}

func TestRunComputesInDegrees(t *testing.T) {
	g := randomGraph(21, 40, 200)
	for _, parts := range []int{1, 2, 7, 16} {
		pg := mustPartition(t, g, partition.RandomVertexCut(), parts)
		vals, stats, err := Run(context.Background(), pg, degreeProgram())
		if err != nil {
			t.Fatal(err)
		}
		inDeg := g.InDegrees()
		for i, v := range vals {
			if v != int64(inDeg[i]) {
				t.Fatalf("parts=%d vertex %d: got %d, want %d", parts, i, v, inDeg[i])
			}
		}
		if len(stats.Supersteps) != 1 {
			t.Fatalf("supersteps = %d, want 1 (MaxIterations)", len(stats.Supersteps))
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	bad := Program[int64, int64]{} // everything nil
	if _, _, err := Run(context.Background(), pg, bad); err == nil {
		t.Fatal("nil hooks should error")
	}
	p := degreeProgram()
	p.MaxIterations = -1
	if _, _, err := Run(context.Background(), pg, p); err == nil {
		t.Fatal("negative MaxIterations should error")
	}
}

func TestRunContextCancellation(t *testing.T) {
	g := randomGraph(22, 30, 120)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog := degreeProgram()
	prog.MaxIterations = 100
	if _, _, err := Run(ctx, pg, prog); err == nil {
		t.Fatal("cancelled context should abort the run")
	}
}

// TestBroadcastAccounting verifies the central accounting identity: on the
// first superstep every vertex is active, so broadcast messages equal the
// total mirror count (CommCost + NonCut in metric terms).
func TestBroadcastAccounting(t *testing.T) {
	g := randomGraph(23, 60, 300)
	for _, s := range []partition.Strategy{partition.RandomVertexCut(), partition.EdgePartition2D(), partition.DestinationCut()} {
		pg := mustPartition(t, g, s, 8)
		_, stats, err := Run(context.Background(), pg, degreeProgram())
		if err != nil {
			t.Fatal(err)
		}
		ss := stats.Supersteps[0]
		if ss.BroadcastMsgs != pg.TotalMirrors() {
			t.Fatalf("%s: broadcast %d != total mirrors %d", s.Name(), ss.BroadcastMsgs, pg.TotalMirrors())
		}
		if ss.BroadcastBytes != 8*pg.TotalMirrors() {
			t.Fatalf("%s: broadcast bytes %d", s.Name(), ss.BroadcastBytes)
		}
		if ss.ActiveVertices != int64(g.NumVertices()) {
			t.Fatalf("%s: active %d != V %d", s.Name(), ss.ActiveVertices, g.NumVertices())
		}
		if ss.EdgesScanned != int64(g.NumEdges()) {
			t.Fatalf("%s: scanned %d != E %d", s.Name(), ss.EdgesScanned, g.NumEdges())
		}
	}
}

// TestReduceMsgsBounded: partial aggregates per superstep cannot exceed the
// number of (partition, vertex) mirror slots.
func TestReduceMsgsBounded(t *testing.T) {
	g := randomGraph(24, 50, 400)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 8)
	_, stats, err := Run(context.Background(), pg, degreeProgram())
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range stats.Supersteps {
		if ss.ReduceMsgs > pg.TotalMirrors() {
			t.Fatalf("reduce msgs %d exceed mirror slots %d", ss.ReduceMsgs, pg.TotalMirrors())
		}
	}
}

func TestResultsIndependentOfParallelism(t *testing.T) {
	g := randomGraph(25, 80, 500)
	assign, err := partition.EdgePartition2D().Partition(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	var reference []int64
	for _, par := range []int{1, 2, 8} {
		pg, err := NewPartitionedGraph(g, assign, 9)
		if err != nil {
			t.Fatal(err)
		}
		pg.Parallelism = par
		vals, _, err := Run(context.Background(), pg, degreeProgram())
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = vals
			continue
		}
		for i := range vals {
			if vals[i] != reference[i] {
				t.Fatalf("parallelism %d: vertex %d differs", par, i)
			}
		}
	}
}

// TestActiveDirectionOut: with Out direction, a label that only flows
// forward stops propagating when its source no longer updates.
func TestActiveDirections(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3. A "max seen" propagation with direction Out
	// needs 3 rounds to reach vertex 3.
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	prog := Program[int64, int64]{
		Init: func(id graph.VertexID) int64 { return int64(id) },
		VProg: func(id graph.VertexID, val, msg int64) int64 {
			if msg > val {
				return msg
			}
			return val
		},
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			if t.SrcVal > t.DstVal {
				emit.ToDst(t.SrcVal)
			}
		},
		MergeMsg: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		InitialMsg:      -1,
		ActiveDirection: Out,
	}
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	vals, stats, err := Run(context.Background(), pg, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing propagates (values already increase along the chain), but
	// the run must converge.
	if !stats.Converged {
		t.Fatal("expected convergence")
	}
	for i, v := range vals {
		if v != int64(g.Vertices()[i]) {
			t.Fatalf("vertex %d changed to %d", i, v)
		}
	}

	// Reverse chain: 3 -> 2 -> 1 -> 0 — now values propagate and need
	// several supersteps.
	g2 := graph.FromEdges([]graph.Edge{{Src: 3, Dst: 2}, {Src: 2, Dst: 1}, {Src: 1, Dst: 0}})
	pg2 := mustPartition(t, g2, partition.RandomVertexCut(), 2)
	vals2, stats2, err := Run(context.Background(), pg2, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals2 {
		if v != 3 {
			t.Fatalf("vertex %d = %d, want 3", i, v)
		}
	}
	if n := stats2.NumSupersteps(); n < 3 {
		t.Fatalf("supersteps = %d, want >= 3", n)
	}
	if !stats2.Converged {
		t.Fatal("expected convergence")
	}
}

func TestEitherDirectionPropagatesBothWays(t *testing.T) {
	// Min-label propagation over a directed chain must still reach
	// everything when scanning Either direction.
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}})
	prog := Program[graph.VertexID, graph.VertexID]{
		Init: func(id graph.VertexID) graph.VertexID { return id },
		VProg: func(id graph.VertexID, val, msg graph.VertexID) graph.VertexID {
			if msg < val {
				return msg
			}
			return val
		},
		SendMsg: func(t *Triplet[graph.VertexID], emit Emitter[graph.VertexID]) {
			if t.SrcVal < t.DstVal {
				emit.ToDst(t.SrcVal)
			} else if t.DstVal < t.SrcVal {
				emit.ToSrc(t.DstVal)
			}
		},
		MergeMsg: func(a, b graph.VertexID) graph.VertexID {
			if a < b {
				return a
			}
			return b
		},
		InitialMsg:      graph.VertexID(math.MaxInt64),
		ActiveDirection: Either,
	}
	pg := mustPartition(t, g, partition.CanonicalRandomVertexCut(), 3)
	vals, _, err := Run(context.Background(), pg, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 0 {
			t.Fatalf("vertex %d labeled %d, want 0", i, v)
		}
	}
}

func TestCustomByteAccounting(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	pg := mustPartition(t, g, partition.RandomVertexCut(), 1)
	prog := degreeProgram()
	prog.StateBytes = func(int64) int { return 100 }
	prog.MsgBytes = func(int64) int { return 7 }
	_, stats, err := Run(context.Background(), pg, prog)
	if err != nil {
		t.Fatal(err)
	}
	ss := stats.Supersteps[0]
	if ss.BroadcastBytes != 100*ss.BroadcastMsgs {
		t.Fatalf("broadcast bytes %d for %d msgs", ss.BroadcastBytes, ss.BroadcastMsgs)
	}
	if ss.ReduceBytes != 7*ss.ReduceMsgs {
		t.Fatalf("reduce bytes %d for %d msgs", ss.ReduceBytes, ss.ReduceMsgs)
	}
}

func TestRunStatsTotals(t *testing.T) {
	g := randomGraph(29, 40, 200)
	pg := mustPartition(t, g, partition.EdgePartition1D(), 4)
	prog := degreeProgram()
	prog.MaxIterations = 3
	_, stats, err := Run(context.Background(), pg, prog)
	if err != nil {
		t.Fatal(err)
	}
	var bm, rm, bytes, scanned int64
	for _, ss := range stats.Supersteps {
		bm += ss.BroadcastMsgs
		rm += ss.ReduceMsgs
		bytes += ss.TotalNetworkBytes()
		scanned += ss.EdgesScanned
	}
	if stats.TotalBroadcastMsgs() != bm || stats.TotalReduceMsgs() != rm {
		t.Fatal("totals disagree with superstep sums")
	}
	if stats.TotalNetworkBytes() != bytes || stats.TotalEdgesScanned() != scanned {
		t.Fatal("byte/scan totals disagree")
	}
}

func TestMaxComputeAndSum(t *testing.T) {
	ss := SuperstepStats{ComputePerPart: []float64{1, 5, 3}}
	if ss.MaxCompute() != 5 {
		t.Fatalf("MaxCompute = %g", ss.MaxCompute())
	}
	if ss.SumCompute() != 9 {
		t.Fatalf("SumCompute = %g", ss.SumCompute())
	}
}

func TestEdgeDirectionString(t *testing.T) {
	names := map[EdgeDirection]string{
		Out: "Out", In: "In", Either: "Either", Both: "Both", AllEdges: "All",
	}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(d), d.String(), want)
		}
	}
	if EdgeDirection(99).String() == "" {
		t.Fatal("unknown direction should still stringify")
	}
}

func TestUserPanicBecomesError(t *testing.T) {
	g := randomGraph(41, 30, 100)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 4)
	prog := degreeProgram()
	prog.SendMsg = func(tr *Triplet[int64], emit Emitter[int64]) {
		panic("boom in user code")
	}
	_, _, err := Run(context.Background(), pg, prog)
	if err == nil {
		t.Fatal("panic in SendMsg should surface as an error")
	}
	prog2 := degreeProgram()
	calls := 0
	prog2.VProg = func(id graph.VertexID, val, msg int64) int64 {
		calls++
		panic("boom in vprog")
	}
	if _, _, err := Run(context.Background(), pg, prog2); err == nil {
		t.Fatal("panic in VProg should surface as an error")
	}
}

func TestOnSuperstepHalt(t *testing.T) {
	// A long chain with min-label propagation needs many supersteps; halt
	// after 2 via the monitor hook.
	n := 40
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	g := graph.FromEdges(edges)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 4)
	prog := Program[graph.VertexID, graph.VertexID]{
		Init: func(id graph.VertexID) graph.VertexID { return id },
		VProg: func(id graph.VertexID, val, msg graph.VertexID) graph.VertexID {
			if msg < val {
				return msg
			}
			return val
		},
		SendMsg: func(tr *Triplet[graph.VertexID], emit Emitter[graph.VertexID]) {
			if tr.SrcVal < tr.DstVal {
				emit.ToDst(tr.SrcVal)
			}
		},
		MergeMsg: func(a, b graph.VertexID) graph.VertexID {
			if a < b {
				return a
			}
			return b
		},
		InitialMsg:      graph.VertexID(1 << 62),
		ActiveDirection: Out,
		OnSuperstep: func(ss *SuperstepStats) error {
			if ss.Superstep >= 2 {
				return ErrHalt
			}
			return nil
		},
	}
	_, stats, err := Run(context.Background(), pg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Halted || stats.Converged {
		t.Fatalf("halted=%v converged=%v, want halted", stats.Halted, stats.Converged)
	}
	if stats.NumSupersteps() != 2 {
		t.Fatalf("supersteps = %d, want 2", stats.NumSupersteps())
	}
}

func TestOnSuperstepErrorAborts(t *testing.T) {
	g := randomGraph(43, 20, 60)
	pg := mustPartition(t, g, partition.RandomVertexCut(), 2)
	prog := degreeProgram()
	prog.MaxIterations = 5
	wantErr := fmt.Errorf("monitor failure")
	prog.OnSuperstep = func(ss *SuperstepStats) error { return wantErr }
	_, _, err := Run(context.Background(), pg, prog)
	if err == nil || !strings.Contains(err.Error(), "monitor failure") {
		t.Fatalf("err = %v, want monitor failure", err)
	}
}
