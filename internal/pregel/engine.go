package pregel

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"cutfit/internal/graph"
)

// EdgeDirection selects which triplets the compute phase scans, matching
// GraphX Pregel's activeDirection.
type EdgeDirection int

const (
	// Out scans triplets whose source vertex received a message last round.
	Out EdgeDirection = iota
	// In scans triplets whose destination vertex received a message.
	In
	// Either scans triplets where either endpoint received a message.
	Either
	// Both scans triplets where both endpoints received messages.
	Both
	// AllEdges scans every triplet every superstep.
	AllEdges
)

// String implements fmt.Stringer.
func (d EdgeDirection) String() string {
	switch d {
	case Out:
		return "Out"
	case In:
		return "In"
	case Either:
		return "Either"
	case Both:
		return "Both"
	case AllEdges:
		return "All"
	}
	return fmt.Sprintf("EdgeDirection(%d)", int(d))
}

// ScanPolicy selects how the compute phase visits a partition's triplets.
type ScanPolicy int

const (
	// ScanAuto (the default) picks per partition per superstep: when fewer
	// than 1/8 of the partition's local vertices are on the frontier, the
	// sparse path walks only edges incident to frontier vertices through the
	// partition's frontier index; otherwise the dense scan visits every
	// edge. Both paths deliver messages in identical (ascending edge) order,
	// so the choice never changes results — only the work done.
	ScanAuto ScanPolicy = iota
	// ScanDense forces the full edge scan every superstep.
	ScanDense
	// ScanSparse forces the frontier-index path regardless of density
	// (AllEdges programs still scan densely: every edge is live by
	// definition). Useful for tests and benchmarks; production callers
	// should prefer ScanAuto.
	ScanSparse
)

// String implements fmt.Stringer.
func (sp ScanPolicy) String() string {
	switch sp {
	case ScanAuto:
		return "Auto"
	case ScanDense:
		return "Dense"
	case ScanSparse:
		return "Sparse"
	}
	return fmt.Sprintf("ScanPolicy(%d)", int(sp))
}

// sparseDenominator is ScanAuto's density threshold: the sparse path runs
// when active*sparseDenominator < localVertices (frontier below 12.5%).
// Below it the gather+scan cost (Σ deg(active) mark operations plus one
// word-skip pass over the edge bitmap) undercuts the dense per-edge
// activity tests; above it the dense scan's linear locality wins.
const sparseDenominator = 8

// Triplet presents one edge together with the current values of its
// endpoints to the send-message function.
type Triplet[V any] struct {
	SrcID, DstID   graph.VertexID
	SrcVal, DstVal V
}

// Emitter delivers messages from a triplet to one of its endpoints. GraphX
// semantics: messages may only target the edge's own source or destination.
type Emitter[M any] interface {
	// ToSrc sends a message to the triplet's source vertex.
	ToSrc(m M)
	// ToDst sends a message to the triplet's destination vertex.
	ToDst(m M)
}

// Program defines a Pregel computation over vertex values V and messages M.
type Program[V, M any] struct {
	// Init produces the initial value of each vertex (before the initial
	// message is applied). Required.
	Init func(id graph.VertexID) V
	// VProg merges an incoming (already combined) message into the vertex
	// value. Required.
	VProg func(id graph.VertexID, val V, msg M) V
	// SendMsg inspects one active triplet and emits messages to its
	// endpoints. Required.
	SendMsg func(t *Triplet[V], emit Emitter[M])
	// MergeMsg combines two messages bound for the same vertex. Must be
	// commutative and associative. Required.
	MergeMsg func(a, b M) M
	// InitialMsg is delivered to every vertex on superstep 0.
	InitialMsg M
	// MaxIterations caps the number of message rounds; 0 means no cap
	// (run until convergence).
	MaxIterations int
	// ActiveDirection selects which triplets are scanned (default Out).
	ActiveDirection EdgeDirection
	// ScanPolicy selects dense vs. frontier-index triplet scanning
	// (default ScanAuto). Results are identical under every policy.
	ScanPolicy ScanPolicy

	// StateBytes sizes a vertex value for traffic accounting (default: a
	// constant 8 bytes).
	StateBytes func(val V) int
	// MsgBytes sizes a message for traffic accounting (default 8 bytes).
	MsgBytes func(m M) int
	// EdgeCost is the abstract compute cost of scanning one triplet
	// (default 1). Heavy per-edge algorithms (triangle intersection)
	// override it.
	EdgeCost func(t *Triplet[V]) float64
	// ApplyCost is the abstract compute cost of one vertex-program
	// application (default 1).
	ApplyCost float64

	// OnSuperstep, if set, is called after every superstep with its
	// statistics. Returning ErrHalt stops the computation gracefully
	// (RunStats.Halted is set); any other non-nil error aborts the run.
	// Use it for convergence monitoring, logging or step budgets that
	// depend on runtime behavior rather than a fixed iteration count.
	OnSuperstep func(ss *SuperstepStats) error
}

// ErrHalt, returned from Program.OnSuperstep, stops the computation after
// the current superstep without error.
var ErrHalt = errors.New("pregel: halt requested")

func (p *Program[V, M]) validate() error {
	if p.Init == nil || p.VProg == nil || p.SendMsg == nil || p.MergeMsg == nil {
		return fmt.Errorf("pregel: Program requires Init, VProg, SendMsg and MergeMsg")
	}
	if p.MaxIterations < 0 {
		return fmt.Errorf("pregel: MaxIterations must be non-negative, got %d", p.MaxIterations)
	}
	return nil
}

// engineScratch is the run-scoped buffer set of one Run invocation: master
// and mirror state, per-partition combine accumulators and the per-phase
// counter slices. It is allocated once per run and zeroed — never
// reallocated — between supersteps; with PartitionedGraph.ReuseBuffers it
// is parked on the graph after a successful run and revived by the next
// Run with matching V/M types, so steady-state supersteps allocate only
// the two per-superstep stat slices that escape into RunStats.
type engineScratch[V, M any] struct {
	// Master state, indexed by global dense vertex. changedBits is the
	// frontier as a bitset (bit v set ⇔ vertex v changed last superstep);
	// broadcast and apply shard over whole words so every word has exactly
	// one writer.
	masterVals  []V
	changedBits []uint64
	masterMsg   []M
	masterHas   []bool

	// Mirror state, indexed by [partition][local vertex].
	vals   [][]V
	msgAcc [][]M
	msgHas [][]bool

	// frontier[p] is partition p's mirror-side frontier bitset (one bit per
	// local vertex), derived from changedBits at the start of every compute
	// phase by the partition's own worker — never written by broadcast, so
	// no two workers ever touch the same word. edgeMask[p] is the sparse
	// path's candidate-edge bitmap (one bit per partition edge): the gather
	// pass sets bits through the frontier index, the scan pass consumes
	// words in ascending order and clears them, so the mask is all-zero
	// between supersteps (and between runs). Both allocate lazily — an
	// AllEdges program (PageRank) never touches either.
	frontier [][]uint64
	edgeMask [][]uint64

	// emitters[p] is partition p's reusable message emitter; its acc/has
	// point into msgAcc/msgHas. Slots are cache-line padded: workers scan
	// different partitions concurrently and bump emitted per edge, so
	// adjacent unpadded emitters would false-share.
	emitters []emitterSlot[M]

	// Per-shard / per-partition counters, zeroed each superstep.
	bMsgs, bBytes  []int64 // broadcast, per shard
	rMsgs, rBytes  []int64 // reduce, per shard
	applyCounts    []int64 // apply, per shard
	scanned        []int64 // compute, per partition
	emitted        []int64
	visited        []int64 // edges actually examined, per partition
	computePerPart []float64
	applyPerShard  []float64
}

func newEngineScratch[V, M any](pg *PartitionedGraph, shards int) *engineScratch[V, M] {
	nv := pg.G.NumVertices()
	numParts := pg.NumParts
	s := &engineScratch[V, M]{
		masterVals:  make([]V, nv),
		changedBits: make([]uint64, (nv+63)/64),
		masterMsg:   make([]M, nv),
		masterHas:   make([]bool, nv),
		vals:        make([][]V, numParts),
		msgAcc:      make([][]M, numParts),
		msgHas:      make([][]bool, numParts),
		frontier:    make([][]uint64, numParts),
		edgeMask:    make([][]uint64, numParts),
		emitters:    make([]emitterSlot[M], numParts),
	}
	for p := 0; p < numParts; p++ {
		n := len(pg.Parts[p].LocalVerts)
		s.vals[p] = make([]V, n)
		s.msgAcc[p] = make([]M, n)
		s.msgHas[p] = make([]bool, n)
	}
	s.sizeCounters(numParts, shards)
	return s
}

// sizeCounters (re)allocates the small counter slices if the shard or
// partition count changed since the scratch was built.
func (s *engineScratch[V, M]) sizeCounters(numParts, shards int) {
	if len(s.bMsgs) != shards {
		s.bMsgs = make([]int64, shards)
		s.bBytes = make([]int64, shards)
		s.rMsgs = make([]int64, shards)
		s.rBytes = make([]int64, shards)
		s.applyCounts = make([]int64, shards)
		s.applyPerShard = make([]float64, shards)
	}
	if len(s.scanned) != numParts {
		s.scanned = make([]int64, numParts)
		s.emitted = make([]int64, numParts)
		s.visited = make([]int64, numParts)
		s.computePerPart = make([]float64, numParts)
	}
}

// reset clears the flag arrays a revived scratch inherits from its previous
// run. Value and message buffers need no clearing: every slot is rewritten
// before it is read (superstep 0 initializes all masters and all changed
// words, broadcast populates mirrors, the has-flags gate the accumulators,
// the frontier is rebuilt word-by-word each compute phase). The edge masks
// are all-zero by the scan pass's clear-as-you-go invariant; they are
// cleared again here only as cheap defense against a future path that
// parks a scratch mid-superstep.
func (s *engineScratch[V, M]) reset(numParts, shards int) {
	s.sizeCounters(numParts, shards)
	clear(s.masterHas)
	for p := range s.msgHas {
		clear(s.msgHas[p])
	}
	for p := range s.edgeMask {
		clear(s.edgeMask[p])
	}
}

// scratchKey returns the pool key of the [V, M] program type: the concrete
// scratch type's name. Computed once per Run; every instantiation of
// engineScratch formats to a distinct string.
func scratchKey[V, M any]() string {
	return fmt.Sprintf("%T", (*engineScratch[V, M])(nil))
}

// scratchFor checks a parked scratch of this program type out of the
// graph's pool when buffer reuse is enabled, else builds a fresh one.
// Concurrent Runs of the same program each get their own scratch: the pool
// hands out distinct buffer sets and runs that find the pool empty fall
// back to fresh allocation.
func scratchFor[V, M any](pg *PartitionedGraph, shards int) *engineScratch[V, M] {
	if pg.ReuseBuffers {
		if s, ok := pg.takeScratch(scratchKey[V, M]()).(*engineScratch[V, M]); ok {
			s.reset(pg.NumParts, shards)
			mScratchReused.Inc()
			return s
		}
	}
	mScratchAllocated.Inc()
	return newEngineScratch[V, M](pg, shards)
}

// Exchanger replaces the mirror half of a superstep — broadcast, the
// per-partition compute scan and the reduce transport — with an external
// implementation; internal/dist plugs the multi-process cluster in here.
// Superstep 0, message application (apply) and the loop control stay in the
// engine, shared verbatim with the local path, so an Exchanger that
// preserves the engine's message semantics yields bit-identical results.
//
// Exchange contract, per superstep:
//   - changed is the master frontier bitset (bit v ⇔ vertex v's master
//     value changed last round) and masterVals the current master values;
//     both are read-only.
//   - Combined messages must be handed to deliver as (global dense vertex,
//     message), at most once per (partition, vertex) pair, with each
//     vertex's calls in ascending partition order — the same per-
//     destination merge order the local reduce phase uses.
//   - ss must be filled with the phase counters the engine cannot see:
//     BroadcastMsgs/BroadcastBytes, EdgesScanned, ActiveEdges, MsgsEmitted
//     and ComputePerPart. (ReduceMsgs/ReduceBytes are counted by the
//     engine as deliver is called.)
type Exchanger[V, M any] interface {
	Exchange(ctx context.Context, step int, changed []uint64, masterVals []V, deliver func(gidx int32, m M), ss *SuperstepStats) error
}

// Run executes the program on the partitioned graph and returns the final
// vertex values (indexed by the graph's dense vertex order, i.e. aligned
// with pg.G.Vertices()) and the per-superstep statistics.
func Run[V, M any](ctx context.Context, pg *PartitionedGraph, prog Program[V, M]) ([]V, *RunStats, error) {
	return runEngine[V, M](ctx, pg, prog, nil)
}

// RunExchanged executes the program with the mirror-side phases delegated
// to ex — the distributed engine entry point. See Exchanger for the
// contract that keeps results bit-identical to Run.
func RunExchanged[V, M any](ctx context.Context, pg *PartitionedGraph, prog Program[V, M], ex Exchanger[V, M]) ([]V, *RunStats, error) {
	if ex == nil {
		return nil, nil, errors.New("pregel: RunExchanged requires an Exchanger")
	}
	return runEngine(ctx, pg, prog, ex)
}

func runEngine[V, M any](ctx context.Context, pg *PartitionedGraph, prog Program[V, M], ex Exchanger[V, M]) ([]V, *RunStats, error) {
	if err := prog.validate(); err != nil {
		return nil, nil, err
	}
	stateBytes := prog.StateBytes
	if stateBytes == nil {
		stateBytes = func(V) int { return 8 }
	}
	msgBytes := prog.MsgBytes
	if msgBytes == nil {
		msgBytes = func(M) int { return 8 }
	}
	edgeCost := prog.EdgeCost
	if edgeCost == nil {
		edgeCost = func(*Triplet[V]) float64 { return 1 }
	}
	applyCost := prog.ApplyCost
	if applyCost == 0 {
		applyCost = 1
	}

	g := pg.G
	verts := g.Vertices()
	nv := len(verts)
	numParts := pg.NumParts
	// The frontier bitset spans nv bits; broadcast and apply shard over its
	// words so each word has exactly one writer per phase.
	nw := (nv + 63) / 64

	shards := pg.Parallelism
	if shards < 1 {
		shards = 1
	}

	sc := scratchFor[V, M](pg, shards)
	masterVals := sc.masterVals
	changedBits := sc.changedBits
	masterMsg := sc.masterMsg
	masterHas := sc.masterHas
	msgAcc := sc.msgAcc
	msgHas := sc.msgHas
	for p := 0; p < numParts; p++ {
		sc.emitters[p].partEmitter = partEmitter[M]{
			merge: prog.MergeMsg,
			acc:   msgAcc[p],
			has:   msgHas[p],
		}
	}

	// Superstep 0: every vertex applies the initial message at the master.
	// Sharded over bitset words, so every changedBits word is written whole
	// by exactly one shard.
	if err := pg.forEachShard(nw, func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			base := wi << 6
			end := base + 64
			if end > nv {
				end = nv
			}
			for v := base; v < end; v++ {
				id := verts[v]
				masterVals[v] = prog.VProg(id, prog.Init(id), prog.InitialMsg)
			}
			if end-base == 64 {
				changedBits[wi] = ^uint64(0)
			} else {
				changedBits[wi] = 1<<uint(end-base) - 1
			}
		}
	}); err != nil {
		return nil, nil, err
	}
	activeCount := int64(nv)

	stats := &RunStats{}

	for step := 1; activeCount > 0; step++ {
		if prog.MaxIterations > 0 && step > prog.MaxIterations {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("pregel: superstep %d: %w", step, err)
		}
		stepStart := time.Now()
		ss := SuperstepStats{
			Superstep:      step,
			ActiveVertices: activeCount,
		}
		wShard := (nw + shards - 1) / shards
		if wShard < 1 {
			wShard = 1
		}

		if ex != nil {
			// Phases 1–3, distributed: the exchanger ships the frontier,
			// runs the compute scans remotely and streams combined messages
			// back; the merge below is the local reduce phase's per-vertex
			// merge verbatim, so per-destination combine order is preserved.
			deliver := func(gidx int32, m M) {
				if masterHas[gidx] {
					masterMsg[gidx] = prog.MergeMsg(masterMsg[gidx], m)
				} else {
					masterMsg[gidx] = m
					masterHas[gidx] = true
				}
				ss.ReduceMsgs++
				ss.ReduceBytes += int64(msgBytes(m))
			}
			if err := ex.Exchange(ctx, step, changedBits, masterVals, deliver, &ss); err != nil {
				return nil, nil, fmt.Errorf("pregel: superstep %d exchange: %w", step, err)
			}
		} else if err := localSuperstep(ctx, pg, &prog, sc, &ss, edgeCost, stateBytes, msgBytes, step, shards, nw, nv, wShard); err != nil {
			return nil, nil, err
		}

		// Phase 4: apply at the master. Sharded over frontier words, so
		// every changedBits word is rebuilt whole by exactly one shard.
		counts := sc.applyCounts
		applyPerShard := sc.applyPerShard
		for sh := 0; sh < shards; sh++ {
			counts[sh], applyPerShard[sh] = 0, 0
		}
		if err := pg.forEachShard(nw, func(lo, hi int) {
			sh := lo / wShard
			var n int64
			for wi := lo; wi < hi; wi++ {
				var w uint64
				base := wi << 6
				end := base + 64
				if end > nv {
					end = nv
				}
				for v := base; v < end; v++ {
					if masterHas[v] {
						masterVals[v] = prog.VProg(verts[v], masterVals[v], masterMsg[v])
						masterHas[v] = false
						w |= 1 << uint(v-base)
						n++
					}
				}
				changedBits[wi] = w
			}
			counts[sh] += n
			applyPerShard[sh] += float64(n) * applyCost
		}); err != nil {
			return nil, nil, fmt.Errorf("pregel: superstep %d apply: %w", step, err)
		}
		activeCount = 0
		for _, c := range counts {
			activeCount += c
		}
		ss.ApplyPerShard = append([]float64(nil), applyPerShard...)

		hSuperstepSeconds.Observe(time.Since(stepStart).Seconds())
		hActiveEdges.Observe(float64(ss.ActiveEdges))
		stats.Supersteps = append(stats.Supersteps, ss)
		if prog.OnSuperstep != nil {
			switch err := prog.OnSuperstep(&stats.Supersteps[len(stats.Supersteps)-1]); {
			case errors.Is(err, ErrHalt):
				stats.Halted = true
				stats.Converged = false
				return finishRun(pg, sc, masterVals), stats, nil
			case err != nil:
				return nil, nil, fmt.Errorf("pregel: superstep %d monitor: %w", step, err)
			}
		}
	}
	stats.Converged = activeCount == 0
	return finishRun(pg, sc, masterVals), stats, nil
}

// localSuperstep runs phases 1–3 of one superstep in-process: broadcast
// changed masters to mirrors, compute every partition, reduce the combined
// messages back to the master arrays. Factored out of runEngine so the
// distributed branch above replaces exactly this block and nothing else.
func localSuperstep[V, M any](ctx context.Context, pg *PartitionedGraph, prog *Program[V, M], sc *engineScratch[V, M], ss *SuperstepStats, edgeCost func(*Triplet[V]) float64, stateBytes func(V) int, msgBytes func(M) int, step, shards, nw, nv, wShard int) error {
	_ = ctx
	verts := pg.G.Vertices()
	numParts := pg.NumParts
	masterVals := sc.masterVals
	changedBits := sc.changedBits
	masterMsg := sc.masterMsg
	masterHas := sc.masterHas
	vals := sc.vals
	msgAcc := sc.msgAcc
	msgHas := sc.msgHas

	// Phase 1: broadcast changed master values to mirrors. Sharded over
	// frontier words: a zero word skips 64 vertices in one compare, and
	// each mirror slot is still written by exactly one vertex. The
	// routing CSR walk hoists the offset pair once per vertex and ranges
	// over one subslice, so the inner loop carries no per-ref bounds
	// checks.
	bMsgs := sc.bMsgs
	bBytes := sc.bBytes
	for sh := 0; sh < shards; sh++ {
		bMsgs[sh], bBytes[sh] = 0, 0
	}
	offs := pg.routingOffsets
	routRefs := pg.routingRefs
	if err := pg.forEachShard(nw, func(lo, hi int) {
		sh := lo / wShard
		var msgs, bytes int64
		for wi := lo; wi < hi; wi++ {
			w := changedBits[wi]
			for w != 0 {
				v := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				val := masterVals[v]
				sz := int64(stateBytes(val))
				for _, ref := range routRefs[offs[v]:offs[v+1]] {
					vals[ref.part][ref.local] = val
					msgs++
					bytes += sz
				}
			}
		}
		bMsgs[sh] += msgs
		bBytes[sh] += bytes
	}); err != nil {
		return fmt.Errorf("pregel: superstep %d broadcast: %w", step, err)
	}
	for sh := 0; sh < shards; sh++ {
		ss.BroadcastMsgs += bMsgs[sh]
		ss.BroadcastBytes += bBytes[sh]
	}

	// Phase 2: compute. Each partition derives its frontier bitset from
	// the master changed bitset (its own worker writes it — broadcast
	// never touches it, so no word is shared), then hands the triplet scan
	// to computePart — the same code the distributed worker runs, so both
	// paths deliver messages in ascending edge order and results are
	// identical; only where the scan executes differs.
	scanned := sc.scanned
	emitted := sc.emitted
	visited := sc.visited
	if err := pg.forEachPart(func(p int) {
		part := pg.Parts[p]
		lv := part.LocalVerts
		em := &sc.emitters[p].partEmitter
		em.emitted = 0

		var fw []uint64
		act := 0
		if prog.ActiveDirection != AllEdges {
			fw = sc.frontier[p]
			if fw == nil {
				fw = make([]uint64, (len(lv)+63)/64)
				sc.frontier[p] = fw
			}
			// Frontier bitset: bit l ⇔ local vertex l's master changed
			// last round. Built branch-free, one changed-bit gather per
			// local vertex; popcount gives the density decision.
			for wi := range fw {
				var w uint64
				base := wi << 6
				end := base + 64
				if end > len(lv) {
					end = len(lv)
				}
				for l := base; l < end; l++ {
					gi := lv[l]
					w |= (changedBits[gi>>6] >> (uint32(gi) & 63) & 1) << uint(l-base)
				}
				fw[wi] = w
				act += bits.OnesCount64(w)
			}
		}
		nScan, nVisited, cost, mask := computePart(prog, edgeCost, part, verts, vals[p], fw, act, sc.edgeMask[p], em)
		sc.edgeMask[p] = mask
		scanned[p] = nScan
		emitted[p] = em.emitted
		visited[p] = nVisited
		sc.computePerPart[p] = cost
	}); err != nil {
		return fmt.Errorf("pregel: superstep %d compute: %w", step, err)
	}
	for p := 0; p < numParts; p++ {
		ss.EdgesScanned += scanned[p]
		ss.MsgsEmitted += emitted[p]
		ss.ActiveEdges += visited[p]
	}
	ss.ComputePerPart = append([]float64(nil), sc.computePerPart...)

	// Phase 3: reduce. One partial aggregate per (partition, vertex)
	// ships to the master. Shard by global vertex ranges: LocalVerts
	// is sorted, so each shard binary-searches its subrange in every
	// partition; shards own disjoint ranges, so merging is race-free.
	rMsgs := sc.rMsgs
	rBytes := sc.rBytes
	for sh := 0; sh < shards; sh++ {
		rMsgs[sh], rBytes[sh] = 0, 0
	}
	chunk := (nv + shards - 1) / shards
	if err := pg.forEachShard(shards, func(shLo, shHi int) {
		for sh := shLo; sh < shHi; sh++ {
			gLo := int32(sh * chunk)
			gHi := int32((sh + 1) * chunk)
			if int(gHi) > nv {
				gHi = int32(nv)
			}
			var msgs, bytes int64
			for p := 0; p < numParts; p++ {
				lv := pg.Parts[p].LocalVerts
				has := msgHas[p]
				acc := msgAcc[p]
				start := sort.Search(len(lv), func(i int) bool { return lv[i] >= gLo })
				for l := start; l < len(lv) && lv[l] < gHi; l++ {
					if !has[l] {
						continue
					}
					gidx := lv[l]
					m := acc[l]
					if masterHas[gidx] {
						masterMsg[gidx] = prog.MergeMsg(masterMsg[gidx], m)
					} else {
						masterMsg[gidx] = m
						masterHas[gidx] = true
					}
					msgs++
					bytes += int64(msgBytes(m))
				}
			}
			rMsgs[sh] += msgs
			rBytes[sh] += bytes
		}
	}); err != nil {
		return fmt.Errorf("pregel: superstep %d reduce: %w", step, err)
	}
	for sh := 0; sh < shards; sh++ {
		ss.ReduceMsgs += rMsgs[sh]
		ss.ReduceBytes += rBytes[sh]
	}

	// Clear per-partition accumulators for the next round. (The frontier
	// bitsets are rebuilt word-by-word each compute phase and the edge
	// bitmaps self-clear during the scan, so neither needs a pass here.)
	if err := pg.forEachPart(func(p int) {
		clear(msgHas[p])
	}); err != nil {
		return fmt.Errorf("pregel: superstep %d: %w", step, err)
	}
	return nil
}

// finishRun hands the final vertex values to the caller. With buffer reuse
// the scratch (including masterVals) is parked for the next run, so the
// caller gets a private copy; otherwise the scratch-owned slice itself is
// returned and the scratch is dropped.
func finishRun[V, M any](pg *PartitionedGraph, sc *engineScratch[V, M], masterVals []V) []V {
	if !pg.ReuseBuffers {
		return masterVals
	}
	out := make([]V, len(masterVals))
	copy(out, masterVals)
	pg.putScratch(scratchKey[V, M](), sc)
	return out
}

// partEmitter delivers messages into the partition-local accumulator.
type partEmitter[M any] struct {
	merge              func(a, b M) M
	acc                []M
	has                []bool
	srcLocal, dstLocal int32
	emitted            int64
}

// emitterSlot pads a partEmitter (72 bytes regardless of M: two slice
// headers, a func value, and the per-edge fields) out to 128 bytes so
// consecutive slots in engineScratch.emitters never share a cache line.
type emitterSlot[M any] struct {
	partEmitter[M]
	_ [56]byte
}

func (em *partEmitter[M]) deliver(l int32, m M) {
	em.emitted++
	if em.has[l] {
		em.acc[l] = em.merge(em.acc[l], m)
	} else {
		em.acc[l] = m
		em.has[l] = true
	}
}

// ToSrc sends a message to the triplet's source vertex.
func (em *partEmitter[M]) ToSrc(m M) { em.deliver(em.srcLocal, m) }

// ToDst sends a message to the triplet's destination vertex.
func (em *partEmitter[M]) ToDst(m M) { em.deliver(em.dstLocal, m) }
