// Package pregel implements a GraphX-style vertex-cut Bulk-Synchronous
// Parallel engine. Edges are distributed into partitions by a partitioning
// strategy; each partition reconstructs local copies (mirrors) of the
// vertices its edges touch; a master copy of every vertex lives outside the
// edge partitions (GraphX's VertexRDD). Every superstep proceeds in three
// phases, exactly mirroring GraphX's communication pattern:
//
//  1. broadcast: updated master values are shipped to every mirror — this
//     traffic is what the CommCost metric counts;
//  2. compute: each partition scans its active triplets in parallel and
//     combines emitted messages locally per destination vertex;
//  3. reduce: one partial aggregate per (partition, vertex) is shipped back
//     to the master and merged, then the vertex program is applied.
//
// The engine executes genuinely in parallel (one goroutine per partition,
// sharded master apply) and simultaneously counts every message and byte
// crossing a partition boundary; the cluster package converts those counts
// into simulated wall-clock time for a configurable cluster.
//
// # Partition construction
//
// NewPartitionedGraph builds the partitioned topology with a dense
// sort/scatter algorithm rather than per-partition hash maps, because the
// advisor's empirical-selection loop rebuilds it once per candidate
// strategy and the build cost dominates that loop:
//
//  1. count: one pass over the edge assignment counts edges per partition
//     (sharded over the worker pool) and validates every PID;
//  2. scatter: prefix sums over the per-(shard, partition) counts give
//     every shard a private cursor into one contiguous edge buffer, so all
//     shards scatter their edges concurrently without locks while
//     preserving global edge order within each partition (the AssignOrder
//     alignment contract);
//  3. localize: each partition — fanned out over the worker pool — marks
//     its edge endpoints in a per-worker vertex bitset, emits the set bits
//     in order as the LocalVerts mirror table (sorted and deduplicated by
//     construction), and rewrites its edges to local indices by O(1) rank
//     queries.
//
// The only allocations retained per partition are the exact-size LocalVerts
// table and a subslice of the shared edge buffer; all intermediate state
// lives in per-worker scratch that is reused across the partitions a worker
// processes. The reference hash-map construction is kept (unexported) as
// the equivalence oracle for tests and as the benchmark baseline.
package pregel

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"cutfit/internal/graph"
	"cutfit/internal/par"
	"cutfit/internal/partition"
)

// localEdge is an edge expressed in partition-local vertex indices.
type localEdge struct {
	src, dst int32 // indices into Partition.LocalVerts
}

// Partition is one edge partition with its local vertex mirror table.
type Partition struct {
	// LocalVerts maps local vertex index -> global dense vertex index,
	// sorted ascending by global index.
	LocalVerts []int32
	edges      []localEdge

	// srcOff/srcPos and dstOff/dstPos are the frontier index: two CSR
	// groupings of the partition's edge positions by local source and local
	// destination vertex. Edges of local vertex l are
	// srcPos[srcOff[l]:srcOff[l+1]] (positions into edges, ascending within
	// each group because the grouping pass is a stable counting sort). The
	// engine's sparse compute path walks only the groups of frontier-active
	// vertices instead of scanning every edge. The index costs 8 bytes per
	// edge, so it is built lazily on the first sparse scan that needs it
	// (frontierOnce) — dense-only workloads such as full PageRank supersteps
	// never pay for it — and never changes afterwards: it is a pure function
	// of the edge list, which is immutable once the partition is built.
	srcOff, srcPos []int32
	dstOff, dstPos []int32
	frontierOnce   sync.Once
	frontierBuilt  atomic.Bool // for lock-free footprint accounting only
}

// ensureFrontierIndex builds the partition's frontier index on first use.
// Safe for concurrent callers; after it returns the index fields are
// readable without further synchronization.
func (p *Partition) ensureFrontierIndex() {
	p.frontierOnce.Do(func() {
		buildEdgeIndex(p)
		p.frontierBuilt.Store(true)
	})
}

// NumEdges returns the number of edges in the partition.
func (p *Partition) NumEdges() int { return len(p.edges) }

// EdgeAt returns the local vertex indices of the partition's j-th edge.
func (p *Partition) EdgeAt(j int) (src, dst int32) {
	e := p.edges[j]
	return e.src, e.dst
}

// NumLocalVertices returns the number of distinct vertices reconstructed in
// the partition.
func (p *Partition) NumLocalVertices() int { return len(p.LocalVerts) }

// mirrorRef locates one mirror of a vertex: partition p, local slot l.
type mirrorRef struct {
	part  int32
	local int32
}

// BuildOptions tunes partitioned-graph construction and engine execution.
// The zero value is ready to use.
type BuildOptions struct {
	// Parallelism is the number of worker goroutines used for the build
	// and for all engine phases; values < 1 default to GOMAXPROCS.
	Parallelism int
	// ReuseBuffers lets the engine park its run-scoped scratch (mirror
	// value/activity tables, combine accumulators, per-phase counters) in
	// per-program-type pools on the PartitionedGraph between runs, so
	// repeated runs over the same topology — benchmark loops, advisor
	// selection, concurrent serving — reallocate nothing. Pools hold up to
	// max(4, Parallelism) scratches per program type, so N simultaneous
	// Runs of one algorithm all reuse buffers; runs that find their pool
	// empty fall back to fresh allocation.
	ReuseBuffers bool
}

// PartitionedGraph is the topology shared by all jobs: the per-partition
// edge lists, local vertex tables and the mirror routing table.
type PartitionedGraph struct {
	G        *graph.Graph
	NumParts int
	Parts    []*Partition

	// assign is the original per-edge partition assignment, retained so
	// jobs can align global edge order with per-partition edge order.
	assign []partition.PID

	// routingOffsets/routingRefs form a CSR over global dense vertex
	// indices: mirrors of vertex v are
	// routingRefs[routingOffsets[v]:routingOffsets[v+1]].
	routingOffsets []int64
	routingRefs    []mirrorRef

	// Parallelism is the number of worker goroutines used for partition
	// phases; defaults to GOMAXPROCS.
	Parallelism int

	// ReuseBuffers enables engine scratch reuse across runs (see
	// BuildOptions.ReuseBuffers).
	ReuseBuffers bool

	// scratchMu guards scratchPools: per-program-type stacks of parked
	// engine scratches, keyed by the scratch's concrete type. Pools — not
	// single slots — so N simultaneous Runs of the same algorithm on one
	// graph each check out their own buffer set and park it back on
	// completion; different [V, M]-typed programs (PageRank's float64s,
	// CC's vertex IDs) keep separate pools and never evict each other.
	scratchMu    sync.Mutex
	scratchPools map[string][]any
}

// maxScratchTypes bounds how many distinct program types park scratches on
// one PartitionedGraph; beyond it, additional types simply run with fresh
// buffers. Generously above the built-in algorithm mix, it exists so a
// server executing arbitrary custom programs cannot grow the pool map
// without bound.
const maxScratchTypes = 8

// minScratchDepth is the per-type pool depth floor. The effective depth is
// max(minScratchDepth, Parallelism): concurrency beyond the worker pool
// gains nothing from extra parked buffers, but a small floor keeps
// low-parallelism builds useful under bursty concurrent load.
const minScratchDepth = 4

// scratchDepth returns the per-program-type pool bound.
func (pg *PartitionedGraph) scratchDepth() int {
	if pg.Parallelism > minScratchDepth {
		return pg.Parallelism
	}
	return minScratchDepth
}

// NewPartitionedGraph builds the partitioned representation from an edge
// assignment (one PID per edge, aligned with g.Edges()) with default
// options.
func NewPartitionedGraph(g *graph.Graph, assign []partition.PID, numParts int) (*PartitionedGraph, error) {
	return NewPartitionedGraphOpts(g, assign, numParts, BuildOptions{})
}

// NewPartitionedGraphOpts builds the partitioned representation with the
// sort/scatter algorithm described in the package comment, fanning
// per-partition work over opts.Parallelism workers.
func NewPartitionedGraphOpts(g *graph.Graph, assign []partition.PID, numParts int, opts BuildOptions) (*PartitionedGraph, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("pregel: numParts must be positive, got %d", numParts)
	}
	ne := g.NumEdges()
	if len(assign) != ne {
		return nil, fmt.Errorf("pregel: assignment has %d entries for %d edges", len(assign), ne)
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = par.DefaultParallelism()
	}

	pg := &PartitionedGraph{
		G:            g,
		NumParts:     numParts,
		assign:       assign,
		Parallelism:  workers,
		ReuseBuffers: opts.ReuseBuffers,
	}
	if err := pg.buildSortScatter(); err != nil {
		return nil, err
	}
	pg.buildRouting()
	// The frontier index is NOT built here: each partition builds it lazily
	// on its first sparse scan (ensureFrontierIndex), so dense-only
	// workloads never hold the extra 8 bytes per edge.
	return pg, nil
}

// buildSortScatter populates Parts from the edge assignment: parallel
// counting sort of edges into one contiguous buffer, then per-partition
// local vertex tables by sort + dedup. Tombstoned edges are validated (the
// assignment stays dense-aligned) but never scattered: partitions hold live
// edges only, exactly as a rebuild over the compacted list would produce.
func (pg *PartitionedGraph) buildSortScatter() error {
	g, assign, numParts := pg.G, pg.assign, pg.NumParts
	ne := len(assign)
	numDead := g.NumDeadEdges()

	// A block-backed graph scatters block at a time through per-worker
	// decode scratch — the O(E) endpoint-index slices of the dense path are
	// never materialized, which is most of the peak-heap win at scale.
	if g.BlockBacked() {
		return pg.buildSortScatterBlocks()
	}
	srcIdx, dstIdx := g.EdgeEndpointIndices()

	shards := pg.Parallelism
	if shards > ne {
		shards = ne
	}
	if shards < 1 {
		shards = 1
	}
	chunk := (ne + shards - 1) / shards

	// Pass 1: per-(shard, partition) edge counts, sharded over contiguous
	// edge ranges. Each shard validates its own PIDs.
	shardCounts := make([]int64, shards*numParts)
	var badEdge, badPID int64 = -1, 0
	var badMu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > ne {
			hi = ne
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			counts := shardCounts[s*numParts : (s+1)*numParts]
			for i := lo; i < hi; i++ {
				p := assign[i]
				if p < 0 || int(p) >= numParts {
					badMu.Lock()
					if badEdge < 0 || int64(i) < badEdge {
						badEdge, badPID = int64(i), int64(p)
					}
					badMu.Unlock()
					return
				}
				if numDead != 0 && !g.EdgeAlive(i) {
					continue
				}
				counts[p]++
			}
		}(s, lo, hi)
	}
	wg.Wait()
	if badEdge >= 0 {
		return fmt.Errorf("pregel: edge %d assigned to out-of-range partition %d", badEdge, badPID)
	}

	// Prefix sums: partStart[p] is the partition's region in the shared
	// edge buffer; cursors[s*numParts+p] is shard s's write position inside
	// it. Shards are contiguous ascending edge ranges, so this preserves
	// global edge order within every partition.
	partStart := make([]int64, numParts+1)
	for p := 0; p < numParts; p++ {
		var total int64
		for s := 0; s < shards; s++ {
			total += shardCounts[s*numParts+p]
		}
		partStart[p+1] = partStart[p] + total
	}
	cursors := shardCounts // reuse: overwrite counts with absolute cursors
	for p := 0; p < numParts; p++ {
		pos := partStart[p]
		for s := 0; s < shards; s++ {
			c := shardCounts[s*numParts+p]
			cursors[s*numParts+p] = pos
			pos += c
		}
	}

	// Pass 2: scatter. Edges are staged with their *global* dense endpoint
	// indices; the localize pass rewrites them in place to local indices.
	// The buffer holds live edges only — the count pass skipped tombstones
	// with the same predicate, so the cursors line up exactly.
	edgeBuf := make([]localEdge, partStart[numParts])
	for s := 0; s < shards; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > ne {
			hi = ne
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			cur := cursors[s*numParts : (s+1)*numParts]
			for i := lo; i < hi; i++ {
				if numDead != 0 && !g.EdgeAlive(i) {
					continue
				}
				p := assign[i]
				edgeBuf[cur[p]] = localEdge{src: srcIdx[i], dst: dstIdx[i]}
				cur[p]++
			}
		}(s, lo, hi)
	}
	wg.Wait()

	pg.scatterFinish(edgeBuf, partStart)
	return nil
}

// buildSortScatterBlocks is buildSortScatter for block-backed graphs: the
// same counting sort, but shards cover contiguous BLOCK ranges (the count
// and scatter passes walk identical edge spans, so the cursors line up)
// and each scatter worker decodes its blocks into private scratch,
// resolving endpoint indices per block with the batch lookup instead of
// the O(E) EdgeEndpointIndices slices.
func (pg *PartitionedGraph) buildSortScatterBlocks() error {
	g, assign, numParts := pg.G, pg.assign, pg.NumParts
	bs := g.Blocks()
	ne := len(assign)
	numDead := g.NumDeadEdges()
	blockEdges := bs.BlockEdges()
	numBlocks := bs.NumBlocks()

	// Build the vertex index once up front so the concurrent per-block
	// endpoint lookups below never race on construction.
	g.LookupIndices(nil, nil, nil)

	shards := pg.Parallelism
	if shards > numBlocks {
		shards = numBlocks
	}
	if shards < 1 {
		shards = 1
	}
	bchunk := (numBlocks + shards - 1) / shards

	// Pass 1: per-(shard, partition) live edge counts over block-aligned
	// edge ranges. Needs only the assignment and tombstones, never the
	// edges themselves.
	shardCounts := make([]int64, shards*numParts)
	var badEdge, badPID int64 = -1, 0
	var badMu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*bchunk*blockEdges, (s+1)*bchunk*blockEdges
		if hi > ne {
			hi = ne
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			counts := shardCounts[s*numParts : (s+1)*numParts]
			for i := lo; i < hi; i++ {
				p := assign[i]
				if p < 0 || int(p) >= numParts {
					badMu.Lock()
					if badEdge < 0 || int64(i) < badEdge {
						badEdge, badPID = int64(i), int64(p)
					}
					badMu.Unlock()
					return
				}
				if numDead != 0 && !g.EdgeAlive(i) {
					continue
				}
				counts[p]++
			}
		}(s, lo, hi)
	}
	wg.Wait()
	if badEdge >= 0 {
		return fmt.Errorf("pregel: edge %d assigned to out-of-range partition %d", badEdge, badPID)
	}

	partStart := make([]int64, numParts+1)
	for p := 0; p < numParts; p++ {
		var total int64
		for s := 0; s < shards; s++ {
			total += shardCounts[s*numParts+p]
		}
		partStart[p+1] = partStart[p] + total
	}
	cursors := shardCounts // reuse: overwrite counts with absolute cursors
	for p := 0; p < numParts; p++ {
		pos := partStart[p]
		for s := 0; s < shards; s++ {
			c := shardCounts[s*numParts+p]
			cursors[s*numParts+p] = pos
			pos += c
		}
	}

	// Pass 2: scatter, one worker per contiguous block range, decoding
	// into per-worker scratch.
	edgeBuf := make([]localEdge, partStart[numParts])
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		b0, b1 := s*bchunk, (s+1)*bchunk
		if b1 > numBlocks {
			b1 = numBlocks
		}
		wg.Add(1)
		go func(s, b0, b1 int) {
			defer wg.Done()
			cur := cursors[s*numParts : (s+1)*numParts]
			var ebuf []graph.Edge
			var sidx, didx []int32
			for b := b0; b < b1; b++ {
				es, err := bs.DecodeBlockEdges(b, ebuf)
				if err != nil {
					errs[s] = err
					return
				}
				ebuf = es[:0]
				if cap(sidx) < len(es) {
					sidx = make([]int32, len(es))
					didx = make([]int32, len(es))
				}
				sidx, didx = sidx[:len(es)], didx[:len(es)]
				g.LookupIndices(es, sidx, didx)
				start := b * blockEdges
				for j := range es {
					i := start + j
					if numDead != 0 && !g.EdgeAlive(i) {
						continue
					}
					p := assign[i]
					edgeBuf[cur[p]] = localEdge{src: sidx[j], dst: didx[j]}
					cur[p]++
				}
			}
		}(s, b0, b1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("pregel: %w", err)
		}
	}
	pg.scatterFinish(edgeBuf, partStart)
	return nil
}

// scatterFinish slices the shared edge buffer into Parts and runs the
// localize pass (pass 3) on the worker pool: per-partition local vertex
// tables by sort + dedup, then in-place rewrite of the staged global
// endpoint indices to local ones. Every worker owns one growable endpoint
// scratch reused across the partitions it takes.
func (pg *PartitionedGraph) scatterFinish(edgeBuf []localEdge, partStart []int64) {
	numParts := pg.NumParts
	parts := make([]*Partition, numParts)
	for p := range parts {
		parts[p] = &Partition{edges: edgeBuf[partStart[p]:partStart[p+1]:partStart[p+1]]}
	}
	pg.Parts = parts
	workers := pg.Parallelism
	if workers > numParts {
		workers = numParts
	}
	if workers < 1 {
		workers = 1
	}
	tasks := make(chan int, numParts)
	for p := 0; p < numParts; p++ {
		tasks <- p
	}
	close(tasks)
	nv := pg.G.NumVertices()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var scratch localizeScratch
			for p := range tasks {
				scratch.localize(parts[p], nv)
			}
		}()
	}
	wg.Wait()
}

// buildEdgeIndex builds the partition's frontier index: stable counting
// sorts of the edge positions grouped by local source and by local
// destination. O(|edges| + |LocalVerts|), no comparison sort. The offset
// tables double as scatter cursors (shifted one slot during the fill,
// restored by a final copy-down), as in buildRouting.
func buildEdgeIndex(part *Partition) {
	n := len(part.LocalVerts)
	m := len(part.edges)
	srcOff := make([]int32, n+1)
	dstOff := make([]int32, n+1)
	for _, e := range part.edges {
		srcOff[e.src+1]++
		dstOff[e.dst+1]++
	}
	for i := 0; i < n; i++ {
		srcOff[i+1] += srcOff[i]
		dstOff[i+1] += dstOff[i]
	}
	srcPos := make([]int32, m)
	dstPos := make([]int32, m)
	for j, e := range part.edges {
		srcPos[srcOff[e.src]] = int32(j)
		srcOff[e.src]++
		dstPos[dstOff[e.dst]] = int32(j)
		dstOff[e.dst]++
	}
	copy(srcOff[1:], srcOff[:n])
	srcOff[0] = 0
	copy(dstOff[1:], dstOff[:n])
	dstOff[0] = 0
	part.srcOff, part.srcPos = srcOff, srcPos
	part.dstOff, part.dstPos = dstOff, dstPos
}

// localizeScratch is one scatter worker's reusable vertex-presence state:
// a bitset over global dense vertex indices plus a per-word rank prefix.
// Both are O(numVertices/64) — replacing the old sort-based localization
// whose scratch was O(2·partitionEdges) per concurrent worker, which at
// out-of-core scale stacked up to an extra 8 bytes per edge of transient
// peak heap during every build.
type localizeScratch struct {
	words []uint64 // presence bitset, indexed by global vertex index
	rank  []int32  // rank[w] = set bits in words[:w]
}

// localize builds part.LocalVerts and rewrites the staged global endpoint
// indices to local ones. Marking endpoints in a bitset and emitting set
// bits in word order yields exactly the sorted deduplicated table the old
// sort+dedup produced, and each rewrite is an O(1) rank query (prefix
// table + popcount within the word) instead of a binary search.
func (s *localizeScratch) localize(part *Partition, nv int) {
	edges := part.edges
	if len(edges) == 0 {
		return
	}
	nw := (nv + 63) / 64
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
		s.rank = make([]int32, nw+1)
	}
	words, rank := s.words[:nw], s.rank[:nw+1]
	for _, e := range edges {
		words[e.src>>6] |= 1 << (uint32(e.src) & 63)
		words[e.dst>>6] |= 1 << (uint32(e.dst) & 63)
	}
	n := int32(0)
	for w, word := range words {
		rank[w] = n
		n += int32(bits.OnesCount64(word))
	}
	rank[nw] = n
	lv := make([]int32, n)
	for w, word := range words {
		base := int32(w << 6)
		at := rank[w]
		for word != 0 {
			lv[at] = base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			at++
		}
	}
	part.LocalVerts = lv
	local := func(g int32) int32 {
		return rank[g>>6] + int32(bits.OnesCount64(words[g>>6]&(1<<(uint32(g)&63)-1)))
	}
	for j, e := range edges {
		edges[j] = localEdge{src: local(e.src), dst: local(e.dst)}
	}
	// Clear only the words this partition touched, via the vertex table
	// itself — partitions far smaller than the graph don't pay O(nv).
	for _, g := range lv {
		words[g>>6] = 0
	}
}

// buildRouting constructs the mirror routing CSR from the per-partition
// local vertex tables. Mirror refs of a vertex are ordered by ascending
// partition, matching the reference construction. The fill pass uses the
// offsets themselves as cursors (shifting them one slot, restored by a
// final copy-down) instead of a separate per-vertex cursor array.
func (pg *PartitionedGraph) buildRouting() {
	nv := pg.G.NumVertices()
	offsets := make([]int64, nv+1)
	for p := 0; p < pg.NumParts; p++ {
		for _, gidx := range pg.Parts[p].LocalVerts {
			offsets[gidx+1]++
		}
	}
	for i := 0; i < nv; i++ {
		offsets[i+1] += offsets[i]
	}
	refs := make([]mirrorRef, offsets[nv])
	for p := 0; p < pg.NumParts; p++ {
		for l, gidx := range pg.Parts[p].LocalVerts {
			refs[offsets[gidx]] = mirrorRef{part: int32(p), local: int32(l)}
			offsets[gidx]++
		}
	}
	copy(offsets[1:], offsets[:nv])
	offsets[0] = 0
	pg.routingOffsets = offsets
	pg.routingRefs = refs
}

// newPartitionedGraphMaps is the original hash-map construction, retained
// as the equivalence oracle for the sort/scatter build and as the baseline
// for BenchmarkPartitionBuild. Three sequential passes; one map[int32]int32
// per partition.
func newPartitionedGraphMaps(g *graph.Graph, assign []partition.PID, numParts int) (*PartitionedGraph, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("pregel: numParts must be positive, got %d", numParts)
	}
	edges := g.Edges()
	if len(assign) != len(edges) {
		return nil, fmt.Errorf("pregel: assignment has %d entries for %d edges", len(assign), len(edges))
	}

	parts := make([]*Partition, numParts)
	for p := range parts {
		parts[p] = &Partition{}
	}
	numDead := g.NumDeadEdges()
	counts := make([]int, numParts)
	for i := range edges {
		p := assign[i]
		if p < 0 || int(p) >= numParts {
			return nil, fmt.Errorf("pregel: edge %d assigned to out-of-range partition %d", i, p)
		}
		if numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		counts[p]++
	}
	type vset map[int32]int32
	seen := make([]vset, numParts)
	for p := range seen {
		seen[p] = make(vset)
	}
	for i, e := range edges {
		if numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		p := assign[i]
		si, _ := g.Index(e.Src)
		di, _ := g.Index(e.Dst)
		if _, ok := seen[p][si]; !ok {
			seen[p][si] = 0
		}
		if _, ok := seen[p][di]; !ok {
			seen[p][di] = 0
		}
	}
	for p := 0; p < numParts; p++ {
		lv := make([]int32, 0, len(seen[p]))
		for gidx := range seen[p] {
			lv = append(lv, gidx)
		}
		slices.Sort(lv)
		for l, gidx := range lv {
			seen[p][gidx] = int32(l)
		}
		parts[p].LocalVerts = lv
		parts[p].edges = make([]localEdge, 0, counts[p])
	}
	for i, e := range edges {
		if numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		p := assign[i]
		si, _ := g.Index(e.Src)
		di, _ := g.Index(e.Dst)
		parts[p].edges = append(parts[p].edges, localEdge{
			src: seen[p][si],
			dst: seen[p][di],
		})
	}
	pg := &PartitionedGraph{
		G:           g,
		NumParts:    numParts,
		Parts:       parts,
		assign:      assign,
		Parallelism: par.DefaultParallelism(),
	}
	pg.buildRouting()
	return pg, nil
}

// AssignOrder returns the original per-edge partition assignment, aligned
// with G.Edges(). Edges were appended to each partition in this order, so
// a second pass over it reproduces local edge indices. Callers must not
// modify the returned slice.
func (pg *PartitionedGraph) AssignOrder() []partition.PID { return pg.assign }

// ForEachPartition runs fn(p) for every partition index on the worker
// pool, blocking until all complete. fn is called concurrently and must
// only write state owned by its partition. A panic in fn is returned as
// an error.
func (pg *PartitionedGraph) ForEachPartition(fn func(p int)) error { return pg.forEachPart(fn) }

// Mirrors returns the number of partitions vertex v (global dense index) is
// replicated into.
func (pg *PartitionedGraph) Mirrors(v int32) int {
	return int(pg.routingOffsets[v+1] - pg.routingOffsets[v])
}

// mirrorsOf returns the mirror references of v.
func (pg *PartitionedGraph) mirrorsOf(v int32) []mirrorRef {
	return pg.routingRefs[pg.routingOffsets[v]:pg.routingOffsets[v+1]]
}

// ForEachMirror visits every (partition, local slot) mirror of global dense
// vertex v, in the routing CSR's order (ascending partition, then ascending
// local slot). The distributed broadcast path walks this to address mirror
// updates exactly as the in-process broadcast phase does.
func (pg *PartitionedGraph) ForEachMirror(v int32, fn func(part, local int32)) {
	for _, ref := range pg.mirrorsOf(v) {
		fn(ref.part, ref.local)
	}
}

// TotalMirrors returns the total number of mirror slots across all
// partitions (= Σ_v Mirrors(v) = metrics CommCost + NonCut).
func (pg *PartitionedGraph) TotalMirrors() int64 {
	return int64(len(pg.routingRefs))
}

// MemoryFootprint approximates the bytes retained by the partitioned
// topology itself — the shared edge buffer, per-partition mirror tables,
// the routing CSR and the retained assignment — excluding the underlying
// Graph and any parked engine scratch. Cache layers use it as the eviction
// cost of a built topology.
func (pg *PartitionedGraph) MemoryFootprint() int64 {
	b := int64(len(pg.assign)) * 4
	b += int64(len(pg.routingOffsets)) * 8
	b += int64(len(pg.routingRefs)) * 8
	for _, part := range pg.Parts {
		b += int64(len(part.edges))*8 + int64(len(part.LocalVerts))*4
		// Frontier index: two position arrays and two offset tables. Built
		// lazily, so a topology that has only run dense scans costs nothing
		// here. The size is computed from the flag rather than the slices —
		// accounting may run concurrently with a sparse scan's lazy build,
		// and the atomic flag is ordered after the fields are published.
		if part.frontierBuilt.Load() {
			m, n := int64(len(part.edges)), int64(len(part.LocalVerts))
			b += 2*m*4 + 2*(n+1)*4
		}
	}
	return b
}

// takeScratch checks out one parked engine scratch of the given program
// type, or nil when that type's pool is empty. Other types' pools are
// untouched.
func (pg *PartitionedGraph) takeScratch(typeKey string) any {
	pg.scratchMu.Lock()
	defer pg.scratchMu.Unlock()
	pool := pg.scratchPools[typeKey]
	n := len(pool)
	if n == 0 {
		return nil
	}
	s := pool[n-1]
	pool[n-1] = nil
	pg.scratchPools[typeKey] = pool[:n-1]
	return s
}

// putScratch parks an engine scratch in its program type's pool; a full
// pool (or a full type map) drops it for the garbage collector.
func (pg *PartitionedGraph) putScratch(typeKey string, s any) {
	pg.scratchMu.Lock()
	defer pg.scratchMu.Unlock()
	pool, ok := pg.scratchPools[typeKey]
	if !ok && len(pg.scratchPools) >= maxScratchTypes {
		return
	}
	if len(pool) >= pg.scratchDepth() {
		return
	}
	if pg.scratchPools == nil {
		pg.scratchPools = make(map[string][]any)
	}
	pg.scratchPools[typeKey] = append(pool, s)
}

// parkedScratches reports how many scratches of the given type are parked
// (test hook).
func (pg *PartitionedGraph) parkedScratches(typeKey string) int {
	pg.scratchMu.Lock()
	defer pg.scratchMu.Unlock()
	return len(pg.scratchPools[typeKey])
}

// panicCatcher records the first panic raised by any pool worker so it can
// be surfaced as an error instead of crashing the process from a goroutine.
type panicCatcher struct {
	once sync.Once
	err  error
}

func (pc *panicCatcher) capture() {
	if r := recover(); r != nil {
		pc.once.Do(func() {
			pc.err = fmt.Errorf("pregel: user program panicked: %v", r)
		})
	}
}

// forEachPart runs fn(p) for every partition index on the worker pool,
// blocking until all complete. A panic in fn is captured and returned as
// an error (remaining work may be skipped or completed).
func (pg *PartitionedGraph) forEachPart(fn func(p int)) error {
	par := pg.Parallelism
	if par < 1 {
		par = 1
	}
	if par > pg.NumParts {
		par = pg.NumParts
	}
	var wg sync.WaitGroup
	var pc panicCatcher
	next := make(chan int, pg.NumParts)
	for p := 0; p < pg.NumParts; p++ {
		next <- p
	}
	close(next)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for p := range next {
				func() {
					defer pc.capture()
					fn(p)
				}()
			}
		}()
	}
	wg.Wait()
	return pc.err
}

// forEachShard splits [0, n) into parallelism contiguous shards and runs
// fn(lo, hi) for each on the worker pool. Panics in fn are captured and
// returned as an error.
func (pg *PartitionedGraph) forEachShard(n int, fn func(lo, hi int)) error {
	par := pg.Parallelism
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	if n == 0 {
		return nil
	}
	var wg sync.WaitGroup
	var pc panicCatcher
	chunk := (n + par - 1) / par
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.capture()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return pc.err
}
