// Package pregel implements a GraphX-style vertex-cut Bulk-Synchronous
// Parallel engine. Edges are distributed into partitions by a partitioning
// strategy; each partition reconstructs local copies (mirrors) of the
// vertices its edges touch; a master copy of every vertex lives outside the
// edge partitions (GraphX's VertexRDD). Every superstep proceeds in three
// phases, exactly mirroring GraphX's communication pattern:
//
//  1. broadcast: updated master values are shipped to every mirror — this
//     traffic is what the CommCost metric counts;
//  2. compute: each partition scans its active triplets in parallel and
//     combines emitted messages locally per destination vertex;
//  3. reduce: one partial aggregate per (partition, vertex) is shipped back
//     to the master and merged, then the vertex program is applied.
//
// The engine executes genuinely in parallel (one goroutine per partition,
// sharded master apply) and simultaneously counts every message and byte
// crossing a partition boundary; the cluster package converts those counts
// into simulated wall-clock time for a configurable cluster.
package pregel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// localEdge is an edge expressed in partition-local vertex indices.
type localEdge struct {
	src, dst int32 // indices into Partition.LocalVerts
}

// Partition is one edge partition with its local vertex mirror table.
type Partition struct {
	// LocalVerts maps local vertex index -> global dense vertex index,
	// sorted ascending by global index.
	LocalVerts []int32
	edges      []localEdge
}

// NumEdges returns the number of edges in the partition.
func (p *Partition) NumEdges() int { return len(p.edges) }

// EdgeAt returns the local vertex indices of the partition's j-th edge.
func (p *Partition) EdgeAt(j int) (src, dst int32) {
	e := p.edges[j]
	return e.src, e.dst
}

// NumLocalVertices returns the number of distinct vertices reconstructed in
// the partition.
func (p *Partition) NumLocalVertices() int { return len(p.LocalVerts) }

// mirrorRef locates one mirror of a vertex: partition p, local slot l.
type mirrorRef struct {
	part  int32
	local int32
}

// PartitionedGraph is the topology shared by all jobs: the per-partition
// edge lists, local vertex tables and the mirror routing table.
type PartitionedGraph struct {
	G        *graph.Graph
	NumParts int
	Parts    []*Partition

	// assign is the original per-edge partition assignment, retained so
	// jobs can align global edge order with per-partition edge order.
	assign []partition.PID

	// routingOffsets/routingRefs form a CSR over global dense vertex
	// indices: mirrors of vertex v are
	// routingRefs[routingOffsets[v]:routingOffsets[v+1]].
	routingOffsets []int64
	routingRefs    []mirrorRef

	// Parallelism is the number of worker goroutines used for partition
	// phases; defaults to GOMAXPROCS.
	Parallelism int
}

// NewPartitionedGraph builds the partitioned representation from an edge
// assignment (one PID per edge, aligned with g.Edges()).
func NewPartitionedGraph(g *graph.Graph, assign []partition.PID, numParts int) (*PartitionedGraph, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("pregel: numParts must be positive, got %d", numParts)
	}
	edges := g.Edges()
	if len(assign) != len(edges) {
		return nil, fmt.Errorf("pregel: assignment has %d entries for %d edges", len(assign), len(edges))
	}
	nv := g.NumVertices()

	parts := make([]*Partition, numParts)
	for p := range parts {
		parts[p] = &Partition{}
	}
	// First pass: count edges per partition and collect local vertex sets.
	counts := make([]int, numParts)
	for i := range edges {
		p := assign[i]
		if p < 0 || int(p) >= numParts {
			return nil, fmt.Errorf("pregel: edge %d assigned to out-of-range partition %d", i, p)
		}
		counts[p]++
	}
	// Build local vertex tables. seen[p] maps global dense -> local index.
	type vset map[int32]int32
	seen := make([]vset, numParts)
	for p := range seen {
		seen[p] = make(vset)
	}
	for i, e := range edges {
		p := assign[i]
		si, _ := g.Index(e.Src)
		di, _ := g.Index(e.Dst)
		if _, ok := seen[p][si]; !ok {
			seen[p][si] = 0
		}
		if _, ok := seen[p][di]; !ok {
			seen[p][di] = 0
		}
	}
	for p := 0; p < numParts; p++ {
		lv := make([]int32, 0, len(seen[p]))
		for gidx := range seen[p] {
			lv = append(lv, gidx)
		}
		sort.Slice(lv, func(a, b int) bool { return lv[a] < lv[b] })
		for l, gidx := range lv {
			seen[p][gidx] = int32(l)
		}
		parts[p].LocalVerts = lv
		parts[p].edges = make([]localEdge, 0, counts[p])
	}
	for i, e := range edges {
		p := assign[i]
		si, _ := g.Index(e.Src)
		di, _ := g.Index(e.Dst)
		parts[p].edges = append(parts[p].edges, localEdge{
			src: seen[p][si],
			dst: seen[p][di],
		})
	}

	// Routing CSR: mirrors per global vertex.
	offsets := make([]int64, nv+1)
	for p := 0; p < numParts; p++ {
		for _, gidx := range parts[p].LocalVerts {
			offsets[gidx+1]++
		}
	}
	for i := 0; i < nv; i++ {
		offsets[i+1] += offsets[i]
	}
	refs := make([]mirrorRef, offsets[nv])
	cursor := make([]int64, nv)
	for p := 0; p < numParts; p++ {
		for l, gidx := range parts[p].LocalVerts {
			refs[offsets[gidx]+cursor[gidx]] = mirrorRef{part: int32(p), local: int32(l)}
			cursor[gidx]++
		}
	}
	return &PartitionedGraph{
		G:              g,
		NumParts:       numParts,
		Parts:          parts,
		assign:         assign,
		routingOffsets: offsets,
		routingRefs:    refs,
		Parallelism:    runtime.GOMAXPROCS(0),
	}, nil
}

// AssignOrder returns the original per-edge partition assignment, aligned
// with G.Edges(). Edges were appended to each partition in this order, so
// a second pass over it reproduces local edge indices. Callers must not
// modify the returned slice.
func (pg *PartitionedGraph) AssignOrder() []partition.PID { return pg.assign }

// ForEachPartition runs fn(p) for every partition index on the worker
// pool, blocking until all complete. fn is called concurrently and must
// only write state owned by its partition. A panic in fn is returned as
// an error.
func (pg *PartitionedGraph) ForEachPartition(fn func(p int)) error { return pg.forEachPart(fn) }

// Mirrors returns the number of partitions vertex v (global dense index) is
// replicated into.
func (pg *PartitionedGraph) Mirrors(v int32) int {
	return int(pg.routingOffsets[v+1] - pg.routingOffsets[v])
}

// mirrorsOf returns the mirror references of v.
func (pg *PartitionedGraph) mirrorsOf(v int32) []mirrorRef {
	return pg.routingRefs[pg.routingOffsets[v]:pg.routingOffsets[v+1]]
}

// TotalMirrors returns the total number of mirror slots across all
// partitions (= Σ_v Mirrors(v) = metrics CommCost + NonCut).
func (pg *PartitionedGraph) TotalMirrors() int64 {
	return int64(len(pg.routingRefs))
}

// panicCatcher records the first panic raised by any pool worker so it can
// be surfaced as an error instead of crashing the process from a goroutine.
type panicCatcher struct {
	once sync.Once
	err  error
}

func (pc *panicCatcher) capture() {
	if r := recover(); r != nil {
		pc.once.Do(func() {
			pc.err = fmt.Errorf("pregel: user program panicked: %v", r)
		})
	}
}

// forEachPart runs fn(p) for every partition index on the worker pool,
// blocking until all complete. A panic in fn is captured and returned as
// an error (remaining work may be skipped or completed).
func (pg *PartitionedGraph) forEachPart(fn func(p int)) error {
	par := pg.Parallelism
	if par < 1 {
		par = 1
	}
	if par > pg.NumParts {
		par = pg.NumParts
	}
	var wg sync.WaitGroup
	var pc panicCatcher
	next := make(chan int, pg.NumParts)
	for p := 0; p < pg.NumParts; p++ {
		next <- p
	}
	close(next)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for p := range next {
				func() {
					defer pc.capture()
					fn(p)
				}()
			}
		}()
	}
	wg.Wait()
	return pc.err
}

// forEachShard splits [0, n) into parallelism contiguous shards and runs
// fn(lo, hi) for each on the worker pool. Panics in fn are captured and
// returned as an error.
func (pg *PartitionedGraph) forEachShard(n int, fn func(lo, hi int)) error {
	par := pg.Parallelism
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	if n == 0 {
		return nil
	}
	var wg sync.WaitGroup
	var pc panicCatcher
	chunk := (n + par - 1) / par
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.capture()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return pc.err
}
