package pregel

import (
	"fmt"

	"cutfit/internal/graph"
)

// NewPartition builds a standalone Partition from local-index tables — the
// distributed worker's entry point for reconstructing its shard from a wire
// snapshot. localVerts must be strictly ascending global dense indices and
// every edge endpoint must index into it; the frontier index is built lazily
// on first sparse scan, exactly as for coordinator-built partitions.
func NewPartition(nv int, localVerts, edgeSrc, edgeDst []int32) (*Partition, error) {
	if len(edgeSrc) != len(edgeDst) {
		return nil, fmt.Errorf("pregel: NewPartition: %d edge sources vs %d destinations", len(edgeSrc), len(edgeDst))
	}
	for i, g := range localVerts {
		if g < 0 || int(g) >= nv {
			return nil, fmt.Errorf("pregel: NewPartition: local vertex %d maps to global %d, graph has %d", i, g, nv)
		}
		if i > 0 && localVerts[i-1] >= g {
			return nil, fmt.Errorf("pregel: NewPartition: LocalVerts not strictly ascending at %d", i)
		}
	}
	n := int32(len(localVerts))
	edges := make([]localEdge, len(edgeSrc))
	for j := range edgeSrc {
		s, d := edgeSrc[j], edgeDst[j]
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("pregel: NewPartition: edge %d endpoints (%d,%d) out of range [0,%d)", j, s, d, n)
		}
		edges[j] = localEdge{src: s, dst: d}
	}
	return &Partition{LocalVerts: localVerts, edges: edges}, nil
}

// ComputeStats is one partition's compute-phase counters, reported by
// ShardCompute.Compute so the distributed reduce frame can carry them back
// to the coordinator's SuperstepStats.
type ComputeStats struct {
	Scanned int64   // edges whose SendMsg actually ran
	Visited int64   // edges examined (dense: all; sparse: candidate set)
	Emitted int64   // messages emitted before local combining
	Cost    float64 // summed EdgeCost of scanned triplets
}

// ShardCompute runs the mirror half of a superstep for one worker's owned
// partitions: accept broadcast mirror values, execute the compute scan via
// the engine's computePart (so edge order — and therefore float64 combine
// order — is byte-identical to the local path), and hand back the locally
// combined per-vertex messages for the reduce frame.
type ShardCompute[V, M any] struct {
	prog     Program[V, M]
	verts    []graph.VertexID
	edgeCost func(*Triplet[V]) float64
	parts    map[int]*Partition
	vals     map[int][]V
	fw       map[int][]uint64 // mirror frontier bitsets, rebuilt per superstep
	act      map[int]int      // frontier popcounts
	mask     map[int][]uint64 // sparse-scan edge bitmaps, reused
	emitters map[int]*partEmitter[M]
	msgAcc   map[int][]M
	msgHas   map[int][]bool
	nv       int
}

// NewShardCompute prepares the compute state for the given owned partitions.
// verts is the full graph's dense vertex-ID table (local and distributed
// runs share it via the shard snapshot), prog the same program the
// coordinator's engine runs.
func NewShardCompute[V, M any](prog Program[V, M], verts []graph.VertexID, parts map[int]*Partition) (*ShardCompute[V, M], error) {
	if err := prog.validate(); err != nil {
		return nil, err
	}
	edgeCost := prog.EdgeCost
	if edgeCost == nil {
		edgeCost = func(*Triplet[V]) float64 { return 1 }
	}
	sc := &ShardCompute[V, M]{
		prog:     prog,
		verts:    verts,
		edgeCost: edgeCost,
		parts:    parts,
		vals:     make(map[int][]V, len(parts)),
		fw:       make(map[int][]uint64, len(parts)),
		act:      make(map[int]int, len(parts)),
		mask:     make(map[int][]uint64, len(parts)),
		emitters: make(map[int]*partEmitter[M], len(parts)),
		msgAcc:   make(map[int][]M, len(parts)),
		msgHas:   make(map[int][]bool, len(parts)),
		nv:       len(verts),
	}
	for p, part := range parts {
		n := len(part.LocalVerts)
		sc.vals[p] = make([]V, n)
		sc.fw[p] = make([]uint64, (n+63)/64)
		sc.msgAcc[p] = make([]M, n)
		sc.msgHas[p] = make([]bool, n)
		sc.emitters[p] = &partEmitter[M]{
			merge: prog.MergeMsg,
			acc:   sc.msgAcc[p],
			has:   sc.msgHas[p],
		}
	}
	return sc, nil
}

// BeginSuperstep resets the per-round frontier and message state. Mirror
// values persist between rounds (only changed masters are re-broadcast),
// matching the engine's scratch semantics.
func (sc *ShardCompute[V, M]) BeginSuperstep() {
	for p := range sc.parts {
		clear(sc.fw[p])
		sc.act[p] = 0
		clear(sc.msgHas[p])
		sc.emitters[p].emitted = 0
	}
}

// SetMirror installs a broadcast master value for partition p's local slot,
// marking it frontier-active for this round's scan.
func (sc *ShardCompute[V, M]) SetMirror(p int, local int32, v V) error {
	vals, ok := sc.vals[p]
	if !ok {
		return fmt.Errorf("pregel: shard compute: partition %d not owned here", p)
	}
	if local < 0 || int(local) >= len(vals) {
		return fmt.Errorf("pregel: shard compute: partition %d local index %d out of range [0,%d)", p, local, len(vals))
	}
	vals[local] = v
	w := &sc.fw[p][local>>6]
	bit := uint64(1) << (uint32(local) & 63)
	if *w&bit == 0 {
		*w |= bit
		sc.act[p]++
	}
	return nil
}

// Compute scans partition p with the engine's shared triplet scan and
// combines messages into the partition-local accumulator.
func (sc *ShardCompute[V, M]) Compute(p int) (ComputeStats, error) {
	part, ok := sc.parts[p]
	if !ok {
		return ComputeStats{}, fmt.Errorf("pregel: shard compute: partition %d not owned here", p)
	}
	em := sc.emitters[p]
	nScan, nVisited, cost, mask := computePart(&sc.prog, sc.edgeCost, part, sc.verts, sc.vals[p], sc.fw[p], sc.act[p], sc.mask[p], em)
	sc.mask[p] = mask
	return ComputeStats{Scanned: nScan, Visited: nVisited, Emitted: em.emitted, Cost: cost}, nil
}

// Messages iterates partition p's combined messages in ascending local
// order — the order the reduce frame must preserve so the coordinator's
// per-destination merges match the local engine's.
func (sc *ShardCompute[V, M]) Messages(p int, fn func(local int32, m M)) {
	has := sc.msgHas[p]
	acc := sc.msgAcc[p]
	for l, ok := range has {
		if ok {
			fn(int32(l), acc[l])
		}
	}
}
