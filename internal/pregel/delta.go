package pregel

import (
	"fmt"
	"slices"

	"cutfit/internal/partition"
)

// ApplyDelta derives the partitioned topology of a grown graph from this
// already-built topology plus the appended edge suffix, without re-running
// the sort-heavy full build. a must be the (extended) assignment of the
// grown graph — its PID prefix must equal this topology's assignment
// bit-for-bit (verified; strategies whose prefix moved under growth, like
// Range, fail the check and the caller falls back to a full build). remap
// maps this topology's dense vertex indices to the grown graph's, as
// produced by graph.RemapVertices; nil means identity (every vertex added
// since sorts after the old maximum).
//
// The derived topology is structurally identical to what
// NewPartitionedGraphFromAssignment would build from scratch — same
// per-partition edge order (global edge order within each partition), same
// sorted LocalVerts tables, same routing CSR — so engine runs and derived
// metrics are bit-for-bit equal to the full rebuild. The receiver is only
// read, never mutated: in-flight runs on the old topology are unaffected,
// and the two topologies share no mutable state (the new one starts with
// empty scratch pools).
//
// Cost: O(|E|) straight copies and merges plus O(|delta| log |delta|)
// sorting of the suffix endpoints — no per-partition endpoint re-sort, no
// strategy pass, no hash-map rebuild.
func (pg *PartitionedGraph) ApplyDelta(a *partition.Assignment, remap []int32) (*PartitionedGraph, error) {
	if a.NumParts != pg.NumParts {
		return nil, fmt.Errorf("pregel: delta assignment targets %d partitions, topology has %d", a.NumParts, pg.NumParts)
	}
	oldLen := len(pg.assign)
	ne := len(a.PIDs)
	if ne < oldLen {
		return nil, fmt.Errorf("pregel: delta assignment covers %d edges, topology already has %d", ne, oldLen)
	}
	if a.G.NumEdges() != ne {
		return nil, fmt.Errorf("pregel: assignment has %d entries for %d edges", ne, a.G.NumEdges())
	}
	// Extend marks suffix-stable extensions; only unmarked assignments
	// (hand-built, or fully recomputed by a non-stable strategy like
	// Range) pay the defensive O(oldLen) prefix comparison.
	if ef, ok := a.ExtendedFrom(); !ok || ef > oldLen {
		if !slices.Equal(pg.assign, a.PIDs[:oldLen]) {
			return nil, fmt.Errorf("pregel: assignment prefix differs from built topology (strategy not suffix-stable)")
		}
	}
	numParts := pg.NumParts
	// Dense endpoint indices of just the suffix, by binary search on the
	// grown vertex list — O(|delta| log |V|), without forcing the grown
	// graph's full per-edge endpoint view.
	verts := a.G.Vertices()
	sufEdges := a.G.Edges()[oldLen:]
	sufSrc := make([]int32, len(sufEdges))
	sufDst := make([]int32, len(sufEdges))
	for i, e := range sufEdges {
		si, _ := slices.BinarySearch(verts, e.Src)
		di, _ := slices.BinarySearch(verts, e.Dst)
		sufSrc[i], sufDst[i] = int32(si), int32(di)
	}

	// Per-partition span sizes: old counts from the built partitions, delta
	// counts from the suffix (already range-validated by the Assignment).
	oldCounts := make([]int64, numParts)
	for p, part := range pg.Parts {
		oldCounts[p] = int64(len(part.edges))
	}
	newCounts := make([]int64, numParts)
	for _, p := range a.PIDs[oldLen:] {
		newCounts[p]++
	}
	partStart := make([]int64, numParts+1)
	for p := 0; p < numParts; p++ {
		partStart[p+1] = partStart[p] + oldCounts[p] + newCounts[p]
	}

	// Stage the suffix: scatter the new edges — with their *grown-graph*
	// dense endpoint indices — into the tail of each partition's span, in
	// global edge order (sequential pass, per-partition cursors).
	edgeBuf := make([]localEdge, ne)
	cursors := make([]int64, numParts)
	for p := 0; p < numParts; p++ {
		cursors[p] = partStart[p] + oldCounts[p]
	}
	for i := oldLen; i < ne; i++ {
		p := a.PIDs[i]
		edgeBuf[cursors[p]] = localEdge{src: sufSrc[i-oldLen], dst: sufDst[i-oldLen]}
		cursors[p]++
	}

	npg := &PartitionedGraph{
		G:            a.G,
		NumParts:     numParts,
		assign:       a.PIDs,
		Parallelism:  pg.Parallelism,
		ReuseBuffers: pg.ReuseBuffers,
	}
	parts := make([]*Partition, numParts)
	npg.Parts = parts
	err := pg.forEachPart(func(p int) {
		old := pg.Parts[p]
		span := edgeBuf[partStart[p]:partStart[p+1]:partStart[p+1]]
		parts[p] = &Partition{LocalVerts: patchPartition(old, span, remap), edges: span}
	})
	if err != nil {
		return nil, err
	}
	npg.buildRouting()
	return npg, nil
}

// patchPartition derives one partition of the grown topology and returns
// its new LocalVerts table:
//
//  1. the old LocalVerts table is remapped to grown-graph dense indices
//     (remapping is monotone, so the table stays sorted);
//  2. suffix endpoints not yet mirrored in the partition are merge-inserted,
//     keeping the table sorted and deduplicated — exactly the table the
//     full rebuild's sort+dedup would produce;
//  3. the old edges are copied into the span head with their local indices
//     shifted by the number of new mirrors inserted before them;
//  4. the staged suffix edges (global indices) are rewritten in place to
//     local indices by binary search, as in the full build.
//
// It is called per partition on the worker pool; span is the partition's
// region of the new shared edge buffer, whose tail holds the staged suffix.
func patchPartition(old *Partition, span []localEdge, remap []int32) []int32 {
	merged, shift := mergedMirrors(old, span, remap)
	oldEdges := old.edges
	if shift == nil {
		copy(span, oldEdges)
	} else {
		for j, e := range oldEdges {
			span[j] = localEdge{src: e.src + shift[e.src], dst: e.dst + shift[e.dst]}
		}
	}
	for j := len(oldEdges); j < len(span); j++ {
		e := span[j] // staged: grown-graph dense indices
		src, _ := slices.BinarySearch(merged, e.src)
		dst, _ := slices.BinarySearch(merged, e.dst)
		span[j] = localEdge{src: int32(src), dst: int32(dst)}
	}
	return merged
}

// mergedMirrors computes the partition's new sorted mirror table and, when
// mirrors were inserted (not just appended), the per-old-local-index shift
// (shift[l] = number of new mirrors inserted before old entry l). A nil
// shift means old local indices are unchanged. The remap of the old table
// to grown-graph dense indices is fused into the merge/copy passes, so the
// only allocations are the outputs themselves.
func mergedMirrors(old *Partition, span []localEdge, remap []int32) (merged []int32, shift []int32) {
	lv := old.LocalVerts
	// at maps an old-table entry to grown-graph dense indexing. Remapping
	// is monotone, so the remapped view of lv is still sorted and can be
	// binary-searched through the transform without materializing it.
	at := func(i int) int32 {
		if remap == nil {
			return lv[i]
		}
		return remap[lv[i]]
	}
	contains := func(v int32) bool {
		lo, hi := 0, len(lv)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if at(mid) < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(lv) && at(lo) == v
	}
	// Collect suffix endpoints not already mirrored here.
	var fresh []int32
	for _, e := range span[len(old.edges):] {
		if !contains(e.src) {
			fresh = append(fresh, e.src)
		}
		if e.dst != e.src && !contains(e.dst) {
			fresh = append(fresh, e.dst)
		}
	}
	if len(fresh) == 0 {
		if remap == nil {
			// Nothing inserted, nothing remapped: share the old table.
			return old.LocalVerts, nil
		}
		merged = make([]int32, len(lv))
		for i := range lv {
			merged[i] = remap[lv[i]]
		}
		return merged, nil
	}
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	merged = make([]int32, len(lv)+len(fresh))
	// All-new mirrors append past the old maximum: no index shifts.
	if len(lv) == 0 || fresh[0] > at(len(lv)-1) {
		if remap == nil {
			copy(merged, lv)
		} else {
			for i := range lv {
				merged[i] = remap[lv[i]]
			}
		}
		copy(merged[len(lv):], fresh)
		return merged, nil
	}
	shift = make([]int32, len(lv))
	i, j, k := 0, 0, 0
	for i < len(lv) || j < len(fresh) {
		if j == len(fresh) || (i < len(lv) && at(i) < fresh[j]) {
			shift[i] = int32(j)
			merged[k] = at(i)
			i++
		} else {
			merged[k] = fresh[j]
			j++
		}
		k++
	}
	return merged, shift
}
