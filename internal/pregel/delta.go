package pregel

import (
	"fmt"
	"slices"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// ApplyDelta derives the partitioned topology of an advanced graph — grown
// by an appended edge suffix, shrunk by tombstoned retractions, or both in
// one SlideWindow step — from this already-built topology, without
// re-running the sort-heavy full build. a must be the (extended) assignment
// of the advanced graph — its PID prefix must equal this topology's
// assignment bit-for-bit (verified; strategies whose prefix moved under
// growth, like Range, fail the check and the caller falls back to a full
// build; so does a compacted generation, whose dense positions no longer
// align). remap maps this topology's dense vertex indices to the advanced
// graph's, as produced by graph.RemapVertices; nil means identity (every
// vertex added since sorts after the old maximum).
//
// Retractions are patched out by diffing the two generations' tombstone
// bitsets over the old dense span: a newly-dead edge is dropped from its
// partition's span, and mirrors left with no referencing edge are dropped
// from the LocalVerts table — exactly what the full rebuild over the live
// edge set produces.
//
// The derived topology is structurally identical to what
// NewPartitionedGraphFromAssignment would build from scratch — same
// per-partition edge order (global edge order within each partition), same
// sorted LocalVerts tables, same routing CSR — so engine runs and derived
// metrics are bit-for-bit equal to the full rebuild. The receiver is only
// read, never mutated: in-flight runs on the old topology are unaffected,
// and the two topologies share no mutable state (the new one starts with
// empty scratch pools).
//
// Cost: O(|E|) straight copies and merges plus O(|delta| log |delta|)
// sorting of the suffix endpoints — no per-partition endpoint re-sort, no
// strategy pass, no hash-map rebuild.
func (pg *PartitionedGraph) ApplyDelta(a *partition.Assignment, remap []int32) (*PartitionedGraph, error) {
	if a.NumParts != pg.NumParts {
		return nil, fmt.Errorf("pregel: delta assignment targets %d partitions, topology has %d", a.NumParts, pg.NumParts)
	}
	oldLen := len(pg.assign)
	ne := len(a.PIDs)
	if ne < oldLen {
		return nil, fmt.Errorf("pregel: delta assignment covers %d edges, topology already has %d", ne, oldLen)
	}
	if a.G.NumEdges() != ne {
		return nil, fmt.Errorf("pregel: assignment has %d entries for %d edges", ne, a.G.NumEdges())
	}
	// Extend marks suffix-stable extensions; only unmarked assignments
	// (hand-built, or fully recomputed by a non-stable strategy like
	// Range) pay the defensive O(oldLen) prefix comparison.
	if ef, ok := a.ExtendedFrom(); !ok || ef > oldLen {
		if !slices.Equal(pg.assign, a.PIDs[:oldLen]) {
			return nil, fmt.Errorf("pregel: assignment prefix differs from built topology (strategy not suffix-stable)")
		}
	}
	numParts := pg.NumParts
	// Dense endpoint indices of just the suffix, by binary search on the
	// grown vertex list — O(|delta| log |V|), without forcing the grown
	// graph's full per-edge endpoint view.
	verts := a.G.Vertices()
	sufEdges, _ := a.G.EdgeRange(oldLen, ne)
	sufSrc := make([]int32, len(sufEdges))
	sufDst := make([]int32, len(sufEdges))
	for i, e := range sufEdges {
		si, _ := slices.BinarySearch(verts, e.Src)
		di, _ := slices.BinarySearch(verts, e.Dst)
		sufSrc[i], sufDst[i] = int32(si), int32(di)
	}

	// Retractions this step introduced, as positions in each partition's old
	// (live) edge list; nil when the step retracted nothing.
	removed := retractionPositions(pg, a.G, oldLen)

	// Per-partition span sizes: old counts from the built partitions minus
	// this step's retractions, delta counts from the suffix (already
	// range-validated by the Assignment; appended edges are live, but skip
	// dead suffix slots defensively for hand-built generations).
	oldCounts := make([]int64, numParts)
	for p, part := range pg.Parts {
		oldCounts[p] = int64(len(part.edges))
		if removed != nil {
			oldCounts[p] -= int64(len(removed[p]))
		}
	}
	sufDead := a.G.NumDeadEdges()
	newCounts := make([]int64, numParts)
	for i := oldLen; i < ne; i++ {
		if sufDead != 0 && !a.G.EdgeAlive(i) {
			continue
		}
		newCounts[a.PIDs[i]]++
	}
	partStart := make([]int64, numParts+1)
	for p := 0; p < numParts; p++ {
		partStart[p+1] = partStart[p] + oldCounts[p] + newCounts[p]
	}

	// Stage the suffix: scatter the new edges — with their *grown-graph*
	// dense endpoint indices — into the tail of each partition's span, in
	// global edge order (sequential pass, per-partition cursors).
	edgeBuf := make([]localEdge, partStart[numParts])
	cursors := make([]int64, numParts)
	for p := 0; p < numParts; p++ {
		cursors[p] = partStart[p] + oldCounts[p]
	}
	for i := oldLen; i < ne; i++ {
		if sufDead != 0 && !a.G.EdgeAlive(i) {
			continue
		}
		p := a.PIDs[i]
		edgeBuf[cursors[p]] = localEdge{src: sufSrc[i-oldLen], dst: sufDst[i-oldLen]}
		cursors[p]++
	}

	npg := &PartitionedGraph{
		G:            a.G,
		NumParts:     numParts,
		assign:       a.PIDs,
		Parallelism:  pg.Parallelism,
		ReuseBuffers: pg.ReuseBuffers,
	}
	parts := make([]*Partition, numParts)
	npg.Parts = parts
	err := pg.forEachPart(func(p int) {
		old := pg.Parts[p]
		var rm []int32
		if removed != nil {
			rm = removed[p]
		}
		span := edgeBuf[partStart[p]:partStart[p+1]:partStart[p+1]]
		np := &Partition{LocalVerts: patchPartition(old, span, remap, rm), edges: span}
		// The frontier index is a pure function of the patched edge list, so
		// it is not patched: the fresh partition rebuilds it lazily on its
		// first sparse scan, like every other construction path.
		parts[p] = np
	})
	if err != nil {
		return nil, err
	}
	npg.buildRouting()
	return npg, nil
}

// retractionPositions diffs the tombstone bitsets of the built generation
// and the advanced one over the old dense span and returns, per partition,
// the ascending positions (in the old partition's live edge list) of the
// edges this step retracted. nil when nothing was retracted.
func retractionPositions(pg *PartitionedGraph, ng *graph.Graph, oldLen int) [][]int32 {
	newDead := ng.Tombstones()
	if len(newDead) == 0 {
		return nil
	}
	og := pg.G
	oldDead := og.Tombstones()
	// Quick reject: any bit newly dead within the old span?
	any := false
	for w := 0; w*64 < oldLen && w < len(newDead); w++ {
		var ow uint64
		if w < len(oldDead) {
			ow = oldDead[w]
		}
		diff := newDead[w] &^ ow
		if rem := oldLen - w*64; rem < 64 {
			diff &= 1<<uint(rem) - 1
		}
		if diff != 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	// One ascending pass tracks each partition's running position in its old
	// live edge list (the order the build scattered them in).
	removed := make([][]int32, pg.NumParts)
	pos := make([]int32, pg.NumParts)
	ogDead := og.NumDeadEdges()
	for i := 0; i < oldLen; i++ {
		if ogDead != 0 && !og.EdgeAlive(i) {
			continue
		}
		p := pg.assign[i]
		if !ng.EdgeAlive(i) {
			removed[p] = append(removed[p], pos[p])
		}
		pos[p]++
	}
	return removed
}

// patchPartition derives one partition of the advanced topology and returns
// its new LocalVerts table:
//
//  1. the old LocalVerts table is remapped to grown-graph dense indices
//     (remapping is monotone, so the table stays sorted);
//  2. suffix endpoints not yet mirrored in the partition are merge-inserted,
//     keeping the table sorted and deduplicated — exactly the table the
//     full rebuild's sort+dedup would produce;
//  3. the old edges are copied into the span head with their local indices
//     shifted by the number of new mirrors inserted before them;
//  4. the staged suffix edges (global indices) are rewritten in place to
//     local indices by binary search, as in the full build.
//
// removed lists the positions (ascending, in old.edges) of the edges this
// step retracted; a non-empty list takes the retraction path, which also
// drops mirrors left with no referencing edge. It is called per partition
// on the worker pool; span is the partition's region of the new shared edge
// buffer, whose tail holds the staged suffix.
func patchPartition(old *Partition, span []localEdge, remap, removed []int32) []int32 {
	if len(removed) != 0 {
		return patchPartitionRetract(old, span, remap, removed)
	}
	merged, shift := mergedMirrors(old, span, remap)
	oldEdges := old.edges
	if shift == nil {
		copy(span, oldEdges)
	} else {
		for j, e := range oldEdges {
			span[j] = localEdge{src: e.src + shift[e.src], dst: e.dst + shift[e.dst]}
		}
	}
	for j := len(oldEdges); j < len(span); j++ {
		e := span[j] // staged: grown-graph dense indices
		src, _ := slices.BinarySearch(merged, e.src)
		dst, _ := slices.BinarySearch(merged, e.dst)
		span[j] = localEdge{src: int32(src), dst: int32(dst)}
	}
	return merged
}

// patchPartitionRetract is the retraction path of patchPartition: drop the
// removed edge positions, drop mirrors no surviving or suffix edge
// references, merge-insert fresh suffix mirrors, and rewrite both edge
// halves to the merged table's local indices. Everything is O(part size)
// scans plus sorting only the (small) fresh mirror set — no per-partition
// endpoint re-sort — and the resulting table is exactly what the full
// rebuild's sort+dedup over the surviving edges produces.
func patchPartitionRetract(old *Partition, span []localEdge, remap, removed []int32) []int32 {
	lv := old.LocalVerts
	at := func(i int32) int32 {
		if remap == nil {
			return lv[i]
		}
		return remap[lv[i]]
	}
	// find locates an advanced-graph dense index in the remapped view of the
	// old table (monotone remap keeps it sorted) without materializing it.
	find := func(v int32) (int32, bool) {
		lo, hi := int32(0), int32(len(lv))
		for lo < hi {
			mid := int32(uint32(lo+hi) >> 1)
			if at(mid) < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < int32(len(lv)) && at(lo) == v {
			return lo, true
		}
		return 0, false
	}
	nOldSurvive := len(old.edges) - len(removed)
	// Mirrors referenced by surviving old edges.
	ref := make([]bool, len(lv))
	ri := 0
	for j, e := range old.edges {
		if ri < len(removed) && int32(j) == removed[ri] {
			ri++
			continue
		}
		ref[e.src] = true
		ref[e.dst] = true
	}
	// Suffix endpoints: an existing mirror is kept alive, an unknown one is
	// a fresh mirror to insert.
	var fresh []int32
	for _, e := range span[nOldSurvive:] {
		if l, ok := find(e.src); ok {
			ref[l] = true
		} else {
			fresh = append(fresh, e.src)
		}
		if e.dst != e.src {
			if l, ok := find(e.dst); ok {
				ref[l] = true
			} else {
				fresh = append(fresh, e.dst)
			}
		}
	}
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	// Merge referenced old mirrors with the fresh ones; both runs are sorted
	// and disjoint. shift[l] is old local l's index in the merged table (only
	// read for referenced mirrors).
	nRef := 0
	for _, r := range ref {
		if r {
			nRef++
		}
	}
	if nRef+len(fresh) == 0 {
		return nil
	}
	merged := make([]int32, 0, nRef+len(fresh))
	shift := make([]int32, len(lv))
	i, j := int32(0), 0
	for int(i) < len(lv) || j < len(fresh) {
		if j == len(fresh) || (int(i) < len(lv) && at(i) < fresh[j]) {
			if ref[i] {
				shift[i] = int32(len(merged))
				merged = append(merged, at(i))
			}
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	// Surviving old edges compact into the span head with rewritten locals.
	ri, w := 0, 0
	for j2, e := range old.edges {
		if ri < len(removed) && int32(j2) == removed[ri] {
			ri++
			continue
		}
		span[w] = localEdge{src: shift[e.src], dst: shift[e.dst]}
		w++
	}
	// Staged suffix edges rewrite to locals by binary search, as in the full
	// build.
	for j2 := nOldSurvive; j2 < len(span); j2++ {
		e := span[j2]
		src, _ := slices.BinarySearch(merged, e.src)
		dst, _ := slices.BinarySearch(merged, e.dst)
		span[j2] = localEdge{src: int32(src), dst: int32(dst)}
	}
	return merged
}

// mergedMirrors computes the partition's new sorted mirror table and, when
// mirrors were inserted (not just appended), the per-old-local-index shift
// (shift[l] = number of new mirrors inserted before old entry l). A nil
// shift means old local indices are unchanged. The remap of the old table
// to grown-graph dense indices is fused into the merge/copy passes, so the
// only allocations are the outputs themselves.
func mergedMirrors(old *Partition, span []localEdge, remap []int32) (merged []int32, shift []int32) {
	lv := old.LocalVerts
	// at maps an old-table entry to grown-graph dense indexing. Remapping
	// is monotone, so the remapped view of lv is still sorted and can be
	// binary-searched through the transform without materializing it.
	at := func(i int) int32 {
		if remap == nil {
			return lv[i]
		}
		return remap[lv[i]]
	}
	contains := func(v int32) bool {
		lo, hi := 0, len(lv)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if at(mid) < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(lv) && at(lo) == v
	}
	// Collect suffix endpoints not already mirrored here.
	var fresh []int32
	for _, e := range span[len(old.edges):] {
		if !contains(e.src) {
			fresh = append(fresh, e.src)
		}
		if e.dst != e.src && !contains(e.dst) {
			fresh = append(fresh, e.dst)
		}
	}
	if len(fresh) == 0 {
		if remap == nil {
			// Nothing inserted, nothing remapped: share the old table.
			return old.LocalVerts, nil
		}
		merged = make([]int32, len(lv))
		for i := range lv {
			merged[i] = remap[lv[i]]
		}
		return merged, nil
	}
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	merged = make([]int32, len(lv)+len(fresh))
	// All-new mirrors append past the old maximum: no index shifts.
	if len(lv) == 0 || fresh[0] > at(len(lv)-1) {
		if remap == nil {
			copy(merged, lv)
		} else {
			for i := range lv {
				merged[i] = remap[lv[i]]
			}
		}
		copy(merged[len(lv):], fresh)
		return merged, nil
	}
	shift = make([]int32, len(lv))
	i, j, k := 0, 0, 0
	for i < len(lv) || j < len(fresh) {
		if j == len(fresh) || (i < len(lv) && at(i) < fresh[j]) {
			shift[i] = int32(j)
			merged[k] = at(i)
			i++
		} else {
			merged[k] = fresh[j]
			j++
		}
		k++
	}
	return merged, shift
}
