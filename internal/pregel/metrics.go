package pregel

import (
	"cutfit/internal/graph"
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
)

// NewPartitionedGraphFromAssignment builds the partitioned representation
// from a validated Assignment artifact — the engine end of the
// strategy → metrics → engine pipeline. The assignment's PID slice is used
// directly; no re-partitioning or re-validation pass runs beyond the
// build's own sharded count.
func NewPartitionedGraphFromAssignment(a *partition.Assignment, opts BuildOptions) (*PartitionedGraph, error) {
	return NewPartitionedGraphOpts(a.G, a.PIDs, a.NumParts, opts)
}

// Metrics derives the full §3.1 metric set from the already-built
// partitioned topology. The per-partition edge lists, local vertex tables
// and the mirror routing CSR encode everything the metrics package would
// otherwise recompute with a per-vertex replica-bitset scan over all edges
// (O(|E| + |V|·numParts/64)); here the same numbers fall out of the
// structure in O(|V| + numParts):
//
//   - EdgesPerPart / VerticesPerPart are the partition sizes;
//   - a vertex's replica count is its mirror-routing span, giving
//     NonCut, Cut and CommCost directly;
//   - the derived fields (Balance, PartStDev, MaxEdges, MaxVertices,
//     ReplicationFactor) come from metrics.Finalize, the same code every
//     other Result producer uses, so results are bit-for-bit identical to
//     metrics.Compute on the originating assignment.
//
// Any path that builds the topology anyway (run-after-measure, the bench
// grid) should read metrics here instead of calling metrics.Compute.
//
// On a weighted graph one extra O(|E|) pass over the retained assignment
// accumulates the weighted counterparts (WeightPerPart, WeightedCommCost) in
// the same ascending-edge order metrics.FromAssignment uses, so the float
// sums are bit-for-bit identical too.
func (pg *PartitionedGraph) Metrics() *metrics.Result {
	numParts := pg.NumParts
	res := &metrics.Result{
		NumParts:        numParts,
		EdgesPerPart:    make([]int64, numParts),
		VerticesPerPart: make([]int64, numParts),
	}
	for p, part := range pg.Parts {
		res.EdgesPerPart[p] = int64(part.NumEdges())
		res.VerticesPerPart[p] = int64(part.NumLocalVertices())
	}
	nv := pg.G.NumVertices()
	var wdeg []float64
	if g := pg.G; g.Weighted() {
		numDead := g.NumDeadEdges()
		res.WeightPerPart = make([]float64, numParts)
		wdeg = make([]float64, nv)
		// Block at a time with batch endpoint lookup: same ascending edge
		// order as the dense loop (so the float sums stay bit-identical)
		// without materializing the O(E) weight and index slices.
		var sidx, didx []int32
		if err := g.ForEachEdgeBlock(func(start int, edges []graph.Edge, weights []float64) error {
			if cap(sidx) < len(edges) {
				sidx = make([]int32, len(edges))
				didx = make([]int32, len(edges))
			}
			sidx, didx = sidx[:len(edges)], didx[:len(edges)]
			g.LookupIndices(edges, sidx, didx)
			for j := range edges {
				i := start + j
				if numDead != 0 && !g.EdgeAlive(i) {
					continue
				}
				wt := weights[j]
				res.WeightPerPart[pg.assign[i]] += wt
				wdeg[sidx[j]] += wt
				wdeg[didx[j]] += wt
			}
			return nil
		}); err != nil {
			panic("pregel: block decode failed: " + err.Error())
		}
	}
	for v := 0; v < nv; v++ {
		replicas := pg.routingOffsets[v+1] - pg.routingOffsets[v]
		switch {
		case replicas == 1:
			res.NonCut++
		case replicas > 1:
			res.Cut++
			res.CommCost += replicas
			if wdeg != nil {
				res.WeightedCommCost += float64(replicas) * wdeg[v]
			}
		}
	}
	res.Finalize(nv)
	return res
}
