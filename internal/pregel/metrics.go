package pregel

import (
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
)

// NewPartitionedGraphFromAssignment builds the partitioned representation
// from a validated Assignment artifact — the engine end of the
// strategy → metrics → engine pipeline. The assignment's PID slice is used
// directly; no re-partitioning or re-validation pass runs beyond the
// build's own sharded count.
func NewPartitionedGraphFromAssignment(a *partition.Assignment, opts BuildOptions) (*PartitionedGraph, error) {
	return NewPartitionedGraphOpts(a.G, a.PIDs, a.NumParts, opts)
}

// Metrics derives the full §3.1 metric set from the already-built
// partitioned topology. The per-partition edge lists, local vertex tables
// and the mirror routing CSR encode everything the metrics package would
// otherwise recompute with a per-vertex replica-bitset scan over all edges
// (O(|E| + |V|·numParts/64)); here the same numbers fall out of the
// structure in O(|V| + numParts):
//
//   - EdgesPerPart / VerticesPerPart are the partition sizes;
//   - a vertex's replica count is its mirror-routing span, giving
//     NonCut, Cut and CommCost directly;
//   - the derived fields (Balance, PartStDev, MaxEdges, MaxVertices,
//     ReplicationFactor) come from metrics.Finalize, the same code every
//     other Result producer uses, so results are bit-for-bit identical to
//     metrics.Compute on the originating assignment.
//
// Any path that builds the topology anyway (run-after-measure, the bench
// grid) should read metrics here instead of calling metrics.Compute.
func (pg *PartitionedGraph) Metrics() *metrics.Result {
	numParts := pg.NumParts
	res := &metrics.Result{
		NumParts:        numParts,
		EdgesPerPart:    make([]int64, numParts),
		VerticesPerPart: make([]int64, numParts),
	}
	for p, part := range pg.Parts {
		res.EdgesPerPart[p] = int64(part.NumEdges())
		res.VerticesPerPart[p] = int64(part.NumLocalVertices())
	}
	nv := pg.G.NumVertices()
	for v := 0; v < nv; v++ {
		replicas := pg.routingOffsets[v+1] - pg.routingOffsets[v]
		switch {
		case replicas == 1:
			res.NonCut++
		case replicas > 1:
			res.Cut++
			res.CommCost += replicas
		}
	}
	res.Finalize(nv)
	return res
}
