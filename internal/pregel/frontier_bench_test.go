package pregel

import (
	"context"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// hotStride spaces the steady-state frontier of the sparse benchmark:
// vertices with id%hotStride == 0 ("hot" vertices) re-activate every
// superstep, ≈0.5% of the graph — far below the 12.5% ScanAuto threshold.
const hotStride = 199

// sparseFrontierTopology builds the benchmark graph: a uniform random
// background (whose edges go quiet after superstep 1) plus a ring over the
// hot vertices, so every hot vertex receives a message from its ring
// predecessor each superstep and the frontier stays pinned at the hot set.
func sparseFrontierTopology(tb testing.TB, nv, ne int) *PartitionedGraph {
	tb.Helper()
	edges := deltaEdges(71, nv, ne)
	var hot []graph.VertexID
	for v := 0; v < nv; v += hotStride {
		hot = append(hot, graph.VertexID(v))
	}
	for i, v := range hot {
		edges = append(edges, graph.Edge{Src: v, Dst: hot[(i+1)%len(hot)]})
	}
	g := graph.FromEdges(edges)
	a, err := partition.Assign(g, partition.EdgePartition2D(), 8)
	if err != nil {
		tb.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	pg.ReuseBuffers = true
	return pg
}

// hotRingProgram keeps exactly the hot vertices on the frontier: only
// hot→hot edges (the ring) ever emit, so after the fully-active superstep 1
// every later superstep runs with <1% of vertices active.
func hotRingProgram(policy ScanPolicy, supersteps int) Program[int64, int64] {
	return Program[int64, int64]{
		Init:  func(id graph.VertexID) int64 { return int64(id) },
		VProg: func(_ graph.VertexID, val, msg int64) int64 { return val + msg },
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			if t.SrcID%hotStride == 0 && t.DstID%hotStride == 0 {
				emit.ToDst(1)
			}
		},
		MergeMsg:        func(a, b int64) int64 { return a + b },
		MaxIterations:   supersteps,
		ActiveDirection: Out,
		ScanPolicy:      policy,
	}
}

// BenchmarkSparseFrontier measures the payoff of the frontier-index scan on
// a steady-state workload whose frontier is <1% of the graph: 40 supersteps
// of the hot-ring program under each policy. The acceptance bar is
// sparse ≥ 3× faster than dense at this density (compare medians across
// -count=10 runs); auto should track sparse after its one dense superstep.
// The allEdges variant runs a PageRank-shaped always-active program over
// the same topology — the unconditional scan the dense fallback must stay
// within 5% of.
func BenchmarkSparseFrontier(b *testing.B) {
	// ~50 edges per vertex: the dense scan's per-edge activity tests must
	// dominate the per-superstep O(vertices) phases for the comparison to
	// isolate the scan paths.
	const nv, ne, steps = 8000, 400000, 40
	pg := sparseFrontierTopology(b, nv, ne)
	ctx := context.Background()
	for _, bc := range []struct {
		name   string
		policy ScanPolicy
	}{
		{"dense", ScanDense},
		{"sparse", ScanSparse},
		{"auto", ScanAuto},
	} {
		b.Run(bc.name, func(b *testing.B) {
			prog := hotRingProgram(bc.policy, steps)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Run(ctx, pg, prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("allEdges", func(b *testing.B) {
		prog := Program[float64, float64]{
			Init:  func(id graph.VertexID) float64 { return 1 },
			VProg: func(_ graph.VertexID, val, msg float64) float64 { return 0.15 + 0.85*msg },
			SendMsg: func(t *Triplet[float64], emit Emitter[float64]) {
				emit.ToDst(t.SrcVal * 0.1)
			},
			MergeMsg:        func(a, b float64) float64 { return a + b },
			MaxIterations:   steps,
			ActiveDirection: AllEdges,
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Run(ctx, pg, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestSparseFrontierBenchmarkFrontier pins the benchmark's premise: the
// hot-ring program really does run its steady state on <1% of vertices, so
// the dense/sparse comparison measures what it claims to.
func TestSparseFrontierBenchmarkFrontier(t *testing.T) {
	const nv, ne, steps = 4000, 24000, 10
	pg := sparseFrontierTopology(t, nv, ne)
	_, stats, err := Run(context.Background(), pg, hotRingProgram(ScanAuto, steps))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Supersteps) < steps {
		t.Fatalf("hot ring died out after %d supersteps, want %d", len(stats.Supersteps), steps)
	}
	hot := int64((nv + hotStride - 1) / hotStride)
	for i, ss := range stats.Supersteps[1:] {
		if ss.ActiveVertices > hot {
			t.Fatalf("superstep %d: %d active vertices, want ≤ %d hot", i+2, ss.ActiveVertices, hot)
		}
	}
}
