package pregel

import (
	"fmt"
	"slices"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// checkEquivalent compares two partitioned representations structurally:
// same partitions, same local vertex tables, same local edges in the same
// order, same mirror routing.
func checkEquivalent(a, b *PartitionedGraph) error {
	if a.NumParts != b.NumParts {
		return fmt.Errorf("NumParts %d != %d", a.NumParts, b.NumParts)
	}
	for p := range a.Parts {
		pa, pb := a.Parts[p], b.Parts[p]
		if len(pa.LocalVerts) != len(pb.LocalVerts) {
			return fmt.Errorf("partition %d: %d local verts != %d", p, len(pa.LocalVerts), len(pb.LocalVerts))
		}
		for l := range pa.LocalVerts {
			if pa.LocalVerts[l] != pb.LocalVerts[l] {
				return fmt.Errorf("partition %d: LocalVerts[%d] %d != %d", p, l, pa.LocalVerts[l], pb.LocalVerts[l])
			}
		}
		if pa.NumEdges() != pb.NumEdges() {
			return fmt.Errorf("partition %d: %d edges != %d", p, pa.NumEdges(), pb.NumEdges())
		}
		for j := range pa.edges {
			if pa.edges[j] != pb.edges[j] {
				return fmt.Errorf("partition %d: edge %d %v != %v", p, j, pa.edges[j], pb.edges[j])
			}
		}
		// The frontier index is derived lazily on every construction path
		// (full build, hash-map oracle, delta patch, snapshot restore);
		// forcing both builds here proves equivalent topologies derive
		// identical indexes.
		pa.ensureFrontierIndex()
		pb.ensureFrontierIndex()
		if !slices.Equal(pa.srcOff, pb.srcOff) || !slices.Equal(pa.srcPos, pb.srcPos) {
			return fmt.Errorf("partition %d: source frontier index differs", p)
		}
		if !slices.Equal(pa.dstOff, pb.dstOff) || !slices.Equal(pa.dstPos, pb.dstPos) {
			return fmt.Errorf("partition %d: destination frontier index differs", p)
		}
	}
	if len(a.routingRefs) != len(b.routingRefs) {
		return fmt.Errorf("routing refs %d != %d", len(a.routingRefs), len(b.routingRefs))
	}
	for i := range a.routingRefs {
		if a.routingRefs[i] != b.routingRefs[i] {
			return fmt.Errorf("routing ref %d: %v != %v", i, a.routingRefs[i], b.routingRefs[i])
		}
	}
	for i := range a.routingOffsets {
		if a.routingOffsets[i] != b.routingOffsets[i] {
			return fmt.Errorf("routing offset %d: %d != %d", i, a.routingOffsets[i], b.routingOffsets[i])
		}
	}
	return nil
}

// TestSortScatterMatchesMapsBuild proves the sort/scatter construction is
// bit-for-bit equivalent to the original hash-map construction across
// strategies, partition counts and worker counts.
func TestSortScatterMatchesMapsBuild(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		g := randomGraph(seed, 80, 600)
		for _, s := range partition.Extended() {
			for _, numParts := range []int{1, 5, 32} {
				assign, err := s.Partition(g, numParts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := newPartitionedGraphMaps(g, assign, numParts)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 4} {
					got, err := NewPartitionedGraphOpts(g, assign, numParts, BuildOptions{Parallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					if err := checkEquivalent(want, got); err != nil {
						t.Fatalf("seed %d strategy %s parts %d par %d: %v", seed, s.Name(), numParts, par, err)
					}
				}
			}
		}
	}
}

// TestSortScatterRejectsBadInput mirrors the error contract of the
// original construction.
func TestSortScatterRejectsBadInput(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if _, err := NewPartitionedGraphOpts(g, []partition.PID{0, 5}, 2, BuildOptions{}); err == nil {
		t.Error("out-of-range PID in second shard should error")
	}
	if _, err := NewPartitionedGraphOpts(g, []partition.PID{-1, 0}, 2, BuildOptions{Parallelism: 8}); err == nil {
		t.Error("negative PID should error")
	}
}
