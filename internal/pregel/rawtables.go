package pregel

import (
	"fmt"

	"cutfit/internal/graph"
	"cutfit/internal/par"
	"cutfit/internal/partition"
)

// RawTables is the flat, persistable form of a PartitionedGraph: the dense
// arrays the build produces, with nothing derived and nothing pointer-shaped.
// The snapshot codec (internal/snap) writes these tables verbatim, so a
// restore is one big read plus FromRawTables' validation pass — no strategy
// pass, no sort, no dedup.
type RawTables struct {
	// NumParts is the partition count.
	NumParts int
	// Assign is the per-global-edge partition assignment (AssignOrder).
	Assign []partition.PID
	// PartStart delimits each partition's span in the scattered edge
	// arrays: partition p's edges are indices [PartStart[p], PartStart[p+1]).
	// len == NumParts+1, PartStart[NumParts] == len(EdgeSrc).
	PartStart []int64
	// EdgeSrc/EdgeDst are the partition-local endpoint indices of every
	// scattered edge, aligned with each other.
	EdgeSrc, EdgeDst []int32
	// LocalVertsOffsets delimits each partition's mirror table in
	// LocalVerts; len == NumParts+1.
	LocalVertsOffsets []int64
	// LocalVerts is the concatenation of every partition's sorted mirror
	// table (global dense vertex indices).
	LocalVerts []int32
	// RoutingOffsets/RoutingParts/RoutingLocals form the mirror routing CSR
	// over global dense vertex indices: mirrors of vertex v are the
	// (RoutingParts[j], RoutingLocals[j]) pairs for j in
	// [RoutingOffsets[v], RoutingOffsets[v+1]). The routing CSR is a pure
	// function of the mirror tables; FromRawTables accepts a nil
	// RoutingOffsets and derives it (the snapshot codec never persists it).
	RoutingOffsets []int64
	RoutingParts   []int32
	RoutingLocals  []int32
}

// RawTables flattens the partitioned topology into its persistable form.
// All slices are freshly allocated; mutating them never touches pg.
func (pg *PartitionedGraph) RawTables() RawTables {
	rt := RawTables{
		NumParts:          pg.NumParts,
		Assign:            append([]partition.PID(nil), pg.assign...),
		PartStart:         make([]int64, pg.NumParts+1),
		LocalVertsOffsets: make([]int64, pg.NumParts+1),
		RoutingOffsets:    append([]int64(nil), pg.routingOffsets...),
		RoutingParts:      make([]int32, len(pg.routingRefs)),
		RoutingLocals:     make([]int32, len(pg.routingRefs)),
	}
	var ne, nlv int64
	for p, part := range pg.Parts {
		ne += int64(len(part.edges))
		nlv += int64(len(part.LocalVerts))
		rt.PartStart[p+1] = ne
		rt.LocalVertsOffsets[p+1] = nlv
	}
	rt.EdgeSrc = make([]int32, ne)
	rt.EdgeDst = make([]int32, ne)
	rt.LocalVerts = make([]int32, nlv)
	for p, part := range pg.Parts {
		base := rt.PartStart[p]
		for j, e := range part.edges {
			rt.EdgeSrc[base+int64(j)] = e.src
			rt.EdgeDst[base+int64(j)] = e.dst
		}
		copy(rt.LocalVerts[rt.LocalVertsOffsets[p]:], part.LocalVerts)
	}
	for j, ref := range pg.routingRefs {
		rt.RoutingParts[j] = ref.part
		rt.RoutingLocals[j] = ref.local
	}
	return rt
}

// FromRawTables assembles a PartitionedGraph for g from its persisted
// tables, validating every structural invariant first: PID ranges and
// per-partition counts against PartStart, offset monotonicity of all three
// CSR-shaped tables, sorted deduplicated mirror tables with in-range global
// indices, in-range local edge endpoints, and a routing table that is an
// exact bijection onto the mirror slots (each ref resolves to a LocalVerts
// slot holding exactly its vertex, in ascending partition order). Corrupt
// or forged tables therefore fail loudly instead of producing a
// wrong-but-plausible topology. The tables are retained (not copied);
// callers must hand over ownership.
func FromRawTables(g *graph.Graph, rt RawTables, opts BuildOptions) (*PartitionedGraph, error) {
	numParts := rt.NumParts
	if numParts <= 0 {
		return nil, fmt.Errorf("pregel: restored numParts must be positive, got %d", numParts)
	}
	ne := g.NumEdges()
	if len(rt.Assign) != ne {
		return nil, fmt.Errorf("pregel: restored assignment has %d entries for %d edges", len(rt.Assign), ne)
	}
	// The scattered edge tables hold live edges only; the assignment stays
	// dense-aligned with tombstoned slots included.
	numDead := g.NumDeadEdges()
	live := g.NumLiveEdges()
	if len(rt.EdgeSrc) != live || len(rt.EdgeDst) != live {
		return nil, fmt.Errorf("pregel: restored edge tables have %d/%d entries for %d live edges", len(rt.EdgeSrc), len(rt.EdgeDst), live)
	}
	if err := checkOffsets("PartStart", rt.PartStart, numParts, int64(live)); err != nil {
		return nil, err
	}
	if err := checkOffsets("LocalVertsOffsets", rt.LocalVertsOffsets, numParts, int64(len(rt.LocalVerts))); err != nil {
		return nil, err
	}
	// Per-partition live edge counts must match the assignment exactly (this
	// also validates every PID's range, including tombstoned slots).
	counts := make([]int64, numParts)
	for i, p := range rt.Assign {
		// One unsigned compare covers both negative and too-large PIDs.
		if uint32(p) >= uint32(numParts) {
			return nil, fmt.Errorf("pregel: restored edge %d assigned to out-of-range partition %d", i, p)
		}
		if numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		counts[p]++
	}
	for p := 0; p < numParts; p++ {
		if counts[p] != rt.PartStart[p+1]-rt.PartStart[p] {
			return nil, fmt.Errorf("pregel: partition %d holds %d edges but assignment counts %d", p, rt.PartStart[p+1]-rt.PartStart[p], counts[p])
		}
	}
	nv := g.NumVertices()
	// Mirror tables: sorted, deduplicated, in range. The localized edge
	// range check below is fused with the edge-buffer build — every element
	// is touched exactly once.
	for p := 0; p < numParts; p++ {
		lv := rt.LocalVerts[rt.LocalVertsOffsets[p]:rt.LocalVertsOffsets[p+1]]
		if len(lv) == 0 {
			continue
		}
		// Strict ascent plus in-range endpoints proves every slot in range.
		if lv[0] < 0 || int(lv[len(lv)-1]) >= nv {
			return nil, fmt.Errorf("pregel: partition %d mirror table spans [%d, %d], graph has %d vertices", p, lv[0], lv[len(lv)-1], nv)
		}
		for j := 1; j < len(lv); j++ {
			if lv[j-1] >= lv[j] {
				return nil, fmt.Errorf("pregel: partition %d mirror table not strictly ascending at slot %d", p, j)
			}
		}
	}
	// Routing CSR pre-checks (only when one was supplied: a nil
	// RoutingOffsets means "derive from the mirror tables" below). The
	// per-ref checks are fused with the routing-table build.
	if rt.RoutingOffsets != nil {
		if err := checkOffsets("RoutingOffsets", rt.RoutingOffsets, nv, int64(len(rt.RoutingParts))); err != nil {
			return nil, err
		}
		if len(rt.RoutingParts) != len(rt.RoutingLocals) {
			return nil, fmt.Errorf("pregel: routing tables disagree: %d parts, %d locals", len(rt.RoutingParts), len(rt.RoutingLocals))
		}
		if int64(len(rt.RoutingParts)) != int64(len(rt.LocalVerts)) {
			return nil, fmt.Errorf("pregel: %d routing refs for %d mirror slots", len(rt.RoutingParts), len(rt.LocalVerts))
		}
	}

	workers := opts.Parallelism
	if workers < 1 {
		workers = par.DefaultParallelism()
	}
	pg := &PartitionedGraph{
		G:            g,
		NumParts:     numParts,
		Parts:        make([]*Partition, numParts),
		assign:       rt.Assign,
		Parallelism:  workers,
		ReuseBuffers: opts.ReuseBuffers,
	}
	// Assemble the edge buffer, validating each localized endpoint against
	// its partition's mirror-table size in the same pass.
	edgeBuf := make([]localEdge, live)
	for p := 0; p < numParts; p++ {
		lo, hi := rt.LocalVertsOffsets[p], rt.LocalVertsOffsets[p+1]
		n := int32(hi - lo)
		for i := rt.PartStart[p]; i < rt.PartStart[p+1]; i++ {
			s, d := rt.EdgeSrc[i], rt.EdgeDst[i]
			if uint32(s) >= uint32(n) || uint32(d) >= uint32(n) {
				return nil, fmt.Errorf("pregel: partition %d edge %d references local vertex outside its %d-slot mirror table", p, i-rt.PartStart[p], n)
			}
			edgeBuf[i] = localEdge{src: s, dst: d}
		}
		pg.Parts[p] = &Partition{
			LocalVerts: rt.LocalVerts[lo:hi:hi],
			edges:      edgeBuf[rt.PartStart[p]:rt.PartStart[p+1]:rt.PartStart[p+1]],
		}
	}
	// The frontier index, like the routing CSR below, is derived rather
	// than persisted: it is a pure function of the (validated) edge tables,
	// built lazily by the first sparse scan that needs it.
	// No routing supplied: derive it from the (already validated) mirror
	// tables — cheaper than validating a persisted copy, and correct by
	// construction.
	if rt.RoutingOffsets == nil {
		pg.buildRouting()
		return pg, nil
	}
	// Assemble the supplied routing table, proving in the same pass that it
	// is an exact bijection onto the mirror slots: within each vertex's
	// span the partitions ascend strictly, and every ref resolves to a
	// LocalVerts slot holding exactly that vertex (with equal totals, that
	// forces a bijection).
	refs := make([]mirrorRef, len(rt.RoutingParts))
	for v := 0; v < nv; v++ {
		prev := int32(-1)
		for j := rt.RoutingOffsets[v]; j < rt.RoutingOffsets[v+1]; j++ {
			p, l := rt.RoutingParts[j], rt.RoutingLocals[j]
			if p <= prev {
				return nil, fmt.Errorf("pregel: vertex %d routing refs not strictly ascending by partition", v)
			}
			prev = p
			if int(p) >= numParts {
				return nil, fmt.Errorf("pregel: vertex %d routed to out-of-range partition %d", v, p)
			}
			lo, hi := rt.LocalVertsOffsets[p], rt.LocalVertsOffsets[p+1]
			if l < 0 || int64(l) >= hi-lo {
				return nil, fmt.Errorf("pregel: vertex %d routed to out-of-range mirror slot %d of partition %d", v, l, p)
			}
			if rt.LocalVerts[lo+int64(l)] != int32(v) {
				return nil, fmt.Errorf("pregel: vertex %d routing ref resolves to mirror of vertex %d", v, rt.LocalVerts[lo+int64(l)])
			}
			refs[j] = mirrorRef{part: p, local: l}
		}
	}
	pg.routingOffsets = rt.RoutingOffsets
	pg.routingRefs = refs
	return pg, nil
}

// checkOffsets validates a CSR offset table: n+1 entries, starting at 0,
// non-decreasing, ending at total.
func checkOffsets(name string, offsets []int64, n int, total int64) error {
	if len(offsets) != n+1 {
		return fmt.Errorf("pregel: restored %s has %d entries, want %d", name, len(offsets), n+1)
	}
	if offsets[0] != 0 {
		return fmt.Errorf("pregel: restored %s does not start at 0", name)
	}
	for i := 0; i < n; i++ {
		if offsets[i+1] < offsets[i] {
			return fmt.Errorf("pregel: restored %s decreases at entry %d", name, i+1)
		}
	}
	if offsets[n] != total {
		return fmt.Errorf("pregel: restored %s ends at %d, want %d", name, offsets[n], total)
	}
	return nil
}
