package pregel

// Frontier-equivalence suite: the sparse (frontier-index) compute path, the
// dense scan and every ScanAuto mix of the two must produce bit-identical
// results at every parallelism — including order-sensitive float64 merges —
// across strategies, graph families and grown/shrunk topology generations.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cutfit/internal/gen"
	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// ccTestProgram replicates the connected-components shape from
// internal/algorithms: min-label flooding over Either. Its frontier decays
// naturally (label waves die out per component), so under ScanAuto real runs
// cross the density threshold mid-run.
func ccTestProgram(policy ScanPolicy) Program[int64, int64] {
	min := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	return Program[int64, int64]{
		Init:  func(id graph.VertexID) int64 { return int64(id) },
		VProg: func(_ graph.VertexID, val, msg int64) int64 { return min(val, msg) },
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			if t.SrcVal < t.DstVal {
				emit.ToDst(t.SrcVal)
			} else if t.DstVal < t.SrcVal {
				emit.ToSrc(t.DstVal)
			}
		},
		MergeMsg:        min,
		InitialMsg:      math.MaxInt64,
		ActiveDirection: Either,
		ScanPolicy:      policy,
	}
}

// pushTestProgram replicates the dynamic-PageRank shape: Out direction and
// an order-sensitive float64 sum merge. Any reordering of message combines
// between the dense and sparse paths shows up as a bit difference here.
func pushTestProgram(policy ScanPolicy) Program[float64, float64] {
	return Program[float64, float64]{
		Init:  func(id graph.VertexID) float64 { return 1 + float64(id%97)/31 },
		VProg: func(_ graph.VertexID, val, msg float64) float64 { return val*0.5 + msg*0.25 },
		SendMsg: func(t *Triplet[float64], emit Emitter[float64]) {
			if t.SrcVal > 1e-3 {
				emit.ToDst(t.SrcVal * 0.375)
			}
		},
		MergeMsg:        func(a, b float64) float64 { return a + b },
		MaxIterations:   8,
		ActiveDirection: Out,
		ScanPolicy:      policy,
	}
}

// floodTestProgram replicates the label-propagation shape: AllEdges, so the
// engine must keep the unconditional dense scan regardless of policy.
func floodTestProgram(policy ScanPolicy) Program[int64, int64] {
	max := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	return Program[int64, int64]{
		Init:  func(id graph.VertexID) int64 { return int64(id) },
		VProg: func(_ graph.VertexID, val, msg int64) int64 { return max(val, msg) },
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			emit.ToDst(t.SrcVal)
			emit.ToSrc(t.DstVal)
		},
		MergeMsg:        max,
		MaxIterations:   4,
		ActiveDirection: AllEdges,
		ScanPolicy:      policy,
	}
}

// reverseReachProgram covers the In direction: reverse BFS from seed
// vertices, scanning only in-edges of frontier destinations.
func reverseReachProgram(policy ScanPolicy) Program[int64, int64] {
	return Program[int64, int64]{
		Init: func(id graph.VertexID) int64 {
			if id%13 == 0 {
				return 1
			}
			return 0
		},
		VProg: func(_ graph.VertexID, val, msg int64) int64 {
			if msg > val {
				return msg
			}
			return val
		},
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			if t.DstVal == 1 && t.SrcVal == 0 {
				emit.ToSrc(1)
			}
		},
		MergeMsg: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		ActiveDirection: In,
		ScanPolicy:      policy,
	}
}

// handshakeProgram covers Both: the sparse gather walks source lists and
// must re-check the destination frontier bit at visit time.
func handshakeProgram(policy ScanPolicy) Program[int64, int64] {
	return Program[int64, int64]{
		Init:  func(id graph.VertexID) int64 { return int64(id % 5) },
		VProg: func(_ graph.VertexID, val, msg int64) int64 { return val + msg },
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			if (t.SrcVal+t.DstVal)%3 == 0 {
				emit.ToSrc(1)
				emit.ToDst(2)
			}
		},
		MergeMsg:        func(a, b int64) int64 { return a + b },
		MaxIterations:   6,
		ActiveDirection: Both,
		ScanPolicy:      policy,
	}
}

// checkSameStats asserts the scan-path-independent statistics agree per
// superstep: which triplets ran, what they emitted and who was active never
// depend on the scan policy — only ActiveEdges (work examined) may differ.
func checkSameStats(t *testing.T, label string, ref, got *RunStats) {
	t.Helper()
	if len(ref.Supersteps) != len(got.Supersteps) {
		t.Fatalf("%s: %d supersteps != %d", label, len(got.Supersteps), len(ref.Supersteps))
	}
	if ref.Converged != got.Converged {
		t.Fatalf("%s: converged %v != %v", label, got.Converged, ref.Converged)
	}
	for i := range ref.Supersteps {
		r, g := &ref.Supersteps[i], &got.Supersteps[i]
		if r.ActiveVertices != g.ActiveVertices || r.EdgesScanned != g.EdgesScanned || r.MsgsEmitted != g.MsgsEmitted {
			t.Fatalf("%s superstep %d: active/scanned/emitted (%d,%d,%d) != (%d,%d,%d)",
				label, i, g.ActiveVertices, g.EdgesScanned, g.MsgsEmitted,
				r.ActiveVertices, r.EdgesScanned, r.MsgsEmitted)
		}
		if g.ActiveEdges < g.EdgesScanned {
			t.Fatalf("%s superstep %d: ActiveEdges %d < EdgesScanned %d", label, i, g.ActiveEdges, g.EdgesScanned)
		}
	}
}

func checkSameInt64(t *testing.T, label string, ref, got []int64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d values != %d", label, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: vertex %d: %d != %d", label, i, got[i], ref[i])
		}
	}
}

// checkSameFloat64 compares by bit pattern: the equivalence claim is
// bit-identity, not epsilon closeness.
func checkSameFloat64(t *testing.T, label string, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d values != %d", label, len(got), len(ref))
	}
	for i := range ref {
		if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: vertex %d: %v (%#x) != %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), ref[i], math.Float64bits(ref[i]))
		}
	}
}

// frontierTopologies builds the three topology generations of one
// (graph, strategy) pair at the given parallelism: the base build, a grown
// topology patched via ApplyDelta, and a shrunk one patched after a
// retraction batch. Running the engine over the patched topologies proves
// ApplyDelta's rebuilt frontier indexes, not just the fresh-build ones.
func frontierTopologies(t testing.TB, base []graph.Edge, s partition.Strategy, numParts, par int) map[string]*PartitionedGraph {
	t.Helper()
	g := graph.FromEdges(append([]graph.Edge(nil), base...))
	a, err := partition.Assign(g, s, numParts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}

	grown, _ := buildDelta(t, s, base, deltaEdges(23, 2*len(base)/3, len(base)/8+4), numParts, par)

	r := rand.New(rand.NewSource(31))
	batch := retractBatch(r, g, len(base)/10+1)
	sg, d, err := g.Shrink(batch)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Extend(sg, s)
	if err != nil {
		t.Fatal(err)
	}
	remap, err := graph.RemapVertices(d.OldVerts, sg)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := pg.ApplyDelta(sa, remap)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*PartitionedGraph{"base": pg, "grown": grown, "shrunk": shrunk}
}

// frontierGraphs returns the three dataset analogs of the suite as edge
// lists: a uniform random graph, a skewed RMAT graph and a fragmented
// road-style grid.
func frontierGraphs(t testing.TB) map[string][]graph.Edge {
	t.Helper()
	rmat, err := gen.RMAT(gen.DefaultRMAT(6, 6, 42))
	if err != nil {
		t.Fatal(err)
	}
	road, err := gen.Road(gen.RoadConfig{Rows: 8, Cols: 10, EdgeProb: 0.9, DiagProb: 0.2, Fragments: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]graph.Edge{
		"random": deltaEdges(21, 100, 700),
		"rmat":   append([]graph.Edge(nil), rmat.Edges()...),
		"road":   append([]graph.Edge(nil), road.Edges()...),
	}
}

// frontierVariants are the (policy, parallelism) combinations compared
// against the serial dense reference in every equivalence test.
var frontierVariants = []struct {
	name   string
	policy ScanPolicy
	par    int
}{
	{"sparse-serial", ScanSparse, 1},
	{"sparse-par", ScanSparse, 4},
	{"dense-par", ScanDense, 4},
	{"auto-par", ScanAuto, 4},
}

// TestFrontierEquivalenceMatrix is the core of the suite: CC (Either),
// push-rank (Out, float64) and label flood (AllEdges) over
// strategies × graph families × base/grown/shrunk generations, each variant
// compared value-for-value against the serial dense reference.
func TestFrontierEquivalenceMatrix(t *testing.T) {
	strategies := []partition.Strategy{
		partition.EdgePartition2D(),
		partition.Greedy(),
		partition.HDRF(1),
		partition.Hybrid(8),
	}
	ctx := context.Background()
	for gname, base := range frontierGraphs(t) {
		for _, s := range strategies {
			t.Run(gname+"/"+s.Name(), func(t *testing.T) {
				refTops := frontierTopologies(t, base, s, 7, 1)
				variantTops := make(map[int]map[string]*PartitionedGraph)
				for _, v := range frontierVariants {
					if _, ok := variantTops[v.par]; !ok {
						variantTops[v.par] = frontierTopologies(t, base, s, 7, v.par)
					}
				}
				for genName, ref := range refTops {
					ccRef, ccStats, err := Run(ctx, ref, ccTestProgram(ScanDense))
					if err != nil {
						t.Fatal(err)
					}
					pushRef, pushStats, err := Run(ctx, ref, pushTestProgram(ScanDense))
					if err != nil {
						t.Fatal(err)
					}
					floodRef, floodStats, err := Run(ctx, ref, floodTestProgram(ScanDense))
					if err != nil {
						t.Fatal(err)
					}
					for _, v := range frontierVariants {
						pg := variantTops[v.par][genName]
						label := fmt.Sprintf("%s/%s/cc", genName, v.name)
						vals, stats, err := Run(ctx, pg, ccTestProgram(v.policy))
						if err != nil {
							t.Fatal(err)
						}
						checkSameInt64(t, label, ccRef, vals)
						checkSameStats(t, label, ccStats, stats)

						label = fmt.Sprintf("%s/%s/push", genName, v.name)
						fvals, fstats, err := Run(ctx, pg, pushTestProgram(v.policy))
						if err != nil {
							t.Fatal(err)
						}
						checkSameFloat64(t, label, pushRef, fvals)
						checkSameStats(t, label, pushStats, fstats)

						label = fmt.Sprintf("%s/%s/flood", genName, v.name)
						avals, astats, err := Run(ctx, pg, floodTestProgram(v.policy))
						if err != nil {
							t.Fatal(err)
						}
						checkSameInt64(t, label, floodRef, avals)
						checkSameStats(t, label, floodStats, astats)
					}
				}
			})
		}
	}
}

// TestFrontierDirectionCoverage exercises the remaining directions — In
// (destination-list gather) and Both (source gather plus visit-time
// destination re-check) — against the serial dense reference.
func TestFrontierDirectionCoverage(t *testing.T) {
	ctx := context.Background()
	base := deltaEdges(41, 90, 650)
	for _, s := range []partition.Strategy{partition.EdgePartition2D(), partition.HDRF(1)} {
		refTops := frontierTopologies(t, base, s, 5, 1)
		variantTops := map[int]map[string]*PartitionedGraph{1: refTops}
		variantTops[4] = frontierTopologies(t, base, s, 5, 4)
		for genName, ref := range refTops {
			inRef, inStats, err := Run(ctx, ref, reverseReachProgram(ScanDense))
			if err != nil {
				t.Fatal(err)
			}
			bothRef, bothStats, err := Run(ctx, ref, handshakeProgram(ScanDense))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range frontierVariants {
				pg := variantTops[v.par][genName]
				label := fmt.Sprintf("%s/%s/%s/in", s.Name(), genName, v.name)
				vals, stats, err := Run(ctx, pg, reverseReachProgram(v.policy))
				if err != nil {
					t.Fatal(err)
				}
				checkSameInt64(t, label, inRef, vals)
				checkSameStats(t, label, inStats, stats)

				label = fmt.Sprintf("%s/%s/%s/both", s.Name(), genName, v.name)
				vals, stats, err = Run(ctx, pg, handshakeProgram(v.policy))
				if err != nil {
					t.Fatal(err)
				}
				checkSameInt64(t, label, bothRef, vals)
				checkSameStats(t, label, bothStats, stats)
			}
		}
	}
}

// TestAllEdgesIgnoresSparsePolicy: an AllEdges program visits every edge
// every superstep even under ScanSparse — every edge is live by definition,
// so the frontier index has nothing to skip.
func TestAllEdgesIgnoresSparsePolicy(t *testing.T) {
	g := graph.FromEdges(deltaEdges(51, 60, 400))
	a, err := partition.Assign(g, partition.EdgePartition2D(), 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Run(context.Background(), pg, floodTestProgram(ScanSparse))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(g.NumLiveEdges())
	for i := range stats.Supersteps {
		if got := stats.Supersteps[i].ActiveEdges; got != total {
			t.Fatalf("superstep %d: AllEdges examined %d edges, want all %d", i, got, total)
		}
	}
}

// chainEdges returns a directed path 0→1→…→n-1 — the worst case for a dense
// scan (the CC frontier collapses to a single wavefront almost immediately)
// and the cleanest way to force a ScanAuto density crossover.
func chainEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return edges
}

// bfsTestProgram is single-source BFS from vertex 0 over Out: after the
// fully-active superstep 1 the frontier collapses to the one-vertex
// wavefront, the cleanest way to force a ScanAuto dense→sparse crossover.
func bfsTestProgram(policy ScanPolicy) Program[int64, int64] {
	const unreached = int64(math.MaxInt64)
	min := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	return Program[int64, int64]{
		Init: func(id graph.VertexID) int64 {
			if id == 0 {
				return 0
			}
			return unreached
		},
		VProg: func(_ graph.VertexID, val, msg int64) int64 { return min(val, msg) },
		SendMsg: func(t *Triplet[int64], emit Emitter[int64]) {
			if t.SrcVal != unreached && t.SrcVal+1 < t.DstVal {
				emit.ToDst(t.SrcVal + 1)
			}
		},
		MergeMsg:        min,
		InitialMsg:      unreached,
		ActiveDirection: Out,
		ScanPolicy:      policy,
	}
}

// TestScanAutoCrossesDensityThreshold proves ScanAuto actually switches
// paths mid-run: BFS over a long chain starts with every vertex active
// (dense superstep 1) and collapses to a single-vertex wavefront below the
// 1/8 threshold, observable as ActiveEdges dropping below the full edge
// count.
func TestScanAutoCrossesDensityThreshold(t *testing.T) {
	base := chainEdges(512)
	g := graph.FromEdges(append([]graph.Edge(nil), base...))
	a, err := partition.Assign(g, partition.EdgePartition2D(), 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	bfsCapped := func(policy ScanPolicy) Program[int64, int64] {
		p := bfsTestProgram(policy)
		p.MaxIterations = 40
		return p
	}
	auto, stats, err := Run(context.Background(), pg, bfsCapped(ScanAuto))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(g.NumLiveEdges())
	var sawDense, sawSparse bool
	for i := range stats.Supersteps {
		switch ae := stats.Supersteps[i].ActiveEdges; {
		case ae == total:
			sawDense = true
		case ae < total:
			sawSparse = true
		}
	}
	if !sawDense || !sawSparse {
		t.Fatalf("ScanAuto never crossed the density threshold (dense=%v sparse=%v over %d supersteps)",
			sawDense, sawSparse, len(stats.Supersteps))
	}
	// And the crossover changes nothing: same distances as forced policies.
	dense, _, err := Run(context.Background(), pg, bfsCapped(ScanDense))
	if err != nil {
		t.Fatal(err)
	}
	sparse, _, err := Run(context.Background(), pg, bfsCapped(ScanSparse))
	if err != nil {
		t.Fatal(err)
	}
	checkSameInt64(t, "auto-vs-dense", dense, auto)
	checkSameInt64(t, "sparse-vs-dense", dense, sparse)
}

// FuzzFrontierScanEquivalence fuzzes the dense/sparse/auto equivalence over
// random graph shapes, partition counts and directions. The seed corpus
// includes a chain (density-threshold crossover mid-run, see
// TestScanAutoCrossesDensityThreshold) and a dense clique-ish graph that
// stays on the dense path throughout.
func FuzzFrontierScanEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(60), uint16(400), uint8(7), uint8(0))
	f.Add(int64(2), uint8(200), uint16(220), uint8(4), uint8(1)) // sparse chain-like: crossover
	f.Add(int64(3), uint8(24), uint16(500), uint8(3), uint8(2))  // dense: stays above threshold
	f.Add(int64(4), uint8(90), uint16(300), uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nv uint8, ne uint16, parts uint8, dir uint8) {
		if nv < 2 {
			nv = 2
		}
		numParts := int(parts%32) + 1
		base := deltaEdges(seed, int(nv), int(ne)%1200+1)
		g := graph.FromEdges(base)
		a, err := partition.Assign(g, partition.EdgePartition2D(), numParts)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		switch dir % 4 {
		case 0: // Either, int64 min
			ref, refStats, err := Run(ctx, pg, ccTestProgram(ScanDense))
			if err != nil {
				t.Fatal(err)
			}
			for _, policy := range []ScanPolicy{ScanSparse, ScanAuto} {
				got, gotStats, err := Run(ctx, pg, ccTestProgram(policy))
				if err != nil {
					t.Fatal(err)
				}
				checkSameInt64(t, policy.String(), ref, got)
				checkSameStats(t, policy.String(), refStats, gotStats)
			}
		case 1: // Out, order-sensitive float64
			ref, refStats, err := Run(ctx, pg, pushTestProgram(ScanDense))
			if err != nil {
				t.Fatal(err)
			}
			for _, policy := range []ScanPolicy{ScanSparse, ScanAuto} {
				got, gotStats, err := Run(ctx, pg, pushTestProgram(policy))
				if err != nil {
					t.Fatal(err)
				}
				checkSameFloat64(t, policy.String(), ref, got)
				checkSameStats(t, policy.String(), refStats, gotStats)
			}
		case 2: // In
			ref, refStats, err := Run(ctx, pg, reverseReachProgram(ScanDense))
			if err != nil {
				t.Fatal(err)
			}
			for _, policy := range []ScanPolicy{ScanSparse, ScanAuto} {
				got, gotStats, err := Run(ctx, pg, reverseReachProgram(policy))
				if err != nil {
					t.Fatal(err)
				}
				checkSameInt64(t, policy.String(), ref, got)
				checkSameStats(t, policy.String(), refStats, gotStats)
			}
		default: // Both
			ref, refStats, err := Run(ctx, pg, handshakeProgram(ScanDense))
			if err != nil {
				t.Fatal(err)
			}
			for _, policy := range []ScanPolicy{ScanSparse, ScanAuto} {
				got, gotStats, err := Run(ctx, pg, handshakeProgram(policy))
				if err != nil {
					t.Fatal(err)
				}
				checkSameInt64(t, policy.String(), ref, got)
				checkSameStats(t, policy.String(), refStats, gotStats)
			}
		}
	})
}
