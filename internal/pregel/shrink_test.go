package pregel

import (
	"math/rand"
	"reflect"
	"testing"

	"cutfit/internal/graph"
	"cutfit/internal/metrics"
	"cutfit/internal/partition"
)

// retractBatch picks up to n distinct live edge positions of g at random
// and returns their edge values — a retraction batch for Graph.Shrink.
func retractBatch(r *rand.Rand, g *graph.Graph, n int) []graph.Edge {
	live := make([]int, 0, g.NumLiveEdges())
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAlive(i) {
			live = append(live, i)
		}
	}
	r.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if n > len(live) {
		n = len(live)
	}
	edges := g.Edges()
	out := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		out[i] = edges[live[i]]
	}
	return out
}

// TestApplyDeltaShrinkMatchesFullBuild chains several random retraction
// batches through Shrink → Extend → ApplyDelta and proves each patched
// topology — and its derived metrics — is bit-for-bit identical to a
// from-scratch build of the shrunk graph.
func TestApplyDeltaShrinkMatchesFullBuild(t *testing.T) {
	strategies := append(partition.Extended(), partition.Hybrid(8))
	for _, s := range strategies {
		for _, numParts := range []int{1, 7, 32} {
			t.Run(s.Name(), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(numParts)))
				g := graph.FromEdges(deltaEdges(11, 60, 900))
				a, err := partition.Assign(g, s, numParts)
				if err != nil {
					t.Fatal(err)
				}
				pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: 4})
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 5; step++ {
					batch := retractBatch(r, g, 30)
					ng, d, err := g.Shrink(batch)
					if err != nil {
						t.Fatal(err)
					}
					if d.Compacted {
						t.Fatalf("step %d: unexpected compaction (%d dead of %d)", step, ng.NumDeadEdges(), ng.NumEdges())
					}
					na, err := a.Extend(ng, s)
					if err != nil {
						t.Fatal(err)
					}
					remap, err := graph.RemapVertices(d.OldVerts, ng)
					if err != nil {
						t.Fatal(err)
					}
					patched, err := pg.ApplyDelta(na, remap)
					if err != nil {
						t.Fatal(err)
					}
					rebuilt, err := NewPartitionedGraphFromAssignment(na, BuildOptions{Parallelism: 4})
					if err != nil {
						t.Fatal(err)
					}
					if err := checkEquivalent(rebuilt, patched); err != nil {
						t.Fatalf("%s parts=%d step %d: %v", s.Name(), numParts, step, err)
					}
					want, err := metrics.FromAssignment(na)
					if err != nil {
						t.Fatal(err)
					}
					if got := patched.Metrics(); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s parts=%d step %d: topology metrics diverge from assignment metrics", s.Name(), numParts, step)
					}
					g, a, pg = ng, na, patched
				}
			})
		}
	}
}

// TestApplyDeltaShrinkDropsOrphanMirrors: retracting a vertex's only edge
// must drop its mirrors from the patched topology, exactly as the rebuild
// does (the vertex itself stays in the graph until compaction).
func TestApplyDeltaShrinkDropsOrphanMirrors(t *testing.T) {
	lone := graph.Edge{Src: 999, Dst: 3}
	base := append(deltaEdges(12, 40, 200), lone)
	g := graph.FromEdges(append([]graph.Edge(nil), base...))
	s := partition.EdgePartition2D()
	a, err := partition.Assign(g, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ng, d, err := g.Shrink([]graph.Edge{lone})
	if err != nil {
		t.Fatal(err)
	}
	na, err := a.Extend(ng, s)
	if err != nil {
		t.Fatal(err)
	}
	remap, err := graph.RemapVertices(d.OldVerts, ng)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := pg.ApplyDelta(na, remap)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewPartitionedGraphFromAssignment(na, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checkEquivalent(rebuilt, patched); err != nil {
		t.Fatal(err)
	}
	idx, ok := ng.Index(999)
	if !ok {
		t.Fatal("vertex 999 left the graph before compaction")
	}
	if m := patched.Mirrors(idx); m != 0 {
		t.Fatalf("orphaned vertex 999 still has %d mirrors", m)
	}
}

// TestApplyDeltaSlideWindowMatchesFullBuild: one generation step that both
// appends a suffix and expires the oldest live prefix must patch to exactly
// the rebuilt topology.
func TestApplyDeltaSlideWindowMatchesFullBuild(t *testing.T) {
	strategies := append(partition.Extended(), partition.Hybrid(8))
	base := deltaEdges(13, 60, 600)
	suffix := deltaEdges(14, 90, 80)
	for _, s := range strategies {
		t.Run(s.Name(), func(t *testing.T) {
			g := graph.FromEdges(append([]graph.Edge(nil), base...))
			a, err := partition.Assign(g, s, 16)
			if err != nil {
				t.Fatal(err)
			}
			pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			ng, d, err := g.SlideWindow(append([]graph.Edge(nil), suffix...), nil, 120)
			if err != nil {
				t.Fatal(err)
			}
			if d.Compacted {
				t.Fatal("unexpected compaction")
			}
			na, err := a.Extend(ng, s)
			if err != nil {
				t.Fatal(err)
			}
			remap, err := graph.RemapVertices(d.OldVerts, ng)
			if err != nil {
				t.Fatal(err)
			}
			patched, err := pg.ApplyDelta(na, remap)
			if err != nil {
				t.Fatal(err)
			}
			rebuilt, err := NewPartitionedGraphFromAssignment(na, BuildOptions{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := checkEquivalent(rebuilt, patched); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
		})
	}
}

// FuzzApplyShrink drives random (base, retraction, suffix, strategy, parts)
// tuples through the shrink/slide delta path and cross-checks against the
// full rebuild. Compacted generations sever the delta chain by contract;
// for those the fuzzer only proves the rebuild still works. Run long via
// `make fuzz`; the seed corpus runs on every `go test`.
func FuzzApplyShrink(f *testing.F) {
	f.Add(int64(1), uint16(300), uint16(30), uint16(0), uint8(8), uint8(0))
	f.Add(int64(2), uint16(1), uint16(1), uint16(1), uint8(1), uint8(1))
	f.Add(int64(3), uint16(900), uint16(400), uint16(0), uint8(33), uint8(2))
	f.Add(int64(4), uint16(500), uint16(100), uint16(200), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, baseN, retractN, sufN uint16, parts, strat uint8) {
		numParts := 1 + int(parts)%64
		strategies := append(partition.Extended(), partition.Hybrid(4))
		s := strategies[int(strat)%len(strategies)]
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(120)
		base := deltaEdges(seed+1, nv, 1+int(baseN)%1000)
		g := graph.FromEdges(append([]graph.Edge(nil), base...))
		a, err := partition.Assign(g, s, numParts)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := NewPartitionedGraphFromAssignment(a, BuildOptions{Parallelism: 1 + r.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		var ng *graph.Graph
		var d graph.Delta
		if n := int(sufN) % 300; n > 0 {
			suffix := make([]graph.Edge, n)
			for i := range suffix {
				suffix[i] = graph.Edge{
					Src: graph.VertexID(r.Intn(3 * nv)),
					Dst: graph.VertexID(r.Intn(3 * nv)),
				}
			}
			ng, d, err = g.SlideWindow(suffix, nil, int(retractN)%(len(base)+1))
		} else {
			ng, d, err = g.Shrink(retractBatch(r, g, int(retractN)%(len(base)+1)))
		}
		if err != nil {
			t.Fatal(err)
		}
		if d.Compacted {
			na, err := partition.Assign(ng, s, numParts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewPartitionedGraphFromAssignment(na, BuildOptions{}); err != nil {
				t.Fatal(err)
			}
			return
		}
		if ng == g {
			return // zero-net step: the parent came back
		}
		na, err := a.Extend(ng, s)
		if err != nil {
			t.Fatal(err)
		}
		remap, err := graph.RemapVertices(d.OldVerts, ng)
		if err != nil {
			t.Fatal(err)
		}
		patched, err := pg.ApplyDelta(na, remap)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := NewPartitionedGraphFromAssignment(na, BuildOptions{Parallelism: 1 + r.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		if err := checkEquivalent(rebuilt, patched); err != nil {
			t.Fatalf("%s parts=%d: %v", s.Name(), numParts, err)
		}
	})
}
