package pregel

import (
	"math/bits"

	"cutfit/internal/graph"
)

// computePart scans one partition's triplets for one superstep and delivers
// messages through em — the compute phase of the BSP loop, factored out of
// Run so the distributed worker (ShardCompute) executes byte-for-byte the
// same scan. Both callers therefore visit candidate edges in ascending edge
// order, which is what keeps float64 message combines bit-identical across
// the local and distributed paths.
//
// fw is the partition's frontier bitset (bit l set ⇔ local vertex l's
// master changed last round) and act its popcount; both are ignored for
// AllEdges programs. mask is the sparse path's candidate-edge bitmap
// scratch; it may be nil (allocated on first sparse use) and the returned
// slice must be kept by the caller for reuse. The mask is all-zero on
// return (the scan clears words as it consumes them).
func computePart[V, M any](prog *Program[V, M], edgeCost func(*Triplet[V]) float64, part *Partition, verts []graph.VertexID, pv []V, fw []uint64, act int, mask []uint64, em *partEmitter[M]) (nScan, nVisited int64, cost float64, maskOut []uint64) {
	dir := prog.ActiveDirection
	lv := part.LocalVerts
	edges := part.edges
	var t Triplet[V]

	if dir == AllEdges {
		// Always-active programs (PageRank): unconditional scan, no
		// frontier, no per-edge activity test — today's fast path.
		for i := range edges {
			e := edges[i]
			nScan++
			t.SrcID = verts[lv[e.src]]
			t.DstID = verts[lv[e.dst]]
			t.SrcVal = pv[e.src]
			t.DstVal = pv[e.dst]
			em.srcLocal = e.src
			em.dstLocal = e.dst
			prog.SendMsg(&t, em)
			cost += edgeCost(&t)
		}
		return nScan, int64(len(edges)), cost, mask
	}

	sparse := prog.ScanPolicy == ScanSparse ||
		(prog.ScanPolicy == ScanAuto && act*sparseDenominator < len(lv))
	if !sparse {
		// Dense scan: every edge, activity by two frontier bit tests.
		for i := range edges {
			e := edges[i]
			srcA := fw[e.src>>6]>>(uint32(e.src)&63)&1 != 0
			dstA := fw[e.dst>>6]>>(uint32(e.dst)&63)&1 != 0
			var scan bool
			switch dir {
			case Out:
				scan = srcA
			case In:
				scan = dstA
			case Either:
				scan = srcA || dstA
			case Both:
				scan = srcA && dstA
			}
			if !scan {
				continue
			}
			nScan++
			t.SrcID = verts[lv[e.src]]
			t.DstID = verts[lv[e.dst]]
			t.SrcVal = pv[e.src]
			t.DstVal = pv[e.dst]
			em.srcLocal = e.src
			em.dstLocal = e.dst
			prog.SendMsg(&t, em)
			cost += edgeCost(&t)
		}
		return nScan, int64(len(edges)), cost, mask
	}

	// Sparse scan. Gather: walk the frontier index of each live vertex
	// (zero frontier words skip 64 vertices at a time) and set the
	// candidate edges' bits in the edge bitmap — Out gathers by source, In
	// by destination, Either by both (the bitmap dedups shared candidates),
	// Both by source with a destination re-check at visit time. Scan:
	// consume bitmap words in ascending order, clearing as we go, so
	// candidates are visited in exactly the dense scan's edge order — float
	// message merges combine in the same sequence and results stay
	// bit-identical.
	part.ensureFrontierIndex()
	if mask == nil {
		mask = make([]uint64, (len(edges)+63)/64)
	}
	gather := func(off, pos []int32) {
		for wi, w := range fw {
			if w == 0 {
				continue
			}
			base := int32(wi << 6)
			for w != 0 {
				l := base + int32(bits.TrailingZeros64(w))
				w &= w - 1
				for _, j := range pos[off[l]:off[l+1]] {
					mask[j>>6] |= 1 << (uint32(j) & 63)
				}
			}
		}
	}
	switch dir {
	case Out, Both:
		gather(part.srcOff, part.srcPos)
	case In:
		gather(part.dstOff, part.dstPos)
	case Either:
		gather(part.srcOff, part.srcPos)
		gather(part.dstOff, part.dstPos)
	}
	for wi := range mask {
		w := mask[wi]
		if w == 0 {
			continue
		}
		mask[wi] = 0
		nVisited += int64(bits.OnesCount64(w))
		base := wi << 6
		for w != 0 {
			j := base + bits.TrailingZeros64(w)
			w &= w - 1
			e := edges[j]
			if dir == Both && fw[e.dst>>6]>>(uint32(e.dst)&63)&1 == 0 {
				continue
			}
			nScan++
			t.SrcID = verts[lv[e.src]]
			t.DstID = verts[lv[e.dst]]
			t.SrcVal = pv[e.src]
			t.DstVal = pv[e.dst]
			em.srcLocal = e.src
			em.dstLocal = e.dst
			prog.SendMsg(&t, em)
			cost += edgeCost(&t)
		}
	}
	return nScan, nVisited, cost, mask
}
