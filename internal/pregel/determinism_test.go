package pregel_test

// Determinism regression for the parallel build and the scratch-reuse
// engine: results must be bit-identical whatever the worker count, and
// whatever scratch a previous run left behind. Run under the race
// detector (`go test -race ./internal/pregel/...`) this also exercises
// every engine phase for data races at both parallelism extremes.

import (
	"context"
	"testing"

	"cutfit/internal/algorithms"
	"cutfit/internal/gen"
	"cutfit/internal/partition"
	"cutfit/internal/pregel"
)

func TestParallelismDeterminism(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 0xFACE))
	if err != nil {
		t.Fatal(err)
	}
	const numParts = 8
	assign, err := partition.EdgePartition2D().Partition(g, numParts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Parallelism = 1 and Parallelism > NumParts, with and without buffer
	// reuse; every combination must agree exactly with the serial baseline.
	type variant struct {
		name string
		opts pregel.BuildOptions
	}
	variants := []variant{
		{"serial", pregel.BuildOptions{Parallelism: 1}},
		{"oversubscribed", pregel.BuildOptions{Parallelism: numParts + 5}},
		{"oversubscribed-reuse", pregel.BuildOptions{Parallelism: numParts + 5, ReuseBuffers: true}},
	}

	var baseRanks []float64
	var baseCC []int64
	for i, v := range variants {
		pg, err := pregel.NewPartitionedGraphOpts(g, assign, numParts, v.opts)
		if err != nil {
			t.Fatal(err)
		}
		// Two runs per variant: with ReuseBuffers the second run revives
		// the first run's scratch and must still match.
		for round := 0; round < 2; round++ {
			ranks, _, err := algorithms.PageRank(ctx, pg, 10, algorithms.DefaultResetProb)
			if err != nil {
				t.Fatal(err)
			}
			comps, _, err := algorithms.ConnectedComponents(ctx, pg, 0)
			if err != nil {
				t.Fatal(err)
			}
			cc := make([]int64, len(comps))
			for j, c := range comps {
				cc[j] = int64(c)
			}
			if i == 0 && round == 0 {
				baseRanks, baseCC = ranks, cc
				continue
			}
			if len(ranks) != len(baseRanks) || len(cc) != len(baseCC) {
				t.Fatalf("%s round %d: result length mismatch", v.name, round)
			}
			for j := range ranks {
				if ranks[j] != baseRanks[j] {
					t.Fatalf("%s round %d: PageRank[%d] = %v, serial baseline %v",
						v.name, round, j, ranks[j], baseRanks[j])
				}
			}
			for j := range cc {
				if cc[j] != baseCC[j] {
					t.Fatalf("%s round %d: CC[%d] = %d, serial baseline %d",
						v.name, round, j, cc[j], baseCC[j])
				}
			}
		}
	}
}

// TestReuseBuffersResultIsolation guards the copy-out contract: with
// ReuseBuffers the values returned by one run must not be overwritten by
// the next run on the same partitioned graph.
func TestReuseBuffersResultIsolation(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 1800, 0xB0B)
	if err != nil {
		t.Fatal(err)
	}
	const numParts = 4
	assign, err := partition.RandomVertexCut().Partition(g, numParts)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.NewPartitionedGraphOpts(g, assign, numParts, pregel.BuildOptions{ReuseBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, _, err := algorithms.PageRank(ctx, pg, 3, algorithms.DefaultResetProb)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), first...)
	// A different-length run on the same graph reuses the parked scratch.
	if _, _, err := algorithms.PageRank(ctx, pg, 7, algorithms.DefaultResetProb); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != snapshot[i] {
			t.Fatalf("rank[%d] mutated by a later run: %v != %v", i, first[i], snapshot[i])
		}
	}
}
