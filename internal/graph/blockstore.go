package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// DefaultBlockEdges is the block granularity used when a caller passes 0:
// 64K edges per block keeps a decoded block around 1 MiB of scratch while
// amortizing per-block bookkeeping over enough edges that the delta-varint
// encoding wins big on real (locality-heavy) edge lists.
const DefaultBlockEdges = 1 << 16

// blockCacheCap bounds the per-store LRU of decoded blocks used by random
// access (EdgeAt / EdgeWeight / EdgeRange). Full scans bypass the cache and
// decode into pooled scratch instead, so the cap only needs to cover a
// handful of hot blocks.
const blockCacheCap = 8

// blockRef describes one block's encoded payload. A block lives either on
// the heap (enc non-nil; EncodeEdges always emits at least the count byte,
// so a heap block's enc is never empty) or in the store's backing ReaderAt
// (enc nil, off/encLen/crc locate and check the payload). The weight
// sidecar is raw little-endian float64s, one per edge; a nil wenc (heap) or
// zero wencLen (file) means the block's weights are implicitly all ones —
// the common case for unweighted history inside a weighted store.
type blockRef struct {
	count int32
	enc   []byte
	wenc  []byte

	off    int64
	encLen uint32
	crc    uint32

	woff    int64
	wencLen uint32
	wcrc    uint32
}

// BlockStore is the memory-lean edge tier: edges in fixed-size blocks,
// each encoded with the same delta-varint codec the snapshot format uses,
// with optional per-block weight sidecars. Blocks decode on demand — full
// scans stream through pooled scratch, random access goes through a small
// LRU of hot decoded blocks — so a store's resident cost is the encoded
// bytes (or nothing at all for a ReaderAt-backed store serving blocks
// straight from a file).
//
// A BlockStore is immutable once built and safe for concurrent readers.
// Generational graph mutation (Grow/Shrink/SlideWindow) builds a new store
// that shares every sealed full block with its parent; tombstones are NOT
// stored here — the owning Graph keeps its position-indexed tombstone
// bitset, which works unchanged because blocks never splice edge positions
// (blockEdges is a multiple of 64, so tombstone words never straddle a
// block boundary).
type BlockStore struct {
	blockEdges int
	numEdges   int
	weighted   bool
	refs       []blockRef
	src        io.ReaderAt // backing file for refs with enc == nil

	mu    sync.Mutex
	cache map[int]*decodedBlock
	order []int // LRU, oldest first
	ones  []float64
}

// decodedBlock is one cached decode. Cached blocks are never mutated after
// insertion, so readers may hold them across an eviction.
type decodedBlock struct {
	edges   []Edge
	weights []float64 // nil on an unweighted store
}

// NumEdges returns the total number of edges across all blocks.
func (bs *BlockStore) NumEdges() int { return bs.numEdges }

// NumBlocks returns the number of blocks.
func (bs *BlockStore) NumBlocks() int { return len(bs.refs) }

// BlockEdges returns the block granularity (every block but the last holds
// exactly this many edges).
func (bs *BlockStore) BlockEdges() int { return bs.blockEdges }

// Weighted reports whether the store carries per-edge weights.
func (bs *BlockStore) Weighted() bool { return bs.weighted }

// BlockRange returns the dense edge interval [lo, hi) covered by block b.
func (bs *BlockStore) BlockRange(b int) (lo, hi int) {
	lo = b * bs.blockEdges
	hi = lo + int(bs.refs[b].count)
	return lo, hi
}

// EncodedBytes returns the total encoded payload size (edges plus weight
// sidecars) across all blocks, heap- or file-resident.
func (bs *BlockStore) EncodedBytes() int64 {
	var n int64
	for i := range bs.refs {
		r := &bs.refs[i]
		if r.enc != nil {
			n += int64(len(r.enc)) + int64(len(r.wenc))
		} else {
			n += int64(r.encLen) + int64(r.wencLen)
		}
	}
	return n
}

// HeapBytes returns the heap-resident payload bytes: what the store
// actually costs in RAM, excluding the decode cache. File-backed blocks
// contribute nothing.
func (bs *BlockStore) HeapBytes() int64 {
	var n int64
	for i := range bs.refs {
		r := &bs.refs[i]
		n += int64(len(r.enc)) + int64(len(r.wenc))
	}
	n += int64(len(bs.refs)) * 48
	return n
}

// BlockPayload returns block b's encoded edge payload and weight sidecar
// (nil sidecar = implicitly all ones). For file-backed blocks the payload
// is read and CRC-checked into fresh slices the caller owns; heap blocks
// return their retained slices, which callers must not modify. Decode
// paths that drop the payload immediately go through readPayload with
// pooled scratch instead — this entry point is for callers that keep the
// bytes (the snapshot writer re-emitting payloads verbatim).
func (bs *BlockStore) BlockPayload(b int) (enc, wenc []byte, err error) {
	r := &bs.refs[b]
	if r.enc != nil {
		return r.enc, r.wenc, nil
	}
	var sc payloadScratch
	if enc, wenc, err = bs.readPayload(b, &sc); err != nil {
		return nil, nil, err
	}
	return enc, wenc, nil
}

// payloadScratch is a reusable read-buffer pair for file-backed payload
// reads whose bytes are decoded and dropped immediately. Full scans over a
// file-backed store would otherwise allocate one fresh payload buffer per
// block per pass — O(encoded bytes) of garbage for every assignment,
// degree, or fingerprint pass.
type payloadScratch struct{ enc, wenc []byte }

var payloadScratchPool = sync.Pool{New: func() any {
	mScratchAllocs.Inc()
	return new(payloadScratch)
}}

// readPayload returns block b's encoded payloads, reading file-backed
// blocks into sc's buffers (grown as needed) and CRC-checking them. Heap
// blocks return their retained slices, untouched by sc. The results alias
// sc and are valid only until its next use.
func (bs *BlockStore) readPayload(b int, sc *payloadScratch) (enc, wenc []byte, err error) {
	r := &bs.refs[b]
	if r.enc != nil {
		return r.enc, r.wenc, nil
	}
	if cap(sc.enc) < int(r.encLen) {
		sc.enc = make([]byte, r.encLen)
	}
	enc = sc.enc[:r.encLen]
	if _, err := bs.src.ReadAt(enc, r.off); err != nil {
		return nil, nil, fmt.Errorf("graph: block %d: read edges: %w", b, err)
	}
	if c := crc32.ChecksumIEEE(enc); c != r.crc {
		return nil, nil, fmt.Errorf("graph: block %d: edge payload CRC mismatch (%08x != %08x)", b, c, r.crc)
	}
	if r.wencLen > 0 {
		if cap(sc.wenc) < int(r.wencLen) {
			sc.wenc = make([]byte, r.wencLen)
		}
		wenc = sc.wenc[:r.wencLen]
		if _, err := bs.src.ReadAt(wenc, r.woff); err != nil {
			return nil, nil, fmt.Errorf("graph: block %d: read weights: %w", b, err)
		}
		if c := crc32.ChecksumIEEE(wenc); c != r.wcrc {
			return nil, nil, fmt.Errorf("graph: block %d: weight sidecar CRC mismatch (%08x != %08x)", b, c, r.wcrc)
		}
	}
	return enc, wenc, nil
}

// onesSlice returns the store's shared all-ones weight slice, sized to
// cover any block. Callers must treat it as read-only.
func (bs *BlockStore) onesSlice(n int) []float64 {
	bs.mu.Lock()
	if bs.ones == nil {
		ones := make([]float64, bs.blockEdges)
		for i := range ones {
			ones[i] = 1
		}
		bs.ones = ones
	}
	s := bs.ones[:n]
	bs.mu.Unlock()
	return s
}

// DecodeBlockInto decodes block b into the provided scratch slices (grown
// as needed; pass nil to allocate fresh) and returns the decoded edges and
// weights. The weights result is nil on an unweighted store, and may be a
// shared read-only all-ones slice when the block has no explicit sidecar —
// callers must not write into either result. Safe for concurrent use; the
// hot parallel consumers (the partitioned-graph scatter pass) decode into
// per-worker scratch through here and never touch the LRU.
func (bs *BlockStore) DecodeBlockInto(b int, edges []Edge, weights []float64) ([]Edge, []float64, error) {
	sc := getPayloadScratch()
	defer payloadScratchPool.Put(sc)
	enc, wenc, err := bs.readPayload(b, sc)
	if err != nil {
		return nil, nil, err
	}
	r := &bs.refs[b]
	es, err := decodeEdgesInto(enc, edges)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: block %d: %w", b, err)
	}
	if len(es) != int(r.count) {
		return nil, nil, fmt.Errorf("graph: block %d decodes to %d edges, index says %d", b, len(es), r.count)
	}
	if !bs.weighted {
		return es, nil, nil
	}
	if wenc == nil {
		return es, bs.onesSlice(len(es)), nil
	}
	ws, err := decodeWeightSidecarInto(wenc, weights)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: block %d: %w", b, err)
	}
	if len(ws) != len(es) {
		return nil, nil, fmt.Errorf("graph: block %d has %d weights for %d edges", b, len(ws), len(es))
	}
	return es, ws, nil
}

// DecodeBlockEdges decodes just block b's edges into the provided scratch
// (grown as needed; nil allocates fresh), skipping the weight sidecar
// entirely — for parallel consumers that need topology only (the
// partitioned-graph scatter pass decodes blocks into per-worker scratch
// through here). Safe for concurrent use.
func (bs *BlockStore) DecodeBlockEdges(b int, edges []Edge) ([]Edge, error) {
	r := &bs.refs[b]
	enc := r.enc
	if enc == nil {
		sc := getPayloadScratch()
		defer payloadScratchPool.Put(sc)
		if cap(sc.enc) < int(r.encLen) {
			sc.enc = make([]byte, r.encLen)
		}
		enc = sc.enc[:r.encLen]
		if _, err := bs.src.ReadAt(enc, r.off); err != nil {
			return nil, fmt.Errorf("graph: block %d: read edges: %w", b, err)
		}
		if c := crc32.ChecksumIEEE(enc); c != r.crc {
			return nil, fmt.Errorf("graph: block %d: edge payload CRC mismatch (%08x != %08x)", b, c, r.crc)
		}
	}
	es, err := decodeEdgesInto(enc, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: block %d: %w", b, err)
	}
	if len(es) != int(r.count) {
		return nil, fmt.Errorf("graph: block %d decodes to %d edges, index says %d", b, len(es), r.count)
	}
	return es, nil
}

// block returns block b via the LRU cache, decoding on miss. Decoded
// blocks are immutable, so a cached block stays valid for readers that
// obtained it even after eviction.
func (bs *BlockStore) block(b int) (*decodedBlock, error) {
	bs.mu.Lock()
	if d, ok := bs.cache[b]; ok {
		for i, o := range bs.order {
			if o == b {
				copy(bs.order[i:], bs.order[i+1:])
				bs.order[len(bs.order)-1] = b
				break
			}
		}
		bs.mu.Unlock()
		mBlockCacheHits.Inc()
		return d, nil
	}
	bs.mu.Unlock()
	mBlockCacheMisses.Inc()

	es, ws, err := bs.DecodeBlockInto(b, nil, nil)
	if err != nil {
		return nil, err
	}
	d := &decodedBlock{edges: es, weights: ws}

	bs.mu.Lock()
	if prev, ok := bs.cache[b]; ok {
		// Lost the race to another decoder; keep its entry.
		bs.mu.Unlock()
		return prev, nil
	}
	if bs.cache == nil {
		bs.cache = make(map[int]*decodedBlock, blockCacheCap)
	}
	bs.cache[b] = d
	bs.order = append(bs.order, b)
	if len(bs.order) > blockCacheCap {
		evict := bs.order[0]
		bs.order = bs.order[1:]
		delete(bs.cache, evict)
	}
	bs.mu.Unlock()
	return d, nil
}

// EdgeAt returns the edge at dense position i, decoding its block on
// demand through the LRU cache.
func (bs *BlockStore) EdgeAt(i int) (Edge, error) {
	b := i / bs.blockEdges
	d, err := bs.block(b)
	if err != nil {
		return Edge{}, err
	}
	return d.edges[i-b*bs.blockEdges], nil
}

// WeightAt returns the weight of the edge at dense position i (1 on an
// unweighted store).
func (bs *BlockStore) WeightAt(i int) (float64, error) {
	if !bs.weighted {
		return 1, nil
	}
	b := i / bs.blockEdges
	d, err := bs.block(b)
	if err != nil {
		return 0, err
	}
	return d.weights[i-b*bs.blockEdges], nil
}

// blockScratch is a pooled decode buffer pair for full scans.
type blockScratch struct {
	edges   []Edge
	weights []float64
}

var blockScratchPool = sync.Pool{New: func() any { return &blockScratch{} }}

// forEach streams every block through fn in dense order: fn(start, edges,
// weights) where start is the dense position of edges[0] and weights is
// nil on an unweighted store. The slices are pooled scratch, valid only
// during the callback; fn must not retain or modify them. A non-nil error
// from fn stops the scan and is returned.
func (bs *BlockStore) forEach(fn func(start int, edges []Edge, weights []float64) error) error {
	sc := blockScratchPool.Get().(*blockScratch)
	defer blockScratchPool.Put(sc)
	start := 0
	for b := range bs.refs {
		es, ws, err := bs.DecodeBlockInto(b, sc.edges, sc.weights)
		if err != nil {
			return err
		}
		sc.edges = es[:0]
		if ws != nil && !bs.isSharedOnes(ws) {
			// Adopt (possibly regrown) sidecar decode buffers as scratch;
			// the shared all-ones slice must never become scratch.
			sc.weights = ws[:0]
		}
		if err := fn(start, es, ws); err != nil {
			return err
		}
		start += len(es)
	}
	return nil
}

// isSharedOnes reports whether ws is the store's shared all-ones slice.
func (bs *BlockStore) isSharedOnes(ws []float64) bool {
	bs.mu.Lock()
	o := bs.ones
	bs.mu.Unlock()
	return o != nil && len(ws) > 0 && &ws[0] == &o[0]
}

// extend returns a new store holding this store's edges followed by
// suffix. Sealed full blocks are shared with the parent; only a partial
// tail block is re-encoded merged with the suffix. weighted is the child's
// weightedness (a store can be promoted unweighted → weighted, never
// demoted); sufWeights may be nil even on a weighted child, meaning the
// suffix weighs 1 per edge. The suffix slices are copied, not retained.
func (bs *BlockStore) extend(suffix []Edge, sufWeights []float64, weighted bool) (*BlockStore, error) {
	full := len(bs.refs)
	var tailEdges []Edge
	var tailW []float64
	if full > 0 && int(bs.refs[full-1].count) < bs.blockEdges {
		full--
		es, ws, err := bs.DecodeBlockInto(full, nil, nil)
		if err != nil {
			return nil, err
		}
		tailEdges, tailW = es, ws
	}
	bb := &BlockBuilder{blockEdges: bs.blockEdges, weighted: weighted, src: bs.src}
	bb.refs = append(bb.refs, bs.refs[:full]...)
	for i := 0; i < full; i++ {
		bb.numEdges += int(bs.refs[i].count)
	}
	bb.Append(tailEdges, tailW)
	bb.Append(suffix, sufWeights)
	return bb.Finish(), nil
}

// BlockBuilder accumulates edges into a BlockStore, sealing a block every
// blockEdges edges so peak heap during construction is one block of
// pending edges plus the encoded payloads. Append copies its inputs; the
// builder is single-goroutine.
type BlockBuilder struct {
	blockEdges int
	numEdges   int
	weighted   bool
	refs       []blockRef
	src        io.ReaderAt // carried through extend; nil for fresh builds
	buf        []Edge
	wbuf       []float64
	encScratch []byte // reused across seals; retained payloads are exact-size copies
}

// NewBlockBuilder returns a builder with the given block granularity
// (0 selects DefaultBlockEdges). The granularity is rounded up to a
// multiple of 64 so the owning graph's tombstone bitset words never
// straddle a block boundary.
func NewBlockBuilder(blockEdges int) *BlockBuilder {
	if blockEdges <= 0 {
		blockEdges = DefaultBlockEdges
	}
	blockEdges = (blockEdges + 63) &^ 63
	return &BlockBuilder{blockEdges: blockEdges}
}

// Append adds a batch of edges with optional aligned weights (nil = each
// edge weighs 1). The first non-nil weights promotes the whole store to
// weighted: blocks sealed before the promotion keep no sidecar and decode
// as implicit ones, matching the dense tier's weight-promotion semantics.
func (bb *BlockBuilder) Append(edges []Edge, weights []float64) {
	if len(edges) == 0 {
		return
	}
	if weights != nil && !bb.weighted {
		bb.weighted = true
		if len(bb.buf) > 0 && bb.wbuf == nil {
			bb.wbuf = make([]float64, len(bb.buf), bb.blockEdges)
			for i := range bb.wbuf {
				bb.wbuf[i] = 1
			}
		}
	}
	for len(edges) > 0 {
		room := bb.blockEdges - len(bb.buf)
		n := len(edges)
		if n > room {
			n = room
		}
		bb.buf = append(bb.buf, edges[:n]...)
		if bb.weighted && (bb.wbuf != nil || weights != nil) {
			if bb.wbuf == nil {
				bb.wbuf = make([]float64, 0, bb.blockEdges)
			}
			if weights != nil {
				bb.wbuf = append(bb.wbuf, weights[:n]...)
				weights = weights[n:]
			} else {
				for i := 0; i < n; i++ {
					bb.wbuf = append(bb.wbuf, 1)
				}
			}
		}
		edges = edges[n:]
		if len(bb.buf) == bb.blockEdges {
			bb.seal()
		}
	}
}

// seal encodes the pending buffer as one block. The varint encoder runs
// over a scratch buffer reused across seals; only an exact-size copy is
// retained, so a long build allocates the payload bytes it keeps and
// nothing more (no append-growth slack, no per-block encoder garbage).
func (bb *BlockBuilder) seal() {
	if len(bb.buf) == 0 {
		return
	}
	bb.encScratch = EncodeEdges(bb.encScratch[:0], bb.buf)
	enc := make([]byte, len(bb.encScratch))
	copy(enc, bb.encScratch)
	var wenc []byte
	if bb.weighted && bb.wbuf != nil && !allOnes(bb.wbuf) {
		wenc = encodeWeightSidecar(bb.wbuf)
	}
	bb.refs = append(bb.refs, blockRef{count: int32(len(bb.buf)), enc: enc, wenc: wenc})
	bb.numEdges += len(bb.buf)
	bb.buf = bb.buf[:0]
	if bb.wbuf != nil {
		bb.wbuf = bb.wbuf[:0]
	}
}

// Finish seals any pending edges and returns the immutable store. The
// builder must not be used afterwards.
func (bb *BlockBuilder) Finish() *BlockStore {
	bb.seal()
	return &BlockStore{
		blockEdges: bb.blockEdges,
		numEdges:   bb.numEdges,
		weighted:   bb.weighted,
		refs:       bb.refs,
		src:        bb.src,
	}
}

// BlockIndexEntry locates one block inside a backing file, as recorded by
// the on-disk block-graph format: byte extents and CRC-32 (IEEE) checksums
// for the encoded edges and the optional weight sidecar (WLen 0 = the
// block's weights are implicitly all ones).
type BlockIndexEntry struct {
	Count uint32
	Off   uint64
	Len   uint32
	CRC   uint32
	WOff  uint64
	WLen  uint32
	WCRC  uint32
}

// OpenBlocks assembles a file-backed store over src from a decoded block
// index. No edge payload is read here — blocks decode lazily, with their
// CRCs checked on first touch — so opening a store is O(blocks) regardless
// of edge count. The index geometry is validated: every block but the last
// must hold exactly blockEdges edges (a multiple of 64) and extents must
// be non-empty.
func OpenBlocks(src io.ReaderAt, blockEdges int, weighted bool, index []BlockIndexEntry) (*BlockStore, error) {
	if blockEdges <= 0 || blockEdges%64 != 0 {
		return nil, fmt.Errorf("graph: block size %d is not a positive multiple of 64", blockEdges)
	}
	bs := &BlockStore{blockEdges: blockEdges, weighted: weighted, src: src}
	for i, ent := range index {
		if ent.Count == 0 || int(ent.Count) > blockEdges {
			return nil, fmt.Errorf("graph: block %d holds %d edges for block size %d", i, ent.Count, blockEdges)
		}
		if i < len(index)-1 && int(ent.Count) != blockEdges {
			return nil, fmt.Errorf("graph: non-final block %d holds %d edges, want %d", i, ent.Count, blockEdges)
		}
		if ent.Len == 0 {
			return nil, fmt.Errorf("graph: block %d has empty edge payload", i)
		}
		if !weighted && ent.WLen != 0 {
			return nil, fmt.Errorf("graph: unweighted store has weight sidecar at block %d", i)
		}
		if ent.WLen != 0 && int(ent.WLen) != int(ent.Count)*8 {
			return nil, fmt.Errorf("graph: block %d weight sidecar is %d bytes for %d edges", i, ent.WLen, ent.Count)
		}
		bs.refs = append(bs.refs, blockRef{
			count:   int32(ent.Count),
			off:     int64(ent.Off),
			encLen:  ent.Len,
			crc:     ent.CRC,
			woff:    int64(ent.WOff),
			wencLen: ent.WLen,
			wcrc:    ent.WCRC,
		})
		bs.numEdges += int(ent.Count)
	}
	return bs, nil
}

// allOnes reports whether every weight is exactly 1 (such a sidecar is
// omitted: implicit ones decode bit-identically).
func allOnes(w []float64) bool {
	for _, x := range w {
		if x != 1 {
			return false
		}
	}
	return true
}

// encodeWeightSidecar packs weights as raw little-endian float64s.
func encodeWeightSidecar(w []float64) []byte {
	out := make([]byte, len(w)*8)
	for i, x := range w {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// decodeWeightSidecarInto unpacks a weight sidecar into dst (grown as
// needed).
func decodeWeightSidecarInto(data []byte, dst []float64) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("graph: weight sidecar length %d is not a multiple of 8", len(data))
	}
	n := len(data) / 8
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return dst, nil
}
