package graph

import (
	"testing"
	"testing/quick"
)

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	sub := g.InducedSubgraph(func(v VertexID) bool { return v <= 2 })
	if sub.NumEdges() != 2 { // (0,1) and (1,2)
		t.Fatalf("edges = %d, want 2", sub.NumEdges())
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("vertices = %d, want 3", sub.NumVertices())
	}
}

func TestGiantComponent(t *testing.T) {
	g := FromEdges([]Edge{
		{0, 1}, {1, 2}, {2, 0}, // triangle: 3 vertices
		{10, 11}, // pair
		{20, 21}, // pair
	})
	giant, frac := g.GiantComponent()
	if giant.NumVertices() != 3 {
		t.Fatalf("giant vertices = %d, want 3", giant.NumVertices())
	}
	if frac != 3.0/7 {
		t.Fatalf("fraction = %g, want %g", frac, 3.0/7)
	}
	if _, count := giant.ConnectedComponents(); count != 1 {
		t.Fatalf("giant has %d components", count)
	}
}

func TestGiantComponentEmpty(t *testing.T) {
	giant, frac := New(0).GiantComponent()
	if giant.NumVertices() != 0 || frac != 0 {
		t.Fatal("empty graph should give empty giant")
	}
}

func TestGiantComponentIsSubset(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40, 100)
		giant, frac := g.GiantComponent()
		if giant.NumVertices() > g.NumVertices() || giant.NumEdges() > g.NumEdges() {
			return false
		}
		return frac > 0 && frac <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeStats(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {0, 2}, {0, 3}, {1, 0}})
	st := g.Degrees()
	if st.MaxOut != 3 || st.MaxIn != 1 {
		t.Fatalf("max out=%d in=%d", st.MaxOut, st.MaxIn)
	}
	if st.MeanOut != 1 || st.MeanIn != 1 {
		t.Fatalf("mean out=%g in=%g", st.MeanOut, st.MeanIn)
	}
	if st.ZeroOut != 2 { // vertices 2 and 3
		t.Fatalf("zeroOut = %d, want 2", st.ZeroOut)
	}
	if st.ZeroIn != 0 {
		t.Fatalf("zeroIn = %d, want 0", st.ZeroIn)
	}
	if len(st.UndirectedDegrees) != 4 {
		t.Fatalf("undirected degrees = %d entries", len(st.UndirectedDegrees))
	}
	i0, _ := g.Index(0)
	if st.UndirectedDegrees[i0] != 3 {
		t.Fatalf("undirected degree of 0 = %d, want 3", st.UndirectedDegrees[i0])
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	st := New(0).Degrees()
	if st.MeanOut != 0 || st.MaxOut != 0 {
		t.Fatal("empty graph degree stats should be zero")
	}
}
