package graph

import (
	"testing"
	"testing/quick"

	"cutfit/internal/rng"
)

// tri returns a 3-cycle 0->1->2->0.
func tri() *Graph {
	return FromEdges([]Edge{{0, 1}, {1, 2}, {2, 0}})
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph reports V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestAddEdgeAndCounts(t *testing.T) {
	g := New(4)
	g.AddEdge(5, 9)
	g.AddEdge(9, 5)
	g.AddEdge(5, 7)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
}

func TestVerticesSortedUnique(t *testing.T) {
	g := FromEdges([]Edge{{10, 3}, {3, 10}, {7, 10}, {3, 3}})
	v := g.Vertices()
	want := []VertexID{3, 7, 10}
	if len(v) != len(want) {
		t.Fatalf("Vertices = %v, want %v", v, want)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vertices = %v, want %v", v, want)
		}
	}
}

func TestIndexLookup(t *testing.T) {
	g := FromEdges([]Edge{{10, 3}, {7, 10}})
	if i, ok := g.Index(7); !ok || i != 1 {
		t.Fatalf("Index(7) = %d,%v want 1,true", i, ok)
	}
	if _, ok := g.Index(99); ok {
		t.Fatal("Index(99) should not exist")
	}
}

func TestDegrees(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 2}})
	if d := g.OutDegree(0); d != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.InDegree(2); d != 3 {
		t.Fatalf("InDegree(2) = %d, want 3", d)
	}
	if d := g.InDegree(0); d != 0 {
		t.Fatalf("InDegree(0) = %d, want 0", d)
	}
	if d := g.OutDegree(42); d != 0 {
		t.Fatalf("OutDegree(missing) = %d, want 0", d)
	}
}

func TestDegreeSumsEqualEdges(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 50, 200)
		var in, out int
		for _, d := range g.InDegrees() {
			in += int(d)
		}
		for _, d := range g.OutDegrees() {
			out += int(d)
		}
		return in == g.NumEdges() && out == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReverse(t *testing.T) {
	g := tri()
	r := g.Reverse()
	if r.NumEdges() != 3 {
		t.Fatalf("reverse edges = %d", r.NumEdges())
	}
	if r.Edges()[0] != (Edge{1, 0}) {
		t.Fatalf("reverse edge[0] = %v", r.Edges()[0])
	}
	if g.OutDegree(0) != r.InDegree(0) {
		t.Fatal("reverse should swap degrees")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := tri()
	c := g.Clone()
	c.AddEdge(9, 9)
	if g.NumEdges() != 3 || c.NumEdges() != 4 {
		t.Fatalf("clone not independent: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
}

func TestValidateRejectsNegativeIDs(t *testing.T) {
	g := FromEdges([]Edge{{-1, 2}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for negative vertex ID")
	}
}

func TestInvalidationOnMutation(t *testing.T) {
	g := tri()
	if g.NumVertices() != 3 {
		t.Fatal("setup")
	}
	g.AddEdge(10, 11)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices after mutation = %d, want 5", g.NumVertices())
	}
}

func TestOutNeighborsSorted(t *testing.T) {
	g := FromEdges([]Edge{{0, 3}, {0, 1}, {0, 2}, {1, 0}})
	i, _ := g.Index(0)
	nb := g.OutNeighbors(i)
	for j := 1; j < len(nb); j++ {
		if nb[j-1] > nb[j] {
			t.Fatalf("OutNeighbors not sorted: %v", nb)
		}
	}
	if len(nb) != 3 {
		t.Fatalf("OutNeighbors(0) len = %d, want 3", len(nb))
	}
}

func TestUndirectedNeighborsDedupNoLoops(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 0}, {0, 1}, {0, 0}})
	i, _ := g.Index(0)
	nb := g.UndirectedNeighbors(i)
	if len(nb) != 1 {
		t.Fatalf("UndirectedNeighbors(0) = %v, want exactly [1]", nb)
	}
}

func TestStringSummary(t *testing.T) {
	if s := tri().String(); s != "Graph{V=3, E=3}" {
		t.Fatalf("String() = %q", s)
	}
}

// randomGraph builds a random directed graph for property tests.
func randomGraph(seed uint64, maxV, maxE int) *Graph {
	r := rng.New(seed)
	nv := 2 + r.Intn(maxV)
	ne := 1 + r.Intn(maxE)
	edges := make([]Edge, ne)
	for i := range edges {
		edges[i] = Edge{
			Src: VertexID(r.Intn(nv)),
			Dst: VertexID(r.Intn(nv)),
		}
	}
	return FromEdges(edges)
}
