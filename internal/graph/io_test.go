package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {2, 0}, {5, 5}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdges(g, back) {
		t.Fatalf("round trip mismatch: %v vs %v", g.Edges(), back.Edges())
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# header\n% other comment\n\n1 2\n3\t4\n  5   6  \n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",        // missing destination
		"a b\n",      // non-numeric source
		"1 b\n",      // non-numeric destination
		"1 2 x\na\n", // bad later line
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40, 150)
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return sameEdges(g, back)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := New(0)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", back.NumEdges())
	}
}

func sameEdges(a, b *Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}
