package graph

import (
	"testing"
	"testing/quick"
)

func TestSymmetryPct(t *testing.T) {
	tests := []struct {
		name  string
		edges []Edge
		want  float64
	}{
		{"empty", nil, 100},
		{"fully-symmetric", []Edge{{0, 1}, {1, 0}}, 100},
		{"asymmetric", []Edge{{0, 1}, {1, 2}}, 0},
		{"half", []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 3}}, 50},
		{"self-loop", []Edge{{0, 0}}, 100},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := FromEdges(tc.edges).SymmetryPct(); got != tc.want {
				t.Fatalf("SymmetryPct = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestZeroDegreePct(t *testing.T) {
	// 0 -> 1 -> 2: vertex 0 has zero in, vertex 2 has zero out.
	g := FromEdges([]Edge{{0, 1}, {1, 2}})
	zi, zo := g.ZeroDegreePct()
	if zi < 33.2 || zi > 33.4 {
		t.Fatalf("zeroIn = %g, want 33.33", zi)
	}
	if zo < 33.2 || zo > 33.4 {
		t.Fatalf("zeroOut = %g, want 33.33", zo)
	}
}

func TestTrianglesKnownShapes(t *testing.T) {
	tests := []struct {
		name  string
		edges []Edge
		total int64
	}{
		{"triangle", []Edge{{0, 1}, {1, 2}, {2, 0}}, 1},
		{"triangle-bidirected", []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2}}, 1},
		{"square-no-diag", []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0},
		{"k4", []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4},
		{"path", []Edge{{0, 1}, {1, 2}, {2, 3}}, 0},
		{"two-triangles-shared-edge", []Edge{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 2}}, 2},
		{"self-loops-ignored", []Edge{{0, 0}, {0, 1}, {1, 2}, {2, 0}}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := FromEdges(tc.edges)
			if got := g.TotalTriangles(); got != tc.total {
				t.Fatalf("TotalTriangles = %d, want %d", got, tc.total)
			}
		})
	}
}

func TestTrianglesPerVertexK4(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	per := g.TrianglesPerVertex()
	for i, c := range per {
		if c != 3 {
			t.Fatalf("K4 vertex %d: %d triangles, want 3", i, c)
		}
	}
}

// bruteTriangles counts triangles by enumerating all vertex triples over
// the undirected projection.
func bruteTriangles(g *Graph) int64 {
	n := g.NumVertices()
	adj := make([]map[int32]bool, n)
	for i := int32(0); i < int32(n); i++ {
		adj[i] = map[int32]bool{}
		for _, w := range g.UndirectedNeighbors(i) {
			adj[i][w] = true
		}
	}
	var total int64
	for a := int32(0); a < int32(n); a++ {
		for b := a + 1; b < int32(n); b++ {
			if !adj[a][b] {
				continue
			}
			for c := b + 1; c < int32(n); c++ {
				if adj[a][c] && adj[b][c] {
					total++
				}
			}
		}
	}
	return total
}

func TestTrianglesAgainstBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 25, 80)
		return g.TotalTriangles() == bruteTriangles(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} labeled 0 and {10,11} labeled 10.
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {10, 11}})
	labels, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	idx := func(v VertexID) int32 { i, _ := g.Index(v); return i }
	for _, v := range []VertexID{0, 1, 2} {
		if labels[idx(v)] != 0 {
			t.Fatalf("vertex %d labeled %d, want 0", v, labels[idx(v)])
		}
	}
	for _, v := range []VertexID{10, 11} {
		if labels[idx(v)] != 10 {
			t.Fatalf("vertex %d labeled %d, want 10", v, labels[idx(v)])
		}
	}
}

func TestConnectedComponentsDirectionIgnored(t *testing.T) {
	g := FromEdges([]Edge{{2, 1}, {0, 1}})
	_, count := g.ConnectedComponents()
	if count != 1 {
		t.Fatalf("components = %d, want 1 (weakly connected)", count)
	}
}

func TestCountSCCs(t *testing.T) {
	tests := []struct {
		name  string
		edges []Edge
		want  int
	}{
		{"cycle", []Edge{{0, 1}, {1, 2}, {2, 0}}, 1},
		{"path", []Edge{{0, 1}, {1, 2}}, 3},
		{"two-cycles", []Edge{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}}, 2},
		{"self-loop", []Edge{{0, 0}, {0, 1}}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := FromEdges(tc.edges).CountSCCs(); got != tc.want {
				t.Fatalf("CountSCCs = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 100k-long chain would overflow a recursive Tarjan's stack.
	const n = 100_000
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{VertexID(i), VertexID(i + 1)}
	}
	if got := FromEdges(edges).CountSCCs(); got != n {
		t.Fatalf("chain SCCs = %d, want %d", got, n)
	}
}

func TestBFSAndDiameter(t *testing.T) {
	// Path 0-1-2-3-4: diameter 4.
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if d := g.ExactDiameter(); d != 4 {
		t.Fatalf("ExactDiameter = %d, want 4", d)
	}
	// Double sweep is exact on trees.
	if d := g.ApproxDiameter(4, 1); d != 4 {
		t.Fatalf("ApproxDiameter = %d, want 4", d)
	}
}

func TestExactDiameterDisconnected(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {2, 3}})
	if d := g.ExactDiameter(); d != -1 {
		t.Fatalf("ExactDiameter disconnected = %d, want -1", d)
	}
}

func TestApproxDiameterLowerBoundsExact(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 20, 60)
		if _, count := g.ConnectedComponents(); count != 1 {
			return true // property only defined for connected graphs
		}
		return g.ApproxDiameter(4, seed) <= g.ExactDiameter()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCharacterize(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 0}, {1, 2}, {2, 0}, {10, 11}})
	s := g.Characterize(4, 1)
	if s.Vertices != 5 || s.Edges != 5 {
		t.Fatalf("V=%d E=%d", s.Vertices, s.Edges)
	}
	if s.Components != 2 || !s.DiameterInfinite {
		t.Fatalf("components=%d infinite=%v", s.Components, s.DiameterInfinite)
	}
	if s.Triangles != 1 {
		t.Fatalf("triangles=%d, want 1", s.Triangles)
	}
}

func TestCharacterizeConnectedDiameter(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {2, 3}})
	s := g.Characterize(4, 1)
	if s.DiameterInfinite || s.Diameter != 3 {
		t.Fatalf("diameter=%d infinite=%v, want 3,false", s.Diameter, s.DiameterInfinite)
	}
}
