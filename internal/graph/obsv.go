package graph

import "cutfit/internal/obsv"

// Live metric series for the compressed block-edge tier, registered on
// the default registry at package init. Process-wide aggregates across
// every BlockStore in the process.
var (
	mBlockCacheHits = obsv.Default.Counter("cutfit_blockstore_cache_hits_total",
		"Random-access block lookups served by the decoded-block LRU cache.")
	mBlockCacheMisses = obsv.Default.Counter("cutfit_blockstore_cache_misses_total",
		"Random-access block lookups that had to decode the block's payload.")
	mScratchGets = obsv.Default.Counter("cutfit_blockstore_scratch_gets_total",
		"Payload scratch-buffer checkouts for file-backed block reads.")
	mScratchAllocs = obsv.Default.Counter("cutfit_blockstore_scratch_allocs_total",
		"Checkouts the pool could not serve from a recycled buffer (fresh allocations).")
)

// getPayloadScratch checks a read-buffer pair out of the pool, counting
// the checkout; the pool's New hook counts the allocations that missed,
// so gets - allocs = recycles.
func getPayloadScratch() *payloadScratch {
	mScratchGets.Inc()
	return payloadScratchPool.Get().(*payloadScratch)
}
