package graph

import (
	"cutfit/internal/rng"
)

// Stats is the structural characterization of a graph, matching the columns
// of Table 1 in the paper.
type Stats struct {
	Vertices    int     // distinct vertices
	Edges       int     // directed edges
	SymmetryPct float64 // percentage of edges that are reciprocated
	ZeroInPct   float64 // percentage of vertices with no incoming edges
	ZeroOutPct  float64 // percentage of vertices with no outgoing edges
	Triangles   int64   // total triangles in the undirected projection
	Components  int     // weakly connected components
	SCCs        int     // strongly connected components
	Diameter    int     // longest shortest path; see DiameterInfinite
	// DiameterInfinite is true when the graph has more than one weakly
	// connected component, in which case Diameter is meaningless and the
	// paper reports "∞".
	DiameterInfinite bool
}

// Characterize computes the full Table 1 statistics. diameterSamples bounds
// the BFS sweeps used by the diameter approximation (0 picks a default).
// It is deterministic for a given seed.
func (g *Graph) Characterize(diameterSamples int, seed uint64) Stats {
	s := Stats{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		SymmetryPct: g.SymmetryPct(),
	}
	zin, zout := g.ZeroDegreePct()
	s.ZeroInPct, s.ZeroOutPct = zin, zout
	s.Triangles = g.TotalTriangles()
	_, s.Components = g.ConnectedComponents()
	s.SCCs = g.CountSCCs()
	if s.Components > 1 {
		s.DiameterInfinite = true
	} else {
		s.Diameter = g.ApproxDiameter(diameterSamples, seed)
	}
	return s
}

// SymmetryPct returns the percentage (0–100) of directed edges (u,v) for
// which the reverse edge (v,u) also exists. Self loops count as symmetric.
// An empty graph reports 100.
func (g *Graph) SymmetryPct() float64 {
	if g.NumLiveEdges() == 0 {
		return 100
	}
	type pair struct{ a, b VertexID }
	set := make(map[pair]struct{}, g.NumEdges())
	g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			set[pair{e.Src, e.Dst}] = struct{}{}
		}
	})
	recip := 0
	g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			if _, ok := set[pair{e.Dst, e.Src}]; ok {
				recip++
			}
		}
	})
	return 100 * float64(recip) / float64(g.NumLiveEdges())
}

// ZeroDegreePct returns the percentages (0–100) of vertices with zero
// in-degree and zero out-degree respectively.
func (g *Graph) ZeroDegreePct() (zeroIn, zeroOut float64) {
	g.buildDegrees()
	n := len(g.verts)
	if n == 0 {
		return 0, 0
	}
	zi, zo := 0, 0
	for i := 0; i < n; i++ {
		if g.inDeg[i] == 0 {
			zi++
		}
		if g.outDeg[i] == 0 {
			zo++
		}
	}
	return 100 * float64(zi) / float64(n), 100 * float64(zo) / float64(n)
}

// TrianglesPerVertex returns, for each dense vertex index, the number of
// triangles through that vertex in the undirected projection (each triangle
// contributes 1 to each of its three corners). This matches the semantics
// of GraphX's TriangleCount.
func (g *Graph) TrianglesPerVertex() []int64 {
	c := g.undirCSR()
	n := g.NumVertices()
	counts := make([]int64, n)
	// Forward algorithm: process vertices in (degree, index) order; A(v)
	// holds the already-seen neighbors of v that precede it in the order.
	// Every triangle is found exactly once, at its last vertex in order.
	deg := make([]int32, n)
	for i := 0; i < n; i++ {
		deg[i] = int32(len(c.neighbors(int32(i))))
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Sort by (degree, index) ascending.
	sortInt32s(order, func(a, b int32) bool {
		if deg[a] != deg[b] {
			return deg[a] < deg[b]
		}
		return a < b
	})
	rank := make([]int32, n)
	for r, v := range order {
		rank[v] = int32(r)
	}
	// A(v): sorted-by-insertion list of preceding neighbors.
	a := make([][]int32, n)
	for _, v := range order {
		for _, w := range c.neighbors(v) {
			if rank[w] <= rank[v] {
				continue // only edges to later vertices
			}
			// Intersect A(v) and A(w): both are insertion-ordered by rank,
			// which is a consistent total order, so a merge works.
			av, aw := a[v], a[w]
			i, j := 0, 0
			for i < len(av) && j < len(aw) {
				ri, rj := rank[av[i]], rank[aw[j]]
				switch {
				case ri == rj:
					counts[v]++
					counts[w]++
					counts[av[i]]++
					i++
					j++
				case ri < rj:
					i++
				default:
					j++
				}
			}
			a[w] = append(a[w], v)
		}
	}
	return counts
}

// TotalTriangles returns the total number of triangles in the undirected
// projection of the graph.
func (g *Graph) TotalTriangles() int64 {
	per := g.TrianglesPerVertex()
	var sum int64
	for _, c := range per {
		sum += c
	}
	return sum / 3
}

// ConnectedComponents computes weakly connected components using union-find.
// It returns a label per dense vertex index — the minimum VertexID in the
// component, matching GraphX's convention — and the number of components.
func (g *Graph) ConnectedComponents() (labels []VertexID, count int) {
	g.buildVertexIndex()
	n := len(g.verts)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			union(g.denseIndexOf(e.Src), g.denseIndexOf(e.Dst))
		}
	})
	// Minimum vertex ID per root. Because verts is sorted and roots are
	// always the smaller index under our union rule, the root's own ID is
	// the minimum ID in the component.
	labels = make([]VertexID, n)
	roots := make(map[int32]struct{})
	for i := int32(0); i < int32(n); i++ {
		r := find(i)
		labels[i] = g.verts[r]
		roots[r] = struct{}{}
	}
	return labels, len(roots)
}

// CountSCCs returns the number of strongly connected components, using an
// iterative Tarjan algorithm (safe for deep graphs such as road networks).
func (g *Graph) CountSCCs() int {
	out := g.outCSR()
	n := g.NumVertices()
	const unvisited = -1
	indexOf := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var stack []int32
	var next int32
	count := 0

	type frame struct {
		v  int32
		ni int // next neighbor position to visit
	}
	var callStack []frame

	for start := int32(0); start < int32(n); start++ {
		if indexOf[start] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: start})
		indexOf[start] = next
		lowlink[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			nb := out.neighbors(f.v)
			advanced := false
			for f.ni < len(nb) {
				w := nb[f.ni]
				f.ni++
				if indexOf[w] == unvisited {
					indexOf[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && indexOf[w] < lowlink[f.v] {
					lowlink[f.v] = indexOf[w]
				}
			}
			if advanced {
				continue
			}
			// Done with f.v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == indexOf[v] {
				count++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					if w == v {
						break
					}
				}
			}
		}
	}
	return count
}

// BFSUndirected runs a breadth-first search from dense vertex index start on
// the undirected projection and returns the distance slice (-1 means
// unreachable) and the farthest reached vertex with its distance.
func (g *Graph) BFSUndirected(start int32) (dist []int32, far int32, ecc int32) {
	c := g.undirCSR()
	n := g.NumVertices()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 1024)
	dist[start] = 0
	queue = append(queue, start)
	far, ecc = start, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range c.neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				if dist[w] > ecc {
					ecc = dist[w]
					far = w
				}
				queue = append(queue, w)
			}
		}
	}
	return dist, far, ecc
}

// ExactDiameter computes the exact diameter of the undirected projection by
// running a BFS from every vertex. It is O(V·E) and intended for tests on
// small graphs; it returns -1 for a disconnected or empty graph.
func (g *Graph) ExactDiameter() int {
	n := g.NumVertices()
	if n == 0 {
		return -1
	}
	var diam int32
	for v := int32(0); v < int32(n); v++ {
		dist, _, ecc := g.BFSUndirected(v)
		for _, d := range dist {
			if d == -1 {
				return -1
			}
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return int(diam)
}

// ApproxDiameter estimates the diameter of the undirected projection using
// repeated double-sweep BFS from random starts. The result is a lower bound
// that is exact on trees and very tight on small-world graphs. samples <= 0
// selects a default of 8 sweeps. The estimate is deterministic for a seed.
func (g *Graph) ApproxDiameter(samples int, seed uint64) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if samples <= 0 {
		samples = 8
	}
	r := rng.New(seed)
	var best int32
	for s := 0; s < samples; s++ {
		start := int32(r.Intn(n))
		_, far, _ := g.BFSUndirected(start)
		_, _, ecc := g.BFSUndirected(far)
		if ecc > best {
			best = ecc
		}
	}
	return int(best)
}

// sortInt32s sorts xs with the provided less function. Local insertion/heap
// hybrid to avoid pulling interface-based sort into hot paths.
func sortInt32s(xs []int32, less func(a, b int32) bool) {
	// Simple bottom-up merge sort: stable, no recursion, O(n log n).
	n := len(xs)
	buf := make([]int32, n)
	for width := 1; width < n; width *= 2 {
		for i := 0; i < n; i += 2 * width {
			mid := i + width
			if mid > n {
				mid = n
			}
			end := i + 2*width
			if end > n {
				end = n
			}
			merge(xs, buf, i, mid, end, less)
		}
		copy(xs, buf[:n])
	}
}

func merge(src, dst []int32, lo, mid, hi int, less func(a, b int32) bool) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i < mid && (j >= hi || !less(src[j], src[i])):
			dst[k] = src[i]
			i++
		default:
			dst[k] = src[j]
			j++
		}
	}
}
