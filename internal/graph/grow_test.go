package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomEdges(seed int64, nv, ne int) []Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, ne)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(r.Intn(nv)), Dst: VertexID(r.Intn(nv))}
	}
	return edges
}

// checkViewsEqual asserts that g's derived views match a graph built from
// scratch over the same edge list.
func checkViewsEqual(t *testing.T, g *Graph) {
	t.Helper()
	fresh := FromEdges(append([]Edge(nil), g.Edges()...))
	if !reflect.DeepEqual(g.Vertices(), fresh.Vertices()) {
		t.Fatalf("vertex list differs from fresh build")
	}
	if !reflect.DeepEqual(g.OutDegrees(), fresh.OutDegrees()) || !reflect.DeepEqual(g.InDegrees(), fresh.InDegrees()) {
		t.Fatalf("degrees differ from fresh build")
	}
	gs, gd := g.EdgeEndpointIndices()
	fs, fd := fresh.EdgeEndpointIndices()
	if !reflect.DeepEqual(gs, fs) || !reflect.DeepEqual(gd, fd) {
		t.Fatalf("endpoint indices differ from fresh build")
	}
	for _, v := range g.Vertices() {
		gi, gok := g.Index(v)
		fi, fok := fresh.Index(v)
		if gi != fi || gok != fok {
			t.Fatalf("Index(%d) = (%d,%v), fresh (%d,%v)", v, gi, gok, fi, fok)
		}
	}
}

// TestGrowSeededDegreeLookups: per-vertex degree lookups go through the
// index map, which a Grow-seeded generation has not built even though its
// degree view is seeded — regression for the nil-map silent-zero bug.
func TestGrowSeededDegreeLookups(t *testing.T) {
	g := FromEdges([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	g.OutDegrees() // warm parent's degree view so Grow seeds the child's
	ng, _ := g.Grow([]Edge{{Src: 2, Dst: 3}})
	if got := ng.OutDegree(0); got != 2 {
		t.Fatalf("grown OutDegree(0) = %d, want 2", got)
	}
	if got := ng.InDegree(2); got != 2 {
		t.Fatalf("grown InDegree(2) = %d, want 2", got)
	}
}

func TestGrowSeedsViewsConsistently(t *testing.T) {
	cases := []struct {
		name  string
		base  []Edge
		delta []Edge
	}{
		{"append-only-new-high-ids", randomEdges(1, 50, 300), []Edge{{Src: 60, Dst: 61}, {Src: 61, Dst: 62}}},
		{"existing-vertices-only", randomEdges(2, 50, 300), randomEdges(3, 50, 40)},
		{"interleaved-new-ids", []Edge{{Src: 2, Dst: 10}, {Src: 10, Dst: 20}}, []Edge{{Src: 5, Dst: 15}, {Src: 0, Dst: 25}}},
		{"empty-base", nil, randomEdges(4, 20, 30)},
		{"empty-delta", randomEdges(5, 30, 100), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := FromEdges(append([]Edge(nil), tc.base...))
			// Warm every seedable view so Grow exercises the seeding paths.
			g.OutDegrees()
			g.EdgeEndpointIndices()
			ng, d := g.Grow(tc.delta)
			if ng.NumEdges() != len(tc.base)+len(tc.delta) {
				t.Fatalf("grown edge count %d, want %d", ng.NumEdges(), len(tc.base)+len(tc.delta))
			}
			if d.Old != g || d.New != ng || d.OldLen != len(tc.base) {
				t.Fatalf("delta bookkeeping wrong: %+v", d)
			}
			if len(tc.delta) == 0 {
				// An empty suffix is a no-op: no fresh generation, no new
				// version — the parent itself comes back.
				if ng != g || d.NewVersion != d.OldVersion {
					t.Fatalf("empty suffix minted a new generation: %+v", d)
				}
			} else if d.NewVersion == d.OldVersion || ng.Version() == 0 {
				t.Fatalf("grown graph version %d not distinct from parent %d", d.NewVersion, d.OldVersion)
			}
			checkViewsEqual(t, ng)
			// The parent must be untouched.
			if g.NumEdges() != len(tc.base) {
				t.Fatalf("parent mutated: %d edges", g.NumEdges())
			}
			checkViewsEqual(t, g)
		})
	}
}

func TestGrowColdParentViews(t *testing.T) {
	// Grow on a parent whose degree/endpoint views were never built must
	// leave them lazy on the child — and they must still come out right.
	g := FromEdges(randomEdges(6, 40, 200))
	ng, _ := g.Grow(randomEdges(7, 50, 30))
	checkViewsEqual(t, ng)
}

func TestRemapVertices(t *testing.T) {
	g := FromEdges([]Edge{{Src: 2, Dst: 10}, {Src: 10, Dst: 20}})
	oldVerts := g.Vertices()

	// Identity: appended IDs sort after the old maximum.
	ng, _ := g.Grow([]Edge{{Src: 30, Dst: 40}})
	remap, err := RemapVertices(oldVerts, ng)
	if err != nil || remap != nil {
		t.Fatalf("want identity remap, got %v, %v", remap, err)
	}

	// Shifted: an interleaving ID moves later dense indices up.
	ng2, _ := g.Grow([]Edge{{Src: 5, Dst: 10}})
	remap, err = RemapVertices(oldVerts, ng2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 2, 3} // 2->0, 10->2, 20->3 (5 took index 1)
	if !reflect.DeepEqual(remap, want) {
		t.Fatalf("remap = %v, want %v", remap, want)
	}

	// A vertex missing from the target is an error.
	if _, err := RemapVertices([]VertexID{2, 3}, ng); err == nil {
		t.Fatal("missing vertex should error")
	}
}

func TestCloneReverseFreshVersions(t *testing.T) {
	g := FromEdges([]Edge{{Src: 0, Dst: 1}})
	if g.Version() != 0 {
		t.Fatalf("fresh graph version = %d, want 0", g.Version())
	}
	c1, c2, rv := g.Clone(), g.Clone(), g.Reverse()
	seen := map[uint64]string{g.Version(): "parent"}
	for name, d := range map[string]*Graph{"clone1": c1, "clone2": c2, "reverse": rv} {
		v := d.Version()
		if v == 0 {
			t.Errorf("%s version is 0; derived graphs need a fresh nonzero version", name)
		}
		if prev, dup := seen[v]; dup {
			t.Errorf("%s shares version %d with %s", name, v, prev)
		}
		seen[v] = name
	}
}
