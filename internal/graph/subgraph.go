package graph

// InducedSubgraph returns the subgraph induced by keep: every live edge
// whose endpoints both satisfy keep(v). Vertex IDs (and edge weights, on a
// weighted graph) are preserved; tombstoned edges are dropped.
func (g *Graph) InducedSubgraph(keep func(v VertexID) bool) *Graph {
	ne := g.NumEdges()
	out := make([]Edge, 0, ne/2)
	var w []float64
	if g.Weighted() {
		w = make([]float64, 0, ne/2)
	}
	g.mustEdgeBlocks(func(start int, edges []Edge, weights []float64) {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			if keep(e.Src) && keep(e.Dst) {
				out = append(out, e)
				if w != nil {
					w = append(w, weights[i])
				}
			}
		}
	})
	sub := FromEdges(out)
	sub.weights = w
	return sub
}

// GiantComponent returns the subgraph induced by the largest weakly
// connected component, along with the fraction of vertices it contains.
// An empty graph returns an empty graph and fraction 0.
func (g *Graph) GiantComponent() (*Graph, float64) {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return New(0), 0
	}
	size := make(map[VertexID]int, count)
	for _, l := range labels {
		size[l]++
	}
	var giant VertexID
	best := -1
	for l, n := range size {
		if n > best || (n == best && l < giant) {
			giant, best = l, n
		}
	}
	inGiant := make(map[VertexID]bool, best)
	for i, l := range labels {
		if l == giant {
			inGiant[g.verts[i]] = true
		}
	}
	sub := g.InducedSubgraph(func(v VertexID) bool { return inGiant[v] })
	return sub, float64(best) / float64(len(labels))
}

// DegreeStats summarizes the degree distribution of the graph.
type DegreeStats struct {
	MeanOut, MeanIn   float64
	MaxOut, MaxIn     int32
	MedianOut         int32
	ZeroIn, ZeroOut   int
	UndirectedDegrees []int32 // per dense vertex, simple undirected degree
}

// Degrees computes summary degree statistics.
func (g *Graph) Degrees() DegreeStats {
	g.buildDegrees()
	n := len(g.verts)
	st := DegreeStats{}
	if n == 0 {
		return st
	}
	var sumOut, sumIn int64
	outs := make([]int32, n)
	for i := 0; i < n; i++ {
		sumOut += int64(g.outDeg[i])
		sumIn += int64(g.inDeg[i])
		if g.outDeg[i] > st.MaxOut {
			st.MaxOut = g.outDeg[i]
		}
		if g.inDeg[i] > st.MaxIn {
			st.MaxIn = g.inDeg[i]
		}
		if g.outDeg[i] == 0 {
			st.ZeroOut++
		}
		if g.inDeg[i] == 0 {
			st.ZeroIn++
		}
		outs[i] = g.outDeg[i]
	}
	st.MeanOut = float64(sumOut) / float64(n)
	st.MeanIn = float64(sumIn) / float64(n)
	sortInt32s(outs, func(a, b int32) bool { return a < b })
	st.MedianOut = outs[n/2]
	st.UndirectedDegrees = make([]int32, n)
	for i := int32(0); i < int32(n); i++ {
		st.UndirectedDegrees[i] = int32(len(g.UndirectedNeighbors(i)))
	}
	return st
}
