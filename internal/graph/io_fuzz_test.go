package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList guards the text-ingest path the benchmarks and CLI
// commands depend on: arbitrary input must never panic, and anything the
// parser accepts must survive a write/reparse round trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"1 2\n3 4\n",
		"# cutfit edge list: 2 vertices, 1 edges\n1\t2\n",
		"% matrix-market style comment\r\n5 6\r\n7 8\r\n",
		"",
		"\n\n\n",
		"   \t  \n",
		"1 2 weighted-extra-field 0.5\n",
		"9223372036854775807 0\n",  // max int64
		"-42 -7\n",                 // negative IDs parse; Validate rejects later
		"99999999999999999999 1\n", // overflows int64
		"a b\n",                    // non-numeric
		"1\n",                      // one field
		"0x10 7\n",                 // hex not accepted
		"3.14 1\n",                 // float not accepted
		"7 8\n# trailing comment",
		"\ufeff1 2\n", // BOM glued to first token
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		// Accepted input must round-trip: write the parsed graph and parse
		// it back to the identical edge list.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparsing written graph: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d != %d", g2.NumEdges(), g.NumEdges())
		}
		for i, e := range g.Edges() {
			if g2.Edges()[i] != e {
				t.Fatalf("round trip changed edge %d: %v != %v", i, g2.Edges()[i], e)
			}
		}
		if g2.NumVertices() != g.NumVertices() {
			t.Fatalf("round trip changed vertex count: %d != %d", g2.NumVertices(), g.NumVertices())
		}
	})
}
