package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in SNAP-style text format: one "src dst"
// pair per line, tab separated, with a leading comment header.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# cutfit edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a SNAP-style text edge list: lines of "src dst"
// separated by whitespace; lines starting with '#' or '%' are comments.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	g := New(1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"src dst\", got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source vertex %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination vertex %q: %w", lineNo, fields[1], err)
		}
		g.edges = append(g.edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	g.invalidate()
	return g, nil
}

// Binary format: magic, edge count, then per edge the src delta (zig-zag
// varint from the previous src) and dst (zig-zag varint from src). Sorting
// by src before writing makes the deltas small; the format does not require
// sorted input, it only compresses better with it.
const binaryMagic = "CFG1"

// WriteBinary writes a compact binary encoding of the edge list.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(g.edges)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var prevSrc int64
	for _, e := range g.edges {
		n = binary.PutVarint(buf[:], int64(e.Src)-prevSrc)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutVarint(buf[:], int64(e.Dst)-int64(e.Src))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevSrc = int64(e.Src)
	}
	return bw.Flush()
}

// ReadBinary reads the binary encoding produced by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %q (want %q)", magic, binaryMagic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	const maxEdges = 1 << 34
	if count > maxEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds sanity limit", count)
	}
	edges := make([]Edge, 0, count)
	var prevSrc int64
	for i := uint64(0); i < count; i++ {
		ds, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: reading src: %w", i, err)
		}
		src := prevSrc + ds
		dd, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: reading dst: %w", i, err)
		}
		dst := src + dd
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
		prevSrc = src
	}
	return FromEdges(edges), nil
}
