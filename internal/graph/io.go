package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in SNAP-style text format: one "src dst"
// pair per live edge, tab separated, with a leading comment header.
// Tombstoned edges are not written (the text format has no liveness
// column); a weighted graph writes a third tab-separated weight field.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# cutfit edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumLiveEdges()); err != nil {
		return err
	}
	weighted := g.Weighted()
	if err := g.edgeBlocks(func(start int, edges []Edge, weights []float64) error {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			var err error
			if weighted {
				_, err = fmt.Fprintf(bw, "%d\t%d\t%g\n", e.Src, e.Dst, weights[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// streamBatchEdges is the batch granularity of StreamEdgeList: large
// enough to amortize the callback, small enough that the parser's working
// set stays a few hundred KiB regardless of input size.
const streamBatchEdges = 8192

// StreamEdgeList parses a SNAP-style text edge list (the ReadEdgeList
// format) and delivers the edges to fn in batches instead of materializing
// them: fn(edges, weights) where weights is nil until the stream encounters
// its first weighted line and aligned with edges afterwards (weight-less
// lines weigh 1). Batches delivered before the first weighted line
// implicitly weigh 1 per edge; a consumer building a weighted artifact must
// backfill ones for them, exactly as the dense tier's weight promotion
// does. The slices are reused between batches — fn must not retain them.
func StreamEdgeList(r io.Reader, fn func(edges []Edge, weights []float64) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	edges := make([]Edge, 0, streamBatchEdges)
	var weights []float64
	flush := func() error {
		if len(edges) == 0 {
			return nil
		}
		err := fn(edges, weights)
		edges = edges[:0]
		if weights != nil {
			weights = weights[:0]
		}
		return err
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: expected \"src dst\", got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad source vertex %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad destination vertex %q: %w", lineNo, fields[1], err)
		}
		if len(fields) >= 3 {
			wt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return fmt.Errorf("graph: line %d: bad edge weight %q: %w", lineNo, fields[2], err)
			}
			if !(wt > 0) || math.IsInf(wt, 1) {
				return fmt.Errorf("graph: line %d: edge weight %g must be finite and positive", lineNo, wt)
			}
			if weights == nil {
				weights = make([]float64, len(edges), streamBatchEdges)
				for i := range weights {
					weights[i] = 1
				}
			}
			weights = append(weights, wt)
		} else if weights != nil {
			weights = append(weights, 1)
		}
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
		if len(edges) == streamBatchEdges {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return flush()
}

// ReadEdgeList parses a SNAP-style text edge list: lines of "src dst"
// separated by whitespace, with an optional third field holding a
// positive float64 edge weight; lines starting with '#' or '%' are
// comments. If any line carries a weight the graph is weighted and
// weight-less lines default to 1. It streams through StreamEdgeList, so
// the parser never holds more than one batch beyond the graph itself.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New(1024)
	if err := StreamEdgeList(r, func(edges []Edge, weights []float64) error {
		if weights != nil && g.weights == nil {
			g.weights = make([]float64, len(g.edges), cap(g.edges))
			for i := range g.weights {
				g.weights[i] = 1
			}
		}
		g.edges = append(g.edges, edges...)
		if g.weights != nil {
			if weights != nil {
				g.weights = append(g.weights, weights...)
			} else {
				for range edges {
					g.weights = append(g.weights, 1)
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	g.invalidate()
	return g, nil
}

// ReadEdgeListBlocks parses the ReadEdgeList text format directly into a
// block-backed graph: batches stream from the parser into a BlockBuilder,
// so peak heap is one pending block plus the compressed payloads — the
// dense []Edge is never materialized. blockEdges 0 selects
// DefaultBlockEdges.
func ReadEdgeListBlocks(r io.Reader, blockEdges int) (*Graph, error) {
	bb := NewBlockBuilder(blockEdges)
	if err := StreamEdgeList(r, func(edges []Edge, weights []float64) error {
		bb.Append(edges, weights)
		return nil
	}); err != nil {
		return nil, err
	}
	return FromBlocks(bb.Finish()), nil
}

// Binary edge payload: edge count (uvarint), then per edge the src delta
// (zig-zag varint from the previous src) and dst (zig-zag varint from src).
// Sorting by src before writing makes the deltas small; the format does not
// require sorted input, it only compresses better with it.
//
// The payload is shared by two containers: the legacy bare WriteBinary /
// ReadBinary stream below (magic "CFG1" + payload) and the versioned,
// CRC-checked snapshot container in internal/snap, which supersedes it for
// anything durable.
const binaryMagic = "CFG1"

// EncodeEdges appends the delta-varint binary encoding of edges to dst and
// returns the extended slice — the same payload WriteBinary streams,
// materialized for the internal/snap graph section (whose container needs
// section bytes up front).
func EncodeEdges(dst []byte, edges []Edge) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(edges)))
	dst = append(dst, buf[:n]...)
	var prevSrc int64
	for _, e := range edges {
		n = binary.PutVarint(buf[:], int64(e.Src)-prevSrc)
		dst = append(dst, buf[:n]...)
		n = binary.PutVarint(buf[:], int64(e.Dst)-int64(e.Src))
		dst = append(dst, buf[:n]...)
		prevSrc = int64(e.Src)
	}
	return dst
}

// DecodeEdges parses an EncodeEdges payload, requiring that it is consumed
// exactly (no trailing bytes). The declared edge count is validated against
// the payload size before any allocation, so a forged count can never force
// an allocation larger than the input itself.
func DecodeEdges(data []byte) ([]Edge, error) {
	return decodeEdgesInto(data, nil)
}

// decodeEdgesInto is DecodeEdges decoding into dst's capacity when it
// suffices (the block tier's scan path reuses one scratch slice across
// every block this way; pass nil to allocate fresh).
func decodeEdgesInto(data []byte, dst []Edge) ([]Edge, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("graph: reading edge count: malformed varint")
	}
	data = data[n:]
	// Every edge costs at least two varint bytes.
	if count > uint64(len(data))/2+1 {
		return nil, fmt.Errorf("graph: edge count %d exceeds payload size", count)
	}
	edges := dst[:0]
	if uint64(cap(edges)) < count {
		edges = make([]Edge, 0, count)
	}
	var prevSrc int64
	for i := uint64(0); i < count; i++ {
		ds, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("graph: edge %d: reading src: malformed varint", i)
		}
		data = data[n:]
		src := prevSrc + ds
		dd, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("graph: edge %d: reading dst: malformed varint", i)
		}
		data = data[n:]
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(src + dd)})
		prevSrc = src
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("graph: %d trailing bytes after edge payload", len(data))
	}
	return edges, nil
}

// WriteBinary writes a compact binary encoding of the edge list: the magic
// followed by the EncodeEdges payload, streamed through a buffered writer
// so arbitrarily large graphs never materialize the encoding in memory.
// The snapshot container in internal/snap supersedes this bare format for
// durable artifacts (same payload, plus versioning and CRCs).
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(g.NumEdges()))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var prevSrc int64
	if err := g.edgeBlocks(func(_ int, edges []Edge, _ []float64) error {
		for _, e := range edges {
			n = binary.PutVarint(buf[:], int64(e.Src)-prevSrc)
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			n = binary.PutVarint(buf[:], int64(e.Dst)-int64(e.Src))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			prevSrc = int64(e.Src)
		}
		return nil
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads the binary encoding produced by WriteBinary, streaming
// (it never holds the raw bytes and the decoded edges at once — snapshot
// restores, which have the payload in memory anyway, use DecodeEdges).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %q (want %q)", magic, binaryMagic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	const maxEdges = 1 << 34
	if count > maxEdges {
		return nil, fmt.Errorf("graph: edge count %d exceeds sanity limit", count)
	}
	// Cap the up-front allocation: a forged header must not commit memory
	// the stream cannot back; append grows normally past the cap.
	hint := count
	if hint > 1<<20 {
		hint = 1 << 20
	}
	edges := make([]Edge, 0, hint)
	var prevSrc int64
	for i := uint64(0); i < count; i++ {
		ds, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: reading src: %w", i, err)
		}
		src := prevSrc + ds
		dd, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: reading dst: %w", i, err)
		}
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(src + dd)})
		prevSrc = src
	}
	return FromEdges(edges), nil
}

// FromEdgesAndVertices restores a graph from a decoded edge list plus its
// sorted unique vertex list, as persisted by the snapshot codec. The vertex
// list is validated against the edges — strictly ascending, non-negative,
// every edge endpoint present, every listed vertex used — and then seeded
// as the graph's vertex view, so NumVertices and Vertices never pay the
// O(|E|) derivation scan on a restored graph. The graph starts at a fresh
// process-unique version (like Clone/Grow), so cache layers can never
// confuse it with a freed graph reallocated at the same address.
func FromEdgesAndVertices(edges []Edge, verts []VertexID) (*Graph, error) {
	if len(verts) > 0 && verts[0] < 0 {
		return nil, fmt.Errorf("graph: restored vertex list has negative vertex ID %d", verts[0])
	}
	for i := 1; i < len(verts); i++ {
		if verts[i] <= verts[i-1] {
			return nil, fmt.Errorf("graph: restored vertex list not strictly ascending at index %d", i)
		}
	}
	// Membership + coverage: every endpoint must be listed, every listed
	// vertex must be an endpoint. Dense ID spaces (all generators in this
	// module) take the O(1)-per-endpoint fast path.
	used := make([]bool, len(verts))
	dense := len(verts) > 0 && verts[0] == 0 && verts[len(verts)-1] == VertexID(len(verts)-1)
	locate := func(v VertexID) int {
		if dense {
			if v < 0 || int(v) >= len(verts) {
				return -1
			}
			return int(v)
		}
		if i, ok := slices.BinarySearch(verts, v); ok {
			return i
		}
		return -1
	}
	for i, e := range edges {
		si, di := locate(e.Src), locate(e.Dst)
		if si < 0 || di < 0 {
			return nil, fmt.Errorf("graph: edge %d (%d -> %d) has an endpoint missing from the restored vertex list", i, e.Src, e.Dst)
		}
		used[si] = true
		used[di] = true
	}
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("graph: restored vertex list entry %d (vertex %d) appears in no edge", i, verts[i])
		}
	}
	g := FromEdges(edges)
	g.verts = verts
	g.vertsOnce.markBuilt()
	g.version.Store(nextGenerationVersion())
	return g, nil
}

// FromBlocksAndVertices restores a block-backed graph from an assembled
// store plus its sorted unique vertex list, as persisted by the block
// snapshot codec. Unlike FromEdgesAndVertices, the edges stay encoded —
// only the vertex list's shape (strictly ascending, non-negative) is
// validated here; endpoint membership is implicitly covered by the codec's
// fingerprint check, because a wrong vertex list cannot reproduce the
// recorded fingerprint chain. The list is seeded as the graph's vertex
// view so restoring never pays the O(|E|) derivation scan.
func FromBlocksAndVertices(bs *BlockStore, verts []VertexID) (*Graph, error) {
	if len(verts) > 0 && verts[0] < 0 {
		return nil, fmt.Errorf("graph: restored vertex list has negative vertex ID %d", verts[0])
	}
	for i := 1; i < len(verts); i++ {
		if verts[i] <= verts[i-1] {
			return nil, fmt.Errorf("graph: restored vertex list not strictly ascending at index %d", i)
		}
	}
	g := FromBlocks(bs)
	g.verts = verts
	g.vertsOnce.markBuilt()
	return g, nil
}
