package graph

import (
	"bytes"
	"hash/crc32"
	"testing"

	"cutfit/internal/rng"
)

// randEdges returns n deterministic pseudo-random edges over [0, vmax).
func randEdges(n, vmax int, seed uint64) []Edge {
	r := rng.New(seed)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(r.Intn(vmax)), Dst: VertexID(r.Intn(vmax))}
	}
	return edges
}

// randWeights returns n deterministic positive weights.
func randWeights(n int, seed uint64) []float64 {
	r := rng.New(seed)
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 + float64(r.Intn(1000))/100
	}
	return w
}

// buildBlocks packs edges (+ optional weights) into a store with small
// blocks so multi-block behavior is exercised on test-sized inputs.
func buildBlocks(t *testing.T, edges []Edge, weights []float64, blockEdges int) *BlockStore {
	t.Helper()
	bb := NewBlockBuilder(blockEdges)
	// Append in uneven chunks to exercise partial-batch sealing.
	for i := 0; i < len(edges); {
		n := 17 + i%29
		if i+n > len(edges) {
			n = len(edges) - i
		}
		if weights != nil {
			bb.Append(edges[i:i+n], weights[i:i+n])
		} else {
			bb.Append(edges[i:i+n], nil)
		}
		i += n
	}
	return bb.Finish()
}

func TestBlockStoreRoundTrip(t *testing.T) {
	edges := randEdges(1000, 500, 1)
	bs := buildBlocks(t, edges, nil, 128)
	if bs.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, want %d", bs.NumEdges(), len(edges))
	}
	if bs.BlockEdges() != 128 {
		t.Fatalf("BlockEdges = %d, want 128", bs.BlockEdges())
	}
	if want := (len(edges) + 127) / 128; bs.NumBlocks() != want {
		t.Fatalf("NumBlocks = %d, want %d", bs.NumBlocks(), want)
	}
	var got []Edge
	if err := bs.forEach(func(start int, es []Edge, ws []float64) error {
		if start != len(got) {
			t.Fatalf("block start = %d, want %d", start, len(got))
		}
		if ws != nil {
			t.Fatal("unweighted store yielded weights")
		}
		got = append(got, es...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	// Random access via the LRU (more blocks than the cache holds).
	for _, i := range []int{0, 127, 128, 500, len(edges) - 1} {
		e, err := bs.EdgeAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if e != edges[i] {
			t.Fatalf("EdgeAt(%d) = %v, want %v", i, e, edges[i])
		}
	}
}

func TestBlockStoreWeights(t *testing.T) {
	edges := randEdges(600, 300, 2)
	weights := randWeights(600, 3)
	bs := buildBlocks(t, edges, weights, 128)
	if !bs.Weighted() {
		t.Fatal("store not weighted")
	}
	pos := 0
	if err := bs.forEach(func(start int, es []Edge, ws []float64) error {
		if len(ws) != len(es) {
			t.Fatalf("block at %d: %d weights for %d edges", start, len(ws), len(es))
		}
		for i := range ws {
			if ws[i] != weights[pos] {
				t.Fatalf("weight %d = %g, want %g", pos, ws[i], weights[pos])
			}
			pos++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 129, 599} {
		w, err := bs.WeightAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if w != weights[i] {
			t.Fatalf("WeightAt(%d) = %g, want %g", i, w, weights[i])
		}
	}
}

func TestBlockBuilderWeightPromotion(t *testing.T) {
	edges := randEdges(300, 100, 4)
	bb := NewBlockBuilder(128)
	bb.Append(edges[:200], nil) // seals one implicit-ones block + 72 pending
	w := randWeights(100, 5)
	bb.Append(edges[200:], w)
	bs := bb.Finish()
	if !bs.Weighted() {
		t.Fatal("store not promoted to weighted")
	}
	for i := 0; i < 200; i++ {
		got, err := bs.WeightAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("pre-promotion weight %d = %g, want 1", i, got)
		}
	}
	for i := 200; i < 300; i++ {
		got, err := bs.WeightAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != w[i-200] {
			t.Fatalf("weight %d = %g, want %g", i, got, w[i-200])
		}
	}
	// The block sealed before promotion must carry no sidecar.
	if bs.refs[0].wenc != nil {
		t.Fatal("pre-promotion block has an explicit weight sidecar")
	}
}

func TestBlockStoreExtendSharesSealedBlocks(t *testing.T) {
	edges := randEdges(300, 100, 6)
	bs := buildBlocks(t, edges, nil, 128)
	suffix := randEdges(100, 100, 7)
	ext, err := bs.extend(suffix, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumEdges() != 400 {
		t.Fatalf("extended NumEdges = %d, want 400", ext.NumEdges())
	}
	// Sealed full blocks must be shared (same backing arrays), and the
	// parent must be untouched.
	if &ext.refs[0].enc[0] != &bs.refs[0].enc[0] || &ext.refs[1].enc[0] != &bs.refs[1].enc[0] {
		t.Fatal("extend re-encoded a sealed full block")
	}
	if bs.NumEdges() != 300 || len(bs.refs) != 3 {
		t.Fatal("extend mutated the parent store")
	}
	want := append(append([]Edge{}, edges...), suffix...)
	pos := 0
	if err := ext.forEach(func(_ int, es []Edge, _ []float64) error {
		for _, e := range es {
			if e != want[pos] {
				t.Fatalf("edge %d = %v, want %v", pos, e, want[pos])
			}
			pos++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// memReaderAt adapts a byte slice to io.ReaderAt for file-backed tests.
type memReaderAt struct{ data []byte }

func (m *memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	copy(p, m.data[off:])
	return len(p), nil
}

// fileBackedCopy lays bs's payloads into a flat buffer and reopens it as a
// file-backed store, returning the store and the backing buffer.
func fileBackedCopy(t *testing.T, bs *BlockStore) (*BlockStore, []byte) {
	t.Helper()
	var buf bytes.Buffer
	var index []BlockIndexEntry
	for b := range bs.refs {
		enc, wenc, err := bs.BlockPayload(b)
		if err != nil {
			t.Fatal(err)
		}
		ent := BlockIndexEntry{
			Count: uint32(bs.refs[b].count),
			Off:   uint64(buf.Len()),
			Len:   uint32(len(enc)),
			CRC:   crc32.ChecksumIEEE(enc),
		}
		buf.Write(enc)
		if wenc != nil {
			ent.WOff = uint64(buf.Len())
			ent.WLen = uint32(len(wenc))
			ent.WCRC = crc32.ChecksumIEEE(wenc)
			buf.Write(wenc)
		}
		index = append(index, ent)
	}
	data := buf.Bytes()
	fb, err := OpenBlocks(&memReaderAt{data}, bs.blockEdges, bs.weighted, index)
	if err != nil {
		t.Fatal(err)
	}
	return fb, data
}

func TestOpenBlocksFileBacked(t *testing.T) {
	edges := randEdges(500, 200, 8)
	weights := randWeights(500, 9)
	bs := buildBlocks(t, edges, weights, 128)
	fb, _ := fileBackedCopy(t, bs)
	if fb.HeapBytes() >= bs.HeapBytes() {
		t.Fatalf("file-backed HeapBytes %d not below heap store %d", fb.HeapBytes(), bs.HeapBytes())
	}
	pos := 0
	if err := fb.forEach(func(_ int, es []Edge, ws []float64) error {
		for i := range es {
			if es[i] != edges[pos] || ws[i] != weights[pos] {
				t.Fatalf("edge %d = %v/%g, want %v/%g", pos, es[i], ws[i], edges[pos], weights[pos])
			}
			pos++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pos != 500 {
		t.Fatalf("scanned %d edges, want 500", pos)
	}
}

func TestOpenBlocksDetectsCorruption(t *testing.T) {
	edges := randEdges(300, 100, 10)
	bs := buildBlocks(t, edges, nil, 128)
	fb, data := fileBackedCopy(t, bs)
	data[3] ^= 0xff
	if _, err := fb.EdgeAt(0); err == nil {
		t.Fatal("corrupted payload decoded without error")
	}
}

func TestOpenBlocksValidatesGeometry(t *testing.T) {
	src := &memReaderAt{data: make([]byte, 64)}
	if _, err := OpenBlocks(src, 100, false, nil); err == nil {
		t.Fatal("accepted block size not a multiple of 64")
	}
	// Non-final block not full.
	bad := []BlockIndexEntry{{Count: 10, Len: 4}, {Count: 10, Len: 4}}
	if _, err := OpenBlocks(src, 128, false, bad); err == nil {
		t.Fatal("accepted short non-final block")
	}
	// Sidecar on an unweighted store.
	bad = []BlockIndexEntry{{Count: 10, Len: 4, WLen: 80}}
	if _, err := OpenBlocks(src, 128, false, bad); err == nil {
		t.Fatal("accepted weight sidecar on unweighted store")
	}
	// Sidecar length mismatched with edge count.
	bad = []BlockIndexEntry{{Count: 10, Len: 4, WLen: 79}}
	if _, err := OpenBlocks(src, 128, true, bad); err == nil {
		t.Fatal("accepted misaligned weight sidecar")
	}
}

func TestFromBlocksGraphEquivalence(t *testing.T) {
	edges := randEdges(2000, 700, 11)
	weights := randWeights(2000, 12)
	dense, err := FromWeightedEdges(edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	block := FromBlocks(buildBlocks(t, edges, weights, 256))
	if !block.BlockBacked() {
		t.Fatal("FromBlocks graph not block-backed")
	}
	if dense.Fingerprint() != block.Fingerprint() {
		t.Fatalf("fingerprints differ: dense %016x block %016x", dense.Fingerprint(), block.Fingerprint())
	}
	if dense.NumVertices() != block.NumVertices() {
		t.Fatalf("NumVertices: dense %d block %d", dense.NumVertices(), block.NumVertices())
	}
	dv, bv := dense.Vertices(), block.Vertices()
	for i := range dv {
		if dv[i] != bv[i] {
			t.Fatalf("vertex %d: dense %d block %d", i, dv[i], bv[i])
		}
	}
	for _, v := range []VertexID{dv[0], dv[len(dv)/2], dv[len(dv)-1]} {
		if dense.OutDegree(v) != block.OutDegree(v) || dense.InDegree(v) != block.InDegree(v) {
			t.Fatalf("degree mismatch at vertex %d", v)
		}
	}
	for _, i := range []int{0, 255, 256, 1999} {
		if dense.EdgeAt(i) != block.EdgeAt(i) || dense.EdgeWeight(i) != block.EdgeWeight(i) {
			t.Fatalf("edge/weight mismatch at %d", i)
		}
	}
	// EdgeRange across a block boundary.
	de, dw := dense.EdgeRange(200, 600)
	be, bw := block.EdgeRange(200, 600)
	for i := range de {
		if de[i] != be[i] || dw[i] != bw[i] {
			t.Fatalf("EdgeRange mismatch at offset %d", i)
		}
	}
	dl, dc := dense.ConnectedComponents()
	bl, bc := block.ConnectedComponents()
	if dc != bc {
		t.Fatalf("components: dense %d block %d", dc, bc)
	}
	for i := range dl {
		if dl[i] != bl[i] {
			t.Fatalf("component label %d differs", i)
		}
	}
}

func TestFromBlocksGrowShrinkEquivalence(t *testing.T) {
	edges := randEdges(1000, 300, 13)
	dense := FromEdges(edges)
	block := FromBlocks(buildBlocks(t, edges, nil, 128))

	extra := randEdges(300, 300, 14)
	dg, dd := dense.Grow(extra)
	bg, bd := block.Grow(extra)
	if !bg.BlockBacked() {
		t.Fatal("grown graph lost its block backing")
	}
	if dd.OldLen != bd.OldLen || dd.Compacted != bd.Compacted {
		t.Fatalf("deltas differ: dense %+v block %+v", dd, bd)
	}
	if dg.Fingerprint() != bg.Fingerprint() {
		t.Fatalf("grown fingerprints differ: %016x vs %016x", dg.Fingerprint(), bg.Fingerprint())
	}

	retract := []Edge{edges[3], edges[500], extra[10]}
	ds, _, err := dg.Shrink(retract)
	if err != nil {
		t.Fatal(err)
	}
	bsG, _, err := bg.Shrink(retract)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumLiveEdges() != bsG.NumLiveEdges() {
		t.Fatalf("live edges after shrink: dense %d block %d", ds.NumLiveEdges(), bsG.NumLiveEdges())
	}
	if ds.Fingerprint() != bsG.Fingerprint() {
		t.Fatalf("shrunk fingerprints differ: %016x vs %016x", ds.Fingerprint(), bsG.Fingerprint())
	}

	// SlideWindow drives both append and expiry through the block path.
	win := randEdges(200, 300, 15)
	dsw, _, err := ds.SlideWindow(win, nil, 400)
	if err != nil {
		t.Fatal(err)
	}
	bsw, _, err := bsG.SlideWindow(win, nil, 400)
	if err != nil {
		t.Fatal(err)
	}
	if dsw.Fingerprint() != bsw.Fingerprint() {
		t.Fatalf("slid fingerprints differ: %016x vs %016x", dsw.Fingerprint(), bsw.Fingerprint())
	}
	if dsw.NumLiveEdges() != bsw.NumLiveEdges() {
		t.Fatalf("slid live edges: dense %d block %d", dsw.NumLiveEdges(), bsw.NumLiveEdges())
	}
}

func TestBlockGraphEnsureDenseOnMutation(t *testing.T) {
	edges := randEdges(300, 100, 16)
	g := FromBlocks(buildBlocks(t, edges, nil, 128))
	g.AddEdge(1000, 1001)
	if g.NumEdges() != 301 {
		t.Fatalf("NumEdges after AddEdge = %d, want 301", g.NumEdges())
	}
	want := FromEdges(append(append([]Edge{}, edges...), Edge{1000, 1001}))
	if g.Fingerprint() != want.Fingerprint() {
		t.Fatal("fingerprint after densifying mutation differs from dense build")
	}
}

func TestForEachEdgeBlockAllocs(t *testing.T) {
	edges := randEdges(1<<14, 4000, 17)
	g := FromBlocks(buildBlocks(t, edges, nil, 1024))
	var n int
	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		_ = g.ForEachEdgeBlock(func(_ int, es []Edge, _ []float64) error {
			n += len(es)
			return nil
		})
	})
	if n != len(edges) {
		t.Fatalf("scanned %d edges, want %d", n, len(edges))
	}
	// Pooled scratch: the scan must not allocate per edge — a handful of
	// allocs per scan (pool get, closure) is the budget, far below one per
	// block (16 blocks here).
	if allocs > 8 {
		t.Fatalf("ForEachEdgeBlock allocated %.0f objects per scan", allocs)
	}
}

func TestEdgeSeqStreams(t *testing.T) {
	edges := randEdges(500, 100, 18)
	g := FromBlocks(buildBlocks(t, edges, nil, 128))
	i := 0
	for pos, e := range g.EdgeSeq() {
		if pos != i || e != edges[i] {
			t.Fatalf("EdgeSeq yielded (%d, %v), want (%d, %v)", pos, e, i, edges[i])
		}
		i++
		if i == 200 {
			break // early break must not panic
		}
	}
	if i != 200 {
		t.Fatalf("iterated %d edges, want 200", i)
	}
}

func TestReadEdgeListBlocks(t *testing.T) {
	var buf bytes.Buffer
	dense, err := FromWeightedEdges(randEdges(400, 50, 19), randWeights(400, 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadEdgeListBlocks(bytes.NewReader(buf.Bytes()), 128)
	if err != nil {
		t.Fatal(err)
	}
	if !g.BlockBacked() {
		t.Fatal("ReadEdgeListBlocks graph not block-backed")
	}
	if g.Fingerprint() != dense.Fingerprint() {
		t.Fatal("round-tripped block graph fingerprint differs")
	}
}

func TestStreamEdgeListBatches(t *testing.T) {
	var buf bytes.Buffer
	n := streamBatchEdges + 100 // force a flush mid-stream
	for i := 0; i < n; i++ {
		if i == n-1 {
			buf.WriteString("7\t8\t2.5\n") // weighted tail line
		} else {
			buf.WriteString("1\t2\n")
		}
	}
	var total int
	var batches int
	var lastW []float64
	err := StreamEdgeList(bytes.NewReader(buf.Bytes()), func(edges []Edge, weights []float64) error {
		batches++
		total += len(edges)
		lastW = weights
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != n || batches != 2 {
		t.Fatalf("streamed %d edges in %d batches, want %d in 2", total, batches, n)
	}
	if lastW == nil || lastW[len(lastW)-1] != 2.5 {
		t.Fatalf("final batch weights = %v, want tail weight 2.5", lastW)
	}
	// Pre-promotion lines inside the weighted batch weigh 1.
	if lastW[0] != 1 {
		t.Fatalf("backfilled weight = %g, want 1", lastW[0])
	}
}
