// Package graph provides the in-memory graph representation used by the
// whole repository: a directed multigraph stored as an edge list, with
// lazily-built compressed sparse row (CSR) adjacency views and exact
// structural statistics (symmetry, triangles, components, diameter).
//
// The representation mirrors GraphX's: the graph is fundamentally a list of
// directed edges over 64-bit vertex identifiers; vertex sets, degrees and
// adjacency are derived views. Vertex identifiers do not need to be dense,
// but all generators in this module produce dense IDs in [0, NumVertices).
package graph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"cutfit/internal/rng"
)

// VertexID identifies a vertex. Like GraphX's VertexId it is a 64-bit
// integer; it carries no other meaning, although the SC/DC partitioning
// strategies deliberately exploit any locality encoded in consecutive IDs.
type VertexID int64

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Graph is a directed multigraph stored as an edge list. It is cheap to
// construct and append to; adjacency views are built lazily and cached.
//
// Retraction is represented by tombstones: Shrink marks dense edge
// positions dead in a bitset instead of splicing the edge list, so every
// per-edge artifact computed against the dense list (partition
// assignments, scattered topologies) stays index-aligned across a
// retraction. Edges() and NumEdges() keep dense semantics — they include
// tombstoned slots — while NumLiveEdges/EdgeAlive expose liveness and all
// derived views (degrees, CSRs, stats) skip dead edges. Once tombstones
// pass a density threshold a new generation is compacted to a fresh dense
// list (see Shrink).
//
// Edges optionally carry float64 weights in a parallel slice (nil when
// the graph is unweighted, so the common case pays nothing). Weights flow
// through the partitioning metrics and the streaming strategies' degree
// tables; an all-ones weighting is bit-identical to the unweighted path.
//
// Concurrency: a Graph is safe for any number of concurrent readers,
// including concurrent *first* accesses — every lazy view build is guarded
// by its own viewOnce, so N goroutines racing on an unbuilt view elect one
// builder and the rest observe the finished result. This is what lets one
// graph back many simultaneous engine runs and cache lookups in the serving
// layer. Mutation (AddEdge/AddEdges) is NOT safe concurrently with reads;
// mutate before sharing.
type Graph struct {
	edges []Edge

	// weights holds the per-edge weight aligned with edges, or nil for an
	// unweighted graph (every edge then weighs 1).
	weights []float64

	// dead is the tombstone bitset over dense edge positions (bit i set =
	// edge i retracted); words beyond len(dead) are implicitly alive, so a
	// nil bitset means every edge is live. numDead counts the set bits.
	dead    []uint64
	numDead int

	// version counts mutations; cache layers include it in their keys so
	// entries computed against a superseded edge list can never be served
	// for the mutated graph.
	version atomic.Uint64

	// Cached derived views, built on first use. Each group is guarded by
	// its own viewOnce; the fields themselves are written only inside the
	// owning viewOnce's build.
	vertsOnce    viewOnce
	verts        []VertexID // sorted unique vertex IDs
	idxOnce      viewOnce
	index        map[VertexID]int32 // vertex ID -> dense index into verts
	degOnce      viewOnce
	outDeg       []int32 // per dense index
	inDeg        []int32
	endpointOnce viewOnce
	srcIdx       []int32 // per-edge dense source index, aligned with edges
	dstIdx       []int32 // per-edge dense destination index
	csrOutOnce   viewOnce
	csrOut       *csr
	csrInOnce    viewOnce
	csrIn        *csr
	csrUndirOnce viewOnce
	csrUndir     *csr // undirected, deduplicated, no self loops
	fpOnce       viewOnce
	fp           uint64 // content fingerprint: edge fold + tombstone fold
	fpEdges      uint64 // sequential edge/weight fold only (extendable by Grow)
}

// viewOnce guards one lazily-built derived view for concurrent first use.
// Unlike sync.Once it is resettable (mutation invalidates views), and the
// fast path is a single atomic load. The atomic store after build publishes
// the view fields to every goroutine that observes ready == true.
type viewOnce struct {
	ready atomic.Bool
	mu    sync.Mutex
}

// do runs build exactly once between resets, blocking concurrent callers
// until the view is published.
func (o *viewOnce) do(build func()) {
	if o.ready.Load() {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.ready.Load() {
		build()
		o.ready.Store(true)
	}
}

func (o *viewOnce) reset() { o.ready.Store(false) }

// markBuilt publishes a view that was seeded directly (Grow pre-populates
// derived views on a new generation before it escapes to other goroutines).
func (o *viewOnce) markBuilt() { o.ready.Store(true) }

// built reports whether the view is currently available without building it.
func (o *viewOnce) built() bool { return o.ready.Load() }

// generationSeed hands out process-unique version bases for graphs created
// from other graphs (Clone, Reverse, Grow). Cache layers key artifacts by
// (graph pointer, version); a derived graph allocated at a freed parent's
// address with version 0 would alias the parent's key space, so every
// derived graph starts from a fresh, never-reused version range. The <<32
// shift leaves each generation 2^32 in-place mutations before ranges could
// collide.
var generationSeed atomic.Uint64

func nextGenerationVersion() uint64 { return generationSeed.Add(1) << 32 }

// New returns an empty graph with capacity for hintEdges edges.
func New(hintEdges int) *Graph {
	if hintEdges < 0 {
		hintEdges = 0
	}
	return &Graph{edges: make([]Edge, 0, hintEdges)}
}

// FromEdges builds a graph that takes ownership of edges.
func FromEdges(edges []Edge) *Graph {
	return &Graph{edges: edges}
}

// FromWeightedEdges builds a weighted graph that takes ownership of both
// slices; weights[i] is the weight of edges[i]. A nil weights is the
// unweighted graph (every edge weighs 1). Lengths must match.
func FromWeightedEdges(edges []Edge, weights []float64) (*Graph, error) {
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(weights), len(edges))
	}
	return &Graph{edges: edges, weights: weights}, nil
}

// AddEdge appends a directed edge. Any cached views are invalidated.
func (g *Graph) AddEdge(src, dst VertexID) {
	g.edges = append(g.edges, Edge{Src: src, Dst: dst})
	if g.weights != nil {
		g.weights = append(g.weights, 1)
	}
	g.invalidate()
}

// AddEdges appends a batch of directed edges (weight 1 each on a weighted
// graph).
func (g *Graph) AddEdges(edges ...Edge) {
	g.edges = append(g.edges, edges...)
	if g.weights != nil {
		for range edges {
			g.weights = append(g.weights, 1)
		}
	}
	g.invalidate()
}

func (g *Graph) invalidate() {
	g.version.Add(1)
	g.vertsOnce.reset()
	g.verts = nil
	g.idxOnce.reset()
	g.index = nil
	g.degOnce.reset()
	g.outDeg = nil
	g.inDeg = nil
	g.endpointOnce.reset()
	g.srcIdx = nil
	g.dstIdx = nil
	g.csrOutOnce.reset()
	g.csrOut = nil
	g.csrInOnce.reset()
	g.csrIn = nil
	g.csrUndirOnce.reset()
	g.csrUndir = nil
	g.fpOnce.reset()
	g.fp = 0
	g.fpEdges = 0
}

// fingerprintSeed starts every fingerprint chain; folding edges onto it is
// order-dependent, so a graph and its grown generations never collide.
const fingerprintSeed = 0x637574666974_3031 // "cutfit01"

// foldFingerprint chains edges onto a running fingerprint. Sequential
// chaining is what lets Grow seed a child generation's fingerprint from the
// parent's by folding only the appended suffix.
func foldFingerprint(h uint64, edges []Edge) uint64 {
	for _, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
	}
	return h
}

// foldFingerprintW chains weighted edges onto a running fingerprint. A nil
// weights degrades to the unweighted fold, so unweighted graphs keep their
// historical fingerprints.
func foldFingerprintW(h uint64, edges []Edge, weights []float64) uint64 {
	if weights == nil {
		return foldFingerprint(h, edges)
	}
	for i, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
		h = rng.Combine2(h, math.Float64bits(weights[i]))
	}
	return h
}

// foldFingerprintOnes folds an unweighted suffix onto a weighted chain:
// every edge carries the implicit weight 1, folded exactly as
// foldFingerprintW would fold an explicit 1.
func foldFingerprintOnes(h uint64, edges []Edge) uint64 {
	one := math.Float64bits(1)
	for _, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
		h = rng.Combine2(h, one)
	}
	return h
}

// tombstoneSeed separates the tombstone fold from the edge fold so a
// shrunk graph can never collide with a grown one.
const tombstoneSeed = 0x746f6d6273746e65 // "tombstne"

// foldDeadFingerprint folds the tombstone set onto the edge fingerprint.
// The fold visits dead positions in ascending order, making the result a
// pure function of (edge list, dead set) — independent of the sequence of
// Shrink calls that produced the set, so a decoded snapshot recomputes the
// identical value.
func foldDeadFingerprint(h uint64, dead []uint64, numDead int) uint64 {
	if numDead == 0 {
		return h
	}
	h = rng.Combine2(h, tombstoneSeed)
	for w, word := range dead {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			h = rng.Combine2(h, uint64(w*64+tz))
			word &= word - 1
		}
	}
	return h
}

// Fingerprint returns a 64-bit content fingerprint of the graph content —
// unlike Version (a process-local mutation counter) it is a pure function
// of the edges, their weights and the tombstone set, so it identifies the
// same graph content across processes. Persistence layers use it to pair
// durable artifacts with the graph they were computed for and as the
// stable part of disk-tier cache keys. Built lazily and cached; mutation
// invalidates it like any other derived view.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.do(func() {
		g.fpEdges = foldFingerprintW(fingerprintSeed, g.edges, g.weights)
		g.fp = foldDeadFingerprint(g.fpEdges, g.dead, g.numDead)
	})
	return g.fp
}

// Version returns the mutation counter: 0 for a graph built by New or
// FromEdges, a fresh process-unique base for graphs derived from another
// graph (Clone, Reverse, Grow), incremented by every AddEdge/AddEdges.
// Cache layers keying artifacts by graph include it so entries for a
// superseded edge list are unreachable.
func (g *Graph) Version() uint64 { return g.version.Load() }

// NumEdges returns the number of dense edge slots, including duplicates,
// self loops and tombstoned edges. Per-edge artifacts (assignments,
// endpoint indices) are aligned with this dense list; use NumLiveEdges for
// the count of edges that are actually present.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumLiveEdges returns the number of edges that are not tombstoned.
func (g *Graph) NumLiveEdges() int { return len(g.edges) - g.numDead }

// NumDeadEdges returns the number of tombstoned edge slots.
func (g *Graph) NumDeadEdges() int { return g.numDead }

// EdgeAlive reports whether dense edge slot i is live (not tombstoned).
func (g *Graph) EdgeAlive(i int) bool {
	w := i >> 6
	if w >= len(g.dead) {
		return true
	}
	return g.dead[w]&(1<<(uint(i)&63)) == 0
}

// Tombstones returns the tombstone bitset over dense edge positions (bit i
// set = edge i retracted); words beyond the slice are implicitly alive and
// a nil return means no edge is tombstoned. Callers must not modify it.
func (g *Graph) Tombstones() []uint64 { return g.dead }

// Edges returns the underlying dense edge slice, including tombstoned
// slots (check EdgeAlive, or Tombstones for bulk scans). Callers must not
// modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Weighted reports whether the graph carries per-edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Weights returns the per-edge weight slice aligned with Edges(), or nil
// for an unweighted graph (every edge then weighs 1). Callers must not
// modify it.
func (g *Graph) Weights() []float64 { return g.weights }

// EdgeWeight returns the weight of dense edge slot i (1 on an unweighted
// graph).
func (g *Graph) EdgeWeight(i int) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[i]
}

// buildVerts computes the sorted unique vertex list by scanning the edge
// list. The dense index map is a separate view (buildIndex) so generations
// seeded by Grow — which inherit a merged vertex list without scanning —
// only pay for the map if something actually looks vertices up by ID.
func (g *Graph) buildVerts() {
	g.vertsOnce.do(func() {
		seen := make(map[VertexID]struct{}, len(g.edges))
		for _, e := range g.edges {
			seen[e.Src] = struct{}{}
			seen[e.Dst] = struct{}{}
		}
		verts := make([]VertexID, 0, len(seen))
		for v := range seen {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		g.verts = verts
	})
}

// buildIndex computes the vertex ID -> dense index map from the vertex
// list.
func (g *Graph) buildIndex() {
	g.idxOnce.do(func() {
		g.buildVerts()
		index := make(map[VertexID]int32, len(g.verts))
		for i, v := range g.verts {
			index[v] = int32(i)
		}
		g.index = index
	})
}

// buildVertexIndex builds both the vertex list and the index map (the
// historical combined entry point; per-edge consumers below want the map).
func (g *Graph) buildVertexIndex() {
	g.buildIndex()
}

// NumVertices returns the number of distinct vertices that appear as an
// endpoint of at least one edge.
func (g *Graph) NumVertices() int {
	g.buildVerts()
	return len(g.verts)
}

// Vertices returns the sorted list of distinct vertex IDs. Callers must not
// modify it.
func (g *Graph) Vertices() []VertexID {
	g.buildVerts()
	return g.verts
}

// Index returns the dense index of v in Vertices() and whether v exists.
func (g *Graph) Index(v VertexID) (int32, bool) {
	g.buildIndex()
	i, ok := g.index[v]
	return i, ok
}

// EdgeEndpointIndices returns the dense endpoint indices of every edge,
// aligned with Edges(): edge i goes from dense vertex src[i] to dst[i].
// The slices are built once and cached, so repeated consumers (the
// partitioned-graph builder runs once per candidate strategy in the
// advisor's empirical-selection loop) pay the vertex-index map lookups a
// single time. Callers must not modify the returned slices.
func (g *Graph) EdgeEndpointIndices() (src, dst []int32) {
	g.endpointOnce.do(func() {
		g.buildVertexIndex()
		srcIdx := make([]int32, len(g.edges))
		dstIdx := make([]int32, len(g.edges))
		for i, e := range g.edges {
			srcIdx[i] = g.index[e.Src]
			dstIdx[i] = g.index[e.Dst]
		}
		g.srcIdx = srcIdx
		g.dstIdx = dstIdx
	})
	return g.srcIdx, g.dstIdx
}

// buildDegrees computes in/out degree per dense vertex index. Tombstoned
// edges do not count.
func (g *Graph) buildDegrees() {
	g.degOnce.do(func() {
		g.buildVertexIndex()
		out := make([]int32, len(g.verts))
		in := make([]int32, len(g.verts))
		for i, e := range g.edges {
			if g.numDead != 0 && !g.EdgeAlive(i) {
				continue
			}
			out[g.index[e.Src]]++
			in[g.index[e.Dst]]++
		}
		g.outDeg = out
		g.inDeg = in
	})
}

// OutDegree returns the out-degree of v (0 if v is not in the graph).
// The index map is ensured separately from the degree view: on a
// generation seeded by Grow the degrees exist before the map does.
func (g *Graph) OutDegree(v VertexID) int {
	g.buildDegrees()
	g.buildIndex()
	if i, ok := g.index[v]; ok {
		return int(g.outDeg[i])
	}
	return 0
}

// InDegree returns the in-degree of v (0 if v is not in the graph).
func (g *Graph) InDegree(v VertexID) int {
	g.buildDegrees()
	g.buildIndex()
	if i, ok := g.index[v]; ok {
		return int(g.inDeg[i])
	}
	return 0
}

// OutDegrees returns the out-degree slice aligned with Vertices().
func (g *Graph) OutDegrees() []int32 {
	g.buildDegrees()
	return g.outDeg
}

// InDegrees returns the in-degree slice aligned with Vertices().
func (g *Graph) InDegrees() []int32 {
	g.buildDegrees()
	return g.inDeg
}

// Reverse returns a new graph with every edge direction flipped. The new
// graph starts at a fresh, process-unique nonzero version so cache layers
// keying artifacts by (pointer, version) can never serve it entries that
// belonged to a freed graph reallocated at the same address.
func (g *Graph) Reverse() *Graph {
	rev := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		rev[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	out := FromEdges(rev)
	out.weights = cloneWeights(g.weights)
	out.dead = cloneDead(g.dead)
	out.numDead = g.numDead
	out.version.Store(nextGenerationVersion())
	return out
}

// Clone returns a deep copy of the graph's edge list, weights and
// tombstones (views are rebuilt lazily on the copy). Like Reverse, the
// copy starts at a fresh nonzero version, never shared with any other
// graph in this process.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	out := FromEdges(edges)
	out.weights = cloneWeights(g.weights)
	out.dead = cloneDead(g.dead)
	out.numDead = g.numDead
	out.version.Store(nextGenerationVersion())
	return out
}

func cloneWeights(w []float64) []float64 {
	if w == nil {
		return nil
	}
	out := make([]float64, len(w))
	copy(out, w)
	return out
}

func cloneDead(d []uint64) []uint64 {
	if d == nil {
		return nil
	}
	out := make([]uint64, len(d))
	copy(out, d)
	return out
}

// popcount counts the set bits of a tombstone bitset.
func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// RestoreWeights attaches a decoded weight slice to the graph (persistence
// layers reassemble graph state section by section). The weights must
// align with the dense edge list and be finite and positive. Only the
// fingerprint view is invalidated — weights change no structural view.
func (g *Graph) RestoreWeights(weights []float64) error {
	if weights == nil {
		g.weights = nil
		g.fpOnce.reset()
		return nil
	}
	if len(weights) != len(g.edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(weights), len(g.edges))
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return fmt.Errorf("graph: edge %d has invalid weight %v (must be finite and positive)", i, w)
		}
	}
	g.weights = weights
	g.fpOnce.reset()
	return nil
}

// RestoreTombstones attaches a decoded tombstone bitset. The bitset must
// fit the dense edge list (no bits at or beyond NumEdges) and numDead must
// equal its popcount. The vertex set is unchanged by tombstones (dead
// edges keep their endpoints listed), so only the views that skip dead
// edges — degrees, CSRs, the fingerprint — are invalidated.
func (g *Graph) RestoreTombstones(dead []uint64, numDead int) error {
	if len(dead)*64 > (len(g.edges)+63)&^63 {
		return fmt.Errorf("graph: tombstone bitset spans %d words for %d edges", len(dead), len(g.edges))
	}
	if tail := len(g.edges) & 63; tail != 0 && len(dead) == (len(g.edges)+63)/64 {
		if dead[len(dead)-1]>>uint(tail) != 0 {
			return fmt.Errorf("graph: tombstone bitset has bits beyond edge %d", len(g.edges)-1)
		}
	}
	if pc := popcount(dead); pc != numDead {
		return fmt.Errorf("graph: tombstone count %d disagrees with bitset popcount %d", numDead, pc)
	}
	g.dead = dead
	g.numDead = numDead
	g.degOnce.reset()
	g.outDeg, g.inDeg = nil, nil
	g.csrOutOnce.reset()
	g.csrOut = nil
	g.csrInOnce.reset()
	g.csrIn = nil
	g.csrUndirOnce.reset()
	g.csrUndir = nil
	g.fpOnce.reset()
	return nil
}

// Validate checks internal consistency and returns an error describing the
// first problem found. A valid graph has no negative vertex IDs (negative
// IDs are legal for Graph itself but rejected by the generators and the
// engine, which reserve them for internal sentinels), weights aligned with
// the dense edge list (finite, positive), and a tombstone bitset whose
// popcount matches the recorded dead count with no bits beyond the list.
func (g *Graph) Validate() error {
	for i, e := range g.edges {
		if e.Src < 0 || e.Dst < 0 {
			return fmt.Errorf("graph: edge %d (%d -> %d) has negative vertex ID", i, e.Src, e.Dst)
		}
	}
	if g.weights != nil {
		if len(g.weights) != len(g.edges) {
			return fmt.Errorf("graph: %d weights for %d edges", len(g.weights), len(g.edges))
		}
		for i, w := range g.weights {
			if !(w > 0) || math.IsInf(w, 1) {
				return fmt.Errorf("graph: edge %d has invalid weight %v (must be finite and positive)", i, w)
			}
		}
	}
	if pc := popcount(g.dead); pc != g.numDead {
		return fmt.Errorf("graph: tombstone count %d disagrees with bitset popcount %d", g.numDead, pc)
	}
	for i := len(g.edges); i < len(g.dead)*64; i++ {
		if !g.EdgeAlive(i) {
			return fmt.Errorf("graph: tombstone bitset has bits beyond edge %d", len(g.edges)-1)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}

// csr is a compressed sparse row adjacency structure over dense vertex
// indices: neighbors of dense vertex i are adj[offsets[i]:offsets[i+1]].
type csr struct {
	offsets []int64
	adj     []int32
}

func (c *csr) neighbors(i int32) []int32 {
	return c.adj[c.offsets[i]:c.offsets[i+1]]
}

// buildCSR constructs a CSR view. direction selects which endpoint indexes
// the rows: "out" rows are sources, "in" rows are destinations. Neighbor
// lists are sorted by dense index. If dedup is true, duplicate neighbors and
// self loops are removed (used for the undirected projection).
func (g *Graph) buildCSR(direction string, undirected, dedup bool) *csr {
	g.buildVertexIndex()
	n := len(g.verts)
	counts := make([]int64, n+1)
	add := func(a, b int32) {
		counts[a+1]++
	}
	for i, e := range g.edges {
		if g.numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		s, d := g.index[e.Src], g.index[e.Dst]
		if undirected {
			if s == d {
				continue
			}
			add(s, d)
			add(d, s)
			continue
		}
		if direction == "out" {
			add(s, d)
		} else {
			add(d, s)
		}
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	offsets := counts
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	put := func(a, b int32) {
		adj[offsets[a]+cursor[a]] = b
		cursor[a]++
	}
	for i, e := range g.edges {
		if g.numDead != 0 && !g.EdgeAlive(i) {
			continue
		}
		s, d := g.index[e.Src], g.index[e.Dst]
		if undirected {
			if s == d {
				continue
			}
			put(s, d)
			put(d, s)
			continue
		}
		if direction == "out" {
			put(s, d)
		} else {
			put(d, s)
		}
	}
	c := &csr{offsets: offsets, adj: adj}
	for i := int32(0); i < int32(n); i++ {
		nb := c.neighbors(i)
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
	}
	if dedup {
		c = c.deduplicate(n)
	}
	return c
}

// deduplicate removes repeated entries from each (already sorted) row.
func (c *csr) deduplicate(n int) *csr {
	newOffsets := make([]int64, n+1)
	newAdj := make([]int32, 0, len(c.adj))
	for i := int32(0); i < int32(n); i++ {
		row := c.neighbors(i)
		var prev int32 = -1
		for _, v := range row {
			if v != prev {
				newAdj = append(newAdj, v)
				prev = v
			}
		}
		newOffsets[i+1] = int64(len(newAdj))
	}
	return &csr{offsets: newOffsets, adj: newAdj}
}

// outCSR returns (building if needed) the out-adjacency CSR.
func (g *Graph) outCSR() *csr {
	g.csrOutOnce.do(func() { g.csrOut = g.buildCSR("out", false, false) })
	return g.csrOut
}

// inCSR returns the in-adjacency CSR.
func (g *Graph) inCSR() *csr {
	g.csrInOnce.do(func() { g.csrIn = g.buildCSR("in", false, false) })
	return g.csrIn
}

// undirCSR returns the undirected, deduplicated, loop-free adjacency CSR.
func (g *Graph) undirCSR() *csr {
	g.csrUndirOnce.do(func() { g.csrUndir = g.buildCSR("", true, true) })
	return g.csrUndir
}

// OutNeighbors returns the dense indices of out-neighbors of dense vertex i,
// sorted, possibly with duplicates if the graph has parallel edges. Callers
// must not modify the returned slice.
func (g *Graph) OutNeighbors(i int32) []int32 { return g.outCSR().neighbors(i) }

// InNeighbors returns the dense indices of in-neighbors of dense vertex i.
func (g *Graph) InNeighbors(i int32) []int32 { return g.inCSR().neighbors(i) }

// UndirectedNeighbors returns the sorted, deduplicated, loop-free neighbor
// set of dense vertex i in the undirected projection of the graph.
func (g *Graph) UndirectedNeighbors(i int32) []int32 { return g.undirCSR().neighbors(i) }
