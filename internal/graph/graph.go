// Package graph provides the in-memory graph representation used by the
// whole repository: a directed multigraph stored as an edge list, with
// lazily-built compressed sparse row (CSR) adjacency views and exact
// structural statistics (symmetry, triangles, components, diameter).
//
// The representation mirrors GraphX's: the graph is fundamentally a list of
// directed edges over 64-bit vertex identifiers; vertex sets, degrees and
// adjacency are derived views. Vertex identifiers do not need to be dense,
// but all generators in this module produce dense IDs in [0, NumVertices).
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cutfit/internal/rng"
)

// VertexID identifies a vertex. Like GraphX's VertexId it is a 64-bit
// integer; it carries no other meaning, although the SC/DC partitioning
// strategies deliberately exploit any locality encoded in consecutive IDs.
type VertexID int64

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Graph is a directed multigraph stored as an edge list. It is cheap to
// construct and append to; adjacency views are built lazily and cached.
//
// Concurrency: a Graph is safe for any number of concurrent readers,
// including concurrent *first* accesses — every lazy view build is guarded
// by its own viewOnce, so N goroutines racing on an unbuilt view elect one
// builder and the rest observe the finished result. This is what lets one
// graph back many simultaneous engine runs and cache lookups in the serving
// layer. Mutation (AddEdge/AddEdges) is NOT safe concurrently with reads;
// mutate before sharing.
type Graph struct {
	edges []Edge

	// version counts mutations; cache layers include it in their keys so
	// entries computed against a superseded edge list can never be served
	// for the mutated graph.
	version atomic.Uint64

	// Cached derived views, built on first use. Each group is guarded by
	// its own viewOnce; the fields themselves are written only inside the
	// owning viewOnce's build.
	vertsOnce    viewOnce
	verts        []VertexID // sorted unique vertex IDs
	idxOnce      viewOnce
	index        map[VertexID]int32 // vertex ID -> dense index into verts
	degOnce      viewOnce
	outDeg       []int32 // per dense index
	inDeg        []int32
	endpointOnce viewOnce
	srcIdx       []int32 // per-edge dense source index, aligned with edges
	dstIdx       []int32 // per-edge dense destination index
	csrOutOnce   viewOnce
	csrOut       *csr
	csrInOnce    viewOnce
	csrIn        *csr
	csrUndirOnce viewOnce
	csrUndir     *csr // undirected, deduplicated, no self loops
	fpOnce       viewOnce
	fp           uint64 // content fingerprint of the edge list
}

// viewOnce guards one lazily-built derived view for concurrent first use.
// Unlike sync.Once it is resettable (mutation invalidates views), and the
// fast path is a single atomic load. The atomic store after build publishes
// the view fields to every goroutine that observes ready == true.
type viewOnce struct {
	ready atomic.Bool
	mu    sync.Mutex
}

// do runs build exactly once between resets, blocking concurrent callers
// until the view is published.
func (o *viewOnce) do(build func()) {
	if o.ready.Load() {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.ready.Load() {
		build()
		o.ready.Store(true)
	}
}

func (o *viewOnce) reset() { o.ready.Store(false) }

// markBuilt publishes a view that was seeded directly (Grow pre-populates
// derived views on a new generation before it escapes to other goroutines).
func (o *viewOnce) markBuilt() { o.ready.Store(true) }

// built reports whether the view is currently available without building it.
func (o *viewOnce) built() bool { return o.ready.Load() }

// generationSeed hands out process-unique version bases for graphs created
// from other graphs (Clone, Reverse, Grow). Cache layers key artifacts by
// (graph pointer, version); a derived graph allocated at a freed parent's
// address with version 0 would alias the parent's key space, so every
// derived graph starts from a fresh, never-reused version range. The <<32
// shift leaves each generation 2^32 in-place mutations before ranges could
// collide.
var generationSeed atomic.Uint64

func nextGenerationVersion() uint64 { return generationSeed.Add(1) << 32 }

// New returns an empty graph with capacity for hintEdges edges.
func New(hintEdges int) *Graph {
	if hintEdges < 0 {
		hintEdges = 0
	}
	return &Graph{edges: make([]Edge, 0, hintEdges)}
}

// FromEdges builds a graph that takes ownership of edges.
func FromEdges(edges []Edge) *Graph {
	return &Graph{edges: edges}
}

// AddEdge appends a directed edge. Any cached views are invalidated.
func (g *Graph) AddEdge(src, dst VertexID) {
	g.edges = append(g.edges, Edge{Src: src, Dst: dst})
	g.invalidate()
}

// AddEdges appends a batch of directed edges.
func (g *Graph) AddEdges(edges ...Edge) {
	g.edges = append(g.edges, edges...)
	g.invalidate()
}

func (g *Graph) invalidate() {
	g.version.Add(1)
	g.vertsOnce.reset()
	g.verts = nil
	g.idxOnce.reset()
	g.index = nil
	g.degOnce.reset()
	g.outDeg = nil
	g.inDeg = nil
	g.endpointOnce.reset()
	g.srcIdx = nil
	g.dstIdx = nil
	g.csrOutOnce.reset()
	g.csrOut = nil
	g.csrInOnce.reset()
	g.csrIn = nil
	g.csrUndirOnce.reset()
	g.csrUndir = nil
	g.fpOnce.reset()
	g.fp = 0
}

// fingerprintSeed starts every fingerprint chain; folding edges onto it is
// order-dependent, so a graph and its grown generations never collide.
const fingerprintSeed = 0x637574666974_3031 // "cutfit01"

// foldFingerprint chains edges onto a running fingerprint. Sequential
// chaining is what lets Grow seed a child generation's fingerprint from the
// parent's by folding only the appended suffix.
func foldFingerprint(h uint64, edges []Edge) uint64 {
	for _, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
	}
	return h
}

// Fingerprint returns a 64-bit content fingerprint of the edge list —
// unlike Version (a process-local mutation counter) it is a pure function
// of the edges, so it identifies the same graph content across processes.
// Persistence layers use it to pair durable artifacts with the graph they
// were computed for and as the stable part of disk-tier cache keys. Built
// lazily and cached; mutation invalidates it like any other derived view.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.do(func() { g.fp = foldFingerprint(fingerprintSeed, g.edges) })
	return g.fp
}

// Version returns the mutation counter: 0 for a graph built by New or
// FromEdges, a fresh process-unique base for graphs derived from another
// graph (Clone, Reverse, Grow), incremented by every AddEdge/AddEdges.
// Cache layers keying artifacts by graph include it so entries for a
// superseded edge list are unreachable.
func (g *Graph) Version() uint64 { return g.version.Load() }

// NumEdges returns the number of directed edges, including duplicates and
// self loops.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the underlying edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// buildVerts computes the sorted unique vertex list by scanning the edge
// list. The dense index map is a separate view (buildIndex) so generations
// seeded by Grow — which inherit a merged vertex list without scanning —
// only pay for the map if something actually looks vertices up by ID.
func (g *Graph) buildVerts() {
	g.vertsOnce.do(func() {
		seen := make(map[VertexID]struct{}, len(g.edges))
		for _, e := range g.edges {
			seen[e.Src] = struct{}{}
			seen[e.Dst] = struct{}{}
		}
		verts := make([]VertexID, 0, len(seen))
		for v := range seen {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		g.verts = verts
	})
}

// buildIndex computes the vertex ID -> dense index map from the vertex
// list.
func (g *Graph) buildIndex() {
	g.idxOnce.do(func() {
		g.buildVerts()
		index := make(map[VertexID]int32, len(g.verts))
		for i, v := range g.verts {
			index[v] = int32(i)
		}
		g.index = index
	})
}

// buildVertexIndex builds both the vertex list and the index map (the
// historical combined entry point; per-edge consumers below want the map).
func (g *Graph) buildVertexIndex() {
	g.buildIndex()
}

// NumVertices returns the number of distinct vertices that appear as an
// endpoint of at least one edge.
func (g *Graph) NumVertices() int {
	g.buildVerts()
	return len(g.verts)
}

// Vertices returns the sorted list of distinct vertex IDs. Callers must not
// modify it.
func (g *Graph) Vertices() []VertexID {
	g.buildVerts()
	return g.verts
}

// Index returns the dense index of v in Vertices() and whether v exists.
func (g *Graph) Index(v VertexID) (int32, bool) {
	g.buildIndex()
	i, ok := g.index[v]
	return i, ok
}

// EdgeEndpointIndices returns the dense endpoint indices of every edge,
// aligned with Edges(): edge i goes from dense vertex src[i] to dst[i].
// The slices are built once and cached, so repeated consumers (the
// partitioned-graph builder runs once per candidate strategy in the
// advisor's empirical-selection loop) pay the vertex-index map lookups a
// single time. Callers must not modify the returned slices.
func (g *Graph) EdgeEndpointIndices() (src, dst []int32) {
	g.endpointOnce.do(func() {
		g.buildVertexIndex()
		srcIdx := make([]int32, len(g.edges))
		dstIdx := make([]int32, len(g.edges))
		for i, e := range g.edges {
			srcIdx[i] = g.index[e.Src]
			dstIdx[i] = g.index[e.Dst]
		}
		g.srcIdx = srcIdx
		g.dstIdx = dstIdx
	})
	return g.srcIdx, g.dstIdx
}

// buildDegrees computes in/out degree per dense vertex index.
func (g *Graph) buildDegrees() {
	g.degOnce.do(func() {
		g.buildVertexIndex()
		out := make([]int32, len(g.verts))
		in := make([]int32, len(g.verts))
		for _, e := range g.edges {
			out[g.index[e.Src]]++
			in[g.index[e.Dst]]++
		}
		g.outDeg = out
		g.inDeg = in
	})
}

// OutDegree returns the out-degree of v (0 if v is not in the graph).
// The index map is ensured separately from the degree view: on a
// generation seeded by Grow the degrees exist before the map does.
func (g *Graph) OutDegree(v VertexID) int {
	g.buildDegrees()
	g.buildIndex()
	if i, ok := g.index[v]; ok {
		return int(g.outDeg[i])
	}
	return 0
}

// InDegree returns the in-degree of v (0 if v is not in the graph).
func (g *Graph) InDegree(v VertexID) int {
	g.buildDegrees()
	g.buildIndex()
	if i, ok := g.index[v]; ok {
		return int(g.inDeg[i])
	}
	return 0
}

// OutDegrees returns the out-degree slice aligned with Vertices().
func (g *Graph) OutDegrees() []int32 {
	g.buildDegrees()
	return g.outDeg
}

// InDegrees returns the in-degree slice aligned with Vertices().
func (g *Graph) InDegrees() []int32 {
	g.buildDegrees()
	return g.inDeg
}

// Reverse returns a new graph with every edge direction flipped. The new
// graph starts at a fresh, process-unique nonzero version so cache layers
// keying artifacts by (pointer, version) can never serve it entries that
// belonged to a freed graph reallocated at the same address.
func (g *Graph) Reverse() *Graph {
	rev := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		rev[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	out := FromEdges(rev)
	out.version.Store(nextGenerationVersion())
	return out
}

// Clone returns a deep copy of the graph's edge list (views are rebuilt
// lazily on the copy). Like Reverse, the copy starts at a fresh nonzero
// version, never shared with any other graph in this process.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	out := FromEdges(edges)
	out.version.Store(nextGenerationVersion())
	return out
}

// Validate checks internal consistency and returns an error describing the
// first problem found. A valid graph has no negative vertex IDs (negative
// IDs are legal for Graph itself but rejected by the generators and the
// engine, which reserve them for internal sentinels).
func (g *Graph) Validate() error {
	for i, e := range g.edges {
		if e.Src < 0 || e.Dst < 0 {
			return fmt.Errorf("graph: edge %d (%d -> %d) has negative vertex ID", i, e.Src, e.Dst)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}

// csr is a compressed sparse row adjacency structure over dense vertex
// indices: neighbors of dense vertex i are adj[offsets[i]:offsets[i+1]].
type csr struct {
	offsets []int64
	adj     []int32
}

func (c *csr) neighbors(i int32) []int32 {
	return c.adj[c.offsets[i]:c.offsets[i+1]]
}

// buildCSR constructs a CSR view. direction selects which endpoint indexes
// the rows: "out" rows are sources, "in" rows are destinations. Neighbor
// lists are sorted by dense index. If dedup is true, duplicate neighbors and
// self loops are removed (used for the undirected projection).
func (g *Graph) buildCSR(direction string, undirected, dedup bool) *csr {
	g.buildVertexIndex()
	n := len(g.verts)
	counts := make([]int64, n+1)
	add := func(a, b int32) {
		counts[a+1]++
	}
	for _, e := range g.edges {
		s, d := g.index[e.Src], g.index[e.Dst]
		if undirected {
			if s == d {
				continue
			}
			add(s, d)
			add(d, s)
			continue
		}
		if direction == "out" {
			add(s, d)
		} else {
			add(d, s)
		}
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	offsets := counts
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	put := func(a, b int32) {
		adj[offsets[a]+cursor[a]] = b
		cursor[a]++
	}
	for _, e := range g.edges {
		s, d := g.index[e.Src], g.index[e.Dst]
		if undirected {
			if s == d {
				continue
			}
			put(s, d)
			put(d, s)
			continue
		}
		if direction == "out" {
			put(s, d)
		} else {
			put(d, s)
		}
	}
	c := &csr{offsets: offsets, adj: adj}
	for i := int32(0); i < int32(n); i++ {
		nb := c.neighbors(i)
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
	}
	if dedup {
		c = c.deduplicate(n)
	}
	return c
}

// deduplicate removes repeated entries from each (already sorted) row.
func (c *csr) deduplicate(n int) *csr {
	newOffsets := make([]int64, n+1)
	newAdj := make([]int32, 0, len(c.adj))
	for i := int32(0); i < int32(n); i++ {
		row := c.neighbors(i)
		var prev int32 = -1
		for _, v := range row {
			if v != prev {
				newAdj = append(newAdj, v)
				prev = v
			}
		}
		newOffsets[i+1] = int64(len(newAdj))
	}
	return &csr{offsets: newOffsets, adj: newAdj}
}

// outCSR returns (building if needed) the out-adjacency CSR.
func (g *Graph) outCSR() *csr {
	g.csrOutOnce.do(func() { g.csrOut = g.buildCSR("out", false, false) })
	return g.csrOut
}

// inCSR returns the in-adjacency CSR.
func (g *Graph) inCSR() *csr {
	g.csrInOnce.do(func() { g.csrIn = g.buildCSR("in", false, false) })
	return g.csrIn
}

// undirCSR returns the undirected, deduplicated, loop-free adjacency CSR.
func (g *Graph) undirCSR() *csr {
	g.csrUndirOnce.do(func() { g.csrUndir = g.buildCSR("", true, true) })
	return g.csrUndir
}

// OutNeighbors returns the dense indices of out-neighbors of dense vertex i,
// sorted, possibly with duplicates if the graph has parallel edges. Callers
// must not modify the returned slice.
func (g *Graph) OutNeighbors(i int32) []int32 { return g.outCSR().neighbors(i) }

// InNeighbors returns the dense indices of in-neighbors of dense vertex i.
func (g *Graph) InNeighbors(i int32) []int32 { return g.inCSR().neighbors(i) }

// UndirectedNeighbors returns the sorted, deduplicated, loop-free neighbor
// set of dense vertex i in the undirected projection of the graph.
func (g *Graph) UndirectedNeighbors(i int32) []int32 { return g.undirCSR().neighbors(i) }
