// Package graph provides the in-memory graph representation used by the
// whole repository: a directed multigraph stored as an edge list, with
// lazily-built compressed sparse row (CSR) adjacency views and exact
// structural statistics (symmetry, triangles, components, diameter).
//
// The representation mirrors GraphX's: the graph is fundamentally a list of
// directed edges over 64-bit vertex identifiers; vertex sets, degrees and
// adjacency are derived views. Vertex identifiers do not need to be dense,
// but all generators in this module produce dense IDs in [0, NumVertices).
//
// Edges live in one of two tiers. The dense tier is a plain []Edge slice —
// cheap to build and mutate, O(E) resident. The block tier (BlockStore)
// keeps edges delta-varint-encoded in fixed-size blocks that decode on
// demand, optionally served straight from an on-disk file, so a graph's
// resident cost is the compressed bytes (or nothing at all). Both tiers
// answer the same streaming iteration API (ForEachEdgeBlock / EdgeSeq) and
// produce bit-identical derived views, fingerprints and generation chains;
// only Edges()/Weights(), which promise a dense slice, force a block graph
// to materialize.
package graph

import (
	"errors"
	"fmt"
	"iter"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"cutfit/internal/rng"
)

// VertexID identifies a vertex. Like GraphX's VertexId it is a 64-bit
// integer; it carries no other meaning, although the SC/DC partitioning
// strategies deliberately exploit any locality encoded in consecutive IDs.
type VertexID int64

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Graph is a directed multigraph stored as an edge list. It is cheap to
// construct and append to; adjacency views are built lazily and cached.
//
// Retraction is represented by tombstones: Shrink marks dense edge
// positions dead in a bitset instead of splicing the edge list, so every
// per-edge artifact computed against the dense list (partition
// assignments, scattered topologies) stays index-aligned across a
// retraction. Edges() and NumEdges() keep dense semantics — they include
// tombstoned slots — while NumLiveEdges/EdgeAlive expose liveness and all
// derived views (degrees, CSRs, stats) skip dead edges. Once tombstones
// pass a density threshold a new generation is compacted to a fresh dense
// list (see Shrink).
//
// Edges optionally carry float64 weights in a parallel slice (nil when
// the graph is unweighted, so the common case pays nothing). Weights flow
// through the partitioning metrics and the streaming strategies' degree
// tables; an all-ones weighting is bit-identical to the unweighted path.
//
// Concurrency: a Graph is safe for any number of concurrent readers,
// including concurrent *first* accesses — every lazy view build is guarded
// by its own viewOnce, so N goroutines racing on an unbuilt view elect one
// builder and the rest observe the finished result. This is what lets one
// graph back many simultaneous engine runs and cache lookups in the serving
// layer. Mutation (AddEdge/AddEdges) is NOT safe concurrently with reads;
// mutate before sharing.
type Graph struct {
	edges []Edge

	// weights holds the per-edge weight aligned with edges, or nil for an
	// unweighted graph (every edge then weighs 1).
	weights []float64

	// blocks, when non-nil, is the graph's canonical edge storage: the
	// compressed block tier. edges/weights are then merely a cached dense
	// materialization, built on demand under denseOnce (Edges() is the
	// only path that forces it). Mutation (AddEdge/AddEdges) materializes
	// and detaches the store, making the dense tier canonical again.
	blocks    *BlockStore
	denseOnce viewOnce

	// dead is the tombstone bitset over dense edge positions (bit i set =
	// edge i retracted); words beyond len(dead) are implicitly alive, so a
	// nil bitset means every edge is live. numDead counts the set bits.
	dead    []uint64
	numDead int

	// version counts mutations; cache layers include it in their keys so
	// entries computed against a superseded edge list can never be served
	// for the mutated graph.
	version atomic.Uint64

	// Cached derived views, built on first use. Each group is guarded by
	// its own viewOnce; the fields themselves are written only inside the
	// owning viewOnce's build.
	vertsOnce    viewOnce
	verts        []VertexID // sorted unique vertex IDs
	idxOnce      viewOnce
	index        map[VertexID]int32 // vertex ID -> dense index into verts
	indexArr     []int32            // compact-ID fast path for index (-1 = absent); nil selects the map
	degOnce      viewOnce
	outDeg       []int32 // per dense index
	inDeg        []int32
	endpointOnce viewOnce
	srcIdx       []int32 // per-edge dense source index, aligned with edges
	dstIdx       []int32 // per-edge dense destination index
	csrOutOnce   viewOnce
	csrOut       *csr
	csrInOnce    viewOnce
	csrIn        *csr
	csrUndirOnce viewOnce
	csrUndir     *csr // undirected, deduplicated, no self loops
	fpOnce       viewOnce
	fp           uint64 // content fingerprint: edge fold + tombstone fold
	fpEdges      uint64 // sequential edge/weight fold only (extendable by Grow)
}

// viewOnce guards one lazily-built derived view for concurrent first use.
// Unlike sync.Once it is resettable (mutation invalidates views), and the
// fast path is a single atomic load. The atomic store after build publishes
// the view fields to every goroutine that observes ready == true.
type viewOnce struct {
	ready atomic.Bool
	mu    sync.Mutex
}

// do runs build exactly once between resets, blocking concurrent callers
// until the view is published.
func (o *viewOnce) do(build func()) {
	if o.ready.Load() {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.ready.Load() {
		build()
		o.ready.Store(true)
	}
}

func (o *viewOnce) reset() { o.ready.Store(false) }

// markBuilt publishes a view that was seeded directly (Grow pre-populates
// derived views on a new generation before it escapes to other goroutines).
func (o *viewOnce) markBuilt() { o.ready.Store(true) }

// built reports whether the view is currently available without building it.
func (o *viewOnce) built() bool { return o.ready.Load() }

// generationSeed hands out process-unique version bases for graphs created
// from other graphs (Clone, Reverse, Grow). Cache layers key artifacts by
// (graph pointer, version); a derived graph allocated at a freed parent's
// address with version 0 would alias the parent's key space, so every
// derived graph starts from a fresh, never-reused version range. The <<32
// shift leaves each generation 2^32 in-place mutations before ranges could
// collide.
var generationSeed atomic.Uint64

func nextGenerationVersion() uint64 { return generationSeed.Add(1) << 32 }

// New returns an empty graph with capacity for hintEdges edges.
func New(hintEdges int) *Graph {
	if hintEdges < 0 {
		hintEdges = 0
	}
	return &Graph{edges: make([]Edge, 0, hintEdges)}
}

// FromEdges builds a graph that takes ownership of edges.
func FromEdges(edges []Edge) *Graph {
	return &Graph{edges: edges}
}

// FromWeightedEdges builds a weighted graph that takes ownership of both
// slices; weights[i] is the weight of edges[i]. A nil weights is the
// unweighted graph (every edge weighs 1). Lengths must match.
func FromWeightedEdges(edges []Edge, weights []float64) (*Graph, error) {
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(weights), len(edges))
	}
	return &Graph{edges: edges, weights: weights}, nil
}

// FromBlocks builds a graph over a block-compressed edge store (see
// BlockBuilder and OpenBlocks). Like other derived-graph constructors it
// starts at a fresh process-unique version.
func FromBlocks(bs *BlockStore) *Graph {
	g := &Graph{blocks: bs}
	g.version.Store(nextGenerationVersion())
	return g
}

// Blocks returns the graph's block store, or nil on the dense tier.
// Consumers that can iterate block-at-a-time check this to avoid forcing
// a dense materialization.
func (g *Graph) Blocks() *BlockStore { return g.blocks }

// BlockBacked reports whether the graph's canonical edge storage is the
// compressed block tier.
func (g *Graph) BlockBacked() bool { return g.blocks != nil }

// ensureDense materializes the dense edge (and weight) slices of a
// block-backed graph, once. The dense copy caches alongside the store;
// Edges()/Weights() document this as the compatibility fallback.
func (g *Graph) ensureDense() {
	if g.blocks == nil {
		return
	}
	g.denseOnce.do(func() {
		ne := g.blocks.numEdges
		edges := make([]Edge, 0, ne)
		var weights []float64
		if g.blocks.weighted {
			weights = make([]float64, 0, ne)
		}
		g.mustEdgeBlocks(func(_ int, es []Edge, ws []float64) {
			edges = append(edges, es...)
			if weights != nil {
				weights = append(weights, ws...)
			}
		})
		g.edges = edges
		g.weights = weights
	})
}

// detachBlocks makes the dense tier canonical before a mutation: the
// materialized slices become the graph's storage and the immutable store
// (possibly shared with clones or parent generations) is dropped.
func (g *Graph) detachBlocks() {
	if g.blocks == nil {
		return
	}
	g.ensureDense()
	g.blocks = nil
	g.denseOnce.reset()
}

// AddEdge appends a directed edge. Any cached views are invalidated.
func (g *Graph) AddEdge(src, dst VertexID) {
	g.detachBlocks()
	g.edges = append(g.edges, Edge{Src: src, Dst: dst})
	if g.weights != nil {
		g.weights = append(g.weights, 1)
	}
	g.invalidate()
}

// AddEdges appends a batch of directed edges (weight 1 each on a weighted
// graph).
func (g *Graph) AddEdges(edges ...Edge) {
	g.detachBlocks()
	g.edges = append(g.edges, edges...)
	if g.weights != nil {
		for range edges {
			g.weights = append(g.weights, 1)
		}
	}
	g.invalidate()
}

func (g *Graph) invalidate() {
	g.version.Add(1)
	g.vertsOnce.reset()
	g.verts = nil
	g.idxOnce.reset()
	g.index = nil
	g.indexArr = nil
	g.degOnce.reset()
	g.outDeg = nil
	g.inDeg = nil
	g.endpointOnce.reset()
	g.srcIdx = nil
	g.dstIdx = nil
	g.csrOutOnce.reset()
	g.csrOut = nil
	g.csrInOnce.reset()
	g.csrIn = nil
	g.csrUndirOnce.reset()
	g.csrUndir = nil
	g.fpOnce.reset()
	g.fp = 0
	g.fpEdges = 0
}

// fingerprintSeed starts every fingerprint chain; folding edges onto it is
// order-dependent, so a graph and its grown generations never collide.
const fingerprintSeed = 0x637574666974_3031 // "cutfit01"

// foldFingerprint chains edges onto a running fingerprint. Sequential
// chaining is what lets Grow seed a child generation's fingerprint from the
// parent's by folding only the appended suffix.
func foldFingerprint(h uint64, edges []Edge) uint64 {
	for _, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
	}
	return h
}

// foldFingerprintW chains weighted edges onto a running fingerprint. A nil
// weights degrades to the unweighted fold, so unweighted graphs keep their
// historical fingerprints.
func foldFingerprintW(h uint64, edges []Edge, weights []float64) uint64 {
	if weights == nil {
		return foldFingerprint(h, edges)
	}
	for i, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
		h = rng.Combine2(h, math.Float64bits(weights[i]))
	}
	return h
}

// foldFingerprintOnes folds an unweighted suffix onto a weighted chain:
// every edge carries the implicit weight 1, folded exactly as
// foldFingerprintW would fold an explicit 1.
func foldFingerprintOnes(h uint64, edges []Edge) uint64 {
	one := math.Float64bits(1)
	for _, e := range edges {
		h = rng.Combine2(h, rng.Combine2(uint64(e.Src), uint64(e.Dst)))
		h = rng.Combine2(h, one)
	}
	return h
}

// tombstoneSeed separates the tombstone fold from the edge fold so a
// shrunk graph can never collide with a grown one.
const tombstoneSeed = 0x746f6d6273746e65 // "tombstne"

// foldDeadFingerprint folds the tombstone set onto the edge fingerprint.
// The fold visits dead positions in ascending order, making the result a
// pure function of (edge list, dead set) — independent of the sequence of
// Shrink calls that produced the set, so a decoded snapshot recomputes the
// identical value.
func foldDeadFingerprint(h uint64, dead []uint64, numDead int) uint64 {
	if numDead == 0 {
		return h
	}
	h = rng.Combine2(h, tombstoneSeed)
	for w, word := range dead {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			h = rng.Combine2(h, uint64(w*64+tz))
			word &= word - 1
		}
	}
	return h
}

// Fingerprint returns a 64-bit content fingerprint of the graph content —
// unlike Version (a process-local mutation counter) it is a pure function
// of the edges, their weights and the tombstone set, so it identifies the
// same graph content across processes. Persistence layers use it to pair
// durable artifacts with the graph they were computed for and as the
// stable part of disk-tier cache keys. Built lazily and cached; mutation
// invalidates it like any other derived view.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.do(func() {
		h := uint64(fingerprintSeed)
		weighted := g.Weighted()
		g.mustEdgeBlocks(func(_ int, edges []Edge, weights []float64) {
			if weighted {
				h = foldFingerprintW(h, edges, weights)
			} else {
				h = foldFingerprint(h, edges)
			}
		})
		g.fpEdges = h
		g.fp = foldDeadFingerprint(g.fpEdges, g.dead, g.numDead)
	})
	return g.fp
}

// CheckedFingerprint is Fingerprint with block decode failures returned
// as errors instead of panicking. Restore paths validating untrusted
// on-disk block graphs go through here, where a bad payload is an input
// error, not a programmer error; the computed value is cached exactly as
// Fingerprint's is, so a successful check makes later Fingerprint calls
// free.
func (g *Graph) CheckedFingerprint() (uint64, error) {
	var ferr error
	g.fpOnce.do(func() {
		h := uint64(fingerprintSeed)
		weighted := g.Weighted()
		if ferr = g.edgeBlocks(func(_ int, edges []Edge, weights []float64) error {
			if weighted {
				h = foldFingerprintW(h, edges, weights)
			} else {
				h = foldFingerprint(h, edges)
			}
			return nil
		}); ferr != nil {
			return
		}
		g.fpEdges = h
		g.fp = foldDeadFingerprint(g.fpEdges, g.dead, g.numDead)
	})
	if ferr != nil {
		g.fpOnce.reset()
		return 0, ferr
	}
	return g.fp, nil
}

// errStopIteration signals a deliberate early exit from ForEachEdgeBlock;
// it is swallowed before reaching the caller.
var errStopIteration = errors.New("graph: stop iteration")

// edgeBlocks streams the dense edge list block-at-a-time through fn:
// fn(start, edges, weights) where start is the dense position of edges[0]
// and weights is nil on an unweighted graph. The dense tier yields one
// block (the whole slice); the block tier decodes each block into pooled
// scratch, valid only during the callback. Tombstoned slots are included
// (filter with EdgeAlive on start+i). A non-nil error from fn stops the
// scan; block decode failures surface the same way.
func (g *Graph) edgeBlocks(fn func(start int, edges []Edge, weights []float64) error) error {
	if g.blocks != nil && !g.denseOnce.built() {
		return g.blocks.forEach(fn)
	}
	if len(g.edges) == 0 {
		return nil
	}
	return fn(0, g.edges, g.weights)
}

// mustEdgeBlocks is edgeBlocks for the internal view builders, which have
// no error channel. A block decode failure (an I/O error on a file-backed
// store, or payload corruption) is unrecoverable mid-build and panics —
// the same way an mmap-backed store would surface I/O failure.
func (g *Graph) mustEdgeBlocks(fn func(start int, edges []Edge, weights []float64)) {
	err := g.edgeBlocks(func(start int, edges []Edge, weights []float64) error {
		fn(start, edges, weights)
		return nil
	})
	if err != nil {
		panic("graph: block decode failed: " + err.Error())
	}
}

// ForEachEdgeBlock streams the dense edge list through fn in contiguous
// chunks without materializing it: fn(start, edges, weights) where start
// is the dense position of edges[0] and weights is nil on an unweighted
// graph. On the dense tier fn sees the whole list once; on the block tier
// each block decodes into pooled scratch that is valid only during the
// callback — fn must not retain or modify the slices. Tombstoned slots
// are included, aligned with the dense index space (filter with
// EdgeAlive(start+i)). Returning a non-nil error stops the scan and
// propagates, except errStopIteration-style sentinels the caller defines;
// block decode failures also surface here.
func (g *Graph) ForEachEdgeBlock(fn func(start int, edges []Edge, weights []float64) error) error {
	return g.edgeBlocks(fn)
}

// EdgeSeq returns a range-able sequence over (dense position, edge),
// including tombstoned slots, streaming block-at-a-time on the block
// tier. Breaking out of the range is O(1); the sequence is single-use per
// call but re-obtainable.
func (g *Graph) EdgeSeq() iter.Seq2[int, Edge] {
	return func(yield func(int, Edge) bool) {
		err := g.edgeBlocks(func(start int, edges []Edge, _ []float64) error {
			for i, e := range edges {
				if !yield(start+i, e) {
					return errStopIteration
				}
			}
			return nil
		})
		if err != nil && err != errStopIteration {
			panic("graph: block decode failed: " + err.Error())
		}
	}
}

// EdgeAt returns the edge at dense position i without materializing the
// dense slice: block graphs decode the covering block through a small LRU.
func (g *Graph) EdgeAt(i int) Edge {
	return g.edgeAt(i)
}

func (g *Graph) edgeAt(i int) Edge {
	if g.blocks != nil && !g.denseOnce.built() {
		e, err := g.blocks.EdgeAt(i)
		if err != nil {
			panic("graph: block decode failed: " + err.Error())
		}
		return e
	}
	return g.edges[i]
}

// EdgeRange returns the edges and weights of dense positions [lo, hi).
// On the dense tier the results alias the graph's slices (do not modify);
// on the block tier they are freshly decoded copies. weights is nil on an
// unweighted graph.
func (g *Graph) EdgeRange(lo, hi int) ([]Edge, []float64) {
	if hi <= lo {
		return nil, nil
	}
	if g.blocks == nil || g.denseOnce.built() {
		if g.weights == nil {
			return g.edges[lo:hi:hi], nil
		}
		return g.edges[lo:hi:hi], g.weights[lo:hi:hi]
	}
	bs := g.blocks
	out := make([]Edge, hi-lo)
	var w []float64
	if bs.weighted {
		w = make([]float64, hi-lo)
	}
	sc := blockScratchPool.Get().(*blockScratch)
	defer blockScratchPool.Put(sc)
	for b := lo / bs.blockEdges; b*bs.blockEdges < hi; b++ {
		es, ws, err := bs.DecodeBlockInto(b, sc.edges, sc.weights)
		if err != nil {
			panic("graph: block decode failed: " + err.Error())
		}
		sc.edges = es[:0]
		if ws != nil && !bs.isSharedOnes(ws) {
			sc.weights = ws[:0]
		}
		bLo, _ := bs.BlockRange(b)
		from, to := 0, len(es)
		if bLo < lo {
			from = lo - bLo
		}
		if bLo+to > hi {
			to = hi - bLo
		}
		copy(out[bLo+from-lo:], es[from:to])
		if w != nil {
			copy(w[bLo+from-lo:], ws[from:to])
		}
	}
	return out, w
}

// LookupIndices fills src and dst (each at least len(edges) long) with
// the dense endpoint indices of edges, which must be edges of g. It is
// the batch, allocation-free alternative to EdgeEndpointIndices for
// block-at-a-time consumers that must not materialize O(E) index slices.
func (g *Graph) LookupIndices(edges []Edge, src, dst []int32) {
	g.buildVertexIndex()
	if arr := g.indexArr; arr != nil {
		for i, e := range edges {
			src[i] = arr[e.Src]
			dst[i] = arr[e.Dst]
		}
		return
	}
	idx := g.index
	for i, e := range edges {
		src[i] = idx[e.Src]
		dst[i] = idx[e.Dst]
	}
}

// Version returns the mutation counter: 0 for a graph built by New or
// FromEdges, a fresh process-unique base for graphs derived from another
// graph (Clone, Reverse, Grow), incremented by every AddEdge/AddEdges.
// Cache layers keying artifacts by graph include it so entries for a
// superseded edge list are unreachable.
func (g *Graph) Version() uint64 { return g.version.Load() }

// NumEdges returns the number of dense edge slots, including duplicates,
// self loops and tombstoned edges. Per-edge artifacts (assignments,
// endpoint indices) are aligned with this dense list; use NumLiveEdges for
// the count of edges that are actually present.
func (g *Graph) NumEdges() int {
	if g.blocks != nil {
		return g.blocks.numEdges
	}
	return len(g.edges)
}

// NumLiveEdges returns the number of edges that are not tombstoned.
func (g *Graph) NumLiveEdges() int { return g.NumEdges() - g.numDead }

// NumDeadEdges returns the number of tombstoned edge slots.
func (g *Graph) NumDeadEdges() int { return g.numDead }

// EdgeAlive reports whether dense edge slot i is live (not tombstoned).
func (g *Graph) EdgeAlive(i int) bool {
	w := i >> 6
	if w >= len(g.dead) {
		return true
	}
	return g.dead[w]&(1<<(uint(i)&63)) == 0
}

// Tombstones returns the tombstone bitset over dense edge positions (bit i
// set = edge i retracted); words beyond the slice are implicitly alive and
// a nil return means no edge is tombstoned. Callers must not modify it.
func (g *Graph) Tombstones() []uint64 { return g.dead }

// Edges returns the underlying dense edge slice, including tombstoned
// slots (check EdgeAlive, or Tombstones for bulk scans). Callers must not
// modify it. On a block-backed graph this is the compatibility fallback:
// it materializes (and caches) the full dense slice, defeating the block
// tier's memory advantage — streaming consumers use ForEachEdgeBlock,
// EdgeSeq, EdgeAt or EdgeRange instead.
func (g *Graph) Edges() []Edge {
	g.ensureDense()
	return g.edges
}

// Weighted reports whether the graph carries per-edge weights.
func (g *Graph) Weighted() bool {
	if g.blocks != nil {
		return g.blocks.weighted
	}
	return g.weights != nil
}

// Weights returns the per-edge weight slice aligned with Edges(), or nil
// for an unweighted graph (every edge then weighs 1). Callers must not
// modify it. Like Edges, this materializes a block-backed graph.
func (g *Graph) Weights() []float64 {
	if g.blocks != nil && !g.blocks.weighted {
		return nil
	}
	g.ensureDense()
	return g.weights
}

// EdgeWeight returns the weight of dense edge slot i (1 on an unweighted
// graph), without materializing a block-backed graph.
func (g *Graph) EdgeWeight(i int) float64 {
	if g.blocks != nil && !g.denseOnce.built() {
		w, err := g.blocks.WeightAt(i)
		if err != nil {
			panic("graph: block decode failed: " + err.Error())
		}
		return w
	}
	if g.weights == nil {
		return 1
	}
	return g.weights[i]
}

// buildVerts computes the sorted unique vertex list by scanning the edge
// list. The dense index map is a separate view (buildIndex) so generations
// seeded by Grow — which inherit a merged vertex list without scanning —
// only pay for the map if something actually looks vertices up by ID.
//
// Two passes: a range scan first, and when the ID space is non-negative
// and at most ~8 bits per edge wide — every generator in this module, and
// real SNAP datasets — a bitmap collects the vertex set with no hashing,
// no sort and O(maxID/8) bytes of scratch. Sparse or negative ID spaces
// fall back to the historical map path. Both passes stream block-at-a-time
// so the block tier never materializes the edge list for its vertex view.
func (g *Graph) buildVerts() {
	g.vertsOnce.do(func() {
		ne := g.NumEdges()
		if ne == 0 {
			g.verts = []VertexID{}
			return
		}
		minV, maxV := VertexID(math.MaxInt64), VertexID(math.MinInt64)
		g.mustEdgeBlocks(func(_ int, edges []Edge, _ []float64) {
			for _, e := range edges {
				if e.Src < minV {
					minV = e.Src
				}
				if e.Src > maxV {
					maxV = e.Src
				}
				if e.Dst < minV {
					minV = e.Dst
				}
				if e.Dst > maxV {
					maxV = e.Dst
				}
			}
		})
		if minV >= 0 && uint64(maxV) <= uint64(ne)*8+1024 {
			words := make([]uint64, (int64(maxV)>>6)+1)
			g.mustEdgeBlocks(func(_ int, edges []Edge, _ []float64) {
				for _, e := range edges {
					words[e.Src>>6] |= 1 << (uint64(e.Src) & 63)
					words[e.Dst>>6] |= 1 << (uint64(e.Dst) & 63)
				}
			})
			verts := make([]VertexID, 0, popcount(words))
			for wi, w := range words {
				for w != 0 {
					tz := bits.TrailingZeros64(w)
					verts = append(verts, VertexID(wi*64+tz))
					w &= w - 1
				}
			}
			g.verts = verts
			return
		}
		seen := make(map[VertexID]struct{}, ne)
		g.mustEdgeBlocks(func(_ int, edges []Edge, _ []float64) {
			for _, e := range edges {
				seen[e.Src] = struct{}{}
				seen[e.Dst] = struct{}{}
			}
		})
		verts := make([]VertexID, 0, len(seen))
		for v := range seen {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		g.verts = verts
	})
}

// buildIndex computes the vertex ID -> dense index view from the vertex
// list: a compact int32 array when the ID space is dense enough (at most
// 2·|V|+1024 slots, so waste is bounded), the historical map otherwise.
// All internal consumers go through lookup/denseIndexOf, which pick the
// built variant.
func (g *Graph) buildIndex() {
	g.idxOnce.do(func() {
		g.buildVerts()
		n := len(g.verts)
		if n > 0 && g.verts[0] >= 0 && int64(g.verts[n-1]) < int64(2*n+1024) {
			arr := make([]int32, int(g.verts[n-1])+1)
			for i := range arr {
				arr[i] = -1
			}
			for i, v := range g.verts {
				arr[v] = int32(i)
			}
			g.indexArr = arr
			return
		}
		index := make(map[VertexID]int32, n)
		for i, v := range g.verts {
			index[v] = int32(i)
		}
		g.index = index
	})
}

// lookup returns the dense index of v and whether it exists, via whichever
// index variant buildIndex produced. Callers must have built the index.
func (g *Graph) lookup(v VertexID) (int32, bool) {
	if arr := g.indexArr; arr != nil {
		if v < 0 || int64(v) >= int64(len(arr)) {
			return 0, false
		}
		if i := arr[v]; i >= 0 {
			return i, true
		}
		return 0, false
	}
	i, ok := g.index[v]
	return i, ok
}

// denseIndexOf resolves an endpoint of one of the graph's own edges —
// always present, so the absence checks of lookup are skipped.
func (g *Graph) denseIndexOf(v VertexID) int32 {
	if arr := g.indexArr; arr != nil {
		return arr[v]
	}
	return g.index[v]
}

// buildVertexIndex builds both the vertex list and the index map (the
// historical combined entry point; per-edge consumers below want the map).
func (g *Graph) buildVertexIndex() {
	g.buildIndex()
}

// NumVertices returns the number of distinct vertices that appear as an
// endpoint of at least one edge.
func (g *Graph) NumVertices() int {
	g.buildVerts()
	return len(g.verts)
}

// Vertices returns the sorted list of distinct vertex IDs. Callers must not
// modify it.
func (g *Graph) Vertices() []VertexID {
	g.buildVerts()
	return g.verts
}

// Index returns the dense index of v in Vertices() and whether v exists.
func (g *Graph) Index(v VertexID) (int32, bool) {
	g.buildIndex()
	return g.lookup(v)
}

// EdgeEndpointIndices returns the dense endpoint indices of every edge,
// aligned with Edges(): edge i goes from dense vertex src[i] to dst[i].
// The slices are built once and cached, so repeated consumers (the
// partitioned-graph builder runs once per candidate strategy in the
// advisor's empirical-selection loop) pay the vertex-index map lookups a
// single time. Callers must not modify the returned slices. The slices
// are O(E) — block-tier consumers stream LookupIndices over blocks
// instead of calling this.
func (g *Graph) EdgeEndpointIndices() (src, dst []int32) {
	g.endpointOnce.do(func() {
		g.buildVertexIndex()
		ne := g.NumEdges()
		srcIdx := make([]int32, ne)
		dstIdx := make([]int32, ne)
		g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
			g.LookupIndices(edges, srcIdx[start:], dstIdx[start:])
		})
		g.srcIdx = srcIdx
		g.dstIdx = dstIdx
	})
	return g.srcIdx, g.dstIdx
}

// buildDegrees computes in/out degree per dense vertex index. Tombstoned
// edges do not count.
func (g *Graph) buildDegrees() {
	g.degOnce.do(func() {
		g.buildVertexIndex()
		out := make([]int32, len(g.verts))
		in := make([]int32, len(g.verts))
		g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
			for i, e := range edges {
				if g.numDead != 0 && !g.EdgeAlive(start+i) {
					continue
				}
				out[g.denseIndexOf(e.Src)]++
				in[g.denseIndexOf(e.Dst)]++
			}
		})
		g.outDeg = out
		g.inDeg = in
	})
}

// OutDegree returns the out-degree of v (0 if v is not in the graph).
// The index map is ensured separately from the degree view: on a
// generation seeded by Grow the degrees exist before the map does.
func (g *Graph) OutDegree(v VertexID) int {
	g.buildDegrees()
	g.buildIndex()
	if i, ok := g.lookup(v); ok {
		return int(g.outDeg[i])
	}
	return 0
}

// InDegree returns the in-degree of v (0 if v is not in the graph).
func (g *Graph) InDegree(v VertexID) int {
	g.buildDegrees()
	g.buildIndex()
	if i, ok := g.lookup(v); ok {
		return int(g.inDeg[i])
	}
	return 0
}

// OutDegrees returns the out-degree slice aligned with Vertices().
func (g *Graph) OutDegrees() []int32 {
	g.buildDegrees()
	return g.outDeg
}

// InDegrees returns the in-degree slice aligned with Vertices().
func (g *Graph) InDegrees() []int32 {
	g.buildDegrees()
	return g.inDeg
}

// Reverse returns a new graph with every edge direction flipped. The new
// graph starts at a fresh, process-unique nonzero version so cache layers
// keying artifacts by (pointer, version) can never serve it entries that
// belonged to a freed graph reallocated at the same address.
func (g *Graph) Reverse() *Graph {
	if g.blocks != nil && !g.denseOnce.built() {
		// Stream block-at-a-time into a reversed block store: edge
		// positions are preserved, so the tombstone bitset carries over.
		bb := NewBlockBuilder(g.blocks.blockEdges)
		scratch := make([]Edge, 0, g.blocks.blockEdges)
		g.mustEdgeBlocks(func(_ int, edges []Edge, weights []float64) {
			scratch = scratch[:0]
			for _, e := range edges {
				scratch = append(scratch, Edge{Src: e.Dst, Dst: e.Src})
			}
			if g.blocks.weighted && weights == nil {
				weights = g.blocks.onesSlice(len(edges))
			}
			bb.Append(scratch, weights)
		})
		out := FromBlocks(bb.Finish())
		out.dead = cloneDead(g.dead)
		out.numDead = g.numDead
		return out
	}
	rev := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		rev[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	out := FromEdges(rev)
	out.weights = cloneWeights(g.weights)
	out.dead = cloneDead(g.dead)
	out.numDead = g.numDead
	out.version.Store(nextGenerationVersion())
	return out
}

// Clone returns an independent copy of the graph: mutating either graph
// can never affect the other. On the dense tier the edge list, weights and
// tombstones are deep-copied; a block-backed clone shares the immutable
// block store (mutation detaches it first, so independence holds) and
// copies only the tombstones. Like Reverse, the copy starts at a fresh
// nonzero version, never shared with any other graph in this process.
func (g *Graph) Clone() *Graph {
	if g.blocks != nil && !g.denseOnce.built() {
		out := FromBlocks(g.blocks)
		out.dead = cloneDead(g.dead)
		out.numDead = g.numDead
		return out
	}
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	out := FromEdges(edges)
	out.weights = cloneWeights(g.weights)
	out.dead = cloneDead(g.dead)
	out.numDead = g.numDead
	out.version.Store(nextGenerationVersion())
	return out
}

func cloneWeights(w []float64) []float64 {
	if w == nil {
		return nil
	}
	out := make([]float64, len(w))
	copy(out, w)
	return out
}

func cloneDead(d []uint64) []uint64 {
	if d == nil {
		return nil
	}
	out := make([]uint64, len(d))
	copy(out, d)
	return out
}

// popcount counts the set bits of a tombstone bitset.
func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// RestoreWeights attaches a decoded weight slice to the graph (persistence
// layers reassemble graph state section by section). The weights must
// align with the dense edge list and be finite and positive. Only the
// fingerprint view is invalidated — weights change no structural view.
func (g *Graph) RestoreWeights(weights []float64) error {
	if g.blocks != nil {
		return fmt.Errorf("graph: cannot restore a dense weight slice onto a block-backed graph (weights live in the block sidecars)")
	}
	if weights == nil {
		g.weights = nil
		g.fpOnce.reset()
		return nil
	}
	if len(weights) != len(g.edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(weights), len(g.edges))
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return fmt.Errorf("graph: edge %d has invalid weight %v (must be finite and positive)", i, w)
		}
	}
	g.weights = weights
	g.fpOnce.reset()
	return nil
}

// RestoreTombstones attaches a decoded tombstone bitset. The bitset must
// fit the dense edge list (no bits at or beyond NumEdges) and numDead must
// equal its popcount. The vertex set is unchanged by tombstones (dead
// edges keep their endpoints listed), so only the views that skip dead
// edges — degrees, CSRs, the fingerprint — are invalidated.
func (g *Graph) RestoreTombstones(dead []uint64, numDead int) error {
	ne := g.NumEdges()
	if len(dead)*64 > (ne+63)&^63 {
		return fmt.Errorf("graph: tombstone bitset spans %d words for %d edges", len(dead), ne)
	}
	if tail := ne & 63; tail != 0 && len(dead) == (ne+63)/64 {
		if dead[len(dead)-1]>>uint(tail) != 0 {
			return fmt.Errorf("graph: tombstone bitset has bits beyond edge %d", ne-1)
		}
	}
	if pc := popcount(dead); pc != numDead {
		return fmt.Errorf("graph: tombstone count %d disagrees with bitset popcount %d", numDead, pc)
	}
	g.dead = dead
	g.numDead = numDead
	g.degOnce.reset()
	g.outDeg, g.inDeg = nil, nil
	g.csrOutOnce.reset()
	g.csrOut = nil
	g.csrInOnce.reset()
	g.csrIn = nil
	g.csrUndirOnce.reset()
	g.csrUndir = nil
	g.fpOnce.reset()
	return nil
}

// Validate checks internal consistency and returns an error describing the
// first problem found. A valid graph has no negative vertex IDs (negative
// IDs are legal for Graph itself but rejected by the generators and the
// engine, which reserve them for internal sentinels), weights aligned with
// the dense edge list (finite, positive), and a tombstone bitset whose
// popcount matches the recorded dead count with no bits beyond the list.
func (g *Graph) Validate() error {
	if g.blocks == nil && g.weights != nil && len(g.weights) != len(g.edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(g.weights), len(g.edges))
	}
	weighted := g.Weighted()
	if err := g.edgeBlocks(func(start int, edges []Edge, weights []float64) error {
		for i, e := range edges {
			if e.Src < 0 || e.Dst < 0 {
				return fmt.Errorf("graph: edge %d (%d -> %d) has negative vertex ID", start+i, e.Src, e.Dst)
			}
		}
		if weighted && weights != nil {
			for i, w := range weights {
				if !(w > 0) || math.IsInf(w, 1) {
					return fmt.Errorf("graph: edge %d has invalid weight %v (must be finite and positive)", start+i, w)
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	ne := g.NumEdges()
	if pc := popcount(g.dead); pc != g.numDead {
		return fmt.Errorf("graph: tombstone count %d disagrees with bitset popcount %d", g.numDead, pc)
	}
	for i := ne; i < len(g.dead)*64; i++ {
		if !g.EdgeAlive(i) {
			return fmt.Errorf("graph: tombstone bitset has bits beyond edge %d", ne-1)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}

// csr is a compressed sparse row adjacency structure over dense vertex
// indices: neighbors of dense vertex i are adj[offsets[i]:offsets[i+1]].
type csr struct {
	offsets []int64
	adj     []int32
}

func (c *csr) neighbors(i int32) []int32 {
	return c.adj[c.offsets[i]:c.offsets[i+1]]
}

// buildCSR constructs a CSR view. direction selects which endpoint indexes
// the rows: "out" rows are sources, "in" rows are destinations. Neighbor
// lists are sorted by dense index. If dedup is true, duplicate neighbors and
// self loops are removed (used for the undirected projection).
func (g *Graph) buildCSR(direction string, undirected, dedup bool) *csr {
	g.buildVertexIndex()
	n := len(g.verts)
	counts := make([]int64, n+1)
	add := func(a, b int32) {
		counts[a+1]++
	}
	g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			s, d := g.denseIndexOf(e.Src), g.denseIndexOf(e.Dst)
			if undirected {
				if s == d {
					continue
				}
				add(s, d)
				add(d, s)
				continue
			}
			if direction == "out" {
				add(s, d)
			} else {
				add(d, s)
			}
		}
	})
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	offsets := counts
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	put := func(a, b int32) {
		adj[offsets[a]+cursor[a]] = b
		cursor[a]++
	}
	g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
		for i, e := range edges {
			if g.numDead != 0 && !g.EdgeAlive(start+i) {
				continue
			}
			s, d := g.denseIndexOf(e.Src), g.denseIndexOf(e.Dst)
			if undirected {
				if s == d {
					continue
				}
				put(s, d)
				put(d, s)
				continue
			}
			if direction == "out" {
				put(s, d)
			} else {
				put(d, s)
			}
		}
	})
	c := &csr{offsets: offsets, adj: adj}
	for i := int32(0); i < int32(n); i++ {
		nb := c.neighbors(i)
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
	}
	if dedup {
		c = c.deduplicate(n)
	}
	return c
}

// deduplicate removes repeated entries from each (already sorted) row.
func (c *csr) deduplicate(n int) *csr {
	newOffsets := make([]int64, n+1)
	newAdj := make([]int32, 0, len(c.adj))
	for i := int32(0); i < int32(n); i++ {
		row := c.neighbors(i)
		var prev int32 = -1
		for _, v := range row {
			if v != prev {
				newAdj = append(newAdj, v)
				prev = v
			}
		}
		newOffsets[i+1] = int64(len(newAdj))
	}
	return &csr{offsets: newOffsets, adj: newAdj}
}

// outCSR returns (building if needed) the out-adjacency CSR.
func (g *Graph) outCSR() *csr {
	g.csrOutOnce.do(func() { g.csrOut = g.buildCSR("out", false, false) })
	return g.csrOut
}

// inCSR returns the in-adjacency CSR.
func (g *Graph) inCSR() *csr {
	g.csrInOnce.do(func() { g.csrIn = g.buildCSR("in", false, false) })
	return g.csrIn
}

// undirCSR returns the undirected, deduplicated, loop-free adjacency CSR.
func (g *Graph) undirCSR() *csr {
	g.csrUndirOnce.do(func() { g.csrUndir = g.buildCSR("", true, true) })
	return g.csrUndir
}

// OutNeighbors returns the dense indices of out-neighbors of dense vertex i,
// sorted, possibly with duplicates if the graph has parallel edges. Callers
// must not modify the returned slice.
func (g *Graph) OutNeighbors(i int32) []int32 { return g.outCSR().neighbors(i) }

// InNeighbors returns the dense indices of in-neighbors of dense vertex i.
func (g *Graph) InNeighbors(i int32) []int32 { return g.inCSR().neighbors(i) }

// UndirectedNeighbors returns the sorted, deduplicated, loop-free neighbor
// set of dense vertex i in the undirected projection of the graph.
func (g *Graph) UndirectedNeighbors(i int32) []int32 { return g.undirCSR().neighbors(i) }
