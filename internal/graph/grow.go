package graph

import (
	"fmt"
	"slices"
)

// Delta describes one generation step: the boundary between a parent graph
// and the generation derived from it by appending an edge suffix and/or
// tombstoning retracted edges. Incremental consumers (the artifact store's
// delta chain, the partitioned-topology patcher) use it to locate the
// suffix, to diff the tombstone sets, and to remap the parent's dense
// vertex indices into the child's.
type Delta struct {
	// Old is the parent generation; New is Old plus the appended suffix
	// and/or the retraction tombstones. Old == New means the step was a
	// no-op (empty suffix, nothing retracted) and no new generation was
	// minted.
	Old, New *Graph
	// OldLen is the parent's dense edge count: New.Edges()[:OldLen] is
	// exactly Old.Edges() (value-wise; liveness may differ — diff the
	// Tombstones bitsets for retractions), and New.Edges()[OldLen:] is the
	// appended suffix. When Compacted is set the prefix relationship does
	// not hold.
	OldLen int
	// OldVersion and NewVersion are the generations' version counters at
	// the time of the step, so cache keys recorded against either side
	// stay pinned even if a graph is later mutated in place.
	OldVersion, NewVersion uint64
	// OldVerts is the parent's sorted vertex list, shared (not copied) with
	// the parent. Callers must not modify it. RemapVertices turns it into a
	// dense-index remap against any descendant generation.
	OldVerts []VertexID
	// Compacted reports that the step rewrote the dense edge list to drop
	// accumulated tombstones: New's edge positions no longer align with
	// Old's, so per-edge artifacts cannot be patched across this boundary.
	// Delta consumers (the artifact store) skip compacted deltas, severing
	// the derivation chain; the child's artifacts are computed fresh.
	Compacted bool
}

// compactionThreshold is the tombstone density (dead/dense) at which a
// generation step compacts the edge list instead of accumulating more
// tombstones: once a quarter of the dense slots are dead, every scan pays
// more for skipping than a one-time rewrite costs.
const compactionThreshold = 4 // compact when numDead*compactionThreshold >= len(edges)

// Grow returns a new Graph — the next generation of g, holding g's edges
// followed by newEdges — without mutating g. The parent stays fully
// usable, so in-flight readers of g (concurrent algorithm runs, cache
// lookups) are never raced; growth is an O(|V| + |delta|)-ish derivation,
// not an O(|E|) rebuild:
//
//   - the vertex list is the parent's merged with the suffix's new IDs
//     (shared outright when the suffix adds no vertices);
//   - degree and edge-endpoint views are carried over — remapped if new
//     vertices shifted dense indices — and patched with the suffix;
//   - the ID->index map and the CSR adjacency views stay lazy.
//
// The edge slice itself is copied (one memcpy), never shared, so neither
// generation can observe the other's mutations. The new generation starts
// at a fresh process-unique version.
//
// An empty suffix is a no-op: Grow returns g itself (Delta.Old ==
// Delta.New), never minting a content-identical generation that would
// orphan every cached artifact key.
//
// Grow only reads g through its concurrency-safe view builders, so it may
// run while other goroutines read g.
func (g *Graph) Grow(newEdges []Edge) (*Graph, Delta) {
	return g.advance(newEdges, nil, nil)
}

// GrowWeighted is Grow with per-edge weights for the appended suffix
// (weights[i] belongs to newEdges[i]; nil means weight 1 each). Growing an
// unweighted parent with a weighted suffix promotes the child to weighted
// — the parent's edges keep weight 1.
func (g *Graph) GrowWeighted(newEdges []Edge, weights []float64) (*Graph, Delta, error) {
	if weights != nil && len(weights) != len(newEdges) {
		return nil, Delta{}, fmt.Errorf("graph: %d weights for %d appended edges", len(weights), len(newEdges))
	}
	ng, d := g.advance(newEdges, weights, nil)
	return ng, d, nil
}

// advance is the one generation-step primitive behind Grow, GrowWeighted,
// Shrink, ShrinkBefore and SlideWindow: append suffix (with optional
// weights) and tombstone the dense positions in removeIdx, producing a new
// generation without mutating g. removeIdx must be sorted ascending,
// deduplicated, in [0, len(g.edges)), and every listed position must be
// live in g — callers resolve and validate. A step with nothing to do
// returns g itself (Delta.Old == Delta.New). A step that pushes tombstone
// density past the compaction threshold rewrites the dense list instead
// (Delta.Compacted).
func (g *Graph) advance(suffix []Edge, sufWeights []float64, removeIdx []int) (*Graph, Delta) {
	oldLen := g.NumEdges()
	oldVerts := g.Vertices()

	if len(suffix) == 0 && len(removeIdx) == 0 {
		v := g.Version()
		return g, Delta{
			Old: g, New: g,
			OldLen:     oldLen,
			OldVersion: v, NewVersion: v,
			OldVerts: oldVerts,
		}
	}

	childWeighted := g.Weighted() || sufWeights != nil

	var ng *Graph
	if g.blocks != nil && !g.denseOnce.built() {
		// Block tier: a pure shrink shares the immutable store outright;
		// an append extends it, sharing every sealed full block with the
		// parent and re-encoding only the partial tail merged with the
		// suffix. Either way the child stays block-backed.
		if len(suffix) == 0 {
			ng = FromBlocks(g.blocks)
		} else {
			ext, err := g.blocks.extend(suffix, sufWeights, childWeighted)
			if err != nil {
				panic("graph: block decode failed: " + err.Error())
			}
			ng = FromBlocks(ext)
		}
	} else if len(suffix) == 0 {
		// Pure shrink: the dense list is unchanged, so the child shares the
		// parent's edge slice (capacity-clamped — neither generation can
		// append into the other) and, when weighted, the weight slice.
		ng = FromEdges(g.edges[:oldLen:oldLen])
		if childWeighted {
			ng.weights = g.weights[:oldLen:oldLen]
		}
	} else {
		combined := make([]Edge, oldLen+len(suffix))
		copy(combined, g.edges)
		copy(combined[oldLen:], suffix)
		ng = FromEdges(combined)
		if childWeighted {
			w := make([]float64, oldLen+len(suffix))
			if g.weights != nil {
				copy(w, g.weights)
			} else {
				for i := 0; i < oldLen; i++ {
					w[i] = 1
				}
			}
			if sufWeights != nil {
				copy(w[oldLen:], sufWeights)
			} else {
				for i := oldLen; i < len(w); i++ {
					w[i] = 1
				}
			}
			ng.weights = w
		}
	}
	ng.version.Store(nextGenerationVersion())

	// Tombstones: the parent's set plus this step's retractions.
	if len(removeIdx) > 0 {
		words := (removeIdx[len(removeIdx)-1] >> 6) + 1
		if len(g.dead) > words {
			words = len(g.dead)
		}
		dead := make([]uint64, words)
		copy(dead, g.dead)
		for _, i := range removeIdx {
			dead[i>>6] |= 1 << (uint(i) & 63)
		}
		ng.dead = dead
		ng.numDead = g.numDead + len(removeIdx)
	} else if g.numDead > 0 {
		ng.dead = g.dead // shared; both generations treat it as immutable
		ng.numDead = g.numDead
	}

	// Past the compaction threshold, rewrite the dense list instead of
	// handing out an ever-sparser generation.
	if ng.numDead > 0 && ng.numDead*compactionThreshold >= ng.NumEdges() {
		compacted := ng.compact()
		return compacted, Delta{
			Old: g, New: compacted,
			OldLen:     oldLen,
			OldVersion: g.Version(), NewVersion: compacted.Version(),
			OldVerts:  oldVerts,
			Compacted: true,
		}
	}

	// The content fingerprint chains sequentially over the edge list, so a
	// parent's built fingerprint extends to the child by folding only the
	// suffix and re-folding the tombstone set. The chain only holds when
	// parent and child agree on weightedness (promoting to weighted
	// re-folds the prefix with weights, so the view stays lazy then).
	if g.fpOnce.built() && g.Weighted() == childWeighted {
		switch {
		case !childWeighted:
			ng.fpEdges = foldFingerprint(g.fpEdges, suffix)
		case sufWeights != nil:
			ng.fpEdges = foldFingerprintW(g.fpEdges, suffix, sufWeights)
		default:
			ng.fpEdges = foldFingerprintOnes(g.fpEdges, suffix)
		}
		ng.fp = foldDeadFingerprint(ng.fpEdges, ng.dead, ng.numDead)
		ng.fpOnce.markBuilt()
	}

	// New vertex IDs introduced by the suffix: endpoints absent from the
	// parent's sorted list. Retraction never removes vertices — tombstoned
	// edges keep their endpoints listed until compaction — so the vertex
	// set can only grow.
	var added []VertexID
	for _, e := range suffix {
		if _, ok := slices.BinarySearch(oldVerts, e.Src); !ok {
			added = append(added, e.Src)
		}
		if _, ok := slices.BinarySearch(oldVerts, e.Dst); !ok {
			added = append(added, e.Dst)
		}
	}
	slices.Sort(added)
	added = slices.Compact(added)

	// Merged vertex list and the old->new dense index remap. When every
	// added ID sorts after the old maximum (the common growth pattern),
	// old dense indices are unchanged and the remap stays nil.
	var remap []int32
	if len(added) == 0 {
		ng.verts = oldVerts // shared; both generations treat it as immutable
	} else if len(oldVerts) == 0 || added[0] > oldVerts[len(oldVerts)-1] {
		merged := make([]VertexID, len(oldVerts)+len(added))
		copy(merged, oldVerts)
		copy(merged[len(oldVerts):], added)
		ng.verts = merged
	} else {
		merged := make([]VertexID, 0, len(oldVerts)+len(added))
		remap = make([]int32, len(oldVerts))
		i, j := 0, 0
		for i < len(oldVerts) || j < len(added) {
			if j == len(added) || (i < len(oldVerts) && oldVerts[i] < added[j]) {
				remap[i] = int32(len(merged))
				merged = append(merged, oldVerts[i])
				i++
			} else {
				merged = append(merged, added[j])
				j++
			}
		}
		ng.verts = merged
	}
	ng.vertsOnce.markBuilt()

	// Dense endpoint indices of the suffix, shared by the degree and
	// endpoint seeding below.
	sufSrc := make([]int32, len(suffix))
	sufDst := make([]int32, len(suffix))
	for i, e := range suffix {
		si, _ := slices.BinarySearch(ng.verts, e.Src)
		di, _ := slices.BinarySearch(ng.verts, e.Dst)
		sufSrc[i], sufDst[i] = int32(si), int32(di)
	}

	nv := len(ng.verts)
	if g.degOnce.built() {
		out := make([]int32, nv)
		in := make([]int32, nv)
		if remap == nil {
			copy(out, g.outDeg)
			copy(in, g.inDeg)
		} else {
			for i := range g.outDeg {
				out[remap[i]] = g.outDeg[i]
				in[remap[i]] = g.inDeg[i]
			}
		}
		for i := range suffix {
			out[sufSrc[i]]++
			in[sufDst[i]]++
		}
		for _, i := range removeIdx {
			e := g.edgeAt(i)
			si, _ := slices.BinarySearch(ng.verts, e.Src)
			di, _ := slices.BinarySearch(ng.verts, e.Dst)
			out[si]--
			in[di]--
		}
		ng.outDeg, ng.inDeg = out, in
		ng.degOnce.markBuilt()
	}
	// Endpoint views are carried over only when old dense indices survive
	// (remap == nil): the seed is then two memcpys — or, on a pure shrink,
	// shared outright (tombstoned slots keep their endpoint entries, so
	// the aligned view is unchanged). When indices shifted, the per-edge
	// remap pass would cost more than most consumers save — the delta
	// topology patcher only needs suffix endpoints, which it computes
	// itself — so the view is left lazy instead.
	if remap == nil && g.endpointOnce.built() {
		if len(suffix) == 0 {
			ng.srcIdx, ng.dstIdx = g.srcIdx, g.dstIdx
		} else {
			src := make([]int32, ng.NumEdges())
			dst := make([]int32, ng.NumEdges())
			copy(src, g.srcIdx)
			copy(dst, g.dstIdx)
			copy(src[oldLen:], sufSrc)
			copy(dst[oldLen:], sufDst)
			ng.srcIdx, ng.dstIdx = src, dst
		}
		ng.endpointOnce.markBuilt()
	}

	return ng, Delta{
		Old: g, New: ng,
		OldLen:     oldLen,
		OldVersion: g.Version(), NewVersion: ng.Version(),
		OldVerts: oldVerts,
	}
}

// compact rewrites the dense edge list of a tombstoned graph, dropping
// dead slots (and their weights). The result is a fresh generation with no
// tombstones and fully lazy views — vertices that only backed dead edges
// disappear here, which is why per-edge artifacts cannot survive the
// boundary.
func (g *Graph) compact() *Graph {
	if g.blocks != nil && !g.denseOnce.built() {
		// Stream live runs into a fresh block store; the compacted
		// generation keeps the block tier.
		bb := NewBlockBuilder(g.blocks.blockEdges)
		g.mustEdgeBlocks(func(start int, edges []Edge, weights []float64) {
			runStart := -1
			flush := func(end int) {
				if runStart < 0 {
					return
				}
				if weights != nil {
					bb.Append(edges[runStart:end], weights[runStart:end])
				} else {
					bb.Append(edges[runStart:end], nil)
				}
				runStart = -1
			}
			for i := range edges {
				if g.EdgeAlive(start + i) {
					if runStart < 0 {
						runStart = i
					}
				} else {
					flush(i)
				}
			}
			flush(len(edges))
		})
		return FromBlocks(bb.Finish())
	}
	edges := make([]Edge, 0, len(g.edges)-g.numDead)
	var weights []float64
	if g.weights != nil {
		weights = make([]float64, 0, len(g.edges)-g.numDead)
	}
	for i, e := range g.edges {
		if !g.EdgeAlive(i) {
			continue
		}
		edges = append(edges, e)
		if weights != nil {
			weights = append(weights, g.weights[i])
		}
	}
	out := FromEdges(edges)
	out.weights = weights
	out.version.Store(nextGenerationVersion())
	return out
}

// RemapVertices returns the dense-index remap from a sorted ancestor
// vertex list to a descendant generation: remap[oldDense] is the vertex's
// dense index in target. A nil, nil return means identity — every old
// vertex keeps its dense index (all vertices added since sort after the
// old maximum). An old vertex missing from target is an error: generation
// steps never remove vertices short of compaction, so it signals a
// mismatched (ancestor, target) pair or a compaction boundary.
func RemapVertices(oldVerts []VertexID, target *Graph) ([]int32, error) {
	newVerts := target.Vertices()
	if len(oldVerts) > len(newVerts) {
		return nil, fmt.Errorf("graph: remap target has %d vertices, ancestor had %d", len(newVerts), len(oldVerts))
	}
	identity := true
	for i, v := range oldVerts {
		if newVerts[i] != v {
			identity = false
			break
		}
	}
	if identity {
		return nil, nil
	}
	remap := make([]int32, len(oldVerts))
	j := 0
	for i, v := range oldVerts {
		for j < len(newVerts) && newVerts[j] < v {
			j++
		}
		if j == len(newVerts) || newVerts[j] != v {
			return nil, fmt.Errorf("graph: vertex %d missing from remap target", v)
		}
		remap[i] = int32(j)
		j++
	}
	return remap, nil
}
