package graph

import (
	"fmt"
	"slices"
)

// Delta describes one Grow step: the boundary between a parent graph and
// the generation derived from it by appending an edge suffix. Incremental
// consumers (the artifact store's delta chain, the partitioned-topology
// patcher) use it to locate the suffix and to remap the parent's dense
// vertex indices into the child's.
type Delta struct {
	// Old is the parent generation; New is Old plus the appended suffix.
	Old, New *Graph
	// OldLen is the parent's edge count: New.Edges()[:OldLen] is exactly
	// Old.Edges(), and New.Edges()[OldLen:] is the appended suffix.
	OldLen int
	// OldVersion and NewVersion are the generations' version counters at
	// the time of the Grow, so cache keys recorded against either side
	// stay pinned even if a graph is later mutated in place.
	OldVersion, NewVersion uint64
	// OldVerts is the parent's sorted vertex list, shared (not copied) with
	// the parent. Callers must not modify it. RemapVertices turns it into a
	// dense-index remap against any descendant generation.
	OldVerts []VertexID
}

// Grow returns a new Graph — the next generation of g, holding g's edges
// followed by newEdges — without mutating g. The parent stays fully
// usable, so in-flight readers of g (concurrent algorithm runs, cache
// lookups) are never raced; growth is an O(|V| + |delta|)-ish derivation,
// not an O(|E|) rebuild:
//
//   - the vertex list is the parent's merged with the suffix's new IDs
//     (shared outright when the suffix adds no vertices);
//   - degree and edge-endpoint views are carried over — remapped if new
//     vertices shifted dense indices — and patched with the suffix;
//   - the ID->index map and the CSR adjacency views stay lazy.
//
// The edge slice itself is copied (one memcpy), never shared, so neither
// generation can observe the other's mutations. The new generation starts
// at a fresh process-unique version.
//
// Grow only reads g through its concurrency-safe view builders, so it may
// run while other goroutines read g.
func (g *Graph) Grow(newEdges []Edge) (*Graph, Delta) {
	oldLen := len(g.edges)
	oldVerts := g.Vertices()

	combined := make([]Edge, oldLen+len(newEdges))
	copy(combined, g.edges)
	copy(combined[oldLen:], newEdges)
	ng := FromEdges(combined)
	ng.version.Store(nextGenerationVersion())

	// The content fingerprint chains sequentially over the edge list, so a
	// parent's built fingerprint extends to the child by folding only the
	// suffix.
	if g.fpOnce.built() {
		ng.fp = foldFingerprint(g.fp, newEdges)
		ng.fpOnce.markBuilt()
	}

	// New vertex IDs introduced by the suffix: endpoints absent from the
	// parent's sorted list.
	var added []VertexID
	for _, e := range newEdges {
		if _, ok := slices.BinarySearch(oldVerts, e.Src); !ok {
			added = append(added, e.Src)
		}
		if _, ok := slices.BinarySearch(oldVerts, e.Dst); !ok {
			added = append(added, e.Dst)
		}
	}
	slices.Sort(added)
	added = slices.Compact(added)

	// Merged vertex list and the old->new dense index remap. When every
	// added ID sorts after the old maximum (the common growth pattern),
	// old dense indices are unchanged and the remap stays nil.
	var remap []int32
	if len(added) == 0 {
		ng.verts = oldVerts // shared; both generations treat it as immutable
	} else if len(oldVerts) == 0 || added[0] > oldVerts[len(oldVerts)-1] {
		merged := make([]VertexID, len(oldVerts)+len(added))
		copy(merged, oldVerts)
		copy(merged[len(oldVerts):], added)
		ng.verts = merged
	} else {
		merged := make([]VertexID, 0, len(oldVerts)+len(added))
		remap = make([]int32, len(oldVerts))
		i, j := 0, 0
		for i < len(oldVerts) || j < len(added) {
			if j == len(added) || (i < len(oldVerts) && oldVerts[i] < added[j]) {
				remap[i] = int32(len(merged))
				merged = append(merged, oldVerts[i])
				i++
			} else {
				merged = append(merged, added[j])
				j++
			}
		}
		ng.verts = merged
	}
	ng.vertsOnce.markBuilt()

	// Dense endpoint indices of the suffix, shared by the degree and
	// endpoint seeding below.
	sufSrc := make([]int32, len(newEdges))
	sufDst := make([]int32, len(newEdges))
	for i, e := range newEdges {
		si, _ := slices.BinarySearch(ng.verts, e.Src)
		di, _ := slices.BinarySearch(ng.verts, e.Dst)
		sufSrc[i], sufDst[i] = int32(si), int32(di)
	}

	nv := len(ng.verts)
	if g.degOnce.built() {
		out := make([]int32, nv)
		in := make([]int32, nv)
		if remap == nil {
			copy(out, g.outDeg)
			copy(in, g.inDeg)
		} else {
			for i := range g.outDeg {
				out[remap[i]] = g.outDeg[i]
				in[remap[i]] = g.inDeg[i]
			}
		}
		for i := range newEdges {
			out[sufSrc[i]]++
			in[sufDst[i]]++
		}
		ng.outDeg, ng.inDeg = out, in
		ng.degOnce.markBuilt()
	}
	// Endpoint views are carried over only when old dense indices survive
	// (remap == nil): the seed is then two memcpys. When indices shifted,
	// the per-edge remap pass would cost more than most consumers save —
	// the delta topology patcher only needs suffix endpoints, which it
	// computes itself — so the view is left lazy instead.
	if remap == nil && g.endpointOnce.built() {
		src := make([]int32, len(combined))
		dst := make([]int32, len(combined))
		copy(src, g.srcIdx)
		copy(dst, g.dstIdx)
		copy(src[oldLen:], sufSrc)
		copy(dst[oldLen:], sufDst)
		ng.srcIdx, ng.dstIdx = src, dst
		ng.endpointOnce.markBuilt()
	}

	return ng, Delta{
		Old: g, New: ng,
		OldLen:     oldLen,
		OldVersion: g.Version(), NewVersion: ng.Version(),
		OldVerts: oldVerts,
	}
}

// RemapVertices returns the dense-index remap from a sorted ancestor
// vertex list to a descendant generation: remap[oldDense] is the vertex's
// dense index in target. A nil, nil return means identity — every old
// vertex keeps its dense index (all vertices added since sort after the
// old maximum). An old vertex missing from target is an error: growth
// never removes vertices, so it signals a mismatched (ancestor, target)
// pair.
func RemapVertices(oldVerts []VertexID, target *Graph) ([]int32, error) {
	newVerts := target.Vertices()
	if len(oldVerts) > len(newVerts) {
		return nil, fmt.Errorf("graph: remap target has %d vertices, ancestor had %d", len(newVerts), len(oldVerts))
	}
	identity := true
	for i, v := range oldVerts {
		if newVerts[i] != v {
			identity = false
			break
		}
	}
	if identity {
		return nil, nil
	}
	remap := make([]int32, len(oldVerts))
	j := 0
	for i, v := range oldVerts {
		for j < len(newVerts) && newVerts[j] < v {
			j++
		}
		if j == len(newVerts) || newVerts[j] != v {
			return nil, fmt.Errorf("graph: vertex %d missing from remap target", v)
		}
		remap[i] = int32(j)
		j++
	}
	return remap, nil
}
