package graph

import "fmt"

// Shrink returns a new Graph — the next generation of g with the given
// edges retracted — without mutating g, mirroring Grow's race-free
// parent-untouched contract. Retraction tombstones dense edge positions
// rather than splicing the list, so per-edge artifacts computed against
// the parent (assignments, scattered topologies) stay index-aligned and
// can be patched instead of rebuilt; see Delta and the pregel package's
// ApplyDelta.
//
// Each element of retract removes one occurrence of that edge value, the
// oldest live occurrence first (FIFO, matching multigraph append order).
// Retracting more occurrences than are live is not an error as long as
// the value appears in the graph at all — surplus retractions of an
// already-tombstoned value are skipped, so replayed or duplicated
// retraction batches are idempotent. An edge value that never appears in
// the dense list is an error. A batch that nets zero retractions returns
// g itself (Delta.Old == Delta.New), minting no generation.
//
// Once tombstones pass the compaction threshold (a quarter of dense
// slots), the step rewrites the dense list instead and marks the Delta
// Compacted; per-edge artifacts cannot be patched across that boundary.
func (g *Graph) Shrink(retract []Edge) (*Graph, Delta, error) {
	removeIdx, err := g.resolveRetractions(retract)
	if err != nil {
		return nil, Delta{}, err
	}
	ng, d := g.advance(nil, nil, removeIdx)
	return ng, d, nil
}

// ShrinkBefore returns a new generation with every live edge at a dense
// position < n tombstoned — the expiry half of sliding-window serving
// (positions are append order, so "before n" is "older than the n-th
// append"). n is clamped to the dense edge count. A step that nets zero
// retractions returns g itself.
func (g *Graph) ShrinkBefore(n int) (*Graph, Delta) {
	ng, d := g.advance(nil, nil, g.liveBefore(n))
	return ng, d
}

// SlideWindow advances the graph one sliding-window step: append newEdges
// (with optional per-edge weights, as in GrowWeighted) and expire every
// live edge at a dense position < expireBefore, in ONE generation step —
// a single new version, a single Delta, so the serving layer's delta
// chain records one boundary instead of an append generation followed by
// an expire generation. expireBefore positions refer to the parent's
// dense list (it is clamped to the parent's edge count; the appended
// suffix is never expired by the same step).
func (g *Graph) SlideWindow(newEdges []Edge, weights []float64, expireBefore int) (*Graph, Delta, error) {
	if weights != nil && len(weights) != len(newEdges) {
		return nil, Delta{}, fmt.Errorf("graph: %d weights for %d appended edges", len(weights), len(newEdges))
	}
	ng, d := g.advance(newEdges, weights, g.liveBefore(expireBefore))
	return ng, d, nil
}

// liveBefore lists the live dense positions < n, ascending (n clamped to
// the dense edge count).
func (g *Graph) liveBefore(n int) []int {
	if ne := g.NumEdges(); n > ne {
		n = ne
	}
	if n <= 0 {
		return nil
	}
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if g.EdgeAlive(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// resolveRetractions maps retracted edge values to the dense positions to
// tombstone: per value, the oldest live occurrences first, up to the
// batch's multiplicity, skipping surplus already-dead occurrences. A value
// with no occurrence at all (live or dead) is an error.
func (g *Graph) resolveRetractions(retract []Edge) ([]int, error) {
	if len(retract) == 0 {
		return nil, nil
	}
	want := make(map[Edge]int, len(retract))
	for _, e := range retract {
		want[e]++
	}
	idx := make([]int, 0, len(retract))
	seen := make(map[Edge]bool, len(want))
	g.mustEdgeBlocks(func(start int, edges []Edge, _ []float64) {
		for i, e := range edges {
			n, ok := want[e]
			if !ok {
				continue
			}
			seen[e] = true
			if n > 0 && g.EdgeAlive(start+i) {
				idx = append(idx, start+i)
				want[e] = n - 1
			}
		}
	})
	for e, n := range want {
		if n > 0 && !seen[e] {
			return nil, fmt.Errorf("graph: cannot retract edge %d -> %d: not in graph", e.Src, e.Dst)
		}
	}
	return idx, nil
}
