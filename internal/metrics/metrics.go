// Package metrics computes the partitioning characterization metrics of
// §3.1 of the paper: Balance, Non-Cut vertices, Cut vertices, Communication
// Cost and Edge Partition Standard Deviation, plus the replication factor.
//
// All metrics are functions of the edge→partition assignment only. Even
// though vertex-cut partitioning assigns edges, each partition also
// reconstructs the vertices of its edges (as GraphX does), and the vertex
// replication implied by that reconstruction is what the Cut/CommCost
// metrics measure.
package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
)

// Result holds the partitioning metrics for one (graph, strategy, numParts)
// combination. Field names follow the paper's Tables 2 and 3.
type Result struct {
	NumParts int

	// Balance is the ratio of the largest edge partition to the mean edge
	// partition size; 1.0 is perfectly balanced.
	Balance float64
	// NonCut is the number of vertices that reside in exactly one
	// partition (no replicas).
	NonCut int64
	// Cut is the number of vertices that exist in more than one partition.
	Cut int64
	// CommCost is the total number of copies of Cut vertices — the number
	// of messages exchanged per BSP superstep to synchronize their state.
	CommCost int64
	// PartStDev is the standard deviation of edges per partition.
	PartStDev float64

	// ReplicationFactor is the mean number of partitions per vertex,
	// (CommCost + NonCut) / |V|. Not a paper table column, but standard in
	// the vertex-cut literature and used by the ablation benchmarks.
	ReplicationFactor float64
	// MaxEdges and MaxVertices are the largest edge / reconstructed-vertex
	// partition sizes.
	MaxEdges    int64
	MaxVertices int64
	// EdgesPerPart and VerticesPerPart are the per-partition sizes
	// (tombstoned edges never count).
	EdgesPerPart    []int64
	VerticesPerPart []int64

	// Weighted counterparts, populated only when the graph carries edge
	// weights (nil/zero otherwise — the unweighted path is untouched).
	// WeightPerPart is the per-partition total live edge weight;
	// WeightedBalance and MaxWeight are its max/mean ratio and maximum;
	// WeightedCommCost scales each cut vertex's synchronization copies by
	// the vertex's weighted degree, so hot (heavy-edge) vertices dominate
	// the cost the way they dominate real superstep traffic. With all
	// weights 1, WeightPerPart equals EdgesPerPart exactly.
	WeightPerPart    []float64
	WeightedBalance  float64
	MaxWeight        float64
	WeightedCommCost float64
}

// Compute derives the full metric set from a raw edge assignment. assign
// must be aligned with g.Edges() and every PID must be in [0, numParts).
// Callers that already hold a validated partition.Assignment should use
// FromAssignment, which skips re-validation and re-counting.
func Compute(g *graph.Graph, assign []partition.PID, numParts int) (*Result, error) {
	a, err := partition.NewAssignment(g, "", assign, numParts)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return FromAssignment(a)
}

// FromAssignment derives the full metric set from a validated Assignment.
// The per-partition edge histogram is taken from the assignment (copied,
// not aliased); only the vertex-replication pass remains.
func FromAssignment(a *partition.Assignment) (*Result, error) {
	g, numParts := a.G, a.NumParts
	if len(a.EdgesPerPart) != numParts {
		return nil, fmt.Errorf("metrics: assignment histogram has %d partitions, want %d", len(a.EdgesPerPart), numParts)
	}
	nv := g.NumVertices()
	words := (numParts + 63) / 64
	// replicaBits[v*words : (v+1)*words] is the partition bitset of dense
	// vertex v. Tombstoned edges replicate nothing.
	replicaBits := make([]uint64, nv*words)
	weighted := g.Weighted()
	var weightPerPart, wdeg []float64
	if weighted {
		weightPerPart = make([]float64, numParts)
		wdeg = make([]float64, nv)
	}
	numDead := g.NumDeadEdges()
	// Block at a time with batch endpoint lookup — same ascending edge
	// order as a dense loop (float sums stay bit-identical) without
	// materializing the O(E) endpoint-index and weight slices.
	var sidx, didx []int32
	if err := g.ForEachEdgeBlock(func(start int, edges []graph.Edge, ws []float64) error {
		if cap(sidx) < len(edges) {
			sidx = make([]int32, len(edges))
			didx = make([]int32, len(edges))
		}
		sidx, didx = sidx[:len(edges)], didx[:len(edges)]
		g.LookupIndices(edges, sidx, didx)
		for j := range edges {
			i := start + j
			if numDead != 0 && !g.EdgeAlive(i) {
				continue
			}
			p := a.PIDs[i]
			w, b := int(p)/64, uint(p)%64
			replicaBits[int(sidx[j])*words+w] |= 1 << b
			replicaBits[int(didx[j])*words+w] |= 1 << b
			if weighted {
				wt := ws[j]
				weightPerPart[p] += wt
				wdeg[sidx[j]] += wt
				wdeg[didx[j]] += wt
			}
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}

	edgesPerPart := make([]int64, numParts)
	copy(edgesPerPart, a.EdgesPerPart)
	res := &Result{NumParts: numParts, EdgesPerPart: edgesPerPart, WeightPerPart: weightPerPart}
	vertsPerPart := make([]int64, numParts)
	for v := 0; v < nv; v++ {
		replicas := 0
		base := v * words
		for w := 0; w < words; w++ {
			word := replicaBits[base+w]
			replicas += bits.OnesCount64(word)
			for word != 0 {
				b := bits.TrailingZeros64(word)
				vertsPerPart[w*64+b]++
				word &= word - 1
			}
		}
		switch {
		case replicas == 1:
			res.NonCut++
		case replicas > 1:
			res.Cut++
			res.CommCost += int64(replicas)
			if wdeg != nil {
				res.WeightedCommCost += float64(replicas) * wdeg[v]
			}
		}
	}
	res.VerticesPerPart = vertsPerPart
	res.Finalize(nv)
	return res, nil
}

// Finalize computes the derived fields — Balance, PartStDev, MaxEdges,
// MaxVertices, ReplicationFactor — from the directly-counted fields
// (EdgesPerPart, VerticesPerPart, NonCut, Cut, CommCost). It is shared by
// every Result producer (FromAssignment and the pregel topology-derived
// path) so the derived values are bit-for-bit identical regardless of how
// the counts were obtained.
func (r *Result) Finalize(numVertices int) {
	var sum, max int64
	for _, c := range r.EdgesPerPart {
		sum += c
		if c > max {
			max = c
		}
	}
	r.MaxEdges = max
	r.MaxVertices = 0
	for _, c := range r.VerticesPerPart {
		if c > r.MaxVertices {
			r.MaxVertices = c
		}
	}
	mean := float64(sum) / float64(r.NumParts)
	if mean > 0 {
		r.Balance = float64(max) / mean
	} else {
		r.Balance = 1
	}
	var ss float64
	for _, c := range r.EdgesPerPart {
		d := float64(c) - mean
		ss += d * d
	}
	r.PartStDev = math.Sqrt(ss / float64(r.NumParts))
	if numVertices > 0 {
		r.ReplicationFactor = float64(r.CommCost+r.NonCut) / float64(numVertices)
	} else {
		r.ReplicationFactor = 0
	}
	if r.WeightPerPart != nil {
		var wsum, wmax float64
		for _, c := range r.WeightPerPart {
			wsum += c
			if c > wmax {
				wmax = c
			}
		}
		r.MaxWeight = wmax
		if wmean := wsum / float64(r.NumParts); wmean > 0 {
			r.WeightedBalance = wmax / wmean
		} else {
			r.WeightedBalance = 1
		}
	}
}

// ComputeFor partitions g with strategy s and computes the metrics in one
// call — the common path for tables and tests. The assignment is produced
// once via partition.Assign.
func ComputeFor(g *graph.Graph, s partition.Strategy, numParts int) (*Result, error) {
	a, err := partition.Assign(g, s, numParts)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return FromAssignment(a)
}

// MetricByName extracts a metric value from a Result by its table name:
// "Balance", "NonCut", "Cut", "CommCost", "PartStDev", "ReplicationFactor".
func (r *Result) MetricByName(name string) (float64, error) {
	switch name {
	case "Balance":
		return r.Balance, nil
	case "NonCut":
		return float64(r.NonCut), nil
	case "Cut":
		return float64(r.Cut), nil
	case "CommCost":
		return float64(r.CommCost), nil
	case "PartStDev":
		return r.PartStDev, nil
	case "ReplicationFactor":
		return r.ReplicationFactor, nil
	case "WeightedBalance":
		return r.WeightedBalance, nil
	case "WeightedCommCost":
		return r.WeightedCommCost, nil
	}
	return 0, fmt.Errorf("metrics: unknown metric %q", name)
}

// MetricNames returns the five paper metrics in table order.
func MetricNames() []string {
	return []string{"Balance", "NonCut", "Cut", "CommCost", "PartStDev"}
}
