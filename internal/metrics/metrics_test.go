package metrics

import (
	"testing"
	"testing/quick"

	"cutfit/internal/graph"
	"cutfit/internal/partition"
	"cutfit/internal/rng"
)

func randomGraph(seed uint64, maxV, maxE int) *graph.Graph {
	r := rng.New(seed)
	nv := 2 + r.Intn(maxV)
	ne := 1 + r.Intn(maxE)
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(r.Intn(nv)),
			Dst: graph.VertexID(r.Intn(nv)),
		}
	}
	return graph.FromEdges(edges)
}

func TestComputeHandWorkedExample(t *testing.T) {
	// Edges: (0,1)->p0, (1,2)->p0, (2,3)->p1, (3,0)->p1.
	// Partition 0 holds vertices {0,1,2}; partition 1 holds {2,3,0}.
	// Vertex replicas: 0->2, 1->1, 2->2, 3->1.
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}})
	assign := []partition.PID{0, 0, 1, 1}
	m, err := Compute(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NonCut != 2 {
		t.Errorf("NonCut = %d, want 2", m.NonCut)
	}
	if m.Cut != 2 {
		t.Errorf("Cut = %d, want 2", m.Cut)
	}
	if m.CommCost != 4 {
		t.Errorf("CommCost = %d, want 4", m.CommCost)
	}
	if m.Balance != 1.0 {
		t.Errorf("Balance = %g, want 1.0", m.Balance)
	}
	if m.PartStDev != 0 {
		t.Errorf("PartStDev = %g, want 0", m.PartStDev)
	}
	if m.MaxEdges != 2 || m.MaxVertices != 3 {
		t.Errorf("MaxEdges=%d MaxVertices=%d", m.MaxEdges, m.MaxVertices)
	}
	if m.ReplicationFactor != 6.0/4 {
		t.Errorf("ReplicationFactor = %g, want 1.5", m.ReplicationFactor)
	}
}

func TestComputeImbalanced(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 4, Dst: 5}})
	assign := []partition.PID{0, 0, 0, 1}
	m, err := Compute(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Balance != 1.5 { // max 3 / mean 2
		t.Errorf("Balance = %g, want 1.5", m.Balance)
	}
	if m.Cut != 0 || m.NonCut != 6 {
		t.Errorf("Cut=%d NonCut=%d", m.Cut, m.NonCut)
	}
}

func TestComputeErrors(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Compute(g, []partition.PID{0}, 0); err == nil {
		t.Error("numParts=0 should error")
	}
	if _, err := Compute(g, []partition.PID{}, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Compute(g, []partition.PID{5}, 2); err == nil {
		t.Error("out-of-range PID should error")
	}
}

// TestMetricIdentities checks the invariants stated in §3.1 of the paper:
// NonCut + Cut = |V|; Σ edgesPerPart = |E|; CommCost + NonCut = total
// vertex replicas; Balance >= 1; every metric non-negative.
func TestMetricIdentities(t *testing.T) {
	strategies := partition.Extended()
	check := func(seed uint64, partsRaw uint8) bool {
		numParts := 1 + int(partsRaw)%32
		g := randomGraph(seed, 60, 300)
		for _, s := range strategies {
			m, err := ComputeFor(g, s, numParts)
			if err != nil {
				return false
			}
			if m.NonCut+m.Cut != int64(g.NumVertices()) {
				return false
			}
			var edgeSum int64
			for _, c := range m.EdgesPerPart {
				edgeSum += c
			}
			if edgeSum != int64(g.NumEdges()) {
				return false
			}
			var replicaSum int64
			for _, c := range m.VerticesPerPart {
				replicaSum += c
			}
			if m.CommCost+m.NonCut != replicaSum {
				return false
			}
			if m.Balance < 1.0-1e-9 {
				return false
			}
			if m.CommCost < 2*m.Cut {
				// every cut vertex has at least two copies
				return false
			}
			if m.PartStDev < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePartitionDegenerate(t *testing.T) {
	g := randomGraph(3, 30, 100)
	m, err := ComputeFor(g, partition.RandomVertexCut(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cut != 0 {
		t.Errorf("Cut = %d with one partition", m.Cut)
	}
	if m.CommCost != 0 {
		t.Errorf("CommCost = %d with one partition", m.CommCost)
	}
	if m.Balance != 1 {
		t.Errorf("Balance = %g with one partition", m.Balance)
	}
}

func TestMetricByName(t *testing.T) {
	g := randomGraph(4, 20, 60)
	m, err := ComputeFor(g, partition.EdgePartition2D(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range MetricNames() {
		if _, err := m.MetricByName(name); err != nil {
			t.Errorf("MetricByName(%q): %v", name, err)
		}
	}
	if v, err := m.MetricByName("CommCost"); err != nil || v != float64(m.CommCost) {
		t.Errorf("CommCost lookup = %g, %v", v, err)
	}
	if _, err := m.MetricByName("Bogus"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestEmptyGraphMetrics(t *testing.T) {
	g := graph.New(0)
	m, err := Compute(g, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Balance != 1 || m.Cut != 0 || m.NonCut != 0 || m.CommCost != 0 {
		t.Errorf("empty graph metrics: %+v", m)
	}
}

func Test2DCommCostUsuallyLowerThanRVC(t *testing.T) {
	// The core rationale for 2D: bounded replication should beat random
	// vertex cut on communication cost for dense-enough graphs.
	g := randomGraph(1234, 100, 8000)
	rvc, err := ComputeFor(g, partition.RandomVertexCut(), 64)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ComputeFor(g, partition.EdgePartition2D(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if d2.CommCost >= rvc.CommCost {
		t.Fatalf("2D CommCost %d not below RVC %d", d2.CommCost, rvc.CommCost)
	}
}
