// Package datasets defines the nine evaluation datasets of the paper as
// deterministic synthetic analogs, scaled down ~100× from the originals
// (SNAP road networks and social graphs plus two Twitter-crawl follow
// graphs), matched on the structural axes that drive the paper's findings:
// degree skew, edge symmetry, zero-degree fractions, triangle density,
// component count and diameter class. Each spec also records the paper's
// original Table 1 row so the characterization harness can print
// paper-vs-measured side by side.
package datasets

import (
	"fmt"
	"sync"

	"cutfit/internal/gen"
	"cutfit/internal/graph"
)

// PaperRow is the original dataset's Table 1 row, for comparison reports.
type PaperRow struct {
	Vertices         int64
	Edges            int64
	SymmetryPct      float64
	ZeroInPct        float64
	ZeroOutPct       float64
	Triangles        int64
	Components       int
	Diameter         int // 0 when DiameterInfinite
	DiameterInfinite bool
	SizeOnDisk       string
}

// Spec describes one analog dataset: how to build it and what the paper
// reported for the original.
type Spec struct {
	// Name is the dataset identifier, lower-cased from the paper's table.
	Name string
	// Directed reports whether the original graph is directed; undirected
	// originals are materialized with both edge orientations.
	Directed bool
	// Large marks the datasets the paper treats as "big" when discussing
	// granularity and strategy selection (orkut, socLiveJournal, follow-*).
	Large bool
	// Road marks the three road networks (excluded from SSSP in the paper).
	Road bool
	// Paper is the original's characterization from Table 1.
	Paper PaperRow
	// Build constructs the analog graph. Deterministic.
	Build func() (*graph.Graph, error)
}

// socialParams drives buildSocial, the shared recipe for the six social
// analogs: an R-MAT skeleton, deduplicated, partially symmetrized, with
// leaf vertices and detached fragments injected.
type socialParams struct {
	scale      int
	edgeFactor float64
	a, b, c, d float64
	symPct     float64 // target reciprocation percentage; 100 = undirected
	zeroInPct  float64 // target percentage of zero-in-degree vertices
	zeroOutPct float64
	connect    bool // join all components into one (single-component originals)
	fragments  int
	seed       uint64
}

func buildSocial(p socialParams) (*graph.Graph, error) {
	cfg := gen.RMATConfig{
		Scale: p.scale, EdgeFactor: p.edgeFactor,
		A: p.a, B: p.b, C: p.c, D: p.d,
		Noise: 0.1, Seed: p.seed,
	}
	g, err := gen.RMAT(cfg)
	if err != nil {
		return nil, err
	}
	g = gen.DropSelfLoops(gen.Dedup(g))
	if p.connect {
		g = gen.Connect(g)
	}
	if p.symPct > 0 {
		g, err = gen.Symmetrize(g, p.symPct, p.seed+1)
		if err != nil {
			return nil, err
		}
	}
	if p.zeroInPct > 0 || p.zeroOutPct > 0 {
		g, err = gen.InjectLeavesTarget(g, p.zeroInPct, p.zeroOutPct, p.seed+2)
		if err != nil {
			return nil, err
		}
	}
	if p.fragments > 0 {
		g, err = gen.AddFragments(g, p.fragments, p.seed+3)
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Suite returns the nine analog datasets at the default (~1/100) scale, in
// the paper's Table 1 order (ascending original vertex count).
func Suite() []Spec {
	return []Spec{
		{
			Name: "roadnet-pa", Directed: false, Road: true,
			Paper: PaperRow{Vertices: 1_088_092, Edges: 3_083_796, SymmetryPct: 100,
				Triangles: 67_150, Components: 1052, DiameterInfinite: true, SizeOnDisk: "83.7M"},
			Build: func() (*graph.Graph, error) {
				return gen.Road(gen.RoadConfig{
					Rows: 100, Cols: 104, EdgeProb: 0.42, DiagProb: 0.03,
					Fragments: 105, Seed: seedFor(1),
				})
			},
		},
		{
			Name: "youtube", Directed: false,
			Paper: PaperRow{Vertices: 1_134_890, Edges: 2_987_624, SymmetryPct: 100,
				Triangles: 3_056_386, Components: 1, Diameter: 20, SizeOnDisk: "74.0M"},
			Build: func() (*graph.Graph, error) {
				g, err := gen.PreferentialAttachment(11_000, 2, seedFor(2))
				if err != nil {
					return nil, err
				}
				// Preferential attachment alone is nearly triangle-free;
				// the real YouTube graph is community-rich, so close
				// wedges until the triangle density is social-network-like.
				return gen.CloseTriangles(g, 9_000, seedFor(2)+1)
			},
		},
		{
			Name: "roadnet-tx", Directed: false, Road: true,
			Paper: PaperRow{Vertices: 1_379_917, Edges: 3_843_320, SymmetryPct: 100,
				Triangles: 82_869, Components: 1766, DiameterInfinite: true, SizeOnDisk: "56.5M"},
			Build: func() (*graph.Graph, error) {
				return gen.Road(gen.RoadConfig{
					Rows: 110, Cols: 125, EdgeProb: 0.38, DiagProb: 0.03,
					Fragments: 176, Seed: seedFor(3),
				})
			},
		},
		{
			Name: "pocek", Directed: true,
			Paper: PaperRow{Vertices: 1_632_803, Edges: 30_622_564, SymmetryPct: 54.34,
				ZeroInPct: 6.94, ZeroOutPct: 12.25, Triangles: 32_557_458,
				Components: 1, Diameter: 11, SizeOnDisk: "404M"},
			Build: func() (*graph.Graph, error) {
				return buildSocial(socialParams{
					scale: 14, edgeFactor: 16,
					a: 0.57, b: 0.19, c: 0.19, d: 0.05,
					symPct: 54.34, zeroInPct: 6.94, zeroOutPct: 12.25,
					connect: true,
					seed:    seedFor(4),
				})
			},
		},
		{
			Name: "roadnet-ca", Directed: false, Road: true,
			Paper: PaperRow{Vertices: 1_965_206, Edges: 5_533_214, SymmetryPct: 100,
				Triangles: 120_676, Components: 1052, DiameterInfinite: true, SizeOnDisk: "83.7M"},
			Build: func() (*graph.Graph, error) {
				return gen.Road(gen.RoadConfig{
					Rows: 130, Cols: 150, EdgeProb: 0.42, DiagProb: 0.03,
					Fragments: 105, Seed: seedFor(5),
				})
			},
		},
		{
			Name: "orkut", Directed: false, Large: true,
			Paper: PaperRow{Vertices: 3_072_441, Edges: 117_185_083, SymmetryPct: 100,
				Triangles: 627_584_181, Components: 1, Diameter: 9, SizeOnDisk: "3.3G"},
			Build: func() (*graph.Graph, error) {
				return buildSocial(socialParams{
					scale: 15, edgeFactor: 18,
					a: 0.57, b: 0.19, c: 0.19, d: 0.05,
					symPct:  100,
					connect: true,
					seed:    seedFor(6),
				})
			},
		},
		{
			Name: "soclivejournal", Directed: true, Large: true,
			Paper: PaperRow{Vertices: 4_847_571, Edges: 68_993_773, SymmetryPct: 75.03,
				ZeroInPct: 7.39, ZeroOutPct: 11.12, Triangles: 285_730_264,
				Components: 1876, DiameterInfinite: true, SizeOnDisk: "1.0G"},
			Build: func() (*graph.Graph, error) {
				return buildSocial(socialParams{
					scale: 16, edgeFactor: 10,
					a: 0.57, b: 0.19, c: 0.19, d: 0.05,
					symPct: 75.03, zeroInPct: 7.4, zeroOutPct: 11.1,
					fragments: 188,
					seed:      seedFor(7),
				})
			},
		},
		{
			Name: "follow-jul", Directed: true, Large: true,
			Paper: PaperRow{Vertices: 17_100_000, Edges: 136_700_000, SymmetryPct: 37.57,
				ZeroInPct: 46.94, ZeroOutPct: 25.65, Triangles: 4_800_000_000,
				Components: 52, DiameterInfinite: true, SizeOnDisk: "2.7G"},
			Build: func() (*graph.Graph, error) {
				dec, err := buildFollowDec()
				if err != nil {
					return nil, err
				}
				// The July crawl is a strict subset of the December crawl;
				// sampling unordered pairs keeps reciprocation intact.
				return gen.PairSubset(dec, 136.7/204.9, seedFor(8))
			},
		},
		{
			Name: "follow-dec", Directed: true, Large: true,
			Paper: PaperRow{Vertices: 26_300_000, Edges: 204_900_000, SymmetryPct: 37.57,
				ZeroInPct: 55.05, ZeroOutPct: 18.34, Triangles: 7_600_000_000,
				Components: 47, DiameterInfinite: true, SizeOnDisk: "4.1G"},
			Build: buildFollowDec,
		},
	}
}

// buildFollowDec constructs the follow-dec analog: an extremely skewed
// R-MAT ("superstar" accounts), weak reciprocation, and a large population
// of crawl-leaf vertices.
func buildFollowDec() (*graph.Graph, error) {
	return buildSocial(socialParams{
		scale: 17, edgeFactor: 10,
		a: 0.65, b: 0.18, c: 0.12, d: 0.05,
		symPct: 37.57, zeroInPct: 55.05, zeroOutPct: 18.34,
		fragments: 46,
		seed:      seedFor(9),
	})
}

// seedFor derives a fixed, stable per-dataset seed.
func seedFor(i uint64) uint64 { return 0xC07F17_0000 + i }

// TinySuite returns miniature versions of a representative subset of the
// datasets (a road network, an undirected social graph, a directed skewed
// graph), for fast unit and integration tests.
func TinySuite() []Spec {
	return []Spec{
		{
			Name: "tiny-road", Directed: false, Road: true,
			Build: func() (*graph.Graph, error) {
				return gen.Road(gen.RoadConfig{
					Rows: 16, Cols: 16, EdgeProb: 0.4, DiagProb: 0.05,
					Fragments: 5, Seed: seedFor(101),
				})
			},
		},
		{
			Name: "tiny-social", Directed: false,
			Build: func() (*graph.Graph, error) {
				return gen.PreferentialAttachment(400, 3, seedFor(102))
			},
		},
		{
			Name: "tiny-follow", Directed: true, Large: true,
			Build: func() (*graph.Graph, error) {
				return buildSocial(socialParams{
					scale: 9, edgeFactor: 8,
					a: 0.65, b: 0.18, c: 0.12, d: 0.05,
					symPct: 37.57, zeroInPct: 20, zeroOutPct: 10,
					fragments: 4,
					seed:      seedFor(103),
				})
			},
		},
	}
}

// ByName returns the suite spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Names returns the dataset names in suite order.
func Names() []string {
	suite := Suite()
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}

// cache memoizes built graphs: experiment harnesses build each dataset
// once per process.
var cache sync.Map // name -> *graph.Graph

// BuildCached builds the spec's graph, memoizing by name. The returned
// graph must be treated as read-only.
func (s Spec) BuildCached() (*graph.Graph, error) {
	if v, ok := cache.Load(s.Name); ok {
		return v.(*graph.Graph), nil
	}
	g, err := s.Build()
	if err != nil {
		return nil, fmt.Errorf("datasets: building %s: %w", s.Name, err)
	}
	actual, _ := cache.LoadOrStore(s.Name, g)
	return actual.(*graph.Graph), nil
}
