package datasets

import (
	"testing"
)

func TestTinySuiteBuilds(t *testing.T) {
	for _, spec := range TinySuite() {
		g, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", spec.Name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestTinySuiteProperties(t *testing.T) {
	for _, spec := range TinySuite() {
		g, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		sym := g.SymmetryPct()
		if !spec.Directed && sym != 100 {
			t.Errorf("%s: undirected analog has symmetry %g", spec.Name, sym)
		}
		if spec.Directed && sym > 90 {
			t.Errorf("%s: directed analog has symmetry %g", spec.Name, sym)
		}
		if spec.Road {
			if tri := g.TotalTriangles(); tri > int64(g.NumVertices()/5) {
				t.Errorf("%s: road analog too dense in triangles (%d)", spec.Name, tri)
			}
		}
	}
}

func TestByName(t *testing.T) {
	spec, err := ByName("orkut")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "orkut" || !spec.Large {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := ByName("friendster"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestNamesOrderMatchesPaper(t *testing.T) {
	want := []string{
		"roadnet-pa", "youtube", "roadnet-tx", "pocek", "roadnet-ca",
		"orkut", "soclivejournal", "follow-jul", "follow-dec",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBuildCachedReturnsSameInstance(t *testing.T) {
	spec, err := ByName("roadnet-pa")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.BuildCached()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.BuildCached()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("BuildCached should memoize")
	}
}

func TestSuiteDeterministic(t *testing.T) {
	spec, err := ByName("youtube")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("dataset build not deterministic")
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatalf("edge %d differs between builds", i)
		}
	}
}

// TestSuiteStructuralTargets verifies, for the full-scale analogs, the
// structural axes the paper's analysis depends on. It builds every dataset
// (cached), so it is skipped in -short mode.
func TestSuiteStructuralTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite build in -short mode")
	}
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.BuildCached()
			if err != nil {
				t.Fatal(err)
			}
			sym := g.SymmetryPct()
			if spec.Paper.SymmetryPct == 100 && sym != 100 {
				t.Errorf("symmetry %g, want 100", sym)
			}
			if spec.Paper.SymmetryPct < 100 {
				if diff := sym - spec.Paper.SymmetryPct; diff < -8 || diff > 8 {
					t.Errorf("symmetry %g, paper %g", sym, spec.Paper.SymmetryPct)
				}
			}
			zi, zo := g.ZeroDegreePct()
			if spec.Paper.ZeroInPct == 0 && zi != 0 {
				t.Errorf("zero-in %g, want 0", zi)
			}
			if spec.Paper.ZeroInPct > 0 {
				if diff := zi - spec.Paper.ZeroInPct; diff < -10 || diff > 10 {
					t.Errorf("zero-in %g, paper %g", zi, spec.Paper.ZeroInPct)
				}
			}
			_ = zo
			_, comps := g.ConnectedComponents()
			if spec.Paper.Components == 1 && comps != 1 {
				t.Errorf("components %d, want 1", comps)
			}
			if spec.Paper.Components > 40 && comps < 10 {
				t.Errorf("components %d, paper has many (%d)", comps, spec.Paper.Components)
			}
			if spec.Road {
				meanDeg := float64(g.NumEdges()) / float64(g.NumVertices())
				if meanDeg < 2.2 || meanDeg > 3.6 {
					t.Errorf("road mean degree %.2f, want ≈2.8", meanDeg)
				}
			}
		})
	}
}
