// Package par holds the one process-wide default-parallelism fallback.
//
// Every layer that fans work over goroutines — the partition build, the
// engine phases, the sharded hash assignment, restored topologies — accepts
// an explicit worker count and needs a fallback when the caller passes
// none (< 1). Before this package each call site called
// runtime.GOMAXPROCS(0) independently; routing them all through
// DefaultParallelism makes the session-level default
// (cutfit.SessionOptions.Parallelism, cutfitd -parallelism) the single
// override point: a caller that sets an explicit count wins, everything
// else degrades to one shared definition of "the machine's parallelism".
package par

import "runtime"

// DefaultParallelism returns the worker count used when a caller does not
// set one explicitly: the process's GOMAXPROCS at call time (respecting
// runtime.GOMAXPROCS overrides, e.g. the scalebench sweep).
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }
