// Package cluster models the physical cluster of the paper's evaluation
// (§4): 1 Spark driver + 4 executors, 32 cores and 220 GB each, connected
// by 1 Gb/s Ethernet (upgraded to 40 Gb/s in configuration iii), reading
// input from HDFS on hard disks (local SSDs in configuration iv).
//
// The Pregel engine executes computations for real and counts work and
// traffic (pregel.RunStats); this package converts those counts into
// simulated wall-clock seconds for a configurable cluster. The simulation
// is an analytic BSP makespan model:
//
//	time = load + Σ_supersteps [ compute + network + barrier ]
//	compute  = max( max_p cost_p , Σ_p cost_p / totalCores ) · secPerUnit
//	network  = remoteFraction · bytes / bandwidth + latency
//	load     = graphBytes / storageThroughput   (once, superstep 0)
//
// Absolute seconds are not comparable with the paper's testbed, but the
// relative structure — who wins, where granularity helps, how partitioning
// metrics correlate with time — is what the reproduction targets.
package cluster

import (
	"fmt"

	"cutfit/internal/pregel"
)

// Config describes one cluster configuration.
type Config struct {
	Name string
	// NumPartitions is the partitioning granularity: 128 in the paper's
	// configuration (i), 256 in configurations (ii)–(iv).
	NumPartitions int
	// NumExecutors and CoresPerExecutor describe the compute fabric
	// (paper: 4 executors × 32 cores).
	NumExecutors     int
	CoresPerExecutor int
	// NetworkGbps is the interconnect bandwidth in gigabits per second.
	NetworkGbps float64
	// NetworkLatencySecs is the per-superstep synchronization latency
	// (two barriers plus shuffle setup).
	NetworkLatencySecs float64
	// StorageMBps is the input-read throughput (HDFS on HDD ≈ 120 MB/s
	// per node; local SSD ≈ 500 MB/s).
	StorageMBps float64
	// SecsPerComputeUnit converts the engine's abstract per-edge compute
	// units into seconds (≈ a few ns per edge operation).
	SecsPerComputeUnit float64
	// SecsPerApplyUnit converts vertex-apply units into seconds.
	SecsPerApplyUnit float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumPartitions <= 0 {
		return fmt.Errorf("cluster: NumPartitions must be positive, got %d", c.NumPartitions)
	}
	if c.NumExecutors <= 0 || c.CoresPerExecutor <= 0 {
		return fmt.Errorf("cluster: executors (%d) and cores (%d) must be positive",
			c.NumExecutors, c.CoresPerExecutor)
	}
	if c.NetworkGbps <= 0 {
		return fmt.Errorf("cluster: NetworkGbps must be positive, got %g", c.NetworkGbps)
	}
	if c.StorageMBps <= 0 {
		return fmt.Errorf("cluster: StorageMBps must be positive, got %g", c.StorageMBps)
	}
	if c.SecsPerComputeUnit <= 0 || c.SecsPerApplyUnit <= 0 {
		return fmt.Errorf("cluster: compute-unit conversions must be positive")
	}
	return nil
}

// TotalCores returns the cluster-wide core count.
func (c Config) TotalCores() int { return c.NumExecutors * c.CoresPerExecutor }

// RemoteFraction is the fraction of shuffled bytes that crosses machine
// boundaries under uniform random placement of partitions on executors.
func (c Config) RemoteFraction() float64 {
	if c.NumExecutors <= 1 {
		return 0
	}
	return float64(c.NumExecutors-1) / float64(c.NumExecutors)
}

// base returns the shared hardware description of the paper's cluster.
// The constants below are calibrated for the ~1/100-scale analog datasets
// so that the simulated runs reproduce the paper's *relative* results:
// per-superstep overhead (NetworkLatencySecs) is kept small relative to
// shuffle volume — as it is at the paper's full data scale, where each
// superstep moves gigabytes — and the per-unit compute costs reflect
// JVM-executed triplet processing. EXPERIMENTS.md records the calibration
// and the sensitivity ablation (BenchmarkAblationCostModel) shows the
// correlation conclusions are stable under ±50 % perturbation.
func base() Config {
	return Config{
		NumExecutors:       4,
		CoresPerExecutor:   32,
		NetworkGbps:        1,
		NetworkLatencySecs: 0.005,
		StorageMBps:        120,
		SecsPerComputeUnit: 40e-9,
		SecsPerApplyUnit:   80e-9,
	}
}

// ConfigI is the paper's configuration (i): 128 partitions, 1 Gb/s, HDD.
func ConfigI() Config {
	c := base()
	c.Name = "config-i"
	c.NumPartitions = 128
	return c
}

// ConfigII is configuration (ii): 256 partitions, 1 Gb/s, HDD.
func ConfigII() Config {
	c := base()
	c.Name = "config-ii"
	c.NumPartitions = 256
	return c
}

// ConfigIII is configuration (iii): as (ii) but with a 40 Gb/s network.
func ConfigIII() Config {
	c := ConfigII()
	c.Name = "config-iii"
	c.NetworkGbps = 40
	return c
}

// ConfigIV is configuration (iv): as (iii) but reading from local SSDs.
func ConfigIV() Config {
	c := ConfigIII()
	c.Name = "config-iv"
	c.StorageMBps = 500
	return c
}

// Breakdown is the simulated execution time of one job, split by phase.
type Breakdown struct {
	LoadSecs    float64 // input read from storage
	ComputeSecs float64 // BSP compute makespan over all supersteps
	NetworkSecs float64 // shuffle volume over the interconnect
	BarrierSecs float64 // per-superstep synchronization latency
}

// TotalSecs returns the simulated end-to-end execution time.
func (b Breakdown) TotalSecs() float64 {
	return b.LoadSecs + b.ComputeSecs + b.NetworkSecs + b.BarrierSecs
}

// String summarizes the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.4fs (load=%.4f compute=%.4f network=%.4f barrier=%.4f)",
		b.TotalSecs(), b.LoadSecs, b.ComputeSecs, b.NetworkSecs, b.BarrierSecs)
}

// Simulate converts a run's statistics into simulated execution time on the
// configured cluster. graphBytes is the on-disk input size (for the load
// phase); use EstimateGraphBytes when the true size is not known.
func (c Config) Simulate(stats *pregel.RunStats, graphBytes int64) (Breakdown, error) {
	if err := c.Validate(); err != nil {
		return Breakdown{}, err
	}
	if stats == nil {
		return Breakdown{}, fmt.Errorf("cluster: nil run stats")
	}
	var b Breakdown
	b.LoadSecs = float64(graphBytes) / (c.StorageMBps * 1e6)
	cores := float64(c.TotalCores())
	bandwidthBytes := c.NetworkGbps * 1e9 / 8
	remote := c.RemoteFraction()
	for i := range stats.Supersteps {
		ss := &stats.Supersteps[i]
		// BSP makespan: bounded below by the straggler partition and by
		// perfect work division over the cores.
		maxP := ss.MaxCompute()
		avg := ss.SumCompute() / cores
		compute := maxP
		if avg > compute {
			compute = avg
		}
		b.ComputeSecs += compute * c.SecsPerComputeUnit
		var apply float64
		for _, a := range ss.ApplyPerShard {
			apply += a
		}
		b.ComputeSecs += apply / cores * c.SecsPerApplyUnit
		b.NetworkSecs += remote * float64(ss.TotalNetworkBytes()) / bandwidthBytes
		b.BarrierSecs += c.NetworkLatencySecs
	}
	return b, nil
}

// EstimateGraphBytes approximates the on-disk size of a text edge list with
// the given edge count (the paper's datasets are stored as SNAP text files,
// ≈ 16 bytes per edge at these ID widths).
func EstimateGraphBytes(numEdges int) int64 {
	return int64(numEdges) * 16
}
