package cluster

import (
	"math"
	"strings"
	"testing"

	"cutfit/internal/pregel"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{ConfigI(), ConfigII(), ConfigIII(), ConfigIV()}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := ConfigI()
	bad.NumPartitions = 0
	if err := bad.Validate(); err == nil {
		t.Error("NumPartitions=0 should be invalid")
	}
	bad = ConfigI()
	bad.NetworkGbps = 0
	if err := bad.Validate(); err == nil {
		t.Error("NetworkGbps=0 should be invalid")
	}
	bad = ConfigI()
	bad.NumExecutors = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative executors should be invalid")
	}
	bad = ConfigI()
	bad.StorageMBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("StorageMBps=0 should be invalid")
	}
	bad = ConfigI()
	bad.SecsPerComputeUnit = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero compute conversion should be invalid")
	}
}

func TestPaperConfigs(t *testing.T) {
	i, ii, iii, iv := ConfigI(), ConfigII(), ConfigIII(), ConfigIV()
	if i.NumPartitions != 128 || ii.NumPartitions != 256 {
		t.Fatalf("partition counts: %d, %d", i.NumPartitions, ii.NumPartitions)
	}
	if iii.NetworkGbps != 40 || ii.NetworkGbps != 1 {
		t.Fatal("config iii should upgrade the network to 40 Gb/s")
	}
	if iv.StorageMBps <= iii.StorageMBps {
		t.Fatal("config iv should upgrade storage")
	}
	if i.TotalCores() != 128 {
		t.Fatalf("total cores = %d, want 128", i.TotalCores())
	}
	if rf := i.RemoteFraction(); rf != 0.75 {
		t.Fatalf("remote fraction = %g, want 0.75", rf)
	}
}

func TestRemoteFractionSingleExecutor(t *testing.T) {
	c := ConfigI()
	c.NumExecutors = 1
	if rf := c.RemoteFraction(); rf != 0 {
		t.Fatalf("single executor remote fraction = %g", rf)
	}
}

// craftedStats builds a RunStats with known numbers for arithmetic checks.
func craftedStats() *pregel.RunStats {
	return &pregel.RunStats{
		Supersteps: []pregel.SuperstepStats{
			{
				ComputePerPart: []float64{100, 300, 200},
				ApplyPerShard:  []float64{64, 64},
				BroadcastMsgs:  10, BroadcastBytes: 1000,
				ReduceMsgs: 5, ReduceBytes: 500,
			},
		},
		Converged: true,
	}
}

func TestSimulateArithmetic(t *testing.T) {
	c := Config{
		Name: "t", NumPartitions: 4, NumExecutors: 2, CoresPerExecutor: 2,
		NetworkGbps: 8, NetworkLatencySecs: 0.01, StorageMBps: 100,
		SecsPerComputeUnit: 1e-6, SecsPerApplyUnit: 1e-6,
	}
	b, err := c.Simulate(craftedStats(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Load: 1 MB at 100 MB/s = 0.01 s.
	if math.Abs(b.LoadSecs-0.01) > 1e-12 {
		t.Errorf("LoadSecs = %g", b.LoadSecs)
	}
	// Compute: max(maxPart=300, sum=600/4cores=150) = 300 units, plus
	// apply 128/4 = 32 units => 332 µs.
	if math.Abs(b.ComputeSecs-332e-6) > 1e-9 {
		t.Errorf("ComputeSecs = %g", b.ComputeSecs)
	}
	// Network: remote 0.5 × 1500 bytes / (1e9 bytes/s) = 7.5e-7.
	if math.Abs(b.NetworkSecs-7.5e-7) > 1e-12 {
		t.Errorf("NetworkSecs = %g", b.NetworkSecs)
	}
	if math.Abs(b.BarrierSecs-0.01) > 1e-12 {
		t.Errorf("BarrierSecs = %g", b.BarrierSecs)
	}
	if tot := b.TotalSecs(); math.Abs(tot-(b.LoadSecs+b.ComputeSecs+b.NetworkSecs+b.BarrierSecs)) > 1e-15 {
		t.Errorf("TotalSecs = %g", tot)
	}
}

func TestSimulateErrors(t *testing.T) {
	c := ConfigI()
	if _, err := c.Simulate(nil, 0); err == nil {
		t.Error("nil stats should error")
	}
	bad := c
	bad.NetworkGbps = -1
	if _, err := bad.Simulate(craftedStats(), 0); err == nil {
		t.Error("invalid config should error")
	}
}

func TestFasterNetworkIsFaster(t *testing.T) {
	st := craftedStats()
	// Make network the dominant term.
	st.Supersteps[0].BroadcastBytes = 1 << 30
	slow, err := ConfigII().Simulate(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ConfigIII().Simulate(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalSecs() >= slow.TotalSecs() {
		t.Fatalf("40 Gb/s (%g) not faster than 1 Gb/s (%g)", fast.TotalSecs(), slow.TotalSecs())
	}
}

func TestSSDFasterThanHDD(t *testing.T) {
	st := craftedStats()
	hdd, err := ConfigIII().Simulate(st, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := ConfigIV().Simulate(st, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.TotalSecs() >= hdd.TotalSecs() {
		t.Fatalf("SSD (%g) not faster than HDD (%g)", ssd.TotalSecs(), hdd.TotalSecs())
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{LoadSecs: 1, ComputeSecs: 2, NetworkSecs: 3, BarrierSecs: 4}
	s := b.String()
	if !strings.Contains(s, "total=10.0000s") {
		t.Fatalf("String() = %q", s)
	}
}

func TestEstimateGraphBytes(t *testing.T) {
	if EstimateGraphBytes(1000) != 16000 {
		t.Fatalf("EstimateGraphBytes(1000) = %d", EstimateGraphBytes(1000))
	}
}
